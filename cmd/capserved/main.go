// Command capserved is the online serving daemon: the paper's measurement
// system run as a service instead of an offline evaluation. It trains a
// coordinated monitor at the chosen scale, simulates a fleet of monitored
// sites under rotated burst schedules, streams every site's per-second
// counter samples through the serving pipeline (internal/serve), prints
// each overload/bottleneck decision as it is made, and — when -addr is
// set — exposes the pipeline's counters over HTTP as expvar JSON
// (/debug/vars), Prometheus text (/metrics), a liveness probe (/healthz),
// a readiness probe with per-site model freshness (/readyz), and the
// versioned model history (/models). Adding -pprof mounts the Go runtime
// profiler at /debug/pprof/ on the same mux for live CPU and heap
// profiling of the decision plane.
//
// With -adapt the daemon also runs the adaptive model lifecycle
// (internal/registry): each decided window is paired with the ground
// truth the simulator derives as the window closes, drift detectors watch
// the labeled stream, and a detected drift retrains a candidate monitor
// in the background, shadow-evaluates it against the incumbent, and
// hot-swaps it into the pipeline if it wins.
//
// Usage:
//
//	capserved -scale quick -sites 3 -duration 900   # simulate and exit
//	capserved -addr :8080 -hold                     # keep /metrics up after the run
//	capserved -admission 8                          # close the loop: shed load when overloaded
//	capserved -topology                             # sites run on the tier-DAG testbed (lb → app pool → cache → store)
//	capserved -topology -autoscale                  # grow/shrink the bottleneck pool on overload verdicts
//	capserved -level os                             # monitor on OS metrics instead of counters
//	capserved -adapt                                # retrain and hot-swap on drift
//	capserved -chaos "outage tier=db at=120 for=30" # inject telemetry faults
//	capserved -fuse -chaos "nan tier=app at=60 for=30 p=0.3" # de-noise the faulted stream
//	capserved -shards 8 -sites 1000                 # sharded fleet-scale ingest
//	capserved -listen :9106 -wal frames.wal         # network ingest from capagent, durable replay
//
// With -topology the simulated sites run on the tier-DAG testbed
// (internal/server.DAGTestbed) over the reference four-pool topology —
// load balancer, replicated app pool, look-aside cache, sharded store —
// instead of the legacy two-tier testbed; the same monitor serves either,
// since the DAG folds to the legacy per-slot snapshot. Adding -autoscale
// starts every pool at its minimum replica count and closes the replica
// loop: each overload verdict feeds the registry autoscaler
// (internal/registry.Autoscaler), which grows the pool with the highest
// offered-to-capacity ratio, backs off during cooldown, and drains idle
// replicas when the burst passes. Scale events are printed as they
// happen, surfaced per pool on /metrics (capserved_pool_replicas), and
// summarized per site at exit.
//
// With -shards N (N > 0) the daemon serves through the sharded pipeline
// (serve.ShardedPipeline): sites hash onto N single-threaded shards, each
// draining its own bounded batch queue, with decisions published off the
// ingest path and per-shard counters merged only at snapshot time. -batch
// and -queue size each shard's batches and queue (0 takes the defaults).
// The decision stream per site is byte-identical to the unsharded
// pipeline's; only the interleaving across sites may differ.
//
// With -fuse every ingested sample passes through the Bayesian
// counter-fusion stage (internal/fuse) before aggregation: NaN and stuck
// readings are imputed from the factor graph over physically coupled
// counters instead of dropping the sample, implausible jumps are gated,
// and each decision carries a confidence that /readyz and /metrics
// surface per site. Low-confidence windows feed the degradation ladder
// and are guarded out of the -adapt lifecycle like degraded ones.
//
// With -chaos the sample stream passes through a deterministic fault
// injector (internal/chaos) before ingestion: the flag takes a fault
// schedule in the chaos grammar (clauses separated by ";", e.g.
// "drop tier=app at=60 for=30 p=0.25; outage at=300 for=30"). The
// simulated sites are unaffected — only the telemetry the pipeline sees
// is corrupted — and every degradation-ladder transition is printed and
// surfaced on /readyz and /metrics.
//
// With -listen the daemon stops simulating sites and instead accepts
// length-prefixed frame streams from capagent processes (internal/wire),
// feeding them through the sharded pipeline's network ingest with
// per-site sequence accounting. /readyz then reports each site's
// transport staleness (wall time since its last frame, sequence gaps,
// duplicates) alongside — and distinct from — its decision staleness.
// -wal names a write-ahead sample log: every accepted frame is appended
// before its samples reach the pipeline, and on restart an existing log
// is replayed through the identical ingest path first, so a daemon
// killed mid-run recovers its exact pre-crash decision state. -agents N
// exits after N agent connections complete (bounded runs and tests);
// without it the listener holds forever.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hpcap/internal/chaos"
	"hpcap/internal/core"
	"hpcap/internal/experiment"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/pi"
	"hpcap/internal/predictor"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/simsite"
	"hpcap/internal/tpcw"
	"hpcap/internal/wal"
	"hpcap/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capserved:", err)
		os.Exit(1)
	}
}

// servingPipeline is the call surface the daemon needs from a serving
// pipeline — satisfied by both *serve.Pipeline and *serve.ShardedPipeline,
// and a superset of registry.Pipeline so the lifecycle manager can drive
// either. Sharded-only operations (Sync, Close, shard totals) stay off
// the interface; the run wires them up only when -shards selects them.
type servingPipeline interface {
	Ingest(s serve.Sample)
	Flush()
	Stats() []serve.SiteStats
	SiteStats(site string) (serve.SiteStats, bool)
	WriteMetrics(w io.Writer) error
	AdmissionValve(site string, limit int) server.AdmissionFunc
	SwapMonitor(site string, m *core.Monitor, version int64) (serve.SwapEvent, error)
	NoteDrift(site string, n int)
	NoteScale(site string, slot server.TierID, replicas int, up bool)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "training scale: quick|full")
	levelName := fs.String("level", "hpc", "metric level to monitor at: os|hpc|combined")
	sites := fs.Int("sites", 2, "number of simulated monitored sites")
	duration := fs.Float64("duration", 600, "simulated seconds to stream per site")
	seed := fs.Int64("seed", 1, "master random seed")
	admission := fs.Int("admission", 0, "admission valve worker bound under overload; 0 leaves sites uncontrolled")
	topoOn := fs.Bool("topology", false, "simulate each site on the tier-DAG testbed (load balancer, replicated app pool, cache, sharded store) instead of the legacy two-tier testbed")
	autoscale := fs.Bool("autoscale", false, "close the replica loop: start every pool at its minimum and let the registry autoscaler grow the bottleneck pool on overload verdicts (requires -topology)")
	adapt := fs.Bool("adapt", false, "run the adaptive model lifecycle: pair decisions with delayed truth, retrain on drift, hot-swap winners")
	chaosSpec := fs.String("chaos", "", `fault schedule to inject into the telemetry stream, e.g. "drop tier=app at=60 for=30 p=0.25; outage at=300 for=30"`)
	fuseOn := fs.Bool("fuse", false, "de-noise ingested samples through the Bayesian counter-fusion stage before aggregation")
	addr := fs.String("addr", "", "HTTP listen address for /metrics, /debug/vars, /healthz, /readyz, /models; empty disables HTTP")
	pprofOn := fs.Bool("pprof", false, "expose Go runtime profiling at /debug/pprof/ on the -addr mux (requires -addr)")
	hold := fs.Bool("hold", false, "keep the HTTP endpoint up after the simulated run completes")
	shards := fs.Int("shards", 0, "ingest shards; 0 serves through the unsharded pipeline")
	batch := fs.Int("batch", 0, "sharded mode: samples per batch (0 takes the default)")
	queue := fs.Int("queue", 0, "sharded mode: per-shard queue capacity in samples (0 takes the default)")
	listen := fs.String("listen", "", "TCP frame-listener address for capagent connections; replaces the local simulation with network ingest")
	walPath := fs.String("wal", "", "write-ahead sample log: append every accepted frame before ingest, replay it on restart (requires -listen)")
	agents := fs.Int("agents", 0, "with -listen: exit after this many agent connections complete; 0 holds the listener open")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shards < 0 {
		return fmt.Errorf("-shards must be >= 0, got %d", *shards)
	}
	if (*batch != 0 || *queue != 0) && *shards == 0 {
		return fmt.Errorf("-batch and -queue only apply with -shards > 0")
	}
	if *listen == "" && (*walPath != "" || *agents != 0) {
		return fmt.Errorf("-wal and -agents only apply with -listen")
	}
	if *pprofOn && *addr == "" {
		return fmt.Errorf("-pprof requires -addr")
	}
	if *autoscale && !*topoOn {
		return fmt.Errorf("-autoscale requires -topology")
	}
	if *listen != "" {
		// Network ingest replaces the local fleet: the agents own the
		// testbeds, their collectors, and any chaos, so the local-only
		// modes have nothing to act on.
		if *adapt || *admission > 0 || *chaosSpec != "" || *topoOn {
			return fmt.Errorf("-adapt, -admission, -chaos, and -topology need local simulation; run chaos at the agent (capagent -chaos)")
		}
		if *shards == 0 {
			// The network ingest path (Register/Batcher) is sharded-only.
			*shards = serve.DefaultShardConfig().Shards
		}
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "full":
		scale = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	var level metrics.Level
	switch *levelName {
	case "os":
		level = metrics.LevelOS
	case "hpc":
		level = metrics.LevelHPC
	case "combined":
		level = metrics.LevelCombined
	default:
		return fmt.Errorf("unknown metric level %q", *levelName)
	}
	if *sites < 1 {
		return fmt.Errorf("need at least one site, got %d", *sites)
	}
	var inj *chaos.Injector
	if *chaosSpec != "" {
		sched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = chaos.NewInjector(sched, *seed)
	}

	// HTTP comes up before training so /readyz can report "not ready"
	// while the monitor is still being built — the window a load balancer
	// must not route through.
	state := &daemonState{}
	if *addr != "" {
		if err := startHTTP(*addr, state, *pprofOn); err != nil {
			return err
		}
		fmt.Fprintf(out, "serving metrics on %s\n", *addr)
	}

	fmt.Fprintf(out, "training %s monitor at %s scale...\n", level, scale.Name)
	lab := experiment.NewLab(scale)
	lab.Seed = *seed
	monitor, err := lab.TrainMonitor(level, predictor.Config{})
	if err != nil {
		return fmt.Errorf("train monitor: %w", err)
	}
	var wb, wo experiment.Workload
	if *listen == "" {
		// Only the local simulation needs the workload knees; in listen
		// mode the agents schedule their own sites.
		if wb, err = lab.Workload(tpcw.Browsing()); err != nil {
			return err
		}
		if wo, err = lab.Workload(tpcw.Ordering()); err != nil {
			return err
		}
	}

	// Decision and lifecycle-event prints interleave from different
	// goroutines when -adapt retrains in the background.
	var (
		outMu    sync.Mutex
		mgr      *registry.Manager
		trackers map[string]*truthTracker
		scaler   *registry.Autoscaler
		dagSites map[string]*simsite.Site
	)
	serveCfg := serve.Config{
		Window: scale.Window,
		OnDecision: func(d serve.Decision) {
			bott := "-"
			if d.Prediction.Overload {
				bott = d.Prediction.Bottleneck.String()
			}
			flag := ""
			if d.Degraded {
				flag = fmt.Sprintf(" degraded(missing %d)", d.Missing)
			}
			if d.LowConfidence {
				flag += fmt.Sprintf(" low-confidence(%.2f)", d.Confidence)
			}
			outMu.Lock()
			fmt.Fprintf(out, "t=%6.0f %-8s overload=%-5t bottleneck=%-3s gpv=%v%s\n",
				d.Time, d.Site, d.Prediction.Overload, bott, d.Prediction.GPV, flag)
			outMu.Unlock()
			// The autoscaler reads the site's live pool loads; decisions
			// fire while the lockstep simulation is parked (unsharded:
			// inside Ingest; sharded: inside the per-second Sync), so the
			// testbed is quiescent here.
			if scaler != nil {
				if ds := dagSites[d.Site]; ds != nil {
					scaler.Observe(d, ds.DAG.PoolLoads())
				}
			}
			if mgr == nil {
				return
			}
			mgr.HandleDecision(d)
			// The simulator labels each window as it closes, one sample
			// before the pipeline publishes its decision, so the truth is
			// always ready by the time the decision arrives.
			if tk := trackers[d.Site]; tk != nil {
				if tr, ok := tk.take(d.Seq); ok {
					mgr.ObserveTruth(d.Site, d.Seq, tr)
				}
			}
		},
		OnSwap: func(ev serve.SwapEvent) {
			outMu.Lock()
			fmt.Fprintf(out, "hot-swap %s model v%d -> v%d from window %d\n",
				ev.Site, ev.PrevVersion, ev.Version, ev.Seq)
			outMu.Unlock()
		},
		OnHealth: func(ev serve.HealthEvent) {
			outMu.Lock()
			fmt.Fprintf(out, "health %s %s -> %s at window %d\n", ev.Site, ev.From, ev.To, ev.Seq)
			outMu.Unlock()
		},
	}
	if *fuseOn {
		fc := fuse.DefaultConfig()
		serveCfg.Fuse = &fc
	}
	// Sharded mode adds a per-second barrier (Sync) so the lockstep
	// simulation observes the same decision cadence as the synchronous
	// pipeline, and a shutdown that stops the shard goroutines.
	var (
		pipe     servingPipeline
		barrier  = func() {}
		shutdown = func() {}
		sharded  *serve.ShardedPipeline
	)
	if *shards > 0 {
		sp, err := serve.NewShardedPipeline(monitor, serveCfg, serve.ShardConfig{
			Shards: *shards, BatchSize: *batch, QueueCapacity: *queue,
		})
		if err != nil {
			return fmt.Errorf("build sharded pipeline: %w", err)
		}
		pipe, sharded = sp, sp
		barrier = sp.Sync
		shutdown = sp.Close
	} else {
		p, err := serve.NewPipeline(monitor, serveCfg)
		if err != nil {
			return fmt.Errorf("build pipeline: %w", err)
		}
		pipe = p
	}
	state.setPipeline(pipe, *fuseOn)

	if *listen != "" {
		return serveNetwork(out, state, sharded, *listen, *walPath, *agents)
	}

	if *adapt {
		mgr, err = registry.NewManager(registry.Config{
			Pipeline: pipe,
			Initial:  monitor,
			Names:    simsite.MetricNames(level),
			Train: core.Config{
				Learner:  bayes.TANLearner(),
				Synopsis: core.DefaultSynopsisConfig(*seed + 1),
				Workers:  4,
			},
			// Daemon mode: detector and lifecycle thresholds at their
			// conservative defaults, retraining off the serving path.
			Background: true,
			OnEvent: func(e registry.Event) {
				outMu.Lock()
				fmt.Fprintf(out, "lifecycle: %s\n", e)
				outMu.Unlock()
			},
		})
		if err != nil {
			return fmt.Errorf("build lifecycle manager: %w", err)
		}
		state.setManager(mgr)
		trackers = make(map[string]*truthTracker)
	}

	// Topology mode swaps the fleet onto the reference tier DAG; with
	// -autoscale every pool starts at its minimum so the burst schedule
	// forces the autoscaler to find the right size.
	var topo server.TopologyConfig
	var slotOf map[string]server.TierID
	if *topoOn {
		topo = server.DefaultTopologyConfig()
		if *autoscale {
			for i := range topo.Pools {
				if topo.Pools[i].MinReplicas > 0 {
					topo.Pools[i].Replicas = topo.Pools[i].MinReplicas
				}
			}
		}
		slotOf = make(map[string]server.TierID, len(topo.Pools))
		for _, pc := range topo.Pools {
			slotOf[pc.Name] = pc.Slot
		}
	}
	if *autoscale {
		dagSites = make(map[string]*simsite.Site)
		acfg := registry.DefaultAutoscalerConfig()
		acfg.Scaler = fleetScaler{dagSites}
		// One overload verdict arms the scaler (the valve would otherwise
		// shed the streak away), and the ratio gates fit window CPU ratios
		// of queue-bound overload, which sit well below 1.
		acfg.UpWindows = 1
		acfg.DownWindows = 4
		acfg.CooldownWindows = 2
		acfg.UpRatio = 0.3
		acfg.DownRatio = 0.15
		acfg.OnScale = func(e registry.ScaleEvent) {
			pipe.NoteScale(e.Site, slotOf[e.Pool], e.Replicas, e.Up)
			outMu.Lock()
			fmt.Fprintf(out, "autoscale: %s\n", e)
			outMu.Unlock()
		}
		scaler, err = registry.NewAutoscaler(acfg)
		if err != nil {
			return fmt.Errorf("build autoscaler: %w", err)
		}
	}

	fleet := make([]*simsite.Site, *sites)
	names := make([]string, *sites)
	for i := range fleet {
		name := fmt.Sprintf("site-%d", i+1)
		var s *simsite.Site
		var err error
		if *topoOn {
			s, err = simsite.NewDAG(name, topo, level, i, wb, wo, *seed, *duration)
		} else {
			s, err = simsite.New(name, lab.Server, level, i, wb, wo, *seed, *duration)
		}
		if err != nil {
			return fmt.Errorf("build %s: %w", name, err)
		}
		if dagSites != nil {
			dagSites[name] = s
		}
		if *admission > 0 {
			s.TB.SetAdmission(pipe.AdmissionValve(name, *admission))
		}
		if err := s.TB.Start(); err != nil {
			return err
		}
		fleet[i] = s
		names[i] = name
		if *adapt {
			trackers[name] = newTruthTracker(lab.Labeler, scale.Window)
		}
	}
	state.setSites(names)

	// Advance all sites in 1-second lockstep, streaming every tier's
	// sample into the pipeline as it is collected — through the fault
	// injector first when -chaos is set.
	ingest := func(s serve.Sample) {
		if inj == nil {
			pipe.Ingest(s)
			return
		}
		for _, out := range inj.Apply(s) {
			pipe.Ingest(out)
		}
	}
	for elapsed := 0.0; elapsed < *duration; elapsed++ {
		for _, s := range fleet {
			snap := s.TB.RunInterval(1)
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				ingest(serve.Sample{
					Site:   s.Name,
					Tier:   tier,
					Time:   snap.Time,
					Values: s.Collect(tier, snap),
				})
			}
			if tk := trackers[s.Name]; tk != nil {
				tk.observe(snap)
			}
		}
		// Sharded: drain every shard before advancing the clock so the
		// simulation's decision cadence matches the synchronous pipeline.
		barrier()
	}
	if inj != nil {
		for _, s := range inj.Drain() {
			pipe.Ingest(s)
		}
	}
	pipe.Flush()
	if mgr != nil {
		mgr.Wait()
	}
	shutdown()

	fmt.Fprintln(out)
	for _, st := range pipe.Stats() {
		fmt.Fprintf(out, "%-8s windows=%d degraded=%d dropped=%d overloads=%d disagreement=%.1f%% mean-predict=%s health=%s transitions=%d\n",
			st.Site, st.WindowsDecided, st.WindowsDegraded, st.WindowsDropped,
			st.Overloads, st.DisagreementRate()*100, st.MeanPredictLatency(),
			st.Health, st.HealthChanges())
		if *fuseOn {
			fmt.Fprintf(out, "%-8s fusion fused=%d imputed=%d gated=%d lowconf=%d confidence=%.3f\n",
				st.Site, st.SamplesFused, st.FuseImputed, st.FuseGated,
				st.WindowsLowConfidence, st.FuseConfidence)
		}
	}
	if sharded != nil {
		tot := sharded.Totals()
		fmt.Fprintf(out, "shards   n=%d enqueued=%d processed=%d batches=%d stalls=%d rejected-closed=%d rejected-ref=%d\n",
			sharded.Shards(), tot.Enqueued, tot.Processed, tot.Batches,
			tot.Stalls, tot.RejectedClosed, tot.RejectedRef)
	}
	if inj != nil {
		fs := inj.Stats()
		fmt.Fprintf(out, "chaos    offered=%d emitted=%d injected=%d dropped=%d nan=%d stuck=%d stalled=%d dup=%d skew=%d outage=%d\n",
			fs.Offered, fs.Emitted, fs.Injected(), fs.Dropped, fs.Corrupted, fs.Frozen,
			fs.Stalled, fs.Duplicated, fs.Skewed, fs.Outaged)
	}
	if *admission > 0 {
		for _, s := range fleet {
			arrivals, completions, rejections, inFlight := s.TB.Conservation()
			fmt.Fprintf(out, "%-8s arrivals=%d completions=%d rejections=%d in-flight=%d\n",
				s.Name, arrivals, completions, rejections, inFlight)
		}
	}
	if scaler != nil {
		for _, s := range fleet {
			ups, downs := s.DAG.ScaleEvents()
			var pools string
			for _, pc := range topo.Pools {
				pools += fmt.Sprintf(" %s=%d", pc.Name, s.DAG.Replicas(pc.Name))
			}
			fmt.Fprintf(out, "%-8s autoscale ups=%d downs=%d replicas:%s bottleneck=%s\n",
				s.Name, ups, downs, pools, s.DAG.Bottleneck())
		}
	}
	if mgr != nil {
		fmt.Fprintln(out)
		for _, s := range fleet {
			for _, v := range mgr.Store().History(s.Name) {
				fmt.Fprintf(out, "%-8s model v%d reason=%s windows=%d swapped=%t\n",
					s.Name, v.ID, v.Reason, v.Windows, v.Swapped)
			}
		}
	}

	if *hold && *addr != "" {
		fmt.Fprintln(out, "run complete; holding HTTP endpoint (interrupt to exit)")
		select {}
	}
	return nil
}

// fleetScaler routes the registry autoscaler's replica actions to the
// addressed site's DAG testbed. Lookups miss (and the action no-ops) for
// names the fleet does not carry.
type fleetScaler struct{ sites map[string]*simsite.Site }

func (f fleetScaler) AddReplica(site, pool string) (int, bool) {
	if s := f.sites[site]; s != nil && s.DAG != nil {
		return s.DAG.AddReplica(pool)
	}
	return 0, false
}

func (f fleetScaler) RemoveReplica(site, pool string) (int, bool) {
	if s := f.sites[site]; s != nil && s.DAG != nil {
		return s.DAG.RemoveReplica(pool)
	}
	return 0, false
}

// serveNetwork is the -listen half of the daemon: frames arrive from
// capagent processes over TCP instead of a local simulation loop. When
// -wal is set, every accepted frame is appended to the write-ahead
// sample log strictly before its samples reach the pipeline, and an
// existing log is replayed through the same ingest path first — so a
// daemon killed mid-storm restarts into exactly the decision state it
// crashed with, then continues from the agents' live streams.
func serveNetwork(out io.Writer, state *daemonState, sp *serve.ShardedPipeline, listen, walPath string, agents int) error {
	ing := serve.NewIngest(sp)
	state.setIngest(ing)

	var onFrame func(payload []byte) error
	if walPath != "" {
		log, recovered, err := wal.Open(walPath, wal.Config{})
		if err != nil {
			return fmt.Errorf("wal %s: %w", walPath, err)
		}
		defer log.Close()
		if recovered > 0 {
			lane := ing.Conn()
			undecodable := 0
			n, rerr := wal.Replay(walPath, wal.Config{}, func(payload []byte) error {
				f, derr := wire.DecodeFrame(payload)
				if derr != nil {
					undecodable++
					return nil
				}
				lane.Accept(&f)
				return nil
			})
			if rerr != nil {
				return fmt.Errorf("wal replay %s: %w", walPath, rerr)
			}
			lane.Close()
			sp.Sync()
			fmt.Fprintf(out, "wal: replayed %d frame(s) from %s (%d undecodable)\n", n, walPath, undecodable)
		}
		onFrame = log.Append
	}

	fsrv, err := serve.NewFrameServer(serve.ListenConfig{Addr: listen}, ing, onFrame)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "listening for agents on %s\n", fsrv.Addr())

	if agents == 0 {
		// Daemon mode: serve until the process is killed.
		select {}
	}
	fsrv.WaitConns(uint64(agents))
	if cerr := fsrv.Close(); cerr != nil {
		fmt.Fprintf(out, "listener close: %v\n", cerr)
	}
	// Decide what the final partial windows support, then stop the shards.
	sp.Flush()
	sp.Close()

	fmt.Fprintln(out)
	for _, st := range sp.Stats() {
		fmt.Fprintf(out, "%-8s windows=%d degraded=%d dropped=%d overloads=%d disagreement=%.1f%% mean-predict=%s health=%s transitions=%d\n",
			st.Site, st.WindowsDecided, st.WindowsDegraded, st.WindowsDropped,
			st.Overloads, st.DisagreementRate()*100, st.MeanPredictLatency(),
			st.Health, st.HealthChanges())
	}
	for _, tr := range ing.TransportStats() {
		fmt.Fprintf(out, "%-8s transport frames=%d samples=%d dup=%d reordered=%d gaps=%d lost=%d last-seq=%d last-frame-t=%.0f\n",
			tr.Site, tr.Frames, tr.Samples, tr.DupFrames, tr.OutOfOrder,
			tr.SeqGaps, tr.LostFrames, tr.LastSeq, tr.LastFrameTime)
	}
	ss := fsrv.Stats()
	fmt.Fprintf(out, "listener conns=%d frames=%d decode-errors=%d read-errors=%d log-errors=%d\n",
		ss.ConnsClosed, ss.Frames, ss.DecodeErrors, ss.ReadErrors, ss.LogErrors)
	tot := sp.Totals()
	fmt.Fprintf(out, "shards   n=%d enqueued=%d processed=%d batches=%d stalls=%d rejected-closed=%d rejected-ref=%d\n",
		sp.Shards(), tot.Enqueued, tot.Processed, tot.Batches,
		tot.Stalls, tot.RejectedClosed, tot.RejectedRef)
	return nil
}

// truthTracker derives per-window ground truth for one site from its
// testbed snapshots, mirroring the offline trace labeling: application
// health feeds the labeler, foreground busy time attributes the
// bottleneck, and the class-arrival histogram feeds the mix-shift
// detector. Windows align with the pipeline's: window seq covers the
// samples in (seq·W, (seq+1)·W].
type truthTracker struct {
	labeler pi.Labeler
	window  int

	secs        int
	arrivals    int
	completions int
	rtSum       float64
	fgBusy      [server.NumTiers]float64
	classes     [tpcw.NumInteractions]int

	seq int64
	// mu guards ready: in sharded mode take runs on shard goroutines
	// (decision callbacks) while observe runs on the simulation loop.
	mu    sync.Mutex
	ready map[int64]registry.Truth
}

func newTruthTracker(labeler pi.Labeler, window int) *truthTracker {
	return &truthTracker{
		labeler: labeler,
		window:  window,
		ready:   make(map[int64]registry.Truth),
	}
}

// observe accumulates one 1-second snapshot and labels the window when it
// completes.
func (t *truthTracker) observe(snap server.Snapshot) {
	t.secs++
	t.arrivals += snap.Arrivals
	t.completions += snap.Completions
	t.rtSum += snap.MeanRT * float64(snap.Completions)
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		t.fgBusy[tier] += snap.Tiers[tier].FgBusySeconds
	}
	for c, n := range snap.ClassArrivals {
		t.classes[c] += n
	}
	if t.secs < t.window {
		return
	}

	w := float64(t.window)
	var meanRT float64
	if t.completions > 0 {
		meanRT = t.rtSum / float64(t.completions)
	}
	tr := registry.Truth{
		Overload: t.labeler.Label(metrics.Sample{
			MeanRT:      meanRT,
			Throughput:  float64(t.completions) / w,
			ArrivalRate: float64(t.arrivals) / w,
		}) == 1,
		Throughput:  float64(t.completions) / w,
		ClassCounts: make([]float64, tpcw.NumInteractions),
	}
	for tier := server.TierID(1); tier < server.NumTiers; tier++ {
		if t.fgBusy[tier] > t.fgBusy[tr.Bottleneck] {
			tr.Bottleneck = tier
		}
	}
	for c, n := range t.classes {
		tr.ClassCounts[c] = float64(n)
	}
	t.mu.Lock()
	t.ready[t.seq] = tr
	t.mu.Unlock()
	t.seq++

	t.secs, t.arrivals, t.completions, t.rtSum = 0, 0, 0, 0
	t.fgBusy = [server.NumTiers]float64{}
	t.classes = [tpcw.NumInteractions]int{}
}

// take removes and returns the truth for a window, if labeled.
func (t *truthTracker) take(seq int64) (registry.Truth, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.ready[seq]
	if ok {
		delete(t.ready, seq)
	}
	return tr, ok
}

// daemonState is what the HTTP endpoints read. Fields fill in as the run
// progresses: the pipeline exists only after training, the fleet after
// the sites are built, the manager only under -adapt.
type daemonState struct {
	mu     sync.Mutex
	pipe   servingPipeline
	mgr    *registry.Manager
	sites  []string
	ingest *serve.Ingest
	fusing bool
}

func (s *daemonState) setPipeline(p servingPipeline, fusing bool) {
	s.mu.Lock()
	s.pipe = p
	s.fusing = fusing
	s.mu.Unlock()
}

func (s *daemonState) isFusing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fusing
}

func (s *daemonState) setManager(m *registry.Manager) {
	s.mu.Lock()
	s.mgr = m
	s.mu.Unlock()
}

func (s *daemonState) setIngest(in *serve.Ingest) {
	s.mu.Lock()
	s.ingest = in
	s.mu.Unlock()
}

func (s *daemonState) getIngest() *serve.Ingest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ingest
}

func (s *daemonState) setSites(names []string) {
	s.mu.Lock()
	s.sites = append([]string(nil), names...)
	s.mu.Unlock()
}

func (s *daemonState) snapshot() (servingPipeline, *registry.Manager, []string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipe, s.mgr, append([]string(nil), s.sites...)
}

// siteReadiness is one site's entry in the /readyz report.
type siteReadiness struct {
	Site  string `json:"site"`
	Ready bool   `json:"ready"`
	// Health is the site's degradation-ladder state (healthy, degraded,
	// or stale); a stale site stays "ready" because its admission valve
	// has already failed open.
	Health string `json:"health"`
	// ModelVersion is the site's active model; LastSwapSeq the first
	// window it decided (-1 while the initial model has never been
	// replaced).
	ModelVersion int64 `json:"model_version"`
	LastSwapSeq  int64 `json:"last_swap_seq"`
	// Decision freshness: the latest decided window, its stream
	// timestamp, and how far it lags the freshest site in the fleet.
	LastDecisionSeq  int64   `json:"last_decision_seq"`
	LastDecisionTime float64 `json:"last_decision_time"`
	StalenessSeconds float64 `json:"staleness_seconds"`
	// Transport is present only under -listen: the frame-level view of
	// the site's feed, kept distinct from sample staleness above. A site
	// can be transport-fresh yet decision-stale (agent up, collectors
	// wedged) or transport-stale yet deciding (link down, windows
	// coasting) — the two page different people.
	Transport *transportReadiness `json:"transport,omitempty"`
	// Fusion is present only under -fuse: the counter-fusion view of the
	// site's telemetry quality. Confidence is the mean fusion confidence
	// of the most recent decided window; LowConfidenceWindows counts the
	// windows decided mostly from imputed values.
	Fusion *fusionReadiness `json:"fusion,omitempty"`
}

// fusionReadiness is the counter-fusion half of a site's /readyz entry.
type fusionReadiness struct {
	Confidence           float64 `json:"confidence"`
	SamplesFused         uint64  `json:"samples_fused"`
	Imputed              uint64  `json:"imputed"`
	Gated                uint64  `json:"gated"`
	LowConfidenceWindows uint64  `json:"low_confidence_windows"`
}

// transportReadiness is the frame-level half of a site's /readyz entry.
type transportReadiness struct {
	LastSeq       uint64  `json:"last_seq"`
	LastFrameTime float64 `json:"last_frame_time"`
	// StalenessSeconds is wall time since the last frame arrived —
	// link-level freshness, unrelated to the stream's own clock.
	StalenessSeconds float64 `json:"staleness_seconds"`
	LostFrames       uint64  `json:"lost_frames"`
	DupFrames        uint64  `json:"dup_frames"`
	OutOfOrder       uint64  `json:"out_of_order"`
}

// readinessReport is the /readyz body. Unlike /healthz (pure liveness),
// readiness requires a trained model actively deciding windows for every
// site in the fleet.
type readinessReport struct {
	Ready  bool            `json:"ready"`
	Reason string          `json:"reason,omitempty"`
	Sites  []siteReadiness `json:"sites,omitempty"`
}

func (s *daemonState) readiness() readinessReport {
	pipe, _, sites := s.snapshot()
	if pipe == nil {
		return readinessReport{Reason: "training monitor"}
	}
	// Under -listen the fleet is whatever sites the agents have shipped
	// frames for; the transport table is their registry.
	ing := s.getIngest()
	var transports map[string]serve.SiteTransport
	if ing != nil {
		ts := ing.TransportStats()
		transports = make(map[string]serve.SiteTransport, len(ts))
		for _, tr := range ts {
			transports[tr.Site] = tr
		}
		if len(sites) == 0 {
			// setSites is never called under -listen; the transport
			// table (already name-ordered) is the fleet.
			for _, tr := range ts {
				sites = append(sites, tr.Site)
			}
		}
		if len(sites) == 0 {
			return readinessReport{Reason: "no agent has delivered a frame"}
		}
	}
	if len(sites) == 0 {
		return readinessReport{Reason: "fleet not started"}
	}
	rep := readinessReport{Ready: true}
	stats := make([]serve.SiteStats, len(sites))
	var latest float64
	for i, name := range sites {
		st, ok := pipe.SiteStats(name)
		if !ok {
			st.LastDecisionSeq = -1
			st.LastSwapSeq = -1
		}
		stats[i] = st
		if st.LastDecisionTime > latest {
			latest = st.LastDecisionTime
		}
	}
	for i, name := range sites {
		st := stats[i]
		sr := siteReadiness{
			Site:             name,
			Ready:            st.LastDecisionSeq >= 0,
			Health:           st.Health.String(),
			ModelVersion:     st.ModelVersion,
			LastSwapSeq:      st.LastSwapSeq,
			LastDecisionSeq:  st.LastDecisionSeq,
			LastDecisionTime: st.LastDecisionTime,
		}
		if sr.Ready {
			sr.StalenessSeconds = latest - st.LastDecisionTime
		} else {
			rep.Ready = false
			rep.Reason = "site awaiting first decision"
		}
		if s.isFusing() {
			sr.Fusion = &fusionReadiness{
				Confidence:           st.FuseConfidence,
				SamplesFused:         st.SamplesFused,
				Imputed:              st.FuseImputed,
				Gated:                st.FuseGated,
				LowConfidenceWindows: st.WindowsLowConfidence,
			}
		}
		if tr, ok := transports[name]; ok {
			sr.Transport = &transportReadiness{
				LastSeq:          tr.LastSeq,
				LastFrameTime:    tr.LastFrameTime,
				StalenessSeconds: time.Since(tr.LastFrameAt).Seconds(),
				LostFrames:       tr.LostFrames,
				DupFrames:        tr.DupFrames,
				OutOfOrder:       tr.OutOfOrder,
			}
		}
		rep.Sites = append(rep.Sites, sr)
	}
	return rep
}

// modelInfo is one version in the /models report — registry.Version
// without the trained monitor itself.
type modelInfo struct {
	ID          int64   `json:"id"`
	Reason      string  `json:"reason"`
	Windows     int     `json:"windows"`
	CandidateBA float64 `json:"candidate_ba"`
	IncumbentBA float64 `json:"incumbent_ba"`
	Swapped     bool    `json:"swapped"`
	SwapSeq     int64   `json:"swap_seq"`
}

func (s *daemonState) modelHistory() map[string][]modelInfo {
	_, mgr, sites := s.snapshot()
	out := make(map[string][]modelInfo)
	if mgr == nil {
		return out
	}
	for _, name := range sites {
		for _, v := range mgr.Store().History(name) {
			out[name] = append(out[name], modelInfo{
				ID:          v.ID,
				Reason:      v.Reason,
				Windows:     v.Windows,
				CandidateBA: v.CandidateBA,
				IncumbentBA: v.IncumbentBA,
				Swapped:     v.Swapped,
				SwapSeq:     v.SwapSeq,
			})
		}
	}
	return out
}

// expvarOnce guards the process-wide expvar registration; currentState
// retargets it when run is invoked more than once (tests).
var (
	expvarOnce   sync.Once
	currentState atomic.Pointer[daemonState]
)

// newMux builds the daemon's HTTP surface over the (still-filling) state.
// withPprof additionally mounts the Go runtime profiler under
// /debug/pprof/ — opt-in because CPU profiles and heap dumps are not
// something a fleet daemon should hand out by default.
func newMux(st *daemonState, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		pipe, _, _ := st.snapshot()
		if pipe == nil {
			http.Error(w, "monitor still training", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := pipe.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if ing := st.getIngest(); ing != nil {
			if err := ing.WriteTransportMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		rep := st.readiness()
		w.Header().Set("Content-Type", "application/json")
		if !rep.Ready {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		_ = json.NewEncoder(w).Encode(rep)
	})
	mux.HandleFunc("/models", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st.modelHistory())
	})
	return mux
}

// startHTTP exposes the daemon over HTTP: Prometheus text at /metrics,
// expvar JSON at /debug/vars, liveness at /healthz, readiness with
// per-site model freshness at /readyz, the model history at /models, and
// (with -pprof) the runtime profiler at /debug/pprof/.
func startHTTP(addr string, st *daemonState, withPprof bool) error {
	currentState.Store(st)
	expvarOnce.Do(func() {
		expvar.Publish("capserved", expvar.Func(func() any {
			if s := currentState.Load(); s != nil {
				if pipe, _, _ := s.snapshot(); pipe != nil {
					return pipe.Stats()
				}
			}
			return nil
		}))
	})
	// Bind synchronously so a bad -addr fails the run instead of being
	// logged from a goroutine; serving itself lasts the process lifetime.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("http: %w", err)
	}
	go func() { _ = (&http.Server{Handler: newMux(st, withPprof)}).Serve(ln) }()
	return nil
}
