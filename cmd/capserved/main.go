// Command capserved is the online serving daemon: the paper's measurement
// system run as a service instead of an offline evaluation. It trains a
// coordinated monitor at the chosen scale, simulates a fleet of monitored
// sites under rotated burst schedules, streams every site's per-second
// counter samples through the serving pipeline (internal/serve), prints
// each overload/bottleneck decision as it is made, and — when -addr is
// set — exposes the pipeline's counters over HTTP as expvar JSON
// (/debug/vars) and Prometheus text (/metrics).
//
// Usage:
//
//	capserved -scale quick -sites 3 -duration 900   # simulate and exit
//	capserved -addr :8080 -hold                     # keep /metrics up after the run
//	capserved -admission 8                          # close the loop: shed load when overloaded
//	capserved -level os                             # monitor on OS metrics instead of counters
package main

import (
	"expvar"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"

	"hpcap/internal/cpu"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/osstat"
	"hpcap/internal/predictor"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capserved:", err)
		os.Exit(1)
	}
}

// simSite is one simulated monitored website: a testbed under its own
// burst schedule plus the per-tier collectors that sample it.
type simSite struct {
	name string
	tb   *server.Testbed
	coll [server.NumTiers][]metrics.Collector
}

// collect concatenates the site's tier collectors into one sample vector
// (one collector at the OS or HPC level; both, OS first, at the combined
// level — matching experiment.Trace vector layout).
func (s *simSite) collect(tier server.TierID, snap server.Snapshot) []float64 {
	var v []float64
	for _, c := range s.coll[tier] {
		v = append(v, c.Collect(snap, 1)...)
	}
	return v
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("capserved", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "training scale: quick|full")
	levelName := fs.String("level", "hpc", "metric level to monitor at: os|hpc|combined")
	sites := fs.Int("sites", 2, "number of simulated monitored sites")
	duration := fs.Float64("duration", 600, "simulated seconds to stream per site")
	seed := fs.Int64("seed", 1, "master random seed")
	admission := fs.Int("admission", 0, "admission valve worker bound under overload; 0 leaves sites uncontrolled")
	addr := fs.String("addr", "", "HTTP listen address for /metrics, /debug/vars, /healthz; empty disables HTTP")
	hold := fs.Bool("hold", false, "keep the HTTP endpoint up after the simulated run completes")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "full":
		scale = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	var level metrics.Level
	switch *levelName {
	case "os":
		level = metrics.LevelOS
	case "hpc":
		level = metrics.LevelHPC
	case "combined":
		level = metrics.LevelCombined
	default:
		return fmt.Errorf("unknown metric level %q", *levelName)
	}
	if *sites < 1 {
		return fmt.Errorf("need at least one site, got %d", *sites)
	}

	fmt.Fprintf(out, "training %s monitor at %s scale...\n", level, scale.Name)
	lab := experiment.NewLab(scale)
	lab.Seed = *seed
	monitor, err := lab.TrainMonitor(level, predictor.Config{})
	if err != nil {
		return fmt.Errorf("train monitor: %w", err)
	}
	wb, err := lab.Workload(tpcw.Browsing())
	if err != nil {
		return err
	}
	wo, err := lab.Workload(tpcw.Ordering())
	if err != nil {
		return err
	}

	pipe, err := serve.NewPipeline(monitor, serve.Config{
		Window: scale.Window,
		OnDecision: func(d serve.Decision) {
			bott := "-"
			if d.Prediction.Overload {
				bott = d.Prediction.Bottleneck.String()
			}
			flag := ""
			if d.Degraded {
				flag = fmt.Sprintf(" degraded(missing %d)", d.Missing)
			}
			fmt.Fprintf(out, "t=%6.0f %-8s overload=%-5t bottleneck=%-3s gpv=%v%s\n",
				d.Time, d.Site, d.Prediction.Overload, bott, d.Prediction.GPV, flag)
		},
	})
	if err != nil {
		return fmt.Errorf("build pipeline: %w", err)
	}
	if *addr != "" {
		if err := startHTTP(*addr, pipe); err != nil {
			return err
		}
		fmt.Fprintf(out, "serving metrics on %s\n", *addr)
	}

	fleet := make([]*simSite, *sites)
	for i := range fleet {
		name := fmt.Sprintf("site-%d", i+1)
		s, err := newSimSite(name, lab.Server, level, i, wb, wo, *seed, *duration)
		if err != nil {
			return fmt.Errorf("build %s: %w", name, err)
		}
		if *admission > 0 {
			s.tb.SetAdmission(pipe.AdmissionValve(name, *admission))
		}
		if err := s.tb.Start(); err != nil {
			return err
		}
		fleet[i] = s
	}

	// Advance all sites in 1-second lockstep, streaming every tier's
	// sample into the pipeline as it is collected.
	for elapsed := 0.0; elapsed < *duration; elapsed++ {
		for _, s := range fleet {
			snap := s.tb.RunInterval(1)
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				pipe.Ingest(serve.Sample{
					Site:   s.name,
					Tier:   tier,
					Time:   snap.Time,
					Values: s.collect(tier, snap),
				})
			}
		}
	}
	pipe.Flush()

	fmt.Fprintln(out)
	for _, st := range pipe.Stats() {
		fmt.Fprintf(out, "%-8s windows=%d degraded=%d dropped=%d overloads=%d disagreement=%.1f%% mean-predict=%s\n",
			st.Site, st.WindowsDecided, st.WindowsDegraded, st.WindowsDropped,
			st.Overloads, st.DisagreementRate()*100, st.MeanPredictLatency())
	}
	if *admission > 0 {
		for _, s := range fleet {
			arrivals, completions, rejections, inFlight := s.tb.Conservation()
			fmt.Fprintf(out, "%-8s arrivals=%d completions=%d rejections=%d in-flight=%d\n",
				s.name, arrivals, completions, rejections, inFlight)
		}
	}

	if *hold && *addr != "" {
		fmt.Fprintln(out, "run complete; holding HTTP endpoint (interrupt to exit)")
		select {}
	}
	return nil
}

// newSimSite builds one monitored site. Sites alternate between the
// browsing and ordering mixes and rotate their burst phase so the fleet
// does not overload in lockstep; each has its own seed.
func newSimSite(name string, base server.Config, level metrics.Level, index int, wb, wo experiment.Workload, seed int64, duration float64) (*simSite, error) {
	w := wb
	if index%2 == 1 {
		w = wo
	}
	ebs := func(f float64) int {
		n := int(float64(w.Knee)*f + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	// One cycle: cruise below the knee, burst past it, recover. Rotating
	// the cruise length staggers the bursts across the fleet.
	cruise := 120.0 + 30.0*float64(index%4)
	cycle := tpcw.Concat(
		tpcw.Steady(w.Mix, ebs(0.70), cruise),
		tpcw.Steady(w.Mix, ebs(1.45), 120),
		tpcw.Steady(w.Mix, ebs(0.55), 60),
	)
	sched := cycle
	for sched.Duration() < duration {
		sched = tpcw.Concat(sched, cycle)
	}

	cfg := base
	cfg.Seed = seed + 1000*int64(index+1)
	tb, err := server.NewTestbed(cfg, sched)
	if err != nil {
		return nil, err
	}
	s := &simSite{name: name, tb: tb}
	machines := [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}
	memMB := [server.NumTiers]float64{512, 1024}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		osColl := osstat.NewCollector(tier, memMB[tier], 0.05, cfg.Seed*10+int64(tier))
		hpcColl := cpu.NewCollector(tier, machines[tier], 0.02, cfg.Seed*10+int64(tier)+100)
		switch level {
		case metrics.LevelOS:
			s.coll[tier] = []metrics.Collector{osColl}
		case metrics.LevelHPC:
			s.coll[tier] = []metrics.Collector{hpcColl}
		default: // combined: OS first, matching experiment.Trace layout
			s.coll[tier] = []metrics.Collector{osColl, hpcColl}
		}
	}
	return s, nil
}

// expvarOnce guards the process-wide expvar registration (run may be
// invoked more than once in tests).
var expvarOnce sync.Once

// startHTTP exposes the pipeline over HTTP: Prometheus text at /metrics,
// expvar JSON at /debug/vars, and a liveness probe at /healthz.
func startHTTP(addr string, pipe *serve.Pipeline) error {
	expvarOnce.Do(func() {
		expvar.Publish("capserved", expvar.Func(func() any { return pipe.Stats() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := pipe.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// Bind synchronously so a bad -addr fails the run instead of being
	// logged from a goroutine; serving itself lasts the process lifetime.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("http: %w", err)
	}
	go func() { _ = (&http.Server{Handler: mux}).Serve(ln) }()
	return nil
}
