package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// TestRunQuick drives the daemon end to end at quick scale with HTTP off:
// train, simulate two sites, stream, decide, and print the summary.
func TestRunQuick(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-scale", "quick", "-sites", "2", "-duration", "180", "-admission", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"training HPC monitor at quick scale",
		"site-1", "site-2",
		"windows=6", // 180 simulated seconds / 30-second windows
		"rejections=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}
}

// TestRunSharded runs the same seeded fleet through the unsharded and the
// sharded pipeline and requires the runs equivalent: every site's decision
// stream byte-identical (only the cross-site interleaving may move), the
// per-site summary lines identical, and the sharded run accounting for
// every enqueued sample. Chaos is on so the equivalence covers the
// degradation ladder, not just the happy path.
func TestRunSharded(t *testing.T) {
	base := []string{
		"-scale", "quick", "-sites", "3", "-duration", "240", "-seed", "7",
		"-chaos", "outage tier=db at=90 for=45",
	}
	var plain, shardedOut strings.Builder
	if err := run(base, &plain); err != nil {
		t.Fatalf("unsharded run: %v", err)
	}
	if err := run(append([]string{"-shards", "4", "-batch", "8", "-queue", "64"}, base...), &shardedOut); err != nil {
		t.Fatalf("sharded run: %v", err)
	}

	// Per-site projection of the decision stream plus the site's summary
	// line; cross-site interleaving is the only freedom sharding has.
	// mean-predict is wall-clock latency — nondeterministic between any
	// two runs — so it is scrubbed before comparison.
	project := func(s string) map[string][]string {
		bySite := make(map[string][]string)
		for _, line := range strings.Split(s, "\n") {
			if i := strings.Index(line, " mean-predict="); i >= 0 {
				if j := strings.Index(line[i+1:], " "); j >= 0 {
					line = line[:i] + line[i+1+j:]
				}
			}
			for _, site := range []string{"site-1", "site-2", "site-3"} {
				if strings.Contains(line, site) {
					bySite[site] = append(bySite[site], line)
				}
			}
		}
		return bySite
	}
	want, got := project(plain.String()), project(shardedOut.String())
	for site, lines := range want {
		if strings.Join(got[site], "\n") != strings.Join(lines, "\n") {
			t.Errorf("%s stream diverged under sharding\n--- unsharded ---\n%s\n--- sharded ---\n%s",
				site, strings.Join(lines, "\n"), strings.Join(got[site], "\n"))
		}
	}

	sharded := shardedOut.String()
	if !strings.Contains(sharded, "shards   n=4") {
		t.Errorf("sharded summary missing shard totals line in:\n%s", sharded)
	}
	for _, line := range strings.Split(sharded, "\n") {
		if !strings.HasPrefix(line, "shards   n=4") {
			continue
		}
		var n int
		var enq, proc, batches, stalls, rejClosed, rejRef uint64
		if _, err := fmt.Sscanf(line, "shards   n=%d enqueued=%d processed=%d batches=%d stalls=%d rejected-closed=%d rejected-ref=%d",
			&n, &enq, &proc, &batches, &stalls, &rejClosed, &rejRef); err != nil {
			t.Fatalf("unparsable shard totals %q: %v", line, err)
		}
		if enq == 0 || proc != enq || rejClosed != 0 || rejRef != 0 {
			t.Errorf("shard totals lost samples: %s", line)
		}
	}
}

// TestHTTPEndpoints binds a loopback port and probes /healthz and
// /metrics after a short run.
func TestHTTPEndpoints(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := run([]string{
		"-scale", "quick", "-sites", "1", "-duration", "60", "-addr", addr,
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for path, want := range map[string]string{
		"/healthz":    "ok",
		"/readyz":     `"ready":true`,
		"/models":     "{}", // adaptive lifecycle off: no version history
		"/metrics":    `capserved_windows_decided_total{site="site-1"} 2`,
		"/debug/vars": `"capserved"`,
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: missing %q in:\n%s", path, want, body)
		}
	}
}

// newTestPipeline trains a throwaway monitor on a tiny synthetic trace —
// endpoint tests need a live pipeline, not a good model.
func newTestPipeline(t *testing.T) *serve.Pipeline {
	t.Helper()
	names := []string{"m_load", "m_noise"}
	set := core.TrainingSet{Workload: "unit"}
	for i := 0; i < 24; i++ {
		overload := 0
		load := 0.2 + 0.01*float64(i%8)
		if (i/8)%2 == 1 {
			overload = 1
			load += 0.6
		}
		var vecs [server.NumTiers][]float64
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			vecs[tier] = []float64{load, 0.5}
		}
		set.Windows = append(set.Windows, core.LabeledWindow{
			Observation: core.Observation{Time: float64((i + 1) * 30), Vectors: vecs},
			Overload:    overload,
		})
	}
	mon, err := core.Train(metrics.LevelHPC, names, []core.TrainingSet{set}, core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
	})
	if err != nil {
		t.Fatalf("train synthetic monitor: %v", err)
	}
	pipe, err := serve.NewPipeline(mon, serve.Config{Window: 30})
	if err != nil {
		t.Fatalf("build pipeline: %v", err)
	}
	return pipe
}

// TestReadyzLifecycle pins the readiness protocol against the states a
// run moves through, without running a simulation: 503 while the monitor
// is still training, 503 once the pipeline exists but a site has not yet
// produced a decision, distinct from the always-200 liveness probe.
func TestReadyzLifecycle(t *testing.T) {
	st := &daemonState{}
	srv := httptest.NewServer(newMux(st, false))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "training monitor") {
		t.Errorf("/readyz before training: status %d body %q, want 503 training", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Errorf("/healthz before training: status %d, want 200 (liveness is not readiness)", code)
	}
	if code, _ := get("/metrics"); code != http.StatusServiceUnavailable {
		t.Errorf("/metrics before training: status %d, want 503", code)
	}

	// Pipeline up, fleet named, but no site has decided a window yet.
	pipe := newTestPipeline(t)
	st.setPipeline(pipe, false)
	st.setSites([]string{"site-1"})
	code, body = get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "awaiting first decision") {
		t.Errorf("/readyz before first decision: status %d body %q, want 503 awaiting", code, body)
	}
	var rep readinessReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/readyz body is not JSON: %v\n%s", err, body)
	}
	if len(rep.Sites) != 1 || rep.Sites[0].Site != "site-1" || rep.Sites[0].Ready {
		t.Errorf("per-site report = %+v, want one not-ready site-1", rep.Sites)
	}
}

// TestAdaptiveRun drives -adapt end to end on a short stream: the manager
// registers the initial model for every site (visible in the summary and
// at /models) and /readyz reports the fleet ready with version 0 active.
// The stream is far too short for a retrain — the lifecycle's conservative
// daemon defaults need tens of labeled windows — so exactly one version
// per site must exist.
func TestAdaptiveRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := run([]string{
		"-scale", "quick", "-sites", "2", "-duration", "120", "-adapt", "-addr", addr,
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"site-1   model v0 reason=initial windows=0 swapped=true",
		"site-2   model v0 reason=initial windows=0 swapped=true",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}

	for path, want := range map[string]string{
		"/readyz": `"ready":true`,
		"/models": `"reason":"initial"`,
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d\n%s", path, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: missing %q in:\n%s", path, want, body)
		}
	}
}

// TestFuseRun drives -fuse end to end under a NaN fault storm: the fusion
// stage must actually process samples (visible in the per-site fusion
// summary line), the fuse metric families must appear on /metrics, and
// /readyz must carry each site's fusion confidence.
func TestFuseRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := run([]string{
		"-scale", "quick", "-sites", "2", "-duration", "180", "-fuse", "-addr", addr,
		"-chaos", "nan tier=app at=60 for=30 p=0.5",
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "fusion fused=") {
		t.Errorf("output missing the fusion summary line in:\n%s", got)
	}
	for _, line := range strings.Split(got, "\n") {
		if !strings.Contains(line, "fusion fused=") {
			continue
		}
		var fused, imputed, gated, lowconf uint64
		var conf float64
		var site string
		if _, err := fmt.Sscanf(line, "%s fusion fused=%d imputed=%d gated=%d lowconf=%d confidence=%f",
			&site, &fused, &imputed, &gated, &lowconf, &conf); err != nil {
			t.Fatalf("unparsable fusion summary %q: %v", line, err)
		}
		if fused == 0 || imputed == 0 {
			t.Errorf("fusion saw no faulted samples: %s", line)
		}
	}

	for path, wants := range map[string][]string{
		"/metrics": {"capserved_fuse_samples_total", "capserved_fuse_imputed_total", "capserved_fuse_confidence"},
		"/readyz":  {`"fusion"`, `"confidence"`},
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for _, want := range wants {
			if !strings.Contains(string(body), want) {
				t.Errorf("GET %s: missing %q in:\n%s", path, want, body)
			}
		}
	}
}

// TestTopologyAutoscaleRun drives -topology -autoscale end to end: the
// fleet runs on the reference tier DAG with every pool at its minimum,
// the bursting site overloads, the autoscaler grows its bottleneck pool
// (printed as scale events and counted in the per-site summary), and the
// pool-replica gauge appears on /metrics.
func TestTopologyAutoscaleRun(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := run([]string{
		"-scale", "quick", "-sites", "2", "-duration", "420",
		"-topology", "-autoscale", "-addr", addr,
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"autoscale: scale site=", "dir=up",
		"autoscale ups=", "replicas: app=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, want := range []string{"capserved_pool_replicas{", "capserved_autoscale_total{"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestBadFlags pins the error paths.
// TestPprofMountOptIn pins that the runtime profiler is served only when
// asked for: /debug/pprof/ answers on a -pprof mux and 404s otherwise.
func TestPprofMountOptIn(t *testing.T) {
	st := &daemonState{}
	withProf := httptest.NewServer(newMux(st, true))
	defer withProf.Close()
	without := httptest.NewServer(newMux(st, false))
	defer without.Close()

	get := func(base string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get(withProf.URL); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("-pprof mux /debug/pprof/: status %d body %q, want 200 with profile index", code, body)
	}
	if code, _ := get(without.URL); code != http.StatusNotFound {
		t.Errorf("default mux /debug/pprof/: status %d, want 404", code)
	}
}

func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "medium"},
		{"-level", "gpu"},
		{"-sites", "0"},
		{"-pprof"},                          // profiling needs the HTTP mux (-addr)
		{"-autoscale"},                      // the replica loop needs the DAG testbed (-topology)
		{"-topology", "-listen", "0:bogus"}, // topology sites are local-simulation only
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
