package main

import (
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// TestRunQuick drives the daemon end to end at quick scale with HTTP off:
// train, simulate two sites, stream, decide, and print the summary.
func TestRunQuick(t *testing.T) {
	var out strings.Builder
	err := run([]string{
		"-scale", "quick", "-sites", "2", "-duration", "180", "-admission", "8",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"training HPC monitor at quick scale",
		"site-1", "site-2",
		"windows=6", // 180 simulated seconds / 30-second windows
		"rejections=",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q in:\n%s", want, got)
		}
	}
}

// TestHTTPEndpoints binds a loopback port and probes /healthz and
// /metrics after a short run.
func TestHTTPEndpoints(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("free port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var out strings.Builder
	if err := run([]string{
		"-scale", "quick", "-sites", "1", "-duration", "60", "-addr", addr,
	}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for path, want := range map[string]string{
		"/healthz":    "ok",
		"/metrics":    `capserved_windows_decided_total{site="site-1"} 2`,
		"/debug/vars": `"capserved"`,
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(string(body), want) {
			t.Errorf("GET %s: missing %q in:\n%s", path, want, body)
		}
	}
}

// TestBadFlags pins the error paths.
func TestBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-scale", "medium"},
		{"-level", "gpu"},
		{"-sites", "0"},
	} {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
