// Command capstress stress-tests the simulated two-tier website under a
// chosen TPC-W mix and prints a per-window time series of application
// health and per-tier telemetry — the raw material of the paper's offline
// capacity calibration.
//
// Usage:
//
//	capstress -mix browsing -ebs 400 -duration 1800
//	capstress -mix ordering -ramp 50:700:10 -step 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hpcap/internal/metrics"
	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "capstress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("capstress", flag.ContinueOnError)
	mixName := fs.String("mix", "shopping", "traffic mix: browsing|shopping|ordering|unknown")
	ebs := fs.Int("ebs", 200, "steady emulated-browser population")
	ramp := fs.String("ramp", "", "ramp start:end:steps (overrides -ebs)")
	step := fs.Float64("step", 120, "ramp step duration, seconds")
	duration := fs.Float64("duration", 1800, "steady run duration, seconds")
	window := fs.Int("window", 30, "reporting window, seconds")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := mixByName(*mixName)
	if err != nil {
		return err
	}
	var sched tpcw.Schedule
	if *ramp != "" {
		parts := strings.Split(*ramp, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -ramp %q, want start:end:steps", *ramp)
		}
		start, err1 := strconv.Atoi(parts[0])
		end, err2 := strconv.Atoi(parts[1])
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad -ramp %q", *ramp)
		}
		sched = tpcw.Ramp(mix, start, end, steps, *step)
	} else {
		sched = tpcw.Steady(mix, *ebs, *duration)
	}

	cfg := server.DefaultConfig()
	cfg.Seed = *seed
	tb, err := server.NewTestbed(cfg, sched)
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}

	labeler := pi.Labeler{}
	fmt.Printf("%8s %5s %8s %9s %7s | %6s %6s %7s %7s | %6s %6s %7s %7s | %5s\n",
		"time(s)", "EBs", "thr/s", "meanRT", "inflight",
		"appU", "appRQ", "appMiss", "appDil",
		"dbU", "dbRQ", "dbMiss", "dbDil", "state")
	total := sched.Duration()
	for t := 0.0; t < total; t += float64(*window) {
		var completions, arrivals int
		var rtW float64
		var last server.Snapshot
		var appBusy, dbBusy, appMiss, dbMiss, appDil, dbDil float64
		for i := 0; i < *window; i++ {
			s := tb.RunInterval(1)
			completions += s.Completions
			arrivals += s.Arrivals
			rtW += s.MeanRT * float64(s.Completions)
			appBusy += s.Tiers[server.TierApp].BusySeconds
			dbBusy += s.Tiers[server.TierDB].BusySeconds
			appMiss += s.Tiers[server.TierApp].MeanMissRatio
			dbMiss += s.Tiers[server.TierDB].MeanMissRatio
			appDil += s.Tiers[server.TierApp].MeanDilation
			dbDil += s.Tiers[server.TierDB].MeanDilation
			last = s
		}
		w := float64(*window)
		meanRT := 0.0
		if completions > 0 {
			meanRT = rtW / float64(completions)
		}
		state := "ok"
		label := labeler.Label(sampleHealth(meanRT, completions, arrivals, *window))
		if label == 1 {
			state = "OVER"
		}
		fmt.Printf("%8.0f %5d %8.1f %9.3f %7d | %6.2f %6d %7.3f %7.2f | %6.2f %6d %7.3f %7.2f | %5s\n",
			t+w, last.ActiveEBs, float64(completions)/w, meanRT, last.InFlight,
			appBusy/w, last.Tiers[server.TierApp].RunQueue, appMiss/w, appDil/w,
			dbBusy/w, last.Tiers[server.TierDB].RunQueue, dbMiss/w, dbDil/w,
			state)
	}
	arr, comp, rej, inflight := tb.Conservation()
	fmt.Printf("\ntotals: arrivals=%d completions=%d rejections=%d in-flight=%d\n",
		arr, comp, rej, inflight)
	return nil
}

func sampleHealth(meanRT float64, completions, arrivals, window int) metrics.Sample {
	return metrics.Sample{
		MeanRT:      meanRT,
		Throughput:  float64(completions) / float64(window),
		ArrivalRate: float64(arrivals) / float64(window),
	}
}

func mixByName(name string) (tpcw.Mix, error) {
	switch name {
	case "browsing":
		return tpcw.Browsing(), nil
	case "shopping":
		return tpcw.Shopping(), nil
	case "ordering":
		return tpcw.Ordering(), nil
	case "unknown":
		return tpcw.Unknown(), nil
	default:
		return tpcw.Mix{}, fmt.Errorf("unknown mix %q", name)
	}
}
