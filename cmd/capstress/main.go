// Command capstress stress-tests the simulated two-tier website under a
// chosen TPC-W mix and prints a per-window time series of application
// health and per-tier telemetry — the raw material of the paper's offline
// capacity calibration.
//
// Usage:
//
//	capstress -mix browsing -ebs 400 -duration 1800
//	capstress -mix ordering -ramp 50:700:10 -step 120
//	capstress -traffic "steady mix=browsing base=300 for=240; flash base=300 peak=2000 for=240 hold=120 decay=60"
//	capstress -ebs 300 -chaos "nan tier=app at=120 for=60 p=0.2"
//	capstress -sites 100000 -seconds 40              # fleet-scale ingest, unsharded
//	capstress -sites 100000 -seconds 40 -shards 8    # sharded fleet-scale ingest
//	capstress -sites 100000 -seconds 40 -shards 8 -fuse  # with counter fusion on
//
// With -sites N (N > 0) capstress switches to the fleet-scale ingest leg:
// it trains a quick HPC monitor, records one minute of per-tier counter
// vectors from a steady testbed, then replays them as N sites' 1-second
// samples through the serving pipeline — the unsharded one, or with
// -shards the sharded one on its fused fast path (Register once, then
// Batcher.AddSite: one queue slot per site-second carrying every tier's
// vector). The first synthetic second warms the site table and is
// excluded; the measured legs report sites/sec, samples/sec, ns per
// ingest sample, sampled p50/p99 per-site scrape latency, and allocation
// rates as one JSON row on stdout (progress goes to stderr) — the format
// scripts/bench_serve.sh collects into BENCH_serve.json.
//
// With -chaos the run also samples per-tier hardware counters through the
// deterministic fault injector (internal/chaos), with the flaky reads
// hardened by the bounded-retry collector the serving stack uses: the
// table gains a faults column counting injections per window, and the
// totals report the injector's and retrier's counters. The testbed itself
// is never faulted — chaos corrupts telemetry, not traffic.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hpcap/internal/chaos"
	"hpcap/internal/cpu"
	"hpcap/internal/experiment"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/pi"
	"hpcap/internal/predictor"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "capstress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("capstress", flag.ContinueOnError)
	mixName := fs.String("mix", "shopping", "traffic mix: browsing|shopping|ordering|unknown")
	ebs := fs.Int("ebs", 200, "steady emulated-browser population")
	ramp := fs.String("ramp", "", "ramp start:end:steps (overrides -ebs)")
	traffic := fs.String("traffic", "", `traffic program (overrides -mix/-ebs/-ramp), e.g. "steady mix=browsing base=300 for=240; flash base=300 peak=2000 for=300 hold=120 decay=60"`)
	step := fs.Float64("step", 120, "ramp step duration, seconds")
	duration := fs.Float64("duration", 1800, "steady run duration, seconds")
	window := fs.Int("window", 30, "reporting window, seconds")
	seed := fs.Int64("seed", 1, "random seed")
	chaosSpec := fs.String("chaos", "", `fault schedule to inject into the counter stream, e.g. "nan tier=app at=120 for=60 p=0.2"`)
	scaleSites := fs.Int("sites", 0, "fleet-scale ingest leg: number of sites to stream; 0 runs the classic stress table")
	scaleSeconds := fs.Int("seconds", 10, "fleet-scale leg: measured synthetic seconds to stream per site")
	shards := fs.Int("shards", 0, "fleet-scale leg: ingest shards; 0 measures the unsharded pipeline")
	batch := fs.Int("batch", 0, "fleet-scale leg: samples per shard batch (0 takes the default)")
	queue := fs.Int("queue", 0, "fleet-scale leg: per-shard queue capacity (0 takes the default)")
	leg := fs.String("leg", "", "fleet-scale leg: row-name override; defaults to unsharded/sharded by -shards")
	fuseOn := fs.Bool("fuse", false, "fleet-scale leg: run every sample through the counter-fusion stage")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scaleSites > 0 {
		return runScale(scaleOpts{
			sites:   *scaleSites,
			seconds: *scaleSeconds,
			shards:  *shards,
			batch:   *batch,
			queue:   *queue,
			window:  *window,
			seed:    *seed,
			leg:     *leg,
			fuse:    *fuseOn,
		}, os.Stdout, os.Stderr)
	}
	if *shards != 0 || *batch != 0 || *queue != 0 || *leg != "" || *fuseOn {
		return fmt.Errorf("-shards, -batch, -queue, -leg, and -fuse only apply to the fleet-scale leg (-sites > 0)")
	}

	mix, err := mixByName(*mixName)
	if err != nil {
		return err
	}
	var sched tpcw.Schedule
	if *traffic != "" {
		if *ramp != "" {
			return fmt.Errorf("-traffic and -ramp are mutually exclusive")
		}
		prog, err := tpcw.ParseTraffic(*traffic)
		if err != nil {
			return fmt.Errorf("-traffic: %w", err)
		}
		sched = prog.Schedule()
	} else if *ramp != "" {
		parts := strings.Split(*ramp, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -ramp %q, want start:end:steps", *ramp)
		}
		start, err1 := strconv.Atoi(parts[0])
		end, err2 := strconv.Atoi(parts[1])
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad -ramp %q", *ramp)
		}
		sched = tpcw.Ramp(mix, start, end, steps, *step)
	} else {
		sched = tpcw.Steady(mix, *ebs, *duration)
	}

	cfg := server.DefaultConfig()
	cfg.Seed = *seed
	tb, err := server.NewTestbed(cfg, sched)
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}

	// Chaos mode: sample per-tier counters through retry-hardened flaky
	// collectors, then run the vectors through the fault injector.
	var (
		inj  *chaos.Injector
		coll [server.NumTiers]*metrics.RetryCollector
	)
	if *chaosSpec != "" {
		csched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = chaos.NewInjector(csched, *seed)
		machines := [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			flaky := chaos.NewFlakyCollector(
				cpu.NewCollector(tier, machines[tier], 0.02, *seed*10+int64(tier)+100), csched)
			coll[tier] = metrics.NewRetryCollector(flaky, 2)
		}
	}

	labeler := pi.Labeler{}
	header := fmt.Sprintf("%8s %5s %8s %9s %7s | %6s %6s %7s %7s | %6s %6s %7s %7s | %5s",
		"time(s)", "EBs", "thr/s", "meanRT", "inflight",
		"appU", "appRQ", "appMiss", "appDil",
		"dbU", "dbRQ", "dbMiss", "dbDil", "state")
	if inj != nil {
		header += fmt.Sprintf(" | %6s", "faults")
	}
	fmt.Println(header)
	total := sched.Duration()
	var lastInjected uint64
	for t := 0.0; t < total; t += float64(*window) {
		var completions, arrivals int
		var rtW float64
		var last server.Snapshot
		var appBusy, dbBusy, appMiss, dbMiss, appDil, dbDil float64
		for i := 0; i < *window; i++ {
			s := tb.RunInterval(1)
			if inj != nil {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					inj.Apply(serve.Sample{
						Site:   "stress",
						Tier:   tier,
						Time:   s.Time,
						Values: coll[tier].Collect(s, 1),
					})
				}
			}
			completions += s.Completions
			arrivals += s.Arrivals
			rtW += s.MeanRT * float64(s.Completions)
			appBusy += s.Tiers[server.TierApp].BusySeconds
			dbBusy += s.Tiers[server.TierDB].BusySeconds
			appMiss += s.Tiers[server.TierApp].MeanMissRatio
			dbMiss += s.Tiers[server.TierDB].MeanMissRatio
			appDil += s.Tiers[server.TierApp].MeanDilation
			dbDil += s.Tiers[server.TierDB].MeanDilation
			last = s
		}
		w := float64(*window)
		meanRT := 0.0
		if completions > 0 {
			meanRT = rtW / float64(completions)
		}
		state := "ok"
		label := labeler.Label(sampleHealth(meanRT, completions, arrivals, *window))
		if label == 1 {
			state = "OVER"
		}
		line := fmt.Sprintf("%8.0f %5d %8.1f %9.3f %7d | %6.2f %6d %7.3f %7.2f | %6.2f %6d %7.3f %7.2f | %5s",
			t+w, last.ActiveEBs, float64(completions)/w, meanRT, last.InFlight,
			appBusy/w, last.Tiers[server.TierApp].RunQueue, appMiss/w, appDil/w,
			dbBusy/w, last.Tiers[server.TierDB].RunQueue, dbMiss/w, dbDil/w,
			state)
		if inj != nil {
			injected := inj.Stats().Injected()
			line += fmt.Sprintf(" | %6d", injected-lastInjected)
			lastInjected = injected
		}
		fmt.Println(line)
	}
	arr, comp, rej, inflight := tb.Conservation()
	fmt.Printf("\ntotals: arrivals=%d completions=%d rejections=%d in-flight=%d\n",
		arr, comp, rej, inflight)
	if inj != nil {
		inj.Drain()
		fs := inj.Stats()
		var retries, fallbacks uint64
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			retries += coll[tier].Retries()
			fallbacks += coll[tier].Failures()
		}
		fmt.Printf("chaos:  offered=%d emitted=%d injected=%d dropped=%d nan=%d stuck=%d stalled=%d dup=%d skew=%d outage=%d retries=%d fallbacks=%d\n",
			fs.Offered, fs.Emitted, fs.Injected(), fs.Dropped, fs.Corrupted, fs.Frozen,
			fs.Stalled, fs.Duplicated, fs.Skewed, fs.Outaged, retries, fallbacks)
	}
	return nil
}

// scaleOpts parameterizes one fleet-scale ingest leg.
type scaleOpts struct {
	sites, seconds       int
	shards, batch, queue int
	window               int
	seed                 int64
	leg                  string
	fuse                 bool
}

// scaleRow is the leg's result: one JSON object per line on stdout, the
// unit scripts/bench_serve.sh folds into BENCH_serve.json.
type scaleRow struct {
	Name          string  `json:"name"`
	Sites         int     `json:"sites"`
	Fused         bool    `json:"fused"`
	Shards        int     `json:"shards"`
	BatchSize     int     `json:"batch_size"`
	QueueCapacity int     `json:"queue_capacity"`
	Seconds       int     `json:"seconds"`
	Samples       int     `json:"samples"`
	SitesPerSec   float64 `json:"sites_per_sec"`
	SamplesPerSec float64 `json:"samples_per_sec"`
	NsPerOp       float64 `json:"ns_per_op"`
	P50IngestNs   int64   `json:"p50_ingest_ns"`
	P99IngestNs   int64   `json:"p99_ingest_ns"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	Decisions     uint64  `json:"decisions"`
}

// latencySampleEvery thins the per-call latency probes so time.Now is off
// the hot path for 63 of every 64 ingests.
const latencySampleEvery = 64

// runScale measures steady-state fleet ingest: o.sites sites streaming one
// sample per tier per synthetic second for o.seconds seconds, through the
// unsharded pipeline or (o.shards > 0) the sharded pipeline's fused
// Batcher.AddSite fast path. The first second warms the site tables and is
// excluded from every number; the measured window ends at a full drain
// (Sync) so sharded throughput cannot hide samples in the queues.
func runScale(o scaleOpts, out, progress io.Writer) error {
	if o.seconds < 1 {
		return fmt.Errorf("-seconds must be >= 1, got %d", o.seconds)
	}
	fmt.Fprintf(progress, "training quick HPC monitor...\n")
	lab := experiment.NewLab(experiment.QuickScale())
	lab.Seed = o.seed
	monitor, err := lab.TrainMonitor(metrics.LevelHPC, predictor.Config{})
	if err != nil {
		return fmt.Errorf("train monitor: %w", err)
	}

	// One minute of real per-tier counter vectors from a steady testbed,
	// cycled as every site's stream. Shared read-only across sites: the
	// pipeline never mutates sample values, so one recording serves 100k
	// sites without 100k collector instances.
	const recordSeconds = 60
	cfg := server.DefaultConfig()
	cfg.Seed = o.seed
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Browsing(), 200, recordSeconds+1))
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}
	machines := [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}
	var vecs [server.NumTiers][][]float64
	coll := [server.NumTiers]metrics.Collector{}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		coll[tier] = cpu.NewCollector(tier, machines[tier], 0.02, o.seed*10+int64(tier)+100)
	}
	for i := 0; i < recordSeconds; i++ {
		s := tb.RunInterval(1)
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			vecs[tier] = append(vecs[tier], coll[tier].Collect(s, 1))
		}
	}

	var decisions atomic.Uint64
	scfg := serve.Config{
		Window:     o.window,
		OnDecision: func(serve.Decision) { decisions.Add(1) },
	}
	if o.fuse {
		fc := fuse.DefaultConfig()
		scfg.Fuse = &fc
	}

	leg := o.leg
	row := scaleRow{Sites: o.sites, Seconds: o.seconds, Fused: o.fuse}
	var (
		ingestSite func(i int, ts float64, vs *[server.NumTiers][]float64)
		barrier    func()
		finish     func()
	)
	if o.shards > 0 {
		sc := serve.ShardConfig{Shards: o.shards, BatchSize: o.batch, QueueCapacity: o.queue}
		sp, err := serve.NewShardedPipeline(monitor, scfg, sc)
		if err != nil {
			return fmt.Errorf("build sharded pipeline: %w", err)
		}
		// The fleet path: resolve each site to a shard-local ref once, then
		// batch fused scrapes by ref — no hashing, name lookup, or per-sample
		// shard lock, and one queue slot per site-second instead of per tier.
		refs := make([]serve.SiteRef, o.sites)
		for i := range refs {
			refs[i] = sp.Register(fmt.Sprintf("site-%06d", i))
		}
		bt := sp.NewBatcher()
		ingestSite = func(i int, ts float64, vs *[server.NumTiers][]float64) {
			bt.AddSite(refs[i], ts, *vs)
		}
		barrier = func() {
			bt.Flush()
			sp.Sync()
		}
		finish = func() {
			sp.Flush()
			sp.Close()
			tot := sp.Totals()
			fmt.Fprintf(progress, "shards: enqueued=%d processed=%d batches=%d stalls=%d\n",
				tot.Enqueued, tot.Processed, tot.Batches, tot.Stalls)
		}
		if leg == "" {
			leg = "sharded"
		}
		def := serve.DefaultShardConfig()
		row.Shards, row.BatchSize, row.QueueCapacity = o.shards, o.batch, o.queue
		if row.BatchSize == 0 {
			row.BatchSize = def.BatchSize
		}
		if row.QueueCapacity == 0 {
			row.QueueCapacity = def.QueueCapacity
		}
	} else {
		p, err := serve.NewPipeline(monitor, scfg)
		if err != nil {
			return fmt.Errorf("build pipeline: %w", err)
		}
		names := make([]string, o.sites)
		for i := range names {
			names[i] = fmt.Sprintf("site-%06d", i)
		}
		ingestSite = func(i int, ts float64, vs *[server.NumTiers][]float64) {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				p.Ingest(serve.Sample{Site: names[i], Tier: tier, Time: ts, Values: vs[tier]})
			}
		}
		barrier = func() {}
		finish = p.Flush
		if leg == "" {
			leg = "unsharded"
		}
	}
	if o.leg == "" && o.fuse {
		leg += "-fuse"
	}
	row.Name = fmt.Sprintf("ScaleIngest/%s/sites=%d", leg, o.sites)

	// The latency probe times whole site scrapes (all tiers), every
	// latencySampleEvery-th site — the unit a fleet collector hands over.
	var latencies []int64
	calls := 0
	streamSecond := func(sec int, probe bool) {
		ts := float64(sec)
		vi := (sec - 1) % recordSeconds
		var scrape [server.NumTiers][]float64
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			scrape[tier] = vecs[tier][vi]
		}
		for i := 0; i < o.sites; i++ {
			if probe && calls%latencySampleEvery == 0 {
				t0 := time.Now()
				ingestSite(i, ts, &scrape)
				latencies = append(latencies, time.Since(t0).Nanoseconds())
			} else {
				ingestSite(i, ts, &scrape)
			}
			calls++
		}
	}

	fmt.Fprintf(progress, "warming %d sites...\n", o.sites)
	streamSecond(1, false)
	barrier()

	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	for sec := 2; sec <= o.seconds+1; sec++ {
		streamSecond(sec, true)
		if (sec-1)%10 == 0 || sec == o.seconds+1 {
			fmt.Fprintf(progress, "streamed %d/%d seconds (%d samples)\n", sec-1, o.seconds, calls*int(server.NumTiers))
		}
	}
	barrier()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	finish()

	samples := o.sites * int(server.NumTiers) * o.seconds
	row.Samples = samples
	row.SitesPerSec = float64(o.sites*o.seconds) / elapsed.Seconds()
	row.SamplesPerSec = float64(samples) / elapsed.Seconds()
	row.NsPerOp = float64(elapsed.Nanoseconds()) / float64(samples)
	row.BytesPerOp = float64(m1.TotalAlloc-m0.TotalAlloc) / float64(samples)
	row.AllocsPerOp = float64(m1.Mallocs-m0.Mallocs) / float64(samples)
	row.Decisions = decisions.Load()
	if len(latencies) > 0 {
		sort.Slice(latencies, func(a, b int) bool { return latencies[a] < latencies[b] })
		row.P50IngestNs = latencies[len(latencies)/2]
		row.P99IngestNs = latencies[len(latencies)*99/100]
	}

	enc := json.NewEncoder(out)
	return enc.Encode(row)
}

func sampleHealth(meanRT float64, completions, arrivals, window int) metrics.Sample {
	return metrics.Sample{
		MeanRT:      meanRT,
		Throughput:  float64(completions) / float64(window),
		ArrivalRate: float64(arrivals) / float64(window),
	}
}

func mixByName(name string) (tpcw.Mix, error) {
	switch name {
	case "browsing":
		return tpcw.Browsing(), nil
	case "shopping":
		return tpcw.Shopping(), nil
	case "ordering":
		return tpcw.Ordering(), nil
	case "unknown":
		return tpcw.Unknown(), nil
	default:
		return tpcw.Mix{}, fmt.Errorf("unknown mix %q", name)
	}
}
