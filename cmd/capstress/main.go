// Command capstress stress-tests the simulated two-tier website under a
// chosen TPC-W mix and prints a per-window time series of application
// health and per-tier telemetry — the raw material of the paper's offline
// capacity calibration.
//
// Usage:
//
//	capstress -mix browsing -ebs 400 -duration 1800
//	capstress -mix ordering -ramp 50:700:10 -step 120
//	capstress -ebs 300 -chaos "nan tier=app at=120 for=60 p=0.2"
//
// With -chaos the run also samples per-tier hardware counters through the
// deterministic fault injector (internal/chaos), with the flaky reads
// hardened by the bounded-retry collector the serving stack uses: the
// table gains a faults column counting injections per window, and the
// totals report the injector's and retrier's counters. The testbed itself
// is never faulted — chaos corrupts telemetry, not traffic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hpcap/internal/chaos"
	"hpcap/internal/cpu"
	"hpcap/internal/metrics"
	"hpcap/internal/pi"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "capstress:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("capstress", flag.ContinueOnError)
	mixName := fs.String("mix", "shopping", "traffic mix: browsing|shopping|ordering|unknown")
	ebs := fs.Int("ebs", 200, "steady emulated-browser population")
	ramp := fs.String("ramp", "", "ramp start:end:steps (overrides -ebs)")
	step := fs.Float64("step", 120, "ramp step duration, seconds")
	duration := fs.Float64("duration", 1800, "steady run duration, seconds")
	window := fs.Int("window", 30, "reporting window, seconds")
	seed := fs.Int64("seed", 1, "random seed")
	chaosSpec := fs.String("chaos", "", `fault schedule to inject into the counter stream, e.g. "nan tier=app at=120 for=60 p=0.2"`)
	if err := fs.Parse(args); err != nil {
		return err
	}

	mix, err := mixByName(*mixName)
	if err != nil {
		return err
	}
	var sched tpcw.Schedule
	if *ramp != "" {
		parts := strings.Split(*ramp, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -ramp %q, want start:end:steps", *ramp)
		}
		start, err1 := strconv.Atoi(parts[0])
		end, err2 := strconv.Atoi(parts[1])
		steps, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad -ramp %q", *ramp)
		}
		sched = tpcw.Ramp(mix, start, end, steps, *step)
	} else {
		sched = tpcw.Steady(mix, *ebs, *duration)
	}

	cfg := server.DefaultConfig()
	cfg.Seed = *seed
	tb, err := server.NewTestbed(cfg, sched)
	if err != nil {
		return err
	}
	if err := tb.Start(); err != nil {
		return err
	}

	// Chaos mode: sample per-tier counters through retry-hardened flaky
	// collectors, then run the vectors through the fault injector.
	var (
		inj  *chaos.Injector
		coll [server.NumTiers]*metrics.RetryCollector
	)
	if *chaosSpec != "" {
		csched, err := chaos.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		inj = chaos.NewInjector(csched, *seed)
		machines := [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			flaky := chaos.NewFlakyCollector(
				cpu.NewCollector(tier, machines[tier], 0.02, *seed*10+int64(tier)+100), csched)
			coll[tier] = metrics.NewRetryCollector(flaky, 2)
		}
	}

	labeler := pi.Labeler{}
	header := fmt.Sprintf("%8s %5s %8s %9s %7s | %6s %6s %7s %7s | %6s %6s %7s %7s | %5s",
		"time(s)", "EBs", "thr/s", "meanRT", "inflight",
		"appU", "appRQ", "appMiss", "appDil",
		"dbU", "dbRQ", "dbMiss", "dbDil", "state")
	if inj != nil {
		header += fmt.Sprintf(" | %6s", "faults")
	}
	fmt.Println(header)
	total := sched.Duration()
	var lastInjected uint64
	for t := 0.0; t < total; t += float64(*window) {
		var completions, arrivals int
		var rtW float64
		var last server.Snapshot
		var appBusy, dbBusy, appMiss, dbMiss, appDil, dbDil float64
		for i := 0; i < *window; i++ {
			s := tb.RunInterval(1)
			if inj != nil {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					inj.Apply(serve.Sample{
						Site:   "stress",
						Tier:   tier,
						Time:   s.Time,
						Values: coll[tier].Collect(s, 1),
					})
				}
			}
			completions += s.Completions
			arrivals += s.Arrivals
			rtW += s.MeanRT * float64(s.Completions)
			appBusy += s.Tiers[server.TierApp].BusySeconds
			dbBusy += s.Tiers[server.TierDB].BusySeconds
			appMiss += s.Tiers[server.TierApp].MeanMissRatio
			dbMiss += s.Tiers[server.TierDB].MeanMissRatio
			appDil += s.Tiers[server.TierApp].MeanDilation
			dbDil += s.Tiers[server.TierDB].MeanDilation
			last = s
		}
		w := float64(*window)
		meanRT := 0.0
		if completions > 0 {
			meanRT = rtW / float64(completions)
		}
		state := "ok"
		label := labeler.Label(sampleHealth(meanRT, completions, arrivals, *window))
		if label == 1 {
			state = "OVER"
		}
		line := fmt.Sprintf("%8.0f %5d %8.1f %9.3f %7d | %6.2f %6d %7.3f %7.2f | %6.2f %6d %7.3f %7.2f | %5s",
			t+w, last.ActiveEBs, float64(completions)/w, meanRT, last.InFlight,
			appBusy/w, last.Tiers[server.TierApp].RunQueue, appMiss/w, appDil/w,
			dbBusy/w, last.Tiers[server.TierDB].RunQueue, dbMiss/w, dbDil/w,
			state)
		if inj != nil {
			injected := inj.Stats().Injected()
			line += fmt.Sprintf(" | %6d", injected-lastInjected)
			lastInjected = injected
		}
		fmt.Println(line)
	}
	arr, comp, rej, inflight := tb.Conservation()
	fmt.Printf("\ntotals: arrivals=%d completions=%d rejections=%d in-flight=%d\n",
		arr, comp, rej, inflight)
	if inj != nil {
		inj.Drain()
		fs := inj.Stats()
		var retries, fallbacks uint64
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			retries += coll[tier].Retries()
			fallbacks += coll[tier].Failures()
		}
		fmt.Printf("chaos:  offered=%d emitted=%d injected=%d dropped=%d nan=%d stuck=%d stalled=%d dup=%d skew=%d outage=%d retries=%d fallbacks=%d\n",
			fs.Offered, fs.Emitted, fs.Injected(), fs.Dropped, fs.Corrupted, fs.Frozen,
			fs.Stalled, fs.Duplicated, fs.Skewed, fs.Outaged, retries, fallbacks)
	}
	return nil
}

func sampleHealth(meanRT float64, completions, arrivals, window int) metrics.Sample {
	return metrics.Sample{
		MeanRT:      meanRT,
		Throughput:  float64(completions) / float64(window),
		ArrivalRate: float64(arrivals) / float64(window),
	}
}

func mixByName(name string) (tpcw.Mix, error) {
	switch name {
	case "browsing":
		return tpcw.Browsing(), nil
	case "shopping":
		return tpcw.Shopping(), nil
	case "ordering":
		return tpcw.Ordering(), nil
	case "unknown":
		return tpcw.Unknown(), nil
	default:
		return tpcw.Mix{}, fmt.Errorf("unknown mix %q", name)
	}
}
