package main

import "testing"

func TestMixByName(t *testing.T) {
	for _, name := range []string{"browsing", "shopping", "ordering", "unknown"} {
		mix, err := mixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := mixByName("nope"); err == nil {
		t.Error("unknown mix not rejected")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-mix", "nope"}); err == nil {
		t.Error("bad mix not rejected")
	}
	if err := run([]string{"-ramp", "10:20"}); err == nil {
		t.Error("malformed ramp not rejected")
	}
	if err := run([]string{"-ramp", "a:b:c"}); err == nil {
		t.Error("non-numeric ramp not rejected")
	}
}

func TestRunSteadyShort(t *testing.T) {
	if err := run([]string{"-mix", "shopping", "-ebs", "20", "-duration", "60", "-window", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRampShort(t *testing.T) {
	if err := run([]string{"-mix", "ordering", "-ramp", "10:30:2", "-step", "30"}); err != nil {
		t.Fatal(err)
	}
}
