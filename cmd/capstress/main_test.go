package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestMixByName(t *testing.T) {
	for _, name := range []string{"browsing", "shopping", "ordering", "unknown"} {
		mix, err := mixByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := mix.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if _, err := mixByName("nope"); err == nil {
		t.Error("unknown mix not rejected")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-mix", "nope"}); err == nil {
		t.Error("bad mix not rejected")
	}
	if err := run([]string{"-ramp", "10:20"}); err == nil {
		t.Error("malformed ramp not rejected")
	}
	if err := run([]string{"-ramp", "a:b:c"}); err == nil {
		t.Error("non-numeric ramp not rejected")
	}
	if err := run([]string{"-traffic", "bogus for=10"}); err == nil {
		t.Error("unknown traffic shape not rejected")
	}
	if err := run([]string{"-traffic", "steady for=60", "-ramp", "10:30:2"}); err == nil {
		t.Error("-traffic with -ramp not rejected")
	}
}

func TestRunSteadyShort(t *testing.T) {
	if err := run([]string{"-mix", "shopping", "-ebs", "20", "-duration", "60", "-window", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRampShort(t *testing.T) {
	if err := run([]string{"-mix", "ordering", "-ramp", "10:30:2", "-step", "30"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunTrafficShort drives a multi-clause traffic program through the
// classic stress table.
func TestRunTrafficShort(t *testing.T) {
	prog := "steady mix=browsing base=20 for=30; leak base=20 rate=0.5 for=30"
	if err := run([]string{"-traffic", prog, "-window", "30"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunScaleLegs drives the fleet-scale ingest leg end to end at toy
// size, unsharded and sharded, and checks the emitted JSON row: geometry
// echoed, sample accounting exact, throughput measured, and — window and
// stream being identical — the same number of decisions from both legs.
func TestRunScaleLegs(t *testing.T) {
	rows := make(map[string]scaleRow)
	for _, shards := range []int{0, 2} {
		var out, progress strings.Builder
		err := runScale(scaleOpts{
			sites: 40, seconds: 8, shards: shards, batch: 4, queue: 16,
			window: 4, seed: 1,
		}, &out, &progress)
		if err != nil {
			t.Fatalf("runScale(shards=%d): %v", shards, err)
		}
		var row scaleRow
		if err := json.Unmarshal([]byte(out.String()), &row); err != nil {
			t.Fatalf("row not JSON: %v\n%s", err, out.String())
		}
		rows[row.Name] = row
		if row.Sites != 40 || row.Seconds != 8 || row.Shards != shards {
			t.Errorf("geometry echoed wrong: %+v", row)
		}
		if want := 40 * 2 * 8; row.Samples != want {
			t.Errorf("samples = %d, want %d", row.Samples, want)
		}
		if row.SitesPerSec <= 0 || row.NsPerOp <= 0 || row.P99IngestNs < row.P50IngestNs {
			t.Errorf("throughput fields not measured: %+v", row)
		}
		// 8 measured seconds over 4-second windows: decisions must flow.
		if row.Decisions == 0 {
			t.Errorf("no decisions in %s", row.Name)
		}
	}
	u, ok1 := rows["ScaleIngest/unsharded/sites=40"]
	s, ok2 := rows["ScaleIngest/sharded/sites=40"]
	if !ok1 || !ok2 {
		t.Fatalf("row names wrong: %v", rows)
	}
	if u.Decisions != s.Decisions {
		t.Errorf("decision counts diverged: unsharded %d, sharded %d", u.Decisions, s.Decisions)
	}
	if s.BatchSize != 4 || s.QueueCapacity != 16 {
		t.Errorf("sharded geometry not echoed: %+v", s)
	}
}

// TestRunScaleFuseLeg runs the sharded fleet leg with counter fusion on:
// the row must name the fuse leg, echo the flag, and still decide every
// window — the fusion stage sits on the ingest path, not in its way.
func TestRunScaleFuseLeg(t *testing.T) {
	var out, progress strings.Builder
	err := runScale(scaleOpts{
		sites: 40, seconds: 8, shards: 2, batch: 4, queue: 16,
		window: 4, seed: 1, fuse: true,
	}, &out, &progress)
	if err != nil {
		t.Fatalf("runScale(fuse): %v", err)
	}
	var row scaleRow
	if err := json.Unmarshal([]byte(out.String()), &row); err != nil {
		t.Fatalf("row not JSON: %v\n%s", err, out.String())
	}
	if row.Name != "ScaleIngest/sharded-fuse/sites=40" || !row.Fused {
		t.Errorf("fuse leg not echoed: %+v", row)
	}
	if row.Decisions == 0 {
		t.Errorf("no decisions in %s", row.Name)
	}
}

// TestRunScaleFlagErrors pins the scale-leg flag validation.
func TestRunScaleFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-sites", "10", "-seconds", "0"},
		{"-shards", "2"},
		{"-batch", "8"},
		{"-leg", "x"},
	} {
		if err := run(args); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
