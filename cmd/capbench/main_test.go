package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcap/internal/experiment"
	"hpcap/internal/server"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Error("bogus scale not rejected")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("unknown flag not rejected")
	}
}

func TestRunTimingQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a trace generation")
	}
	if err := run([]string{"-exp", "timing", "-scale", "quick"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunParallelFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a trace generation")
	}
	if err := run([]string{"-exp", "timing", "-scale", "quick", "-parallel", "4"}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFig3CSV(t *testing.T) {
	res := &experiment.Fig3Result{
		Workload: "ordering",
		Tier:     server.TierApp,
		Points: []experiment.Fig3Point{
			{Time: 30, PI: 1.2, Throughput: 1.1, RawPI: 40, RawThroughput: 22, Overloaded: 0},
			{Time: 60, PI: 0.4, Throughput: 0.8, RawPI: 12, RawThroughput: 18, Overloaded: 1},
		},
	}
	path := filepath.Join(t.TempDir(), "fig3.csv")
	if err := writeFig3CSV(path, res); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want header + 2 points", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,") {
		t.Errorf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[2], "60,") || !strings.HasSuffix(lines[2], ",1") {
		t.Errorf("bad data row %q", lines[2])
	}
}
