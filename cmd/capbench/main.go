// Command capbench regenerates the paper's tables and figures on the
// simulated testbed.
//
// Usage:
//
//	capbench -exp all                 # every experiment
//	capbench -exp table1a             # Table I(a): browsing-mix input
//	capbench -exp table1b             # Table I(b): ordering-mix input
//	capbench -exp fig3 [-csv out.csv] # Figure 3 series
//	capbench -exp fig4                # Figures 4(a) and 4(b)
//	capbench -exp timing              # learner build/decision cost (§V.B)
//	capbench -exp overhead            # collection overhead (§V.D)
//	capbench -exp ablation            # history/scheme sensitivity (§V.C)
//	capbench -exp baselines           # single-PI / RT / util baselines vs the monitor
//	capbench -exp levels              # OS vs HPC vs combined OS+HPC monitors
//	capbench -scale quick             # fast, smaller traces
//	capbench -parallel 4              # bound experiment fan-out to 4 workers
//	capbench -cpuprofile cpu.pprof    # write a CPU profile of the run
//	capbench -memprofile mem.pprof    # write an allocation profile on exit
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"hpcap/internal/experiment"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "capbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("capbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all|table1a|table1b|fig3|fig4|timing|overhead|ablation|baselines|levels")
	scaleName := fs.String("scale", "full", "trace scale: quick|full")
	seed := fs.Int64("seed", 1, "master random seed")
	csv := fs.String("csv", "", "write the Figure 3 series to this CSV file")
	par := fs.Int("parallel", 0, "worker bound for experiment fan-out; 0 = GOMAXPROCS, 1 = sequential (results are identical either way)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write an allocation profile to this file on exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live heap before snapshotting
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "capbench: memprofile:", err)
			}
		}()
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "full":
		scale = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	lab := experiment.NewLab(scale)
	lab.Seed = *seed
	lab.Workers = *par

	known := map[string]bool{
		"all": true, "table1a": true, "table1b": true, "fig3": true,
		"fig4": true, "fig4a": true, "fig4b": true, "timing": true,
		"overhead": true, "ablation": true, "baselines": true, "levels": true,
	}
	wanted := map[string]bool{}
	for _, e := range strings.Split(*exp, ",") {
		name := strings.TrimSpace(e)
		if !known[name] {
			return fmt.Errorf("unknown experiment %q", name)
		}
		wanted[name] = true
	}
	all := wanted["all"]

	if all {
		// Generate every shared trace up front with full fan-out; the
		// experiments then run over warm caches.
		if err := lab.Prewarm(context.Background()); err != nil {
			return err
		}
	}

	if all || wanted["table1a"] {
		res, err := lab.RunTable1(experiment.TestBrowsing)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["table1b"] {
		res, err := lab.RunTable1(experiment.TestOrdering)
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["fig3"] {
		res, err := lab.RunFig3()
		if err != nil {
			return err
		}
		fmt.Println(res)
		if *csv != "" {
			if err := writeFig3CSV(*csv, res); err != nil {
				return err
			}
			fmt.Println("series written to", *csv)
		}
	}
	if all || wanted["fig4"] || wanted["fig4a"] || wanted["fig4b"] {
		res, err := lab.RunFig4()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["timing"] {
		res, err := lab.RunTiming()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["overhead"] {
		res, err := lab.RunOverhead()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["ablation"] {
		res, err := lab.RunAblation()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["baselines"] {
		res, err := lab.RunBaselines()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	if all || wanted["levels"] {
		res, err := lab.RunLevelComparison()
		if err != nil {
			return err
		}
		fmt.Println(res)
	}
	return nil
}

func writeFig3CSV(path string, res *experiment.Fig3Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.WriteString("time_s,pi_norm,throughput_norm,pi_raw,throughput_raw,overloaded\n"); err != nil {
		return err
	}
	for _, p := range res.Points {
		row := strings.Join([]string{
			strconv.FormatFloat(p.Time, 'f', 0, 64),
			strconv.FormatFloat(p.PI, 'f', 5, 64),
			strconv.FormatFloat(p.Throughput, 'f', 5, 64),
			strconv.FormatFloat(p.RawPI, 'g', 6, 64),
			strconv.FormatFloat(p.RawThroughput, 'f', 3, 64),
			strconv.Itoa(p.Overloaded),
		}, ",")
		if _, err := f.WriteString(row + "\n"); err != nil {
			return err
		}
	}
	return nil
}
