// Command captrain runs the paper's offline training pipeline: it measures
// each training mix's saturation knee, generates the ramp-up/spike/flash
// training traces, builds the performance synopses for every
// (workload, tier, metric level) combination, and writes the labeled traces
// (CSV) plus the synopsis summaries (JSON) to an output directory.
//
// Usage:
//
//	captrain -out ./training -scale full -learner TAN
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "captrain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("captrain", flag.ContinueOnError)
	out := fs.String("out", "training", "output directory")
	scaleName := fs.String("scale", "full", "trace scale: quick|full")
	learnerName := fs.String("learner", "TAN", "synopsis learner: LR|Naive|SVM|TAN")
	seed := fs.Int64("seed", 1, "master random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "full":
		scale = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	learner, err := learnerByName(*learnerName)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	lab := experiment.NewLab(scale)
	lab.Seed = *seed

	var summaries []*synopsis.Synopsis
	for _, mix := range experiment.TrainingMixes() {
		w, err := lab.Workload(mix)
		if err != nil {
			return err
		}
		fmt.Printf("workload %-10s knee=%d EBs (flash knee=%d)\n", mix.Name, w.Knee, w.FlashKnee)
		tr, err := lab.TrainingTrace(mix)
		if err != nil {
			return err
		}
		tracePath := filepath.Join(*out, "trace_"+mix.Name+".csv")
		if err := writeTraceCSV(tracePath, tr); err != nil {
			return err
		}
		fmt.Printf("  trace: %d windows -> %s\n", len(tr.Windows), tracePath)

		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			for _, level := range []metrics.Level{metrics.LevelOS, metrics.LevelHPC} {
				syn, err := lab.BuildSynopsis(mix, tier, level, learner)
				if err != nil {
					return err
				}
				fmt.Printf("  synopsis %-26s cv=%.3f attrs=%v\n", syn.Key(), syn.CV, syn.AttrNames)
				summaries = append(summaries, syn)
			}
		}
	}

	raw, err := json.MarshalIndent(summaries, "", "  ")
	if err != nil {
		return err
	}
	sumPath := filepath.Join(*out, "synopses.json")
	if err := os.WriteFile(sumPath, raw, 0o644); err != nil {
		return err
	}
	fmt.Println("synopsis summaries ->", sumPath)
	return nil
}

func learnerByName(name string) (ml.Learner, error) {
	for _, l := range experiment.Learners() {
		if strings.EqualFold(l.Name, name) {
			return l, nil
		}
	}
	return ml.Learner{}, fmt.Errorf("unknown learner %q (want LR|Naive|SVM|TAN)", name)
}

// writeTraceCSV dumps the labeled window trace: ground truth, health, and
// the full metric vectors of both levels for both tiers.
func writeTraceCSV(path string, tr *experiment.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()

	header := []string{"time_s", "mix", "ebs", "overload", "bottleneck", "throughput", "mean_rt"}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		for _, n := range tr.OSNames {
			header = append(header, tier.String()+"_"+n)
		}
		for _, n := range tr.HPCNames {
			header = append(header, tier.String()+"_"+n)
		}
	}
	if _, err := f.WriteString(strings.Join(header, ",") + "\n"); err != nil {
		return err
	}
	for _, w := range tr.Windows {
		row := []string{
			strconv.FormatFloat(w.Time, 'f', 0, 64),
			w.Mix,
			strconv.Itoa(w.EBs),
			strconv.Itoa(w.Overload),
			w.Bottleneck.String(),
			strconv.FormatFloat(w.Throughput, 'f', 3, 64),
			strconv.FormatFloat(w.MeanRT, 'f', 4, 64),
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			for _, v := range w.OS[tier] {
				row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
			}
			for _, v := range w.HPC[tier] {
				row = append(row, strconv.FormatFloat(v, 'g', 6, 64))
			}
		}
		if _, err := f.WriteString(strings.Join(row, ",") + "\n"); err != nil {
			return err
		}
	}
	return nil
}
