package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLearnerByName(t *testing.T) {
	for _, name := range []string{"LR", "Naive", "SVM", "TAN", "tan"} {
		l, err := learnerByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if l.New == nil {
			t.Errorf("%s: nil constructor", name)
		}
	}
	if _, err := learnerByName("forest"); err == nil {
		t.Error("unknown learner not rejected")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-scale", "bogus"}); err == nil {
		t.Error("bogus scale not rejected")
	}
	if err := run([]string{"-learner", "bogus"}); err == nil {
		t.Error("bogus learner not rejected")
	}
}

func TestRunQuickPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full training pipeline")
	}
	dir := t.TempDir()
	if err := run([]string{"-out", dir, "-scale", "quick", "-learner", "Naive"}); err != nil {
		t.Fatal(err)
	}
	// Synopsis summaries must be valid JSON with 8 entries
	// (2 workloads × 2 tiers × 2 levels).
	raw, err := os.ReadFile(filepath.Join(dir, "synopses.json"))
	if err != nil {
		t.Fatal(err)
	}
	var summaries []map[string]any
	if err := json.Unmarshal(raw, &summaries); err != nil {
		t.Fatal(err)
	}
	if len(summaries) != 8 {
		t.Errorf("summaries = %d, want 8", len(summaries))
	}
	// Trace CSVs must exist with header plus rows.
	for _, mix := range []string{"browsing", "ordering"} {
		raw, err := os.ReadFile(filepath.Join(dir, "trace_"+mix+".csv"))
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
		if len(lines) < 20 {
			t.Errorf("%s trace has only %d lines", mix, len(lines))
		}
		if !strings.HasPrefix(lines[0], "time_s,mix,ebs,overload") {
			t.Errorf("%s trace header %q", mix, lines[0][:40])
		}
	}
}
