// Command capagent is the edge half of the distributed deployment: it
// runs a slice of the simulated site fleet next to the (simulated)
// servers, samples every tier once per second through the same
// collectors capserved uses in-process, and ships the samples to a
// capserved frame listener (-listen) as length-prefixed, sequenced,
// batched frames over TCP (internal/wire).
//
// The agent is built to survive a bad network without lying about it:
// frames queue in a bounded buffer whose overflow evicts the *oldest*
// frame, each frame gets bounded write retries with exponential
// backoff, and a frame that exhausts its retries is dropped and
// counted. Every loss surfaces at the server as a sequence gap, which
// feeds the site's transport staleness and degradation ladder — a
// flapping link degrades decisions, it never wedges the sampling loop.
//
// Site identity is positional: -first/-sites select a contiguous slice
// of the same fleet capserved would simulate locally, so
//
//	capagent -first 1 -sites 2    # site-1, site-2
//	capagent -first 3 -sites 2    # site-3, site-4
//
// together reproduce, sample for sample, the four-site fleet a lone
// "capserved -sites 4" generates. -scale, -level, -seed, and -duration
// must match the server's for the decision streams to line up.
//
// With -chaos the schedule's collector faults (stall, outage) make the
// per-tier reads fail deterministically — exercised through the bounded
// retry-with-fallback path (metrics.NewRetryCollector), so a wedged
// collector yields stale-but-finite vectors — while its wire faults
// (partition, reorder, dupframe) corrupt the frame stream between the
// framing loop and the sender (chaos.LinkInjector). Both layers are
// pure functions of (schedule, seed, stream), so a chaotic run replays
// byte-for-byte.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"hpcap/internal/chaos"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/server"
	"hpcap/internal/simsite"
	"hpcap/internal/tpcw"
	"hpcap/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "capagent:", err)
		os.Exit(1)
	}
}

// agentSite is one monitored site plus its framing state.
type agentSite struct {
	site    *simsite.Site
	seq     uint64
	pending []wire.Sample
	frames  uint64
	retry   []*metrics.RetryCollector
}

func run(args []string, out io.Writer) error {
	def := wire.DefaultAgentConfig()
	fs := flag.NewFlagSet("capagent", flag.ContinueOnError)
	addr := fs.String("addr", "", "capserved frame listener address to ship samples to (required)")
	sites := fs.Int("sites", 1, "number of consecutive sites this agent runs")
	first := fs.Int("first", 1, "1-based index of the agent's first site (site-<first>)")
	scaleName := fs.String("scale", "quick", "workload scale: quick|full (must match the server)")
	levelName := fs.String("level", "hpc", "metric level to collect: os|hpc|combined (must match the server)")
	duration := fs.Float64("duration", 600, "simulated seconds to stream per site")
	seed := fs.Int64("seed", 1, "master random seed (must match the server)")
	chaosSpec := fs.String("chaos", "", `fault schedule: collector faults (stall, outage) fail reads, wire faults (partition, reorder, dupframe) corrupt the frame stream`)
	frameSamples := fs.Int("frame-samples", def.FrameSamples, "fused scrapes batched per frame")
	queueFrames := fs.Int("queue", def.QueueFrames, "send-queue capacity in frames; overflow evicts the oldest")
	sendRetries := fs.Int("send-retries", def.MaxRetries, "extra write attempts per frame before dropping it")
	collectRetries := fs.Int("collect-retries", 2, "extra read attempts per collector before falling back to the last good vector")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required (the capserved -listen address)")
	}
	if *sites < 1 || *first < 1 {
		return fmt.Errorf("-sites and -first must be >= 1, got %d and %d", *sites, *first)
	}

	var scale experiment.Scale
	switch *scaleName {
	case "quick":
		scale = experiment.QuickScale()
	case "full":
		scale = experiment.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	var level metrics.Level
	switch *levelName {
	case "os":
		level = metrics.LevelOS
	case "hpc":
		level = metrics.LevelHPC
	case "combined":
		level = metrics.LevelCombined
	default:
		return fmt.Errorf("unknown metric level %q", *levelName)
	}

	var (
		sched chaos.Schedule
		link  *chaos.LinkInjector
	)
	if *chaosSpec != "" {
		var err error
		sched, err = chaos.Parse(*chaosSpec)
		if err != nil {
			return fmt.Errorf("-chaos: %w", err)
		}
		link = chaos.NewLinkInjector(sched, *seed)
	}

	// The agent needs the workload knees to schedule its sites' bursts,
	// but never a trained monitor — deciding is the server's job.
	lab := experiment.NewLab(scale)
	lab.Seed = *seed
	wb, err := lab.Workload(tpcw.Browsing())
	if err != nil {
		return err
	}
	wo, err := lab.Workload(tpcw.Ordering())
	if err != nil {
		return err
	}

	cfg := wire.AgentConfig{
		FrameSamples: *frameSamples,
		QueueFrames:  *queueFrames,
		MaxRetries:   *sendRetries,
	}
	if errs := cfg.Validate(); len(errs) > 0 {
		return errors.Join(errs...)
	}
	sender, err := wire.NewSender(*addr, cfg)
	if err != nil {
		return err
	}

	fleet := make([]*agentSite, *sites)
	for i := range fleet {
		n := *first + i
		name := fmt.Sprintf("site-%d", n)
		s, err := simsite.New(name, lab.Server, level, n-1, wb, wo, *seed, *duration)
		if err != nil {
			return fmt.Errorf("build %s: %w", name, err)
		}
		as := &agentSite{site: s}
		if len(sched.Faults) > 0 {
			// Collector faults surface as failed reads; the retry wrapper
			// bounds them and falls back to the last good vector, so the
			// sampling loop never stalls and never ships NaN.
			s.WrapCollectors(func(c metrics.Collector) metrics.Collector {
				rc := metrics.NewRetryCollector(chaos.NewFlakyCollector(c, sched), *collectRetries)
				as.retry = append(as.retry, rc)
				return rc
			})
		}
		if err := s.TB.Start(); err != nil {
			return err
		}
		fleet[i] = as
	}

	ship := func(as *agentSite) {
		if len(as.pending) == 0 {
			return
		}
		f := wire.Frame{
			Site:    as.site.Name,
			Seq:     as.seq,
			Samples: as.pending,
		}
		as.seq++
		as.frames++
		as.pending = nil
		if link == nil {
			sender.Send(&f)
			return
		}
		outs := link.Apply(f)
		for i := range outs {
			sender.Send(&outs[i])
		}
	}

	fmt.Fprintf(out, "shipping %d site(s) from site-%d to %s (%d scrapes/frame)\n",
		*sites, *first, *addr, cfg.FrameSamples)
	for elapsed := 0.0; elapsed < *duration; elapsed++ {
		for _, as := range fleet {
			snap := as.site.TB.RunInterval(1)
			var s wire.Sample
			s.Time = snap.Time
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				s.Vecs[tier] = as.site.Collect(tier, snap)
			}
			as.pending = append(as.pending, s)
			if len(as.pending) >= cfg.FrameSamples {
				ship(as)
			}
		}
	}
	for _, as := range fleet {
		ship(as)
	}
	if link != nil {
		outs := link.Drain()
		for i := range outs {
			sender.Send(&outs[i])
		}
	}
	sender.Close()

	for _, as := range fleet {
		var retries, failures uint64
		for _, rc := range as.retry {
			retries += rc.Retries()
			failures += rc.Failures()
		}
		fmt.Fprintf(out, "%-8s frames=%d collect-retries=%d collect-fallbacks=%d\n",
			as.site.Name, as.frames, retries, failures)
	}
	st := sender.Stats()
	fmt.Fprintf(out, "sender   enqueued=%d sent=%d retries=%d dropped=%d (full=%d retry=%d oversize=%d) dials=%d dial-failures=%d write-failures=%d\n",
		st.Enqueued, st.Sent, st.Retries, st.Dropped(), st.DroppedFull, st.DroppedRetry,
		st.DroppedOversize, st.Dials, st.DialFailures, st.WriteFailures)
	if link != nil {
		ls := link.Stats()
		fmt.Fprintf(out, "link     offered=%d emitted=%d injected=%d partitioned=%d reordered=%d dupframes=%d\n",
			ls.Offered, ls.Emitted, ls.Injected(), ls.Partitioned, ls.Reordered, ls.DupFrames)
	}
	return nil
}
