// Package simsite builds simulated monitored websites: a testbed under a
// rotated burst schedule plus the per-tier collectors that sample it.
// Both ends of the distributed deployment share it — cmd/capserved
// simulates its fleet in-process, cmd/capagent runs the same sites at
// the edge and ships their samples over the wire — so a site generated
// by either binary from the same (config, index, seed) is byte-identical.
package simsite

import (
	"hpcap/internal/cpu"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/osstat"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// Testbed is the simulation surface a site exposes — satisfied by the
// legacy two-tier testbed and by the tier-DAG testbed through its legacy
// snapshot fold, so one fleet loop drives either.
type Testbed interface {
	Start() error
	RunInterval(dt float64) server.Snapshot
	SetAdmission(f server.AdmissionFunc)
	Conservation() (arrivals, completions, rejections, inFlight int)
}

// dagTB adapts the DAG testbed to the legacy-snapshot Testbed surface.
type dagTB struct{ *server.DAGTestbed }

func (d dagTB) RunInterval(dt float64) server.Snapshot { return d.RunIntervalLegacy(dt) }

// Site is one simulated monitored website.
type Site struct {
	Name string
	TB   Testbed
	// DAG is the tier-DAG testbed behind TB when the site was built by
	// NewDAG — the actuator surface an autoscaler grows and shrinks.
	// Legacy sites leave it nil.
	DAG  *server.DAGTestbed
	coll [server.NumTiers][]metrics.Collector
}

// Collect concatenates the site's tier collectors into one sample vector
// (one collector at the OS or HPC level; both, OS first, at the combined
// level — matching experiment.Trace vector layout).
func (s *Site) Collect(tier server.TierID, snap server.Snapshot) []float64 {
	var v []float64
	for _, c := range s.coll[tier] {
		v = append(v, c.Collect(snap, 1)...)
	}
	return v
}

// WrapCollectors replaces every tier collector c with wrap(c) — the
// hook cmd/capagent uses to harden its sources with chaos-injectable
// failure (chaos.FlakyCollector) and bounded retry
// (metrics.NewRetryCollector) without simsite depending on either.
func (s *Site) WrapCollectors(wrap func(metrics.Collector) metrics.Collector) {
	for tier := range s.coll {
		for i, c := range s.coll[tier] {
			s.coll[tier][i] = wrap(c)
		}
	}
}

// MetricNames returns the metric layout the collectors produce at a
// level (OS first at the combined level, matching Collect).
func MetricNames(level metrics.Level) []string {
	switch level {
	case metrics.LevelOS:
		return osstat.MetricNames
	case metrics.LevelCombined:
		names := make([]string, 0, len(osstat.MetricNames)+len(cpu.MetricNames))
		names = append(names, osstat.MetricNames...)
		return append(names, cpu.MetricNames...)
	default:
		return cpu.MetricNames
	}
}

// rotatedSchedule builds one site's burst schedule: cruise below the
// knee, burst past it, recover, with the cruise length rotated by index
// so the fleet does not overload in lockstep.
func rotatedSchedule(w experiment.Workload, index int, duration float64) tpcw.Schedule {
	ebs := func(f float64) int {
		n := int(float64(w.Knee)*f + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	cruise := 120.0 + 30.0*float64(index%4)
	cycle := tpcw.Concat(
		tpcw.Steady(w.Mix, ebs(0.70), cruise),
		tpcw.Steady(w.Mix, ebs(1.45), 120),
		tpcw.Steady(w.Mix, ebs(0.55), 60),
	)
	sched := cycle
	for sched.Duration() < duration {
		sched = tpcw.Concat(sched, cycle)
	}
	return sched
}

// buildCollectors attaches per-tier collectors for the level, seeded the
// same way for legacy and DAG sites.
func (s *Site) buildCollectors(level metrics.Level, machines [server.NumTiers]server.MachineConfig, seed int64) {
	memMB := [server.NumTiers]float64{512, 1024}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		osColl := osstat.NewCollector(tier, memMB[tier], 0.05, seed*10+int64(tier))
		hpcColl := cpu.NewCollector(tier, machines[tier], 0.02, seed*10+int64(tier)+100)
		switch level {
		case metrics.LevelOS:
			s.coll[tier] = []metrics.Collector{osColl}
		case metrics.LevelHPC:
			s.coll[tier] = []metrics.Collector{hpcColl}
		default: // combined: OS first, matching experiment.Trace layout
			s.coll[tier] = []metrics.Collector{osColl, hpcColl}
		}
	}
}

// New builds one monitored site. Sites alternate between the browsing
// and ordering mixes and rotate their burst phase so the fleet does not
// overload in lockstep; each has its own seed, a pure function of the
// master seed and the site's index.
func New(name string, base server.Config, level metrics.Level, index int, wb, wo experiment.Workload, seed int64, duration float64) (*Site, error) {
	w := wb
	if index%2 == 1 {
		w = wo
	}
	cfg := base
	cfg.Seed = seed + 1000*int64(index+1)
	tb, err := server.NewTestbed(cfg, rotatedSchedule(w, index, duration))
	if err != nil {
		return nil, err
	}
	s := &Site{Name: name, TB: tb}
	s.buildCollectors(level, [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}, cfg.Seed)
	return s, nil
}

// NewDAG builds one monitored site on the tier-DAG testbed instead of the
// legacy two-tier one: the same rotated burst schedule and the same
// collector seeding, but requests flow through topo's replica pools and
// the site exposes the DAG handle for autoscaling. Collector machine
// models come from the first pool configured on each tier slot.
func NewDAG(name string, topo server.TopologyConfig, level metrics.Level, index int, wb, wo experiment.Workload, seed int64, duration float64) (*Site, error) {
	w := wb
	if index%2 == 1 {
		w = wo
	}
	topo.Seed = seed + 1000*int64(index+1)
	tb, err := server.NewDAGTestbed(topo, rotatedSchedule(w, index, duration))
	if err != nil {
		return nil, err
	}
	s := &Site{Name: name, TB: dagTB{tb}, DAG: tb}
	var machines [server.NumTiers]server.MachineConfig
	seen := [server.NumTiers]bool{}
	for _, pc := range topo.Pools {
		if pc.Slot >= 0 && pc.Slot < server.NumTiers && !seen[pc.Slot] {
			machines[pc.Slot] = pc.Tier.Machine
			seen[pc.Slot] = true
		}
	}
	s.buildCollectors(level, machines, topo.Seed)
	return s, nil
}
