// Package simsite builds simulated monitored websites: a testbed under a
// rotated burst schedule plus the per-tier collectors that sample it.
// Both ends of the distributed deployment share it — cmd/capserved
// simulates its fleet in-process, cmd/capagent runs the same sites at
// the edge and ships their samples over the wire — so a site generated
// by either binary from the same (config, index, seed) is byte-identical.
package simsite

import (
	"hpcap/internal/cpu"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/osstat"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// Site is one simulated monitored website.
type Site struct {
	Name string
	TB   *server.Testbed
	coll [server.NumTiers][]metrics.Collector
}

// Collect concatenates the site's tier collectors into one sample vector
// (one collector at the OS or HPC level; both, OS first, at the combined
// level — matching experiment.Trace vector layout).
func (s *Site) Collect(tier server.TierID, snap server.Snapshot) []float64 {
	var v []float64
	for _, c := range s.coll[tier] {
		v = append(v, c.Collect(snap, 1)...)
	}
	return v
}

// WrapCollectors replaces every tier collector c with wrap(c) — the
// hook cmd/capagent uses to harden its sources with chaos-injectable
// failure (chaos.FlakyCollector) and bounded retry
// (metrics.NewRetryCollector) without simsite depending on either.
func (s *Site) WrapCollectors(wrap func(metrics.Collector) metrics.Collector) {
	for tier := range s.coll {
		for i, c := range s.coll[tier] {
			s.coll[tier][i] = wrap(c)
		}
	}
}

// MetricNames returns the metric layout the collectors produce at a
// level (OS first at the combined level, matching Collect).
func MetricNames(level metrics.Level) []string {
	switch level {
	case metrics.LevelOS:
		return osstat.MetricNames
	case metrics.LevelCombined:
		names := make([]string, 0, len(osstat.MetricNames)+len(cpu.MetricNames))
		names = append(names, osstat.MetricNames...)
		return append(names, cpu.MetricNames...)
	default:
		return cpu.MetricNames
	}
}

// New builds one monitored site. Sites alternate between the browsing
// and ordering mixes and rotate their burst phase so the fleet does not
// overload in lockstep; each has its own seed, a pure function of the
// master seed and the site's index.
func New(name string, base server.Config, level metrics.Level, index int, wb, wo experiment.Workload, seed int64, duration float64) (*Site, error) {
	w := wb
	if index%2 == 1 {
		w = wo
	}
	ebs := func(f float64) int {
		n := int(float64(w.Knee)*f + 0.5)
		if n < 1 {
			n = 1
		}
		return n
	}
	// One cycle: cruise below the knee, burst past it, recover. Rotating
	// the cruise length staggers the bursts across the fleet.
	cruise := 120.0 + 30.0*float64(index%4)
	cycle := tpcw.Concat(
		tpcw.Steady(w.Mix, ebs(0.70), cruise),
		tpcw.Steady(w.Mix, ebs(1.45), 120),
		tpcw.Steady(w.Mix, ebs(0.55), 60),
	)
	sched := cycle
	for sched.Duration() < duration {
		sched = tpcw.Concat(sched, cycle)
	}

	cfg := base
	cfg.Seed = seed + 1000*int64(index+1)
	tb, err := server.NewTestbed(cfg, sched)
	if err != nil {
		return nil, err
	}
	s := &Site{Name: name, TB: tb}
	machines := [server.NumTiers]server.MachineConfig{cfg.App.Machine, cfg.DB.Machine}
	memMB := [server.NumTiers]float64{512, 1024}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		osColl := osstat.NewCollector(tier, memMB[tier], 0.05, cfg.Seed*10+int64(tier))
		hpcColl := cpu.NewCollector(tier, machines[tier], 0.02, cfg.Seed*10+int64(tier)+100)
		switch level {
		case metrics.LevelOS:
			s.coll[tier] = []metrics.Collector{osColl}
		case metrics.LevelHPC:
			s.coll[tier] = []metrics.Collector{hpcColl}
		default: // combined: OS first, matching experiment.Trace layout
			s.coll[tier] = []metrics.Collector{osColl, hpcColl}
		}
	}
	return s, nil
}
