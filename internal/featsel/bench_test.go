package featsel

import (
	"testing"

	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/mltest"
)

// BenchmarkFeatselSelect measures the paper's full wrapper loop — ranking
// by information gain, then 10-fold cross validation per candidate — with
// the TAN learner on a HPC-vector-sized dataset. This is the training cost
// an online deployment pays per (workload, tier) model refresh.
func BenchmarkFeatselSelect(b *testing.B) {
	d := mltest.NoisyGaussians(300, 19, 6, 0.8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Select(bayes.TANLearner(), d, Config{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatselRank isolates the information-gain ranking pass.
func BenchmarkFeatselRank(b *testing.B) {
	d := mltest.NoisyGaussians(300, 19, 6, 0.8, 5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RankByInformationGain(d, 10); err != nil {
			b.Fatal(err)
		}
	}
}
