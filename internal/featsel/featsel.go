// Package featsel implements the paper's attribute selection (§II.B.2):
// candidate attributes are ranked by information gain against the class
// variable, then added to the synopsis one at a time — keeping an addition
// only if it improves the synopsis's 10-fold cross-validated balanced
// accuracy — so that only the most relevant low-level metrics enter a
// synopsis.
package featsel

import (
	"errors"
	"sort"

	"hpcap/internal/ml"
	"hpcap/internal/stats"
)

// Config tunes the selection loop.
type Config struct {
	// MaxAttrs caps the number of selected attributes (the paper keeps
	// synopses small); zero selects 8.
	MaxAttrs int
	// Folds is the cross-validation fold count; zero selects 10, as in
	// the paper.
	Folds int
	// MinGain is the minimum CV balanced-accuracy improvement required to
	// keep a newly added attribute; zero selects 0.01 (additions must buy
	// real accuracy, or synopses overfit the training workload).
	MinGain float64
	// Patience is how many consecutive non-improving candidates to try
	// before stopping; zero selects 3.
	Patience int
	// Bins is the discretization granularity for information gain; zero
	// selects 10.
	Bins int
	// Seed drives fold shuffling.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.MaxAttrs <= 0 {
		c.MaxAttrs = 8
	}
	if c.Folds <= 0 {
		c.Folds = 10
	}
	if c.MinGain <= 0 {
		c.MinGain = 0.01
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	if c.Bins <= 0 {
		c.Bins = 10
	}
	return c
}

// Ranked is one attribute with its information gain.
type Ranked struct {
	Attr int
	Gain float64
}

// RankByInformationGain returns all attributes ordered by decreasing
// information gain with the class variable, computed on equal-frequency
// discretized values.
func RankByInformationGain(d *ml.Dataset, bins int) ([]Ranked, error) {
	if d.Len() == 0 {
		return nil, ml.ErrNoData
	}
	if bins <= 1 {
		bins = 10
	}
	out := make([]Ranked, 0, d.NumAttrs())
	for j := 0; j < d.NumAttrs(); j++ {
		col := d.Column(j)
		disc, err := stats.NewEqualFrequency(col, bins)
		if err != nil {
			return nil, err
		}
		ig, err := stats.InformationGain(disc.BinAll(col), d.Y)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{Attr: j, Gain: ig})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out, nil
}

// Result is the outcome of a selection run.
type Result struct {
	Attrs []int   // selected attribute indices, in selection order
	CV    float64 // cross-validated balanced accuracy of the final subset
}

// Select runs the paper's iterative wrapper: walk candidates in information
// gain order, adding each attribute and keeping it only if the learner's
// cross-validated balanced accuracy improves.
func Select(l ml.Learner, d *ml.Dataset, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if d.Len() < cfg.Folds {
		return Result{}, errors.New("featsel: too few instances for cross validation")
	}
	ranked, err := RankByInformationGain(d, cfg.Bins)
	if err != nil {
		return Result{}, err
	}

	var selected []int
	best := 0.5 // balanced accuracy of an empty (constant) synopsis
	misses := 0
	for _, cand := range ranked {
		if len(selected) >= cfg.MaxAttrs {
			break
		}
		if misses >= cfg.Patience && len(selected) > 0 {
			break
		}
		trial := append(append([]int(nil), selected...), cand.Attr)
		proj, err := d.Project(trial)
		if err != nil {
			return Result{}, err
		}
		cv, err := ml.CrossValidate(l, proj, cfg.Folds, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
		if cv >= best+cfg.MinGain {
			selected = trial
			best = cv
			misses = 0
		} else {
			misses++
		}
	}
	// Degenerate data (nothing helps): fall back to the top-ranked
	// attribute so a synopsis always has an input.
	if len(selected) == 0 && len(ranked) > 0 {
		selected = []int{ranked[0].Attr}
		proj, err := d.Project(selected)
		if err != nil {
			return Result{}, err
		}
		best, err = ml.CrossValidate(l, proj, cfg.Folds, cfg.Seed)
		if err != nil {
			return Result{}, err
		}
	}
	return Result{Attrs: selected, CV: best}, nil
}
