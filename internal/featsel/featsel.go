// Package featsel implements the paper's attribute selection (§II.B.2):
// candidate attributes are ranked by information gain against the class
// variable, then added to the synopsis one at a time — keeping an addition
// only if it improves the synopsis's 10-fold cross-validated balanced
// accuracy — so that only the most relevant low-level metrics enter a
// synopsis.
package featsel

import (
	"errors"
	"fmt"
	"sort"

	"hpcap/internal/ml"
	"hpcap/internal/stats"
)

// Config tunes the selection loop.
type Config struct {
	// MaxAttrs caps the number of selected attributes (the paper keeps
	// synopses small); zero selects 8.
	MaxAttrs int
	// Folds is the cross-validation fold count; zero selects 10, as in
	// the paper.
	Folds int
	// MinGain is the minimum CV balanced-accuracy improvement required to
	// keep a newly added attribute; zero selects 0.01 (additions must buy
	// real accuracy, or synopses overfit the training workload).
	MinGain float64
	// Patience is how many consecutive non-improving candidates to try
	// before stopping; zero selects 3.
	Patience int
	// Bins is the discretization granularity for information gain; zero
	// selects 10.
	Bins int
	// Seed drives fold shuffling.
	Seed int64
}

// DefaultConfig returns the paper's selection settings: at most 8
// attributes, 10-fold cross validation, 10 discretization bins.
func DefaultConfig() Config {
	return Config{MaxAttrs: 8, Folds: 10, MinGain: 0.01, Patience: 3, Bins: 10}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.MaxAttrs <= 0 {
		c.MaxAttrs = def.MaxAttrs
	}
	if c.Folds <= 0 {
		c.Folds = def.Folds
	}
	if c.MinGain <= 0 {
		c.MinGain = def.MinGain
	}
	if c.Patience <= 0 {
		c.Patience = def.Patience
	}
	if c.Bins <= 0 {
		c.Bins = def.Bins
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint. Like predictor, this package sits below core in the
// import graph, so the errors carry no shared sentinel.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.Folds < 2 {
		errs = append(errs, fmt.Errorf("featsel: %d folds, cross validation needs >= 2", c.Folds))
	}
	if c.Bins < 2 {
		errs = append(errs, fmt.Errorf("featsel: %d bins, discretization needs >= 2", c.Bins))
	}
	return errs
}

// Ranked is one attribute with its information gain.
type Ranked struct {
	Attr int
	Gain float64
}

// RankByInformationGain returns all attributes ordered by decreasing
// information gain with the class variable, computed on equal-frequency
// discretized values. Every column is gathered and binned once, through
// reused scratch buffers.
func RankByInformationGain(d *ml.Dataset, bins int) ([]Ranked, error) {
	if d.Len() == 0 {
		return nil, ml.ErrNoData
	}
	if bins <= 1 {
		bins = 10
	}
	out := make([]Ranked, 0, d.NumAttrs())
	col := make([]float64, d.Len())
	binned := make([]int, d.Len())
	for j := 0; j < d.NumAttrs(); j++ {
		col = d.ColumnTo(col, j)
		disc, err := stats.NewEqualFrequency(col, bins)
		if err != nil {
			return nil, err
		}
		binned = disc.BinTo(binned, col)
		ig, err := stats.InformationGain(binned, d.Y)
		if err != nil {
			return nil, err
		}
		out = append(out, Ranked{Attr: j, Gain: ig})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Gain > out[j].Gain })
	return out, nil
}

// Result is the outcome of a selection run.
type Result struct {
	Attrs []int   // selected attribute indices, in selection order
	CV    float64 // cross-validated balanced accuracy of the final subset
}

// Select runs the paper's iterative wrapper: walk candidates in information
// gain order, adding each attribute and keeping it only if the learner's
// cross-validated balanced accuracy improves.
//
// The stratified folds are computed once and reused for every candidate
// evaluation: they depend only on the labels and the seed, never on the
// projected attributes, so the scores are identical to stratifying per
// candidate — at a tenth of the partitioning work. Candidate projections
// are zero-copy column views of d.
func Select(l ml.Learner, d *ml.Dataset, cfg Config) (Result, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return Result{}, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	if d.Len() < cfg.Folds {
		return Result{}, errors.New("featsel: too few instances for cross validation")
	}
	ranked, err := RankByInformationGain(d, cfg.Bins)
	if err != nil {
		return Result{}, err
	}
	folds, err := ml.StratifiedFolds(d, cfg.Folds, cfg.Seed)
	if err != nil {
		return Result{}, err
	}
	evaluate := func(attrs []int) (float64, error) {
		proj, err := d.Project(attrs)
		if err != nil {
			return 0, err
		}
		return ml.CrossValidateFolds(l, proj, folds)
	}

	var selected []int
	// singleCV caches the scores of the one-attribute trials the ranking
	// loop evaluates, so the degenerate fallback below never re-runs a
	// cross validation whose result is already known.
	singleCV := make(map[int]float64)
	best := 0.5 // balanced accuracy of an empty (constant) synopsis
	misses := 0
	for _, cand := range ranked {
		if len(selected) >= cfg.MaxAttrs {
			break
		}
		if misses >= cfg.Patience && len(selected) > 0 {
			break
		}
		trial := append(append(make([]int, 0, len(selected)+1), selected...), cand.Attr)
		cv, err := evaluate(trial)
		if err != nil {
			return Result{}, err
		}
		if len(selected) == 0 {
			singleCV[cand.Attr] = cv
		}
		if cv >= best+cfg.MinGain {
			selected = trial
			best = cv
			misses = 0
		} else {
			misses++
		}
	}
	// Degenerate data (nothing helps): fall back to the top-ranked
	// attribute so a synopsis always has an input. Its score was already
	// computed by the first loop iteration.
	if len(selected) == 0 && len(ranked) > 0 {
		selected = []int{ranked[0].Attr}
		cv, ok := singleCV[ranked[0].Attr]
		if !ok {
			if cv, err = evaluate(selected); err != nil {
				return Result{}, err
			}
		}
		best = cv
	}
	return Result{Attrs: selected, CV: best}, nil
}
