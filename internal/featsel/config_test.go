package featsel

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
	// Non-positive knobs resolve to defaults rather than failing.
	if errs := (Config{MaxAttrs: -1, Folds: -1, MinGain: -1, Patience: -1, Bins: -1}).Validate(); len(errs) > 0 {
		t.Fatalf("negative knobs should resolve to defaults: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"single fold", Config{Folds: 1}},
		{"single bin", Config{Bins: 1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if errs := tt.cfg.Validate(); len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
		})
	}
}
