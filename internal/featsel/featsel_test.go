package featsel

import (
	"testing"

	"hpcap/internal/ml"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/mltest"
)

func TestRankByInformationGain(t *testing.T) {
	// Attributes 0 and 1 are informative; the rest are noise.
	d := mltest.NoisyGaussians(300, 8, 2, 3, 1)
	ranked, err := RankByInformationGain(d, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 8 {
		t.Fatalf("ranked %d attributes, want 8", len(ranked))
	}
	top2 := map[int]bool{ranked[0].Attr: true, ranked[1].Attr: true}
	if !top2[0] || !top2[1] {
		t.Errorf("informative attributes not ranked first: top2 = %v, gains %v, %v",
			top2, ranked[0], ranked[1])
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Gain > ranked[i-1].Gain {
			t.Fatalf("ranking not sorted at %d", i)
		}
	}
	// Informative gains must dominate noise gains.
	if ranked[1].Gain < 3*ranked[3].Gain {
		t.Errorf("informative gain %v not well above noise gain %v",
			ranked[1].Gain, ranked[3].Gain)
	}
}

func TestRankEmptyDataset(t *testing.T) {
	if _, err := RankByInformationGain(ml.NewDataset([]string{"a"}), 10); err != ml.ErrNoData {
		t.Errorf("err = %v, want ErrNoData", err)
	}
}

func TestSelectPrefersInformativeAttrs(t *testing.T) {
	d := mltest.NoisyGaussians(300, 10, 2, 3, 2)
	res, err := Select(bayes.NaiveLearner(), d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) == 0 {
		t.Fatal("no attributes selected")
	}
	found := map[int]bool{}
	for _, a := range res.Attrs {
		found[a] = true
	}
	if !found[0] && !found[1] {
		t.Errorf("selection %v missed both informative attributes", res.Attrs)
	}
	if res.CV < 0.85 {
		t.Errorf("final CV = %v, want ≥0.85", res.CV)
	}
	if len(res.Attrs) > 8 {
		t.Errorf("selected %d attributes, exceeds default cap", len(res.Attrs))
	}
}

func TestSelectRespectsMaxAttrs(t *testing.T) {
	d := mltest.NoisyGaussians(200, 10, 6, 2, 3)
	res, err := Select(bayes.NaiveLearner(), d, Config{MaxAttrs: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Attrs) > 2 {
		t.Errorf("selected %d attributes, want ≤2", len(res.Attrs))
	}
}

func TestSelectFallsBackOnUselessData(t *testing.T) {
	// Pure noise: nothing improves CV, but selection must still return
	// one attribute so a synopsis has an input.
	d := mltest.NoisyGaussians(100, 5, 0, 0, 4)
	res, err := Select(bayes.NaiveLearner(), d, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// CV noise may admit an attribute or two, but the synopsis must never
	// be empty and must never balloon on pure noise.
	if len(res.Attrs) == 0 {
		t.Error("noise data selected no attributes; want the fallback")
	}
	if len(res.Attrs) > 3 {
		t.Errorf("noise data selected %d attributes, want few", len(res.Attrs))
	}
}

func TestSelectTooFewInstances(t *testing.T) {
	d := mltest.LinearlySeparable(5, 0.3, 1)
	if _, err := Select(bayes.NaiveLearner(), d, Config{Folds: 10}); err == nil {
		t.Error("too-few-instances not rejected")
	}
}

func TestSelectDeterministic(t *testing.T) {
	d := mltest.NoisyGaussians(200, 8, 2, 2.5, 5)
	a, err := Select(bayes.TANLearner(), d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(bayes.TANLearner(), d, Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Attrs) != len(b.Attrs) || a.CV != b.CV {
		t.Fatalf("selection not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			t.Fatalf("selection order differs: %v vs %v", a.Attrs, b.Attrs)
		}
	}
}
