// Package wal is the server's write-ahead sample log: every frame the
// ingest listener accepts is appended (and optionally fsynced) *before*
// it reaches the serving pipeline, so a crashed daemon replays the log
// through the deterministic pipeline back to the exact pre-crash decision
// state — the crash-replay golden asserts the recovered transcript is
// byte-identical to an uninterrupted run. Because records are the wire
// frame payloads themselves (internal/wire), a WAL file doubles as a
// capture format: a production stream recorded by capserved replays
// through the Lab or capstress unchanged.
//
// On-disk layout: an 8-byte magic header, then records of
//
//	uvarint(len(payload)) || payload || crc32c(payload) (4 bytes LE)
//
// Appends are atomic per record at the format level: Open scans the file
// and truncates everything after the last complete, checksum-valid
// record, so arbitrary tail truncation (a torn write at crash) recovers
// cleanly — the torn-write fuzz test pins this. A corrupt record *body*
// (bit rot rather than truncation) fails Open instead of being silently
// skipped: replaying around a hole would desequence every site behind it.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"hpcap/internal/core"
)

// Magic identifies a WAL file; Open refuses files that start otherwise.
const Magic = "HPCWAL1\n"

// castagnoli is the CRC-32C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a WAL whose body (not just its tail) fails
// validation — a wrong magic or a bad checksum before the final record.
var ErrCorrupt = errors.New("corrupt WAL")

// Config tunes a Log. The zero value selects every default
// (DefaultConfig); Validate reports each invalid field as an
// ErrBadConfig-wrapped error.
type Config struct {
	// SyncEvery fsyncs after every n-th append. 1 — the default — makes
	// every accepted frame durable before it is ingested; larger values
	// trade the tail of the log for throughput (a crash may lose up to
	// SyncEvery-1 records, which replay then simply lacks). Zero selects
	// 1; negative disables fsync entirely (tests, tmpfs).
	SyncEvery int
	// MaxRecordBytes bounds one record's payload, guarding replay
	// against garbage length fields. Zero selects 1<<20.
	MaxRecordBytes int
}

// DefaultConfig returns the defaults Validate and Open resolve zero
// fields to.
func DefaultConfig() Config {
	return Config{SyncEvery: 1, MaxRecordBytes: 1 << 20}
}

// Validate reports every invalid field (after zero fields resolve to
// defaults) as an ErrBadConfig-wrapped error. It never panics.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.MaxRecordBytes < 16 {
		errs = append(errs, fmt.Errorf("wal: %w: max record bytes %d below 16",
			core.ErrBadConfig, c.MaxRecordBytes))
	}
	return errs
}

// withDefaults resolves zero fields to DefaultConfig values.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	switch {
	case c.SyncEvery == 0:
		c.SyncEvery = d.SyncEvery
	case c.SyncEvery < 0:
		c.SyncEvery = 0 // fsync disabled
	}
	if c.MaxRecordBytes == 0 {
		c.MaxRecordBytes = d.MaxRecordBytes
	}
	return c
}

// Log is an open write-ahead log positioned for appending.
type Log struct {
	f       *os.File
	cfg     Config
	hdr     []byte // scratch for the length prefix + checksum
	appends uint64
	unsynct int // appends since the last fsync
}

// Open opens (creating if absent) the WAL at path, recovers its tail,
// and positions it for appending. A file ending in a torn record — a
// truncated length prefix, payload, or checksum — is truncated back to
// its last complete record; recovered reports how many complete records
// survive. A short header (crash before the first record) is rewritten;
// a *wrong* header or a checksum failure before the final record returns
// ErrCorrupt — Open never destroys data that does not parse as a WAL
// tail.
func Open(path string, cfg Config) (log *Log, recovered int, err error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, 0, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	end, recovered, err := scan(f, cfg.MaxRecordBytes, nil)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if err := f.Truncate(end); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(end, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: seek: %w", err)
	}
	return &Log{f: f, cfg: cfg}, recovered, nil
}

// scan walks the WAL from the start: writes the header if the file is
// shorter than one, verifies it otherwise, then visits every complete
// record (calling fn if non-nil) and returns the offset just past the
// last complete record. A torn tail ends the scan cleanly; a bad
// checksum on any record but the last is ErrCorrupt.
func scan(f *os.File, maxRecord int, fn func(payload []byte) error) (end int64, n int, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, 0, fmt.Errorf("wal: seek: %w", err)
	}
	hdr := make([]byte, len(Magic))
	hn, err := io.ReadFull(f, hdr)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		// Crash before the header finished: the file holds no records.
		// Rewrite the header from scratch.
		if hn > 0 && string(hdr[:hn]) != Magic[:hn] {
			return 0, 0, fmt.Errorf("wal: %w: bad magic", ErrCorrupt)
		}
		if err := f.Truncate(0); err != nil {
			return 0, 0, fmt.Errorf("wal: truncate: %w", err)
		}
		if _, err := f.WriteAt([]byte(Magic), 0); err != nil {
			return 0, 0, fmt.Errorf("wal: write header: %w", err)
		}
		return int64(len(Magic)), 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("wal: read header: %w", err)
	}
	if string(hdr) != Magic {
		return 0, 0, fmt.Errorf("wal: %w: bad magic", ErrCorrupt)
	}

	r := bufio.NewReader(f)
	end = int64(len(Magic))
	var buf []byte
	for {
		length, err := binary.ReadUvarint(r)
		if err != nil {
			// EOF at a record boundary or a torn prefix: tail ends here.
			return end, n, nil
		}
		if length > uint64(maxRecord) {
			// A garbage length is indistinguishable from a torn prefix;
			// treat it as the tail unless records follow (they cannot —
			// we cannot skip an unreadable length).
			return end, n, nil
		}
		need := int(length) + 4
		if uint64(cap(buf)) < uint64(need) {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(r, buf); err != nil {
			// Torn payload or checksum: tail ends at the last record.
			return end, n, nil
		}
		payload, sum := buf[:length], binary.LittleEndian.Uint32(buf[length:])
		if crc32.Checksum(payload, castagnoli) != sum {
			// A checksum mismatch on what a *complete* read produced is
			// only recoverable if nothing follows (a torn write whose
			// final bytes happen to exist as garbage). Peek: if more
			// data follows, the body is corrupt, not torn.
			if _, err := r.Peek(1); err == nil {
				return 0, 0, fmt.Errorf("wal: %w: checksum mismatch in record %d", ErrCorrupt, n)
			}
			return end, n, nil
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return 0, 0, err
			}
		}
		n++
		end += int64(uvarintLen(length)) + int64(need)
	}
}

// uvarintLen is the encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Append writes one record — length prefix, payload, checksum — and
// fsyncs per Config.SyncEvery. The payload is durable (fsync permitting)
// before Append returns; callers ingest it only afterwards, which is
// what makes replay an exact reconstruction.
func (l *Log) Append(payload []byte) error {
	if len(payload) > l.cfg.MaxRecordBytes {
		return fmt.Errorf("wal: %w: record %d bytes exceeds %d",
			core.ErrBadConfig, len(payload), l.cfg.MaxRecordBytes)
	}
	l.hdr = binary.AppendUvarint(l.hdr[:0], uint64(len(payload)))
	if _, err := l.f.Write(l.hdr); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if _, err := l.f.Write(payload); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.hdr = binary.LittleEndian.AppendUint32(l.hdr[:0], crc32.Checksum(payload, castagnoli))
	if _, err := l.f.Write(l.hdr); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.appends++
	l.unsynct++
	if l.cfg.SyncEvery > 0 && l.unsynct >= l.cfg.SyncEvery {
		return l.Sync()
	}
	return nil
}

// Sync fsyncs the log.
func (l *Log) Sync() error {
	l.unsynct = 0
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Appends returns how many records this Log appended (recovered records
// are not counted; Open reports those).
func (l *Log) Appends() uint64 { return l.appends }

// Close syncs and closes the log.
func (l *Log) Close() error {
	if l.cfg.SyncEvery > 0 && l.unsynct > 0 {
		if err := l.Sync(); err != nil {
			l.f.Close()
			return err
		}
	}
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("wal: close: %w", err)
	}
	return nil
}

// Replay reads every complete record of the WAL at path in append order,
// calling fn on each payload, and reports how many records it visited.
// A torn tail ends the replay cleanly (the lost tail was never ingested
// either — the WAL is written before the pipeline sees a frame); a
// corrupt body or fn error aborts it. Replay never modifies the file.
func Replay(path string, cfg Config, fn func(payload []byte) error) (int, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return 0, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("wal: open %s: %w", path, err)
	}
	defer f.Close()
	_, n, err := scanReadOnly(f, cfg.MaxRecordBytes, fn)
	return n, err
}

// scanReadOnly is scan without the header-rewrite side effect, for
// Replay's read-only contract.
func scanReadOnly(f *os.File, maxRecord int, fn func(payload []byte) error) (int64, int, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: stat: %w", err)
	}
	if st.Size() < int64(len(Magic)) {
		hdr := make([]byte, st.Size())
		if _, err := f.ReadAt(hdr, 0); err != nil && err != io.EOF {
			return 0, 0, fmt.Errorf("wal: read header: %w", err)
		}
		if string(hdr) != Magic[:len(hdr)] {
			return 0, 0, fmt.Errorf("wal: %w: bad magic", ErrCorrupt)
		}
		return st.Size(), 0, nil
	}
	return scan(f, maxRecord, fn)
}
