package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzTornWrite pins crash recovery against arbitrary tail truncation: a
// WAL cut anywhere — mid-header, mid-prefix, mid-payload, mid-checksum —
// must reopen without error, recover exactly the complete-record prefix
// bit-for-bit, and accept new appends. This is the failure model of a
// daemon killed mid-Append; nothing a pure truncation produces may read
// as corruption or, worse, as a record the sender never wrote.
func FuzzTornWrite(f *testing.F) {
	payloads := [][]byte{
		{},
		[]byte("a"),
		bytes.Repeat([]byte{0x7f}, 127),
		bytes.Repeat([]byte{0x80}, 128), // multi-byte length prefix
		[]byte("last-record"),
	}
	var whole bytes.Buffer
	whole.WriteString(Magic)
	offsets := []int64{int64(len(Magic))}
	{
		dir := f.TempDir()
		path := filepath.Join(dir, "ref.wal")
		log, _, err := Open(path, Config{SyncEvery: -1})
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range payloads {
			if err := log.Append(p); err != nil {
				f.Fatal(err)
			}
		}
		if err := log.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		whole.Reset()
		whole.Write(data)
		off := int64(len(Magic))
		for _, p := range payloads {
			off += int64(uvarintLen(uint64(len(p)))) + int64(len(p)) + 4
			offsets = append(offsets, off)
		}
	}

	f.Add(uint(0))
	f.Add(uint(len(Magic) - 1))
	f.Add(uint(whole.Len()))
	f.Add(uint(whole.Len() - 1))
	f.Add(uint(whole.Len() - 5)) // mid-checksum

	f.Fuzz(func(t *testing.T, keep uint) {
		if keep > uint(whole.Len()) {
			keep = uint(whole.Len())
		}
		path := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(path, whole.Bytes()[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		log, recovered, err := Open(path, Config{SyncEvery: -1})
		if err != nil {
			t.Fatalf("keep %d/%d: %v", keep, whole.Len(), err)
		}
		want := 0
		for k := 1; k < len(offsets); k++ {
			if int64(keep) >= offsets[k] {
				want = k
			}
		}
		if recovered != want {
			t.Fatalf("keep %d: recovered %d records, want %d", keep, recovered, want)
		}
		if err := log.Append([]byte("post-crash")); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		n, err := Replay(path, Config{}, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		})
		if err != nil || n != want+1 {
			t.Fatalf("replay after recovery: n=%d err=%v, want %d records", n, err, want+1)
		}
		for i := 0; i < want; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("keep %d: recovered record %d mutated", keep, i)
			}
		}
		if !bytes.Equal(got[want], []byte("post-crash")) {
			t.Fatalf("keep %d: post-crash record mutated", keep)
		}
	})
}
