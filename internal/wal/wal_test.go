package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"hpcap/internal/core"
)

// testPayloads returns n distinct payloads with varied sizes, including
// one empty and one spanning a multi-byte length prefix.
func testPayloads(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		size := (i * 37) % 300
		if i == 1 {
			size = 0
		}
		p := make([]byte, size)
		for j := range p {
			p[j] = byte(i + j)
		}
		out[i] = p
	}
	return out
}

// writeLog creates a WAL at path holding the given payloads.
func writeLog(t *testing.T, path string, payloads [][]byte) {
	t.Helper()
	log, recovered, err := Open(path, Config{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("fresh WAL recovered %d records", recovered)
	}
	for _, p := range payloads {
		if err := log.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
}

// replayAll collects every payload in the WAL.
func replayAll(t *testing.T, path string) [][]byte {
	t.Helper()
	var out [][]byte
	n, err := Replay(path, Config{}, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(out) {
		t.Fatalf("Replay reported %d records, delivered %d", n, len(out))
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	payloads := testPayloads(20)
	writeLog(t, path, payloads)

	got := replayAll(t, path)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d mutated", i)
		}
	}

	// Reopening recovers every record and appends after them.
	log, recovered, err := Open(path, Config{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != len(payloads) {
		t.Fatalf("recovered %d records, want %d", recovered, len(payloads))
	}
	extra := []byte("appended-after-recovery")
	if err := log.Append(extra); err != nil {
		t.Fatal(err)
	}
	if log.Appends() != 1 {
		t.Errorf("Appends() = %d, want 1 (recovered records not counted)", log.Appends())
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, path)
	if len(got) != len(payloads)+1 || !bytes.Equal(got[len(got)-1], extra) {
		t.Fatalf("post-recovery append not replayed: %d records", len(got))
	}
}

func TestReplayIsReadOnly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	writeLog(t, path, testPayloads(5))
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	replayAll(t, path)
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("Replay modified the WAL file")
	}
}

func TestOpenRecoversTornTail(t *testing.T) {
	dir := t.TempDir()
	payloads := testPayloads(8)
	ref := filepath.Join(dir, "ref.wal")
	writeLog(t, ref, payloads)
	whole, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	// boundaries[k] is the file offset just past record k-1.
	boundaries := recordBoundaries(payloads)

	for keep := 0; keep <= len(whole); keep++ {
		path := filepath.Join(dir, fmt.Sprintf("torn-%d.wal", keep))
		if err := os.WriteFile(path, whole[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		log, recovered, err := Open(path, Config{SyncEvery: -1})
		if err != nil {
			t.Fatalf("keep %d/%d: %v", keep, len(whole), err)
		}
		wantRecovered := 0
		for k, b := range boundaries {
			if int64(keep) >= b {
				wantRecovered = k + 1
			}
		}
		if recovered != wantRecovered {
			t.Fatalf("keep %d: recovered %d records, want %d", keep, recovered, wantRecovered)
		}
		// The recovered log must accept appends and replay as the intact
		// prefix plus the new record.
		if err := log.Append([]byte("post-crash")); err != nil {
			t.Fatal(err)
		}
		if err := log.Close(); err != nil {
			t.Fatal(err)
		}
		got := replayAll(t, path)
		if len(got) != wantRecovered+1 {
			t.Fatalf("keep %d: replayed %d records, want %d", keep, len(got), wantRecovered+1)
		}
		for i := 0; i < wantRecovered; i++ {
			if !bytes.Equal(got[i], payloads[i]) {
				t.Fatalf("keep %d: recovered record %d mutated", keep, i)
			}
		}
	}
}

// recordBoundaries returns the file offset just past each record.
func recordBoundaries(payloads [][]byte) []int64 {
	off := int64(len(Magic))
	out := make([]int64, len(payloads))
	for i, p := range payloads {
		off += int64(uvarintLen(uint64(len(p)))) + int64(len(p)) + 4
		out[i] = off
	}
	return out
}

func TestOpenRejectsCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	payloads := testPayloads(6)
	writeLog(t, path, payloads)
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte in the middle of the file: record 2 is large
	// enough to have a body, and records follow it.
	boundaries := recordBoundaries(payloads)
	mid := boundaries[1] + 2 // inside record 2's payload
	whole[mid] ^= 0xff
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Config{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open on flipped body: got %v, want ErrCorrupt", err)
	}
	if _, err := Replay(path, Config{}, func([]byte) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Replay on flipped body: got %v, want ErrCorrupt", err)
	}
}

func TestOpenRejectsBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!plus some data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path, Config{}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Open on bad magic: got %v, want ErrCorrupt", err)
	}
}

func TestAppendRejectsOversizeRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	log, _, err := Open(path, Config{SyncEvery: -1, MaxRecordBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if err := log.Append(make([]byte, 65)); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("oversize append: got %v, want ErrBadConfig", err)
	}
	if err := log.Append(make([]byte, 64)); err != nil {
		t.Errorf("at-limit append: %v", err)
	}
}

func TestReplayStopsOnCallbackError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	writeLog(t, path, testPayloads(5))
	boom := errors.New("boom")
	calls := 0
	_, err := Replay(path, Config{}, func([]byte) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("got %v, want callback error", err)
	}
	if calls != 2 {
		t.Errorf("callback ran %d times after error, want 2", calls)
	}
}

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
	// Negative SyncEvery means "never fsync", not an error.
	if errs := (Config{SyncEvery: -1}).Validate(); len(errs) > 0 {
		t.Fatalf("SyncEvery -1 rejected: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"tiny max record", Config{MaxRecordBytes: 8}},
		{"negative max record", Config{MaxRecordBytes: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			errs := tt.cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
		})
	}
}
