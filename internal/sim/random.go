package sim

import (
	"math"
	"math/rand"
)

// Source produces the random variates used by the workload and server
// models. It wraps math/rand with the distributions common in web-workload
// modeling (exponential think times, log-normal service times, bounded
// Pareto object sizes) and is deterministic for a given seed.
type Source struct {
	rng *rand.Rand
}

// NewSource returns a Source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent deterministic sub-stream, so components can be
// given their own randomness without cross-coupling event orders.
func (s *Source) Fork() *Source {
	return NewSource(s.rng.Int63())
}

// Float64 returns a uniform variate in [0, 1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn returns a uniform int in [0, n).
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Exp returns an exponential variate with the given mean.
func (s *Source) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.rng.ExpFloat64() * mean
}

// LogNormal returns a log-normal variate parameterized by the desired mean
// and coefficient of variation (cv = stddev/mean) of the resulting
// distribution. Service times of web and database requests are classically
// modeled as log-normal.
func (s *Source) LogNormal(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*s.rng.NormFloat64())
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// BoundedPareto returns a Pareto variate with shape alpha truncated to
// [lo, hi]. It models heavy-tailed quantities such as result-set sizes.
func (s *Source) BoundedPareto(alpha, lo, hi float64) float64 {
	if lo <= 0 || hi <= lo || alpha <= 0 {
		return lo
	}
	u := s.rng.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return x
}

// Pick returns an index in [0, len(weights)) with probability proportional
// to weights[i]. All-zero or empty weights return 0.
func (s *Source) Pick(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return 0
	}
	r := s.rng.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if r < w {
			return i
		}
		r -= w
	}
	return len(weights) - 1
}
