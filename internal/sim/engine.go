// Package sim provides the discrete-event simulation kernel that drives the
// multi-tier website testbed. Time is virtual (seconds as float64), events
// execute in (time, insertion-order) order, and all randomness flows from
// explicitly seeded sources, so every simulation in this repository is fully
// deterministic and runs orders of magnitude faster than real time.
package sim

import (
	"container/heap"
	"math"
)

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	clock  float64
	seq    uint64
	events eventHeap
}

// NewEngine returns an Engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.clock }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.events) }

// Schedule arranges for fn to run delay seconds after the current virtual
// time. A negative delay is treated as zero. Events scheduled for the same
// instant run in scheduling order.
func (e *Engine) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		delay = 0
	}
	e.At(e.clock+delay, fn)
}

// At arranges for fn to run at absolute virtual time t. Times in the past
// are clamped to the current time.
func (e *Engine) At(t float64, fn func()) {
	if t < e.clock || math.IsNaN(t) {
		t = e.clock
	}
	e.seq++
	heap.Push(&e.events, &event{time: t, seq: e.seq, fn: fn})
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(*event)
	e.clock = ev.time
	ev.fn()
	return true
}

// RunUntil executes events in order until the clock would pass t or no
// events remain. Events scheduled exactly at t are executed. On return the
// clock is at min(t, time of last executed event) — callers that need the
// clock pinned at t should schedule a sentinel event.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].time <= t {
		e.Step()
	}
	if e.clock < t && len(e.events) == 0 {
		e.clock = t
	}
}

// Run executes all pending events, including events scheduled by events, and
// returns when the queue is empty. Simulations with self-perpetuating event
// chains (e.g. periodic samplers) must use RunUntil instead.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// event is a scheduled callback.
type event struct {
	time float64
	seq  uint64 // tie-break: FIFO among same-time events
	fn   func()
}

// eventHeap is a min-heap over (time, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
