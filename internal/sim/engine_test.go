package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3 {
		t.Errorf("Now = %v, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestEngineNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("negative-delay event did not fire")
	}
	if e.Now() != 0 {
		t.Errorf("Now = %v, want 0", e.Now())
	}
}

func TestEngineNaNDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(math.NaN(), func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("NaN-delay event did not fire")
	}
}

func TestEngineEventsScheduleEvents(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(1, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 2 {
		t.Fatalf("times = %v, want [1 2]", times)
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		e.Schedule(1, tick)
	}
	e.Schedule(1, tick)
	e.RunUntil(10.5)
	if count != 10 {
		t.Errorf("ticks = %d, want 10", count)
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42)
	if e.Now() != 42 {
		t.Errorf("Now = %v, want 42 with no events", e.Now())
	}
}

func TestAtPastClamped(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Run()
	fired := false
	e.At(1, func() { fired = true }) // in the past; clamps to now=5
	e.Run()
	if !fired {
		t.Fatal("past event did not fire")
	}
	if e.Now() != 5 {
		t.Errorf("Now = %v, want 5", e.Now())
	}
}

func TestStepEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue returned true")
	}
}

// Property: events always execute in non-decreasing time order no matter the
// insertion order.
func TestEngineDequeueOrderProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		n := 100
		var executed []float64
		for i := 0; i < n; i++ {
			d := rng.Float64() * 1000
			e.Schedule(d, func() { executed = append(executed, e.Now()) })
		}
		e.Run()
		return len(executed) == n && sort.Float64sAreSorted(executed)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
