package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterminism(t *testing.T) {
	a := NewSource(7)
	b := NewSource(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewSource(7)
	fork := a.Fork()
	// The fork must be deterministic given the parent seed.
	b := NewSource(7)
	forkB := b.Fork()
	for i := 0; i < 50; i++ {
		if fork.Float64() != forkB.Float64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
}

func TestExpMean(t *testing.T) {
	s := NewSource(42)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(3)
	}
	mean := sum / n
	if math.Abs(mean-3) > 0.1 {
		t.Errorf("Exp(3) sample mean = %v, want ≈3", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Error("Exp with non-positive mean should return 0")
	}
}

func TestLogNormalMoments(t *testing.T) {
	s := NewSource(42)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.LogNormal(10, 0.5)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	cv := math.Sqrt(variance) / mean
	if math.Abs(mean-10) > 0.3 {
		t.Errorf("LogNormal mean = %v, want ≈10", mean)
	}
	if math.Abs(cv-0.5) > 0.05 {
		t.Errorf("LogNormal cv = %v, want ≈0.5", cv)
	}
}

func TestLogNormalDegenerate(t *testing.T) {
	s := NewSource(1)
	if got := s.LogNormal(0, 0.5); got != 0 {
		t.Errorf("LogNormal(0, _) = %v, want 0", got)
	}
	if got := s.LogNormal(5, 0); got != 5 {
		t.Errorf("LogNormal(5, 0) = %v, want 5", got)
	}
}

func TestBoundedParetoWithinBounds(t *testing.T) {
	s := NewSource(11)
	for i := 0; i < 10000; i++ {
		x := s.BoundedPareto(1.2, 1, 100)
		if x < 1 || x > 100 {
			t.Fatalf("BoundedPareto out of range: %v", x)
		}
	}
}

func TestBoundedParetoDegenerate(t *testing.T) {
	s := NewSource(1)
	if got := s.BoundedPareto(1.5, 0, 10); got != 0 {
		t.Errorf("lo<=0: got %v, want 0", got)
	}
	if got := s.BoundedPareto(1.5, 5, 5); got != 5 {
		t.Errorf("hi<=lo: got %v, want 5", got)
	}
}

func TestPickDistribution(t *testing.T) {
	s := NewSource(3)
	weights := []float64{1, 3, 0, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Pick(weights)]++
	}
	if counts[2] != 0 {
		t.Errorf("zero-weight index picked %d times", counts[2])
	}
	// Expected proportions 0.1, 0.3, 0, 0.6.
	if math.Abs(float64(counts[0])/n-0.1) > 0.01 {
		t.Errorf("index 0 frequency %v, want ≈0.1", float64(counts[0])/n)
	}
	if math.Abs(float64(counts[3])/n-0.6) > 0.01 {
		t.Errorf("index 3 frequency %v, want ≈0.6", float64(counts[3])/n)
	}
}

func TestPickDegenerate(t *testing.T) {
	s := NewSource(3)
	if got := s.Pick(nil); got != 0 {
		t.Errorf("Pick(nil) = %d, want 0", got)
	}
	if got := s.Pick([]float64{0, 0}); got != 0 {
		t.Errorf("Pick(zeros) = %d, want 0", got)
	}
	// Negative weights are ignored.
	if got := s.Pick([]float64{-5, 1}); got != 1 {
		t.Errorf("Pick with negative weight = %d, want 1", got)
	}
}

// Property: Pick always returns a valid index with positive weight (when one
// exists).
func TestPickValidIndexProperty(t *testing.T) {
	f := func(seed int64, raw []float64) bool {
		s := NewSource(seed)
		if len(raw) == 0 {
			return s.Pick(raw) == 0
		}
		idx := s.Pick(raw)
		if idx < 0 || idx >= len(raw) {
			return false
		}
		anyPositive := false
		for _, w := range raw {
			if w > 0 && !math.IsInf(w, 1) && !math.IsNaN(w) {
				anyPositive = true
			}
		}
		if !anyPositive {
			return idx == 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
