// Package wire is the batched sample protocol between capagent edge
// collectors and the capserved decision daemon: the paper's premise is
// *online* measurement, and at production scale the counters are sampled
// where the hardware lives while the classifier runs wherever the
// operator can see the fleet. The protocol therefore treats the edge
// stream as a lossy, noisy channel the server must tolerate (BayesPerf,
// arXiv:2102.10837, documents exactly this failure mode for deployed
// counter pipelines): frames are sequenced per site so the receiver can
// count every gap, duplicate, and reordering instead of silently
// absorbing them.
//
// A Frame carries one site's fused scrapes — for each sampled second,
// every tier's metric vector under one timestamp — which maps 1:1 onto
// the sharded pipeline's fused ingest fast path (serve.Batcher.AddSite).
// On the stream, each frame is a uvarint length prefix followed by the
// payload AppendFrame produces; payloads are self-contained, so the same
// bytes double as the WAL record format (internal/wal) and as a capture
// format replayable through the Lab.
//
// Decoding never panics and never invents data: truncated, oversized, or
// garbage payloads return an error (the fuzz test pins this), and a
// successfully decoded frame carries its sequence number bit-exactly.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/server"
)

// Version is the frame format version byte; decoders reject others.
const Version = 1

// Protocol bounds. They guard the receiver against garbage length fields:
// nothing decoded may allocate beyond them.
const (
	// MaxSiteLen bounds the site-name field.
	MaxSiteLen = 256
	// MaxFrameSamples bounds the fused scrapes in one frame.
	MaxFrameSamples = 4096
	// MaxDim bounds one tier's metric-vector length.
	MaxDim = 4096
	// MaxFrameBytes is the default bound on one encoded frame, enforced
	// by ReadFrame and AgentConfig.
	MaxFrameBytes = 1 << 20
)

// ErrFrame marks a malformed frame; every decode failure wraps it.
var ErrFrame = errors.New("malformed frame")

// Sample is one fused site scrape: every tier's 1-second metric vector
// under a single timestamp — the unit serve.Batcher.AddSite ingests.
type Sample struct {
	// Time is the sample timestamp in stream seconds.
	Time float64
	// Vecs holds one metric vector per tier, in the full collector
	// layout the serving monitor was trained on.
	Vecs [server.NumTiers][]float64
}

// Frame is one batch of fused scrapes from one site, sequenced so the
// receiver can account for every lost, duplicated, or reordered delivery.
type Frame struct {
	// Site names the monitored site the samples belong to.
	Site string
	// Seq is the per-site frame sequence number. Senders number frames
	// contiguously from 0; the receiver counts gaps (lost frames),
	// repeats (duplicates), and regressions (reordering) against it.
	Seq uint64
	// Samples are the fused scrapes, in stream order.
	Samples []Sample
}

// AppendFrame encodes f and appends the payload to dst (no length
// prefix — WriteFrame adds the stream framing). The layout is:
//
//	version  byte
//	site     uvarint length + bytes
//	seq      uvarint
//	count    uvarint
//	samples  count × { time float64-bits LE8,
//	                   NumTiers × (dim uvarint + dim × float64-bits LE8) }
func AppendFrame(dst []byte, f *Frame) []byte {
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(len(f.Site)))
	dst = append(dst, f.Site...)
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = binary.AppendUvarint(dst, uint64(len(f.Samples)))
	for i := range f.Samples {
		s := &f.Samples[i]
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(s.Time))
		for tier := range s.Vecs {
			dst = binary.AppendUvarint(dst, uint64(len(s.Vecs[tier])))
			for _, v := range s.Vecs[tier] {
				dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
			}
		}
	}
	return dst
}

// decoder walks a payload with bounds checking; every read error poisons
// the decode.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wire: %w: %s", ErrFrame, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) uvarint(what string, max uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		d.fail("truncated %s", what)
		return 0
	}
	d.off += n
	if v > max {
		d.fail("%s %d exceeds %d", what, v, max)
		return 0
	}
	return v
}

func (d *decoder) float64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.b) {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v
}

// DecodeFrame parses one payload produced by AppendFrame. It never
// panics; truncated, oversized, or trailing-garbage payloads return an
// error wrapping ErrFrame, and a nil error guarantees the returned frame
// (sequence number included) is exactly what the sender encoded.
func DecodeFrame(payload []byte) (Frame, error) {
	var f Frame
	if len(payload) == 0 {
		return f, fmt.Errorf("wire: %w: empty payload", ErrFrame)
	}
	if payload[0] != Version {
		return f, fmt.Errorf("wire: %w: version %d, want %d", ErrFrame, payload[0], Version)
	}
	d := &decoder{b: payload, off: 1}
	siteLen := d.uvarint("site length", MaxSiteLen)
	if d.err == nil && d.off+int(siteLen) > len(d.b) {
		d.fail("truncated site name")
	}
	if d.err == nil {
		f.Site = string(d.b[d.off : d.off+int(siteLen)])
		d.off += int(siteLen)
	}
	f.Seq = d.uvarint("sequence", math.MaxUint64)
	count := d.uvarint("sample count", MaxFrameSamples)
	for i := uint64(0); i < count && d.err == nil; i++ {
		var s Sample
		s.Time = d.float64()
		for tier := range s.Vecs {
			dim := d.uvarint("vector length", MaxDim)
			if d.err != nil {
				break
			}
			if dim > 0 {
				vec := make([]float64, dim)
				for j := range vec {
					vec[j] = d.float64()
				}
				s.Vecs[tier] = vec
			}
		}
		if d.err == nil {
			f.Samples = append(f.Samples, s)
		}
	}
	if d.err != nil {
		return Frame{}, d.err
	}
	if d.off != len(d.b) {
		return Frame{}, fmt.Errorf("wire: %w: %d trailing bytes", ErrFrame, len(d.b)-d.off)
	}
	return f, nil
}

// AgentConfig tunes a Sender — the edge agent's half of the protocol.
// The zero value selects every default (DefaultAgentConfig); Validate
// reports each invalid field as an ErrBadConfig-wrapped error.
type AgentConfig struct {
	// FrameSamples is how many fused scrapes accumulate into one frame
	// before it is shipped. Larger frames amortize framing and syscalls;
	// smaller ones cut the server's transport-staleness lag. Zero
	// selects 5.
	FrameSamples int
	// QueueFrames bounds the send queue. A full queue drops the oldest
	// queued frame (counted) so the freshest samples keep flowing — the
	// channel is lossy by design; the server's sequence accounting and
	// health ladder absorb the gap. Zero selects 256.
	QueueFrames int
	// MaxFrameBytes bounds one encoded frame. Zero selects MaxFrameBytes.
	MaxFrameBytes int
	// MaxRetries bounds write attempts per frame after the first; a frame
	// failing 1+MaxRetries writes is dropped (counted) and the stream
	// moves on. Zero selects 3; negative selects 0.
	MaxRetries int
	// BackoffBase and BackoffMax shape the reconnect/retry backoff:
	// attempt n sleeps min(BackoffBase·2ⁿ⁻¹, BackoffMax). Zero selects
	// 100ms and 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DialTimeout bounds one connection attempt. Zero selects 3s.
	DialTimeout time.Duration
	// WriteTimeout bounds one frame write. Zero selects 5s.
	WriteTimeout time.Duration
}

// DefaultAgentConfig returns the defaults Validate and NewSender resolve
// zero fields to.
func DefaultAgentConfig() AgentConfig {
	return AgentConfig{
		FrameSamples:  5,
		QueueFrames:   256,
		MaxFrameBytes: MaxFrameBytes,
		MaxRetries:    3,
		BackoffBase:   100 * time.Millisecond,
		BackoffMax:    5 * time.Second,
		DialTimeout:   3 * time.Second,
		WriteTimeout:  5 * time.Second,
	}
}

// Validate reports every invalid field (after zero fields resolve to
// defaults) as an ErrBadConfig-wrapped error. It never panics.
func (c AgentConfig) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.FrameSamples < 1 || c.FrameSamples > MaxFrameSamples {
		errs = append(errs, fmt.Errorf("wire: %w: frame samples %d outside 1..%d",
			core.ErrBadConfig, c.FrameSamples, MaxFrameSamples))
	}
	if c.QueueFrames < 1 {
		errs = append(errs, fmt.Errorf("wire: %w: queue frames %d must be positive",
			core.ErrBadConfig, c.QueueFrames))
	}
	if c.MaxFrameBytes < 64 {
		errs = append(errs, fmt.Errorf("wire: %w: max frame bytes %d below 64",
			core.ErrBadConfig, c.MaxFrameBytes))
	}
	if c.BackoffBase <= 0 {
		errs = append(errs, fmt.Errorf("wire: %w: backoff base %v must be positive",
			core.ErrBadConfig, c.BackoffBase))
	}
	if c.BackoffMax < c.BackoffBase {
		errs = append(errs, fmt.Errorf("wire: %w: backoff max %v below base %v",
			core.ErrBadConfig, c.BackoffMax, c.BackoffBase))
	}
	if c.DialTimeout <= 0 {
		errs = append(errs, fmt.Errorf("wire: %w: dial timeout %v must be positive",
			core.ErrBadConfig, c.DialTimeout))
	}
	if c.WriteTimeout <= 0 {
		errs = append(errs, fmt.Errorf("wire: %w: write timeout %v must be positive",
			core.ErrBadConfig, c.WriteTimeout))
	}
	return errs
}

// withDefaults resolves zero fields to DefaultAgentConfig values.
func (c AgentConfig) withDefaults() AgentConfig {
	d := DefaultAgentConfig()
	if c.FrameSamples == 0 {
		c.FrameSamples = d.FrameSamples
	}
	if c.QueueFrames == 0 {
		c.QueueFrames = d.QueueFrames
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = d.MaxFrameBytes
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = d.MaxRetries
	case c.MaxRetries < 0:
		c.MaxRetries = 0
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = d.BackoffBase
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = d.BackoffMax
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = d.DialTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = d.WriteTimeout
	}
	return c
}
