package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/server"
)

// frameA returns a representative frame with mixed-dimension vectors and
// awkward float values.
func frameA() Frame {
	return Frame{
		Site: "site-1",
		Seq:  42,
		Samples: []Sample{
			{Time: 0, Vecs: [server.NumTiers][]float64{{1, 2, 3}, {4.5, -6.25}}},
			{Time: 29.5, Vecs: [server.NumTiers][]float64{{math.Inf(1), math.SmallestNonzeroFloat64}, {0}}},
		},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		frameA(),
		{Site: "", Seq: 0},
		{Site: strings.Repeat("s", MaxSiteLen), Seq: math.MaxUint64},
		{Site: "empty-vecs", Seq: 7, Samples: []Sample{{Time: 1}}},
	}
	for _, in := range frames {
		payload := AppendFrame(nil, &in)
		out, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("decode %q seq %d: %v", in.Site, in.Seq, err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Errorf("round trip mutated frame %q:\n in=%+v\nout=%+v", in.Site, in, out)
		}
	}
}

func TestDecodeFrameRejectsGarbage(t *testing.T) {
	good := AppendFrame(nil, &Frame{Site: "s", Seq: 3, Samples: []Sample{
		{Time: 1, Vecs: [server.NumTiers][]float64{{1}, {2}}},
	}})
	tests := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"bad version", append([]byte{Version + 1}, good[1:]...)},
		{"truncated mid-sample", good[:len(good)-3]},
		{"trailing garbage", append(append([]byte{}, good...), 0)},
		{"oversized site length", []byte{Version, 0xff, 0xff, 0x04}},
		{"oversized sample count", append(append([]byte{Version, 0}, 9), []byte{0xff, 0xff, 0x7f}...)},
	}
	for _, tt := range tests {
		f, err := DecodeFrame(tt.payload)
		if err == nil {
			t.Errorf("%s: decoded to %+v, want error", tt.name, f)
			continue
		}
		if !errors.Is(err, ErrFrame) {
			t.Errorf("%s: error %v does not wrap ErrFrame", tt.name, err)
		}
	}
}

// TestDecodeFramePreservesSeq pins the no-silent-seq-mutation guarantee
// across the uvarint encoding's width boundaries.
func TestDecodeFramePreservesSeq(t *testing.T) {
	for _, seq := range []uint64{0, 1, 127, 128, 1 << 20, 1 << 42, math.MaxUint64} {
		payload := AppendFrame(nil, &Frame{Site: "s", Seq: seq})
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("seq %d: %v", seq, err)
		}
		if f.Seq != seq {
			t.Errorf("seq %d decoded as %d", seq, f.Seq)
		}
	}
}

func TestStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := [][]byte{
		AppendFrame(nil, &Frame{Site: "a", Seq: 0}),
		AppendFrame(nil, func() *Frame { f := frameA(); return &f }()),
		{},
	}
	for _, p := range want {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	r := bufio.NewReader(&buf)
	var scratch []byte
	for i, p := range want {
		got, err := ReadFrame(r, MaxFrameBytes, scratch)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: payload mutated", i)
		}
		scratch = got
	}
	if _, err := ReadFrame(r, MaxFrameBytes, scratch); err != io.EOF {
		t.Errorf("stream end: got %v, want io.EOF", err)
	}
}

// TestReadFrameEOFSemantics pins the clean-boundary contract: io.EOF only
// between frames, io.ErrUnexpectedEOF anywhere inside one.
func TestReadFrameEOFSemantics(t *testing.T) {
	var buf bytes.Buffer
	payload := AppendFrame(nil, func() *Frame { f := frameA(); return &f }())
	if err := WriteFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for cut := 1; cut < len(whole); cut++ {
		r := bufio.NewReader(bytes.NewReader(whole[:cut]))
		_, err := ReadFrame(r, MaxFrameBytes, nil)
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d/%d: got %v, want io.ErrUnexpectedEOF", cut, len(whole), err)
		}
	}
	// A multi-byte length prefix cut after its first byte is mid-frame too.
	big := make([]byte, 300)
	var pref bytes.Buffer
	if err := WriteFrame(&pref, big); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(bytes.NewReader(pref.Bytes()[:1]))
	if _, err := ReadFrame(r, MaxFrameBytes, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-prefix cut: got %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestReadFrameBoundsLength(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	if _, err := ReadFrame(r, 64, nil); !errors.Is(err, ErrFrame) {
		t.Errorf("oversized frame: got %v, want ErrFrame", err)
	}
}

func TestDefaultAgentConfigValid(t *testing.T) {
	if errs := DefaultAgentConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultAgentConfig invalid: %v", errs)
	}
	if errs := (AgentConfig{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero AgentConfig invalid after defaults: %v", errs)
	}
}

func TestAgentConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*AgentConfig)
	}{
		{"negative frame samples", func(c *AgentConfig) { c.FrameSamples = -1 }},
		{"frame samples over cap", func(c *AgentConfig) { c.FrameSamples = MaxFrameSamples + 1 }},
		{"negative queue", func(c *AgentConfig) { c.QueueFrames = -1 }},
		{"tiny max frame bytes", func(c *AgentConfig) { c.MaxFrameBytes = 8 }},
		{"negative backoff base", func(c *AgentConfig) { c.BackoffBase = -time.Second }},
		{"backoff max below base", func(c *AgentConfig) {
			c.BackoffBase = time.Second
			c.BackoffMax = time.Millisecond
		}},
		{"negative dial timeout", func(c *AgentConfig) { c.DialTimeout = -1 }},
		{"negative write timeout", func(c *AgentConfig) { c.WriteTimeout = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultAgentConfig()
			tt.mutate(&cfg)
			errs := cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
		})
	}
	// MaxRetries is clamp-only: any value validates.
	neg := DefaultAgentConfig()
	neg.MaxRetries = -5
	if errs := neg.Validate(); len(errs) > 0 {
		t.Errorf("negative MaxRetries should clamp, got %v", errs)
	}
}
