package wire

import (
	"errors"
	"net"
	"sync"
	"time"
)

// SenderStats counts what a Sender did with the frames offered to it.
type SenderStats struct {
	Enqueued uint64 // frames accepted into the send queue
	Sent     uint64 // frames written to the server
	Retries  uint64 // extra write attempts after a failure

	DroppedFull     uint64 // oldest frames evicted by a full queue
	DroppedRetry    uint64 // frames abandoned after exhausting retries
	DroppedClosed   uint64 // frames offered after Close
	DroppedOversize uint64 // frames exceeding MaxFrameBytes

	Dials         uint64 // connection attempts
	DialFailures  uint64
	WriteFailures uint64
}

// Dropped sums every frame the sender lost rather than delivered.
func (s SenderStats) Dropped() uint64 {
	return s.DroppedFull + s.DroppedRetry + s.DroppedClosed + s.DroppedOversize
}

// Sender is the agent's shipping half: a bounded queue of encoded frames
// drained by one goroutine that dials the server lazily, writes frames
// with bounded retry and exponential backoff, and sheds load instead of
// wedging. A full queue evicts the *oldest* frame — the freshest samples
// always flow — and a frame that exhausts its write retries is dropped
// and counted. Both losses surface at the server as sequence gaps, which
// feed the site's transport staleness and health ladder; a flapping link
// therefore degrades the site's decisions instead of stalling the
// sampling loop.
//
// Send is safe for concurrent use; a site's frames keep their relative
// order (the queue is FIFO and a single goroutine drains it).
type Sender struct {
	addr string
	cfg  AgentConfig

	// dial and sleep are the sender's only environment touchpoints,
	// injectable by tests.
	dial  func(addr string, timeout time.Duration) (net.Conn, error)
	sleep func(time.Duration)

	mu       sync.Mutex
	cond     *sync.Cond
	queue    [][]byte
	closed   bool
	inflight bool
	stats    SenderStats

	conn net.Conn // worker-owned; nil when disconnected
	wg   sync.WaitGroup
}

// NewSender validates the configuration and starts the drain goroutine.
// The server is dialed lazily, on the first queued frame.
func NewSender(addr string, cfg AgentConfig) (*Sender, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	s := &Sender{
		addr: addr,
		cfg:  cfg.withDefaults(),
		dial: func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		},
		sleep: time.Sleep,
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(1)
	go s.drain()
	return s, nil
}

// Send encodes and enqueues one frame. It never blocks: a full queue
// evicts the oldest queued frame (counted DroppedFull), an oversized or
// post-Close frame is dropped and counted.
func (s *Sender) Send(f *Frame) {
	payload := AppendFrame(nil, f)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.stats.DroppedClosed++
		return
	}
	if len(payload) > s.cfg.MaxFrameBytes {
		s.stats.DroppedOversize++
		return
	}
	if len(s.queue) >= s.cfg.QueueFrames {
		s.queue = s.queue[1:]
		s.stats.DroppedFull++
	}
	s.queue = append(s.queue, payload)
	s.stats.Enqueued++
	s.cond.Signal()
}

// Stats returns a snapshot of the sender's counters.
func (s *Sender) Stats() SenderStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Flush blocks until every frame queued before the call has been sent or
// dropped.
func (s *Sender) Flush() {
	s.mu.Lock()
	for len(s.queue) > 0 || s.inflight {
		s.cond.Wait()
	}
	s.mu.Unlock()
}

// Close drains the queue (each remaining frame still gets its bounded
// retries), stops the goroutine, and closes the connection. Frames
// offered afterwards are dropped and counted.
func (s *Sender) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// drain is the sender goroutine: pop the queue head, deliver it with
// bounded retry, repeat until closed and empty.
func (s *Sender) drain() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.closed {
			s.mu.Unlock()
			break
		}
		payload := s.queue[0]
		s.queue = s.queue[1:]
		s.inflight = true
		s.mu.Unlock()

		sent := s.sendOne(payload)

		s.mu.Lock()
		s.inflight = false
		if sent {
			s.stats.Sent++
		} else {
			s.stats.DroppedRetry++
		}
		s.cond.Broadcast()
		s.mu.Unlock()
	}
	if s.conn != nil {
		_ = s.conn.Close()
		s.conn = nil
	}
}

// sendOne delivers one payload with up to 1+MaxRetries attempts. Each
// attempt dials if disconnected; a failed write tears the connection down
// so the next attempt redials. Backoff grows exponentially between
// attempts, capped at BackoffMax.
func (s *Sender) sendOne(payload []byte) bool {
	for attempt := 0; attempt <= s.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			s.mu.Lock()
			s.stats.Retries++
			s.mu.Unlock()
			s.sleep(s.backoff(attempt))
		}
		if s.conn == nil {
			s.mu.Lock()
			s.stats.Dials++
			s.mu.Unlock()
			conn, err := s.dial(s.addr, s.cfg.DialTimeout)
			if err != nil {
				s.mu.Lock()
				s.stats.DialFailures++
				s.mu.Unlock()
				continue
			}
			s.conn = conn
		}
		if s.cfg.WriteTimeout > 0 {
			_ = s.conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		}
		if err := WriteFrame(s.conn, payload); err != nil {
			s.mu.Lock()
			s.stats.WriteFailures++
			s.mu.Unlock()
			_ = s.conn.Close()
			s.conn = nil
			continue
		}
		return true
	}
	return false
}

// backoff returns the sleep before the attempt-th retry (1-based).
func (s *Sender) backoff(attempt int) time.Duration {
	d := s.cfg.BackoffBase
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= s.cfg.BackoffMax {
			return s.cfg.BackoffMax
		}
	}
	if d > s.cfg.BackoffMax {
		d = s.cfg.BackoffMax
	}
	return d
}
