package wire

import (
	"bytes"
	"math"
	"testing"

	"hpcap/internal/server"
)

// FuzzFrameDecode pins the receiver's two load-bearing guarantees against
// arbitrary payloads: DecodeFrame never panics, and a successful decode is
// stable — re-encoding and re-decoding reproduces the same frame exactly,
// sequence number above all, so no field can be silently altered or
// dropped in flight. (The input itself may use non-minimal varints, so
// byte-for-byte fixed-point against the raw payload is not required; the
// canonical re-encoding is.)
func FuzzFrameDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{Version})
	f.Add(AppendFrame(nil, &Frame{Site: "seed", Seq: 1, Samples: []Sample{
		{Time: 30, Vecs: [server.NumTiers][]float64{{1, 2}, {3}}},
	}}))
	f.Add(AppendFrame(nil, &Frame{Site: "", Seq: math.MaxUint64}))
	f.Add([]byte{Version, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, payload []byte) {
		frame, err := DecodeFrame(payload)
		if err != nil {
			return
		}
		re := AppendFrame(nil, &frame)
		frame2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		// Compare through the encoder: byte equality is NaN-safe where
		// struct equality is not.
		if frame2.Seq != frame.Seq || frame2.Site != frame.Site || len(frame2.Samples) != len(frame.Samples) {
			t.Fatalf("round trip mutated frame: %+v vs %+v", frame, frame2)
		}
		if re2 := AppendFrame(nil, &frame2); !bytes.Equal(re, re2) {
			t.Fatalf("round trip not stable:\n re  %x\n re2 %x", re, re2)
		}
	})
}
