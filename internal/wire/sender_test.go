package wire

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// pipeConn adapts one end of net.Pipe-like behaviour onto an in-memory
// buffer: writes land in the script's buffer, and the script can make any
// write fail to simulate a dead link.
type scriptConn struct {
	script *linkScript
}

// linkScript is the injectable network: it decides whether each dial and
// each write succeeds, and collects everything successfully written.
type linkScript struct {
	mu sync.Mutex
	// dialFailures makes the next n dials fail.
	dialFailures int
	// writeFailures makes the next n writes fail (tearing the conn down).
	writeFailures int
	// blockDial, when non-nil, parks successful dials until it is closed —
	// a deterministic way to hold the drain goroutine mid-frame.
	blockDial chan struct{}
	buf       bytes.Buffer
	sleeps    []time.Duration
}

func (l *linkScript) dial(addr string, timeout time.Duration) (net.Conn, error) {
	l.mu.Lock()
	if l.dialFailures > 0 {
		l.dialFailures--
		l.mu.Unlock()
		return nil, errors.New("script: dial refused")
	}
	block := l.blockDial
	l.mu.Unlock()
	if block != nil {
		<-block
	}
	return &scriptConn{script: l}, nil
}

func (l *linkScript) sleep(d time.Duration) {
	l.mu.Lock()
	l.sleeps = append(l.sleeps, d)
	l.mu.Unlock()
}

func (l *linkScript) frames(t *testing.T, max int) []Frame {
	t.Helper()
	l.mu.Lock()
	data := append([]byte(nil), l.buf.Bytes()...)
	l.mu.Unlock()
	r := bufio.NewReader(bytes.NewReader(data))
	var out []Frame
	for {
		payload, err := ReadFrame(r, max, nil)
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("script stream corrupt: %v", err)
		}
		f, err := DecodeFrame(payload)
		if err != nil {
			t.Fatalf("script frame corrupt: %v", err)
		}
		out = append(out, f)
	}
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.script.mu.Lock()
	defer c.script.mu.Unlock()
	if c.script.writeFailures > 0 {
		c.script.writeFailures--
		return 0, errors.New("script: write reset")
	}
	return c.script.buf.Write(p)
}

func (c *scriptConn) Read(p []byte) (int, error)         { return 0, io.EOF }
func (c *scriptConn) Close() error                       { return nil }
func (c *scriptConn) LocalAddr() net.Addr                { return nil }
func (c *scriptConn) RemoteAddr() net.Addr               { return nil }
func (c *scriptConn) SetDeadline(t time.Time) error      { return nil }
func (c *scriptConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *scriptConn) SetWriteDeadline(t time.Time) error { return nil }

// newScriptedSender builds a sender wired to an in-memory link script.
func newScriptedSender(t *testing.T, cfg AgentConfig) (*Sender, *linkScript) {
	t.Helper()
	s, err := NewSender("script:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	script := &linkScript{}
	// The drain goroutine dials lazily on the first frame, so rewiring
	// right after construction is race-free as long as nothing was sent.
	s.dial = script.dial
	s.sleep = script.sleep
	return s, script
}

func TestSenderDeliversInOrder(t *testing.T) {
	s, script := newScriptedSender(t, AgentConfig{})
	for seq := uint64(0); seq < 10; seq++ {
		s.Send(&Frame{Site: "a", Seq: seq})
	}
	s.Close()
	got := script.frames(t, MaxFrameBytes)
	if len(got) != 10 {
		t.Fatalf("delivered %d frames, want 10", len(got))
	}
	for i, f := range got {
		if f.Seq != uint64(i) {
			t.Errorf("frame %d has seq %d: order not preserved", i, f.Seq)
		}
	}
	st := s.Stats()
	if st.Sent != 10 || st.Dropped() != 0 || st.Dials != 1 {
		t.Errorf("stats %+v: want 10 sent, 0 dropped, 1 dial", st)
	}
}

func TestSenderRetriesThenDelivers(t *testing.T) {
	s, script := newScriptedSender(t, AgentConfig{MaxRetries: 3})
	script.dialFailures = 1
	script.writeFailures = 1
	s.Send(&Frame{Site: "a", Seq: 0})
	s.Flush()
	got := script.frames(t, MaxFrameBytes)
	if len(got) != 1 || got[0].Seq != 0 {
		t.Fatalf("frames %+v, want the one frame delivered", got)
	}
	st := s.Stats()
	if st.Sent != 1 || st.Retries != 2 || st.DialFailures != 1 || st.WriteFailures != 1 {
		t.Errorf("stats %+v: want 1 sent after 1 dial failure + 1 write failure", st)
	}
	if len(script.sleeps) != 2 {
		t.Errorf("%d backoff sleeps, want 2", len(script.sleeps))
	}
	s.Close()
}

func TestSenderDropsAfterRetryBudget(t *testing.T) {
	s, script := newScriptedSender(t, AgentConfig{MaxRetries: 2})
	// Link down for exactly the first frame's 1+2 attempts, then back up:
	// the next frame must still get through — a dead frame must not wedge
	// the stream.
	script.dialFailures = 3
	s.Send(&Frame{Site: "a", Seq: 0})
	s.Flush()
	s.Send(&Frame{Site: "a", Seq: 1})
	s.Close()
	got := script.frames(t, MaxFrameBytes)
	if len(got) != 1 || got[0].Seq != 1 {
		t.Fatalf("frames %+v, want only seq 1 (seq 0 dropped)", got)
	}
	st := s.Stats()
	if st.DroppedRetry != 1 || st.Sent != 1 {
		t.Errorf("stats %+v: want 1 retry-dropped, 1 sent", st)
	}
}

func TestSenderEvictsOldestWhenFull(t *testing.T) {
	s, script := newScriptedSender(t, AgentConfig{QueueFrames: 4})
	// Park the drain goroutine inside its first dial so the queue fills
	// deterministically behind it.
	release := make(chan struct{})
	script.mu.Lock()
	script.blockDial = release
	script.mu.Unlock()
	s.Send(&Frame{Site: "a", Seq: 0})
	for s.Stats().Dials == 0 {
		time.Sleep(time.Millisecond)
	}
	// Frame 0 is in flight; 11 more frames hit a queue of 4, so the 7
	// oldest queued frames (seqs 1..7) are evicted.
	for seq := uint64(1); seq <= 11; seq++ {
		s.Send(&Frame{Site: "a", Seq: seq})
	}
	script.mu.Lock()
	script.blockDial = nil
	script.mu.Unlock()
	close(release)
	s.Close()

	got := script.frames(t, MaxFrameBytes)
	st := s.Stats()
	if st.Enqueued != 12 {
		t.Errorf("enqueued %d, want 12", st.Enqueued)
	}
	if st.DroppedFull != 7 || st.Sent != 5 {
		t.Errorf("stats %+v: want 7 evicted, 5 sent", st)
	}
	want := []uint64{0, 8, 9, 10, 11} // in-flight frame plus the newest 4
	if len(got) != len(want) {
		t.Fatalf("delivered %d frames, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Seq != want[i] {
			t.Errorf("delivered[%d] = seq %d, want %d", i, f.Seq, want[i])
		}
	}
}

func TestSenderDropsOversizeAndAfterClose(t *testing.T) {
	s, script := newScriptedSender(t, AgentConfig{MaxFrameBytes: 64})
	big := Frame{Site: "a", Seq: 0, Samples: []Sample{{Time: 1}}}
	for len(AppendFrame(nil, &big)) <= 64 {
		big.Samples = append(big.Samples, Sample{Time: float64(len(big.Samples))})
	}
	s.Send(&big)
	s.Send(&Frame{Site: "a", Seq: 1})
	s.Close()
	s.Send(&Frame{Site: "a", Seq: 2})
	st := s.Stats()
	if st.DroppedOversize != 1 || st.DroppedClosed != 1 || st.Sent != 1 {
		t.Errorf("stats %+v: want 1 oversize-dropped, 1 closed-dropped, 1 sent", st)
	}
	if got := script.frames(t, MaxFrameBytes); len(got) != 1 || got[0].Seq != 1 {
		t.Errorf("frames %+v, want only seq 1", got)
	}
}

func TestSenderBackoffCaps(t *testing.T) {
	s, err := NewSender("script:0", AgentConfig{
		BackoffBase: 100 * time.Millisecond,
		BackoffMax:  400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	want := []time.Duration{
		100 * time.Millisecond, // attempt 1
		200 * time.Millisecond, // attempt 2
		400 * time.Millisecond, // attempt 3 hits the cap
		400 * time.Millisecond, // and stays there
	}
	for i, w := range want {
		if got := s.backoff(i + 1); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestNewSenderRejectsBadConfig(t *testing.T) {
	_, err := NewSender("script:0", AgentConfig{FrameSamples: -1})
	if err == nil {
		t.Fatal("invalid config not rejected")
	}
}
