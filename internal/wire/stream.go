package wire

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// WriteFrame writes one encoded payload with its uvarint length prefix —
// the stream framing both the TCP transport and the WAL record body use.
func WriteFrame(w io.Writer, payload []byte) error {
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed payload, reusing buf when it is
// large enough. Payloads longer than max fail without allocating — a
// garbage length field must not let a peer balloon the receiver. io.EOF
// is returned only at a clean frame boundary; a prefix or payload cut
// short mid-frame surfaces as io.ErrUnexpectedEOF.
func ReadFrame(r *bufio.Reader, max int, buf []byte) ([]byte, error) {
	n, err := readUvarint(r)
	if err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("wire: read frame length: %w", err)
	}
	if n > uint64(max) {
		return nil, fmt.Errorf("wire: %w: frame length %d exceeds %d", ErrFrame, n, max)
	}
	if uint64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("wire: read frame payload: %w", err)
	}
	return buf, nil
}

// readUvarint is binary.ReadUvarint with one difference: EOF after at
// least one prefix byte is io.ErrUnexpectedEOF, so only a stream ending
// exactly on a frame boundary reads as clean EOF.
func readUvarint(r *bufio.Reader) (uint64, error) {
	var v uint64
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := r.ReadByte()
		if err != nil {
			if err == io.EOF && i > 0 {
				err = io.ErrUnexpectedEOF
			}
			return 0, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, fmt.Errorf("%w: length prefix overflows uint64", ErrFrame)
			}
			return v | uint64(b)<<(7*i), nil
		}
		v |= uint64(b&0x7f) << (7 * i)
	}
	return 0, fmt.Errorf("%w: length prefix overflows uint64", ErrFrame)
}
