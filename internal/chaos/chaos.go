// Package chaos is the deterministic fault-injection layer for the online
// serving stack: it wraps a stream of serve.Samples (or a
// metrics.Collector) and injects scripted telemetry faults — sample
// dropouts, NaN/Inf bursts, stuck-counter runs, bounded collector stalls,
// duplicated deliveries, clock skew, and whole-tier outages — according to
// a FaultSchedule, the fault-domain mirror of tpcw.Schedule.
//
// Everything is a pure function of (schedule, seed, sample stream): the
// per-sample coin flips come from a counter-keyed hash, not a shared RNG,
// so a chaos run replays byte-for-byte no matter how many goroutines feed
// the pipeline or how their ingests interleave. That is what lets the
// chaos-replay determinism golden compare a Workers=1 and a Workers=8 run
// of the same fault storm.
//
// The package deliberately sits above the pipeline's ingest boundary and
// below the simulator: it corrupts what the monitor *sees*, never what the
// testbed *does*, exactly like a flaky PMU driver or a lossy metrics
// transport would (BayesPerf, arXiv:2102.10837, documents both failure
// modes in real perf-counter pipelines).
package chaos

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"hpcap/internal/core"
	"hpcap/internal/server"
)

// Kind names a fault type.
type Kind int

// The fault taxonomy. Every kind models a failure documented for deployed
// counter pipelines; see the package comment and DESIGN.md §10.
const (
	// KindDrop loses each sample independently with probability P.
	KindDrop Kind = iota + 1
	// KindNaN corrupts each sample with probability P: the first metric
	// component becomes NaN (a wrapped or torn counter read).
	KindNaN
	// KindStuck freezes the tier: every sample repeats the last clean
	// vector seen before the fault (a counter that stopped counting).
	KindStuck
	// KindStall holds samples back in delivery order, releasing them in a
	// burst once N are queued or the fault ends — bounded-latency
	// collector stalls that turn into late, out-of-window deliveries.
	KindStall
	// KindDup delivers each sample twice with probability P.
	KindDup
	// KindSkew shifts sample timestamps forward by P seconds (clock skew
	// between the collector host and the aggregation point).
	KindSkew
	// KindOutage loses every sample of the tier — a whole-tier telemetry
	// outage, the fault the admission valve's fail-safe posture answers.
	KindOutage
	// KindPartition is a wire-level fault: the agent→server link is down
	// and every frame in the window is lost. Applied by LinkInjector to
	// wire frames; the sample Injector ignores it.
	KindPartition
	// KindReorder is a wire-level fault: with probability P a frame is
	// held back and delivered after its successor (adjacent swap), the
	// classic reordering a retransmitting transport produces.
	KindReorder
	// KindDupFrame is a wire-level fault: with probability P a frame is
	// delivered twice (a retransmit whose original was not lost).
	KindDupFrame
)

// kindNames maps kinds to their schedule-text spelling, in declaration
// order (index Kind-1).
var kindNames = [...]string{"drop", "nan", "stuck", "stall", "dup", "skew", "outage",
	"partition", "reorder", "dupframe"}

// wireKind reports whether the kind acts on wire frames (LinkInjector)
// rather than on samples (Injector).
func wireKind(k Kind) bool {
	return k == KindPartition || k == KindReorder || k == KindDupFrame
}

// String returns the kind's schedule-text spelling.
func (k Kind) String() string {
	if k >= 1 && int(k) <= len(kindNames) {
		return kindNames[k-1]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// parseKind resolves a schedule-text kind name.
func parseKind(s string) (Kind, error) {
	for i, name := range kindNames {
		if s == name {
			return Kind(i + 1), nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown fault kind %q", s)
}

// AllTiers is the Fault.Tier value that targets every tier at once.
const AllTiers = server.TierID(-1)

// Fault is one scripted fault: for Duration seconds starting at virtual
// time Start, samples of Tier (or all tiers) suffer Kind. P and N are the
// kind-specific parameters (see the Kind docs); kinds that ignore them
// leave them zero.
type Fault struct {
	Kind     Kind
	Tier     server.TierID // AllTiers targets every tier
	Start    float64       // virtual seconds
	Duration float64
	P        float64 // probability (drop, nan, dup) or skew seconds (skew)
	N        int     // stall release depth (stall)
}

// active reports whether the fault applies to a sample of tier at time t.
// The window is half-open, [Start, Start+Duration), matching how a phase
// of tpcw.Schedule owns its seconds.
func (f Fault) active(t float64, tier server.TierID) bool {
	return t >= f.Start && t < f.Start+f.Duration &&
		(f.Tier == AllTiers || f.Tier == tier)
}

// String renders the fault in canonical schedule text. Parse(f.String())
// reproduces f exactly; the fuzz round-trip test pins this.
func (f Fault) String() string {
	return fmt.Sprintf("%s tier=%s at=%s for=%s p=%s n=%d",
		f.Kind, tierName(f.Tier), fmtFloat(f.Start), fmtFloat(f.Duration), fmtFloat(f.P), f.N)
}

// fmtFloat renders a float in the shortest form that parses back to the
// identical value (strconv round-trip guarantee).
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// tierName spells a fault target for schedule text.
func tierName(t server.TierID) string {
	switch t {
	case AllTiers:
		return "all"
	case server.TierApp:
		return "app"
	case server.TierDB:
		return "db"
	default:
		return strconv.Itoa(int(t))
	}
}

// parseTier resolves a schedule-text tier name.
func parseTier(s string) (server.TierID, error) {
	switch s {
	case "all", "*":
		return AllTiers, nil
	case "app":
		return server.TierApp, nil
	case "db":
		return server.TierDB, nil
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 || n >= int(server.NumTiers) {
		return 0, fmt.Errorf("chaos: unknown tier %q", s)
	}
	return server.TierID(n), nil
}

// Schedule is a scripted fault program: a set of Faults applied to a
// sample stream by an Injector. Unlike tpcw.Schedule's phases, faults may
// overlap — a tier outage during a clock-skew window is a legal (and
// nasty) combination.
type Schedule struct {
	Faults []Fault
}

// DefaultFault returns the canonical starting point for a fault of the
// given kind: every-tier targeting and the kind-specific parameter
// defaults (P=1 for the probabilistic kinds, N=5 for stall). Start and
// Duration stay zero — a schedule author always supplies them. Parse
// builds every clause from this.
func DefaultFault(kind Kind) Fault {
	f := Fault{Kind: kind, Tier: AllTiers}
	switch kind {
	case KindDrop, KindNaN, KindDup, KindReorder, KindDupFrame:
		f.P = 1
	case KindStall:
		f.N = 5
	}
	return f
}

// Validate checks every fault for well-formedness — known kind, known
// tier, finite non-negative start, positive finite duration, parameters
// in range (P is a probability for drop/nan/dup/reorder/dupframe, a
// finite skew for skew), non-negative N, and every-tier targeting for
// the wire-level kinds (a frame carries all tiers at once) — returning
// one ErrBadConfig-wrapped error per violation. It never panics.
func (s Schedule) Validate() []error {
	var errs []error
	bad := func(i int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("chaos: %w: fault %d: %s",
			core.ErrBadConfig, i, fmt.Sprintf(format, args...)))
	}
	for i, f := range s.Faults {
		if f.Kind < 1 || int(f.Kind) > len(kindNames) {
			bad(i, "unknown kind %d", int(f.Kind))
			continue
		}
		if f.Tier != AllTiers && (f.Tier < 0 || f.Tier >= server.NumTiers) {
			bad(i, "tier %d out of range", int(f.Tier))
		}
		if wireKind(f.Kind) && f.Tier != AllTiers {
			bad(i, "%s is a wire-level fault; it targets the whole link (tier=all)", f.Kind)
		}
		if math.IsNaN(f.Start) || math.IsInf(f.Start, 0) || f.Start < 0 {
			bad(i, "bad start %v", f.Start)
		}
		if math.IsNaN(f.Duration) || math.IsInf(f.Duration, 0) || f.Duration <= 0 {
			bad(i, "bad duration %v", f.Duration)
		}
		switch f.Kind {
		case KindDrop, KindNaN, KindDup, KindReorder, KindDupFrame:
			if math.IsNaN(f.P) || f.P < 0 || f.P > 1 {
				bad(i, "probability %v outside [0,1]", f.P)
			}
		case KindSkew:
			if math.IsNaN(f.P) || math.IsInf(f.P, 0) {
				bad(i, "bad skew %v", f.P)
			}
		default:
			if math.IsNaN(f.P) || math.IsInf(f.P, 0) {
				bad(i, "bad parameter %v", f.P)
			}
		}
		if f.N < 0 {
			bad(i, "negative n %d", f.N)
		}
	}
	return errs
}

// Duration returns the time the last fault ends (0 for an empty schedule).
func (s Schedule) Duration() float64 {
	var end float64
	for _, f := range s.Faults {
		if e := f.Start + f.Duration; e > end {
			end = e
		}
	}
	return end
}

// String renders the schedule in canonical text: one fault per clause,
// sorted by (start, kind, tier), joined by "; ". Parse round-trips it.
func (s Schedule) String() string {
	faults := append([]Fault(nil), s.Faults...)
	sort.SliceStable(faults, func(i, j int) bool {
		if faults[i].Start != faults[j].Start {
			return faults[i].Start < faults[j].Start
		}
		if faults[i].Kind != faults[j].Kind {
			return faults[i].Kind < faults[j].Kind
		}
		return faults[i].Tier < faults[j].Tier
	})
	parts := make([]string, len(faults))
	for i, f := range faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, "; ")
}

// Parse reads a fault schedule from text. Clauses are separated by ";" or
// newlines; each clause is a fault kind followed by key=value fields:
//
//	drop tier=app at=120 for=60 p=0.25
//	outage at=300 for=30
//	stall tier=db at=500 for=10 n=6
//
// Fields: tier (app|db|all, default all), at (start, seconds, default 0),
// for (duration, seconds, required), p (probability or skew seconds,
// default 1 for drop/nan/dup, 0 otherwise), n (stall depth, default 5 for
// stall, 0 otherwise). The result is Validated; Parse never panics on
// garbage (the schedule fuzz test pins this).
func Parse(text string) (Schedule, error) {
	var s Schedule
	for _, clause := range strings.FieldsFunc(text, func(r rune) bool { return r == ';' || r == '\n' }) {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		kind, err := parseKind(fields[0])
		if err != nil {
			return Schedule{}, err
		}
		f := DefaultFault(kind)
		f.Duration = math.NaN() // required field: a clause must set for=

		for _, field := range fields[1:] {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return Schedule{}, fmt.Errorf("chaos: bad field %q in %q", field, clause)
			}
			switch key {
			case "tier":
				if f.Tier, err = parseTier(val); err != nil {
					return Schedule{}, err
				}
			case "at":
				if f.Start, err = strconv.ParseFloat(val, 64); err != nil {
					return Schedule{}, fmt.Errorf("chaos: bad at=%q: %v", val, err)
				}
			case "for":
				if f.Duration, err = strconv.ParseFloat(val, 64); err != nil {
					return Schedule{}, fmt.Errorf("chaos: bad for=%q: %v", val, err)
				}
			case "p":
				if f.P, err = strconv.ParseFloat(val, 64); err != nil {
					return Schedule{}, fmt.Errorf("chaos: bad p=%q: %v", val, err)
				}
			case "n":
				if f.N, err = strconv.Atoi(val); err != nil {
					return Schedule{}, fmt.Errorf("chaos: bad n=%q: %v", val, err)
				}
			default:
				return Schedule{}, fmt.Errorf("chaos: unknown field %q in %q", key, clause)
			}
		}
		if math.IsNaN(f.Duration) {
			return Schedule{}, fmt.Errorf("chaos: clause %q missing for=<seconds>", strings.TrimSpace(clause))
		}
		s.Faults = append(s.Faults, f)
	}
	if errs := s.Validate(); len(errs) > 0 {
		return Schedule{}, errors.Join(errs...)
	}
	return s, nil
}
