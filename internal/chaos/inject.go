package chaos

import (
	"math"
	"sort"
	"sync"

	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// Stats counts what an Injector did to the stream, by fault kind. Totals
// are deterministic for a given (schedule, seed, per-site stream): the
// per-sample coin flips are keyed by site, tier, and per-tier ordinal, so
// concurrent feeding changes nothing.
type Stats struct {
	Offered uint64 // samples presented to Apply
	Emitted uint64 // samples returned for ingestion (dups add, drops subtract)

	Dropped    uint64 // lost to KindDrop
	Corrupted  uint64 // NaN-poisoned by KindNaN
	Frozen     uint64 // rewritten to the last clean vector by KindStuck
	Stalled    uint64 // held back at least once by KindStall
	Duplicated uint64 // extra copies emitted by KindDup
	Skewed     uint64 // timestamps shifted by KindSkew
	Outaged    uint64 // lost to KindOutage
}

// Injected sums the per-kind fault counts — how many times the injector
// touched the stream at all.
func (s Stats) Injected() uint64 {
	return s.Dropped + s.Corrupted + s.Frozen + s.Stalled + s.Duplicated + s.Skewed + s.Outaged
}

// tierState is the injector's per-(site, tier) memory.
type tierState struct {
	ord  uint64         // samples seen, the hash counter
	last []float64      // last clean vector (KindStuck replays it)
	held []serve.Sample // samples queued by KindStall, delivery order
}

// siteState is the injector's per-site memory.
type siteState struct {
	key   uint64 // hash of the site name, mixed into every coin flip
	tiers [server.NumTiers]*tierState
}

// Injector applies a FaultSchedule to a serve.Sample stream. Feed every
// sample through Apply and ingest whatever it returns; call Drain at end
// of stream to flush samples still held by an active stall. Safe for
// concurrent use by multiple sites; samples of one site must be applied
// in stream order (the same contract serve.Pipeline.Ingest has).
type Injector struct {
	sched Schedule
	seed  int64

	mu    sync.Mutex
	sites map[string]*siteState
	stats Stats
}

// NewInjector builds an injector for a validated schedule. The seed
// selects the coin-flip universe: same schedule + same seed + same stream
// ⇒ identical faults, byte for byte.
func NewInjector(sched Schedule, seed int64) *Injector {
	return &Injector{sched: sched, seed: seed, sites: make(map[string]*siteState)}
}

// Schedule returns the injector's fault program.
func (in *Injector) Schedule() Schedule { return in.sched }

// Stats returns a snapshot of the fault counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// site returns the per-site state, creating it on first use.
func (in *Injector) site(name string) *siteState {
	st, ok := in.sites[name]
	if !ok {
		st = &siteState{key: hashString(name)}
		for tier := range st.tiers {
			st.tiers[tier] = &tierState{}
		}
		in.sites[name] = st
	}
	return st
}

// Apply runs one sample through the schedule and returns the samples to
// actually deliver: usually the sample itself (possibly corrupted, frozen,
// or skewed), preceded by any stalled backlog due for release, duplicated
// or dropped as the active faults dictate. The input sample's Values slice
// is never mutated; corruption copies first.
func (in *Injector) Apply(s serve.Sample) []serve.Sample {
	if s.Tier < 0 || s.Tier >= server.NumTiers {
		// Malformed tier: pass through untouched, the pipeline's shape
		// validation owns it.
		in.mu.Lock()
		in.stats.Offered++
		in.stats.Emitted++
		in.mu.Unlock()
		return []serve.Sample{s}
	}

	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Offered++
	site := in.site(s.Site)
	ts := site.tiers[s.Tier]
	ord := ts.ord
	ts.ord++

	var out []serve.Sample
	stalled := false
	for i, f := range in.sched.Faults {
		// Wire-level kinds act on frames (LinkInjector), not samples.
		if wireKind(f.Kind) || !f.active(s.Time, s.Tier) {
			continue
		}
		u := coin(in.seed, site.key, uint64(s.Tier), ord, uint64(i))
		switch f.Kind {
		case KindOutage:
			in.stats.Outaged++
			return in.release(ts, out)
		case KindDrop:
			if u < f.P {
				in.stats.Dropped++
				return in.release(ts, out)
			}
		case KindStuck:
			if ts.last != nil {
				s.Values = append([]float64(nil), ts.last...)
				in.stats.Frozen++
			}
		case KindNaN:
			if u < f.P {
				s.Values = append([]float64(nil), s.Values...)
				s.Values[0] = math.NaN()
				in.stats.Corrupted++
			}
		case KindSkew:
			s.Time += f.P
			in.stats.Skewed++
		case KindStall:
			stalled = true
			ts.held = append(ts.held, s)
			in.stats.Stalled++
			if len(ts.held) >= f.N {
				// Bounded latency: the backlog is full, flush it.
				out = in.release(ts, out)
			}
		case KindDup:
			if u < f.P {
				out = append(out, s)
				in.stats.Duplicated++
				in.stats.Emitted++
			}
		}
	}
	if stalled {
		return out
	}
	// A clean (or merely perturbed) sample releases any stalled backlog
	// whose fault window has lapsed, then follows it in delivery order.
	out = in.release(ts, out)
	if finiteValues(s.Values) {
		ts.last = append(ts.last[:0], s.Values...)
	}
	out = append(out, s)
	in.stats.Emitted++
	return out
}

// release appends the tier's held samples to out in arrival order and
// clears the backlog. Callers hold in.mu.
func (in *Injector) release(ts *tierState, out []serve.Sample) []serve.Sample {
	if len(ts.held) == 0 {
		return out
	}
	out = append(out, ts.held...)
	in.stats.Emitted += uint64(len(ts.held))
	ts.held = ts.held[:0]
	return out
}

// Drain flushes every site's stalled backlog (end of stream), ordered by
// site name then tier for deterministic delivery.
func (in *Injector) Drain() []serve.Sample {
	in.mu.Lock()
	defer in.mu.Unlock()
	names := make([]string, 0, len(in.sites))
	for name := range in.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []serve.Sample
	for _, name := range names {
		for _, ts := range in.sites[name].tiers {
			out = in.release(ts, out)
		}
	}
	return out
}

// finiteValues reports whether every component is finite — corrupted
// vectors must not poison the stuck-replay buffer.
func finiteValues(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// hashString is FNV-1a over the site name.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// coin derives a uniform [0,1) variate from the run seed and the sample's
// coordinates — a stateless splitmix64 chain, so the flip for a given
// (site, tier, ordinal, fault) never depends on goroutine interleaving.
func coin(seed int64, site, tier, ord, fault uint64) float64 {
	h := uint64(seed)
	for _, v := range [...]uint64{site, tier, ord, fault} {
		h = splitmix64(h ^ v)
	}
	return float64(h>>11) / (1 << 53)
}

// splitmix64 is the finalizer from Steele et al.'s SplittableRandom.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d4490d9b23e36d
	x ^= x >> 31
	return x
}
