package chaos

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

func mustParse(t *testing.T, text string) Schedule {
	t.Helper()
	s, err := Parse(text)
	if err != nil {
		t.Fatalf("Parse(%q): %v", text, err)
	}
	return s
}

func TestScheduleRoundTrip(t *testing.T) {
	texts := []string{
		"drop tier=app at=120 for=60 p=0.25",
		"outage at=300 for=30",
		"stall tier=db at=500 for=10 n=6",
		"nan tier=all at=0 for=1 p=1; skew tier=app at=0.5 for=2.25 p=-3.5",
		"dup at=7 for=3 p=0.125\nstuck tier=db at=7 for=3",
		"",
	}
	for _, text := range texts {
		s := mustParse(t, text)
		canon := s.String()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q failed: %v", text, canon, err)
		}
		if got := back.String(); got != canon {
			t.Errorf("round trip of %q: %q -> %q", text, canon, got)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	s := mustParse(t, "drop for=30; stall for=10; outage for=5")
	if f := s.Faults[0]; f.Tier != AllTiers || f.Start != 0 || f.P != 1 {
		t.Errorf("drop defaults: %+v, want tier=all at=0 p=1", f)
	}
	if f := s.Faults[1]; f.N != 5 {
		t.Errorf("stall default n=%d, want 5", f.N)
	}
	if f := s.Faults[2]; f.P != 0 || f.N != 0 {
		t.Errorf("outage defaults: %+v, want p=0 n=0", f)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"explode for=10",         // unknown kind
		"drop tier=cache for=10", // unknown tier
		"drop at=10",             // missing for=
		"drop for=-5",            // negative duration
		"drop for=10 p=1.5",      // probability out of range
		"drop for=10 p=NaN",      // NaN probability
		"drop for=10 volume=11",  // unknown field
		"drop for=10 p",          // field without value
		"stall for=10 n=-1",      // negative depth
		"skew for=10 p=Inf",      // infinite skew
		"drop at=-1 for=10",      // negative start
		"drop at=Inf for=10",     // infinite start
		"drop for=10 n=zz",       // unparsable int
		"drop tier=9 for=10",     // numeric tier out of range
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) accepted garbage", text)
		}
	}
}

func TestScheduleDuration(t *testing.T) {
	s := mustParse(t, "drop at=10 for=5; outage at=100 for=30; nan for=1")
	if got := s.Duration(); got != 130 {
		t.Errorf("Duration() = %g, want 130", got)
	}
	if got := (Schedule{}).Duration(); got != 0 {
		t.Errorf("empty Duration() = %g, want 0", got)
	}
}

// sampleAt builds a clean 2-component sample for a site and tier.
func sampleAt(site string, tier server.TierID, t float64) serve.Sample {
	return serve.Sample{Site: site, Tier: tier, Time: t, Values: []float64{t, 100 - t}}
}

func TestInjectorDrop(t *testing.T) {
	in := NewInjector(mustParse(t, "drop tier=app at=0 for=100 p=1"), 1)
	for i := 0; i < 10; i++ {
		if out := in.Apply(sampleAt("s", server.TierApp, float64(i))); len(out) != 0 {
			t.Fatalf("drop p=1 emitted %d samples at t=%d", len(out), i)
		}
	}
	if out := in.Apply(sampleAt("s", server.TierDB, 0)); len(out) != 1 {
		t.Fatalf("drop on app dropped a db sample")
	}
	st := in.Stats()
	if st.Dropped != 10 || st.Offered != 11 || st.Emitted != 1 {
		t.Errorf("stats %+v, want 10 dropped of 11 offered, 1 emitted", st)
	}
}

func TestInjectorNaNCopiesValues(t *testing.T) {
	in := NewInjector(mustParse(t, "nan at=0 for=100 p=1"), 1)
	s := sampleAt("s", server.TierApp, 1)
	orig := append([]float64(nil), s.Values...)
	out := in.Apply(s)
	if len(out) != 1 || !math.IsNaN(out[0].Values[0]) {
		t.Fatalf("nan p=1 emitted %v, want first component NaN", out)
	}
	for i, v := range s.Values {
		if v != orig[i] {
			t.Fatalf("input Values mutated: %v != %v", s.Values, orig)
		}
	}
}

func TestInjectorStuckReplaysLastClean(t *testing.T) {
	in := NewInjector(mustParse(t, "stuck tier=db at=10 for=20"), 1)
	clean := in.Apply(sampleAt("s", server.TierDB, 5))
	if len(clean) != 1 {
		t.Fatal("pre-fault sample did not pass through")
	}
	want := clean[0].Values
	for _, ts := range []float64{10, 15, 29} {
		out := in.Apply(sampleAt("s", server.TierDB, ts))
		if len(out) != 1 {
			t.Fatalf("stuck dropped the sample at t=%g", ts)
		}
		for i, v := range out[0].Values {
			if v != want[i] {
				t.Fatalf("t=%g values %v, want frozen %v", ts, out[0].Values, want)
			}
		}
		if out[0].Time != ts {
			t.Errorf("stuck rewrote the timestamp: %g", out[0].Time)
		}
	}
	if got := in.Stats().Frozen; got != 3 {
		t.Errorf("Frozen = %d, want 3", got)
	}
}

func TestInjectorStallBoundedLatency(t *testing.T) {
	in := NewInjector(mustParse(t, "stall tier=app at=0 for=100 n=3"), 1)
	var emitted []serve.Sample
	for i := 0; i < 7; i++ {
		emitted = append(emitted, in.Apply(sampleAt("s", server.TierApp, float64(i)))...)
	}
	// n=3: samples release in bursts of three; 7 fed -> 6 released.
	if len(emitted) != 6 {
		t.Fatalf("stall n=3 released %d of 7, want 6", len(emitted))
	}
	for i, s := range emitted {
		if s.Time != float64(i) {
			t.Fatalf("stall reordered: position %d has t=%g", i, s.Time)
		}
	}
	rest := in.Drain()
	if len(rest) != 1 || rest[0].Time != 6 {
		t.Fatalf("Drain released %v, want the one held sample t=6", rest)
	}
}

func TestInjectorDupAndSkew(t *testing.T) {
	// Faults apply in schedule order: the skew shifts the sample before
	// the dup copies it, so both emissions carry the skewed timestamp.
	in := NewInjector(mustParse(t, "skew at=0 for=10 p=2.5; dup at=0 for=10 p=1"), 1)
	out := in.Apply(sampleAt("s", server.TierApp, 1))
	if len(out) != 2 {
		t.Fatalf("dup p=1 emitted %d samples, want 2", len(out))
	}
	for _, s := range out {
		if s.Time != 3.5 {
			t.Errorf("skew p=2.5 gave t=%g, want 3.5", s.Time)
		}
	}
}

func TestInjectorOutageBeatsEverything(t *testing.T) {
	in := NewInjector(mustParse(t, "outage at=0 for=10; dup at=0 for=10 p=1"), 1)
	if out := in.Apply(sampleAt("s", server.TierApp, 1)); len(out) != 0 {
		t.Fatalf("outage emitted %d samples", len(out))
	}
}

func TestInjectorMalformedTierPassesThrough(t *testing.T) {
	in := NewInjector(mustParse(t, "drop at=0 for=100 p=1"), 1)
	s := serve.Sample{Site: "s", Tier: server.TierID(9), Time: 1, Values: []float64{1}}
	if out := in.Apply(s); len(out) != 1 || out[0].Tier != server.TierID(9) {
		t.Fatalf("malformed tier not passed through: %v", out)
	}
}

// TestInjectorDeterministicAcrossInterleavings is the injector's core
// guarantee: per-site fault outcomes depend only on (schedule, seed, site,
// tier, ordinal), so feeding eight sites from eight goroutines produces
// exactly the per-site streams a sequential feed does.
func TestInjectorDeterministicAcrossInterleavings(t *testing.T) {
	const (
		sites   = 8
		seconds = 200
	)
	sched := mustParse(t,
		"drop tier=app at=20 for=40 p=0.3; nan tier=db at=50 for=30 p=0.5; "+
			"stuck tier=app at=90 for=20; stall tier=db at=110 for=25 n=4; "+
			"dup at=140 for=20 p=0.4; skew tier=app at=160 for=10 p=0.75; outage at=180 for=10")

	render := func(in *Injector, name string, feed func(func())) string {
		var mu sync.Mutex
		logs := make(map[string]*strings.Builder)
		run := func(site string) {
			var b strings.Builder
			for i := 0; i < seconds; i++ {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					for _, out := range in.Apply(sampleAt(site, tier, float64(i))) {
						fmt.Fprintf(&b, "%s %d %g %v\n", out.Site, out.Tier, out.Time, out.Values)
					}
				}
			}
			mu.Lock()
			logs[site] = &b
			mu.Unlock()
		}
		_ = name
		var wg sync.WaitGroup
		for i := 0; i < sites; i++ {
			site := fmt.Sprintf("site-%d", i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				feed(func() { run(site) })
			}()
		}
		wg.Wait()
		var b strings.Builder
		for i := 0; i < sites; i++ {
			b.WriteString(logs[fmt.Sprintf("site-%d", i)].String())
		}
		return b.String()
	}

	var seqGate sync.Mutex
	seq := render(NewInjector(sched, 42), "seq", func(f func()) {
		seqGate.Lock()
		defer seqGate.Unlock()
		f()
	})
	par := render(NewInjector(sched, 42), "par", func(f func()) { f() })
	if seq != par {
		t.Fatal("concurrent feed diverged from sequential feed")
	}
	other := render(NewInjector(sched, 43), "other", func(f func()) { f() })
	if other == seq {
		t.Fatal("different seeds produced identical fault streams")
	}
}

func TestValidateRejectsBadFaults(t *testing.T) {
	bad := []Fault{
		{Kind: 0, Duration: 1},
		{Kind: KindDrop, Tier: server.TierID(5), Duration: 1},
		{Kind: KindDrop, Start: math.NaN(), Duration: 1},
		{Kind: KindDrop, Duration: 0},
		{Kind: KindDrop, Duration: math.Inf(1)},
		{Kind: KindNaN, Duration: 1, P: 2},
		{Kind: KindSkew, Duration: 1, P: math.Inf(1)},
		{Kind: KindStall, Duration: 1, N: -1},
		{Kind: KindStuck, Duration: 1, P: math.NaN()},
	}
	for i, f := range bad {
		errs := (Schedule{Faults: []Fault{f}}).Validate()
		if len(errs) == 0 {
			t.Errorf("case %d: Validate accepted %+v", i, f)
			continue
		}
		for _, err := range errs {
			if !errors.Is(err, core.ErrBadConfig) {
				t.Errorf("case %d: error %v does not wrap ErrBadConfig", i, err)
			}
		}
	}
}

// timeCollector reports the snapshot time as its single metric, making
// staleness visible in the vector itself.
type timeCollector struct{ tier server.TierID }

func (c timeCollector) Tier() server.TierID { return c.tier }
func (c timeCollector) Names() []string     { return []string{"t"} }
func (c timeCollector) Collect(s server.Snapshot, dt float64) []float64 {
	return []float64{s.Time}
}

func TestFlakyCollectorFailsByTierAndWindow(t *testing.T) {
	sched := mustParse(t, "outage tier=db at=10 for=5; stall tier=app at=20 for=5 n=2")
	db := NewFlakyCollector(timeCollector{server.TierDB}, sched)
	if _, err := db.TryCollect(server.Snapshot{Time: 12}, 1); err == nil {
		t.Error("db read succeeded inside the outage window")
	}
	if v, err := db.TryCollect(server.Snapshot{Time: 16}, 1); err != nil || v[0] != 16 {
		t.Errorf("db read after the outage: v=%v err=%v", v, err)
	}
	app := NewFlakyCollector(timeCollector{server.TierApp}, sched)
	if _, err := app.TryCollect(server.Snapshot{Time: 12}, 1); err != nil {
		t.Errorf("db outage leaked onto the app collector: %v", err)
	}
	if _, err := app.TryCollect(server.Snapshot{Time: 21}, 1); err == nil {
		t.Error("app read succeeded inside the stall window")
	}
	if got := db.Attempts(); got != 2 {
		t.Errorf("db Attempts = %d, want 2", got)
	}
}

// TestFlakyThroughRetry wires the two halves together the way the CLIs
// do: inside a fault window every retry fails deterministically (same
// snapshot time), so the retrier serves the last pre-fault vector; once
// the window lapses, reads recover without intervention.
func TestFlakyThroughRetry(t *testing.T) {
	sched := mustParse(t, "outage tier=db at=10 for=5")
	r := metrics.NewRetryCollector(NewFlakyCollector(timeCollector{server.TierDB}, sched), 2)
	if got := r.Collect(server.Snapshot{Time: 5}, 1); got[0] != 5 {
		t.Fatalf("pre-fault read = %v", got)
	}
	if got := r.Collect(server.Snapshot{Time: 12}, 1); got[0] != 5 {
		t.Fatalf("in-fault read = %v, want the stale t=5 vector", got)
	}
	if r.Retries() != 2 || r.Failures() != 1 {
		t.Errorf("retries=%d failures=%d, want 2 and 1", r.Retries(), r.Failures())
	}
	if got := r.Collect(server.Snapshot{Time: 16}, 1); got[0] != 16 {
		t.Fatalf("post-fault read = %v, want fresh t=16", got)
	}
}

// FuzzFaultScheduleParse pins two properties: Parse never panics on
// arbitrary text, and any schedule it accepts round-trips through its
// canonical String form byte-for-byte.
func FuzzFaultScheduleParse(f *testing.F) {
	f.Add("drop tier=app at=120 for=60 p=0.25")
	f.Add("outage at=300 for=30; stall tier=db at=500 for=10 n=6")
	f.Add("nan for=1\nskew tier=all at=1e9 for=0.001 p=-17")
	f.Add("dup p=0.5")
	f.Add(";;;")
	f.Add("drop tier== for=1")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		canon := s.String()
		back, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, text, err)
		}
		if got := back.String(); got != canon {
			t.Fatalf("canonical form not a fixed point: %q -> %q", canon, got)
		}
	})
}
