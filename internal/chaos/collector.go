package chaos

import (
	"fmt"

	"hpcap/internal/metrics"
	"hpcap/internal/server"
)

// FlakyCollector wraps a metrics.Collector with deterministic read
// failures: while a KindStall or KindOutage fault covers the collector's
// tier, TryCollect returns an error instead of a vector. It implements
// metrics.FallibleCollector, so wrapping it in metrics.NewRetryCollector
// exercises the bounded retry-with-backoff path the serving stack uses
// around flaky PMU reads.
//
// Failure is a pure function of the schedule and the snapshot time:
// retries against the same stall either all fail (the fault window still
// covers the snapshot time) or deterministically succeed once it has
// lapsed.
type FlakyCollector struct {
	metrics.Collector
	sched    Schedule
	attempts uint64
}

// NewFlakyCollector wraps c so reads fail while sched has a stall or
// outage active on c's tier.
func NewFlakyCollector(c metrics.Collector, sched Schedule) *FlakyCollector {
	return &FlakyCollector{Collector: c, sched: sched}
}

// TryCollect reads the underlying collector, failing deterministically
// while a stall or outage fault covers the snapshot time.
func (f *FlakyCollector) TryCollect(s server.Snapshot, dt float64) ([]float64, error) {
	f.attempts++
	for _, fault := range f.sched.Faults {
		if fault.Kind != KindStall && fault.Kind != KindOutage {
			continue
		}
		if fault.active(s.Time, f.Tier()) {
			return nil, fmt.Errorf("chaos: %s read failed: %s fault at t=%g", f.Tier(), fault.Kind, s.Time)
		}
	}
	return f.Collector.Collect(s, dt), nil
}

// Attempts returns how many reads (including failures) were tried.
func (f *FlakyCollector) Attempts() uint64 { return f.attempts }
