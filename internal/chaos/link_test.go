package chaos

import (
	"reflect"
	"testing"

	"hpcap/internal/serve"
	"hpcap/internal/wire"
)

// lf makes a one-sample frame whose fault time is t.
func lf(site string, seq uint64, t float64) wire.Frame {
	return wire.Frame{Site: site, Seq: seq, Samples: []wire.Sample{{Time: t}}}
}

// seqs flattens emitted frames to their sequence numbers.
func seqs(frames []wire.Frame) []uint64 {
	out := make([]uint64, len(frames))
	for i, f := range frames {
		out[i] = f.Seq
	}
	return out
}

func TestLinkPartitionDropsWindow(t *testing.T) {
	sched, err := Parse("partition at=100 for=50")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinkInjector(sched, 1)
	var got []uint64
	times := []float64{0, 99, 100, 120, 149, 150, 200}
	for seq, tm := range times {
		got = append(got, seqs(l.Apply(lf("a", uint64(seq), tm)))...)
	}
	want := []uint64{0, 1, 5, 6} // frames at 100, 120, 149 lost
	if !reflect.DeepEqual(got, want) {
		t.Errorf("emitted seqs %v, want %v", got, want)
	}
	st := l.Stats()
	if st.Partitioned != 3 || st.Offered != 7 || st.Emitted != 4 {
		t.Errorf("stats %+v: want 3 partitioned of 7 offered", st)
	}
}

func TestLinkReorderAdjacentSwap(t *testing.T) {
	sched, err := Parse("reorder at=0 for=1000 p=1")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinkInjector(sched, 1)
	var got []uint64
	for seq := uint64(0); seq < 5; seq++ {
		got = append(got, seqs(l.Apply(lf("a", seq, float64(seq)*30)))...)
	}
	got = append(got, seqs(l.Drain())...)
	// p=1 holds every frame that finds nothing held: pairs swap, and the
	// final odd frame is released by Drain.
	want := []uint64{1, 0, 3, 2, 4}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("emitted seqs %v, want %v", got, want)
	}
	if st := l.Stats(); st.Reordered != 3 || st.Emitted != 5 {
		t.Errorf("stats %+v: want 3 reordered, 5 emitted", st)
	}
}

func TestLinkDupFrameEmitsTwice(t *testing.T) {
	sched, err := Parse("dupframe at=0 for=1000 p=1")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinkInjector(sched, 1)
	got := seqs(l.Apply(lf("a", 7, 10)))
	if !reflect.DeepEqual(got, []uint64{7, 7}) {
		t.Errorf("emitted %v, want the frame twice", got)
	}
	if st := l.Stats(); st.DupFrames != 1 || st.Emitted != 2 {
		t.Errorf("stats %+v: want 1 dup, 2 emitted", st)
	}
}

// TestLinkPartitionHoldsHeldFrame pins the interaction: a reorder-held
// frame stays held across a partition window (it was in flight, not
// delivered) and is released by the next delivered frame.
func TestLinkPartitionHoldsHeldFrame(t *testing.T) {
	sched, err := Parse("reorder at=0 for=50 p=1; partition at=50 for=50")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinkInjector(sched, 1)
	var got []uint64
	got = append(got, seqs(l.Apply(lf("a", 0, 10)))...)  // held by reorder
	got = append(got, seqs(l.Apply(lf("a", 1, 60)))...)  // lost to partition
	got = append(got, seqs(l.Apply(lf("a", 2, 110)))...) // delivered, releases 0
	if want := []uint64{2, 0}; !reflect.DeepEqual(got, want) {
		t.Errorf("emitted seqs %v, want %v", got, want)
	}
}

func TestLinkIgnoresSampleKindsAndViceVersa(t *testing.T) {
	// A schedule mixing both layers: the link injector must act only on
	// the wire kinds, the sample injector only on the sample kinds.
	sched, err := Parse("drop at=0 for=1000 p=1; partition at=0 for=1000")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLinkInjector(sched, 1)
	if got := l.Apply(lf("a", 0, 10)); len(got) != 0 {
		t.Errorf("partition ignored by link injector: %v", got)
	}
	if st := l.Stats(); st.Partitioned != 1 {
		t.Errorf("stats %+v: drop fault must not count at the link layer", st)
	}

	inj := NewInjector(sched, 1)
	out := inj.Apply(serve.Sample{Site: "a", Tier: 0, Time: 10, Values: []float64{1, 2, 3}})
	if len(out) != 0 {
		t.Errorf("sample injector emitted %v, want drop (partition must not mask drop)", out)
	}
	if st := inj.Stats(); st.Dropped != 1 || st.Outaged != 0 {
		t.Errorf("stats %+v: partition fault must not count at the sample layer", st)
	}
}

func TestLinkDeterministicReplay(t *testing.T) {
	sched, err := Parse("reorder at=0 for=600 p=0.4; dupframe at=0 for=600 p=0.3; partition at=200 for=60")
	if err != nil {
		t.Fatal(err)
	}
	run := func() ([]uint64, LinkStats) {
		l := NewLinkInjector(sched, 42)
		var got []uint64
		for _, site := range []string{"a", "b"} {
			for seq := uint64(0); seq < 20; seq++ {
				got = append(got, seqs(l.Apply(lf(site, seq, float64(seq)*30)))...)
			}
		}
		got = append(got, seqs(l.Drain())...)
		return got, l.Stats()
	}
	g1, s1 := run()
	g2, s2 := run()
	if !reflect.DeepEqual(g1, g2) || s1 != s2 {
		t.Errorf("same seed diverged: %v vs %v (%+v vs %+v)", g1, g2, s1, s2)
	}
	l3 := NewLinkInjector(sched, 43)
	var g3 []uint64
	for _, site := range []string{"a", "b"} {
		for seq := uint64(0); seq < 20; seq++ {
			g3 = append(g3, seqs(l3.Apply(lf(site, seq, float64(seq)*30)))...)
		}
	}
	g3 = append(g3, seqs(l3.Drain())...)
	if reflect.DeepEqual(g1, g3) {
		t.Error("different seeds produced identical streams; coins are not seed-keyed")
	}
}
