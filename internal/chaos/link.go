package chaos

import (
	"sort"
	"sync"

	"hpcap/internal/wire"
)

// LinkStats counts what a LinkInjector did to the frame stream.
type LinkStats struct {
	Offered uint64 // frames presented to Apply
	Emitted uint64 // frames returned for shipping

	Partitioned uint64 // frames lost to KindPartition
	Reordered   uint64 // frames delivered after their successor (KindReorder)
	DupFrames   uint64 // extra copies emitted by KindDupFrame
}

// Injected sums the per-kind fault counts.
func (s LinkStats) Injected() uint64 {
	return s.Partitioned + s.Reordered + s.DupFrames
}

// linkState is the injector's per-site memory.
type linkState struct {
	key  uint64 // hash of the site name, mixed into every coin flip
	ord  uint64 // frames seen, the hash counter
	held *wire.Frame
}

// LinkInjector applies the wire-level faults of a Schedule — partition,
// reorder, dupframe — to a stream of frames between the agent's framing
// loop and its Sender. The sample-level kinds in the schedule are
// ignored here, exactly as the sample Injector ignores the wire-level
// kinds, so one schedule can script both layers of a storm.
//
// Like Injector, everything is a pure function of (schedule, seed,
// per-site frame stream): coin flips are keyed by site, frame ordinal,
// and fault index, so a chaos run replays byte-for-byte. A site's frames
// must be applied in stream order; a frame's fault time is its first
// sample's timestamp.
type LinkInjector struct {
	sched Schedule
	seed  int64

	mu    sync.Mutex
	sites map[string]*linkState
	stats LinkStats
}

// NewLinkInjector builds a link injector for a validated schedule.
func NewLinkInjector(sched Schedule, seed int64) *LinkInjector {
	return &LinkInjector{sched: sched, seed: seed, sites: make(map[string]*linkState)}
}

// Stats returns a snapshot of the fault counters.
func (l *LinkInjector) Stats() LinkStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// site returns the per-site state, creating it on first use.
func (l *LinkInjector) site(name string) *linkState {
	st, ok := l.sites[name]
	if !ok {
		st = &linkState{key: hashString(name)}
		l.sites[name] = st
	}
	return st
}

// Apply runs one frame through the schedule's wire-level faults and
// returns the frames to actually ship: usually the frame itself,
// possibly preceded by a held predecessor (reorder release), duplicated,
// or dropped entirely. Frames are never mutated.
func (l *LinkInjector) Apply(f wire.Frame) []wire.Frame {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.stats.Offered++
	st := l.site(f.Site)
	ord := st.ord
	st.ord++
	var t float64
	if len(f.Samples) > 0 {
		t = f.Samples[0].Time
	}

	var out []wire.Frame
	dup := false
	for i, fault := range l.sched.Faults {
		if !wireKind(fault.Kind) || !fault.active(t, AllTiers) {
			continue
		}
		u := coin(l.seed, st.key, 0, ord, uint64(i))
		switch fault.Kind {
		case KindPartition:
			// Link down: the frame is lost. A held predecessor stays held —
			// it was in flight on the transport, not yet delivered.
			l.stats.Partitioned++
			return out
		case KindReorder:
			if st.held == nil && u < fault.P {
				// Hold this frame; it ships after its successor.
				hf := f
				st.held = &hf
				l.stats.Reordered++
				return out
			}
		case KindDupFrame:
			if u < fault.P {
				dup = true
			}
		}
	}
	out = append(out, f)
	l.stats.Emitted++
	if dup {
		out = append(out, f)
		l.stats.DupFrames++
		l.stats.Emitted++
	}
	if st.held != nil {
		// The held predecessor follows its successor: the adjacent swap.
		out = append(out, *st.held)
		l.stats.Emitted++
		st.held = nil
	}
	return out
}

// Drain releases every site's held frame (end of stream), ordered by
// site name for deterministic delivery.
func (l *LinkInjector) Drain() []wire.Frame {
	l.mu.Lock()
	defer l.mu.Unlock()
	names := make([]string, 0, len(l.sites))
	for name := range l.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []wire.Frame
	for _, name := range names {
		if st := l.sites[name]; st.held != nil {
			out = append(out, *st.held)
			l.stats.Emitted++
			st.held = nil
		}
	}
	return out
}
