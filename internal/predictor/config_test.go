package predictor

import "testing"

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"negative history bits", Config{HistoryBits: -1}},
		{"history bits above table limit", Config{HistoryBits: 13}},
		{"unknown scheme", Config{Scheme: Scheme(99)}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if errs := tt.cfg.Validate(); len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
		})
	}
}
