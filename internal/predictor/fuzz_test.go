package predictor

import (
	"testing"
)

// FuzzPredictorUpdate drives a predictor with an arbitrary byte-encoded
// stream of Train/Predict/Feedback operations, including malformed GPVs and
// labels. The predictor must never panic, must reject bad inputs with
// errors, and every saturating counter must stay inside ±CounterMax.
func FuzzPredictorUpdate(f *testing.F) {
	f.Add([]byte{0x00, 0x12, 0x34, 0x56}, 3, 2)
	f.Add([]byte{0xff, 0xfe, 0x01, 0x80, 0x7f}, 1, 5)
	f.Add([]byte{0x2a, 0x2b, 0x2c, 0x2d, 0x2e, 0x2f}, 4, 1)
	f.Fuzz(func(t *testing.T, ops []byte, m, h int) {
		m = 1 + abs(m)%4 // 1..4 synopses
		h = 1 + abs(h)%5 // 1..5 history bits
		const counterMax = 16
		p, err := New(m, 2, Config{HistoryBits: h, Delta: 3, CounterMax: counterMax})
		if err != nil {
			t.Fatalf("New(%d, 2, h=%d): %v", m, h, err)
		}
		sess := p.NewSession()
		gpv := make([]int, m)
		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i], int(ops[i+1])
			for j := range gpv {
				// Mostly valid 0/1 votes, occasionally junk the predictor
				// must reject rather than crash on.
				gpv[j] = (arg >> j) & 1
				if op&0x80 != 0 && j == 0 {
					gpv[j] = arg - 128
				}
			}
			overload := arg & 1
			bottleneck := (arg >> 1) & 3 // 0..3: sometimes out of tier range
			switch op % 4 {
			case 0:
				_ = p.Train(gpv, overload, bottleneck)
			case 1:
				_, _, _ = p.Predict(gpv)
			case 2:
				_, _, _ = sess.Predict(gpv)
				sess.Feedback(overload, bottleneck%2)
			default:
				p.Feedback(overload, bottleneck%2)
				if op == 0xff {
					p.ResetHistory()
					sess.ResetHistory()
				}
			}
		}
		// Every reachable Hc must have stayed saturated in range.
		valid := make([]int, m)
		for idx := 0; idx < 1<<m; idx++ {
			for j := range valid {
				valid[j] = (idx >> j) & 1
			}
			for hist := 0; hist < 1<<h; hist++ {
				hc, err := p.Counter(valid, hist)
				if err != nil {
					t.Fatalf("Counter(%v, %d): %v", valid, hist, err)
				}
				if hc < -counterMax || hc > counterMax {
					t.Fatalf("counter Hc[%v][%d] = %d escaped ±%d", valid, hist, hc, counterMax)
				}
			}
		}
	})
}
