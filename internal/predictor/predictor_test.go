package predictor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, m, tiers int, cfg Config) *Predictor {
	t.Helper()
	p, err := New(m, tiers, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, Config{}); err == nil {
		t.Error("m=0 not rejected")
	}
	if _, err := New(17, 2, Config{}); err == nil {
		t.Error("m=17 not rejected")
	}
	if _, err := New(4, 0, Config{}); err == nil {
		t.Error("tiers=0 not rejected")
	}
	if _, err := New(4, 2, Config{HistoryBits: 13}); err == nil {
		t.Error("history=13 not rejected")
	}
}

func TestDefaults(t *testing.T) {
	p := mustNew(t, 4, 2, Config{})
	cfg := p.Config()
	if cfg.HistoryBits != 3 || cfg.Delta != 5 || cfg.Scheme != Optimistic {
		t.Errorf("defaults = %+v, want paper's h=3, δ=5, optimistic", cfg)
	}
}

func TestSchemeString(t *testing.T) {
	if Optimistic.String() != "optimistic" || Pessimistic.String() != "pessimistic" {
		t.Error("scheme names wrong")
	}
	if Scheme(9).String() != "Scheme(9)" {
		t.Error("unknown scheme name wrong")
	}
}

func TestGPVValidation(t *testing.T) {
	p := mustNew(t, 4, 2, Config{})
	if err := p.Train([]int{1, 0}, 1, 0); err == nil {
		t.Error("short GPV not rejected")
	}
	if err := p.Train([]int{1, 0, 2, 0}, 1, 0); err == nil {
		t.Error("non-binary GPV not rejected")
	}
	if err := p.Train([]int{1, 0, 1, 0}, 2, 0); err == nil {
		t.Error("bad label not rejected")
	}
	if err := p.Train([]int{1, 0, 1, 0}, 1, 5); err == nil {
		t.Error("bad bottleneck not rejected")
	}
	if _, _, err := p.Predict([]int{1}); err == nil {
		t.Error("short GPV in Predict not rejected")
	}
}

func TestLearnsConsistentPattern(t *testing.T) {
	// Synopsis pattern [1,0,1,0] always means overload with tier 1 as
	// bottleneck; [0,0,0,0] always means underload. After training, the
	// predictor must reproduce both.
	p := mustNew(t, 4, 2, Config{})
	for i := 0; i < 50; i++ {
		if err := p.Train([]int{1, 0, 1, 0}, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{0, 0, 0, 0}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	p.ResetHistory()
	over, bott, err := p.Predict([]int{1, 0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if over != 1 {
		t.Error("trained overload pattern predicted underload")
	}
	if bott != 1 {
		t.Errorf("bottleneck = %d, want 1", bott)
	}
	over, bott, err = p.Predict([]int{0, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if over != 0 {
		t.Error("trained underload pattern predicted overload")
	}
	if bott != -1 {
		t.Errorf("bottleneck on underload = %d, want -1 (not invoked)", bott)
	}
}

func TestMasksInaccurateSynopses(t *testing.T) {
	// Bit 3 flips randomly (an inaccurate synopsis); bits 0-2 carry the
	// truth. The coordinated predictor must learn both variants of each
	// pattern — "masking" the bad synopsis, as the paper puts it.
	p := mustNew(t, 4, 2, Config{})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		noise := rng.Intn(2)
		truth := i % 2
		gpv := []int{truth, truth, truth, noise}
		if err := p.Train(gpv, truth, 0); err != nil {
			t.Fatal(err)
		}
	}
	p.ResetHistory()
	correct := 0
	for i := 0; i < 100; i++ {
		noise := rng.Intn(2)
		truth := i % 2
		over, _, err := p.Predict([]int{truth, truth, truth, noise})
		if err != nil {
			t.Fatal(err)
		}
		if over == truth {
			correct++
		}
	}
	if correct < 95 {
		t.Errorf("coordinated accuracy with one noisy synopsis = %d%%, want ≥95%%", correct)
	}
}

func TestDeltaUncertaintyBand(t *testing.T) {
	// With only a couple of training updates, |Hc| stays within δ=5 and
	// the tie-break decides.
	opt := mustNew(t, 2, 2, Config{Scheme: Optimistic})
	pes := mustNew(t, 2, 2, Config{Scheme: Pessimistic})
	for i := 0; i < 3; i++ {
		if err := opt.Train([]int{1, 1}, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := pes.Train([]int{1, 1}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	opt.ResetHistory()
	pes.ResetHistory()
	overOpt, _, err := opt.Predict([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	overPes, _, err := pes.Predict([]int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if overOpt != 0 {
		t.Error("optimistic scheme should predict underload inside the band")
	}
	if overPes != 1 {
		t.Error("pessimistic scheme should predict overload inside the band")
	}
}

func TestCounterSaturates(t *testing.T) {
	p := mustNew(t, 1, 1, Config{CounterMax: 8, Delta: 1})
	for i := 0; i < 100; i++ {
		if err := p.Train([]int{1}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	// All history cells were visited with saturating increments; none may
	// exceed the cap.
	for h := 0; h < 8; h++ {
		hc, err := p.Counter([]int{1}, h)
		if err != nil {
			t.Fatal(err)
		}
		if hc > 8 || hc < -8 {
			t.Fatalf("Hc = %d exceeds saturation ±8", hc)
		}
	}
}

func TestCounterMaxClampsToInt32(t *testing.T) {
	// A CounterMax beyond the 32-bit cell range must clamp, not wrap: the
	// predictor constructs fine and counters keep their sign and magnitude.
	p := mustNew(t, 1, 1, Config{CounterMax: math.MaxInt, Delta: 1, HistoryBits: 1})
	for i := 0; i < 50; i++ {
		if err := p.Train([]int{1}, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	hc, err := p.Counter([]int{1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hc <= 0 || hc > 50 {
		t.Fatalf("Hc = %d after 50 overload updates, want in (0, 50]", hc)
	}
}

func TestHistoryDistinguishesTemporalPatterns(t *testing.T) {
	// Same GPV, different temporal context: after a run of overloads the
	// pattern continues overloaded; after a run of underloads it is a
	// transient blip. h-bit history should separate the two.
	p := mustNew(t, 1, 1, Config{HistoryBits: 2, Delta: 0})
	// Build: GPV=1 following history "11" → overload; GPV=1 following
	// history "00" → underload (flaky synopsis during recovery).
	for i := 0; i < 60; i++ {
		// Sequence: 1,1,1 (overloads) then 0,0,1-but-underloaded.
		if err := p.Train([]int{1}, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{1}, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{1}, 1, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{0}, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{0}, 0, 0); err != nil {
			t.Fatal(err)
		}
		if err := p.Train([]int{1}, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Drive history to "11" via two observed overloads (online feedback
	// corrects the history register with the truth).
	p.ResetHistory()
	if _, _, err := p.Predict([]int{1}); err != nil {
		t.Fatal(err)
	}
	p.Feedback(1, 0)
	if _, _, err := p.Predict([]int{1}); err != nil {
		t.Fatal(err)
	}
	p.Feedback(1, 0)
	over, _, err := p.Predict([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if over != 1 {
		t.Error("GPV=1 after overload history should stay overloaded")
	}
	// The (GPV=1, history=00) cell sees both blips (underloaded) and
	// run-starts (overloaded) in this sequence, so its counter must stay
	// ambivalent — far from the saturation the unambiguous (1|11) cell
	// reaches.
	hcAmbiguous, err := p.Counter([]int{1}, 0b00)
	if err != nil {
		t.Fatal(err)
	}
	hcClear, err := p.Counter([]int{1}, 0b11)
	if err != nil {
		t.Fatal(err)
	}
	if abs(hcAmbiguous) >= abs(hcClear) {
		t.Errorf("ambiguous cell |Hc|=%d not below clear cell |Hc|=%d",
			abs(hcAmbiguous), abs(hcClear))
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func TestFeedbackAdapts(t *testing.T) {
	p := mustNew(t, 1, 2, Config{Delta: 0})
	p.ResetHistory()
	// Untrained: Hc=0, optimistic default → underload. Feed back truth
	// "overload" repeatedly; prediction must flip.
	for i := 0; i < 10; i++ {
		if _, _, err := p.Predict([]int{1}); err != nil {
			t.Fatal(err)
		}
		p.Feedback(1, 0)
		p.ResetHistory()
	}
	over, bott, err := p.Predict([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if over != 1 {
		t.Error("online feedback did not flip the prediction")
	}
	if bott != 0 {
		t.Errorf("bottleneck after feedback = %d, want 0", bott)
	}
}

func TestFeedbackBeforePredictIsNoop(t *testing.T) {
	p := mustNew(t, 2, 2, Config{})
	p.Feedback(1, 0) // must not panic or corrupt state
	hc, err := p.Counter([]int{0, 0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hc != 0 {
		t.Errorf("Feedback before Predict mutated Hc to %d", hc)
	}
}

// Property: GPV indexing is a bijection — training one pattern never
// disturbs the counters of another pattern (with Delta 0 and distinct
// histories controlled via ResetHistory).
func TestGPVIsolationProperty(t *testing.T) {
	f := func(bits [4]bool, other [4]bool) bool {
		gpv := make([]int, 4)
		gpv2 := make([]int, 4)
		same := true
		for i := range bits {
			if bits[i] {
				gpv[i] = 1
			}
			if other[i] {
				gpv2[i] = 1
			}
			if gpv[i] != gpv2[i] {
				same = false
			}
		}
		if same {
			return true
		}
		p, err := New(4, 2, Config{})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p.ResetHistory()
			if err := p.Train(gpv, 1, 0); err != nil {
				return false
			}
		}
		hc, err := p.Counter(gpv2, 0)
		return err == nil && hc == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hc always stays within the saturation bound under arbitrary
// training sequences.
func TestSaturationProperty(t *testing.T) {
	f := func(seed int64, labels []bool) bool {
		p, err := New(2, 2, Config{CounterMax: 16})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, l := range labels {
			gpv := []int{rng.Intn(2), rng.Intn(2)}
			label := 0
			if l {
				label = 1
			}
			if err := p.Train(gpv, label, rng.Intn(2)); err != nil {
				return false
			}
		}
		for g := 0; g < 4; g++ {
			gpv := []int{g & 1, g >> 1}
			for h := 0; h < 8; h++ {
				hc, err := p.Counter(gpv, h)
				if err != nil || hc > 16 || hc < -16 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
