// Package predictor implements the paper's coordinated two-level predictor
// (§III.C), a structure borrowed from the two-level adaptive branch
// predictors of Yeh and Patt:
//
//   - The first level is a Global Pattern Table (GPT) with one entry per
//     possible Global Pattern Vector (GPV) — the m-bit vector of the m
//     individual synopses' predictions in the current sampling interval.
//   - The second level holds, per GPT entry, a Local History Table (LHT)
//     indexed by the last h coordinated predictions; each LHT entry is a
//     saturating counter Hc (the Local History Bits) trained by
//     incrementing on overloaded instances and decrementing otherwise.
//   - The coordinated prediction is C = λ(Hc): overload above +δ,
//     underload below −δ, and a configurable optimistic/pessimistic
//     tie-break φ inside [−δ, +δ].
//   - A Bottleneck Pattern Table (BPT), indexed by GPV, holds per-tier
//     Bottleneck Vectors; the bottleneck prediction is the arg-max tier,
//     and it is consulted only when the system state is predicted
//     overloaded.
//
// Concurrency: after training, the GPT/LHT/BPT tables are read-mostly and
// shared; the h-bit history register is per-prediction-stream state. A
// Session carries one stream's register, so any number of goroutines may
// predict concurrently over one trained Predictor, each through its own
// Session. The Predictor's own Predict/Feedback/ResetHistory methods
// operate on a mutex-guarded default session, which keeps the historical
// single-stream API safe (if serialized) under concurrent use.
package predictor

import (
	"errors"
	"fmt"
	"sync"
)

// Scheme selects the tie-break φ(Hc) inside the [−δ, +δ] uncertainty band.
type Scheme int

// Tie-break schemes (§III.D).
const (
	// Optimistic predicts underload when uncertain.
	Optimistic Scheme = iota + 1
	// Pessimistic predicts overload when uncertain.
	Pessimistic
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config tunes the predictor. The paper's evaluation uses 3 history bits,
// δ=5 and the optimistic scheme.
type Config struct {
	// HistoryBits is h, the local-history length; zero selects 3.
	HistoryBits int
	// Delta is the confidence threshold δ; zero selects 5. Negative
	// values select a zero threshold (always decisive).
	Delta int
	// Scheme is the tie-break; zero selects Optimistic.
	Scheme Scheme
	// CounterMax saturates |Hc|; zero selects 64.
	CounterMax int
}

// DefaultConfig returns the paper's §V.C settings: h=3, δ=5, optimistic
// tie-break, counters saturating at 64.
func DefaultConfig() Config {
	return Config{HistoryBits: 3, Delta: 5, Scheme: Optimistic, CounterMax: 64}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HistoryBits == 0 {
		c.HistoryBits = def.HistoryBits
	}
	if c.Delta == 0 {
		c.Delta = def.Delta
	}
	if c.Delta < 0 {
		c.Delta = 0
	}
	if c.Scheme == 0 {
		c.Scheme = def.Scheme
	}
	if c.CounterMax <= 0 {
		c.CounterMax = def.CounterMax
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint. The predictor sits below the core package in the import
// graph, so unlike the higher-layer configs these errors carry no
// shared sentinel — match on the message.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.HistoryBits < 1 || c.HistoryBits > 12 {
		errs = append(errs, fmt.Errorf("predictor: history bits %d out of range [1,12]", c.HistoryBits))
	}
	if c.Scheme != Optimistic && c.Scheme != Pessimistic {
		errs = append(errs, fmt.Errorf("predictor: unknown tie-break scheme %d", c.Scheme))
	}
	return errs
}

// Predictor is the trained two-level coordinated predictor. The tables are
// shared by all Sessions; mu guards them (writes come from Train and
// Feedback only, so prediction traffic runs under read locks).
type Predictor struct {
	cfg   Config
	m     int // number of synopses
	tiers int

	mu sync.RWMutex
	// lht[gpv][history] = Hc.
	lht [][]int
	// bpt[gpv][tier] = bottleneck counter.
	bpt [][]int

	// def is the default session behind the Predictor's own
	// Predict/Feedback/ResetHistory methods; defMu serializes it.
	defMu sync.Mutex
	def   Session
}

// New builds a predictor for m synopses and the given number of tiers.
func New(m, tiers int, cfg Config) (*Predictor, error) {
	if m < 1 || m > 16 {
		return nil, fmt.Errorf("predictor: m = %d synopses out of range [1,16]", m)
	}
	if tiers < 1 {
		return nil, fmt.Errorf("predictor: tiers = %d must be positive", tiers)
	}
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	gptSize := 1 << m
	lhtSize := 1 << cfg.HistoryBits
	p := &Predictor{cfg: cfg, m: m, tiers: tiers}
	p.lht = make([][]int, gptSize)
	p.bpt = make([][]int, gptSize)
	for i := range p.lht {
		p.lht[i] = make([]int, lhtSize)
		p.bpt[i] = make([]int, tiers)
	}
	p.def.p = p
	return p, nil
}

// Config returns the effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Session is one prediction stream over a shared trained Predictor: the
// h-bit register of the stream's last coordinated predictions plus the
// cells its most recent Predict consulted (for Feedback). Sessions are
// cheap; give each concurrent caller its own. A Session must not itself be
// used from multiple goroutines at once.
type Session struct {
	p *Predictor
	// history is the register of the last h coordinated predictions.
	history int

	// last* remember the cells used by the most recent Predict so that
	// online Feedback can reinforce them.
	lastGPV     int
	lastHistory int
	lastValid   bool
}

// NewSession returns an independent prediction stream with a cleared
// history register.
func (p *Predictor) NewSession() *Session { return &Session{p: p} }

// gpvIndex packs the m synopsis predictions into a GPT index.
func (p *Predictor) gpvIndex(gpv []int) (int, error) {
	if len(gpv) != p.m {
		return 0, fmt.Errorf("predictor: GPV has %d bits, want %d", len(gpv), p.m)
	}
	idx := 0
	for i, b := range gpv {
		if b != 0 && b != 1 {
			return 0, fmt.Errorf("predictor: GPV bit %d is %d, want 0 or 1", i, b)
		}
		idx |= b << i
	}
	return idx, nil
}

// lambda applies the decision function λ(Hc).
func (p *Predictor) lambda(hc int) int {
	switch {
	case hc > p.cfg.Delta:
		return 1
	case hc < -p.cfg.Delta:
		return 0
	case p.cfg.Scheme == Pessimistic:
		return 1
	default:
		return 0
	}
}

// shift pushes a prediction into the session's history register.
func (s *Session) shift(pred int) {
	mask := (1 << s.p.cfg.HistoryBits) - 1
	s.history = ((s.history << 1) | (pred & 1)) & mask
}

// ResetHistory clears the session's local-history register (e.g. between
// traces).
func (s *Session) ResetHistory() {
	s.history = 0
	s.lastValid = false
}

// Predict makes the coordinated prediction for one sampling interval of
// this session's stream. The bottleneck tier is only meaningful when
// overload is 1 (the bottleneck predictor is invoked on predicted
// overload, per the paper); it is -1 otherwise. Predict advances the
// session's history register with its own output.
func (s *Session) Predict(gpv []int) (overload int, bottleneck int, err error) {
	p := s.p
	idx, err := p.gpvIndex(gpv)
	if err != nil {
		return 0, -1, err
	}
	p.mu.RLock()
	hc := p.lht[idx][s.history]
	overload = p.lambda(hc)
	bottleneck = -1
	if overload == 1 {
		bottleneck = p.argmaxBottleneck(idx)
	}
	p.mu.RUnlock()
	s.lastGPV = idx
	s.lastHistory = s.history
	s.lastValid = true
	s.shift(overload)
	return overload, bottleneck, nil
}

// Feedback reinforces the cells used by the session's most recent Predict
// with the observed truth, and corrects the history register so it records
// the actual outcome rather than the prediction — an online-adaptation
// extension beyond the paper's offline training. It is a no-op before any
// Predict.
func (s *Session) Feedback(overload int, bottleneck int) {
	if !s.lastValid {
		return
	}
	p := s.p
	mask := (1 << p.cfg.HistoryBits) - 1
	s.history = ((s.lastHistory << 1) | (overload & 1)) & mask
	p.mu.Lock()
	defer p.mu.Unlock()
	hc := &p.lht[s.lastGPV][s.lastHistory]
	if overload == 1 {
		if *hc < p.cfg.CounterMax {
			*hc++
		}
		if bottleneck >= 0 && bottleneck < p.tiers {
			for t := 0; t < p.tiers; t++ {
				if t == bottleneck {
					if p.bpt[s.lastGPV][t] < p.cfg.CounterMax {
						p.bpt[s.lastGPV][t]++
					}
				} else if p.bpt[s.lastGPV][t] > -p.cfg.CounterMax {
					p.bpt[s.lastGPV][t]--
				}
			}
		}
	} else if *hc > -p.cfg.CounterMax {
		*hc--
	}
}

// ResetHistory clears the default session's local-history register (e.g.
// between traces).
func (p *Predictor) ResetHistory() {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	p.def.ResetHistory()
}

// Train consumes one training instance: the synopses' GPV, the true
// overload label, and the bottleneck tier (ignored unless the instance is
// overloaded, mirroring the paper's training of the BPT on overloaded
// instances). The history register records the coordinated predictions
// made along the way ("the last h prediction results", §III.C), exactly as
// online prediction does, so instances must be presented in trace order.
// Train drives the default session's register.
func (p *Predictor) Train(gpv []int, overload int, bottleneck int) error {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	idx, err := p.gpvIndex(gpv)
	if err != nil {
		return err
	}
	if overload != 0 && overload != 1 {
		return fmt.Errorf("predictor: overload label %d, want 0 or 1", overload)
	}
	if overload == 1 && (bottleneck < 0 || bottleneck >= p.tiers) {
		return fmt.Errorf("predictor: bottleneck tier %d out of range", bottleneck)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	hc := &p.lht[idx][p.def.history]
	pred := p.lambda(*hc)
	// Saturating update toward the truth.
	if overload == 1 {
		if *hc < p.cfg.CounterMax {
			*hc++
		}
	} else {
		if *hc > -p.cfg.CounterMax {
			*hc--
		}
	}
	// Bottleneck vector: reinforce the true bottleneck on overloaded
	// instances, decay the others.
	if overload == 1 {
		for t := 0; t < p.tiers; t++ {
			if t == bottleneck {
				if p.bpt[idx][t] < p.cfg.CounterMax {
					p.bpt[idx][t]++
				}
			} else if p.bpt[idx][t] > -p.cfg.CounterMax {
				p.bpt[idx][t]--
			}
		}
	}
	p.def.shift(pred)
	return nil
}

// Predict makes the coordinated prediction on the default session; see
// Session.Predict. Concurrent callers are serialized — give each its own
// Session instead.
func (p *Predictor) Predict(gpv []int) (overload int, bottleneck int, err error) {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	return p.def.Predict(gpv)
}

// Feedback reinforces the default session's most recent Predict; see
// Session.Feedback.
func (p *Predictor) Feedback(overload int, bottleneck int) {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	p.def.Feedback(overload, bottleneck)
}

// argmaxBottleneck returns λb(bK...b1) = arg max over tier counters. The
// caller must hold mu.
func (p *Predictor) argmaxBottleneck(idx int) int {
	best := 0
	for t := 1; t < p.tiers; t++ {
		if p.bpt[idx][t] > p.bpt[idx][best] {
			best = t
		}
	}
	return best
}

// Counter exposes one Hc value (for tests and diagnostics).
func (p *Predictor) Counter(gpv []int, history int) (int, error) {
	idx, err := p.gpvIndex(gpv)
	if err != nil {
		return 0, err
	}
	p.mu.RLock()
	defer p.mu.RUnlock()
	if history < 0 || history >= len(p.lht[idx]) {
		return 0, fmt.Errorf("predictor: history index %d out of range", history)
	}
	return p.lht[idx][history], nil
}
