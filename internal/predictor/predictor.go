// Package predictor implements the paper's coordinated two-level predictor
// (§III.C), a structure borrowed from the two-level adaptive branch
// predictors of Yeh and Patt:
//
//   - The first level is a Global Pattern Table (GPT) with one entry per
//     possible Global Pattern Vector (GPV) — the m-bit vector of the m
//     individual synopses' predictions in the current sampling interval.
//   - The second level holds, per GPT entry, a Local History Table (LHT)
//     indexed by the last h coordinated predictions; each LHT entry is a
//     saturating counter Hc (the Local History Bits) trained by
//     incrementing on overloaded instances and decrementing otherwise.
//   - The coordinated prediction is C = λ(Hc): overload above +δ,
//     underload below −δ, and a configurable optimistic/pessimistic
//     tie-break φ inside [−δ, +δ].
//   - A Bottleneck Pattern Table (BPT), indexed by GPV, holds per-tier
//     Bottleneck Vectors; the bottleneck prediction is the arg-max tier,
//     and it is consulted only when the system state is predicted
//     overloaded.
//
// Concurrency: after training, the GPT/LHT/BPT tables are read-mostly and
// shared; the h-bit history register is per-prediction-stream state. A
// Session carries one stream's register, so any number of goroutines may
// predict concurrently over one trained Predictor, each through its own
// Session. The prediction hot path is lock-free: the tables live in flat
// fixed-point arrays behind an atomic snapshot pointer, readers load
// individual counters atomically, and only the writers (Train, Feedback)
// serialize on a mutex. The Predictor's own Predict/Feedback/ResetHistory
// methods operate on a mutex-guarded default session, which keeps the
// historical single-stream API safe (if serialized) under concurrent use.
package predictor

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Scheme selects the tie-break φ(Hc) inside the [−δ, +δ] uncertainty band.
type Scheme int

// Tie-break schemes (§III.D).
const (
	// Optimistic predicts underload when uncertain.
	Optimistic Scheme = iota + 1
	// Pessimistic predicts overload when uncertain.
	Pessimistic
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case Optimistic:
		return "optimistic"
	case Pessimistic:
		return "pessimistic"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config tunes the predictor. The paper's evaluation uses 3 history bits,
// δ=5 and the optimistic scheme.
type Config struct {
	// HistoryBits is h, the local-history length; zero selects 3.
	HistoryBits int
	// Delta is the confidence threshold δ; zero selects 5. Negative
	// values select a zero threshold (always decisive).
	Delta int
	// Scheme is the tie-break; zero selects Optimistic.
	Scheme Scheme
	// CounterMax saturates |Hc|; zero selects 64. The counters are 32-bit
	// fixed point, so values above 2³¹−1 clamp to 2³¹−1 (saturation keeps
	// every reachable counter within the clamp regardless).
	CounterMax int
}

// DefaultConfig returns the paper's §V.C settings: h=3, δ=5, optimistic
// tie-break, counters saturating at 64.
func DefaultConfig() Config {
	return Config{HistoryBits: 3, Delta: 5, Scheme: Optimistic, CounterMax: 64}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HistoryBits == 0 {
		c.HistoryBits = def.HistoryBits
	}
	if c.Delta == 0 {
		c.Delta = def.Delta
	}
	if c.Delta < 0 {
		c.Delta = 0
	}
	if c.Scheme == 0 {
		c.Scheme = def.Scheme
	}
	if c.CounterMax <= 0 {
		c.CounterMax = def.CounterMax
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint. The predictor sits below the core package in the import
// graph, so unlike the higher-layer configs these errors carry no
// shared sentinel — match on the message.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.HistoryBits < 1 || c.HistoryBits > 12 {
		errs = append(errs, fmt.Errorf("predictor: history bits %d out of range [1,12]", c.HistoryBits))
	}
	if c.Scheme != Optimistic && c.Scheme != Pessimistic {
		errs = append(errs, fmt.Errorf("predictor: unknown tie-break scheme %d", c.Scheme))
	}
	return errs
}

// tables is one immutable-shape snapshot of the predictor's state: the
// GPT×LHT saturating counters and the BPT bottleneck vectors flattened
// into single contiguous fixed-point arrays. Readers obtain the snapshot
// with one atomic pointer load and index it with shifts — no locks, no
// second pointer chase — while individual cells are read and written with
// 32-bit atomics so concurrent Feedback never races a prediction. The
// pointer is swapped only when the table shape would change (it never does
// today; the indirection is the hot-swap seam).
type tables struct {
	// hbits is h; lht[gpv<<hbits | history] = Hc.
	hbits uint
	lht   []int32
	// bpt[gpv*tiers + tier] = bottleneck counter.
	bpt   []int32
	tiers int

	// Decision constants, denormalized from Config so λ(Hc) touches one
	// struct.
	delta       int32
	pessimistic bool
	counterMax  int32
}

// Predictor is the trained two-level coordinated predictor. The tables are
// shared by all Sessions through the atomic snapshot; mu serializes the
// writers (Train and Feedback) only — prediction traffic is lock-free.
type Predictor struct {
	cfg   Config
	m     int // number of synopses
	tiers int

	mu  sync.Mutex
	tab atomic.Pointer[tables]

	// def is the default session behind the Predictor's own
	// Predict/Feedback/ResetHistory methods; defMu serializes it.
	defMu sync.Mutex
	def   Session
}

// clamp32 saturates a non-negative config value into the int32 counters.
func clamp32(v int) int32 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(v)
}

// New builds a predictor for m synopses and the given number of tiers.
func New(m, tiers int, cfg Config) (*Predictor, error) {
	if m < 1 || m > 16 {
		return nil, fmt.Errorf("predictor: m = %d synopses out of range [1,16]", m)
	}
	if tiers < 1 {
		return nil, fmt.Errorf("predictor: tiers = %d must be positive", tiers)
	}
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	gptSize := 1 << m
	p := &Predictor{cfg: cfg, m: m, tiers: tiers}
	t := &tables{
		hbits:       uint(cfg.HistoryBits),
		tiers:       tiers,
		delta:       clamp32(cfg.Delta),
		pessimistic: cfg.Scheme == Pessimistic,
		counterMax:  clamp32(cfg.CounterMax),
	}
	t.lht = make([]int32, gptSize<<t.hbits)
	t.bpt = make([]int32, gptSize*tiers)
	p.tab.Store(t)
	p.def.p = p
	return p, nil
}

// Config returns the effective configuration.
func (p *Predictor) Config() Config { return p.cfg }

// Session is one prediction stream over a shared trained Predictor: the
// h-bit register of the stream's last coordinated predictions plus the
// cells its most recent Predict consulted (for Feedback). Sessions are
// cheap; give each concurrent caller its own. A Session must not itself be
// used from multiple goroutines at once.
type Session struct {
	p *Predictor
	// history is the register of the last h coordinated predictions.
	history int

	// last* remember the cells used by the most recent Predict so that
	// online Feedback can reinforce them.
	lastGPV     int
	lastHistory int
	lastValid   bool
}

// NewSession returns an independent prediction stream with a cleared
// history register.
func (p *Predictor) NewSession() *Session { return &Session{p: p} }

// gpvIndex packs the m synopsis predictions into a GPT index.
func (p *Predictor) gpvIndex(gpv []int) (int, error) {
	if len(gpv) != p.m {
		return 0, fmt.Errorf("predictor: GPV has %d bits, want %d", len(gpv), p.m)
	}
	idx := 0
	for i, b := range gpv {
		if b != 0 && b != 1 {
			return 0, fmt.Errorf("predictor: GPV bit %d is %d, want 0 or 1", i, b)
		}
		idx |= b << i
	}
	return idx, nil
}

// lambda applies the decision function λ(Hc).
func (t *tables) lambda(hc int32) int {
	switch {
	case hc > t.delta:
		return 1
	case hc < -t.delta:
		return 0
	case t.pessimistic:
		return 1
	default:
		return 0
	}
}

// shift pushes a prediction into the session's history register.
func (s *Session) shift(pred int) {
	mask := (1 << s.p.cfg.HistoryBits) - 1
	s.history = ((s.history << 1) | (pred & 1)) & mask
}

// ResetHistory clears the session's local-history register (e.g. between
// traces).
func (s *Session) ResetHistory() {
	s.history = 0
	s.lastValid = false
}

// Predict makes the coordinated prediction for one sampling interval of
// this session's stream. The bottleneck tier is only meaningful when
// overload is 1 (the bottleneck predictor is invoked on predicted
// overload, per the paper); it is -1 otherwise. Predict advances the
// session's history register with its own output.
func (s *Session) Predict(gpv []int) (overload int, bottleneck int, err error) {
	idx, err := s.p.gpvIndex(gpv)
	if err != nil {
		return 0, -1, err
	}
	overload, bottleneck = s.PredictPacked(idx)
	return overload, bottleneck, nil
}

// PredictPacked is Predict over a pre-packed GPT index, with the GPV
// validation hoisted out of the steady-state loop: the caller guarantees
// idx was packed from m bits (bit i = synopsis i's vote), as Predict and
// the compiled decision plane do. It is the lock-free fast path — one
// atomic snapshot load, one shift-indexed counter load, λ(Hc), and only
// on predicted overload the BPT arg-max scan.
func (s *Session) PredictPacked(idx int) (overload int, bottleneck int) {
	t := s.p.tab.Load()
	hc := atomic.LoadInt32(&t.lht[idx<<t.hbits|s.history])
	overload = t.lambda(hc)
	bottleneck = -1
	if overload == 1 {
		bottleneck = t.argmaxBottleneck(idx)
	}
	s.lastGPV = idx
	s.lastHistory = s.history
	s.lastValid = true
	s.shift(overload)
	return overload, bottleneck
}

// Feedback reinforces the cells used by the session's most recent Predict
// with the observed truth, and corrects the history register so it records
// the actual outcome rather than the prediction — an online-adaptation
// extension beyond the paper's offline training. It is a no-op before any
// Predict.
func (s *Session) Feedback(overload int, bottleneck int) {
	if !s.lastValid {
		return
	}
	p := s.p
	mask := (1 << p.cfg.HistoryBits) - 1
	s.history = ((s.lastHistory << 1) | (overload & 1)) & mask
	t := p.tab.Load()
	p.mu.Lock()
	defer p.mu.Unlock()
	cell := &t.lht[s.lastGPV<<t.hbits|s.lastHistory]
	hc := atomic.LoadInt32(cell)
	if overload == 1 {
		if hc < t.counterMax {
			atomic.StoreInt32(cell, hc+1)
		}
		if bottleneck >= 0 && bottleneck < p.tiers {
			t.updateBPT(s.lastGPV, bottleneck)
		}
	} else if hc > -t.counterMax {
		atomic.StoreInt32(cell, hc-1)
	}
}

// updateBPT reinforces the true bottleneck tier of one GPV row and decays
// the others, saturating at ±counterMax. The caller holds the writer mutex;
// the stores are atomic only so lock-free readers never race them.
func (t *tables) updateBPT(idx, bottleneck int) {
	base := idx * t.tiers
	for tr := 0; tr < t.tiers; tr++ {
		cell := &t.bpt[base+tr]
		v := atomic.LoadInt32(cell)
		if tr == bottleneck {
			if v < t.counterMax {
				atomic.StoreInt32(cell, v+1)
			}
		} else if v > -t.counterMax {
			atomic.StoreInt32(cell, v-1)
		}
	}
}

// ResetHistory clears the default session's local-history register (e.g.
// between traces).
func (p *Predictor) ResetHistory() {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	p.def.ResetHistory()
}

// Train consumes one training instance: the synopses' GPV, the true
// overload label, and the bottleneck tier (ignored unless the instance is
// overloaded, mirroring the paper's training of the BPT on overloaded
// instances). The history register records the coordinated predictions
// made along the way ("the last h prediction results", §III.C), exactly as
// online prediction does, so instances must be presented in trace order.
// Train drives the default session's register.
func (p *Predictor) Train(gpv []int, overload int, bottleneck int) error {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	idx, err := p.gpvIndex(gpv)
	if err != nil {
		return err
	}
	if overload != 0 && overload != 1 {
		return fmt.Errorf("predictor: overload label %d, want 0 or 1", overload)
	}
	if overload == 1 && (bottleneck < 0 || bottleneck >= p.tiers) {
		return fmt.Errorf("predictor: bottleneck tier %d out of range", bottleneck)
	}
	t := p.tab.Load()
	p.mu.Lock()
	defer p.mu.Unlock()
	cell := &t.lht[idx<<t.hbits|p.def.history]
	hc := atomic.LoadInt32(cell)
	pred := t.lambda(hc)
	// Saturating update toward the truth.
	if overload == 1 {
		if hc < t.counterMax {
			atomic.StoreInt32(cell, hc+1)
		}
	} else if hc > -t.counterMax {
		atomic.StoreInt32(cell, hc-1)
	}
	// Bottleneck vector: reinforce the true bottleneck on overloaded
	// instances, decay the others.
	if overload == 1 {
		t.updateBPT(idx, bottleneck)
	}
	p.def.shift(pred)
	return nil
}

// Predict makes the coordinated prediction on the default session; see
// Session.Predict. Concurrent callers are serialized — give each its own
// Session instead.
func (p *Predictor) Predict(gpv []int) (overload int, bottleneck int, err error) {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	return p.def.Predict(gpv)
}

// Feedback reinforces the default session's most recent Predict; see
// Session.Feedback.
func (p *Predictor) Feedback(overload int, bottleneck int) {
	p.defMu.Lock()
	defer p.defMu.Unlock()
	p.def.Feedback(overload, bottleneck)
}

// argmaxBottleneck returns λb(bK...b1) = arg max over tier counters.
func (t *tables) argmaxBottleneck(idx int) int {
	base := idx * t.tiers
	best := 0
	bestV := atomic.LoadInt32(&t.bpt[base])
	for tr := 1; tr < t.tiers; tr++ {
		if v := atomic.LoadInt32(&t.bpt[base+tr]); v > bestV {
			best, bestV = tr, v
		}
	}
	return best
}

// Counter exposes one Hc value (for tests and diagnostics).
func (p *Predictor) Counter(gpv []int, history int) (int, error) {
	idx, err := p.gpvIndex(gpv)
	if err != nil {
		return 0, err
	}
	t := p.tab.Load()
	if history < 0 || history >= 1<<t.hbits {
		return 0, fmt.Errorf("predictor: history index %d out of range", history)
	}
	return int(atomic.LoadInt32(&t.lht[idx<<t.hbits|history])), nil
}
