// Package parallel provides the bounded fan-out primitive the experiment
// substrate runs on: a fixed pool of workers draining an indexed task list,
// with context cancellation and first-error propagation. Results are
// always assembled by task index, never by completion order, so a parallel
// run is bit-identical to the sequential run of the same tasks — the
// property the determinism golden tests enforce.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count knob: values above zero are taken as
// given, anything else selects GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most workers goroutines
// (workers <= 0 selects GOMAXPROCS). The first task error cancels the
// remaining tasks; among the errors actually observed, the one with the
// lowest task index is returned, so error reporting does not depend on
// goroutine scheduling. If ctx is cancelled externally, ForEach stops
// issuing tasks and returns ctx.Err().
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		mu       sync.Mutex
		firstErr error
		firstIdx int
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || cctx.Err() != nil {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil || i < firstIdx {
						firstErr, firstIdx = err, i
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on at most workers goroutines and
// returns the results indexed by i. Error semantics match ForEach; on
// error the partial results are discarded.
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
