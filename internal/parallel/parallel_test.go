package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 100
		counts := make([]atomic.Int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	err := ForEach(context.Background(), 50, workers, func(int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds %d workers", p, workers)
	}
}

func TestForEachPropagatesLowestIndexError(t *testing.T) {
	boom := func(i int) error { return fmt.Errorf("task %d failed", i) }
	// With one worker, tasks run in order and the first failure wins.
	err := ForEach(context.Background(), 10, 1, func(i int) error {
		if i >= 4 {
			return boom(i)
		}
		return nil
	})
	if err == nil || err.Error() != "task 4 failed" {
		t.Errorf("err = %v, want task 4 failure", err)
	}
}

func TestForEachCancelsRemainingWork(t *testing.T) {
	var ran atomic.Int32
	sentinel := errors.New("stop")
	err := ForEach(context.Background(), 10000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Errorf("%d tasks ran after cancellation, want early exit", n)
	}
}

func TestForEachHonorsExternalContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int32
	err := ForEach(ctx, 100, 4, func(int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestForEachZeroTasks(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Error("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestMapAssemblesByIndex(t *testing.T) {
	got, err := Map(context.Background(), 64, 8, func(i int) (int, error) {
		// Vary completion order; results must still land by index.
		time.Sleep(time.Duration(64-i) * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapDiscardsResultsOnError(t *testing.T) {
	sentinel := errors.New("stop")
	got, err := Map(context.Background(), 10, 2, func(i int) (int, error) {
		if i == 5 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if got != nil {
		t.Errorf("partial results %v returned with error", got)
	}
}

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
}
