package fuse_test

import (
	"math"
	"testing"

	"hpcap/internal/fuse"
)

// BenchmarkFuseSample measures one fused HPC sample on the steady-state
// path (all readings accepted). The serving pipelines pay this once per
// tier per second per site; allocs/op must stay 0.
func BenchmarkFuseSample(b *testing.B) {
	f, err := fuse.New(fuse.Config{}, 19)
	if err != nil {
		b.Fatal(err)
	}
	var stream [16][]float64
	for i := range stream {
		stream[i] = hpcVec(i)
	}
	for i := 0; i < 32; i++ {
		f.Fuse(stream[i%len(stream)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Fuse(stream[i%len(stream)])
	}
}

// BenchmarkFuseBatch measures a full combined-layout window (30 fused
// samples of 83 counters) with a NaN fault in every fifth sample, so
// the imputation path is costed too.
func BenchmarkFuseBatch(b *testing.B) {
	dim := 64 + 19
	f, err := fuse.New(fuse.Config{}, dim)
	if err != nil {
		b.Fatal(err)
	}
	var stream [30][]float64
	for i := range stream {
		stream[i] = append(osVec(i), hpcVec(i)...)
		if i%5 == 0 {
			stream[i][64] = math.NaN()
		}
	}
	for i := 0; i < 32; i++ {
		f.Fuse(stream[i%len(stream)])
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range stream {
			f.Fuse(stream[j])
		}
	}
}
