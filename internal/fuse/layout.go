package fuse

// The factor graph. Each factor is one linear (or ratio) constraint tying
// a small set of counters together, taken straight from how the collectors
// derive their metrics:
//
//   - cpu.Collector computes every ratio metric (IPC, CPI, miss ratios,
//     MPKI, stall fraction, memory accesses per cycle) from the same
//     jittered raw counts, so those couplings hold exactly on the emitted
//     vector — a rejected reading of one participant can be reconstructed
//     from the others with no modeling error at all.
//   - bus transactions are L2 miss fills plus ~35% write-backs
//     (bus = 1.35·l2_miss), and bus utilization is bus·64B/6.4GB/s.
//   - stall cycles are cycles − instructions/BaseIPC and busy fraction is
//     cycles/ClockHz; BaseIPC and ClockHz are machine constants the fuser
//     does not know, so those coefficients are learned online (EMA over
//     samples where every participant was accepted).
//   - osstat.Collector splits CPU time into user/system/iowait/idle
//     percentages that sum to ~100 (each independently jittered, so the
//     constraint is approximate), and the OS busy share tracks the
//     hardware busy fraction on the combined layout.
//
// Factor order within a layout is significant: imputation takes the first
// factor that yields a finite estimate, so exact couplings come first.

// Factor kinds.
const (
	// kindRatio: x[a] = K·x[b]/x[c]. Solvable for any participant.
	kindRatio = iota
	// kindProp: x[a] = K·x[b]. Solvable for either participant.
	kindProp
	// kindLearnedProp: x[a] = lr·x[b] with lr learned online.
	kindLearnedProp
	// kindLearnedDiff: x[a] = x[b] − lr·x[c] with lr learned online.
	kindLearnedDiff
	// kindShare4: x[a] + x[a+1] + x[a+2] + x[a+3] = K. Imputes one
	// missing participant from the other three.
	kindShare4
	// kindLearnedSum2: x[a] = lr·(x[b] + x[c]) with lr learned online.
	kindLearnedSum2
	// kindClampLE: x[a] ≤ x[b]. Never imputes; clamps an already
	// imputed x[a] down to an accepted x[b].
	kindClampLE
)

// factor is one edge set of the graph. a, b, c index counters in the
// fused vector; K is the fixed coefficient (unused by learned kinds).
type factor struct {
	kind    int
	a, b, c int
	k       float64
}

// legs lists the counters the factor touches.
func (f factor) legs() []int {
	switch f.kind {
	case kindRatio, kindLearnedDiff, kindLearnedSum2:
		return []int{f.a, f.b, f.c}
	case kindShare4:
		return []int{f.a, f.a + 1, f.a + 2, f.a + 3}
	default: // kindProp, kindLearnedProp, kindClampLE
		return []int{f.a, f.b}
	}
}

// learned reports whether the factor carries an online-learned
// coefficient.
func (f factor) learned() bool {
	switch f.kind {
	case kindLearnedProp, kindLearnedDiff, kindLearnedSum2:
		return true
	}
	return false
}

// Layout is the factor graph for one vector dimension.
type Layout struct {
	dim     int
	factors []factor
	// byCounter[i] lists (by index into factors) the factors that can
	// impute counter i, in imputation-preference order.
	byCounter [][]int16
}

// Dim returns the vector dimension the layout describes.
func (l *Layout) Dim() int { return l.dim }

// NumFactors returns how many factors the layout carries.
func (l *Layout) NumFactors() int { return len(l.factors) }

// Indices of the hardware counter metrics inside cpu.MetricNames. The
// layout test pins these against the collector's actual name order so a
// collector reorder cannot silently skew the priors.
const (
	hpcInstrRate   = 0
	hpcCycleRate   = 1
	hpcIPC         = 2
	hpcCPI         = 3
	hpcBusyFrac    = 4
	hpcL2RefRate   = 6
	hpcL2MissRate  = 7
	hpcL2MissRatio = 8
	hpcL2MPKI      = 9
	hpcStallRate   = 10
	hpcStallFrac   = 11
	hpcITLBRate    = 12
	hpcITLBMPKI    = 13
	hpcBusRate     = 16
	hpcBusUtil     = 17
	hpcMemPerCycle = 18
	hpcDim         = 19
)

// Indices of the OS metrics inside osstat.MetricNames (same pinning).
const (
	osCPUUser    = 0
	osCPUSystem  = 1
	osMemUsed    = 18
	osPctMemUsed = 19
	osKBCommit   = 22
	osDim        = 64
)

// hpcFactors builds the hardware-counter factor set at offset o into the
// fused vector.
func hpcFactors(o int) []factor {
	return []factor{
		// Exact ratio couplings: derived by the collector from the same
		// jittered raws, so reconstruction is loss-free.
		{kind: kindRatio, a: o + hpcIPC, b: o + hpcInstrRate, c: o + hpcCycleRate, k: 1},
		{kind: kindRatio, a: o + hpcCPI, b: o + hpcCycleRate, c: o + hpcInstrRate, k: 1},
		{kind: kindRatio, a: o + hpcL2MissRatio, b: o + hpcL2MissRate, c: o + hpcL2RefRate, k: 1},
		{kind: kindRatio, a: o + hpcL2MPKI, b: o + hpcL2MissRate, c: o + hpcInstrRate, k: 1000},
		{kind: kindRatio, a: o + hpcITLBMPKI, b: o + hpcITLBRate, c: o + hpcInstrRate, k: 1000},
		{kind: kindRatio, a: o + hpcStallFrac, b: o + hpcStallRate, c: o + hpcCycleRate, k: 1},
		{kind: kindRatio, a: o + hpcMemPerCycle, b: o + hpcL2RefRate, c: o + hpcCycleRate, k: 1},
		// Exact proportional couplings (fill + write-back model, bus
		// line size over bus bandwidth).
		{kind: kindProp, a: o + hpcBusRate, b: o + hpcL2MissRate, k: 1.35},
		{kind: kindProp, a: o + hpcBusUtil, b: o + hpcBusRate, k: 64.0 / 6.4e9},
		// Machine-constant couplings, coefficients learned online.
		{kind: kindLearnedProp, a: o + hpcBusyFrac, b: o + hpcCycleRate},
		{kind: kindLearnedDiff, a: o + hpcStallRate, b: o + hpcCycleRate, c: o + hpcInstrRate},
		// Physical inequality: misses cannot exceed references.
		{kind: kindClampLE, a: o + hpcL2MissRate, b: o + hpcL2RefRate},
	}
}

// osFactors builds the OS-metric factor set at offset o.
func osFactors(o int) []factor {
	return []factor{
		// user + system + iowait + idle ≈ 100% (independent jitters make
		// this approximate, unlike the hardware ratio couplings).
		{kind: kindShare4, a: o + osCPUUser, k: 100},
		// Memory metrics are derived from the same used-kB figure.
		{kind: kindLearnedProp, a: o + osPctMemUsed, b: o + osMemUsed},
		{kind: kindLearnedProp, a: o + osKBCommit, b: o + osMemUsed},
	}
}

// layouts built once; Layout carries no mutable state (learned
// coefficients live in the Fuser), so sharing across sites is safe.
var (
	layoutHPC      = newLayout(hpcDim, hpcFactors(0))
	layoutOS       = newLayout(osDim, osFactors(0))
	layoutCombined = newLayout(osDim+hpcDim, append(osFactors(0), append(hpcFactors(osDim),
		// Cross-level coupling: the hardware busy fraction tracks the
		// OS user+system share (coefficient ≈ 1/100, learned).
		factor{kind: kindLearnedSum2, a: osDim + hpcBusyFrac, b: osCPUUser, c: osCPUSystem})...))
)

// LayoutFor returns the factor graph for a fused vector of dim counters:
// the hardware-counter layout for the cpu collector's dimension, the OS
// layout for osstat's, and their concatenation (OS first, then HPC — the
// metrics.LevelCombined order) for the combined dimension. Any other
// dimension gets a factor-free layout: per-counter filtering still
// applies, cross-counter imputation does not.
func LayoutFor(dim int) *Layout {
	switch dim {
	case hpcDim:
		return layoutHPC
	case osDim:
		return layoutOS
	case osDim + hpcDim:
		return layoutCombined
	default:
		return newLayout(dim, nil)
	}
}

// newLayout indexes the factor list by counter.
func newLayout(dim int, factors []factor) *Layout {
	l := &Layout{dim: dim, factors: factors, byCounter: make([][]int16, dim)}
	for fi, f := range factors {
		if f.kind == kindClampLE {
			continue // clamps never impute
		}
		for _, leg := range f.legs() {
			if leg >= 0 && leg < dim {
				l.byCounter[leg] = append(l.byCounter[leg], int16(fi))
			}
		}
	}
	return l
}
