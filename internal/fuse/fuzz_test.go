package fuse_test

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/fuse"
)

// FuzzFuseConfig pins the config contract under arbitrary settings:
// every validation error wraps core.ErrBadConfig, a config that
// validates cleanly constructs a Fuser, and validation is stable (a
// valid config stays valid when re-validated).
func FuzzFuseConfig(f *testing.F) {
	f.Add(0.25, 0.05, 8.0, 4, 5, 0.7)
	f.Add(0.0, 0.0, 0.0, 0, 0, 0.0)
	f.Add(-1.0, math.Inf(1), math.NaN(), 1, -3, 1.5)
	f.Add(1e308, 1e-308, 1e6, 1<<30, 1<<30, 1.0)
	f.Fuzz(func(t *testing.T, pn, mn, gs float64, sr, wu int, cf float64) {
		cfg := fuse.Config{
			ProcessNoise:     pn,
			MeasurementNoise: mn,
			GateSigmas:       gs,
			StuckRun:         sr,
			Warmup:           wu,
			ConfidenceFloor:  cf,
		}
		errs := cfg.Validate()
		for _, err := range errs {
			if !errors.Is(err, core.ErrBadConfig) {
				t.Fatalf("error %v does not wrap ErrBadConfig", err)
			}
		}
		fr, err := fuse.New(cfg, 19)
		if (err == nil) != (len(errs) == 0) {
			t.Fatalf("Validate found %d errors but New said %v", len(errs), err)
		}
		if err != nil {
			if !errors.Is(err, core.ErrBadConfig) {
				t.Fatalf("New error %v does not wrap ErrBadConfig", err)
			}
			return
		}
		if errs := fr.Config().Validate(); len(errs) > 0 {
			t.Fatalf("resolved config invalid: %v", errs)
		}
	})
}

// FuzzFuseIngest feeds arbitrary byte streams — reinterpreted as raw
// float64 bits, so NaN, ±Inf, subnormals, stuck repeats, and
// zero-variance runs all occur — and pins the safety contract: no
// panic, every emitted value finite, confidence in [0, 1], and the
// whole pass deterministic (a second fuser fed the same stream emits
// identical bits).
func FuzzFuseIngest(f *testing.F) {
	nan := math.Float64bits(math.NaN())
	inf := math.Float64bits(math.Inf(1))
	seed := make([]byte, 0, 8*8)
	for _, b := range []uint64{nan, inf, 0, 0, math.Float64bits(1e308), math.Float64bits(-1e308), nan, 42} {
		seed = binary.LittleEndian.AppendUint64(seed, b)
	}
	f.Add(uint8(19), seed)
	f.Add(uint8(64), seed)
	f.Add(uint8(83), []byte{})
	f.Add(uint8(1), []byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, dimByte uint8, data []byte) {
		dim := int(dimByte%96) + 1
		f1, err := fuse.New(fuse.Config{}, dim)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		f2, _ := fuse.New(fuse.Config{}, dim)

		vals := make([]float64, 0, len(data)/8)
		for i := 0; i+8 <= len(data); i += 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[i:])))
		}
		vec := make([]float64, dim)
		for off := 0; off == 0 || off+dim <= len(vals); off += dim {
			for i := range vec {
				if off+i < len(vals) {
					vec[i] = vals[off+i]
				} else {
					vec[i] = 0
				}
			}
			r1 := f1.Fuse(vec)
			r2 := f2.Fuse(vec)
			if !(r1.Confidence >= 0 && r1.Confidence <= 1) {
				t.Fatalf("confidence %v out of [0,1]", r1.Confidence)
			}
			if r1.Imputed < 0 || r1.Imputed > dim || r1.Gated < 0 || r1.Gated > r1.Imputed {
				t.Fatalf("counters out of range: imputed=%d gated=%d dim=%d", r1.Imputed, r1.Gated, dim)
			}
			for i, v := range r1.Values {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite emission %v at counter %d", v, i)
				}
				if math.Float64bits(v) != math.Float64bits(r2.Values[i]) {
					t.Fatalf("nondeterministic emission at counter %d", i)
				}
			}
		}
	})
}
