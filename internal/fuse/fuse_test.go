package fuse_test

import (
	"errors"
	"math"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/cpu"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/osstat"
)

// Synthetic machine constants for the generated test streams.
const (
	baseIPC = 1.2
	clockHz = 3e9
)

// hpcVec builds a hardware-counter vector with the cpu collector's exact
// derivation formulas, varying every raw count with t so no counter is
// structurally constant.
func hpcVec(t int) []float64 {
	instr := 1.0e9 + 1.3e7*float64(t%7)
	cycles := 1.5e9 + 1.1e7*float64(t%5)
	l2ref := 2.0e7 + 1.7e5*float64(t%3)
	l2miss := 0.3*l2ref - 1.0e4*float64(t%2)
	itlb := 1.0e5 + 13*float64(t%4)
	branches := 2.0e8 + 1.9e5*float64(t%6)
	bmiss := 0.021 * branches
	l1ref := instr * 0.31
	stall := cycles - instr/baseIPC
	if stall < 0 {
		stall = 0
	}
	bus := l2miss * 1.35
	return []float64{
		instr, cycles, instr / cycles, cycles / instr, cycles / clockHz,
		l1ref, l2ref, l2miss, l2miss / l2ref, l2miss / instr * 1000,
		stall, stall / cycles, itlb, itlb / instr * 1000, branches,
		bmiss / branches, bus, bus * 64 / 6.4e9, l2ref / cycles,
	}
}

// osVec builds an OS vector whose CPU split sums to exactly 100, with
// the remaining metrics varying mildly.
func osVec(t int) []float64 {
	v := make([]float64, len(osstat.MetricNames))
	user := 40 + float64(t%9)
	sys := 12 + 0.5*float64(t%5)
	iowait := 0.4 + 0.01*float64(t%3)
	v[0], v[1], v[2], v[3] = user, sys, iowait, 100-user-sys-iowait
	for i := 4; i < len(v); i++ {
		v[i] = float64(i) + 0.1*float64((t+i)%11)
	}
	v[18] = 400 * 1024      // kbmemused
	v[19] = v[18] / 5242.88 // pct_memused on a 512 MB machine
	v[22] = v[18] * 1.3     // kbcommit
	return v
}

func newFuser(t testing.TB, cfg fuse.Config, dim int) *fuse.Fuser {
	t.Helper()
	f, err := fuse.New(cfg, dim)
	if err != nil {
		t.Fatalf("fuse.New: %v", err)
	}
	return f
}

// warmUp feeds n clean samples.
func warmUp(f *fuse.Fuser, n int, vec func(int) []float64) {
	for t := 0; t < n; t++ {
		f.Fuse(vec(t))
	}
}

func checkRejected(t *testing.T, name string, errs []error) {
	t.Helper()
	if len(errs) == 0 {
		t.Fatalf("%s not rejected", name)
	}
	for _, err := range errs {
		if !errors.Is(err, core.ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestFuseConfigValidate(t *testing.T) {
	if errs := fuse.DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (fuse.Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
	// Clamped fields validate: negatives are documented shorthands.
	ok := fuse.Config{Warmup: -1, ConfidenceFloor: -1}
	if errs := ok.Validate(); len(errs) > 0 {
		t.Fatalf("clamped config rejected: %v", errs)
	}
	tests := []struct {
		name string
		cfg  fuse.Config
	}{
		{"negative process noise", fuse.Config{ProcessNoise: -0.1}},
		{"infinite process noise", fuse.Config{ProcessNoise: math.Inf(1)}},
		{"NaN process noise", fuse.Config{ProcessNoise: math.NaN()}},
		{"negative measurement noise", fuse.Config{MeasurementNoise: -0.1}},
		{"negative gate", fuse.Config{GateSigmas: -3}},
		{"NaN gate", fuse.Config{GateSigmas: math.NaN()}},
		{"one-sample stuck run", fuse.Config{StuckRun: 1}},
		{"negative stuck run", fuse.Config{StuckRun: -2}},
		{"confidence floor above one", fuse.Config{ConfidenceFloor: 1.5}},
		{"NaN confidence floor", fuse.Config{ConfidenceFloor: math.NaN()}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkRejected(t, tt.name, tt.cfg.Validate())
		})
	}
	if _, err := fuse.New(fuse.Config{}, 0); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("zero dimension: got %v, want ErrBadConfig", err)
	}
	if _, err := fuse.New(fuse.Config{StuckRun: 1}, 19); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("bad config: got %v, want ErrBadConfig", err)
	}
}

// TestFuseCleanPassthrough pins the design's core guarantee: on a clean
// varying stream every reading is accepted and emitted bit-identical,
// with full confidence — fusion never perturbs a trusted stream.
func TestFuseCleanPassthrough(t *testing.T) {
	f := newFuser(t, fuse.Config{}, len(cpu.MetricNames))
	for step := 0; step < 200; step++ {
		in := hpcVec(step)
		res := f.Fuse(in)
		if res.Imputed != 0 || res.Gated != 0 {
			t.Fatalf("step %d: clean sample imputed=%d gated=%d", step, res.Imputed, res.Gated)
		}
		if res.Confidence != 1 {
			t.Fatalf("step %d: clean confidence %v, want 1", step, res.Confidence)
		}
		for i, v := range res.Values {
			if v != in[i] {
				t.Fatalf("step %d counter %d: emitted %v, want raw %v", step, i, v, in[i])
			}
		}
	}
}

// TestFuseImputesMissingExactly corrupts single counters with NaN and
// checks the factor graph reconstructs them from accepted peers with
// (near-)zero error, at ConfFactor confidence.
func TestFuseImputesMissingExactly(t *testing.T) {
	dim := len(cpu.MetricNames)
	f := newFuser(t, fuse.Config{}, dim)
	warmUp(f, 20, hpcVec)

	// instr_rate (0) reconstructs from ipc·cycles; l2_miss_rate (7)
	// from miss_ratio·l2_ref; bus (16) from 1.35·l2_miss.
	for _, comp := range []int{0, 7, 16, 2, 8, 17} {
		step := 100 + comp
		clean := hpcVec(step)
		bad := append([]float64(nil), clean...)
		bad[comp] = math.NaN()
		res := f.Fuse(bad)
		if res.Imputed != 1 {
			t.Fatalf("comp %d: imputed %d counters, want 1", comp, res.Imputed)
		}
		got, want := res.Values[comp], clean[comp]
		if rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-12); rel > 1e-9 {
			t.Errorf("comp %d: imputed %v, want %v (rel err %v)", comp, got, want, rel)
		}
		wantConf := (float64(dim-1)*fuse.ConfAccepted + fuse.ConfFactor) / float64(dim)
		if math.Abs(res.Confidence-wantConf) > 1e-12 {
			t.Errorf("comp %d: confidence %v, want %v", comp, res.Confidence, wantConf)
		}
	}
}

// TestFuseLearnedFactors checks the online-learned couplings: after the
// fuser has seen consistent samples, busy_frac (cycles/ClockHz) and
// stall_rate (cycles − instr/BaseIPC) reconstruct through coefficients
// it was never told.
func TestFuseLearnedFactors(t *testing.T) {
	f := newFuser(t, fuse.Config{}, len(cpu.MetricNames))
	warmUp(f, 50, hpcVec)
	for _, comp := range []int{4, 10} {
		clean := hpcVec(200 + comp)
		bad := append([]float64(nil), clean...)
		bad[comp] = math.Inf(1)
		res := f.Fuse(bad)
		got, want := res.Values[comp], clean[comp]
		if rel := math.Abs(got-want) / math.Max(math.Abs(want), 1e-12); rel > 0.05 {
			t.Errorf("comp %d: learned imputation %v, want %v (rel err %v)", comp, got, want, rel)
		}
	}
}

// TestFuseShare4 checks the OS CPU-share factor: a missing idle reading
// reconstructs as 100 minus the accepted shares.
func TestFuseShare4(t *testing.T) {
	f := newFuser(t, fuse.Config{}, len(osstat.MetricNames))
	warmUp(f, 10, osVec)
	clean := osVec(33)
	bad := append([]float64(nil), clean...)
	bad[3] = math.NaN()
	res := f.Fuse(bad)
	if got, want := res.Values[3], clean[3]; math.Abs(got-want) > 1e-9 {
		t.Errorf("idle imputed %v, want %v", got, want)
	}
}

// TestFuseStuckDetection freezes a previously varying stream and checks
// the run detector flags it, while a counter that is constant from
// birth is never flagged.
func TestFuseStuckDetection(t *testing.T) {
	cfg := fuse.Config{StuckRun: 4}
	f := newFuser(t, cfg, 3)
	vec := func(t int) []float64 {
		return []float64{100 + float64(t), 5, 20 + float64(t%2)} // comp 1 constant from birth
	}
	for step := 0; step < 20; step++ {
		res := f.Fuse(vec(step))
		if res.Imputed != 0 {
			t.Fatalf("step %d: varying stream imputed %d", step, res.Imputed)
		}
	}
	frozen := vec(20)
	for rep := 1; rep <= 10; rep++ {
		res := f.Fuse(frozen)
		wantStuck := 0
		if rep >= 4 {
			wantStuck = 2 // comps 0 and 2 frozen; comp 1 is legitimately constant
		}
		if res.Imputed != wantStuck {
			t.Fatalf("repeat %d: imputed %d, want %d", rep, res.Imputed, wantStuck)
		}
		for i, v := range res.Values {
			if nan := math.IsNaN(v) || math.IsInf(v, 0); nan {
				t.Fatalf("repeat %d comp %d: non-finite emission %v", rep, i, v)
			}
		}
	}
	// Recovery: the first changed reading is accepted again (31 keeps
	// every component distinct from the frozen step-20 values).
	res := f.Fuse(vec(31))
	if res.Imputed != 0 {
		t.Errorf("post-freeze sample imputed %d, want 0", res.Imputed)
	}
}

// TestFuseGateAndVeto: a lone counter spiking far outside the predicted
// band is gated and reconstructed, but a coherent jump of the whole
// vector (a load-phase change) stands the gate down.
func TestFuseGateAndVeto(t *testing.T) {
	dim := len(cpu.MetricNames)
	f := newFuser(t, fuse.Config{}, dim)
	warmUp(f, 30, hpcVec)

	spiked := append([]float64(nil), hpcVec(31)...)
	spiked[12] *= 50 // itlb_miss_rate reads 50× out of band
	res := f.Fuse(spiked)
	if res.Gated != 1 || res.Imputed != 1 {
		t.Fatalf("spike: gated=%d imputed=%d, want 1/1", res.Gated, res.Imputed)
	}
	if got := res.Values[12]; got == spiked[12] {
		t.Error("gated reading was emitted raw")
	}

	// Whole-vector regime change: every counter jumps 3×.
	f2 := newFuser(t, fuse.Config{}, dim)
	warmUp(f2, 30, hpcVec)
	jump := hpcVec(31)
	for i := range jump {
		jump[i] *= 3
	}
	res = f2.Fuse(jump)
	if res.Gated != 0 || res.Imputed != 0 {
		t.Errorf("coherent jump: gated=%d imputed=%d, want 0/0 (veto)", res.Gated, res.Imputed)
	}
}

// TestFuseReset clears filter state but keeps learned coefficients.
func TestFuseReset(t *testing.T) {
	f := newFuser(t, fuse.Config{}, len(cpu.MetricNames))
	warmUp(f, 50, hpcVec)
	f.Reset()
	// Immediately after reset nothing is stuck or gated.
	res := f.Fuse(hpcVec(0))
	if res.Imputed != 0 || res.Gated != 0 {
		t.Fatalf("post-reset sample imputed=%d gated=%d", res.Imputed, res.Gated)
	}
	// Learned coefficients survive: busy_frac still reconstructs.
	bad := hpcVec(1)
	bad[4] = math.NaN()
	want := hpcVec(1)[4]
	res = f.Fuse(bad)
	if rel := math.Abs(res.Values[4]-want) / want; rel > 0.05 {
		t.Errorf("learned coefficient lost across Reset: imputed %v, want %v", res.Values[4], want)
	}
}

// TestFuseZeroAllocs pins the steady-state allocation guarantee on both
// the clean path and the imputation path.
func TestFuseZeroAllocs(t *testing.T) {
	f := newFuser(t, fuse.Config{}, len(cpu.MetricNames))
	warmUp(f, 20, hpcVec)
	var stream [8][]float64
	for i := range stream {
		stream[i] = hpcVec(21 + i)
	}
	bad := append([]float64(nil), stream[0]...)
	bad[0] = math.NaN()
	step := 0
	if n := testing.AllocsPerRun(100, func() {
		f.Fuse(stream[step%len(stream)])
		step++
		f.Fuse(bad)
	}); n != 0 {
		t.Errorf("Fuse allocates %v times per call pair, want 0", n)
	}
}

// TestFuseDeterministicReplay: two fusers fed the identical corrupted
// stream emit bit-identical values and confidences.
func TestFuseDeterministicReplay(t *testing.T) {
	mk := func() *fuse.Fuser { return newFuser(t, fuse.Config{}, len(cpu.MetricNames)) }
	f1, f2 := mk(), mk()
	for step := 0; step < 100; step++ {
		in := hpcVec(step)
		if step%7 == 3 {
			in[step%len(in)] = math.NaN()
		}
		r1 := f1.Fuse(in)
		r2 := f2.Fuse(in)
		if r1.Confidence != r2.Confidence || r1.Imputed != r2.Imputed || r1.Gated != r2.Gated {
			t.Fatalf("step %d: summaries diverged", step)
		}
		for i := range r1.Values {
			if math.Float64bits(r1.Values[i]) != math.Float64bits(r2.Values[i]) {
				t.Fatalf("step %d comp %d: %v vs %v", step, i, r1.Values[i], r2.Values[i])
			}
		}
	}
}

// TestFusedLayoutMatchesCollectors pins the factor graph's counter
// indices against the collectors' actual name order and the
// metrics.LevelCombined concatenation (OS first, then HPC): a collector
// reorder must break this test, not silently skew the fusion priors.
func TestFusedLayoutMatchesCollectors(t *testing.T) {
	hpcNames := map[int]string{
		0: "hpc_instr_rate", 1: "hpc_cycle_rate", 2: "hpc_ipc", 3: "hpc_cpi",
		4: "hpc_busy_frac", 6: "hpc_l2_ref_rate", 7: "hpc_l2_miss_rate",
		8: "hpc_l2_miss_ratio", 9: "hpc_l2_mpki", 10: "hpc_stall_rate",
		11: "hpc_stall_frac", 12: "hpc_itlb_miss_rate", 13: "hpc_itlb_mpki",
		16: "hpc_bus_access_rate", 17: "hpc_bus_util", 18: "hpc_mem_per_cycle",
	}
	for idx, want := range hpcNames {
		if got := cpu.MetricNames[idx]; got != want {
			t.Errorf("cpu.MetricNames[%d] = %q, want %q — update internal/fuse/layout.go", idx, got, want)
		}
	}
	osNames := map[int]string{
		0: "os_cpu_user", 1: "os_cpu_system", 2: "os_cpu_iowait", 3: "os_cpu_idle",
		18: "os_kbmemused", 19: "os_pct_memused", 22: "os_kbcommit",
	}
	for idx, want := range osNames {
		if got := osstat.MetricNames[idx]; got != want {
			t.Errorf("osstat.MetricNames[%d] = %q, want %q — update internal/fuse/layout.go", idx, got, want)
		}
	}

	// The three known layouts resolve by dimension and carry factors;
	// any other dimension gets a factor-free filter-only layout.
	nHPC, nOS := len(cpu.MetricNames), len(osstat.MetricNames)
	if l := fuse.LayoutFor(nHPC); l.Dim() != nHPC || l.NumFactors() == 0 {
		t.Errorf("HPC layout: dim=%d factors=%d", l.Dim(), l.NumFactors())
	}
	if l := fuse.LayoutFor(nOS); l.Dim() != nOS || l.NumFactors() == 0 {
		t.Errorf("OS layout: dim=%d factors=%d", l.Dim(), l.NumFactors())
	}
	comb := fuse.LayoutFor(nOS + nHPC)
	if comb.NumFactors() != fuse.LayoutFor(nOS).NumFactors()+fuse.LayoutFor(nHPC).NumFactors()+1 {
		t.Errorf("combined layout has %d factors, want OS+HPC+1 cross", comb.NumFactors())
	}
	if l := fuse.LayoutFor(7); l.NumFactors() != 0 {
		t.Errorf("unknown dimension carries %d factors, want 0", l.NumFactors())
	}

	// The combined layout's OS-first ordering matches LevelCombined:
	// a combined vector is the OS vector followed by the HPC vector, so
	// the HPC factors must sit at offset len(osstat.MetricNames). Probe
	// behaviourally: corrupt the combined vector's hpc_ipc slot and
	// check it reconstructs from the hpc instr/cycles slots.
	f := newFuser(t, fuse.Config{}, nOS+nHPC)
	combVec := func(t int) []float64 { return append(osVec(t), hpcVec(t)...) }
	warmUp(f, 10, combVec)
	clean := combVec(11)
	bad := append([]float64(nil), clean...)
	bad[nOS+2] = math.NaN() // hpc_ipc in combined coordinates
	res := f.Fuse(bad)
	if got, want := res.Values[nOS+2], clean[nOS+2]; math.Abs(got-want)/want > 1e-9 {
		t.Errorf("combined hpc_ipc imputed %v, want %v — HPC offset wrong", got, want)
	}
	if metrics.LevelCombined.String() != "OS+HPC" {
		t.Errorf("LevelCombined renders %q, want OS+HPC (OS first)", metrics.LevelCombined.String())
	}
}
