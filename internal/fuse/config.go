package fuse

import (
	"errors"
	"fmt"
	"math"

	"hpcap/internal/core"
)

// Config tunes a Fuser. The defaults are deliberately permissive: the
// gate is a safety net against wildly scaled reads, not a tracking
// filter, so legitimate load-phase steps (which move every counter
// coherently) must pass untouched.
type Config struct {
	// ProcessNoise is the relative per-sample drift the filter expects
	// in the true counter level (standard deviation, as a fraction of
	// the counter's running magnitude). Larger values track regime
	// changes faster and widen the innovation gate. Zero selects 0.25.
	ProcessNoise float64
	// MeasurementNoise is the relative sampling jitter of a single
	// counter read (standard deviation, as a fraction of the counter's
	// running magnitude) — the multiplexing noise BayesPerf models.
	// Zero selects 0.05.
	MeasurementNoise float64
	// GateSigmas is the innovation gate width: a reading further than
	// GateSigmas predicted standard deviations from the filter's
	// one-step prediction is rejected and imputed instead. Zero
	// selects 8 (a wide safety net; see the package comment).
	GateSigmas float64
	// StuckRun is how many consecutive bit-identical readings of a
	// counter that has previously varied mark the counter stuck (a
	// frozen collector replaying its last value). Zero selects 4;
	// counters that never change (structurally constant metrics) are
	// never flagged.
	StuckRun int
	// Warmup is how many accepted readings a counter needs before the
	// innovation gate arms; stuck detection is always armed. Zero
	// selects 5; negative selects 0 (gate armed from the first read).
	Warmup int
	// ConfidenceFloor classifies windows: a decided window whose mean
	// per-counter confidence falls below the floor is flagged
	// LowConfidence, walks the serving degradation ladder, and is
	// refused by the registry's retrain guard. Zero selects 0.7;
	// negative selects 0 (low-confidence flagging disabled).
	ConfidenceFloor float64
}

// DefaultConfig returns the canonical fusion settings.
func DefaultConfig() Config {
	return Config{
		ProcessNoise:     0.25,
		MeasurementNoise: 0.05,
		GateSigmas:       8,
		StuckRun:         4,
		Warmup:           5,
		ConfidenceFloor:  0.7,
	}
}

// normalize fills zero fields from DefaultConfig and applies the
// documented clamps (negative Warmup means 0, negative ConfidenceFloor
// disables low-confidence flagging).
func (c Config) normalize() Config {
	def := DefaultConfig()
	if c.ProcessNoise == 0 {
		c.ProcessNoise = def.ProcessNoise
	}
	if c.MeasurementNoise == 0 {
		c.MeasurementNoise = def.MeasurementNoise
	}
	if c.GateSigmas == 0 {
		c.GateSigmas = def.GateSigmas
	}
	if c.StuckRun == 0 {
		c.StuckRun = def.StuckRun
	}
	if c.Warmup == 0 {
		c.Warmup = def.Warmup
	} else if c.Warmup < 0 {
		c.Warmup = 0
	}
	if c.ConfidenceFloor == 0 {
		c.ConfidenceFloor = def.ConfidenceFloor
	} else if c.ConfidenceFloor < 0 {
		c.ConfidenceFloor = 0
	}
	return c
}

// Validate applies defaults and clamps first, then returns one error
// per remaining violation, each wrapping core.ErrBadConfig. A nil (or
// empty) result means the configuration is usable as resolved.
func (c Config) Validate() []error {
	c = c.normalize()
	var errs []error
	if !(c.ProcessNoise > 0) || math.IsInf(c.ProcessNoise, 0) {
		errs = append(errs, fmt.Errorf("fuse: %w: process noise %v must be positive and finite", core.ErrBadConfig, c.ProcessNoise))
	}
	if !(c.MeasurementNoise > 0) || math.IsInf(c.MeasurementNoise, 0) {
		errs = append(errs, fmt.Errorf("fuse: %w: measurement noise %v must be positive and finite", core.ErrBadConfig, c.MeasurementNoise))
	}
	if !(c.GateSigmas > 0) || math.IsInf(c.GateSigmas, 0) {
		errs = append(errs, fmt.Errorf("fuse: %w: gate width %v must be positive and finite", core.ErrBadConfig, c.GateSigmas))
	}
	if c.StuckRun < 2 {
		errs = append(errs, fmt.Errorf("fuse: %w: stuck run %d must be at least 2", core.ErrBadConfig, c.StuckRun))
	}
	if !(c.ConfidenceFloor >= 0 && c.ConfidenceFloor <= 1) {
		errs = append(errs, fmt.Errorf("fuse: %w: confidence floor %v must be in [0, 1]", core.ErrBadConfig, c.ConfidenceFloor))
	}
	return errs
}

// withDefaults resolves the config or reports why it cannot be.
func (c Config) withDefaults() (Config, error) {
	if errs := c.Validate(); len(errs) > 0 {
		return c, errors.Join(errs...)
	}
	return c.normalize(), nil
}
