// Package fuse de-noises per-tier 1-second counter vectors before they
// reach the window aggregator, reproducing the idea of BayesPerf
// (PAPERS.md): hardware performance counters are multiplexed over a few
// physical registers, so individual reads are noisy, occasionally
// scaled wildly, stuck, or missing — but the counters are not
// independent, and a small linear-Gaussian factor graph over their
// physical couplings (IPC = instructions/cycles, bus traffic = miss
// fills + write-backs, CPU shares sum to 100%, …) lets a rejected
// reading be reconstructed from its accepted peers.
//
// A Fuser holds one scalar Kalman filter per counter (state: level m,
// variance p, running magnitude scale) plus the factor graph for its
// vector layout (LayoutFor). Each Fuse call is one deterministic
// O(counters + factors) pass with no allocation in steady state:
//
//  1. Classify every reading: non-finite values are missing; a counter
//     that has previously varied but has now repeated the same bit
//     pattern Config.StuckRun times is stuck; a reading further than
//     Config.GateSigmas predicted standard deviations from the
//     filter's one-step prediction is gated. If more than half the
//     vector would be gated at once the gate stands down for the whole
//     sample — a coherent jump across counters is a load-phase change,
//     not corruption.
//  2. Emit. Accepted readings pass through unchanged (fusion never
//     perturbs a trusted stream — on a clean trace the fused output is
//     bit-identical to the input) and update their filters. Rejected
//     readings are imputed: first from the factor graph using accepted
//     peers (exact for the collector's ratio couplings), else from the
//     filter prior; the imputed value also feeds the filter so it keeps
//     tracking through fault bursts.
//
// Every sample carries a confidence in [0, 1]: the mean over counters
// of 1 (accepted), ConfFactor (factor-imputed), or ConfPrior
// (prior-imputed). The serving layer averages it per window; windows
// below Config.ConfidenceFloor are flagged LowConfidence, walk the
// degradation ladder, and are refused by the registry's retrain guard —
// de-noising must not let a fault storm masquerade as clean training
// data.
//
// Determinism: Fuse is a pure function of the Fuser's state and its
// input — no clocks, no randomness, no map iteration — so per-site
// fused streams are byte-reproducible across goroutine interleavings,
// worker counts, shard counts, and the network ingest path, like every
// other pipeline stage.
package fuse

import (
	"fmt"
	"math"

	"hpcap/internal/core"
)

// Confidence classes attached to each fused counter.
const (
	// ConfAccepted: the raw reading was trusted and passed through.
	ConfAccepted = 1.0
	// ConfFactor: the reading was rejected but reconstructed from
	// physically coupled peers.
	ConfFactor = 0.6
	// ConfPrior: the reading was rejected and only the filter's own
	// prediction was available.
	ConfPrior = 0.3
)

// Classification codes (per counter, per sample).
const (
	clsAccept = uint8(iota)
	clsMissing
	clsStuck
	clsGated
)

// Numeric guards: state is clamped so that arbitrarily adversarial
// inputs (fuzzed ±Inf/NaN/1e308 streams) can never drive the filter to
// a non-finite emission.
const (
	maxVar   = 1e300
	maxScale = 1e150
	scaleEMA = 0.1
	lrEMA    = 0.1
)

// counterState is one scalar filter.
type counterState struct {
	m, p, scale float64
	lastBits    uint64
	run         int32
	n           int32
	varied      bool
	seen        bool
}

// Fuser fuses one stream of fixed-dimension counter vectors (one site,
// one tier). Not safe for concurrent use; the serving pipelines hold
// one per (site, tier) under the site's ingest ordering.
type Fuser struct {
	cfg   Config
	lay   *Layout
	lr    []float64 // learned factor coefficients
	lrSet []bool
	st    []counterState
	out   []float64
	cls   []uint8
}

// Result is one fused sample.
type Result struct {
	// Values is the fused vector, always finite. It is owned by the
	// Fuser and valid only until the next Fuse call; callers must copy
	// or fold it immediately.
	Values []float64
	// Confidence is the mean per-counter confidence in [0, 1].
	Confidence float64
	// Imputed is how many counters were replaced (missing, stuck, or
	// gated readings).
	Imputed int
	// Gated is how many counters the innovation gate rejected (also
	// counted in Imputed).
	Gated int
}

// New returns a Fuser for vectors of dim counters, with the factor
// graph LayoutFor(dim) selects. The configuration is validated first;
// errors wrap core.ErrBadConfig.
func New(cfg Config, dim int) (*Fuser, error) {
	rc, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if dim <= 0 {
		return nil, fmt.Errorf("fuse: %w: dimension %d must be positive", core.ErrBadConfig, dim)
	}
	lay := LayoutFor(dim)
	return &Fuser{
		cfg:   rc,
		lay:   lay,
		lr:    make([]float64, len(lay.factors)),
		lrSet: make([]bool, len(lay.factors)),
		st:    make([]counterState, dim),
		out:   make([]float64, dim),
		cls:   make([]uint8, dim),
	}, nil
}

// Config returns the resolved configuration the Fuser runs with.
func (f *Fuser) Config() Config { return f.cfg }

// Dim returns the vector dimension.
func (f *Fuser) Dim() int { return f.lay.dim }

// Reset clears the per-counter filter state (after a stream gap resets
// the site's temporal history, stale levels must not gate the fresh
// stream). Learned factor coefficients are machine constants and
// survive the reset.
func (f *Fuser) Reset() {
	for i := range f.st {
		f.st[i] = counterState{}
	}
}

// nonFinite reports NaN or ±Inf without branching on both.
func nonFinite(v float64) bool {
	return math.Float64bits(v)&0x7FF0000000000000 == 0x7FF0000000000000
}

// at returns the i-th raw reading, treating a short vector's missing
// tail as unreadable.
func (f *Fuser) at(values []float64, i int) float64 {
	if i < len(values) {
		return values[i]
	}
	return math.NaN()
}

// Fuse classifies, imputes, and filters one raw vector. values is read
// during the call and never retained or mutated; the fused vector is
// returned in Result.Values (Fuser-owned storage).
func (f *Fuser) Fuse(values []float64) Result {
	dim := f.lay.dim
	gated := 0

	// Pass 1: classify every reading against its filter.
	for i := 0; i < dim; i++ {
		y := f.at(values, i)
		cs := &f.st[i]
		if nonFinite(y) {
			f.cls[i] = clsMissing
			continue
		}
		bits := math.Float64bits(y)
		switch {
		case !cs.seen:
			cs.seen = true
			cs.run = 1
		case bits == cs.lastBits:
			if cs.run < math.MaxInt32 {
				cs.run++
			}
		default:
			cs.varied = true
			cs.run = 1
		}
		cs.lastBits = bits
		if cs.varied && int(cs.run) >= f.cfg.StuckRun {
			f.cls[i] = clsStuck
			continue
		}
		if int(cs.n) >= f.cfg.Warmup && cs.n > 0 {
			q := f.cfg.ProcessNoise * cs.scale
			r := f.cfg.MeasurementNoise * cs.scale
			s := cs.p + q*q + r*r
			d := y - cs.m
			if s > 0 && d*d > f.cfg.GateSigmas*f.cfg.GateSigmas*s {
				f.cls[i] = clsGated
				gated++
				continue
			}
		}
		f.cls[i] = clsAccept
	}

	// Coherent-jump veto: a majority of counters moving out of gate at
	// once is a regime change; trust the stream.
	if gated > dim/2 {
		for i := 0; i < dim; i++ {
			if f.cls[i] == clsGated {
				f.cls[i] = clsAccept
			}
		}
		gated = 0
	}

	// Pass 2: filter updates and emission, in counter order.
	imputed := 0
	confSum := 0.0
	for i := 0; i < dim; i++ {
		cs := &f.st[i]
		q := f.cfg.ProcessNoise * cs.scale
		cs.p += q * q
		if nonFinite(cs.p) || cs.p > maxVar {
			cs.p = maxVar
		}
		r := f.cfg.MeasurementNoise * cs.scale
		if f.cls[i] == clsAccept {
			y := values[i]
			f.fold(cs, r, y)
			ay := math.Abs(y)
			if cs.scale == 0 {
				cs.scale = ay
			} else {
				cs.scale += scaleEMA * (ay - cs.scale)
			}
			if cs.scale > maxScale {
				cs.scale = maxScale
			}
			if cs.n < math.MaxInt32 {
				cs.n++
			}
			f.out[i] = y
			confSum += ConfAccepted
			continue
		}
		imputed++
		if z, ok := f.impute(i, values); ok {
			f.fold(cs, r, z)
			f.out[i] = z
			confSum += ConfFactor
		} else {
			z := cs.m
			if z < 0 || nonFinite(z) {
				z = 0
			}
			f.out[i] = z
			confSum += ConfPrior
		}
	}

	// Inequality clamps apply to imputed values only: a reconstructed
	// reading must not violate a physical bound its accepted peer pins.
	for _, fa := range f.lay.factors {
		if fa.kind != kindClampLE {
			continue
		}
		if f.cls[fa.a] != clsAccept && f.cls[fa.b] == clsAccept && f.out[fa.a] > values[fa.b] {
			f.out[fa.a] = values[fa.b]
		}
	}

	// Learning pass: refresh learned coefficients from samples where
	// every participant was accepted.
	f.learn(values)

	return Result{
		Values:     f.out,
		Confidence: confSum / float64(dim),
		Imputed:    imputed,
		Gated:      gated,
	}
}

// fold runs one Kalman measurement update with observation z and
// measurement noise r, keeping the state finite under any input.
func (f *Fuser) fold(cs *counterState, r, z float64) {
	s := cs.p + r*r
	k := 1.0
	if s > 0 {
		k = cs.p / s
	}
	cs.m += k * (z - cs.m)
	cs.p *= 1 - k
	if nonFinite(cs.m) {
		cs.m = z
	}
	if nonFinite(cs.p) || cs.p > maxVar {
		cs.p = maxVar
	}
}

// accepted reports whether counter j was accepted this sample.
func (f *Fuser) accepted(j int) bool { return f.cls[j] == clsAccept }

// impute reconstructs counter i from the first factor whose other
// participants were all accepted and whose solution is finite.
func (f *Fuser) impute(i int, values []float64) (float64, bool) {
	for _, fi := range f.lay.byCounter[i] {
		fa := f.lay.factors[fi]
		z := math.NaN()
		switch fa.kind {
		case kindRatio: // x[a] = K·x[b]/x[c]
			switch {
			case i == fa.a && f.accepted(fa.b) && f.accepted(fa.c):
				z = fa.k * values[fa.b] / values[fa.c]
			case i == fa.b && f.accepted(fa.a) && f.accepted(fa.c):
				z = values[fa.a] * values[fa.c] / fa.k
			case i == fa.c && f.accepted(fa.a) && f.accepted(fa.b):
				z = fa.k * values[fa.b] / values[fa.a]
			}
		case kindProp: // x[a] = K·x[b]
			switch {
			case i == fa.a && f.accepted(fa.b):
				z = fa.k * values[fa.b]
			case i == fa.b && f.accepted(fa.a):
				z = values[fa.a] / fa.k
			}
		case kindLearnedProp: // x[a] = lr·x[b]
			if !f.lrSet[fi] {
				break
			}
			lr := f.lr[fi]
			switch {
			case i == fa.a && f.accepted(fa.b):
				z = lr * values[fa.b]
			case i == fa.b && f.accepted(fa.a):
				z = values[fa.a] / lr
			}
		case kindLearnedDiff: // x[a] = x[b] − lr·x[c]
			if !f.lrSet[fi] {
				break
			}
			lr := f.lr[fi]
			switch {
			case i == fa.a && f.accepted(fa.b) && f.accepted(fa.c):
				z = values[fa.b] - lr*values[fa.c]
			case i == fa.b && f.accepted(fa.a) && f.accepted(fa.c):
				z = values[fa.a] + lr*values[fa.c]
			case i == fa.c && f.accepted(fa.a) && f.accepted(fa.b):
				z = (values[fa.b] - values[fa.a]) / lr
			}
		case kindShare4: // x[a]+x[a+1]+x[a+2]+x[a+3] = K
			z = fa.k
			ok := true
			for j := fa.a; j < fa.a+4; j++ {
				if j == i {
					continue
				}
				if !f.accepted(j) {
					ok = false
					break
				}
				z -= values[j]
			}
			if !ok {
				z = math.NaN()
			}
		case kindLearnedSum2: // x[a] = lr·(x[b]+x[c])
			if !f.lrSet[fi] {
				break
			}
			lr := f.lr[fi]
			switch {
			case i == fa.a && f.accepted(fa.b) && f.accepted(fa.c):
				z = lr * (values[fa.b] + values[fa.c])
			case i == fa.b && f.accepted(fa.a) && f.accepted(fa.c):
				z = values[fa.a]/lr - values[fa.c]
			case i == fa.c && f.accepted(fa.a) && f.accepted(fa.b):
				z = values[fa.a]/lr - values[fa.b]
			}
		}
		if !nonFinite(z) {
			if z < 0 {
				z = 0
			}
			return z, true
		}
	}
	return 0, false
}

// learn refreshes the learned factor coefficients (EMA over samples
// where every participant was accepted).
func (f *Fuser) learn(values []float64) {
	for fi, fa := range f.lay.factors {
		if !fa.learned() {
			continue
		}
		ratio := math.NaN()
		switch fa.kind {
		case kindLearnedProp:
			if f.accepted(fa.a) && f.accepted(fa.b) {
				ratio = values[fa.a] / values[fa.b]
			}
		case kindLearnedDiff:
			if f.accepted(fa.a) && f.accepted(fa.b) && f.accepted(fa.c) {
				ratio = (values[fa.b] - values[fa.a]) / values[fa.c]
			}
		case kindLearnedSum2:
			if f.accepted(fa.a) && f.accepted(fa.b) && f.accepted(fa.c) {
				ratio = values[fa.a] / (values[fa.b] + values[fa.c])
			}
		}
		if nonFinite(ratio) {
			continue
		}
		if !f.lrSet[fi] {
			f.lr[fi], f.lrSet[fi] = ratio, true
		} else {
			f.lr[fi] += lrEMA * (ratio - f.lr[fi])
			if nonFinite(f.lr[fi]) {
				f.lr[fi], f.lrSet[fi] = 0, false
			}
		}
	}
}
