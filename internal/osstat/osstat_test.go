package osstat

import (
	"testing"

	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func snapshotAt(t *testing.T, mix tpcw.Mix, ebs int, warm float64) server.Snapshot {
	t.Helper()
	tb, err := server.NewTestbed(server.DefaultConfig(), tpcw.Steady(mix, ebs, warm+10))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(warm)
	return tb.RunInterval(1)
}

func index(t *testing.T, name string) int {
	t.Helper()
	for i, n := range MetricNames {
		if n == name {
			return i
		}
	}
	t.Fatalf("metric %q not found", name)
	return -1
}

func TestExactlySixtyFourMetrics(t *testing.T) {
	// The paper collects 64 OS-level metrics with Sysstat.
	if NumMetrics != 64 {
		t.Fatalf("NumMetrics = %d, want 64", NumMetrics)
	}
	if len(MetricNames) != 64 {
		t.Fatalf("len(MetricNames) = %d, want 64", len(MetricNames))
	}
	seen := map[string]bool{}
	for _, n := range MetricNames {
		if seen[n] {
			t.Errorf("duplicate metric %q", n)
		}
		seen[n] = true
	}
}

func TestVectorAlignsWithNames(t *testing.T) {
	s := snapshotAt(t, tpcw.Shopping(), 50, 60)
	c := NewCollector(server.TierApp, 512, 0, 1)
	v := c.Collect(s, 1)
	if len(v) != 64 {
		t.Fatalf("vector length = %d, want 64", len(v))
	}
}

func TestCPUPercentagesSum(t *testing.T) {
	s := snapshotAt(t, tpcw.Shopping(), 100, 90)
	c := NewCollector(server.TierApp, 512, 0, 1)
	v := c.Collect(s, 1)
	sum := v[index(t, "os_cpu_user")] + v[index(t, "os_cpu_system")] +
		v[index(t, "os_cpu_iowait")] + v[index(t, "os_cpu_idle")]
	if sum < 90 || sum > 110 {
		t.Errorf("CPU percentages sum to %v, want ≈100", sum)
	}
}

func TestLoadAverageSmoothing(t *testing.T) {
	// ldavg_1 must lag the instantaneous run queue: after a sudden load
	// rise, runq > ldavg_1 > ldavg_15.
	tb, err := server.NewTestbed(server.DefaultConfig(), tpcw.Schedule{Phases: []tpcw.Phase{
		{Mix: tpcw.Ordering(), EBs: 10, Duration: 300},
		{Mix: tpcw.Ordering(), EBs: 700, Duration: 300},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	c := NewCollector(server.TierApp, 512, 0, 1)
	var v []float64
	for i := 0; i < 360; i++ {
		v = c.Collect(tb.RunInterval(1), 1)
	}
	runq := v[index(t, "os_runq_sz")]
	ld1 := v[index(t, "os_ldavg_1")]
	ld15 := v[index(t, "os_ldavg_15")]
	if runq <= ld1 {
		t.Errorf("60 s after a surge, runq (%v) should exceed ldavg_1 (%v)", runq, ld1)
	}
	if ld1 <= ld15 {
		t.Errorf("ldavg_1 (%v) should exceed ldavg_15 (%v) shortly after a surge", ld1, ld15)
	}
}

func TestAppTierLooksIdleUnderDBOverload(t *testing.T) {
	// The paper's key asymmetry: under browsing-mix (DB bottleneck)
	// overload, the app machine's CPU and run-queue metrics look idle
	// because its threads are blocked, not runnable.
	s := snapshotAt(t, tpcw.Browsing(), 450, 500)
	c := NewCollector(server.TierApp, 512, 0, 1)
	v := c.Collect(s, 1)
	if idle := v[index(t, "os_cpu_idle")]; idle < 50 {
		t.Errorf("app cpu_idle = %v%%, want mostly idle under DB overload", idle)
	}
	if runq := v[index(t, "os_runq_sz")]; runq > 20 {
		t.Errorf("app runq = %v, want short under DB overload", runq)
	}

	db := NewCollector(server.TierDB, 1024, 0, 1)
	dv := db.Collect(s, 1)
	if idle := dv[index(t, "os_cpu_idle")]; idle > 10 {
		t.Errorf("db cpu_idle = %v%%, want pegged", idle)
	}
}

func TestMemoryMetricsNearlyConstant(t *testing.T) {
	// Preallocated JVM heap / InnoDB buffer pool: memory metrics must not
	// leak the thrashing signal.
	light := snapshotAt(t, tpcw.Browsing(), 50, 60)
	heavy := snapshotAt(t, tpcw.Browsing(), 450, 500)
	c := NewCollector(server.TierDB, 1024, 0, 1)
	lv := c.Collect(light, 1)
	c2 := NewCollector(server.TierDB, 1024, 0, 1)
	hv := c2.Collect(heavy, 1)
	i := index(t, "os_kbmemused")
	rel := (hv[i] - lv[i]) / lv[i]
	if rel > 0.02 || rel < -0.02 {
		t.Errorf("kbmemused moved %.1f%% between light and overload, want ≈constant", rel*100)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	s := snapshotAt(t, tpcw.Shopping(), 60, 60)
	a := NewCollector(server.TierApp, 512, 0.05, 9)
	b := NewCollector(server.TierApp, 512, 0.05, 9)
	va, vb := a.Collect(s, 1), b.Collect(s, 1)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("same seed diverged at %s", MetricNames[i])
		}
	}
}

func TestNoNegativeMetrics(t *testing.T) {
	s := snapshotAt(t, tpcw.Ordering(), 600, 400)
	c := NewCollector(server.TierApp, 512, 0.3, 4)
	for trial := 0; trial < 100; trial++ {
		for i, v := range c.Collect(s, 1) {
			if v < 0 {
				t.Fatalf("metric %s negative: %v", MetricNames[i], v)
			}
		}
	}
}
