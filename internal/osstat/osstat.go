// Package osstat synthesizes the Sysstat view of the testbed: the 64
// OS-level metrics the paper collects for comparison against hardware
// counters (§IV.B). The metrics are derived honestly from what a 2.6-kernel
// /proc interface can actually observe on each machine:
//
//   - CPU time split, run queue and load averages see only *runnable*
//     threads — an application tier whose servlet threads are blocked on a
//     slow database looks idle here, which is why OS metrics struggle to
//     see DB-bottleneck overload from the front end.
//   - Memory metrics are nearly constant: the JVM heap and the InnoDB
//     buffer pool are preallocated, so CPU-cache-level thrashing is
//     invisible to the OS — the paper's central argument for hardware
//     counters.
//   - Network, socket and paging metrics follow request flows, which in a
//     closed-loop client population track completed throughput and thus
//     saturate at the same value for "busy but healthy" and "overloaded".
package osstat

import (
	"math"

	"hpcap/internal/server"
	"hpcap/internal/sim"
)

// MetricNames lists the 64 Sysstat metrics in a fixed order; vectors
// returned by Collector.Collect use the same order.
var MetricNames = []string{
	// CPU (7)
	"os_cpu_user", "os_cpu_system", "os_cpu_iowait", "os_cpu_idle",
	"os_cpu_nice", "os_cpu_steal", "os_cpu_irq",
	// Load and processes (6)
	"os_runq_sz", "os_plist_sz", "os_ldavg_1", "os_ldavg_5", "os_ldavg_15",
	"os_procs_blocked",
	// Kernel activity (4)
	"os_cswch_s", "os_intr_s", "os_forks_s", "os_softirq_s",
	// Memory (10)
	"os_kbmemfree", "os_kbmemused", "os_pct_memused", "os_kbbuffers",
	"os_kbcached", "os_kbcommit", "os_pct_commit", "os_kbactive",
	"os_kbinact", "os_kbdirty",
	// Swap (4)
	"os_kbswpfree", "os_kbswpused", "os_pswpin_s", "os_pswpout_s",
	// Paging (6)
	"os_pgpgin_s", "os_pgpgout_s", "os_fault_s", "os_majflt_s",
	"os_pgfree_s", "os_pgscank_s",
	// Disk (5)
	"os_tps", "os_rtps", "os_wtps", "os_bread_s", "os_bwrtn_s",
	// Network interface (8)
	"os_rxpck_s", "os_txpck_s", "os_rxkb_s", "os_txkb_s", "os_rxerr_s",
	"os_txerr_s", "os_rxdrop_s", "os_coll_s",
	// Sockets (6)
	"os_totsck", "os_tcpsck", "os_udpsck", "os_rawsck", "os_ip_frag",
	"os_tcp_tw",
	// TCP (6)
	"os_tcp_active_s", "os_tcp_passive_s", "os_tcp_iseg_s", "os_tcp_oseg_s",
	"os_tcp_retrans_s", "os_tcp_rst_s",
	// Files (2)
	"os_file_nr", "os_inode_nr",
}

// NumMetrics is the number of OS-level metrics (64, as in the paper).
var NumMetrics = len(MetricNames)

// Collector converts interval telemetry into the Sysstat metric vector for
// one machine. It is stateful: load averages and TIME_WAIT socket counts
// decay across samples like the kernel's.
type Collector struct {
	tier  server.TierID
	memKB float64 // machine RAM
	noise float64 // relative measurement noise
	rng   *sim.Source

	ld1, ld5, ld15 float64
	timeWait       float64
}

// NewCollector returns an OS metric collector for a tier. memMB is the
// machine's RAM (the paper's app server had 512 MB, the DB server 1 GB);
// noise is the relative measurement noise.
func NewCollector(tier server.TierID, memMB float64, noise float64, seed int64) *Collector {
	return &Collector{
		tier:  tier,
		memKB: memMB * 1024,
		noise: noise,
		rng:   sim.NewSource(seed),
	}
}

// Tier returns the tier this collector observes.
func (c *Collector) Tier() server.TierID { return c.tier }

// Names returns the metric names, aligned with Collect's vector.
func (c *Collector) Names() []string { return MetricNames }

func (c *Collector) jitter(v float64) float64 {
	if c.noise <= 0 {
		return v
	}
	out := v * c.rng.Normal(1, c.noise)
	if out < 0 {
		out = 0
	}
	return out
}

// noisefloor returns non-negative background noise around a tiny mean, for
// metrics that are essentially zero on this testbed.
func (c *Collector) noisefloor(mean float64) float64 {
	v := c.rng.Exp(mean)
	return v
}

// Collect derives the 64 OS metrics for one sampling interval of dt
// seconds.
func (c *Collector) Collect(s server.Snapshot, dt float64) []float64 {
	return c.CollectTo(nil, s, dt)
}

// CollectTo derives the 64 OS metrics into dst (metrics.AppendCollector),
// reallocating only when dst is too small.
func (c *Collector) CollectTo(dst []float64, s server.Snapshot, dt float64) []float64 {
	ts := s.Tiers[c.tier]

	busy := ts.BusySeconds / dt
	if busy > 1 {
		busy = 1
	}
	cs := ts.CtxSwitches / dt
	// System time share grows with switching activity.
	sysShare := 0.15 + 0.25*math.Min(1, cs/40000)
	cpuSys := busy * sysShare
	cpuUser := busy - cpuSys
	cpuIOWait := c.noisefloor(0.004)
	cpuIdle := 1 - busy - cpuIOWait
	if cpuIdle < 0 {
		cpuIdle = 0
	}

	// The run queue is sampled at an instant, like sar's runq-sz: the
	// true sub-second queue is bursty (arrivals cluster, quanta expire in
	// packs), so a 1 Hz snapshot carries heavy dispersion that the
	// 30-second window average only partially smooths.
	runq := float64(ts.RunQueue) * c.rng.LogNormal(1, 0.55)
	// Load averages: kernel-style exponential decay over 1/5/15 minutes.
	decay := func(avg *float64, window float64) float64 {
		k := math.Exp(-dt / window)
		*avg = *avg*k + runq*(1-k)
		return *avg
	}
	ld1 := decay(&c.ld1, 60)
	ld5 := decay(&c.ld5, 300)
	ld15 := decay(&c.ld15, 900)

	// Request flows visible to this machine. The app tier sees client
	// traffic; the DB tier sees one query per burst.
	var reqIn, reqOut, established float64
	switch c.tier {
	case server.TierApp:
		reqIn = float64(s.Arrivals) / dt
		reqOut = float64(s.Completions) / dt
		// Emulated browsers keep persistent HTTP/1.1 connections, so the
		// established-socket count follows the client population (offered
		// load), not the in-flight backlog.
		established = float64(s.ActiveEBs) + 26
	default:
		reqIn = float64(ts.Bursts) / dt
		reqOut = reqIn
		// The JDBC pool holds its connections open whether or not they
		// are executing queries.
		established = 8 + 6
	}
	// TIME_WAIT sockets persist for 60 s.
	k := math.Exp(-dt / 60)
	c.timeWait = c.timeWait*k + reqOut*60*(1-k)

	// Packet rates: requests are a handful of packets, responses a page's
	// worth.
	rxpck := reqIn*4 + reqOut*2
	txpck := reqOut*9 + reqIn*2
	rxkb := reqIn*1.1 + reqOut*0.4
	txkb := reqOut*11 + reqIn*0.5

	// Preallocated server memory: JVM heap / InnoDB buffer pool.
	var used, cached, plist float64
	switch c.tier {
	case server.TierApp:
		used = 400 * 1024 // kB: JVM heap + OS
		cached = 60 * 1024
		plist = 205
	default:
		used = 780 * 1024 // InnoDB buffer pool dominates
		cached = 160 * 1024
		plist = 72
	}
	free := c.memKB - used

	faults := reqIn*25 + 40
	diskWrites := reqOut * 0.9 // log flushes, commits
	diskReads := c.noisefloor(0.4)
	intr := 1000 + rxpck + txpck + diskWrites // timer HZ + devices

	if cap(dst) < NumMetrics {
		dst = make([]float64, NumMetrics)
	}
	v := dst[:NumMetrics]
	// CPU (7)
	v[0] = c.jitter(cpuUser * 100)
	v[1] = c.jitter(cpuSys * 100)
	v[2] = cpuIOWait * 100
	v[3] = c.jitter(cpuIdle * 100)
	v[4] = c.noisefloor(0.01)
	v[5] = 0
	v[6] = c.jitter(0.2 + rxpck/500)
	// Load and processes (6)
	v[7] = c.jitter(runq)
	v[8] = c.jitter(plist)
	v[9] = c.jitter(ld1)
	v[10] = c.jitter(ld5)
	v[11] = c.jitter(ld15)
	v[12] = c.noisefloor(0.05)
	// Kernel activity (4)
	v[13] = c.jitter(cs)
	v[14] = c.jitter(intr)
	v[15] = c.noisefloor(0.3)
	v[16] = c.jitter(rxpck*0.8 + 120)
	// Memory (10)
	v[17] = c.jitter(free)
	v[18] = c.jitter(used)
	v[19] = c.jitter(used / c.memKB * 100)
	v[20] = c.jitter(24 * 1024)
	v[21] = c.jitter(cached)
	v[22] = c.jitter(used * 1.3)
	v[23] = c.jitter(used * 1.3 / c.memKB * 100)
	v[24] = c.jitter(used * 0.7)
	v[25] = c.jitter(used * 0.2)
	v[26] = c.jitter(diskWrites*4 + 60)
	// Swap (4)
	v[27] = 1024 * 1024
	v[28] = c.noisefloor(3)
	v[29] = 0
	v[30] = 0
	// Paging (6)
	v[31] = c.jitter(diskReads * 6)
	v[32] = c.jitter(diskWrites * 7)
	v[33] = c.jitter(faults)
	v[34] = c.noisefloor(0.02)
	v[35] = c.jitter(faults * 1.1)
	v[36] = 0
	// Disk (5)
	v[37] = c.jitter(diskWrites + diskReads)
	v[38] = c.jitter(diskReads)
	v[39] = c.jitter(diskWrites)
	v[40] = c.jitter(diskReads * 14)
	v[41] = c.jitter(diskWrites * 16)
	// Network (8)
	v[42] = c.jitter(rxpck)
	v[43] = c.jitter(txpck)
	v[44] = c.jitter(rxkb)
	v[45] = c.jitter(txkb)
	v[46] = 0
	v[47] = 0
	v[48] = c.noisefloor(0.02)
	v[49] = 0
	// Sockets (6)
	v[50] = c.jitter(established + c.timeWait + 95)
	v[51] = c.jitter(established + 12)
	v[52] = c.jitter(6)
	v[53] = 0
	v[54] = c.noisefloor(0.05)
	v[55] = c.jitter(c.timeWait)
	// TCP (6)
	v[56] = c.jitter(0.4 + reqIn*0.02) // outbound connects (pooled)
	v[57] = c.jitter(reqIn)            // passive opens: one per client request
	v[58] = c.jitter(rxpck * 0.95)
	v[59] = c.jitter(txpck * 0.95)
	v[60] = c.noisefloor(0.15)
	v[61] = c.noisefloor(0.05)
	// Files (2)
	v[62] = c.jitter(1800 + established*2)
	v[63] = c.jitter(52000)
	return v
}
