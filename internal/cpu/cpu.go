// Package cpu synthesizes the hardware-performance-counter view of the
// testbed, standing in for the PerfCtr kernel patch and the Pentium
// NetBurst event counters used by the paper (§IV.B). The collector reads
// each tier's per-interval execution telemetry and produces the counter
// metrics the paper's synopses consume: instruction and cycle rates, IPC,
// L2 reference/miss behaviour, stall cycles, ITLB misses, branch statistics
// and bus traffic.
//
// Counters are sampled in "global mode": they reflect everything executing
// on the machine, not a single process. Readings carry a small
// multiplicative measurement noise, as real counter sampling does (interval
// jitter, counter multiplexing).
package cpu

import (
	"hpcap/internal/server"
	"hpcap/internal/sim"
)

// MetricNames lists the hardware counter metrics in a fixed order; the
// vectors returned by Collector.Collect use the same order.
var MetricNames = []string{
	"hpc_instr_rate",        // retired instructions per second
	"hpc_cycle_rate",        // unhalted cycles per second
	"hpc_ipc",               // instructions per unhalted cycle
	"hpc_cpi",               // cycles per instruction
	"hpc_busy_frac",         // unhalted cycles / clock rate
	"hpc_l1d_ref_rate",      // L1D references per second
	"hpc_l2_ref_rate",       // L2 references (L1 misses) per second
	"hpc_l2_miss_rate",      // L2 misses per second
	"hpc_l2_miss_ratio",     // L2 misses / L2 references
	"hpc_l2_mpki",           // L2 misses per kilo-instruction
	"hpc_stall_rate",        // stall cycles per second
	"hpc_stall_frac",        // stall cycles / unhalted cycles
	"hpc_itlb_miss_rate",    // ITLB misses per second
	"hpc_itlb_mpki",         // ITLB misses per kilo-instruction
	"hpc_branch_rate",       // branch instructions per second
	"hpc_branch_miss_ratio", // mispredicted / retired branches
	"hpc_bus_access_rate",   // front-side-bus transactions per second
	"hpc_bus_util",          // bus transactions × line size / bandwidth
	"hpc_mem_per_cycle",     // L2 references per unhalted cycle
}

// NumMetrics is the number of hardware counter metrics.
var NumMetrics = len(MetricNames)

// Collector converts one tier's interval telemetry into hardware counter
// metrics.
type Collector struct {
	tier    server.TierID
	machine server.MachineConfig
	noise   float64 // relative measurement noise (std dev)
	rng     *sim.Source
}

// NewCollector returns a counter collector for the given tier. noise is the
// relative standard deviation of measurement error applied to every raw
// counter (0.02 ≈ real sampling jitter); seed makes it deterministic.
func NewCollector(tier server.TierID, machine server.MachineConfig, noise float64, seed int64) *Collector {
	return &Collector{
		tier:    tier,
		machine: machine,
		noise:   noise,
		rng:     sim.NewSource(seed),
	}
}

// Tier returns the tier this collector observes.
func (c *Collector) Tier() server.TierID { return c.tier }

// Names returns the metric names, aligned with Collect's vector.
func (c *Collector) Names() []string { return MetricNames }

// jitter applies multiplicative measurement noise to a raw counter value.
func (c *Collector) jitter(v float64) float64 {
	if c.noise <= 0 {
		return v
	}
	out := v * c.rng.Normal(1, c.noise)
	if out < 0 {
		out = 0
	}
	return out
}

// Collect derives the counter metrics for one sampling interval of length
// dt seconds.
func (c *Collector) Collect(s server.Snapshot, dt float64) []float64 {
	return c.CollectTo(nil, s, dt)
}

// CollectTo derives the counter metrics into dst (metrics.AppendCollector),
// reallocating only when dst is too small.
func (c *Collector) CollectTo(dst []float64, s server.Snapshot, dt float64) []float64 {
	ts := s.Tiers[c.tier]

	// Raw counters with sampling noise. The L1D reference count is
	// modeled as a fixed multiple of instructions; L2 references are the
	// tier-reported L1 misses.
	instr := c.jitter(ts.Instructions)
	cycles := c.jitter(ts.Cycles)
	l2ref := c.jitter(ts.L2Refs)
	l2miss := c.jitter(ts.L2Misses)
	itlb := c.jitter(ts.ITLBMisses)
	branches := c.jitter(ts.Branches)
	branchMiss := c.jitter(ts.BranchMiss)
	l1ref := c.jitter(ts.Instructions * 0.31)

	ideal := instr / c.machine.BaseIPC
	stall := cycles - ideal
	if stall < 0 {
		stall = 0
	}
	// Bus transactions: L2 miss fills plus write-backs (~35% of fills).
	bus := l2miss * 1.35

	if cap(dst) < NumMetrics {
		dst = make([]float64, NumMetrics)
	}
	v := dst[:NumMetrics]
	v[0] = instr / dt
	v[1] = cycles / dt
	v[2] = ratio(instr, cycles)
	v[3] = ratio(cycles, instr)
	v[4] = cycles / dt / c.machine.ClockHz
	v[5] = l1ref / dt
	v[6] = l2ref / dt
	v[7] = l2miss / dt
	v[8] = ratio(l2miss, l2ref)
	v[9] = ratio(l2miss, instr) * 1000
	v[10] = stall / dt
	v[11] = ratio(stall, cycles)
	v[12] = itlb / dt
	v[13] = ratio(itlb, instr) * 1000
	v[14] = branches / dt
	v[15] = ratio(branchMiss, branches)
	v[16] = bus / dt
	// 64-byte lines over a 6.4 GB/s front-side bus.
	v[17] = bus * 64 / dt / 6.4e9
	v[18] = ratio(l2ref, cycles)
	return v
}

// ratio returns a/b, or 0 when b is 0 (idle interval).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
