package cpu

import (
	"testing"

	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func snapshotAt(t *testing.T, mix tpcw.Mix, ebs int, warm, settle float64) (server.Snapshot, server.Config) {
	t.Helper()
	cfg := server.DefaultConfig()
	tb, err := server.NewTestbed(cfg, tpcw.Steady(mix, ebs, warm+settle+10))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(warm + settle)
	return tb.RunInterval(1), cfg
}

func TestNamesAlignWithVector(t *testing.T) {
	s, cfg := snapshotAt(t, tpcw.Shopping(), 50, 60, 0)
	c := NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	v := c.Collect(s, 1)
	if len(v) != len(c.Names()) {
		t.Fatalf("vector length %d != names length %d", len(v), len(c.Names()))
	}
	if len(v) != NumMetrics {
		t.Fatalf("NumMetrics = %d, vector = %d", NumMetrics, len(v))
	}
}

func TestMetricNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range MetricNames {
		if seen[n] {
			t.Errorf("duplicate metric name %q", n)
		}
		seen[n] = true
	}
}

func index(t *testing.T, name string) int {
	t.Helper()
	for i, n := range MetricNames {
		if n == name {
			return i
		}
	}
	t.Fatalf("metric %q not found", name)
	return -1
}

func TestIPCConsistency(t *testing.T) {
	s, cfg := snapshotAt(t, tpcw.Shopping(), 80, 90, 0)
	c := NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	v := c.Collect(s, 1)
	ipc := v[index(t, "hpc_ipc")]
	cpi := v[index(t, "hpc_cpi")]
	if ipc <= 0 || ipc > cfg.App.Machine.BaseIPC+1e-9 {
		t.Errorf("IPC = %v, want in (0, %v]", ipc, cfg.App.Machine.BaseIPC)
	}
	if cpi <= 0 {
		t.Fatalf("CPI = %v", cpi)
	}
	if got := ipc * cpi; got < 0.99 || got > 1.01 {
		t.Errorf("IPC×CPI = %v, want ≈1", got)
	}
}

func TestStallFractionBounds(t *testing.T) {
	s, cfg := snapshotAt(t, tpcw.Shopping(), 80, 90, 0)
	c := NewCollector(server.TierDB, cfg.DB.Machine, 0, 1)
	v := c.Collect(s, 1)
	sf := v[index(t, "hpc_stall_frac")]
	if sf < 0 || sf >= 1 {
		t.Errorf("stall fraction = %v, want [0, 1)", sf)
	}
	mr := v[index(t, "hpc_l2_miss_ratio")]
	if mr < 0 || mr >= 1 {
		t.Errorf("miss ratio = %v, want [0, 1)", mr)
	}
}

func TestIdleIntervalProducesZeros(t *testing.T) {
	cfg := server.DefaultConfig()
	cfg.App.BackgroundRate = 0 // a truly idle machine: no housekeeping either
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), 0, 100))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	s := tb.RunInterval(5)
	c := NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	for i, v := range c.Collect(s, 5) {
		if v != 0 {
			t.Errorf("idle metric %s = %v, want 0", MetricNames[i], v)
		}
	}
}

func TestOverloadSignatureOrdering(t *testing.T) {
	// Under ordering-mix overload the app tier's IPC must drop and its L2
	// miss ratio, stall fraction and ITLB rate must rise versus healthy
	// operation — the counter signature the paper's synopses learn.
	cfg := server.DefaultConfig()
	healthy, _ := snapshotAt(t, tpcw.Ordering(), 250, 200, 0)
	overloaded, _ := snapshotAt(t, tpcw.Ordering(), 600, 400, 0)

	c := NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	hv := c.Collect(healthy, 1)
	ov := c.Collect(overloaded, 1)

	if ov[index(t, "hpc_ipc")] >= hv[index(t, "hpc_ipc")] {
		t.Errorf("IPC did not drop: healthy %v, overloaded %v",
			hv[index(t, "hpc_ipc")], ov[index(t, "hpc_ipc")])
	}
	if ov[index(t, "hpc_l2_miss_ratio")] <= hv[index(t, "hpc_l2_miss_ratio")] {
		t.Errorf("miss ratio did not rise: healthy %v, overloaded %v",
			hv[index(t, "hpc_l2_miss_ratio")], ov[index(t, "hpc_l2_miss_ratio")])
	}
	if ov[index(t, "hpc_stall_frac")] <= hv[index(t, "hpc_stall_frac")] {
		t.Errorf("stall fraction did not rise")
	}
	if ov[index(t, "hpc_itlb_mpki")] <= hv[index(t, "hpc_itlb_mpki")] {
		t.Errorf("ITLB MPKI did not rise")
	}
}

func TestNoiseIsDeterministicPerSeed(t *testing.T) {
	s, cfg := snapshotAt(t, tpcw.Shopping(), 50, 60, 0)
	a := NewCollector(server.TierApp, cfg.App.Machine, 0.05, 7)
	b := NewCollector(server.TierApp, cfg.App.Machine, 0.05, 7)
	va, vb := a.Collect(s, 1), b.Collect(s, 1)
	for i := range va {
		if va[i] != vb[i] {
			t.Fatalf("same seed diverged at %s", MetricNames[i])
		}
	}
	cNoisier := NewCollector(server.TierApp, cfg.App.Machine, 0.05, 8)
	vc := cNoisier.Collect(s, 1)
	same := true
	for i := range va {
		if va[i] != vc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestNoiseNeverNegative(t *testing.T) {
	s, cfg := snapshotAt(t, tpcw.Shopping(), 50, 60, 0)
	c := NewCollector(server.TierApp, cfg.App.Machine, 0.5, 3)
	for trial := 0; trial < 200; trial++ {
		for i, v := range c.Collect(s, 1) {
			if v < 0 {
				t.Fatalf("metric %s went negative: %v", MetricNames[i], v)
			}
		}
	}
}
