// Package core assembles the paper's primary contribution: the two-level
// coordinated website capacity measurement system (§III). A Monitor holds
// one performance synopsis per (training workload × tier) combination and a
// coordinated two-level predictor on top; online, each 30-second window of
// per-tier metric vectors flows through every synopsis to form a Global
// Pattern Vector, and the coordinated predictor infers the system-wide
// overload state and — when overloaded — the bottleneck tier.
package core

import (
	"errors"
	"fmt"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
)

// Observation is one aggregated window of per-tier metric vectors at the
// monitor's metric level, in the full collector layout.
type Observation struct {
	Time    float64
	Vectors [server.NumTiers][]float64
}

// LabeledWindow is one training window: the observation plus its offline
// ground truth.
type LabeledWindow struct {
	Observation
	Overload   int
	Bottleneck server.TierID
}

// TrainingSet is the labeled trace of one training workload (e.g. the
// browsing ramp-up plus spike run).
type TrainingSet struct {
	Workload string
	Windows  []LabeledWindow
}

// Prediction is the monitor's per-window output.
type Prediction struct {
	Overload bool
	// Bottleneck is meaningful only when Overload is true.
	Bottleneck server.TierID
	// GPV is the individual synopses' votes, for diagnostics.
	GPV []int
}

// Config tunes monitor training.
type Config struct {
	// Learner builds the synopses; zero value is invalid — callers pick
	// one of the four (the paper recommends TAN).
	Learner ml.Learner
	// Synopsis tunes attribute selection.
	Synopsis synopsis.Config
	// Coordinator tunes the two-level predictor (h=3, δ=5, optimistic by
	// default, as in §V.C).
	Coordinator predictor.Config
	// TrainPasses is how many passes over the training traces the
	// coordinated predictor takes; zero selects 12. The GPT×LHT cells
	// partition the training instances finely, so saturating counters
	// need several passes to accumulate past the ±δ confidence band.
	TrainPasses int
}

// Monitor is the trained capacity measurement system for one metric level.
type Monitor struct {
	Level    metrics.Level
	Synopses []*synopsis.Synopsis

	coordinator *predictor.Predictor
}

// Train builds a monitor: one synopsis per (training set × tier), then the
// coordinated predictor over the training traces in order.
func Train(level metrics.Level, names []string, sets []TrainingSet, cfg Config) (*Monitor, error) {
	if cfg.Learner.New == nil {
		return nil, errors.New("core: Config.Learner is required")
	}
	if len(sets) == 0 {
		return nil, errors.New("core: no training sets")
	}
	passes := cfg.TrainPasses
	if passes <= 0 {
		passes = 12
	}

	m := &Monitor{Level: level}
	for _, set := range sets {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			d := ml.NewDataset(names)
			for _, w := range set.Windows {
				if err := d.Add(w.Vectors[tier], w.Overload); err != nil {
					return nil, fmt.Errorf("core: training set %s: %w", set.Workload, err)
				}
			}
			syn, err := synopsis.Build(set.Workload, tier, level, cfg.Learner, d, cfg.Synopsis)
			if err != nil {
				return nil, fmt.Errorf("core: build synopsis %s/%s: %w", set.Workload, tier, err)
			}
			m.Synopses = append(m.Synopses, syn)
		}
	}

	coord, err := predictor.New(len(m.Synopses), server.NumTiers, cfg.Coordinator)
	if err != nil {
		return nil, err
	}
	m.coordinator = coord
	for pass := 0; pass < passes; pass++ {
		for _, set := range sets {
			coord.ResetHistory()
			for _, w := range set.Windows {
				gpv := m.gpv(w.Observation)
				if err := coord.Train(gpv, w.Overload, int(w.Bottleneck)); err != nil {
					return nil, err
				}
			}
		}
	}
	coord.ResetHistory()
	return m, nil
}

// gpv runs every synopsis over the observation.
func (m *Monitor) gpv(obs Observation) []int {
	gpv := make([]int, len(m.Synopses))
	for i, syn := range m.Synopses {
		gpv[i] = syn.Predict(obs.Vectors[syn.Tier])
	}
	return gpv
}

// Predict infers the system state for one window. The monitor keeps the
// coordinated predictor's temporal history, so observations must arrive in
// trace order; call ResetHistory between unrelated traces.
func (m *Monitor) Predict(obs Observation) (Prediction, error) {
	gpv := m.gpv(obs)
	over, bott, err := m.coordinator.Predict(gpv)
	if err != nil {
		return Prediction{}, err
	}
	p := Prediction{Overload: over == 1, GPV: gpv}
	if over == 1 {
		p.Bottleneck = server.TierID(bott)
	}
	return p, nil
}

// Feedback lets callers reinforce the last prediction with observed truth —
// online adaptation beyond the paper's offline training.
func (m *Monitor) Feedback(overload bool, bottleneck server.TierID) {
	o := 0
	if overload {
		o = 1
	}
	m.coordinator.Feedback(o, int(bottleneck))
}

// ResetHistory clears the coordinated predictor's temporal state (between
// traces or after long gaps).
func (m *Monitor) ResetHistory() { m.coordinator.ResetHistory() }

// Coordinator exposes the two-level predictor (diagnostics, ablations).
func (m *Monitor) Coordinator() *predictor.Predictor { return m.coordinator }

// SynopsisByKey finds a synopsis by its Key(), or nil.
func (m *Monitor) SynopsisByKey(key string) *synopsis.Synopsis {
	for _, s := range m.Synopses {
		if s.Key() == key {
			return s
		}
	}
	return nil
}

// DefaultSynopsisConfig returns the paper's synopsis construction settings
// with a deterministic seed.
func DefaultSynopsisConfig(seed int64) synopsis.Config {
	return synopsis.Config{Selection: featsel.Config{Seed: seed}}
}
