// Package core assembles the paper's primary contribution: the two-level
// coordinated website capacity measurement system (§III). A Monitor holds
// one performance synopsis per (training workload × tier) combination and a
// coordinated two-level predictor on top; online, each 30-second window of
// per-tier metric vectors flows through every synopsis to form a Global
// Pattern Vector, and the coordinated predictor infers the system-wide
// overload state and — when overloaded — the bottleneck tier.
//
// A trained Monitor is safe for concurrent use: the synopses and the
// predictor's trained tables are read-mostly shared state, and each
// prediction stream's temporal history lives in a Session (NewSession).
// Sessions are the primary prediction API — one per monitored stream. The
// Monitor's own Predict/Feedback/ResetHistory are single-stream
// compatibility shims that serialize every caller on an internal default
// session; prefer NewSession in new code.
//
// Predict reports failures through typed sentinel errors (ErrUntrained,
// ErrDimensionMismatch) and Train through ErrBadConfig, so callers can
// branch with errors.Is instead of string matching.
package core

import (
	"context"
	"errors"
	"fmt"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/parallel"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
)

// Observation is one aggregated window of per-tier metric vectors at the
// monitor's metric level, in the full collector layout.
type Observation struct {
	Time    float64
	Vectors [server.NumTiers][]float64
}

// LabeledWindow is one training window: the observation plus its offline
// ground truth.
type LabeledWindow struct {
	Observation
	Overload   int
	Bottleneck server.TierID
}

// TrainingSet is the labeled trace of one training workload (e.g. the
// browsing ramp-up plus spike run).
type TrainingSet struct {
	Workload string
	Windows  []LabeledWindow
}

// Prediction is the monitor's per-window output.
type Prediction struct {
	Overload bool
	// Bottleneck is meaningful only when Overload is true.
	Bottleneck server.TierID
	// GPV is the individual synopses' votes, for diagnostics.
	GPV []int
}

// Config tunes monitor training.
type Config struct {
	// Learner builds the synopses; zero value is invalid — callers pick
	// one of the four (the paper recommends TAN).
	Learner ml.Learner
	// Synopsis tunes attribute selection.
	Synopsis synopsis.Config
	// Coordinator tunes the two-level predictor (h=3, δ=5, optimistic by
	// default, as in §V.C).
	Coordinator predictor.Config
	// TrainPasses is how many passes over the training traces the
	// coordinated predictor takes; zero selects 12. The GPT×LHT cells
	// partition the training instances finely, so saturating counters
	// need several passes to accumulate past the ±δ confidence band.
	TrainPasses int
	// Workers bounds the goroutines building the (training set × tier)
	// synopses, which are independent of each other; values below 2 train
	// sequentially. The result is identical either way — synopses are
	// assembled in the sequential loop order.
	Workers int
}

// DefaultConfig returns the training knobs at their defaults. Learner
// stays zero — there is no default learner; callers pick one of the
// four (the paper recommends TAN).
func DefaultConfig() Config {
	return Config{TrainPasses: 12}
}

// withDefaults resolves zero fields to DefaultConfig.
func (c Config) withDefaults() Config {
	if c.TrainPasses <= 0 {
		c.TrainPasses = DefaultConfig().TrainPasses
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping ErrBadConfig. The nested synopsis and
// coordinator configs are validated too, their violations wrapped so
// one errors.Is check covers the whole training configuration.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.Learner.New == nil {
		errs = append(errs, fmt.Errorf("core: %w: Config.Learner is required", ErrBadConfig))
	}
	for _, err := range c.Synopsis.Validate() {
		errs = append(errs, fmt.Errorf("core: %w: %v", ErrBadConfig, err))
	}
	for _, err := range c.Coordinator.Validate() {
		errs = append(errs, fmt.Errorf("core: %w: %v", ErrBadConfig, err))
	}
	return errs
}

// Monitor is the trained capacity measurement system for one metric level.
type Monitor struct {
	Level    metrics.Level
	Synopses []*synopsis.Synopsis

	coordinator *predictor.Predictor
	// dim is the trained metric-vector length per tier; observations are
	// validated against it before touching the synopses.
	dim int
}

// Train builds a monitor: one synopsis per (training set × tier), then the
// coordinated predictor over the training traces in order.
func Train(level metrics.Level, names []string, sets []TrainingSet, cfg Config) (*Monitor, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("core: %w: no training sets", ErrBadConfig)
	}
	passes := cfg.withDefaults().TrainPasses

	m := &Monitor{Level: level, dim: len(names)}
	buildOne := func(set TrainingSet, tier server.TierID) (*synopsis.Synopsis, error) {
		d := ml.NewDataset(names)
		for _, w := range set.Windows {
			if err := d.Add(w.Vectors[tier], w.Overload); err != nil {
				return nil, fmt.Errorf("core: training set %s: %w", set.Workload, err)
			}
		}
		syn, err := synopsis.Build(set.Workload, tier, level, cfg.Learner, d, cfg.Synopsis)
		if err != nil {
			return nil, fmt.Errorf("core: build synopsis %s/%s: %w", set.Workload, tier, err)
		}
		return syn, nil
	}
	if cfg.Workers > 1 {
		syns, err := parallel.Map(context.Background(), len(sets)*int(server.NumTiers), cfg.Workers,
			func(i int) (*synopsis.Synopsis, error) {
				return buildOne(sets[i/int(server.NumTiers)], server.TierID(i%int(server.NumTiers)))
			})
		if err != nil {
			return nil, err
		}
		m.Synopses = syns
	} else {
		for _, set := range sets {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				syn, err := buildOne(set, tier)
				if err != nil {
					return nil, err
				}
				m.Synopses = append(m.Synopses, syn)
			}
		}
	}

	coord, err := predictor.New(len(m.Synopses), server.NumTiers, cfg.Coordinator)
	if err != nil {
		return nil, fmt.Errorf("core: %w: %w", ErrBadConfig, err)
	}
	m.coordinator = coord
	scratch := make([]float64, m.maxAttrs())
	for pass := 0; pass < passes; pass++ {
		for _, set := range sets {
			coord.ResetHistory()
			for _, w := range set.Windows {
				gpv := m.gpv(w.Observation, scratch)
				if err := coord.Train(gpv, w.Overload, int(w.Bottleneck)); err != nil {
					return nil, err
				}
			}
		}
	}
	coord.ResetHistory()
	return m, nil
}

// maxAttrs is the widest synopsis projection, sizing scratch buffers.
func (m *Monitor) maxAttrs() int {
	max := 0
	for _, syn := range m.Synopses {
		if len(syn.Attrs) > max {
			max = len(syn.Attrs)
		}
	}
	return max
}

// gpv runs every synopsis over the observation, projecting through the
// caller's scratch buffer (nil is allowed; each synopsis then allocates
// its own projection).
func (m *Monitor) gpv(obs Observation, scratch []float64) []int {
	gpv := make([]int, len(m.Synopses))
	for i, syn := range m.Synopses {
		gpv[i] = syn.PredictInto(scratch, obs.Vectors[syn.Tier])
	}
	return gpv
}

// Predict infers the system state for one window.
//
// Predict is the single-stream compatibility shim: it serializes all
// callers on one shared temporal history (the monitor's default session),
// so observations must arrive in trace order and unrelated traces need a
// ResetHistory between them.
//
// Deprecated: take a Session per prediction stream via NewSession and use
// its Predict; the shim exists only so pre-Session callers keep working.
func (m *Monitor) Predict(obs Observation) (Prediction, error) {
	if m.coordinator == nil {
		return Prediction{}, fmt.Errorf("core: %w", ErrUntrained)
	}
	// nil scratch: the shim may be called concurrently, so it cannot
	// share a monitor-level projection buffer.
	return m.predict(obs, m.coordinator.Predict, nil)
}

// checkDims validates the observation against the trained metric layout.
func (m *Monitor) checkDims(obs Observation) error {
	if m.dim <= 0 {
		return nil
	}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if got := len(obs.Vectors[tier]); got != m.dim {
			return fmt.Errorf("core: %w: %s tier vector has %d metrics, trained on %d",
				ErrDimensionMismatch, tier, got, m.dim)
		}
	}
	return nil
}

// predict folds one observation through the synopses and the given
// coordinated-predictor entry point, projecting attribute vectors through
// scratch (per-stream, may be nil).
func (m *Monitor) predict(obs Observation, coord func([]int) (int, int, error), scratch []float64) (Prediction, error) {
	if err := m.checkDims(obs); err != nil {
		return Prediction{}, err
	}
	gpv := m.gpv(obs, scratch)
	over, bott, err := coord(gpv)
	if err != nil {
		return Prediction{}, err
	}
	p := Prediction{Overload: over == 1, GPV: gpv}
	if over == 1 {
		p.Bottleneck = server.TierID(bott)
	}
	return p, nil
}

// Session is one prediction stream over a shared trained Monitor: it owns
// its h-bit temporal history while reading the shared synopses and
// predictor tables. Sessions are cheap; give each concurrent caller its
// own. A single Session must not be used from multiple goroutines at once.
type Session struct {
	m     *Monitor
	coord *predictor.Session
	// scratch is the session-owned projection buffer; synopsis evaluation
	// reuses it every window so steady-state projection never allocates.
	scratch []float64
}

// NewSession returns an independent prediction stream with a cleared
// history register. Sessions over an untrained monitor are inert: their
// Predict returns ErrUntrained.
func (m *Monitor) NewSession() *Session {
	s := &Session{m: m, scratch: make([]float64, m.maxAttrs())}
	if m.coordinator != nil {
		s.coord = m.coordinator.NewSession()
	}
	return s
}

// Predict infers the system state for one window of this session's stream;
// see Monitor.Predict.
func (s *Session) Predict(obs Observation) (Prediction, error) {
	if s.coord == nil {
		return Prediction{}, fmt.Errorf("core: %w", ErrUntrained)
	}
	return s.m.predict(obs, s.coord.Predict, s.scratch)
}

// Feedback reinforces the session's last prediction with observed truth;
// online adaptation beyond the paper's offline training.
func (s *Session) Feedback(overload bool, bottleneck server.TierID) {
	if s.coord == nil {
		return
	}
	o := 0
	if overload {
		o = 1
	}
	s.coord.Feedback(o, int(bottleneck))
}

// ResetHistory clears the session's temporal state (between traces or
// after long gaps).
func (s *Session) ResetHistory() {
	if s.coord != nil {
		s.coord.ResetHistory()
	}
}

// Feedback reinforces the default session's last prediction with observed
// truth. Like Predict, it is a single-stream compatibility shim over the
// monitor's default session.
//
// Deprecated: hold a Session per prediction stream and use its Feedback.
func (m *Monitor) Feedback(overload bool, bottleneck server.TierID) {
	if m.coordinator == nil {
		return
	}
	o := 0
	if overload {
		o = 1
	}
	m.coordinator.Feedback(o, int(bottleneck))
}

// ResetHistory clears the default session's temporal state (between traces
// or after long gaps). It is part of the single-stream compatibility shim.
//
// Deprecated: a Session resets its own history independently; use
// Session.ResetHistory on a per-stream Session from NewSession.
func (m *Monitor) ResetHistory() {
	if m.coordinator != nil {
		m.coordinator.ResetHistory()
	}
}

// Coordinator exposes the two-level predictor (diagnostics, ablations).
func (m *Monitor) Coordinator() *predictor.Predictor { return m.coordinator }

// InputDim is the per-tier metric-vector length the monitor was trained
// on (zero on a hand-assembled monitor, which disables validation).
func (m *Monitor) InputDim() int { return m.dim }

// SynopsisByKey finds a synopsis by its Key(), or nil.
func (m *Monitor) SynopsisByKey(key string) *synopsis.Synopsis {
	for _, s := range m.Synopses {
		if s.Key() == key {
			return s
		}
	}
	return nil
}

// DefaultSynopsisConfig returns the paper's synopsis construction settings
// with a deterministic seed.
func DefaultSynopsisConfig(seed int64) synopsis.Config {
	return synopsis.Config{Selection: featsel.Config{Seed: seed}}
}
