package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
)

// syntheticSets fabricates two training workloads with complementary
// bottlenecks: workload A overloads tier 0 (its vector[0] rises), workload
// B overloads tier 1.
func syntheticSets(n int, seed int64) ([]core.TrainingSet, []string) {
	rng := rand.New(rand.NewSource(seed))
	names := []string{"m_load", "m_noise"}
	mk := func(workload string, hotTier server.TierID) core.TrainingSet {
		set := core.TrainingSet{Workload: workload}
		for i := 0; i < n; i++ {
			overload := 0
			// Alternate runs of healthy and overloaded windows.
			if (i/8)%2 == 1 {
				overload = 1
			}
			var vecs [server.NumTiers][]float64
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				load := 0.2 + 0.1*rng.Float64()
				if overload == 1 && tier == hotTier {
					load = 0.8 + 0.1*rng.Float64()
				}
				vecs[tier] = []float64{load, rng.Float64()}
			}
			set.Windows = append(set.Windows, core.LabeledWindow{
				Observation: core.Observation{Time: float64(i * 30), Vectors: vecs},
				Overload:    overload,
				Bottleneck:  hotTier,
			})
		}
		return set
	}
	return []core.TrainingSet{mk("alpha", 0), mk("beta", 1)}, names
}

func TestTrainValidation(t *testing.T) {
	sets, names := syntheticSets(40, 1)
	if _, err := core.Train(metrics.LevelHPC, names, sets, core.Config{}); err == nil {
		t.Error("missing learner not rejected")
	}
	cfg := core.Config{Learner: bayes.NaiveLearner()}
	if _, err := core.Train(metrics.LevelHPC, names, nil, cfg); err == nil {
		t.Error("empty training sets not rejected")
	}
}

func TestTrainAndPredictEndToEnd(t *testing.T) {
	sets, names := syntheticSets(80, 2)
	m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
		Learner:  bayes.NaiveLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Synopses) != 4 {
		t.Fatalf("synopses = %d, want 2 workloads × 2 tiers", len(m.Synopses))
	}
	if m.Level != metrics.LevelHPC {
		t.Errorf("level = %v", m.Level)
	}

	// Replay each training trace; accuracy on seen patterns must be high.
	sess := m.NewSession()
	for _, set := range sets {
		sess.ResetHistory()
		correct := 0
		for _, w := range set.Windows {
			p, err := sess.Predict(w.Observation)
			if err != nil {
				t.Fatal(err)
			}
			if p.Overload == (w.Overload == 1) {
				correct++
			}
			if p.Overload && w.Overload == 1 && p.Bottleneck != w.Bottleneck {
				t.Errorf("workload %s: bottleneck = %v, want %v", set.Workload, p.Bottleneck, w.Bottleneck)
			}
			if len(p.GPV) != 4 {
				t.Fatalf("GPV length %d", len(p.GPV))
			}
		}
		if frac := float64(correct) / float64(len(set.Windows)); frac < 0.85 {
			t.Errorf("workload %s replay accuracy = %.2f, want ≥0.85", set.Workload, frac)
		}
	}
}

func TestSynopsisByKey(t *testing.T) {
	sets, names := syntheticSets(40, 3)
	m, err := core.Train(metrics.LevelOS, names, sets, core.Config{
		Learner:  bayes.NaiveLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if s := m.SynopsisByKey("alpha/app/OS/Naive"); s == nil {
		t.Error("expected synopsis alpha/app/OS/Naive")
	}
	if s := m.SynopsisByKey("nope/app/OS/Naive"); s != nil {
		t.Error("unexpected synopsis for bogus key")
	}
}

func TestMonitorFeedbackAdapts(t *testing.T) {
	sets, names := syntheticSets(80, 4)
	m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
		Learner:  bayes.NaiveLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
		// A wide uncertainty band: predictions start at the optimistic
		// default and must be steered out of the band by online feedback.
		Coordinator: predictor.Config{Delta: 32, CounterMax: 64},
		TrainPasses: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An overloaded observation from workload alpha.
	var obs core.Observation
	obs.Vectors[0] = []float64{0.9, 0.5}
	obs.Vectors[1] = []float64{0.25, 0.5}

	sess := m.NewSession()
	sess.ResetHistory()
	p, err := sess.Predict(obs)
	if err != nil {
		t.Fatal(err)
	}
	if p.Overload {
		t.Fatal("uncertain optimistic monitor should start at underload")
	}
	for i := 0; i < 70; i++ {
		if _, err := sess.Predict(obs); err != nil {
			t.Fatal(err)
		}
		sess.Feedback(true, 0)
	}
	p, err = sess.Predict(obs)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Overload {
		t.Error("feedback did not flip the monitor's prediction")
	}
	if p.Bottleneck != 0 {
		t.Errorf("bottleneck after feedback = %v, want tier 0", p.Bottleneck)
	}
}

func TestTrainRejectsMismatchedVectors(t *testing.T) {
	sets, _ := syntheticSets(40, 5)
	// Names claim three attributes but vectors carry two.
	_, err := core.Train(metrics.LevelHPC, []string{"a", "b", "c"}, sets, core.Config{
		Learner: bayes.NaiveLearner(),
	})
	if err == nil {
		t.Error("mismatched vector width not rejected")
	}
}

func TestSentinelErrors(t *testing.T) {
	sets, names := syntheticSets(40, 6)

	// Training validation wraps ErrBadConfig.
	if _, err := core.Train(metrics.LevelHPC, names, sets, core.Config{}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("missing learner: got %v, want ErrBadConfig", err)
	}
	cfg := core.Config{Learner: bayes.NaiveLearner()}
	if _, err := core.Train(metrics.LevelHPC, names, nil, cfg); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("empty training sets: got %v, want ErrBadConfig", err)
	}

	// An untrained (zero-value) monitor's sessions fail closed.
	var zero core.Monitor
	sess := zero.NewSession()
	if _, err := sess.Predict(core.Observation{}); !errors.Is(err, core.ErrUntrained) {
		t.Errorf("untrained session Predict: got %v, want ErrUntrained", err)
	}
	// Session mutators must be inert, not panic.
	sess.Feedback(true, 0)
	sess.ResetHistory()

	// A trained monitor rejects observations of the wrong width.
	m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
		Learner:  bayes.NaiveLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.InputDim() != len(names) {
		t.Errorf("InputDim = %d, want %d", m.InputDim(), len(names))
	}
	var obs core.Observation
	obs.Vectors[0] = []float64{0.5} // trained on two metrics
	obs.Vectors[1] = []float64{0.5, 0.5}
	if _, err := m.NewSession().Predict(obs); !errors.Is(err, core.ErrDimensionMismatch) {
		t.Errorf("narrow vector: got %v, want ErrDimensionMismatch", err)
	}
}
