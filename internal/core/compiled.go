// The compiled decision plane: a trained Monitor lowered into flat scoring
// tables (Monitor.Compile) plus per-stream CompiledSessions whose
// steady-state Predict is allocation-free, and a batch DecideAll that
// evaluates a whole shard's due list in one synopsis-major pass so the
// compiled tables stay hot in cache across sites.
//
// Correctness contract: for every observation stream, the compiled plane
// produces byte-identical Predictions (and identical error outcomes) to
// the interpreted Session path. The synopsis compilers only precompute
// values the interpreted path computes identically, and the coordinated
// predictor tables are shared — a compiled session and an interpreted
// session over the same monitor read (and Feedback writes) the very same
// saturating counters. The equivalence is pinned by FuzzDecideCompiled
// and by the sharded-vs-unsharded differential goldens, since the sharded
// engine decides through this plane while the unsharded Pipeline stays on
// the interpreted reference path.
package core

import (
	"fmt"

	"hpcap/internal/ml"
	"hpcap/internal/predictor"
	"hpcap/internal/server"
	"hpcap/internal/synopsis"
)

// CompiledMonitor is the lowered, immutable form of a trained Monitor:
// every synopsis compiled to a flat evaluation plan, sharing the source
// monitor's coordinated predictor tables. It is safe for concurrent use;
// per-stream state lives in CompiledSessions.
type CompiledMonitor struct {
	src   *Monitor
	syns  []*synopsis.Compiled
	coord *predictor.Predictor
}

// Compile lowers a trained monitor into its compiled decision plane. It
// fails with ErrUntrained before Train; synopses whose classifiers have no
// compiled form fall back to interpreted evaluation behind the same
// interface, so compilation never changes an output.
func (m *Monitor) Compile() (*CompiledMonitor, error) {
	if m.coordinator == nil {
		return nil, fmt.Errorf("core: %w", ErrUntrained)
	}
	cm := &CompiledMonitor{src: m, coord: m.coordinator}
	for _, syn := range m.Synopses {
		cs, err := syn.Compile()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cm.syns = append(cm.syns, cs)
	}
	return cm, nil
}

// Source returns the monitor this plane was compiled from.
func (cm *CompiledMonitor) Source() *Monitor { return cm.src }

// CompiledSession is one prediction stream over a compiled monitor. It
// owns the stream's predictor history and all per-call scratch, so its
// steady-state PredictInto is allocation-free. A CompiledSession must not
// be used from multiple goroutines at once; sessions are cheap — give
// each concurrent stream its own.
type CompiledSession struct {
	cm    *CompiledMonitor
	coord *predictor.Session
	scr   ml.Scratch
}

// NewSession returns an independent compiled prediction stream with a
// cleared history register.
func (cm *CompiledMonitor) NewSession() *CompiledSession {
	return &CompiledSession{cm: cm, coord: cm.coord.NewSession()}
}

// Monitor returns the compiled plane this session predicts through.
func (cs *CompiledSession) Monitor() *CompiledMonitor { return cs.cm }

// PredictInto infers the system state for one window of this session's
// stream into out, reusing out's GPV storage when its capacity suffices —
// the zero-allocation counterpart of Session.Predict, with identical
// outputs and error behavior. On error out is unspecified.
func (cs *CompiledSession) PredictInto(obs Observation, out *Prediction) error {
	cm := cs.cm
	if err := cm.src.checkDims(obs); err != nil {
		return err
	}
	n := len(cm.syns)
	gpv := out.GPV
	if cap(gpv) < n {
		gpv = make([]int, n)
	}
	gpv = gpv[:n]
	idx := 0
	for i, syn := range cm.syns {
		bit := syn.Predict(obs.Vectors[syn.Tier], &cs.scr)
		if bit&^1 != 0 {
			return fmt.Errorf("core: synopsis %d predicted %d, want 0 or 1", i, bit)
		}
		gpv[i] = bit
		idx |= bit << i
	}
	over, bott := cs.coord.PredictPacked(idx)
	out.Overload = over == 1
	out.Bottleneck = 0
	if over == 1 {
		out.Bottleneck = server.TierID(bott)
	}
	out.GPV = gpv
	return nil
}

// Feedback reinforces the session's last prediction with observed truth;
// see Session.Feedback.
func (cs *CompiledSession) Feedback(overload bool, bottleneck server.TierID) {
	o := 0
	if overload {
		o = 1
	}
	cs.coord.Feedback(o, int(bottleneck))
}

// ResetHistory clears the session's temporal state (between traces or
// after long gaps).
func (cs *CompiledSession) ResetHistory() { cs.coord.ResetHistory() }

// DecideBatch is caller-owned scratch for DecideAll, reused across
// batches so the batched decision path never allocates in steady state.
type DecideBatch struct {
	idx  []int
	errs []error
}

// Err returns item i's outcome from the last DecideAll: nil if out[i]
// holds a valid prediction, the item's validation error otherwise.
func (b *DecideBatch) Err(i int) error { return b.errs[i] }

// DecideAll evaluates one window for every session in a single pass over
// the compiled tables: synopsis-major, so each synopsis's scoring tables
// are loaded once and stay cache-hot across the whole batch instead of
// being re-walked per site. sess, obs and out are parallel slices; every
// session must come from this CompiledMonitor's NewSession, and each
// session's per-item outputs — prediction, history advance, and error
// outcome — are exactly those of a standalone PredictInto call, since
// sites are independent and per-item evaluation order is preserved.
func (cm *CompiledMonitor) DecideAll(b *DecideBatch, sess []*CompiledSession, obs []Observation, out []Prediction) {
	n := len(obs)
	if len(sess) != n || len(out) != n {
		panic("core: DecideAll slice lengths differ")
	}
	if cap(b.idx) < n {
		b.idx = make([]int, n)
		b.errs = make([]error, n)
	}
	b.idx, b.errs = b.idx[:n], b.errs[:n]
	nsyn := len(cm.syns)
	for i := 0; i < n; i++ {
		if sess[i].cm != cm {
			panic("core: DecideAll session from a different CompiledMonitor")
		}
		b.idx[i] = 0
		if b.errs[i] = cm.src.checkDims(obs[i]); b.errs[i] != nil {
			continue
		}
		gpv := out[i].GPV
		if cap(gpv) < nsyn {
			gpv = make([]int, nsyn)
		}
		out[i].GPV = gpv[:nsyn]
	}
	for k, syn := range cm.syns {
		tier := syn.Tier
		for i := 0; i < n; i++ {
			if b.errs[i] != nil {
				continue
			}
			bit := syn.Predict(obs[i].Vectors[tier], &sess[i].scr)
			if bit&^1 != 0 {
				b.errs[i] = fmt.Errorf("core: synopsis %d predicted %d, want 0 or 1", k, bit)
				continue
			}
			out[i].GPV[k] = bit
			b.idx[i] |= bit << k
		}
	}
	for i := 0; i < n; i++ {
		if b.errs[i] != nil {
			continue
		}
		over, bott := sess[i].coord.PredictPacked(b.idx[i])
		out[i].Overload = over == 1
		out[i].Bottleneck = 0
		if over == 1 {
			out[i].Bottleneck = server.TierID(bott)
		}
	}
}
