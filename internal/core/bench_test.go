package core_test

import (
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
)

// benchMonitor trains one TAN monitor (the paper's recommended learner)
// over the synthetic workloads and returns it with a stream of observations
// drawn from the training traces.
func benchMonitor(b *testing.B) (*core.Monitor, []core.Observation) {
	b.Helper()
	sets, names := syntheticSets(80, 7)
	m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(7),
	})
	if err != nil {
		b.Fatal(err)
	}
	var obs []core.Observation
	for _, set := range sets {
		for _, w := range set.Windows {
			obs = append(obs, w.Observation)
		}
	}
	return m, obs
}

// BenchmarkDecide measures one steady-state per-window decision on a
// single site through the compiled plane: synopsis evaluation over every
// (workload × tier) scoring table, GPV packing, and the lock-free
// coordinated lookup — zero allocations per decision.
func BenchmarkDecide(b *testing.B) {
	m, obs := benchMonitor(b)
	cm, err := m.Compile()
	if err != nil {
		b.Fatal(err)
	}
	sess := cm.NewSession()
	var pred core.Prediction
	if err := sess.PredictInto(obs[0], &pred); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.PredictInto(obs[i%len(obs)], &pred); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideInterpreted is the interpreted reference path under the
// same workload, kept for the compiled-vs-interpreted before/after row.
func BenchmarkDecideInterpreted(b *testing.B) {
	m, obs := benchMonitor(b)
	sess := m.NewSession()
	if _, err := sess.Predict(obs[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sess.Predict(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecideBatch measures the amortized per-decision cost of
// deciding a whole 1000-site shard's due list in one DecideAll pass;
// ns/op is per decision, not per batch.
func BenchmarkDecideBatch(b *testing.B) {
	const sites = 1000
	m, obs := benchMonitor(b)
	cm, err := m.Compile()
	if err != nil {
		b.Fatal(err)
	}
	sess := make([]*core.CompiledSession, sites)
	batch := make([]core.Observation, sites)
	out := make([]core.Prediction, sites)
	var db core.DecideBatch
	for i := range sess {
		sess[i] = cm.NewSession()
		batch[i] = obs[i%len(obs)]
	}
	cm.DecideAll(&db, sess, batch, out)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := sites
		if rest := b.N - done; rest < n {
			n = rest
		}
		cm.DecideAll(&db, sess[:n], batch[:n], out[:n])
		done += n
	}
}
