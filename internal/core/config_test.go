package core_test

import (
	"errors"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/featsel"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/predictor"
	"hpcap/internal/synopsis"
)

func TestDefaultConfigValid(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Learner = bayes.TANLearner()
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig + learner invalid: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	base := func() core.Config {
		cfg := core.DefaultConfig()
		cfg.Learner = bayes.TANLearner()
		return cfg
	}
	tests := []struct {
		name   string
		mutate func(*core.Config)
	}{
		{"missing learner", func(c *core.Config) { c.Learner.New = nil }},
		{"bad coordinator", func(c *core.Config) { c.Coordinator = predictor.Config{HistoryBits: 13} }},
		{"bad synopsis selection", func(c *core.Config) {
			c.Synopsis = synopsis.Config{Selection: featsel.Config{Folds: 1}}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			errs := cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			// Nested violations are re-wrapped, so one errors.Is covers the
			// whole training configuration.
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
		})
	}
}
