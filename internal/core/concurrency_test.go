package core_test

import (
	"sync"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
)

// trainedMonitor builds a small deterministic monitor plus the replay
// windows the stress tests hammer it with.
func trainedMonitor(t *testing.T) (*core.Monitor, []core.LabeledWindow) {
	t.Helper()
	sets, names := syntheticSets(80, 2)
	m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
		Learner:  bayes.NaiveLearner(),
		Synopsis: core.DefaultSynopsisConfig(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m, sets[0].Windows
}

// TestSessionsMatchSequentialReplay locks in the session contract: many
// concurrent sessions replaying the same trace over one shared monitor all
// see exactly the sequence a single-stream ResetHistory+Predict replay
// produces.
func TestSessionsMatchSequentialReplay(t *testing.T) {
	m, windows := trainedMonitor(t)

	seq := m.NewSession()
	seq.ResetHistory()
	want := make([]core.Prediction, len(windows))
	for i, w := range windows {
		p, err := seq.Predict(w.Observation)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess := m.NewSession()
			for i, w := range windows {
				p, err := sess.Predict(w.Observation)
				if err != nil {
					errs <- err
					return
				}
				if p.Overload != want[i].Overload || p.Bottleneck != want[i].Bottleneck {
					t.Errorf("window %d: session prediction %+v, sequential %+v", i, p, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsIndependentHistories interleaves sessions at
// different replay offsets: each stream's h-bit history must stay its own.
func TestConcurrentSessionsIndependentHistories(t *testing.T) {
	m, windows := trainedMonitor(t)

	sess := m.NewSession()
	want := make([]core.Prediction, len(windows))
	for i, w := range windows {
		p, err := sess.Predict(w.Observation)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := m.NewSession()
			// Stagger the start; a fresh session always replays from the
			// cleared-history state, whatever the other streams are doing.
			for rep := 0; rep <= g%3; rep++ {
				s.ResetHistory()
				for i, w := range windows {
					p, err := s.Predict(w.Observation)
					if err != nil {
						t.Error(err)
						return
					}
					if p.Overload != want[i].Overload {
						t.Errorf("goroutine %d window %d: overload %v, want %v", g, i, p.Overload, want[i].Overload)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestCompatAPIUnderConcurrency hammers the single-stream Monitor
// Predict/Feedback/ResetHistory API from many goroutines at once. The
// predictions interleave into one shared history stream — the values are
// scheduling-dependent — but under -race this locks in that the compat path
// is data-race-free, including Feedback's writes to the shared tables while
// sessions read them.
func TestCompatAPIUnderConcurrency(t *testing.T) {
	m, windows := trainedMonitor(t)

	const goroutines = 12
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch g % 3 {
			case 0:
				// Compat single-stream callers. This is the last remaining
				// exerciser of the deprecated Monitor shims; delete this leg
				// when the shims are dropped.
				for _, w := range windows {
					if _, err := m.Predict(w.Observation); err != nil {
						t.Error(err)
						return
					}
				}
				m.ResetHistory()
			case 1: // session callers with online feedback
				s := m.NewSession()
				for _, w := range windows {
					p, err := s.Predict(w.Observation)
					if err != nil {
						t.Error(err)
						return
					}
					_ = p
					s.Feedback(w.Overload == 1, w.Bottleneck)
				}
			default: // table readers
				gpv := make([]int, len(m.Synopses))
				for i := 0; i < len(windows); i++ {
					if _, err := m.Coordinator().Counter(gpv, i%8); err != nil {
						t.Error(err)
						return
					}
					_ = m.SynopsisByKey("alpha/app/HPC")
				}
			}
		}()
	}
	wg.Wait()

	// The monitor must still predict sanely after the stampede.
	s := m.NewSession()
	for _, w := range windows {
		if _, err := s.Predict(w.Observation); err != nil {
			t.Fatal(err)
		}
	}
}
