package core_test

import (
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/linreg"
	"hpcap/internal/ml/svm"
	"hpcap/internal/server"
)

// compiledLearners are the four synopsis builders the compiled plane must
// reproduce bit-identically.
var compiledLearners = []ml.Learner{
	bayes.NaiveLearner(),
	bayes.TANLearner(),
	svm.Learner(),
	linreg.Learner(),
}

// trainedMonitors lazily trains one monitor per learner (training is the
// expensive part; every test and fuzz iteration shares them).
var trainedMonitors = struct {
	once sync.Once
	m    map[string]*core.Monitor
}{}

func monitorFor(t testing.TB, learner ml.Learner) *core.Monitor {
	t.Helper()
	trainedMonitors.once.Do(func() {
		trainedMonitors.m = make(map[string]*core.Monitor)
		sets, names := syntheticSets(60, 11)
		for _, l := range compiledLearners {
			m, err := core.Train(metrics.LevelHPC, names, sets, core.Config{
				Learner:  l,
				Synopsis: core.DefaultSynopsisConfig(11),
			})
			if err != nil {
				panic(err)
			}
			trainedMonitors.m[l.Name] = m
		}
	})
	return trainedMonitors.m[learner.Name]
}

// randomObs draws one observation; values occasionally degenerate to the
// pathological floats the interpreted path tolerates.
func randomObs(rng *rand.Rand, dim int) core.Observation {
	obs := core.Observation{Time: rng.Float64() * 1e4}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		v := make([]float64, dim)
		for k := range v {
			switch rng.Intn(12) {
			case 0:
				v[k] = math.NaN()
			case 1:
				v[k] = math.Inf(1 - 2*rng.Intn(2))
			case 2:
				v[k] = rng.NormFloat64() * 1e9
			default:
				v[k] = rng.NormFloat64()
			}
		}
		obs.Vectors[tier] = v
	}
	return obs
}

func predEqual(a, b core.Prediction) bool {
	if a.Overload != b.Overload || a.Bottleneck != b.Bottleneck || len(a.GPV) != len(b.GPV) {
		return false
	}
	for i := range a.GPV {
		if a.GPV[i] != b.GPV[i] {
			return false
		}
	}
	return true
}

// TestCompiledMatchesInterpreted replays random streams — with interleaved
// feedback and history resets — through an interpreted Session and a
// CompiledSession over the same monitor, per learner. Every prediction,
// error outcome, and the shared predictor-table evolution must agree.
func TestCompiledMatchesInterpreted(t *testing.T) {
	for _, learner := range compiledLearners {
		t.Run(learner.Name, func(t *testing.T) {
			m := monitorFor(t, learner)
			cm, err := m.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if cm.Source() != m {
				t.Fatal("Source != source monitor")
			}
			rng := rand.New(rand.NewSource(99))
			is, cs := m.NewSession(), cm.NewSession()
			var got core.Prediction
			for step := 0; step < 400; step++ {
				dim := m.InputDim()
				if rng.Intn(20) == 0 {
					dim++ // dimension-mismatch parity
				}
				obs := randomObs(rng, dim)
				want, werr := is.Predict(obs)
				gerr := cs.PredictInto(obs, &got)
				if (werr == nil) != (gerr == nil) {
					t.Fatalf("step %d: interpreted err %v, compiled err %v", step, werr, gerr)
				}
				if werr != nil {
					continue
				}
				if !predEqual(want, got) {
					t.Fatalf("step %d: interpreted %+v, compiled %+v", step, want, got)
				}
				switch rng.Intn(6) {
				case 0:
					over := rng.Intn(2) == 1
					bott := server.TierID(rng.Intn(int(server.NumTiers)))
					// Both sessions share the monitor's tables, so the
					// double update keeps their views identical while
					// their history registers advance in lockstep.
					is.Feedback(over, bott)
					cs.Feedback(over, bott)
				case 1:
					is.ResetHistory()
					cs.ResetHistory()
				}
			}
		})
	}
}

// TestCompileUntrained pins Compile's error on an untrained monitor.
func TestCompileUntrained(t *testing.T) {
	if _, err := (&core.Monitor{}).Compile(); !errors.Is(err, core.ErrUntrained) {
		t.Fatalf("Compile on untrained = %v, want ErrUntrained", err)
	}
}

// TestDecideAllMatchesSingle drives the batch path and a per-item
// reference over identical session pairs, including dimension-mismatch
// items, asserting predictions and error outcomes coincide.
func TestDecideAllMatchesSingle(t *testing.T) {
	m := monitorFor(t, bayes.TANLearner())
	cm, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	const sites = 37
	rng := rand.New(rand.NewSource(5))
	batchSess := make([]*core.CompiledSession, sites)
	refSess := make([]*core.CompiledSession, sites)
	for i := range batchSess {
		batchSess[i] = cm.NewSession()
		refSess[i] = cm.NewSession()
	}
	obs := make([]core.Observation, sites)
	out := make([]core.Prediction, sites)
	ref := make([]core.Prediction, sites)
	var db core.DecideBatch
	for round := 0; round < 25; round++ {
		for i := range obs {
			dim := m.InputDim()
			if rng.Intn(10) == 0 {
				dim-- // invalid item inside the batch
			}
			obs[i] = randomObs(rng, dim)
		}
		cm.DecideAll(&db, batchSess, obs, out)
		for i := range obs {
			rerr := refSess[i].PredictInto(obs[i], &ref[i])
			if (db.Err(i) == nil) != (rerr == nil) {
				t.Fatalf("round %d item %d: batch err %v, single err %v", round, i, db.Err(i), rerr)
			}
			if rerr != nil {
				continue
			}
			if !predEqual(out[i], ref[i]) {
				t.Fatalf("round %d item %d: batch %+v, single %+v", round, i, out[i], ref[i])
			}
		}
	}
}

// TestDecideAllGuards pins the batch misuse panics: mismatched slice
// lengths and sessions from a foreign monitor.
func TestDecideAllGuards(t *testing.T) {
	m := monitorFor(t, bayes.NaiveLearner())
	cm, err := m.Compile()
	if err != nil {
		t.Fatal(err)
	}
	other, err := monitorFor(t, bayes.TANLearner()).Compile()
	if err != nil {
		t.Fatal(err)
	}
	obs := []core.Observation{{}}
	out := make([]core.Prediction, 1)
	var db core.DecideBatch
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("length mismatch", func() {
		cm.DecideAll(&db, nil, obs, out)
	})
	mustPanic("foreign session", func() {
		cm.DecideAll(&db, []*core.CompiledSession{other.NewSession()}, obs, out)
	})
}

// FuzzDecideCompiled is the compiled-vs-reference differential fuzz:
// random vectors, histories, feedback, and resets through every learner's
// monitor, with the interpreted Session as the oracle.
func FuzzDecideCompiled(f *testing.F) {
	f.Add(int64(1), uint8(0), uint8(12))
	f.Add(int64(42), uint8(1), uint8(40))
	f.Add(int64(-7), uint8(2), uint8(25))
	f.Add(int64(1e9), uint8(3), uint8(60))
	f.Fuzz(func(t *testing.T, seed int64, which uint8, steps uint8) {
		learner := compiledLearners[int(which)%len(compiledLearners)]
		m := monitorFor(t, learner)
		cm, err := m.Compile()
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		is, cs := m.NewSession(), cm.NewSession()
		var got core.Prediction
		for step := 0; step < int(steps); step++ {
			dim := m.InputDim()
			switch rng.Intn(16) {
			case 0:
				dim += 1 + rng.Intn(3)
			case 1:
				if dim > 0 {
					dim--
				}
			}
			obs := randomObs(rng, dim)
			want, werr := is.Predict(obs)
			gerr := cs.PredictInto(obs, &got)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("step %d: interpreted err %v, compiled err %v", step, werr, gerr)
			}
			if werr == nil && !predEqual(want, got) {
				t.Fatalf("step %d: interpreted %+v, compiled %+v", step, want, got)
			}
			switch rng.Intn(5) {
			case 0:
				over := rng.Intn(2) == 1
				bott := server.TierID(rng.Intn(int(server.NumTiers)))
				is.Feedback(over, bott)
				cs.Feedback(over, bott)
			case 1:
				is.ResetHistory()
				cs.ResetHistory()
			}
		}
	})
}
