package core

import "errors"

// Sentinel errors of the monitor API. Callers branch on them with
// errors.Is; the facade re-exports them so serving loops can distinguish
// a misconfigured monitor from a malformed observation without string
// matching.
var (
	// ErrUntrained is returned when a Monitor that has not been through
	// Train (or a Session taken from one) is asked to predict.
	ErrUntrained = errors.New("hpcap: monitor not trained")

	// ErrDimensionMismatch is returned when an observation's per-tier
	// metric vector does not match the metric layout the monitor was
	// trained on.
	ErrDimensionMismatch = errors.New("hpcap: observation dimension mismatch")

	// ErrBadConfig is returned by Train when the monitor or coordinated
	// predictor configuration is invalid.
	ErrBadConfig = errors.New("hpcap: bad configuration")
)
