package stats

import (
	"fmt"
	"sort"
)

// Discretizer maps a continuous value to one of a fixed number of bins using
// cut points learned from training data. The Bayesian learners (Naive Bayes
// in discrete mode and TAN) and the information-gain attribute ranker all
// operate on discretized attributes, mirroring WEKA's supervised pipeline
// used by the paper.
type Discretizer struct {
	// Cuts holds the ascending bin boundaries. A value v falls in bin i
	// where i is the number of cuts strictly less than or equal to v.
	// len(Cuts)+1 bins exist.
	Cuts []float64
}

// NewEqualFrequency learns an equal-frequency discretizer with at most bins
// bins from the sample xs. Duplicate cut points (from repeated values) are
// collapsed, so the effective number of bins may be smaller. bins must be at
// least 2.
func NewEqualFrequency(xs []float64, bins int) (*Discretizer, error) {
	if bins < 2 {
		return nil, fmt.Errorf("stats: need at least 2 bins, got %d", bins)
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)

	cuts := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		idx := b * len(sorted) / bins
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		cut := sorted[idx]
		if len(cuts) == 0 || cut > cuts[len(cuts)-1] {
			cuts = append(cuts, cut)
		}
	}
	return &Discretizer{Cuts: cuts}, nil
}

// NewEqualWidth learns an equal-width discretizer with bins bins spanning
// [min(xs), max(xs)].
func NewEqualWidth(xs []float64, bins int) (*Discretizer, error) {
	if bins < 2 {
		return nil, fmt.Errorf("stats: need at least 2 bins, got %d", bins)
	}
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if hi <= lo {
		// Constant attribute: single bin, no cuts.
		return &Discretizer{}, nil
	}
	width := (hi - lo) / float64(bins)
	cuts := make([]float64, 0, bins-1)
	for b := 1; b < bins; b++ {
		cuts = append(cuts, lo+float64(b)*width)
	}
	return &Discretizer{Cuts: cuts}, nil
}

// Bins returns the number of bins this discretizer produces.
func (d *Discretizer) Bins() int { return len(d.Cuts) + 1 }

// Bin returns the bin index for v, in [0, Bins()).
func (d *Discretizer) Bin(v float64) int {
	// Binary search for the first cut greater than v.
	lo, hi := 0, len(d.Cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if d.Cuts[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// BinAll discretizes each value of xs.
func (d *Discretizer) BinAll(xs []float64) []int {
	return d.BinTo(make([]int, len(xs)), xs)
}

// BinTo discretizes each value of xs into dst (grown as needed) and
// returns it, letting hot loops reuse one bin buffer across columns.
func (d *Discretizer) BinTo(dst []int, xs []float64) []int {
	if cap(dst) < len(xs) {
		dst = make([]int, len(xs))
	}
	dst = dst[:len(xs)]
	for i, x := range xs {
		dst[i] = d.Bin(x)
	}
	return dst
}
