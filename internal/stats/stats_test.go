package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{5}, 5},
		{"several", []float64{1, 2, 3, 4}, 2.5},
		{"negative", []float64{-2, 2}, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestGeometricMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"ones", []float64{1, 1, 1}, 1},
		{"two-and-eight", []float64{2, 8}, 4},
		{"powers", []float64{1, 10, 100}, 10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GeometricMean(tt.xs); !almostEqual(got, tt.want, 1e-9) {
				t.Errorf("GeometricMean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestGeometricMeanClampsNonPositive(t *testing.T) {
	got := GeometricMean([]float64{0, 4})
	if math.IsNaN(got) || math.IsInf(got, 0) {
		t.Fatalf("GeometricMean with zero produced %v", got)
	}
	if got <= 0 {
		t.Fatalf("GeometricMean with zero = %v, want positive", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of single sample = %v, want 0", got)
	}
}

func TestCovarianceErrors(t *testing.T) {
	if _, err := Covariance([]float64{1}, []float64{1, 2}); err != ErrLengthMismatch {
		t.Errorf("mismatched lengths: err = %v, want ErrLengthMismatch", err)
	}
	if _, err := Covariance(nil, nil); err != ErrEmpty {
		t.Errorf("empty: err = %v, want ErrEmpty", err)
	}
}

func TestCorrelationPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, want 1", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(r, -1, 1e-12) {
		t.Errorf("Correlation = %v, want -1", r)
	}
}

func TestCorrelationZeroVariance(t *testing.T) {
	r, err := Correlation([]float64{1, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if r != 0 {
		t.Errorf("Correlation with constant sample = %v, want 0", r)
	}
}

// Property: correlation is always within [-1, 1].
func TestCorrelationBoundsProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := int(n%64) + 2
		xs := make([]float64, m)
		ys := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			ys[i] = xs[i]*rng.NormFloat64() + rng.NormFloat64()
		}
		r, err := Correlation(xs, ys)
		return err == nil && r >= -1 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	lo, err := Min(xs)
	if err != nil || lo != -1 {
		t.Errorf("Min = %v, %v; want -1, nil", lo, err)
	}
	hi, err := Max(xs)
	if err != nil || hi != 5 {
		t.Errorf("Max = %v, %v; want 5, nil", hi, err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Errorf("Min(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Errorf("Max(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{100, 10},
		{50, 5.5},
		{25, 3.25},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should error")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should error")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile on empty should return ErrEmpty")
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{5, 1, 3})
	if err != nil || got != 3 {
		t.Errorf("Median = %v, %v; want 3, nil", got, err)
	}
}

func TestGaussianPDF(t *testing.T) {
	// Standard normal density at 0 is 1/sqrt(2π).
	want := 1 / math.Sqrt(2*math.Pi)
	if got := GaussianPDF(0, 0, 1); !almostEqual(got, want, 1e-12) {
		t.Errorf("GaussianPDF(0,0,1) = %v, want %v", got, want)
	}
	// Degenerate stddev must not produce Inf/NaN.
	got := GaussianPDF(1, 1, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("GaussianPDF with zero stddev produced %v", got)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{2, 8}
	norm := Normalize(xs)
	// Geometric mean is 4, so normalized values are 0.5 and 2.
	if !almostEqual(norm[0], 0.5, 1e-12) || !almostEqual(norm[1], 2, 1e-12) {
		t.Errorf("Normalize(%v) = %v", xs, norm)
	}
	// The geometric mean of the normalized series is 1.
	if gm := GeometricMean(norm); !almostEqual(gm, 1, 1e-9) {
		t.Errorf("GeometricMean(normalized) = %v, want 1", gm)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if got := Normalize(nil); len(got) != 0 {
		t.Errorf("Normalize(nil) = %v, want empty", got)
	}
}
