// Package stats provides the descriptive statistics, information-theoretic
// measures, and discretization utilities used throughout hpcap: Pearson
// correlation for productivity-index selection (paper Eq. 2), entropy and
// (conditional) mutual information for attribute selection and TAN structure
// learning, and equal-frequency discretization for the Bayesian learners.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// ErrLengthMismatch is returned by paired-sample functions when the two
// inputs differ in length.
var ErrLengthMismatch = errors.New("stats: sample length mismatch")

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeometricMean returns the geometric mean of xs. Non-positive values are
// clamped to a small epsilon so that normalization of near-zero throughput
// samples (as in the paper's Figure 3 normalization) remains well defined.
func GeometricMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	const eps = 1e-12
	var logSum float64
	for _, x := range xs {
		if x < eps {
			x = eps
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Variance returns the population variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Covariance returns the population covariance of the paired samples.
func Covariance(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sum float64
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs)), nil
}

// Correlation returns the Pearson correlation coefficient between the paired
// samples, the Corr measure of paper Eq. 2. If either sample has zero
// variance the correlation is defined as 0 (no linear relationship can be
// established).
func Correlation(xs, ys []float64) (float64, error) {
	cov, err := Covariance(xs, ys)
	if err != nil {
		return 0, err
	}
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return 0, nil
	}
	r := cov / (sx * sy)
	// Guard against floating-point drift outside the mathematical range.
	return math.Max(-1, math.Min(1, r)), nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using linear
// interpolation between closest ranks. xs need not be sorted.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// GaussianPDF returns the probability density of x under N(mean, stddev²).
// A zero stddev is replaced by a small floor so that degenerate attributes
// (constant in the training set) do not produce infinities in Naive Bayes.
func GaussianPDF(x, mean, stddev float64) float64 {
	const floor = 1e-6
	if stddev < floor {
		stddev = floor
	}
	d := (x - mean) / stddev
	return math.Exp(-0.5*d*d) / (stddev * math.Sqrt(2*math.Pi))
}

// Normalize divides every element of xs by its geometric mean, returning a
// new slice. This is the normalization the paper applies in Figure 3 to plot
// PI and throughput on a comparable scale. A zero geometric mean yields a
// copy of xs.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	gm := GeometricMean(xs)
	if gm == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / gm
	}
	return out
}
