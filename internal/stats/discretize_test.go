package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewEqualFrequency(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	d, err := NewEqualFrequency(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 4 {
		t.Fatalf("Bins = %d, want 4", d.Bins())
	}
	// Each quarter of the sorted data should land in its own bin.
	bins := d.BinAll(xs)
	counts := map[int]int{}
	for _, b := range bins {
		counts[b]++
	}
	if len(counts) != 4 {
		t.Errorf("distinct bins = %d, want 4 (bins: %v)", len(counts), bins)
	}
}

func TestNewEqualFrequencyDuplicates(t *testing.T) {
	// Heavy duplication collapses cut points rather than producing
	// out-of-order or duplicate cuts.
	xs := []float64{1, 1, 1, 1, 1, 1, 9}
	d, err := NewEqualFrequency(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.Cuts); i++ {
		if d.Cuts[i] <= d.Cuts[i-1] {
			t.Fatalf("cuts not strictly increasing: %v", d.Cuts)
		}
	}
}

func TestNewEqualFrequencyErrors(t *testing.T) {
	if _, err := NewEqualFrequency([]float64{1}, 1); err == nil {
		t.Error("bins < 2 should error")
	}
	if _, err := NewEqualFrequency(nil, 4); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestNewEqualWidth(t *testing.T) {
	xs := []float64{0, 10}
	d, err := NewEqualWidth(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 5 {
		t.Fatalf("Bins = %d, want 5", d.Bins())
	}
	tests := []struct {
		v    float64
		want int
	}{
		{-1, 0}, {0, 0}, {1.9, 0}, {2, 1}, {5, 2}, {9.9, 4}, {10, 4}, {100, 4},
	}
	for _, tt := range tests {
		if got := d.Bin(tt.v); got != tt.want {
			t.Errorf("Bin(%v) = %d, want %d", tt.v, got, tt.want)
		}
	}
}

func TestNewEqualWidthConstant(t *testing.T) {
	d, err := NewEqualWidth([]float64{3, 3, 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Bins() != 1 {
		t.Errorf("constant attribute Bins = %d, want 1", d.Bins())
	}
	if got := d.Bin(3); got != 0 {
		t.Errorf("Bin(3) = %d, want 0", got)
	}
}

func TestNewEqualWidthErrors(t *testing.T) {
	if _, err := NewEqualWidth(nil, 3); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
	if _, err := NewEqualWidth([]float64{1}, 1); err == nil {
		t.Error("bins < 2 should error")
	}
}

// Property: Bin is monotone non-decreasing in its argument and always within
// [0, Bins()).
func TestDiscretizerMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 50
		}
		d, err := NewEqualFrequency(xs, 6)
		if err != nil {
			return false
		}
		probes := make([]float64, 30)
		for i := range probes {
			probes[i] = rng.NormFloat64() * 80
		}
		sort.Float64s(probes)
		prev := -1
		for _, p := range probes {
			b := d.Bin(p)
			if b < 0 || b >= d.Bins() || b < prev {
				return false
			}
			prev = b
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every training value maps into a valid bin and the extreme bins
// are reachable.
func TestDiscretizerCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 64)
		for i := range xs {
			xs[i] = rng.Float64() * 1000
		}
		d, err := NewEqualFrequency(xs, 4)
		if err != nil {
			return false
		}
		sawFirst, sawLast := false, false
		for _, x := range xs {
			b := d.Bin(x)
			if b < 0 || b >= d.Bins() {
				return false
			}
			if b == 0 {
				sawFirst = true
			}
			if b == d.Bins()-1 {
				sawLast = true
			}
		}
		return sawFirst && sawLast
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
