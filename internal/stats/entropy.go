package stats

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (base 2) of a discrete distribution
// given as counts. Zero counts contribute nothing; a zero total yields 0.
func Entropy(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyLabels returns the Shannon entropy (base 2) of a label sequence.
// Counts are accumulated in sorted label order: floating-point sums are not
// associative, so summing in map iteration order would make the result (and
// everything ranked by it) vary between runs in the last ulp.
func EntropyLabels(labels []int) float64 {
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	cs := make([]int, 0, len(counts))
	for _, k := range sortedIntKeys(counts) {
		cs = append(cs, counts[k])
	}
	return Entropy(cs)
}

// InformationGain returns IG(C; A) = H(C) - H(C|A) for a discretized
// attribute with values xs (bin indices) and class labels cs. This is the
// relevance measure the paper borrows from information theory for attribute
// selection (§II.B.2).
func InformationGain(xs, cs []int) (float64, error) {
	if len(xs) != len(cs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	hc := EntropyLabels(cs)

	// Partition class labels by attribute value; accumulate the conditional
	// entropy in sorted value order for run-to-run determinism.
	byValue := map[int][]int{}
	for i, x := range xs {
		byValue[x] = append(byValue[x], cs[i])
	}
	values := make([]int, 0, len(byValue))
	for v := range byValue {
		values = append(values, v)
	}
	sort.Ints(values)
	var hcGivenA float64
	n := float64(len(xs))
	for _, v := range values {
		sub := byValue[v]
		hcGivenA += float64(len(sub)) / n * EntropyLabels(sub)
	}
	return hc - hcGivenA, nil
}

// MutualInformation returns I(X; Y) in bits for two discrete variables.
// The sum walks the joint support in sorted order so the result is
// bit-identical across runs.
func MutualInformation(xs, ys []int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))
	joint := map[[2]int]float64{}
	px := map[int]float64{}
	py := map[int]float64{}
	for i := range xs {
		joint[[2]int{xs[i], ys[i]}]++
		px[xs[i]]++
		py[ys[i]]++
	}
	var mi float64
	for _, k := range sortedPairKeys(joint) {
		pxy := joint[k] / n
		mi += pxy * math.Log2(pxy/((px[k[0]]/n)*(py[k[1]]/n)))
	}
	if mi < 0 { // floating-point noise on independent variables
		mi = 0
	}
	return mi, nil
}

// ConditionalMutualInformation returns I(X; Y | Z) in bits for discrete
// variables. It is the edge weight of the Chow-Liu tree in TAN structure
// learning, with Z the class variable. The sum walks the joint support in
// sorted order so the result is bit-identical across runs.
func ConditionalMutualInformation(xs, ys, zs []int) (float64, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))

	jointXYZ := map[[3]int]float64{}
	jointXZ := map[[2]int]float64{}
	jointYZ := map[[2]int]float64{}
	pz := map[int]float64{}
	for i := range xs {
		jointXYZ[[3]int{xs[i], ys[i], zs[i]}]++
		jointXZ[[2]int{xs[i], zs[i]}]++
		jointYZ[[2]int{ys[i], zs[i]}]++
		pz[zs[i]]++
	}
	keys := make([][3]int, 0, len(jointXYZ))
	for k := range jointXYZ {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		if keys[i][1] != keys[j][1] {
			return keys[i][1] < keys[j][1]
		}
		return keys[i][2] < keys[j][2]
	})
	var cmi float64
	for _, k := range keys {
		x, y, z := k[0], k[1], k[2]
		pxyz := jointXYZ[k] / n
		num := pxyz * (pz[z] / n)
		den := (jointXZ[[2]int{x, z}] / n) * (jointYZ[[2]int{y, z}] / n)
		cmi += pxyz * math.Log2(num/den)
	}
	if cmi < 0 {
		cmi = 0
	}
	return cmi, nil
}

// sortedIntKeys returns the keys of an int-keyed count map in increasing
// order.
func sortedIntKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// sortedPairKeys returns the keys of a pair-keyed map in lexicographic
// order.
func sortedPairKeys[V any](m map[[2]int]V) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}
