package stats

import "math"

// Entropy returns the Shannon entropy (base 2) of a discrete distribution
// given as counts. Zero counts contribute nothing; a zero total yields 0.
func Entropy(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// EntropyLabels returns the Shannon entropy (base 2) of a label sequence.
func EntropyLabels(labels []int) float64 {
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	cs := make([]int, 0, len(counts))
	for _, c := range counts {
		cs = append(cs, c)
	}
	return Entropy(cs)
}

// InformationGain returns IG(C; A) = H(C) - H(C|A) for a discretized
// attribute with values xs (bin indices) and class labels cs. This is the
// relevance measure the paper borrows from information theory for attribute
// selection (§II.B.2).
func InformationGain(xs, cs []int) (float64, error) {
	if len(xs) != len(cs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	hc := EntropyLabels(cs)

	// Partition class labels by attribute value.
	byValue := map[int][]int{}
	for i, x := range xs {
		byValue[x] = append(byValue[x], cs[i])
	}
	var hcGivenA float64
	n := float64(len(xs))
	for _, sub := range byValue {
		hcGivenA += float64(len(sub)) / n * EntropyLabels(sub)
	}
	return hc - hcGivenA, nil
}

// MutualInformation returns I(X; Y) in bits for two discrete variables.
func MutualInformation(xs, ys []int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))
	joint := map[[2]int]float64{}
	px := map[int]float64{}
	py := map[int]float64{}
	for i := range xs {
		joint[[2]int{xs[i], ys[i]}]++
		px[xs[i]]++
		py[ys[i]]++
	}
	var mi float64
	for k, c := range joint {
		pxy := c / n
		mi += pxy * math.Log2(pxy/((px[k[0]]/n)*(py[k[1]]/n)))
	}
	if mi < 0 { // floating-point noise on independent variables
		mi = 0
	}
	return mi, nil
}

// ConditionalMutualInformation returns I(X; Y | Z) in bits for discrete
// variables. It is the edge weight of the Chow-Liu tree in TAN structure
// learning, with Z the class variable.
func ConditionalMutualInformation(xs, ys, zs []int) (float64, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	n := float64(len(xs))

	jointXYZ := map[[3]int]float64{}
	jointXZ := map[[2]int]float64{}
	jointYZ := map[[2]int]float64{}
	pz := map[int]float64{}
	for i := range xs {
		jointXYZ[[3]int{xs[i], ys[i], zs[i]}]++
		jointXZ[[2]int{xs[i], zs[i]}]++
		jointYZ[[2]int{ys[i], zs[i]}]++
		pz[zs[i]]++
	}
	var cmi float64
	for k, c := range jointXYZ {
		x, y, z := k[0], k[1], k[2]
		pxyz := c / n
		num := pxyz * (pz[z] / n)
		den := (jointXZ[[2]int{x, z}] / n) * (jointYZ[[2]int{y, z}] / n)
		cmi += pxyz * math.Log2(num/den)
	}
	if cmi < 0 {
		cmi = 0
	}
	return cmi, nil
}
