package stats

import (
	"math"
	"sort"
)

// Entropy returns the Shannon entropy (base 2) of a discrete distribution
// given as counts. Zero counts contribute nothing; a zero total yields 0.
func Entropy(counts []int) float64 {
	var total int
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// maxDirectSpan caps the numeric span the dense counting tables below cover
// directly. Discretizer bins and class labels span a handful of values, so
// real inputs never take the rank-compressed layout.
const maxDirectSpan = 1 << 16

// axis lays one discrete variable out for dense counting: value v occupies
// index v-lo when the numeric span is modest, or its rank among the distinct
// values otherwise (table size must not scale with the raw span). Both
// layouts enumerate values in ascending order, so walking a table in index
// order is the same as walking the support in sorted order — floating-point
// sums are not associative, so that order is what keeps results bit-identical
// across runs.
type axis struct {
	lo    int
	width int
	rank  map[int]int // nil when the direct v-lo layout applies
}

func newAxis(xs []int) axis {
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if span := hi - lo; span >= 0 && span < maxDirectSpan {
		return axis{lo: lo, width: span + 1}
	}
	rank := make(map[int]int, len(xs))
	for _, x := range xs {
		rank[x] = 0
	}
	vals := make([]int, 0, len(rank))
	for v := range rank {
		vals = append(vals, v)
	}
	sort.Ints(vals)
	for i, v := range vals {
		rank[v] = i
	}
	return axis{width: len(vals), rank: rank}
}

func (a *axis) index(v int) int {
	if a.rank == nil {
		return v - a.lo
	}
	return a.rank[v]
}

// EntropyLabels returns the Shannon entropy (base 2) of a label sequence.
func EntropyLabels(labels []int) float64 {
	if len(labels) == 0 {
		return 0
	}
	ax := newAxis(labels)
	counts := make([]int, ax.width)
	for _, l := range labels {
		counts[ax.index(l)]++
	}
	return Entropy(counts)
}

// InformationGain returns IG(C; A) = H(C) - H(C|A) for a discretized
// attribute with values xs (bin indices) and class labels cs. This is the
// relevance measure the paper borrows from information theory for attribute
// selection (§II.B.2).
func InformationGain(xs, cs []int) (float64, error) {
	if len(xs) != len(cs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	axX, axC := newAxis(xs), newAxis(cs)
	// One pass fills the [value][class] contingency table and the class
	// marginal.
	table := make([]int, axX.width*axC.width)
	classCounts := make([]int, axC.width)
	for i, x := range xs {
		c := axC.index(cs[i])
		table[axX.index(x)*axC.width+c]++
		classCounts[c]++
	}
	hc := Entropy(classCounts)
	var hcGivenA float64
	n := float64(len(xs))
	for v := 0; v < axX.width; v++ {
		row := table[v*axC.width : (v+1)*axC.width]
		nv := 0
		for _, c := range row {
			nv += c
		}
		if nv == 0 {
			continue
		}
		hcGivenA += float64(nv) / n * Entropy(row)
	}
	return hc - hcGivenA, nil
}

// MutualInformation returns I(X; Y) in bits for two discrete variables.
func MutualInformation(xs, ys []int) (float64, error) {
	if len(xs) != len(ys) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	axX, axY := newAxis(xs), newAxis(ys)
	joint := make([]int, axX.width*axY.width)
	px := make([]int, axX.width)
	py := make([]int, axY.width)
	for i := range xs {
		x, y := axX.index(xs[i]), axY.index(ys[i])
		joint[x*axY.width+y]++
		px[x]++
		py[y]++
	}
	n := float64(len(xs))
	var mi float64
	for x := 0; x < axX.width; x++ {
		row := joint[x*axY.width : (x+1)*axY.width]
		for y, cnt := range row {
			if cnt == 0 {
				continue
			}
			pxy := float64(cnt) / n
			mi += pxy * math.Log2(pxy/((float64(px[x])/n)*(float64(py[y])/n)))
		}
	}
	if mi < 0 { // floating-point noise on independent variables
		mi = 0
	}
	return mi, nil
}

// ConditionalMutualInformation returns I(X; Y | Z) in bits for discrete
// variables. It is the edge weight of the Chow-Liu tree in TAN structure
// learning, with Z the class variable.
func ConditionalMutualInformation(xs, ys, zs []int) (float64, error) {
	if len(xs) != len(ys) || len(xs) != len(zs) {
		return 0, ErrLengthMismatch
	}
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	axX, axY, axZ := newAxis(xs), newAxis(ys), newAxis(zs)
	wY, wZ := axY.width, axZ.width
	jointXYZ := make([]int, axX.width*wY*wZ)
	jointXZ := make([]int, axX.width*wZ)
	jointYZ := make([]int, wY*wZ)
	pz := make([]int, wZ)
	for i := range xs {
		x, y, z := axX.index(xs[i]), axY.index(ys[i]), axZ.index(zs[i])
		jointXYZ[(x*wY+y)*wZ+z]++
		jointXZ[x*wZ+z]++
		jointYZ[y*wZ+z]++
		pz[z]++
	}
	n := float64(len(xs))
	var cmi float64
	for x := 0; x < axX.width; x++ {
		for y := 0; y < wY; y++ {
			base := (x*wY + y) * wZ
			for z := 0; z < wZ; z++ {
				cnt := jointXYZ[base+z]
				if cnt == 0 {
					continue
				}
				pxyz := float64(cnt) / n
				num := pxyz * (float64(pz[z]) / n)
				den := (float64(jointXZ[x*wZ+z]) / n) * (float64(jointYZ[y*wZ+z]) / n)
				cmi += pxyz * math.Log2(num/den)
			}
		}
	}
	if cmi < 0 {
		cmi = 0
	}
	return cmi, nil
}
