package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEntropy(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		want   float64
	}{
		{"empty", nil, 0},
		{"zero-total", []int{0, 0}, 0},
		{"pure", []int{10, 0}, 0},
		{"uniform2", []int{5, 5}, 1},
		{"uniform4", []int{3, 3, 3, 3}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Entropy(tt.counts); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Entropy(%v) = %v, want %v", tt.counts, got, tt.want)
			}
		})
	}
}

func TestEntropyLabels(t *testing.T) {
	if got := EntropyLabels([]int{0, 0, 1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("EntropyLabels = %v, want 1", got)
	}
	if got := EntropyLabels([]int{7, 7, 7}); got != 0 {
		t.Errorf("EntropyLabels of constant = %v, want 0", got)
	}
}

func TestInformationGainPerfectPredictor(t *testing.T) {
	// Attribute identical to the class: IG equals H(C) = 1 bit.
	xs := []int{0, 0, 1, 1}
	cs := []int{0, 0, 1, 1}
	ig, err := InformationGain(xs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ig, 1, 1e-12) {
		t.Errorf("IG of perfect predictor = %v, want 1", ig)
	}
}

func TestInformationGainIndependent(t *testing.T) {
	// Attribute carries no information about the class.
	xs := []int{0, 1, 0, 1}
	cs := []int{0, 0, 1, 1}
	ig, err := InformationGain(xs, cs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(ig, 0, 1e-12) {
		t.Errorf("IG of independent attribute = %v, want 0", ig)
	}
}

func TestInformationGainErrors(t *testing.T) {
	if _, err := InformationGain([]int{1}, []int{1, 2}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := InformationGain(nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestMutualInformationIdentical(t *testing.T) {
	xs := []int{0, 1, 0, 1, 0, 1}
	mi, err := MutualInformation(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	// I(X;X) = H(X) = 1 bit for a balanced binary variable.
	if !almostEqual(mi, 1, 1e-12) {
		t.Errorf("I(X;X) = %v, want 1", mi)
	}
}

func TestMutualInformationIndependent(t *testing.T) {
	// All four combinations equally likely: independent.
	xs := []int{0, 0, 1, 1}
	ys := []int{0, 1, 0, 1}
	mi, err := MutualInformation(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mi, 0, 1e-12) {
		t.Errorf("I(X;Y) independent = %v, want 0", mi)
	}
}

// Property: mutual information is non-negative and bounded by min(H(X),H(Y)).
func TestMutualInformationBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50
		xs := make([]int, n)
		ys := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(4)
			ys[i] = rng.Intn(3)
		}
		mi, err := MutualInformation(xs, ys)
		if err != nil {
			return false
		}
		hx := EntropyLabels(xs)
		hy := EntropyLabels(ys)
		bound := math.Min(hx, hy)
		return mi >= -1e-9 && mi <= bound+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConditionalMutualInformation(t *testing.T) {
	// X and Y identical, Z constant: I(X;Y|Z) = H(X) = 1.
	xs := []int{0, 1, 0, 1}
	zs := []int{0, 0, 0, 0}
	cmi, err := ConditionalMutualInformation(xs, xs, zs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cmi, 1, 1e-12) {
		t.Errorf("I(X;X|const) = %v, want 1", cmi)
	}

	// X determined entirely by Z, Y determined entirely by Z:
	// conditioned on Z they are constants, so I(X;Y|Z) = 0.
	zs2 := []int{0, 0, 1, 1}
	xs2 := []int{0, 0, 1, 1}
	ys2 := []int{1, 1, 0, 0}
	cmi, err = ConditionalMutualInformation(xs2, ys2, zs2)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(cmi, 0, 1e-12) {
		t.Errorf("I(X;Y|Z) with Z-determined variables = %v, want 0", cmi)
	}
}

func TestConditionalMutualInformationErrors(t *testing.T) {
	if _, err := ConditionalMutualInformation([]int{1}, []int{1, 2}, []int{1}); err != ErrLengthMismatch {
		t.Errorf("err = %v, want ErrLengthMismatch", err)
	}
	if _, err := ConditionalMutualInformation(nil, nil, nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

// Property: CMI is non-negative.
func TestConditionalMutualInformationNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		xs := make([]int, n)
		ys := make([]int, n)
		zs := make([]int, n)
		for i := range xs {
			xs[i] = rng.Intn(3)
			ys[i] = rng.Intn(3)
			zs[i] = rng.Intn(2)
		}
		cmi, err := ConditionalMutualInformation(xs, ys, zs)
		return err == nil && cmi >= 0 && !math.IsNaN(cmi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
