package registry

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"hpcap/internal/core"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// Scaler is the control surface the autoscaler drives: add or remove one
// replica of a named pool at a site. A single-site deployment binds a
// server.DAGTestbed (whose AddReplica/RemoveReplica take only the pool)
// behind a one-line adapter; a fleet routes on the site. Both methods
// report the pool's active replica count and whether anything changed (a
// pool at its bound refuses).
type Scaler interface {
	AddReplica(site, pool string) (int, bool)
	RemoveReplica(site, pool string) (int, bool)
}

// ScaleEvent is one autoscaling action, emitted via AutoscalerConfig's
// OnScale — always outside the autoscaler's locks, like every callback
// in the serving stack.
type ScaleEvent struct {
	Site string
	Seq  int64 // the decision window that triggered the action
	Pool string
	Up   bool
	// Replicas is the pool's active count after the action; Ratio the
	// offered-load/capacity ratio that triggered it.
	Replicas int
	Ratio    float64
}

// String renders the event in a stable, golden-friendly layout.
func (e ScaleEvent) String() string {
	dir := "down"
	if e.Up {
		dir = "up"
	}
	return fmt.Sprintf("scale site=%s seq=%d pool=%s dir=%s replicas=%d ratio=%.3f",
		e.Site, e.Seq, e.Pool, dir, e.Replicas, e.Ratio)
}

// AutoscalerConfig tunes an Autoscaler.
type AutoscalerConfig struct {
	// Scaler is the replica control surface. Required.
	Scaler Scaler
	// UpWindows is how many consecutive overload verdicts arm a
	// scale-up. Zero selects 2.
	UpWindows int
	// DownWindows is how many consecutive healthy verdicts arm a
	// scale-down — deliberately slower than UpWindows, the classic
	// asymmetric thermostat. Zero selects 6.
	DownWindows int
	// CooldownWindows is the quiet period after any action, letting the
	// new capacity show up in the counters before the next verdict.
	// Zero selects 4.
	CooldownWindows int
	// UpRatio is the least offered-load/capacity ratio the candidate
	// pool must show for a scale-up (overload verdicts with every pool
	// comfortably under capacity point at a non-capacity cause, e.g. a
	// fault storm). Zero selects 0.75.
	UpRatio float64
	// DownRatio is the most the shrink candidate may show for a
	// scale-down. Zero selects 0.4.
	DownRatio float64
	// OnScale, when set, receives every completed action. Called outside
	// all autoscaler locks.
	OnScale func(ScaleEvent)
}

// DefaultAutoscalerConfig returns the autoscaler thresholds at their
// conservative defaults. Scaler has no default.
func DefaultAutoscalerConfig() AutoscalerConfig {
	return AutoscalerConfig{
		UpWindows:       2,
		DownWindows:     6,
		CooldownWindows: 4,
		UpRatio:         0.75,
		DownRatio:       0.4,
	}
}

func (c AutoscalerConfig) withDefaults() AutoscalerConfig {
	def := DefaultAutoscalerConfig()
	if c.UpWindows == 0 {
		c.UpWindows = def.UpWindows
	}
	if c.DownWindows == 0 {
		c.DownWindows = def.DownWindows
	}
	if c.CooldownWindows == 0 {
		c.CooldownWindows = def.CooldownWindows
	}
	if c.UpRatio == 0 {
		c.UpRatio = def.UpRatio
	}
	if c.DownRatio == 0 {
		c.DownRatio = def.DownRatio
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping core.ErrBadConfig.
func (c AutoscalerConfig) Validate() []error {
	c = c.withDefaults()
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("registry: autoscaler: %w: "+format,
			append([]any{core.ErrBadConfig}, args...)...))
	}
	if c.Scaler == nil {
		bad("nil scaler")
	}
	if c.UpWindows < 1 {
		bad("up windows %d, need >= 1", c.UpWindows)
	}
	if c.DownWindows < 1 {
		bad("down windows %d, need >= 1", c.DownWindows)
	}
	if c.CooldownWindows < 0 {
		bad("cooldown windows %d, need >= 0", c.CooldownWindows)
	}
	if math.IsNaN(c.UpRatio) || math.IsInf(c.UpRatio, 0) || c.UpRatio < 0 {
		bad("bad up ratio %v", c.UpRatio)
	}
	if math.IsNaN(c.DownRatio) || math.IsInf(c.DownRatio, 0) || c.DownRatio < 0 {
		bad("bad down ratio %v", c.DownRatio)
	}
	return errs
}

// scaled is the autoscaling state of one site.
type scaled struct {
	mu         sync.Mutex
	overload   int // consecutive overload verdicts
	healthy    int // consecutive healthy verdicts
	cooldownAt int64
	acting     bool // an action is in flight outside the lock
}

// scaleStripe is one lock's worth of the autoscaler's site table.
type scaleStripe struct {
	mu    sync.Mutex
	sites map[string]*scaled
}

// Autoscaler closes the capacity loop: it watches the pipeline's
// overload verdicts alongside the testbed's per-pool load ratios and
// adds replicas to the bottleneck pool (or drains the idlest) through a
// Scaler — the scale-out counterpart of the AdmissionValve, which can
// only shed load. Striped like the lifecycle manager, so sites on
// different stripes never contend.
type Autoscaler struct {
	cfg     AutoscalerConfig
	stripes [lifecycleStripes]scaleStripe
	ups     atomic.Uint64
	downs   atomic.Uint64
}

// NewAutoscaler validates the configuration and returns an autoscaler.
// Wire it up by calling Observe with each decision and the current pool
// loads (server.DAGTestbed.PoolLoads).
func NewAutoscaler(cfg AutoscalerConfig) (*Autoscaler, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	a := &Autoscaler{cfg: cfg.withDefaults()}
	for i := range a.stripes {
		a.stripes[i].sites = make(map[string]*scaled)
	}
	return a, nil
}

// ensure returns the site's scaling state, creating it on first use.
func (a *Autoscaler) ensure(site string) *scaled {
	sp := &a.stripes[serve.SiteShard(site, lifecycleStripes)]
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if st, ok := sp.sites[site]; ok {
		return st
	}
	st := &scaled{}
	sp.sites[site] = st
	return st
}

// Actions returns the lifetime scale-up and scale-down counts.
func (a *Autoscaler) Actions() (ups, downs uint64) {
	return a.ups.Load(), a.downs.Load()
}

// Observe feeds one decision window and the pool loads measured over it.
// It returns the action taken, if any. Degraded and low-confidence
// windows are ignored outright — scaling real machines on corrupted
// telemetry is how fault storms turn into capacity incidents — and they
// do not advance either verdict streak.
func (a *Autoscaler) Observe(d serve.Decision, loads []server.PoolLoad) *ScaleEvent {
	if d.Degraded || d.LowConfidence || len(loads) == 0 {
		return nil
	}
	st := a.ensure(d.Site)

	st.mu.Lock()
	// Windows inside the cooldown (or while an action is in flight) are
	// discarded outright — they reflect the old capacity, so letting them
	// accumulate a streak would double-fire on one episode.
	if st.acting || d.Seq < st.cooldownAt {
		st.mu.Unlock()
		return nil
	}
	if d.Prediction.Overload {
		st.overload++
		st.healthy = 0
	} else {
		st.healthy++
		st.overload = 0
	}
	var up bool
	var target int
	switch {
	case st.overload >= a.cfg.UpWindows:
		up = true
		target = server.BottleneckPool(loads)
		if target < 0 || loads[target].Ratio() < a.cfg.UpRatio {
			st.mu.Unlock()
			return nil
		}
	case st.healthy >= a.cfg.DownWindows:
		target = idlestPool(loads)
		if target < 0 || loads[target].Ratio() > a.cfg.DownRatio {
			st.mu.Unlock()
			return nil
		}
	default:
		st.mu.Unlock()
		return nil
	}
	// Perform the action outside the lock: a Scaler may be slow, and its
	// callbacks (or OnScale) may re-enter the autoscaler.
	st.acting = true
	st.mu.Unlock()

	pool := loads[target].Pool
	var replicas int
	var ok bool
	if up {
		replicas, ok = a.cfg.Scaler.AddReplica(d.Site, pool)
	} else {
		replicas, ok = a.cfg.Scaler.RemoveReplica(d.Site, pool)
	}

	st.mu.Lock()
	st.acting = false
	if ok {
		st.cooldownAt = d.Seq + int64(a.cfg.CooldownWindows)
		st.overload, st.healthy = 0, 0
	}
	st.mu.Unlock()

	if !ok {
		return nil
	}
	if up {
		a.ups.Add(1)
	} else {
		a.downs.Add(1)
	}
	ev := &ScaleEvent{
		Site: d.Site, Seq: d.Seq, Pool: pool, Up: up,
		Replicas: replicas, Ratio: loads[target].Ratio(),
	}
	if a.cfg.OnScale != nil {
		a.cfg.OnScale(*ev)
	}
	return ev
}

// idlestPool returns the index of the pool with the lowest
// offered-load/capacity ratio that still has a replica to give (more
// than one active), or -1 when no pool qualifies.
func idlestPool(loads []server.PoolLoad) int {
	best := -1
	var bestRatio float64
	for i, l := range loads {
		if l.Replicas <= 1 {
			continue
		}
		r := l.Ratio()
		if best < 0 || r < bestRatio {
			best, bestRatio = i, r
		}
	}
	return best
}
