package registry_test

import (
	"errors"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
)

// stubPipeline satisfies registry.Pipeline without a serving stack; the
// validation tests never call it.
type stubPipeline struct{}

func (stubPipeline) SwapMonitor(site string, m *core.Monitor, version int64) (serve.SwapEvent, error) {
	return serve.SwapEvent{}, nil
}
func (stubPipeline) NoteDrift(site string, n int) {}

func TestRegistryDefaultConfigValid(t *testing.T) {
	cfg := registry.DefaultConfig()
	cfg.Pipeline = stubPipeline{}
	cfg.Train = core.Config{Learner: bayes.TANLearner()}
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig + pipeline + learner invalid: %v", errs)
	}
	// Zero windows resolve to defaults rather than failing.
	cfg.HistoryWindows, cfg.ShadowWindows, cfg.MinTrainWindows, cfg.CooldownWindows = 0, 0, 0, 0
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("zero windows invalid after defaults: %v", errs)
	}
}

func TestRegistryConfigValidateErrors(t *testing.T) {
	base := func() registry.Config {
		cfg := registry.DefaultConfig()
		cfg.Pipeline = stubPipeline{}
		cfg.Train = core.Config{Learner: bayes.TANLearner()}
		return cfg
	}
	tests := []struct {
		name   string
		mutate func(*registry.Config)
	}{
		{"nil pipeline", func(c *registry.Config) { c.Pipeline = nil }},
		{"missing learner", func(c *registry.Config) { c.Train.Learner.New = nil }},
		{"negative history", func(c *registry.Config) { c.HistoryWindows = -1 }},
		{"negative shadow", func(c *registry.Config) { c.ShadowWindows = -1 }},
		{"shadow swallows history", func(c *registry.Config) { c.HistoryWindows = 8; c.ShadowWindows = 8 }},
		{"negative min train", func(c *registry.Config) { c.MinTrainWindows = -1 }},
		{"negative cooldown", func(c *registry.Config) { c.CooldownWindows = -1 }},
		{"bad drift config", func(c *registry.Config) { c.Drift.CorrWindow = 1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			errs := cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
		})
	}
}
