package registry_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/drift"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/predictor"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

const fixtureLevel = metrics.LevelHPC

// fx caches the expensive fixture: a quick-scale lab, its trained HPC
// monitor, and the interleaved test trace with per-second recordings.
var fx struct {
	once  sync.Once
	err   error
	lab   *experiment.Lab
	mon   *core.Monitor
	tr    *experiment.Trace
	names []string
}

func fixture(t testing.TB) (*experiment.Lab, *core.Monitor, *experiment.Trace, []string) {
	t.Helper()
	fx.once.Do(func() {
		lab := experiment.NewLab(experiment.QuickScale())
		mon, err := lab.TrainMonitor(fixtureLevel, predictor.Config{})
		if err != nil {
			fx.err = err
			return
		}
		wb, err := lab.Workload(tpcw.Browsing())
		if err != nil {
			fx.err = err
			return
		}
		wo, err := lab.Workload(tpcw.Ordering())
		if err != nil {
			fx.err = err
			return
		}
		tr, err := experiment.Generate(experiment.TraceConfig{
			Server:        lab.Server,
			Schedule:      experiment.InterleavedSchedule(wb, wo, lab.Scale),
			Window:        lab.Scale.Window,
			Warmup:        lab.Scale.WarmupWindows,
			Seed:          lab.Seed + 104,
			Labeler:       lab.Labeler,
			RecordSeconds: true,
		})
		if err != nil {
			fx.err = err
			return
		}
		fx.lab, fx.mon, fx.tr, fx.names = lab, mon, tr, tr.Names(fixtureLevel)
	})
	if fx.err != nil {
		t.Fatalf("fixture: %v", fx.err)
	}
	return fx.lab, fx.mon, fx.tr, fx.names
}

func TestStoreVersioning(t *testing.T) {
	s := registry.NewStore()
	if _, ok := s.Active("shop"); ok {
		t.Fatal("empty store has an active version")
	}
	v0 := s.Register("shop", registry.Version{Reason: "initial", Swapped: true})
	if v0.ID != 0 {
		t.Fatalf("first version ID = %d, want 0", v0.ID)
	}
	v1 := s.Register("shop", registry.Version{Reason: "accuracy", SwapSeq: -1})
	if v1.ID != 1 {
		t.Fatalf("second version ID = %d, want 1", v1.ID)
	}
	if a, ok := s.Active("shop"); !ok || a.ID != 0 {
		t.Fatalf("active = %+v, want version 0", a)
	}
	s.RecordSwap("shop", 1, 42)
	if a, ok := s.Active("shop"); !ok || a.ID != 1 || a.SwapSeq != 42 {
		t.Fatalf("after swap active = %+v, want version 1 at seq 42", a)
	}
	if h := s.History("shop"); len(h) != 2 || h[0].ID != 0 || h[1].ID != 1 {
		t.Fatalf("history = %+v", h)
	}
	if s.Sites() != 1 {
		t.Fatalf("Sites = %d, want 1", s.Sites())
	}
}

func TestManagerValidation(t *testing.T) {
	lab, mon, _, names := fixture(t)
	pipe, err := serve.NewPipeline(mon, serve.Config{Window: lab.Scale.Window})
	if err != nil {
		t.Fatal(err)
	}
	learner := bayes.TANLearner()
	cases := []struct {
		name string
		cfg  registry.Config
		want error
	}{
		{"nil pipeline", registry.Config{Initial: mon, Names: names, Train: core.Config{Learner: learner}}, core.ErrBadConfig},
		{"nil initial", registry.Config{Pipeline: pipe, Names: names, Train: core.Config{Learner: learner}}, core.ErrUntrained},
		{"untrained initial", registry.Config{Pipeline: pipe, Initial: &core.Monitor{}, Names: names, Train: core.Config{Learner: learner}}, core.ErrUntrained},
		{"bad names", registry.Config{Pipeline: pipe, Initial: mon, Names: []string{"x"}, Train: core.Config{Learner: learner}}, core.ErrDimensionMismatch},
		{"no learner", registry.Config{Pipeline: pipe, Initial: mon, Names: names}, core.ErrBadConfig},
	}
	for _, tc := range cases {
		if _, err := registry.NewManager(tc.cfg); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := registry.NewManager(registry.Config{
		Pipeline: pipe, Initial: mon, Names: names, Train: core.Config{Learner: learner},
	}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// runLifecycle streams the fixture trace through a managed pipeline,
// feeding each window's ground truth with a one-window delay. From window
// lieFrom on the truth labels alternate 1/0 regardless of the trace,
// manufacturing a ~50% error rate (accuracy drift) while guaranteeing
// every retraining snapshot holds both classes.
func runLifecycle(t *testing.T, cfg registry.Config, lieFrom int) (*registry.Manager, []registry.Event, *serve.Pipeline) {
	t.Helper()
	lab, mon, tr, names := fixture(t)

	var mu sync.Mutex
	var events []registry.Event
	var decisions []serve.Decision
	pipe, err := serve.NewPipeline(mon, serve.Config{
		Window: lab.Scale.Window,
		OnDecision: func(d serve.Decision) {
			mu.Lock()
			decisions = append(decisions, d)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Pipeline = pipe
	cfg.Initial = mon
	cfg.Names = names
	cfg.Train = core.Config{Learner: bayes.TANLearner(), Synopsis: core.DefaultSynopsisConfig(lab.Seed)}
	cfg.OnEvent = func(e registry.Event) {
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
	}
	mgr, err := registry.NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}

	truth := func(i int) registry.Truth {
		w := tr.Windows[i]
		over := w.Overload == 1
		if i >= lieFrom {
			over = i%2 == 0
		}
		return registry.Truth{Overload: over, Bottleneck: w.Bottleneck, Throughput: w.Throughput}
	}
	var vecs [server.NumTiers][][]float64
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = tr.SecondVectors(fixtureLevel, tier)
	}
	fedTruth := 0
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			pipe.Ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
		// Deliver truth one window behind the decision stream.
		mu.Lock()
		ready := len(decisions) - 1
		mu.Unlock()
		for ; fedTruth < ready; fedTruth++ {
			mgr.HandleDecision(decisions[fedTruth])
			mgr.ObserveTruth("s", decisions[fedTruth].Seq, truth(fedTruth))
		}
	}
	pipe.Flush()
	mu.Lock()
	for ; fedTruth < len(decisions); fedTruth++ {
		mu.Unlock()
		mgr.HandleDecision(decisions[fedTruth])
		mgr.ObserveTruth("s", decisions[fedTruth].Seq, truth(fedTruth))
		mu.Lock()
	}
	mu.Unlock()
	mgr.Wait()
	mu.Lock()
	defer mu.Unlock()
	return mgr, append([]registry.Event(nil), events...), pipe
}

// lifecycleConfig arms only the accuracy detector, tightly enough that
// inverted labels trip it within the quick-scale trace.
func lifecycleConfig() registry.Config {
	return registry.Config{
		Drift: drift.Config{
			PHLambda:     3,
			MinWindows:   4,
			MixThreshold: -1,
		},
		MinTrainWindows: 8,
		ShadowWindows:   4,
		CooldownWindows: 6,
	}
}

func TestManagerLifecycleSync(t *testing.T) {
	mgr, events, pipe := runLifecycle(t, lifecycleConfig(), 10)

	var drifts, retrains, trained int
	for _, e := range events {
		switch e.Kind {
		case registry.EventDrift:
			drifts++
			if len(e.Signals) == 0 || e.Site != "s" {
				t.Errorf("malformed drift event %+v", e)
			}
		case registry.EventRetrain:
			retrains++
			if e.Err != nil {
				// A snapshot can legitimately be untrainable (e.g. one
				// class only); the event must carry the error instead.
				continue
			}
			trained++
			v := e.Version
			if v.ID < 1 || v.Windows < 8 || v.Reason != "accuracy" {
				t.Errorf("malformed retrain version %+v", v)
			}
			if v.CandidateBA < 0 || v.CandidateBA > 1 || v.IncumbentBA < 0 || v.IncumbentBA > 1 {
				t.Errorf("shadow scores out of range: %+v", v)
			}
		}
	}
	if drifts == 0 {
		t.Fatal("lying labels never signalled accuracy drift")
	}
	if trained == 0 {
		t.Fatalf("no retrain succeeded (%d attempts)", retrains)
	}

	hist := mgr.Store().History("s")
	if len(hist) != trained+1 {
		t.Errorf("store holds %d versions, want %d (initial + successful retrains)", len(hist), trained+1)
	}
	if hist[0].Reason != "initial" || !hist[0].Swapped {
		t.Errorf("version 0 = %+v, want swapped initial", hist[0])
	}
	active, ok := mgr.Store().Active("s")
	if !ok {
		t.Fatal("no active version")
	}
	st, _ := pipe.SiteStats("s")
	if st.DriftSignals == 0 {
		t.Error("drift signals never reached the pipeline counters")
	}
	if active.ID != st.ModelVersion {
		t.Errorf("store active version %d, pipeline serving %d", active.ID, st.ModelVersion)
	}
	if st.ModelSwaps != uint64(countSwapped(hist))-1 {
		t.Errorf("pipeline swaps %d, store has %d swapped candidates", st.ModelSwaps, countSwapped(hist)-1)
	}

	// Cooldown: consecutive retrains must be at least CooldownWindows of
	// labeled stream apart.
	var lastSeq int64 = -1 << 62
	for _, e := range events {
		if e.Kind != registry.EventRetrain {
			continue
		}
		if e.Seq-lastSeq < 6 {
			t.Errorf("retrains at seq %d and %d inside the cooldown", lastSeq, e.Seq)
		}
		lastSeq = e.Seq
	}
}

func countSwapped(hist []registry.Version) int {
	n := 0
	for _, v := range hist {
		if v.Swapped {
			n++
		}
	}
	return n
}

func TestManagerLifecycleBackground(t *testing.T) {
	cfg := lifecycleConfig()
	cfg.Background = true
	_, events, _ := runLifecycle(t, cfg, 10)
	var trained int
	for _, e := range events {
		if e.Kind == registry.EventRetrain && e.Err == nil {
			trained++
		}
	}
	if trained == 0 {
		t.Fatal("background mode never completed a retrain")
	}
}

// TestManagerIgnoresUnknownTruth pins the pairing contract: truth for a
// window the manager never saw a decision for is dropped silently.
func TestManagerIgnoresUnknownTruth(t *testing.T) {
	lab, mon, _, names := fixture(t)
	pipe, err := serve.NewPipeline(mon, serve.Config{Window: lab.Scale.Window})
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	mgr, err := registry.NewManager(registry.Config{
		Pipeline: pipe, Initial: mon, Names: names,
		Train:   core.Config{Learner: bayes.TANLearner()},
		OnEvent: func(registry.Event) { fired = true },
	})
	if err != nil {
		t.Fatal(err)
	}
	mgr.ObserveTruth("ghost", 7, registry.Truth{Overload: true})
	if fired {
		t.Error("unknown truth produced an event")
	}
	if got := mgr.Store().History("ghost"); len(got) != 1 {
		t.Errorf("ghost site has %d versions, want 1 (initial registered on first contact)", len(got))
	}
}

// TestManagerGuardsDegradedDecisions pins the lifecycle guard: decisions
// made from partial windows never reach the drift detectors unless
// AllowDegraded is set, and their orphaned truth is dropped silently.
func TestManagerGuardsDegradedDecisions(t *testing.T) {
	lab, mon, _, names := fixture(t)
	run := func(allow bool) (*registry.Manager, int) {
		pipe, err := serve.NewPipeline(mon, serve.Config{Window: lab.Scale.Window})
		if err != nil {
			t.Fatal(err)
		}
		drifts := 0
		mgr, err := registry.NewManager(registry.Config{
			Pipeline: pipe, Initial: mon, Names: names,
			Train:         core.Config{Learner: bayes.TANLearner()},
			Drift:         drift.Config{PHLambda: 3, MinWindows: 4, MixThreshold: -1},
			AllowDegraded: allow,
			OnEvent: func(e registry.Event) {
				if e.Kind == registry.EventDrift {
					drifts++
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// Degraded windows scripting an accuracy collapse: eight correct
		// predictions, then twelve wrong ones. With the guard off the
		// Page–Hinkley test trips on the shift; with it on, none of the
		// windows may advance any detector state.
		for seq := int64(1); seq <= 20; seq++ {
			mgr.HandleDecision(serve.Decision{Site: "s", Seq: seq, Degraded: true, Missing: 1})
			mgr.ObserveTruth("s", seq, registry.Truth{Overload: seq > 8})
		}
		return mgr, drifts
	}

	mgr, drifts := run(false)
	if got := mgr.Guarded(); got != 20 {
		t.Errorf("guard off-by-default: Guarded() = %d, want 20", got)
	}
	if drifts != 0 {
		t.Errorf("guarded decisions still produced %d drift events", drifts)
	}

	mgr, drifts = run(true)
	if got := mgr.Guarded(); got != 0 {
		t.Errorf("AllowDegraded: Guarded() = %d, want 0", got)
	}
	if drifts == 0 {
		t.Error("AllowDegraded admitted no windows: the wrong predictions never signalled drift")
	}
}

// TestEventString pins the golden-facing renderings.
func TestEventString(t *testing.T) {
	e := registry.Event{
		Kind: registry.EventDrift, Site: "s", Seq: 9,
		Signals: []drift.Signal{{Kind: drift.KindAccuracy, Seq: 9, Tier: -1, Score: 5.5, Threshold: 3}},
	}
	if got, want := e.String(), "drift site=s seq=9 accuracy score=5.5000 threshold=3.0000"; got != want {
		t.Errorf("drift event = %q, want %q", got, want)
	}
	e = registry.Event{
		Kind: registry.EventRetrain, Site: "s", Seq: 12,
		Version: registry.Version{ID: 2, Windows: 40, CandidateBA: 0.9, IncumbentBA: 0.5, Swapped: true},
	}
	if got, want := e.String(), "retrain site=s seq=12 version=2 windows=40 shadow cand=0.9000 inc=0.5000 swapped=true"; got != want {
		t.Errorf("retrain event = %q, want %q", got, want)
	}
	e = registry.Event{Kind: registry.EventRetrain, Site: "s", Seq: 3, Err: errors.New("boom")}
	if got, want := e.String(), "retrain site=s seq=3 err=boom"; got != want {
		t.Errorf("failed retrain event = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%s", e) // Stringer wired
}
