package registry

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"hpcap/internal/core"
	"hpcap/internal/drift"
	"hpcap/internal/ml"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// Truth is the delayed ground truth for one decided window, assembled by
// the caller once the application-level labels become available (the
// simulator produces them directly; a deployment derives them from SLA
// bookkeeping a window or two after the fact).
type Truth struct {
	Overload   bool
	Bottleneck server.TierID
	// Throughput is completed requests per second over the window; the
	// PI-correlation drift detector re-ranks candidates against it.
	Throughput float64
	// ClassCounts is the window's request arrivals by class, for the
	// mix-shift detector (nil disables it for the window).
	ClassCounts []float64
}

// EventKind labels lifecycle events.
type EventKind int

// The lifecycle event kinds.
const (
	// EventDrift reports drift signals on one labeled window.
	EventDrift EventKind = iota + 1
	// EventRetrain reports a completed retrain attempt, swapped or not.
	EventRetrain
)

// Event is one lifecycle occurrence, emitted via Config.OnEvent.
type Event struct {
	Kind EventKind
	Site string
	// Seq is the labeled window that produced the event (for retrains,
	// the window whose drift signal triggered the attempt).
	Seq     int64
	Signals []drift.Signal // EventDrift
	Version Version        // EventRetrain: the registered candidate
	Err     error          // EventRetrain: training failure (no Version)
}

// String renders the event in a stable, golden-friendly layout.
func (e Event) String() string {
	switch e.Kind {
	case EventDrift:
		parts := make([]string, len(e.Signals))
		for i, s := range e.Signals {
			parts[i] = s.String()
		}
		return fmt.Sprintf("drift site=%s seq=%d %s", e.Site, e.Seq, strings.Join(parts, "; "))
	case EventRetrain:
		if e.Err != nil {
			return fmt.Sprintf("retrain site=%s seq=%d err=%v", e.Site, e.Seq, e.Err)
		}
		v := e.Version
		return fmt.Sprintf("retrain site=%s seq=%d version=%d windows=%d shadow cand=%.4f inc=%.4f swapped=%t",
			e.Site, e.Seq, v.ID, v.Windows, v.CandidateBA, v.IncumbentBA, v.Swapped)
	default:
		return fmt.Sprintf("event(%d) site=%s seq=%d", int(e.Kind), e.Site, e.Seq)
	}
}

// Pipeline is the slice of the serving surface the lifecycle drives:
// swapping a site's model and surfacing drift signals on its counters.
// Both serve.Pipeline and serve.ShardedPipeline satisfy it, so one
// manager runs unchanged over the single-lock and the fleet-scale
// sharded serving paths.
type Pipeline interface {
	SwapMonitor(site string, m *core.Monitor, version int64) (serve.SwapEvent, error)
	NoteDrift(site string, n int)
}

// Config tunes a Manager.
type Config struct {
	// Pipeline is the serving pipeline whose models the manager swaps.
	Pipeline Pipeline
	// Initial is the trained monitor the pipeline was built with; it is
	// registered as version 0 of every site the manager sees.
	Initial *core.Monitor
	// Names is the metric layout of decision vectors, used for
	// retraining datasets and the correlation drift detector.
	Names []string
	// Train configures candidate retraining; Learner is required. Set
	// Train.Workers to fan the per-tier synopsis builds out over
	// internal/parallel workers.
	Train core.Config
	// Drift is the per-site detector configuration; Names defaults to
	// Config.Names. Set Drift.Reference to arm the per-tier
	// PI-correlation test.
	Drift drift.Config
	// HistoryWindows is the labeled-window ring kept per site for
	// retraining snapshots. Zero selects 128.
	HistoryWindows int
	// MinTrainWindows is the least labeled windows (beyond the shadow
	// tail) required before a drift signal triggers a retrain. Zero
	// selects 32.
	MinTrainWindows int
	// ShadowWindows is the held-out tail of the history used to
	// shadow-evaluate candidate vs incumbent. Zero selects 12.
	ShadowWindows int
	// SwapMargin is how much the candidate's shadow balanced accuracy
	// must exceed the incumbent's to win the swap. Zero selects 0.02;
	// negative means any improvement wins.
	SwapMargin float64
	// CooldownWindows is the least labeled windows between retrain
	// attempts on one site. Zero selects 24.
	CooldownWindows int
	// AllowDegraded admits decisions made from partial (degraded) or
	// low-confidence (mostly imputed) windows into the lifecycle. Off by
	// default: a fault-corrupted window is evidence about the stream, not
	// the workload, so feeding it to the
	// drift detectors or a retraining set would let injected noise trigger
	// model churn. Guarded decisions are counted (Manager.Guarded) and
	// otherwise ignored.
	AllowDegraded bool
	// Background moves retraining to a goroutine (the daemon's mode).
	// Synchronous retraining — the default — keeps the whole lifecycle
	// deterministic for replays.
	Background bool
	// OnEvent, when set, receives every lifecycle event. In background
	// mode it may be called from the retrain goroutine.
	OnEvent func(Event)
}

// DefaultConfig returns the lifecycle thresholds at their conservative
// defaults. Pipeline, Initial, Names, and Train have no defaults — the
// manager is meaningless without them.
func DefaultConfig() Config {
	return Config{
		HistoryWindows:  128,
		MinTrainWindows: 32,
		ShadowWindows:   12,
		SwapMargin:      0.02,
		CooldownWindows: 24,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.HistoryWindows == 0 {
		c.HistoryWindows = def.HistoryWindows
	}
	if c.MinTrainWindows == 0 {
		c.MinTrainWindows = def.MinTrainWindows
	}
	if c.ShadowWindows == 0 {
		c.ShadowWindows = def.ShadowWindows
	}
	if c.SwapMargin == 0 {
		c.SwapMargin = def.SwapMargin
	} else if c.SwapMargin < 0 {
		// "Any improvement wins": a strictly better candidate swaps, a
		// tied or worse one never does.
		c.SwapMargin = 0
	}
	if c.CooldownWindows == 0 {
		c.CooldownWindows = def.CooldownWindows
	}
	if len(c.Drift.Names) == 0 {
		c.Drift.Names = c.Names
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping core.ErrBadConfig. Monitor-shape checks
// (trained initial model, name/dimension agreement) stay in NewManager
// under their own sentinel errors; Validate covers configuration shape
// only.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("registry: %w: "+format, append([]any{core.ErrBadConfig}, args...)...))
	}
	if c.Pipeline == nil {
		bad("nil pipeline")
	}
	if c.Train.Learner.New == nil {
		bad("Train.Learner is required")
	}
	if c.HistoryWindows < 1 {
		bad("history windows %d, need >= 1", c.HistoryWindows)
	}
	if c.ShadowWindows < 1 {
		bad("shadow windows %d, need >= 1", c.ShadowWindows)
	}
	if c.ShadowWindows >= c.HistoryWindows {
		bad("shadow windows %d must fit inside history windows %d", c.ShadowWindows, c.HistoryWindows)
	}
	if c.MinTrainWindows < 1 {
		bad("min train windows %d, need >= 1", c.MinTrainWindows)
	}
	if c.CooldownWindows < 0 {
		bad("cooldown windows %d, need >= 0", c.CooldownWindows)
	}
	errs = append(errs, c.Drift.Validate()...)
	return errs
}

// labeled is one decided window paired with its ground truth.
type labeled struct {
	seq        int64
	time       float64
	vectors    [server.NumTiers][]float64
	predicted  bool
	overload   int
	bottleneck server.TierID
	throughput float64
	classes    []float64
}

// managed is the lifecycle state of one site.
type managed struct {
	mu         sync.Mutex
	det        *drift.Detector
	pending    map[int64]serve.Decision
	hist       []labeled
	incumbent  *core.Monitor
	retraining bool
	cooldownAt int64 // no retrain before this window seq
}

// lifecycleStripes is how many ways the manager's site table is striped.
// Sites route to stripes with the same hash the sharded pipeline routes
// ingest with, so a fleet spread over shards also spreads over stripes.
const lifecycleStripes = 16

// stripe is one lock's worth of the manager's site table.
type stripe struct {
	mu    sync.Mutex
	sites map[string]*managed
}

// Manager runs the adaptive model lifecycle over one pipeline's sites.
type Manager struct {
	cfg   Config
	store *Store

	stripes [lifecycleStripes]stripe
	guarded atomic.Uint64
	wg      sync.WaitGroup
}

// NewManager validates the configuration and returns a manager with an
// empty store. Wire it up by calling HandleDecision from the pipeline's
// OnDecision (or a subscriber) and ObserveTruth as labels arrive.
func NewManager(cfg Config) (*Manager, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	if cfg.Initial == nil || cfg.Initial.Coordinator() == nil {
		return nil, fmt.Errorf("registry: %w: initial monitor", core.ErrUntrained)
	}
	if len(cfg.Names) != cfg.Initial.InputDim() {
		return nil, fmt.Errorf("registry: %w: %d metric names for input dim %d",
			core.ErrDimensionMismatch, len(cfg.Names), cfg.Initial.InputDim())
	}
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:   cfg,
		store: NewStore(),
	}
	for i := range m.stripes {
		m.stripes[i].sites = make(map[string]*managed)
	}
	return m, nil
}

// Store exposes the version store (for endpoints and tests).
func (m *Manager) Store() *Store { return m.store }

// Wait blocks until every background retrain in flight has completed.
func (m *Manager) Wait() { m.wg.Wait() }

// ensure returns the site's lifecycle state, creating it (and registering
// the initial model as version 0) on first use. Only the site's stripe
// locks: decisions for sites on different stripes never contend here.
func (m *Manager) ensure(site string) (*managed, error) {
	sp := &m.stripes[serve.SiteShard(site, lifecycleStripes)]
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if st, ok := sp.sites[site]; ok {
		return st, nil
	}
	det, err := drift.New(m.cfg.Drift)
	if err != nil {
		return nil, fmt.Errorf("registry: %s: %w", site, err)
	}
	st := &managed{
		det:       det,
		pending:   make(map[int64]serve.Decision),
		incumbent: m.cfg.Initial,
	}
	sp.sites[site] = st
	m.store.Register(site, Version{
		Monitor: m.cfg.Initial,
		Reason:  "initial",
		Swapped: true,
	})
	return st, nil
}

// Guarded returns how many degraded decisions the lifecycle refused to
// learn from (always 0 with Config.AllowDegraded set).
func (m *Manager) Guarded() uint64 { return m.guarded.Load() }

// HandleDecision buffers a decision until its ground truth arrives. Safe
// to call from the pipeline's OnDecision callback. Degraded and
// low-confidence decisions are guarded out unless Config.AllowDegraded is
// set: their truth, when it arrives, finds no pending decision and is
// likewise dropped, so a fault-corrupted (or mostly imputed) window can
// neither advance the drift detectors nor enter a retraining history.
func (m *Manager) HandleDecision(d serve.Decision) {
	if (d.Degraded || d.LowConfidence) && !m.cfg.AllowDegraded {
		m.guarded.Add(1)
		return
	}
	st, err := m.ensure(d.Site)
	if err != nil {
		return
	}
	st.mu.Lock()
	st.pending[d.Seq] = d
	// Truth that never arrives (dropped windows, restarts) must not leak:
	// forget decisions far older than the history the manager keeps.
	if len(st.pending) > 2*m.cfg.HistoryWindows {
		floor := d.Seq - int64(2*m.cfg.HistoryWindows)
		for seq := range st.pending {
			if seq < floor {
				delete(st.pending, seq)
			}
		}
	}
	st.mu.Unlock()
}

// ObserveTruth pairs a window's delayed ground truth with its buffered
// decision, advances the drift detectors, and — when drift fires outside
// the cooldown with enough labeled history — retrains and possibly swaps
// the site's model. Unknown (site, seq) pairs are ignored.
func (m *Manager) ObserveTruth(site string, seq int64, tr Truth) {
	st, err := m.ensure(site)
	if err != nil {
		return
	}
	st.mu.Lock()
	d, ok := st.pending[seq]
	if !ok {
		st.mu.Unlock()
		return
	}
	delete(st.pending, seq)
	lw := labeled{
		seq:        seq,
		time:       d.Time,
		vectors:    d.Vectors,
		predicted:  d.Prediction.Overload,
		bottleneck: tr.Bottleneck,
		throughput: tr.Throughput,
		classes:    tr.ClassCounts,
	}
	if tr.Overload {
		lw.overload = 1
	}
	st.hist = append(st.hist, lw)
	if over := len(st.hist) - m.cfg.HistoryWindows; over > 0 {
		st.hist = append(st.hist[:0], st.hist[over:]...)
	}
	sigs := st.det.Observe(drift.Observation{
		Seq:         seq,
		Predicted:   d.Prediction.Overload,
		Truth:       tr.Overload,
		Throughput:  tr.Throughput,
		Vectors:     d.Vectors,
		ClassCounts: tr.ClassCounts,
	})
	var snapshot []labeled
	retrain := false
	if len(sigs) > 0 && !st.retraining && seq >= st.cooldownAt &&
		len(st.hist) >= m.cfg.MinTrainWindows+m.cfg.ShadowWindows {
		st.retraining = true
		retrain = true
		snapshot = append([]labeled(nil), st.hist...)
	}
	st.mu.Unlock()

	if len(sigs) > 0 {
		m.cfg.Pipeline.NoteDrift(site, len(sigs))
		m.emit(Event{Kind: EventDrift, Site: site, Seq: seq, Signals: sigs})
	}
	if !retrain {
		return
	}
	reason := sigs[0].Kind.String()
	if m.cfg.Background {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.retrain(site, st, snapshot, seq, reason)
		}()
		return
	}
	m.retrain(site, st, snapshot, seq, reason)
}

// retrain builds a candidate from the history snapshot, shadow-evaluates
// it against the incumbent on the held-out tail, and swaps it in if it
// wins. hist holds at least MinTrainWindows+ShadowWindows windows.
func (m *Manager) retrain(site string, st *managed, hist []labeled, seq int64, reason string) {
	cut := len(hist) - m.cfg.ShadowWindows
	train, shadow := hist[:cut], hist[cut:]

	set := core.TrainingSet{Workload: "retrain", Windows: make([]core.LabeledWindow, len(train))}
	for i, lw := range train {
		set.Windows[i] = core.LabeledWindow{
			Observation: core.Observation{Time: lw.time, Vectors: lw.vectors},
			Overload:    lw.overload,
			Bottleneck:  lw.bottleneck,
		}
	}
	cand, err := core.Train(m.cfg.Initial.Level, m.cfg.Names, []core.TrainingSet{set}, m.cfg.Train)

	st.mu.Lock()
	incumbent := st.incumbent
	st.mu.Unlock()
	if err != nil {
		m.finishRetrain(st, seq)
		m.emit(Event{Kind: EventRetrain, Site: site, Seq: seq, Err: err})
		return
	}

	v := Version{
		Monitor:     cand,
		Reason:      reason,
		Windows:     len(train),
		CandidateBA: shadowScore(cand, shadow),
		IncumbentBA: shadowScore(incumbent, shadow),
		SwapSeq:     -1,
	}
	v = m.store.Register(site, v)
	if v.CandidateBA > v.IncumbentBA+m.cfg.SwapMargin {
		ev, err := m.cfg.Pipeline.SwapMonitor(site, cand, v.ID)
		if err == nil {
			m.store.RecordSwap(site, v.ID, ev.Seq)
			v.Swapped, v.SwapSeq = true, ev.Seq
			st.mu.Lock()
			st.incumbent = cand
			// The new model is judged against a fresh baseline; a
			// learned mix reference is relearned post-swap.
			st.det.Reset()
			st.mu.Unlock()
		}
	}
	m.finishRetrain(st, seq)
	m.emit(Event{Kind: EventRetrain, Site: site, Seq: seq, Version: v})
}

func (m *Manager) finishRetrain(st *managed, seq int64) {
	st.mu.Lock()
	st.retraining = false
	st.cooldownAt = seq + int64(m.cfg.CooldownWindows)
	st.mu.Unlock()
}

func (m *Manager) emit(e Event) {
	if m.cfg.OnEvent != nil {
		m.cfg.OnEvent(e)
	}
}

// shadowScore replays the held-out windows through a fresh session of the
// monitor and returns the balanced accuracy of its overload verdicts.
// Both models start the shadow slice with empty temporal history, so the
// comparison is symmetric.
func shadowScore(mon *core.Monitor, shadow []labeled) float64 {
	sess := mon.NewSession()
	var conf ml.Confusion
	for _, lw := range shadow {
		p, err := sess.Predict(core.Observation{Time: lw.time, Vectors: lw.vectors})
		if err != nil {
			continue
		}
		pred := 0
		if p.Overload {
			pred = 1
		}
		conf.Add(lw.overload, pred)
	}
	return conf.BalancedAccuracy()
}
