// Package registry closes the paper's train→serve loop: it keeps a
// versioned store of trained monitors per site and runs the adaptive model
// lifecycle on top of the serving pipeline. A Manager pairs each published
// decision with its delayed ground-truth label, feeds the pair to the
// internal/drift detectors, and — when drift fires — snapshots the site's
// recent labeled windows into a training set, retrains a candidate monitor
// (through the zero-copy training fast path, fanned out over
// internal/parallel workers), shadow-evaluates the candidate against the
// serving incumbent on a held-out tail of the same history, and hot-swaps
// the site's model via serve.Pipeline.SwapMonitor when the candidate wins.
//
// The whole lifecycle is deterministic given the observation sequence when
// run synchronously (Config.Background false): retraining happens inline
// on the ObserveTruth call that crossed the drift threshold, so replays
// reproduce the identical event sequence — the drift-replay golden in
// internal/experiment pins this end to end. The daemon runs with
// Background true, which moves retraining to a goroutine and publishes
// the swap whenever it completes.
package registry

import (
	"sync"

	"hpcap/internal/core"
)

// Version is one entry in a site's model history.
type Version struct {
	// ID is the site-local version number: 0 is the initial model the
	// pipeline was built with, retrained candidates count up from 1.
	ID      int64
	Monitor *core.Monitor
	// Reason summarizes what triggered the build ("initial", or the
	// drift signal that prompted the retrain).
	Reason string
	// Windows is how many labeled windows the training snapshot held
	// (0 for the initial model).
	Windows int
	// CandidateBA and IncumbentBA are the shadow-evaluation balanced
	// accuracies of this candidate and the then-serving incumbent on the
	// held-out replay slice (0 for the initial model).
	CandidateBA, IncumbentBA float64
	// Swapped records whether the candidate won the shadow evaluation
	// and became the active model; SwapSeq is the first window it
	// decided (-1 while not swapped; 0 for the initial model).
	Swapped bool
	SwapSeq int64
}

// Store is the versioned model store: every candidate a site ever trained,
// swapped or rejected, in build order. Safe for concurrent use.
type Store struct {
	mu    sync.RWMutex
	sites map[string][]Version
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{sites: make(map[string][]Version)}
}

// Register appends a version to a site's history, assigning the next ID,
// and returns the stored entry.
func (s *Store) Register(site string, v Version) Version {
	s.mu.Lock()
	defer s.mu.Unlock()
	v.ID = int64(len(s.sites[site]))
	s.sites[site] = append(s.sites[site], v)
	return v
}

// RecordSwap marks a registered version as the site's active model from
// window seq on.
func (s *Store) RecordSwap(site string, id, seq int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vs := s.sites[site]
	if id >= 0 && id < int64(len(vs)) {
		vs[id].Swapped = true
		vs[id].SwapSeq = seq
	}
}

// Active returns the site's most recently swapped-in version.
func (s *Store) Active(site string) (Version, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs := s.sites[site]
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].Swapped {
			return vs[i], true
		}
	}
	return Version{}, false
}

// History returns a copy of the site's full version history in build order.
func (s *Store) History(site string) []Version {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Version(nil), s.sites[site]...)
}

// Sites returns the number of sites with at least one registered version.
func (s *Store) Sites() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sites)
}
