package registry_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcap/internal/chaos"
	"hpcap/internal/core"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// fakeScaler is a deterministic site-keyed replica ledger with bounds.
type fakeScaler struct {
	mu       sync.Mutex
	replicas map[string]int
	min, max int
}

func newFakeScaler(min, max int) *fakeScaler {
	return &fakeScaler{replicas: make(map[string]int), min: min, max: max}
}

func (f *fakeScaler) count(site, pool string) int {
	if n, ok := f.replicas[site+"/"+pool]; ok {
		return n
	}
	return 2
}

func (f *fakeScaler) AddReplica(site, pool string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.count(site, pool)
	if n >= f.max {
		return n, false
	}
	n++
	f.replicas[site+"/"+pool] = n
	return n, true
}

func (f *fakeScaler) RemoveReplica(site, pool string) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.count(site, pool)
	if n <= f.min {
		return n, false
	}
	n--
	f.replicas[site+"/"+pool] = n
	return n, true
}

func TestAutoscalerConfigValidate(t *testing.T) {
	cfg := registry.DefaultAutoscalerConfig()
	cfg.Scaler = newFakeScaler(1, 4)
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("default config invalid: %v", errs)
	}
	tests := []struct {
		name   string
		mutate func(*registry.AutoscalerConfig)
	}{
		{"nil scaler", func(c *registry.AutoscalerConfig) { c.Scaler = nil }},
		{"negative up windows", func(c *registry.AutoscalerConfig) { c.UpWindows = -1 }},
		{"negative down windows", func(c *registry.AutoscalerConfig) { c.DownWindows = -2 }},
		{"negative cooldown", func(c *registry.AutoscalerConfig) { c.CooldownWindows = -1 }},
		{"negative up ratio", func(c *registry.AutoscalerConfig) { c.UpRatio = -0.5 }},
		{"negative down ratio", func(c *registry.AutoscalerConfig) { c.DownRatio = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := registry.DefaultAutoscalerConfig()
			c.Scaler = newFakeScaler(1, 4)
			tt.mutate(&c)
			errs := c.Validate()
			if len(errs) != 1 {
				t.Fatalf("%s: got %d errors (%v), want 1", tt.name, len(errs), errs)
			}
			if !errors.Is(errs[0], core.ErrBadConfig) {
				t.Errorf("%s: error does not wrap ErrBadConfig: %v", tt.name, errs[0])
			}
			if _, err := registry.NewAutoscaler(c); err == nil {
				t.Errorf("%s: NewAutoscaler accepted it", tt.name)
			}
		})
	}
}

// scaleLoads builds a two-pool load vector whose app ratio is the given
// value (capacity 2) and whose db pool idles at 0.1.
func scaleLoads(appRatio float64) []server.PoolLoad {
	return []server.PoolLoad{
		{Pool: "app", Slot: server.TierApp, Kind: server.PoolFront, Replicas: 2, Offered: 2 * appRatio, Capacity: 2},
		{Pool: "db", Slot: server.TierDB, Kind: server.PoolStore, Replicas: 2, Offered: 0.2, Capacity: 2},
	}
}

func TestAutoscalerUpDown(t *testing.T) {
	sc := newFakeScaler(1, 4)
	cfg := registry.DefaultAutoscalerConfig() // up 2, down 6, cooldown 4
	cfg.Scaler = sc
	var events []registry.ScaleEvent
	cfg.OnScale = func(e registry.ScaleEvent) { events = append(events, e) }
	a, err := registry.NewAutoscaler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dec := func(seq int64, overload bool) serve.Decision {
		return serve.Decision{Site: "s", Seq: seq, Prediction: core.Prediction{Overload: overload}}
	}

	// One overload window arms nothing; the second scales the bottleneck
	// pool up.
	if ev := a.Observe(dec(1, true), scaleLoads(1.2)); ev != nil {
		t.Fatalf("scaled after one overload window: %v", ev)
	}
	ev := a.Observe(dec(2, true), scaleLoads(1.2))
	if ev == nil || !ev.Up || ev.Pool != "app" || ev.Replicas != 3 {
		t.Fatalf("expected app scale-up to 3, got %+v", ev)
	}
	// Cooldown: continued overload inside the window does nothing.
	for seq := int64(3); seq < 6; seq++ {
		if ev := a.Observe(dec(seq, true), scaleLoads(1.2)); ev != nil {
			t.Fatalf("scaled during cooldown at seq %d: %v", seq, ev)
		}
	}
	// Past the cooldown the streak re-arms (two more windows needed).
	if ev := a.Observe(dec(6, true), scaleLoads(1.2)); ev != nil {
		t.Fatalf("seq 6 scaled on a stale streak: %v", ev)
	}
	if ev := a.Observe(dec(7, true), scaleLoads(1.2)); ev == nil || ev.Replicas != 4 {
		t.Fatalf("expected second scale-up to 4, got %+v", ev)
	}
	// Overload with every pool under the up ratio is not a capacity
	// problem; the autoscaler must refuse.
	for seq := int64(12); seq < 16; seq++ {
		if ev := a.Observe(dec(seq, true), scaleLoads(0.3)); ev != nil {
			t.Fatalf("scaled up below UpRatio: %v", ev)
		}
	}
	// Six healthy windows with an idle pool scale down (db is idlest).
	var down *registry.ScaleEvent
	for seq := int64(16); seq < 30 && down == nil; seq++ {
		down = a.Observe(dec(seq, false), scaleLoads(0.2))
	}
	if down == nil || down.Up || down.Pool != "db" || down.Replicas != 1 {
		t.Fatalf("expected db scale-down to 1, got %+v", down)
	}
	// Degraded and low-confidence windows are ignored outright.
	d := dec(40, true)
	d.Degraded = true
	if ev := a.Observe(d, scaleLoads(1.2)); ev != nil {
		t.Fatalf("scaled on a degraded window: %v", ev)
	}
	d = dec(41, true)
	d.LowConfidence = true
	if ev := a.Observe(d, scaleLoads(1.2)); ev != nil {
		t.Fatalf("scaled on a low-confidence window: %v", ev)
	}
	ups, downs := a.Actions()
	if ups != 2 || downs != 1 {
		t.Errorf("actions = (%d,%d), want (2,1)", ups, downs)
	}
	if len(events) != 3 {
		t.Errorf("OnScale fired %d times, want 3", len(events))
	}
	want := "scale site=s seq=2 pool=app dir=up replicas=3 ratio=1.200"
	if events[0].String() != want {
		t.Errorf("event string %q, want %q", events[0].String(), want)
	}
}

// TestAutoscaleRaceStress drives eight sites concurrently through a
// chaos-wrapped pipeline — each site hot-swapping its model mid-storm
// while the autoscaler adds and removes replicas on its verdict stream —
// and requires the per-site scale transcripts and final replica ledgers
// to be byte-identical to a sequential replay. The OnScale callback
// re-enters the autoscaler, so a callback fired under a lock deadlocks;
// the watchdog converts that into a crisp failure. Run under -race in CI.
func TestAutoscaleRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the trace 16 times; skipped in -short")
	}
	lab, mon, tr, _ := fixture(t)
	window := lab.Scale.Window
	var vecs [server.NumTiers][][]float64
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = tr.SecondVectors(fixtureLevel, tier)
	}
	const nSites = 8
	sched, err := chaos.Parse(
		"nan tier=app at=100 for=40 p=0.3; drop at=180 for=40 p=0.2; " +
			"stuck tier=db at=260 for=30; skew at=320 for=30 p=0.25")
	if err != nil {
		t.Fatal(err)
	}

	run := func(concurrent bool) map[string]string {
		sc := newFakeScaler(1, 5)
		var a *registry.Autoscaler
		var mu sync.Mutex
		transcripts := make(map[string]*strings.Builder)
		acfg := registry.DefaultAutoscalerConfig()
		acfg.Scaler = sc
		acfg.OnScale = func(e registry.ScaleEvent) {
			// Re-enter from inside the callback: counters and another
			// observation for the same site. Deadlocks if OnScale ever
			// fires under an autoscaler lock.
			a.Actions()
			a.Observe(serve.Decision{Site: e.Site, Seq: e.Seq}, scaleLoads(0.2))
			mu.Lock()
			transcripts[e.Site].WriteString(e.String() + "\n")
			mu.Unlock()
		}
		a, err := registry.NewAutoscaler(acfg)
		if err != nil {
			t.Fatal(err)
		}
		var p *serve.Pipeline
		p, err = serve.NewPipeline(mon, serve.Config{
			Window: window,
			OnDecision: func(d serve.Decision) {
				// Load ratios follow the verdict deterministically, so the
				// same decision stream always yields the same actions.
				ratio := 0.2
				if d.Prediction.Overload {
					ratio = 1.3
				}
				a.Observe(d, scaleLoads(ratio))
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nSites; i++ {
			transcripts[fmt.Sprintf("site-%d", i)] = &strings.Builder{}
		}
		in := chaos.NewInjector(sched, 11)
		swapAt := len(tr.SecTimes) / 2
		feed := func(site string) {
			for i, ts := range tr.SecTimes {
				if i == swapAt {
					if _, err := p.SwapMonitor(site, mon, 1); err != nil {
						t.Errorf("%s: swap: %v", site, err)
						return
					}
				}
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					for _, out := range in.Apply(serve.Sample{Site: site, Tier: tier, Time: ts, Values: vecs[tier][i]}) {
						p.Ingest(out)
					}
				}
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < nSites; i++ {
				site := fmt.Sprintf("site-%d", i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					feed(site)
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < nSites; i++ {
				feed(fmt.Sprintf("site-%d", i))
			}
		}
		for _, s := range in.Drain() {
			p.Ingest(s)
		}
		p.Flush()

		out := make(map[string]string, nSites)
		sc.mu.Lock()
		for i := 0; i < nSites; i++ {
			site := fmt.Sprintf("site-%d", i)
			b := transcripts[site]
			fmt.Fprintf(b, "final app=%d db=%d\n", sc.count(site, "app"), sc.count(site, "db"))
			out[site] = b.String()
		}
		sc.mu.Unlock()
		return out
	}

	type result struct{ seq, par map[string]string }
	done := make(chan result, 1)
	go func() {
		var r result
		r.seq = run(false)
		r.par = run(true)
		done <- r
	}()
	var r result
	select {
	case r = <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("autoscale race stress deadlocked (callback under a lock?)")
	}

	anyAction := false
	for site, want := range r.seq {
		if strings.Contains(want, "scale site=") {
			anyAction = true
		}
		if got := r.par[site]; got != want {
			t.Errorf("%s diverged under concurrency\n--- sequential ---\n%s--- concurrent ---\n%s", site, want, got)
		}
	}
	if !anyAction {
		t.Error("no scale actions fired; the stress exercised nothing")
	}
}
