// Package mltest provides shared synthetic dataset generators for testing
// the classifiers.
package mltest

import (
	"math/rand"

	"hpcap/internal/ml"
)

// LinearlySeparable returns n instances over two attributes where class 1
// lies above the line x0 + x1 = 1 with the given margin.
func LinearlySeparable(n int, margin float64, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := ml.NewDataset([]string{"a", "b"})
	for i := 0; i < n; i++ {
		label := i % 2
		var x0, x1 float64
		if label == 1 {
			x0 = rng.Float64() + 0.5 + margin
			x1 = rng.Float64() + 0.5 + margin
		} else {
			x0 = rng.Float64()*0.4 - 0.2
			x1 = rng.Float64()*0.4 - 0.2
		}
		if err := d.Add([]float64{x0, x1}, label); err != nil {
			panic(err)
		}
	}
	return d
}

// XOR returns n instances of the 2-D XOR problem with the given jitter —
// not linearly separable, so linear models fail while TAN and RBF SVMs
// succeed.
func XOR(n int, jitter float64, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := ml.NewDataset([]string{"a", "b"})
	for i := 0; i < n; i++ {
		qx, qy := i%2, (i/2)%2
		label := qx ^ qy
		x0 := float64(qx) + rng.NormFloat64()*jitter
		x1 := float64(qy) + rng.NormFloat64()*jitter
		if err := d.Add([]float64{x0, x1}, label); err != nil {
			panic(err)
		}
	}
	return d
}

// NoisyGaussians returns overlapping class-conditional Gaussians with the
// given separation (in standard deviations) across p attributes, of which
// only the first informative ones carry signal.
func NoisyGaussians(n, p, informative int, sep float64, seed int64) *ml.Dataset {
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, p)
	for j := range names {
		names[j] = "attr" + string(rune('A'+j%26))
		if j >= 26 {
			names[j] += "2"
		}
	}
	// Ensure unique names for wide datasets.
	for j := range names {
		names[j] = names[j] + "_" + itoa(j)
	}
	d := ml.NewDataset(names)
	for i := 0; i < n; i++ {
		label := i % 2
		vals := make([]float64, p)
		for j := 0; j < p; j++ {
			mu := 0.0
			if j < informative && label == 1 {
				mu = sep
			}
			vals[j] = mu + rng.NormFloat64()
		}
		if err := d.Add(vals, label); err != nil {
			panic(err)
		}
	}
	return d
}

// OneClass returns a dataset whose every instance has the same label.
func OneClass(n int, label int) *ml.Dataset {
	d := ml.NewDataset([]string{"a"})
	for i := 0; i < n; i++ {
		if err := d.Add([]float64{float64(i)}, label); err != nil {
			panic(err)
		}
	}
	return d
}

// TrainAccuracy fits the classifier and returns its balanced accuracy on
// the training set itself.
func TrainAccuracy(c ml.Classifier, d *ml.Dataset) (float64, error) {
	if err := c.Fit(d); err != nil {
		return 0, err
	}
	return ml.Evaluate(c, d).BalancedAccuracy(), nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
