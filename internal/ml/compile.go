package ml

// Scratch is caller-owned working storage for allocation-free prediction
// through a Compiled classifier. A trained classifier is shared read-only
// across every concurrent prediction stream, so the per-call temporaries
// (projected attribute vector, standardized vector, discretized bins) must
// live with the caller: give each stream its own Scratch and the compiled
// predict path never allocates after the first call.
type Scratch struct {
	// X is the projected attribute vector (synopsis attribute order).
	X []float64
	// Z is the standardized vector for scaler-based learners (SVM, LR).
	Z []float64
	// Bins is the discretized vector for the Bayesian learners (TAN).
	Bins []int
}

// EnsureX returns s.X resized to n, reallocating only on growth.
func (s *Scratch) EnsureX(n int) []float64 {
	if cap(s.X) < n {
		s.X = make([]float64, n)
	}
	s.X = s.X[:n]
	return s.X
}

// EnsureZ returns s.Z resized to n, reallocating only on growth.
func (s *Scratch) EnsureZ(n int) []float64 {
	if cap(s.Z) < n {
		s.Z = make([]float64, n)
	}
	s.Z = s.Z[:n]
	return s.Z
}

// EnsureBins returns s.Bins resized to n, reallocating only on growth.
func (s *Scratch) EnsureBins(n int) []int {
	if cap(s.Bins) < n {
		s.Bins = make([]int, n)
	}
	s.Bins = s.Bins[:n]
	return s.Bins
}

// Compiled is a trained classifier lowered into a flat evaluation plan:
// contiguous parameter arrays walked without per-call allocation. A
// Compiled plan is immutable and safe for concurrent use; callers supply
// per-stream temporaries through their own Scratch.
//
// The contract is bit-exact equivalence: for every input, PredictScratch
// returns exactly the class the source Classifier's Predict returns. The
// compilers only precompute values the interpreted path would compute
// identically (element-wise logs of probability tables, alpha·y kernel
// coefficients) and never reassociate floating-point accumulations, so
// byte-identical determinism goldens hold across both paths.
type Compiled interface {
	PredictScratch(x []float64, s *Scratch) int
}

// Compilable is implemented by classifiers that can lower themselves into
// a Compiled plan. Compile fails on an untrained classifier.
type Compilable interface {
	Compile() (Compiled, error)
}

// compiledFallback wraps a classifier with no compiled form; it predicts
// through the interpreted path (and inherits its allocations).
type compiledFallback struct{ clf Classifier }

func (f compiledFallback) PredictScratch(x []float64, _ *Scratch) int {
	return f.clf.Predict(x)
}

// CompileFallback adapts any classifier to the Compiled interface by
// delegating to its interpreted Predict. It exists so synopsis compilation
// can lower a monitor whose classifiers predate the compiler (or are test
// doubles) without changing any output.
func CompileFallback(clf Classifier) Compiled {
	return compiledFallback{clf: clf}
}
