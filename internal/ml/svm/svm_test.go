package svm

import (
	"testing"

	"hpcap/internal/ml"
	"hpcap/internal/ml/mltest"
)

func TestLearnsLinearlySeparable(t *testing.T) {
	d := mltest.LinearlySeparable(200, 0.3, 1)
	ba, err := mltest.TrainAccuracy(New(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.97 {
		t.Errorf("SVM BA on separable data = %v, want ≥0.97", ba)
	}
}

func TestLearnsXOR(t *testing.T) {
	// The RBF kernel must capture the nonlinearity that defeats linear
	// regression.
	d := mltest.XOR(300, 0.08, 2)
	ba, err := mltest.TrainAccuracy(New(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.95 {
		t.Errorf("SVM BA on XOR = %v, want ≥0.95", ba)
	}
}

func TestErrorsOnDegenerateSets(t *testing.T) {
	if err := New().Fit(ml.NewDataset([]string{"a"})); err != ml.ErrNoData {
		t.Errorf("empty fit err = %v, want ErrNoData", err)
	}
	if err := New().Fit(mltest.OneClass(10, 1)); err != ml.ErrOneClass {
		t.Errorf("one-class fit err = %v, want ErrOneClass", err)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	if got := New().Predict([]float64{1, 2}); got != 1 {
		// Decision(â‰¥0 → 1); unfitted decision is 0, so 1. Just pin the
		// behaviour so it cannot change silently.
		t.Errorf("unfitted Predict = %d, want 1", got)
	}
}

func TestAlphaBoxConstraint(t *testing.T) {
	// SMO invariant: 0 ≤ α ≤ C for every support vector.
	d := mltest.NoisyGaussians(150, 4, 2, 1.5, 3)
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	cost := c.EffectiveC()
	for i, a := range c.Alphas() {
		if a < -1e-9 || a > cost+1e-9 {
			t.Fatalf("alpha[%d] = %v violates [0, %v]", i, a, cost)
		}
	}
	if c.NumSupportVectors() == 0 {
		t.Error("no support vectors retained")
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	d := mltest.NoisyGaussians(120, 4, 2, 2, 5)
	a := &Classifier{Seed: 7}
	b := &Classifier{Seed: 7}
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		if a.Decision(row) != b.Decision(row) {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestSoftMarginToleratesNoise(t *testing.T) {
	d := mltest.NoisyGaussians(300, 6, 2, 2.5, 9)
	ba, err := ml.CrossValidate(Learner(), d, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.8 {
		t.Errorf("SVM CV BA = %v, want ≥0.8", ba)
	}
}

func TestCustomHyperparameters(t *testing.T) {
	d := mltest.LinearlySeparable(100, 0.3, 11)
	c := &Classifier{C: 10, Gamma: 0.5, Tol: 1e-4, MaxPasses: 5}
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if ba := ml.Evaluate(c, d).BalancedAccuracy(); ba < 0.95 {
		t.Errorf("custom-hyperparameter BA = %v, want ≥0.95", ba)
	}
}
