// Package svm implements the support-vector-machine synopsis builder using
// sequential minimal optimization (SMO) with an RBF kernel on standardized
// attributes. In the paper's measurements the SVM attains accuracy
// comparable to TAN but is by far the most expensive to train (1710 ms vs
// 50 ms for TAN), which this from-scratch implementation reproduces in
// shape.
package svm

import (
	"math"
	"math/rand"
	"sort"
	"sync"

	"hpcap/internal/ml"
)

// kernelPool recycles flat kernel-matrix buffers across fits. The folds of
// one cross validation are all nearly the same size, so after the first
// fold the same n² buffer serves the entire run (and the next candidate's)
// without reallocating.
var kernelPool = sync.Pool{New: func() any { return new([]float64) }}

// Classifier is a binary soft-margin SVM trained with SMO.
type Classifier struct {
	// C is the soft-margin penalty; zero selects 1.
	C float64
	// Gamma is the RBF width; zero selects 1/numAttributes.
	Gamma float64
	// Tol is the KKT violation tolerance; zero selects 1e-3.
	Tol float64
	// MaxPasses bounds the number of full passes without updates; zero
	// selects 8.
	MaxPasses int
	// Seed drives the deterministic second-index choice.
	Seed int64

	scaler *ml.Scaler
	x      [][]float64
	y      []float64 // ±1
	alpha  []float64
	b      float64
	gamma  float64
}

// New returns an SVM with default hyperparameters.
func New() *Classifier { return &Classifier{} }

// Learner returns the ml.Learner for the SVM.
func Learner() ml.Learner {
	return ml.Learner{Name: "SVM", New: func() ml.Classifier { return New() }}
}

// Fit trains the SVM with simplified SMO.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrNoData
	}
	n0, n1 := d.ClassCounts()
	if n0 == 0 || n1 == 0 {
		return ml.ErrOneClass
	}
	cost := c.C
	if cost <= 0 {
		cost = 1
	}
	tol := c.Tol
	if tol <= 0 {
		tol = 1e-3
	}
	maxPasses := c.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 8
	}
	c.gamma = c.Gamma
	if c.gamma <= 0 {
		c.gamma = 1 / float64(d.NumAttrs())
	}

	c.scaler = ml.FitScaler(d)
	c.x = c.scaler.ApplyAll(d)
	n := d.Len()
	c.y = make([]float64, n)
	for i, label := range d.Y {
		if label == 1 {
			c.y[i] = 1
		} else {
			c.y[i] = -1
		}
	}
	c.alpha = make([]float64, n)
	c.b = 0

	// Precompute the kernel matrix (flat n×n, pooled across fits).
	// Each entry keeps the subtract-square ‖a−b‖² form: the algebraically
	// equivalent ‖a‖²+‖b‖²−2a·b with cached row norms halves the per-entry
	// cost but perturbs the last ulp, which flips a handful of borderline
	// SMO decisions and breaks the byte-identical determinism goldens.
	// Training sets here are hundreds of instances, so n² stays small.
	kbuf := kernelPool.Get().(*[]float64)
	k := *kbuf
	if cap(k) < n*n {
		k = make([]float64, n*n)
	}
	k = k[:n*n]
	for i := 0; i < n; i++ {
		k[i*n+i] = 1 // exp(−γ·0)
		for j := i + 1; j < n; j++ {
			v := c.rbf(c.x[i], c.x[j])
			k[i*n+j] = v
			k[j*n+i] = v
		}
	}

	// active lists the indices with alpha > 0 in ascending order, so the
	// SMO objective loop skips dead multipliers while keeping the exact
	// summation order of a full ascending scan.
	active := make([]int, 0, n)
	setAlpha := func(idx int, v float64) {
		was := c.alpha[idx] > 0
		c.alpha[idx] = v
		if now := v > 0; now != was {
			pos := sort.SearchInts(active, idx)
			if now {
				active = append(active, 0)
				copy(active[pos+1:], active[pos:])
				active[pos] = idx
			} else {
				active = append(active[:pos], active[pos+1:]...)
			}
		}
	}

	fOut := func(i int) float64 {
		s := c.b
		ki := k[i*n : i*n+n]
		for _, j := range active {
			s += c.alpha[j] * c.y[j] * ki[j]
		}
		return s
	}

	rng := rand.New(rand.NewSource(c.Seed + 1))
	passes := 0
	for passes < maxPasses {
		changed := 0
		for i := 0; i < n; i++ {
			ei := fOut(i) - c.y[i]
			if (c.y[i]*ei < -tol && c.alpha[i] < cost) ||
				(c.y[i]*ei > tol && c.alpha[i] > 0) {
				j := rng.Intn(n - 1)
				if j >= i {
					j++
				}
				ej := fOut(j) - c.y[j]

				ai, aj := c.alpha[i], c.alpha[j]
				var lo, hi float64
				if c.y[i] != c.y[j] {
					lo = math.Max(0, aj-ai)
					hi = math.Min(cost, cost+aj-ai)
				} else {
					lo = math.Max(0, ai+aj-cost)
					hi = math.Min(cost, ai+aj)
				}
				if lo == hi {
					continue
				}
				kii, kjj, kij := k[i*n+i], k[j*n+j], k[i*n+j]
				eta := 2*kij - kii - kjj
				if eta >= 0 {
					continue
				}
				ajNew := aj - c.y[j]*(ei-ej)/eta
				if ajNew > hi {
					ajNew = hi
				} else if ajNew < lo {
					ajNew = lo
				}
				if math.Abs(ajNew-aj) < 1e-5 {
					continue
				}
				aiNew := ai + c.y[i]*c.y[j]*(aj-ajNew)

				b1 := c.b - ei - c.y[i]*(aiNew-ai)*kii - c.y[j]*(ajNew-aj)*kij
				b2 := c.b - ej - c.y[i]*(aiNew-ai)*kij - c.y[j]*(ajNew-aj)*kjj
				switch {
				case aiNew > 0 && aiNew < cost:
					c.b = b1
				case ajNew > 0 && ajNew < cost:
					c.b = b2
				default:
					c.b = (b1 + b2) / 2
				}
				setAlpha(i, aiNew)
				setAlpha(j, ajNew)
				changed++
			}
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
	}

	// Return the kernel buffer to the pool; its contents are dead once
	// training converges.
	*kbuf = k
	kernelPool.Put(kbuf)

	// Keep only the support vectors for prediction.
	var sx [][]float64
	var sy, sa []float64
	for i := 0; i < n; i++ {
		if c.alpha[i] > 1e-9 {
			sx = append(sx, c.x[i])
			sy = append(sy, c.y[i])
			sa = append(sa, c.alpha[i])
		}
	}
	c.x, c.y, c.alpha = sx, sy, sa
	return nil
}

// NumSupportVectors returns the size of the trained model.
func (c *Classifier) NumSupportVectors() int { return len(c.alpha) }

// Decision returns the signed decision value for one instance.
func (c *Classifier) Decision(x []float64) float64 {
	if c.scaler == nil {
		return 0
	}
	z := c.scaler.Apply(x)
	s := c.b
	for i := range c.alpha {
		s += c.alpha[i] * c.y[i] * c.rbf(c.x[i], z)
	}
	return s
}

// Predict returns 1 for a positive decision value and 0 otherwise.
func (c *Classifier) Predict(x []float64) int {
	if c.Decision(x) >= 0 {
		return 1
	}
	return 0
}

// Alphas exposes the support-vector coefficients (for invariant tests).
func (c *Classifier) Alphas() []float64 {
	out := make([]float64, len(c.alpha))
	copy(out, c.alpha)
	return out
}

// EffectiveC returns the soft-margin penalty in use.
func (c *Classifier) EffectiveC() float64 {
	if c.C <= 0 {
		return 1
	}
	return c.C
}

func (c *Classifier) rbf(a, b []float64) float64 {
	var ss float64
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Exp(-c.gamma * ss)
}
