package svm

import (
	"math"

	"hpcap/internal/ml"
)

// compiled is a trained SVM lowered into a flat dot-product kernel plan: a
// dense support-vector arena ([i*d+k], one cache-friendly row per SV) and
// precomputed kernel coefficients alpha·y. Precomputing the coefficient is
// bit-identical because the interpreted Decision evaluates
// alpha[i]*y[i]*rbf left-to-right, so alpha[i]*y[i] is the exact multiply
// being hoisted; the RBF keeps the subtract-square form for the same
// last-ulp reason Fit's kernel matrix does.
type compiled struct {
	mean  []float64
	std   []float64
	d     int       // trained dimensionality (= len(mean))
	sv    []float64 // standardized support vectors, [i*d+k]
	coef  []float64 // alpha[i]*y[i]
	b     float64
	gamma float64
}

// Compile lowers the trained model; it fails before Fit.
func (c *Classifier) Compile() (ml.Compiled, error) {
	if c.scaler == nil {
		return nil, ml.ErrNoData
	}
	p := &compiled{
		mean:  c.scaler.Mean,
		std:   c.scaler.Std,
		d:     len(c.scaler.Mean),
		b:     c.b,
		gamma: c.gamma,
	}
	p.coef = make([]float64, len(c.alpha))
	p.sv = make([]float64, len(c.alpha)*p.d)
	for i := range c.alpha {
		p.coef[i] = c.alpha[i] * c.y[i]
		copy(p.sv[i*p.d:(i+1)*p.d], c.x[i])
	}
	return p, nil
}

func (p *compiled) PredictScratch(x []float64, s *ml.Scratch) int {
	z := s.EnsureZ(len(x))
	for j := range z {
		if j < p.d {
			z[j] = (x[j] - p.mean[j]) / p.std[j]
		} else {
			z[j] = 0
		}
	}
	sum := p.b
	for i, cf := range p.coef {
		row := p.sv[i*p.d : (i+1)*p.d]
		var ss float64
		for k, a := range row {
			d := a - z[k]
			ss += d * d
		}
		sum += cf * math.Exp(-p.gamma*ss)
	}
	if sum >= 0 {
		return 1
	}
	return 0
}
