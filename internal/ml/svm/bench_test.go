package svm

import (
	"testing"

	"hpcap/internal/ml/mltest"
)

// BenchmarkSVMFit measures one full SMO training run on a synthetic
// dataset shaped like a tier's training set (a few hundred windows, a
// selected-synopsis-sized attribute count).
func BenchmarkSVMFit(b *testing.B) {
	d := mltest.NoisyGaussians(240, 8, 4, 1.2, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := New()
		if err := c.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}
