package bayes

import (
	"math"

	"hpcap/internal/ml"
	"hpcap/internal/stats"
)

// DefaultBins is the number of equal-frequency discretization bins TAN uses
// per attribute.
const DefaultBins = 5

// TAN is a Tree-Augmented Naive Bayes classifier over discretized
// attributes.
type TAN struct {
	// Bins is the number of discretization bins; zero selects DefaultBins.
	Bins int

	disc   []*stats.Discretizer
	parent []int // parent attribute index, -1 for the root
	prior  [2]float64
	// rootCPT[c][bin] is P(root = bin | class = c).
	// cpt[j][c][pbin][bin] is P(Aj = bin | class = c, parent(Aj) = pbin).
	rootCPT [2][]float64
	cpt     [][2][][]float64
	root    int
}

// NewTAN returns an untrained TAN classifier with default binning.
func NewTAN() *TAN { return &TAN{} }

// TANLearner returns the ml.Learner for TAN.
func TANLearner() ml.Learner {
	return ml.Learner{Name: "TAN", New: func() ml.Classifier { return NewTAN() }}
}

// Fit learns the Chow-Liu structure and conditional probability tables.
func (t *TAN) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrNoData
	}
	n0, n1 := d.ClassCounts()
	if n0 == 0 || n1 == 0 {
		return ml.ErrOneClass
	}
	bins := t.Bins
	if bins <= 0 {
		bins = DefaultBins
	}
	p := d.NumAttrs()

	// Discretize every attribute on the training distribution; each column
	// is gathered once and binned from the same buffer.
	t.disc = make([]*stats.Discretizer, p)
	discX := make([][]int, p)
	col := make([]float64, d.Len())
	for j := 0; j < p; j++ {
		col = d.ColumnTo(col, j)
		disc, err := stats.NewEqualFrequency(col, bins)
		if err != nil {
			return err
		}
		t.disc[j] = disc
		discX[j] = disc.BinAll(col)
	}

	// Priors with Laplace smoothing.
	total := float64(d.Len())
	t.prior[0] = (float64(n0) + 1) / (total + 2)
	t.prior[1] = (float64(n1) + 1) / (total + 2)

	// Structure: maximum spanning tree over conditional mutual
	// information I(Ai; Aj | C), rooted at attribute 0.
	t.root = 0
	t.parent = maxSpanningTree(p, func(i, j int) float64 {
		cmi, err := stats.ConditionalMutualInformation(discX[i], discX[j], d.Y)
		if err != nil {
			return 0
		}
		return cmi
	})

	// CPTs with Laplace smoothing.
	t.cpt = make([][2][][]float64, p)
	for c := 0; c < 2; c++ {
		t.rootCPT[c] = make([]float64, t.disc[t.root].Bins())
	}
	for j := 0; j < p; j++ {
		if j == t.root {
			continue
		}
		pb := t.disc[t.parent[j]].Bins()
		jb := t.disc[j].Bins()
		for c := 0; c < 2; c++ {
			t.cpt[j][c] = make([][]float64, pb)
			for k := range t.cpt[j][c] {
				t.cpt[j][c][k] = make([]float64, jb)
			}
		}
	}

	// Count.
	for i := range d.Y {
		c := d.Y[i]
		t.rootCPT[c][discX[t.root][i]]++
		for j := 0; j < p; j++ {
			if j == t.root {
				continue
			}
			pbin := discX[t.parent[j]][i]
			t.cpt[j][c][pbin][discX[j][i]]++
		}
	}
	// Normalize with Laplace smoothing.
	for c := 0; c < 2; c++ {
		normalizeLaplace(t.rootCPT[c])
		for j := 0; j < p; j++ {
			if j == t.root {
				continue
			}
			for k := range t.cpt[j][c] {
				normalizeLaplace(t.cpt[j][c][k])
			}
		}
	}
	return nil
}

// normalizeLaplace converts counts into Laplace-smoothed probabilities in
// place.
func normalizeLaplace(counts []float64) {
	var total float64
	for _, v := range counts {
		total += v
	}
	denom := total + float64(len(counts))
	for i := range counts {
		counts[i] = (counts[i] + 1) / denom
	}
}

// Parents exposes the learned tree structure (parent attribute per
// attribute; -1 for the root). It is nil before Fit.
func (t *TAN) Parents() []int {
	if t.parent == nil {
		return nil
	}
	out := make([]int, len(t.parent))
	copy(out, t.parent)
	out[t.root] = -1
	return out
}

// Predict returns the maximum-posterior class.
func (t *TAN) Predict(x []float64) int {
	if t.disc == nil {
		return 0
	}
	p := len(t.disc)
	bins := make([]int, p)
	for j := 0; j < p && j < len(x); j++ {
		bins[j] = t.disc[j].Bin(x[j])
	}
	var logp [2]float64
	for c := 0; c < 2; c++ {
		logp[c] = math.Log(t.prior[c]) + math.Log(t.rootCPT[c][bins[t.root]])
		for j := 0; j < p; j++ {
			if j == t.root {
				continue
			}
			logp[c] += math.Log(t.cpt[j][c][bins[t.parent[j]]][bins[j]])
		}
	}
	if logp[1] > logp[0] {
		return 1
	}
	return 0
}

// maxSpanningTree runs Prim's algorithm over the complete graph on p nodes
// with the given symmetric edge weight, returning each node's parent in a
// tree rooted at node 0 (parent[0] = 0, ignored by callers).
func maxSpanningTree(p int, weight func(i, j int) float64) []int {
	parent := make([]int, p)
	if p == 0 {
		return parent
	}
	inTree := make([]bool, p)
	best := make([]float64, p)
	bestFrom := make([]int, p)
	for i := range best {
		best[i] = math.Inf(-1)
	}
	inTree[0] = true
	for j := 1; j < p; j++ {
		best[j] = weight(0, j)
		bestFrom[j] = 0
	}
	for added := 1; added < p; added++ {
		pick := -1
		for j := 0; j < p; j++ {
			if !inTree[j] && (pick == -1 || best[j] > best[pick]) {
				pick = j
			}
		}
		if pick == -1 {
			break
		}
		inTree[pick] = true
		parent[pick] = bestFrom[pick]
		for j := 0; j < p; j++ {
			if !inTree[j] {
				if w := weight(pick, j); w > best[j] {
					best[j] = w
					bestFrom[j] = pick
				}
			}
		}
	}
	return parent
}
