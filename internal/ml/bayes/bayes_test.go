package bayes

import (
	"testing"
	"testing/quick"

	"hpcap/internal/ml"
	"hpcap/internal/ml/mltest"
)

func TestNaiveLearnsGaussians(t *testing.T) {
	d := mltest.NoisyGaussians(300, 4, 2, 3, 1)
	ba, err := mltest.TrainAccuracy(NewNaive(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.95 {
		t.Errorf("Naive BA on well-separated Gaussians = %v, want ≥0.95", ba)
	}
}

func TestNaiveFailsOnXOR(t *testing.T) {
	// Marginals of XOR are identical per class, so independence-assuming
	// Naive Bayes cannot do better than chance.
	d := mltest.XOR(400, 0.08, 2)
	ba, err := mltest.TrainAccuracy(NewNaive(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba > 0.65 {
		t.Errorf("Naive on XOR achieved %v, should stay near 0.5", ba)
	}
}

func TestTANLearnsXOR(t *testing.T) {
	// TAN's single-parent dependence captures the pairwise interaction
	// that defeats Naive Bayes — the paper's rationale for preferring it.
	// With binary discretization the XOR table is learned exactly.
	d := mltest.XOR(400, 0.08, 2)
	ba, err := mltest.TrainAccuracy(&TAN{Bins: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.97 {
		t.Errorf("2-bin TAN on XOR = %v, want ≥0.97", ba)
	}
	// Even default binning must stay far above the ≈0.5 ceiling of the
	// independence-assuming learners.
	baDefault, err := mltest.TrainAccuracy(NewTAN(), d)
	if err != nil {
		t.Fatal(err)
	}
	if baDefault < 0.8 {
		t.Errorf("default-bin TAN on XOR = %v, want ≥0.8", baDefault)
	}
}

func TestTANLearnsGaussians(t *testing.T) {
	d := mltest.NoisyGaussians(300, 4, 2, 3, 5)
	ba, err := mltest.TrainAccuracy(NewTAN(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.9 {
		t.Errorf("TAN BA = %v, want ≥0.9", ba)
	}
}

func TestErrorsOnDegenerateSets(t *testing.T) {
	for _, c := range []ml.Classifier{NewNaive(), NewTAN()} {
		if err := c.Fit(ml.NewDataset([]string{"a"})); err != ml.ErrNoData {
			t.Errorf("%T empty fit err = %v, want ErrNoData", c, err)
		}
	}
	for _, c := range []ml.Classifier{NewNaive(), NewTAN()} {
		if err := c.Fit(mltest.OneClass(10, 0)); err != ml.ErrOneClass {
			t.Errorf("%T one-class fit err = %v, want ErrOneClass", c, err)
		}
	}
}

func TestPredictBeforeFit(t *testing.T) {
	if NewNaive().Predict([]float64{1}) != 0 {
		t.Error("unfitted Naive should predict 0")
	}
	if NewTAN().Predict([]float64{1}) != 0 {
		t.Error("unfitted TAN should predict 0")
	}
}

func TestTANParentsFormTree(t *testing.T) {
	d := mltest.NoisyGaussians(200, 8, 3, 2, 9)
	c := NewTAN()
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	parents := c.Parents()
	if len(parents) != 8 {
		t.Fatalf("parents length = %d, want 8", len(parents))
	}
	roots := 0
	for j, p := range parents {
		if p == -1 {
			roots++
			continue
		}
		if p < 0 || p >= 8 || p == j {
			t.Fatalf("invalid parent %d for attribute %d", p, j)
		}
	}
	if roots != 1 {
		t.Fatalf("tree has %d roots, want 1", roots)
	}
	// Following parent links from any node must reach the root without
	// cycles.
	for j := range parents {
		seen := map[int]bool{}
		cur := j
		for parents[cur] != -1 {
			if seen[cur] {
				t.Fatalf("cycle through attribute %d", j)
			}
			seen[cur] = true
			cur = parents[cur]
		}
	}
}

// Property: maxSpanningTree yields a connected acyclic parent structure for
// arbitrary symmetric weights.
func TestMaxSpanningTreeProperty(t *testing.T) {
	f := func(seedWeights [36]float64) bool {
		const p = 9 // 9 nodes, 36 undirected pairs
		w := make(map[[2]int]float64)
		idx := 0
		for i := 0; i < p; i++ {
			for j := i + 1; j < p; j++ {
				w[[2]int{i, j}] = seedWeights[idx]
				idx++
			}
		}
		weight := func(i, j int) float64 {
			if i > j {
				i, j = j, i
			}
			return w[[2]int{i, j}]
		}
		parent := maxSpanningTree(p, weight)
		// Every non-root node reaches node 0 acyclically.
		for j := 1; j < p; j++ {
			seen := map[int]bool{}
			cur := j
			for cur != 0 {
				if seen[cur] || parent[cur] == cur {
					return false
				}
				seen[cur] = true
				cur = parent[cur]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTANCustomBins(t *testing.T) {
	d := mltest.NoisyGaussians(200, 4, 2, 3, 13)
	c := &TAN{Bins: 3}
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	if ba := ml.Evaluate(c, d).BalancedAccuracy(); ba < 0.85 {
		t.Errorf("3-bin TAN BA = %v, want ≥0.85", ba)
	}
}

func TestNaiveCrossValidation(t *testing.T) {
	d := mltest.NoisyGaussians(200, 10, 2, 2.5, 17)
	ba, err := ml.CrossValidate(NaiveLearner(), d, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.8 {
		t.Errorf("Naive CV BA = %v, want ≥0.8", ba)
	}
}

func TestTANDeterministic(t *testing.T) {
	d := mltest.NoisyGaussians(150, 6, 2, 2, 21)
	a, b := NewTAN(), NewTAN()
	if err := a.Fit(d); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(d); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Len(); i++ {
		row := d.Row(i)
		if a.Predict(row) != b.Predict(row) {
			t.Fatalf("TAN predictions diverge at row %d", i)
		}
	}
}
