// Package bayes implements the two Bayesian synopsis builders of the paper:
// Naive Bayes with Gaussian attribute likelihoods, and Tree-Augmented Naive
// Bayes (TAN), which relaxes Naive Bayes's independence assumption by
// letting each attribute additionally depend on one other attribute chosen
// by a maximum-spanning-tree over conditional mutual information (the
// Chow-Liu construction). The paper finds TAN the best accuracy/runtime
// trade-off of the four learners (§V.B).
package bayes

import (
	"math"

	"hpcap/internal/ml"
	"hpcap/internal/stats"
)

// Naive is a Gaussian Naive Bayes classifier.
type Naive struct {
	prior [2]float64
	mean  [][2]float64
	std   [][2]float64
}

// NewNaive returns an untrained Gaussian Naive Bayes classifier.
func NewNaive() *Naive { return &Naive{} }

// NaiveLearner returns the ml.Learner for Naive Bayes.
func NaiveLearner() ml.Learner {
	return ml.Learner{Name: "Naive", New: func() ml.Classifier { return NewNaive() }}
}

// Fit estimates class priors and per-class Gaussian attribute likelihoods.
func (n *Naive) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrNoData
	}
	n0, n1 := d.ClassCounts()
	if n0 == 0 || n1 == 0 {
		return ml.ErrOneClass
	}
	total := float64(d.Len())
	// Laplace-smoothed priors.
	n.prior[0] = (float64(n0) + 1) / (total + 2)
	n.prior[1] = (float64(n1) + 1) / (total + 2)

	p := d.NumAttrs()
	n.mean = make([][2]float64, p)
	n.std = make([][2]float64, p)
	col := make([]float64, d.Len())
	var vals [2][]float64
	vals[0] = make([]float64, 0, n0)
	vals[1] = make([]float64, 0, n1)
	for j := 0; j < p; j++ {
		col = d.ColumnTo(col, j)
		vals[0], vals[1] = vals[0][:0], vals[1][:0]
		for i, v := range col {
			c := d.Y[i]
			vals[c] = append(vals[c], v)
		}
		for c := 0; c < 2; c++ {
			n.mean[j][c] = stats.Mean(vals[c])
			sd := stats.StdDev(vals[c])
			if sd < 1e-9 {
				sd = 1e-9
			}
			n.std[j][c] = sd
		}
	}
	return nil
}

// Predict returns the maximum-posterior class.
func (n *Naive) Predict(x []float64) int {
	if n.mean == nil {
		return 0
	}
	var logp [2]float64
	for c := 0; c < 2; c++ {
		logp[c] = math.Log(n.prior[c])
		for j, v := range x {
			if j >= len(n.mean) {
				break
			}
			pdf := stats.GaussianPDF(v, n.mean[j][c], n.std[j][c])
			if pdf < 1e-300 {
				pdf = 1e-300
			}
			logp[c] += math.Log(pdf)
		}
	}
	if logp[1] > logp[0] {
		return 1
	}
	return 0
}
