package bayes

import (
	"testing"

	"hpcap/internal/ml/mltest"
)

// BenchmarkTANFit measures one TAN training run: discretization, the
// Chow-Liu structure search over conditional mutual information, and CPT
// estimation.
func BenchmarkTANFit(b *testing.B) {
	d := mltest.NoisyGaussians(400, 12, 6, 1.0, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewTAN()
		if err := c.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNaiveFit measures Gaussian Naive Bayes training.
func BenchmarkNaiveFit(b *testing.B) {
	d := mltest.NoisyGaussians(400, 12, 6, 1.0, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewNaive()
		if err := c.Fit(d); err != nil {
			b.Fatal(err)
		}
	}
}
