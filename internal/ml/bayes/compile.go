package bayes

import (
	"math"

	"hpcap/internal/ml"
	"hpcap/internal/stats"
)

// compiledNaive is a trained Gaussian Naive Bayes lowered into flat
// per-class parameter arrays. The Gaussian likelihood depends on the
// continuous input, so it cannot be tabled; the win is the contiguous
// [attr*2+class] layout and the single fused pass updating both class
// accumulators. Each accumulator still receives exactly the values the
// interpreted Predict adds, in the same order, so the result is
// bit-identical.
type compiledNaive struct {
	logPrior [2]float64
	p        int
	mean     []float64 // [j*2+c]
	std      []float64 // [j*2+c]
}

// Compile lowers the trained model; it fails before Fit.
func (n *Naive) Compile() (ml.Compiled, error) {
	if n.mean == nil {
		return nil, ml.ErrNoData
	}
	c := &compiledNaive{p: len(n.mean)}
	c.logPrior[0] = math.Log(n.prior[0])
	c.logPrior[1] = math.Log(n.prior[1])
	c.mean = make([]float64, 2*c.p)
	c.std = make([]float64, 2*c.p)
	for j := 0; j < c.p; j++ {
		for cl := 0; cl < 2; cl++ {
			c.mean[j*2+cl] = n.mean[j][cl]
			c.std[j*2+cl] = n.std[j][cl]
		}
	}
	return c, nil
}

func (c *compiledNaive) PredictScratch(x []float64, _ *ml.Scratch) int {
	lp0, lp1 := c.logPrior[0], c.logPrior[1]
	for j, v := range x {
		if j >= c.p {
			break
		}
		pdf0 := stats.GaussianPDF(v, c.mean[j*2], c.std[j*2])
		if pdf0 < 1e-300 {
			pdf0 = 1e-300
		}
		lp0 += math.Log(pdf0)
		pdf1 := stats.GaussianPDF(v, c.mean[j*2+1], c.std[j*2+1])
		if pdf1 < 1e-300 {
			pdf1 = 1e-300
		}
		lp1 += math.Log(pdf1)
	}
	if lp1 > lp0 {
		return 1
	}
	return 0
}

// compiledTAN is a trained TAN lowered into contiguous precomputed
// log-probability arrays indexed by binned attribute values: one cut-point
// arena for discretization, one root scoring table folding the class prior
// into the root CPT, and one flat CPT arena addressed by
// (parent bin × child bins + child bin) × 2 + class. Precomputing the
// element-wise logs is bit-identical because the interpreted Predict adds
// math.Log of exactly these entries in exactly this order.
type compiledTAN struct {
	p    int
	root int

	parent []int32
	cutOff []int32   // cuts[cutOff[j]:cutOff[j+1]] are attribute j's cuts
	cuts   []float64 // ascending cut-point arena
	jbins  []int32   // bins per attribute (len(cuts)+1)

	rootScore []float64 // [bin*2+c] = log prior[c] + log rootCPT[c][bin]
	cptOff    []int32   // arena offset per attribute (root unused)
	cpt       []float64 // [(pbin*jb+bin)*2+c] = log cpt[j][c][pbin][bin]
}

// Compile lowers the trained model; it fails before Fit.
func (t *TAN) Compile() (ml.Compiled, error) {
	if t.disc == nil {
		return nil, ml.ErrNoData
	}
	p := len(t.disc)
	c := &compiledTAN{p: p, root: t.root}
	c.parent = make([]int32, p)
	c.cutOff = make([]int32, p+1)
	c.jbins = make([]int32, p)
	c.cptOff = make([]int32, p)
	for j := 0; j < p; j++ {
		c.parent[j] = int32(t.parent[j])
		c.cuts = append(c.cuts, t.disc[j].Cuts...)
		c.cutOff[j+1] = int32(len(c.cuts))
		c.jbins[j] = int32(t.disc[j].Bins())
	}
	logPrior := [2]float64{math.Log(t.prior[0]), math.Log(t.prior[1])}
	rb := t.disc[t.root].Bins()
	c.rootScore = make([]float64, 2*rb)
	for bin := 0; bin < rb; bin++ {
		// Same first addition as the interpreted path's
		// log prior + log rootCPT, hoisted to compile time.
		c.rootScore[bin*2] = logPrior[0] + math.Log(t.rootCPT[0][bin])
		c.rootScore[bin*2+1] = logPrior[1] + math.Log(t.rootCPT[1][bin])
	}
	for j := 0; j < p; j++ {
		if j == t.root {
			continue
		}
		pb := t.disc[t.parent[j]].Bins()
		jb := t.disc[j].Bins()
		c.cptOff[j] = int32(len(c.cpt))
		for pbin := 0; pbin < pb; pbin++ {
			for bin := 0; bin < jb; bin++ {
				c.cpt = append(c.cpt,
					math.Log(t.cpt[j][0][pbin][bin]),
					math.Log(t.cpt[j][1][pbin][bin]))
			}
		}
	}
	return c, nil
}

func (c *compiledTAN) PredictScratch(x []float64, s *ml.Scratch) int {
	bins := s.EnsureBins(c.p)
	for j := 0; j < c.p; j++ {
		b := 0
		if j < len(x) {
			// Counting the cuts ≤ v over the ascending cut arena yields
			// the same bin as Discretizer.Bin's binary search (both are
			// "first cut greater than v"), branch-predictably for the
			// handful of cuts per attribute.
			v := x[j]
			for _, cut := range c.cuts[c.cutOff[j]:c.cutOff[j+1]] {
				if cut <= v {
					b++
				}
			}
		}
		bins[j] = b
	}
	rb := bins[c.root] * 2
	lp0, lp1 := c.rootScore[rb], c.rootScore[rb+1]
	for j := 0; j < c.p; j++ {
		if j == c.root {
			continue
		}
		e := int(c.cptOff[j]) + (bins[c.parent[j]]*int(c.jbins[j])+bins[j])*2
		lp0 += c.cpt[e]
		lp1 += c.cpt[e+1]
	}
	if lp1 > lp0 {
		return 1
	}
	return 0
}
