// Package ml provides the machine-learning substrate the paper adapts from
// WEKA (§IV.B): dataset handling, the classifier interface implemented by
// the four synopsis builders (linear regression, naive Bayes, TAN, SVM),
// stratified k-fold cross validation, and the Balanced Accuracy metric used
// throughout the evaluation (§IV.A).
package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Dataset is a fixed-width table of instances with binary class labels
// (0 = underload, 1 = overload in the capacity-measurement setting).
//
// Datasets are cheap to slice: Project returns an index-based column view
// and Subset shares row storage, so the attribute-selection wrapper can
// evaluate dozens of candidate subsets over ten folds each without copying
// the underlying matrix. Access instance values through At, Row, RowTo, or
// Column — never assume a view's rows are dense.
type Dataset struct {
	AttrNames []string
	// Y holds the class labels. It is always materialized (views share or
	// copy it, but never remap it), so callers may index it directly.
	Y []int

	// x holds the backing rows. A projected view's rows are wider than the
	// dataset; cols maps view attribute j to its backing column.
	x    [][]float64
	cols []int // nil ⇒ attribute j is backing column j
}

// NewDataset returns an empty dataset over the named attributes.
func NewDataset(attrNames []string) *Dataset {
	names := make([]string, len(attrNames))
	copy(names, attrNames)
	return &Dataset{AttrNames: names}
}

// Add appends one instance. The value vector is copied. Projected views
// reject appends: their rows alias another dataset's storage.
func (d *Dataset) Add(values []float64, label int) error {
	if d.cols != nil {
		return errors.New("ml: cannot append to a projected dataset view")
	}
	if len(values) != len(d.AttrNames) {
		return fmt.Errorf("ml: instance has %d values, dataset has %d attributes",
			len(values), len(d.AttrNames))
	}
	if label != 0 && label != 1 {
		return fmt.Errorf("ml: label must be 0 or 1, got %d", label)
	}
	row := make([]float64, len(values))
	copy(row, values)
	d.x = append(d.x, row)
	d.Y = append(d.Y, label)
	return nil
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.x) }

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.AttrNames) }

// col maps attribute index j to its backing column.
func (d *Dataset) col(j int) int {
	if d.cols == nil {
		return j
	}
	return d.cols[j]
}

// At returns the value of attribute j of instance i.
func (d *Dataset) At(i, j int) float64 { return d.x[i][d.col(j)] }

// Row returns instance i as a dense attribute vector. On a non-projected
// dataset the returned slice aliases internal storage and must not be
// modified; on a projected view it is freshly gathered.
func (d *Dataset) Row(i int) []float64 {
	if d.cols == nil {
		return d.x[i]
	}
	return d.RowTo(make([]float64, len(d.cols)), i)
}

// RowTo returns instance i as a dense attribute vector, gathering a
// projected view's values into buf (grown as needed). On a non-projected
// dataset it returns the shared backing row without copying; either way
// the result is only valid until the next call with the same buf and must
// not be modified.
func (d *Dataset) RowTo(buf []float64, i int) []float64 {
	if d.cols == nil {
		return d.x[i]
	}
	if cap(buf) < len(d.cols) {
		buf = make([]float64, len(d.cols))
	}
	buf = buf[:len(d.cols)]
	row := d.x[i]
	for k, c := range d.cols {
		buf[k] = row[c]
	}
	return buf
}

// ClassCounts returns the number of instances labeled 0 and 1.
func (d *Dataset) ClassCounts() (n0, n1 int) {
	for _, y := range d.Y {
		if y == 1 {
			n1++
		} else {
			n0++
		}
	}
	return n0, n1
}

// Column returns a copy of one attribute column.
func (d *Dataset) Column(j int) []float64 {
	return d.ColumnTo(make([]float64, len(d.x)), j)
}

// ColumnTo gathers one attribute column into buf (grown as needed) and
// returns it.
func (d *Dataset) ColumnTo(buf []float64, j int) []float64 {
	if cap(buf) < len(d.x) {
		buf = make([]float64, len(d.x))
	}
	buf = buf[:len(d.x)]
	c := d.col(j)
	for i, row := range d.x {
		buf[i] = row[c]
	}
	return buf
}

// Project returns a view containing only the attributes at the given
// indices. Rows and labels share storage with the original: no values are
// copied, so projecting is O(len(attrs)) regardless of dataset size.
func (d *Dataset) Project(attrs []int) (*Dataset, error) {
	names := make([]string, len(attrs))
	cols := make([]int, len(attrs))
	for i, a := range attrs {
		if a < 0 || a >= d.NumAttrs() {
			return nil, fmt.Errorf("ml: attribute index %d out of range", a)
		}
		names[i] = d.AttrNames[a]
		cols[i] = d.col(a)
	}
	return &Dataset{AttrNames: names, Y: d.Y, x: d.x, cols: cols}, nil
}

// Subset returns a dataset view containing the rows at the given indices
// (row storage is shared, not copied; any column projection carries over).
func (d *Dataset) Subset(rows []int) *Dataset {
	out := &Dataset{AttrNames: d.AttrNames, cols: d.cols}
	out.x = make([][]float64, 0, len(rows))
	out.Y = make([]int, 0, len(rows))
	for _, r := range rows {
		out.x = append(out.x, d.x[r])
		out.Y = append(out.Y, d.Y[r])
	}
	return out
}

// Classifier is a trainable binary classifier over continuous attributes.
type Classifier interface {
	// Fit trains on the dataset, replacing any previous model.
	Fit(d *Dataset) error
	// Predict returns the predicted class (0 or 1) for one instance.
	Predict(x []float64) int
}

// Learner constructs fresh classifiers; it is what synopsis builders and
// cross validation consume so that every fold trains an independent model.
type Learner struct {
	Name string
	New  func() Classifier
}

// ErrNoData is returned when fitting an empty dataset.
var ErrNoData = errors.New("ml: empty training set")

// ErrOneClass is returned when the training set contains a single class;
// callers typically fall back to majority prediction.
var ErrOneClass = errors.New("ml: training set has a single class")

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add records one (truth, prediction) pair.
func (c *Confusion) Add(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		c.TP++
	case truth == 0 && pred == 0:
		c.TN++
	case truth == 0 && pred == 1:
		c.FP++
	default:
		c.FN++
	}
}

// Accuracy returns plain accuracy; 0 if empty.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.TN + c.FP + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// BalancedAccuracy returns the mean of the true-positive and true-negative
// rates — the paper's evaluation metric (§IV.A). If one class is absent
// from the truth, the other class's rate is reported alone so that a
// degenerate test set does not divide by zero.
func (c Confusion) BalancedAccuracy() float64 {
	pos := c.TP + c.FN
	neg := c.TN + c.FP
	switch {
	case pos == 0 && neg == 0:
		return 0
	case pos == 0:
		return float64(c.TN) / float64(neg)
	case neg == 0:
		return float64(c.TP) / float64(pos)
	default:
		tpr := float64(c.TP) / float64(pos)
		tnr := float64(c.TN) / float64(neg)
		return (tpr + tnr) / 2
	}
}

// Evaluate trains nothing: it runs a fitted classifier over a test set and
// returns the confusion matrix.
func Evaluate(c Classifier, test *Dataset) Confusion {
	var conf Confusion
	buf := make([]float64, test.NumAttrs())
	for i := range test.Y {
		conf.Add(test.Y[i], c.Predict(test.RowTo(buf, i)))
	}
	return conf
}

// StratifiedFolds partitions row indices into k folds preserving class
// proportions, shuffled deterministically by seed. The folds depend only
// on the labels and the seed, so a projected view of a dataset yields the
// same folds as the dataset itself — CrossValidateFolds exploits this to
// reuse one partition across every candidate attribute subset.
func StratifiedFolds(d *Dataset, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: need at least 2 folds, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d instances cannot fill %d folds", d.Len(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	folds := make([][]int, k)
	deal := func(rows []int) {
		for i, r := range rows {
			folds[i%k] = append(folds[i%k], r)
		}
	}
	deal(pos)
	deal(neg)
	return folds, nil
}

// CrossValidate runs stratified k-fold cross validation of the learner on
// the dataset and returns the pooled balanced accuracy. A fold whose
// training partition fails to fit (e.g. one-class) falls back to
// majority-class prediction for that fold, as WEKA does.
func CrossValidate(l Learner, d *Dataset, k int, seed int64) (float64, error) {
	folds, err := StratifiedFolds(d, k, seed)
	if err != nil {
		return 0, err
	}
	return CrossValidateFolds(l, d, folds)
}

// CrossValidateFolds is CrossValidate over a precomputed fold partition,
// letting callers that evaluate many views of one dataset (the attribute
// selection wrapper) stratify once and reuse the folds — the scores are
// identical because the folds depend only on labels and seed.
func CrossValidateFolds(l Learner, d *Dataset, folds [][]int) (float64, error) {
	if len(folds) < 2 {
		return 0, fmt.Errorf("ml: need at least 2 folds, got %d", len(folds))
	}
	var conf Confusion
	trainRows := make([]int, 0, d.Len())
	rowBuf := make([]float64, d.NumAttrs())
	for fi, test := range folds {
		trainRows = trainRows[:0]
		for fj, f := range folds {
			if fj != fi {
				trainRows = append(trainRows, f...)
			}
		}
		train := d.Subset(trainRows)
		c := l.New()
		if err := c.Fit(train); err != nil {
			maj := majorityClass(train)
			for _, r := range test {
				conf.Add(d.Y[r], maj)
			}
			continue
		}
		for _, r := range test {
			conf.Add(d.Y[r], c.Predict(d.RowTo(rowBuf, r)))
		}
	}
	return conf.BalancedAccuracy(), nil
}

func majorityClass(d *Dataset) int {
	n0, n1 := d.ClassCounts()
	if n1 > n0 {
		return 1
	}
	return 0
}
