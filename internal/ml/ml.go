// Package ml provides the machine-learning substrate the paper adapts from
// WEKA (§IV.B): dataset handling, the classifier interface implemented by
// the four synopsis builders (linear regression, naive Bayes, TAN, SVM),
// stratified k-fold cross validation, and the Balanced Accuracy metric used
// throughout the evaluation (§IV.A).
package ml

import (
	"errors"
	"fmt"
	"math/rand"
)

// Dataset is a fixed-width table of instances with binary class labels
// (0 = underload, 1 = overload in the capacity-measurement setting).
type Dataset struct {
	AttrNames []string
	X         [][]float64
	Y         []int
}

// NewDataset returns an empty dataset over the named attributes.
func NewDataset(attrNames []string) *Dataset {
	names := make([]string, len(attrNames))
	copy(names, attrNames)
	return &Dataset{AttrNames: names}
}

// Add appends one instance. The value vector is copied.
func (d *Dataset) Add(values []float64, label int) error {
	if len(values) != len(d.AttrNames) {
		return fmt.Errorf("ml: instance has %d values, dataset has %d attributes",
			len(values), len(d.AttrNames))
	}
	if label != 0 && label != 1 {
		return fmt.Errorf("ml: label must be 0 or 1, got %d", label)
	}
	row := make([]float64, len(values))
	copy(row, values)
	d.X = append(d.X, row)
	d.Y = append(d.Y, label)
	return nil
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.X) }

// NumAttrs returns the number of attributes.
func (d *Dataset) NumAttrs() int { return len(d.AttrNames) }

// ClassCounts returns the number of instances labeled 0 and 1.
func (d *Dataset) ClassCounts() (n0, n1 int) {
	for _, y := range d.Y {
		if y == 1 {
			n1++
		} else {
			n0++
		}
	}
	return n0, n1
}

// Column returns a copy of one attribute column.
func (d *Dataset) Column(j int) []float64 {
	col := make([]float64, len(d.X))
	for i, row := range d.X {
		col[i] = row[j]
	}
	return col
}

// Project returns a new dataset containing only the attributes at the given
// indices (rows share no storage with the original).
func (d *Dataset) Project(attrs []int) (*Dataset, error) {
	names := make([]string, len(attrs))
	for i, a := range attrs {
		if a < 0 || a >= d.NumAttrs() {
			return nil, fmt.Errorf("ml: attribute index %d out of range", a)
		}
		names[i] = d.AttrNames[a]
	}
	out := NewDataset(names)
	for i, row := range d.X {
		vals := make([]float64, len(attrs))
		for k, a := range attrs {
			vals[k] = row[a]
		}
		out.X = append(out.X, vals)
		out.Y = append(out.Y, d.Y[i])
	}
	return out, nil
}

// Subset returns a dataset view containing the rows at the given indices
// (rows are shared, not copied).
func (d *Dataset) Subset(rows []int) *Dataset {
	out := NewDataset(d.AttrNames)
	out.X = make([][]float64, 0, len(rows))
	out.Y = make([]int, 0, len(rows))
	for _, r := range rows {
		out.X = append(out.X, d.X[r])
		out.Y = append(out.Y, d.Y[r])
	}
	return out
}

// Classifier is a trainable binary classifier over continuous attributes.
type Classifier interface {
	// Fit trains on the dataset, replacing any previous model.
	Fit(d *Dataset) error
	// Predict returns the predicted class (0 or 1) for one instance.
	Predict(x []float64) int
}

// Learner constructs fresh classifiers; it is what synopsis builders and
// cross validation consume so that every fold trains an independent model.
type Learner struct {
	Name string
	New  func() Classifier
}

// ErrNoData is returned when fitting an empty dataset.
var ErrNoData = errors.New("ml: empty training set")

// ErrOneClass is returned when the training set contains a single class;
// callers typically fall back to majority prediction.
var ErrOneClass = errors.New("ml: training set has a single class")

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Add records one (truth, prediction) pair.
func (c *Confusion) Add(truth, pred int) {
	switch {
	case truth == 1 && pred == 1:
		c.TP++
	case truth == 0 && pred == 0:
		c.TN++
	case truth == 0 && pred == 1:
		c.FP++
	default:
		c.FN++
	}
}

// Accuracy returns plain accuracy; 0 if empty.
func (c Confusion) Accuracy() float64 {
	total := c.TP + c.TN + c.FP + c.FN
	if total == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(total)
}

// BalancedAccuracy returns the mean of the true-positive and true-negative
// rates — the paper's evaluation metric (§IV.A). If one class is absent
// from the truth, the other class's rate is reported alone so that a
// degenerate test set does not divide by zero.
func (c Confusion) BalancedAccuracy() float64 {
	pos := c.TP + c.FN
	neg := c.TN + c.FP
	switch {
	case pos == 0 && neg == 0:
		return 0
	case pos == 0:
		return float64(c.TN) / float64(neg)
	case neg == 0:
		return float64(c.TP) / float64(pos)
	default:
		tpr := float64(c.TP) / float64(pos)
		tnr := float64(c.TN) / float64(neg)
		return (tpr + tnr) / 2
	}
}

// Evaluate trains nothing: it runs a fitted classifier over a test set and
// returns the confusion matrix.
func Evaluate(c Classifier, test *Dataset) Confusion {
	var conf Confusion
	for i, row := range test.X {
		conf.Add(test.Y[i], c.Predict(row))
	}
	return conf
}

// StratifiedFolds partitions row indices into k folds preserving class
// proportions, shuffled deterministically by seed.
func StratifiedFolds(d *Dataset, k int, seed int64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("ml: need at least 2 folds, got %d", k)
	}
	if d.Len() < k {
		return nil, fmt.Errorf("ml: %d instances cannot fill %d folds", d.Len(), k)
	}
	rng := rand.New(rand.NewSource(seed))
	var pos, neg []int
	for i, y := range d.Y {
		if y == 1 {
			pos = append(pos, i)
		} else {
			neg = append(neg, i)
		}
	}
	rng.Shuffle(len(pos), func(i, j int) { pos[i], pos[j] = pos[j], pos[i] })
	rng.Shuffle(len(neg), func(i, j int) { neg[i], neg[j] = neg[j], neg[i] })

	folds := make([][]int, k)
	deal := func(rows []int) {
		for i, r := range rows {
			folds[i%k] = append(folds[i%k], r)
		}
	}
	deal(pos)
	deal(neg)
	return folds, nil
}

// CrossValidate runs stratified k-fold cross validation of the learner on
// the dataset and returns the pooled balanced accuracy. A fold whose
// training partition fails to fit (e.g. one-class) falls back to
// majority-class prediction for that fold, as WEKA does.
func CrossValidate(l Learner, d *Dataset, k int, seed int64) (float64, error) {
	folds, err := StratifiedFolds(d, k, seed)
	if err != nil {
		return 0, err
	}
	var conf Confusion
	for fi, test := range folds {
		var trainRows []int
		for fj, f := range folds {
			if fj != fi {
				trainRows = append(trainRows, f...)
			}
		}
		train := d.Subset(trainRows)
		c := l.New()
		if err := c.Fit(train); err != nil {
			maj := majorityClass(train)
			for _, r := range test {
				conf.Add(d.Y[r], maj)
			}
			continue
		}
		for _, r := range test {
			conf.Add(d.Y[r], c.Predict(d.X[r]))
		}
	}
	return conf.BalancedAccuracy(), nil
}

func majorityClass(d *Dataset) int {
	n0, n1 := d.ClassCounts()
	if n1 > n0 {
		return 1
	}
	return 0
}
