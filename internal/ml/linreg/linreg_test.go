package linreg

import (
	"testing"

	"hpcap/internal/ml"
	"hpcap/internal/ml/mltest"
)

func TestLearnsLinearlySeparable(t *testing.T) {
	d := mltest.LinearlySeparable(200, 0.3, 1)
	ba, err := mltest.TrainAccuracy(New(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.97 {
		t.Errorf("training BA on separable data = %v, want ≥0.97", ba)
	}
}

func TestFailsOnXOR(t *testing.T) {
	// The paper: "Linear regression performed worst because it can only
	// capture linear correlations."
	d := mltest.XOR(200, 0.08, 2)
	ba, err := mltest.TrainAccuracy(New(), d)
	if err != nil {
		t.Fatal(err)
	}
	if ba > 0.65 {
		t.Errorf("LR on XOR achieved %v; a linear model should stay near 0.5", ba)
	}
}

func TestEmptyAndOneClassErrors(t *testing.T) {
	if err := New().Fit(ml.NewDataset([]string{"a"})); err != ml.ErrNoData {
		t.Errorf("empty fit err = %v, want ErrNoData", err)
	}
	if err := New().Fit(mltest.OneClass(10, 1)); err != ml.ErrOneClass {
		t.Errorf("one-class fit err = %v, want ErrOneClass", err)
	}
}

func TestPredictBeforeFit(t *testing.T) {
	if got := New().Predict([]float64{1, 2}); got != 0 {
		t.Errorf("unfitted Predict = %d, want 0", got)
	}
}

func TestCollinearAttributesHandled(t *testing.T) {
	// Duplicate columns make XᵀX singular without ridge regularization.
	d := ml.NewDataset([]string{"a", "a_copy"})
	for i := 0; i < 50; i++ {
		v := float64(i)
		label := 0
		if i >= 25 {
			label = 1
		}
		if err := d.Add([]float64{v, v}, label); err != nil {
			t.Fatal(err)
		}
	}
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatalf("collinear fit failed: %v", err)
	}
	if ba := ml.Evaluate(c, d).BalancedAccuracy(); ba < 0.9 {
		t.Errorf("collinear BA = %v, want ≥0.9", ba)
	}
}

func TestScoreMonotoneAlongDiscriminant(t *testing.T) {
	d := mltest.LinearlySeparable(100, 0.3, 7)
	c := New()
	if err := c.Fit(d); err != nil {
		t.Fatal(err)
	}
	lo := c.Score([]float64{-0.2, -0.2})
	hi := c.Score([]float64{1.5, 1.5})
	if hi <= lo {
		t.Errorf("score not increasing toward class 1: %v vs %v", lo, hi)
	}
}

func TestCrossValidationOnNoisyData(t *testing.T) {
	d := mltest.NoisyGaussians(200, 6, 2, 2.5, 11)
	ba, err := ml.CrossValidate(Learner(), d, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ba < 0.8 {
		t.Errorf("CV BA on informative Gaussians = %v, want ≥0.8", ba)
	}
}
