// Package linreg implements the linear-regression synopsis builder (the
// "LR" column of the paper's Table I): ordinary least squares with a small
// ridge term for numerical stability, fit to the 0/1 class labels and
// thresholded at ½ for classification. As the paper observes, it can only
// capture linear correlations and is the weakest of the four builders.
package linreg

import (
	"errors"
	"fmt"

	"hpcap/internal/ml"
)

// Classifier is a ridge-regularized least-squares linear classifier.
type Classifier struct {
	// Lambda is the ridge regularization strength; zero selects a small
	// default that guards against the near-collinear metric columns.
	Lambda float64

	scaler  *ml.Scaler
	weights []float64 // intercept at index 0
}

// New returns a linear-regression classifier with default regularization.
func New() *Classifier { return &Classifier{} }

// Learner returns the ml.Learner for linear regression.
func Learner() ml.Learner {
	return ml.Learner{Name: "LR", New: func() ml.Classifier { return New() }}
}

// Fit solves (XᵀX + λI)w = Xᵀy on standardized attributes.
func (c *Classifier) Fit(d *ml.Dataset) error {
	if d.Len() == 0 {
		return ml.ErrNoData
	}
	n0, n1 := d.ClassCounts()
	if n0 == 0 || n1 == 0 {
		return ml.ErrOneClass
	}
	lambda := c.Lambda
	if lambda <= 0 {
		lambda = 1e-6
	}
	c.scaler = ml.FitScaler(d)
	rows := c.scaler.ApplyAll(d)

	p := d.NumAttrs() + 1 // intercept
	// Normal equations: A = XᵀX + λI, b = Xᵀy.
	a := make([][]float64, p)
	for i := range a {
		a[i] = make([]float64, p)
	}
	b := make([]float64, p)
	xi := make([]float64, p)
	xi[0] = 1
	for r, row := range rows {
		y := float64(d.Y[r])
		copy(xi[1:], row)
		for i := 0; i < p; i++ {
			b[i] += xi[i] * y
			for j := 0; j < p; j++ {
				a[i][j] += xi[i] * xi[j]
			}
		}
	}
	for i := 1; i < p; i++ { // do not regularize the intercept
		a[i][i] += lambda * float64(d.Len())
	}
	w, err := solve(a, b)
	if err != nil {
		return fmt.Errorf("linreg: %w", err)
	}
	c.weights = w
	return nil
}

// Score returns the raw regression output for one instance.
func (c *Classifier) Score(x []float64) float64 {
	if c.weights == nil {
		return 0
	}
	z := c.scaler.Apply(x)
	s := c.weights[0]
	for j, v := range z {
		if j+1 >= len(c.weights) {
			break
		}
		s += c.weights[j+1] * v
	}
	return s
}

// Predict thresholds the regression output at ½.
func (c *Classifier) Predict(x []float64) int {
	if c.Score(x) >= 0.5 {
		return 1
	}
	return 0
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// the system.
func solve(a [][]float64, b []float64) ([]float64, error) {
	n := len(a)
	// Work on copies.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[pivot][col]) {
				pivot = r
			}
		}
		if abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			if f == 0 {
				continue
			}
			for k := col; k <= n; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for k := i + 1; k < n; k++ {
			s -= m[i][k] * x[k]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
