package linreg

import "hpcap/internal/ml"

// compiled is a trained linear model lowered into flat weight and scaler
// arrays walked in one pass, standardizing into caller scratch instead of
// allocating per call. The arithmetic (and therefore the score) is exactly
// the interpreted Score's.
type compiled struct {
	mean []float64
	std  []float64
	d    int
	w    []float64 // intercept at index 0
}

// Compile lowers the trained model; it fails before Fit.
func (c *Classifier) Compile() (ml.Compiled, error) {
	if c.weights == nil {
		return nil, ml.ErrNoData
	}
	return &compiled{mean: c.scaler.Mean, std: c.scaler.Std,
		d: len(c.scaler.Mean), w: c.weights}, nil
}

func (p *compiled) PredictScratch(x []float64, s *ml.Scratch) int {
	z := s.EnsureZ(len(x))
	for j := range z {
		if j < p.d {
			z[j] = (x[j] - p.mean[j]) / p.std[j]
		} else {
			z[j] = 0
		}
	}
	sum := p.w[0]
	for j, v := range z {
		if j+1 >= len(p.w) {
			break
		}
		sum += p.w[j+1] * v
	}
	if sum >= 0.5 {
		return 1
	}
	return 0
}
