package ml_test

import (
	"testing"

	"hpcap/internal/ml"
	"hpcap/internal/ml/mltest"
)

func TestDatasetAdd(t *testing.T) {
	d := ml.NewDataset([]string{"a", "b"})
	if err := d.Add([]float64{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]float64{1}, 0); err == nil {
		t.Error("wrong width not rejected")
	}
	if err := d.Add([]float64{1, 2}, 2); err == nil {
		t.Error("bad label not rejected")
	}
	if d.Len() != 1 || d.NumAttrs() != 2 {
		t.Errorf("Len=%d NumAttrs=%d", d.Len(), d.NumAttrs())
	}
}

func TestDatasetAddCopies(t *testing.T) {
	d := ml.NewDataset([]string{"a"})
	vals := []float64{5}
	if err := d.Add(vals, 0); err != nil {
		t.Fatal(err)
	}
	vals[0] = 99
	if d.At(0, 0) != 5 {
		t.Error("Add did not copy the value slice")
	}
}

func TestClassCounts(t *testing.T) {
	d := ml.NewDataset([]string{"a"})
	for i := 0; i < 7; i++ {
		label := 0
		if i < 3 {
			label = 1
		}
		if err := d.Add([]float64{0}, label); err != nil {
			t.Fatal(err)
		}
	}
	n0, n1 := d.ClassCounts()
	if n0 != 4 || n1 != 3 {
		t.Errorf("ClassCounts = %d, %d; want 4, 3", n0, n1)
	}
}

func TestColumnAndProject(t *testing.T) {
	d := ml.NewDataset([]string{"a", "b", "c"})
	if err := d.Add([]float64{1, 2, 3}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]float64{4, 5, 6}, 1); err != nil {
		t.Fatal(err)
	}
	col := d.Column(1)
	if col[0] != 2 || col[1] != 5 {
		t.Errorf("Column(1) = %v", col)
	}
	proj, err := d.Project([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if proj.AttrNames[0] != "c" || proj.AttrNames[1] != "a" {
		t.Errorf("projected names = %v", proj.AttrNames)
	}
	if row := proj.Row(1); row[0] != 6 || row[1] != 4 {
		t.Errorf("projected row = %v", row)
	}
	if proj.At(0, 0) != 3 || proj.At(0, 1) != 1 {
		t.Errorf("projected At = %v, %v", proj.At(0, 0), proj.At(0, 1))
	}
	if proj.Y[1] != 1 {
		t.Error("projected label lost")
	}
	if _, err := d.Project([]int{5}); err == nil {
		t.Error("out-of-range projection not rejected")
	}
	// Projections are views: appending would alias foreign storage.
	if err := proj.Add([]float64{0, 0}, 0); err == nil {
		t.Error("append to a projected view not rejected")
	}
	// A projection of a projection composes the column maps.
	pp, err := proj.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if pp.AttrNames[0] != "a" || pp.At(1, 0) != 4 {
		t.Errorf("nested projection = %v / %v", pp.AttrNames, pp.At(1, 0))
	}
	// Subsetting a projection keeps the column view.
	sp := proj.Subset([]int{1})
	if sp.At(0, 0) != 6 || sp.Y[0] != 1 {
		t.Errorf("subset of projection = %v / %v", sp.At(0, 0), sp.Y[0])
	}
}

func TestSubset(t *testing.T) {
	d := mltest.LinearlySeparable(10, 0.1, 1)
	sub := d.Subset([]int{0, 3, 7})
	if sub.Len() != 3 {
		t.Fatalf("Subset len = %d", sub.Len())
	}
	if sub.Y[1] != d.Y[3] {
		t.Error("subset labels misaligned")
	}
}

func TestConfusionAndBalancedAccuracy(t *testing.T) {
	var c ml.Confusion
	// 8 positives: 6 right; 2 negatives: 1 right.
	for i := 0; i < 6; i++ {
		c.Add(1, 1)
	}
	c.Add(1, 0)
	c.Add(1, 0)
	c.Add(0, 0)
	c.Add(0, 1)
	wantBA := (6.0/8 + 1.0/2) / 2
	if got := c.BalancedAccuracy(); got != wantBA {
		t.Errorf("BA = %v, want %v", got, wantBA)
	}
	if got := c.Accuracy(); got != 7.0/10 {
		t.Errorf("accuracy = %v, want 0.7", got)
	}
}

func TestBalancedAccuracyDegenerate(t *testing.T) {
	var c ml.Confusion
	if got := c.BalancedAccuracy(); got != 0 {
		t.Errorf("empty BA = %v, want 0", got)
	}
	var onlyPos ml.Confusion
	onlyPos.Add(1, 1)
	onlyPos.Add(1, 0)
	if got := onlyPos.BalancedAccuracy(); got != 0.5 {
		t.Errorf("positives-only BA = %v, want 0.5", got)
	}
	var onlyNeg ml.Confusion
	onlyNeg.Add(0, 0)
	if got := onlyNeg.BalancedAccuracy(); got != 1 {
		t.Errorf("negatives-only BA = %v, want 1", got)
	}
}

func TestStratifiedFolds(t *testing.T) {
	d := ml.NewDataset([]string{"a"})
	// 30 instances, 10 positive.
	for i := 0; i < 30; i++ {
		label := 0
		if i < 10 {
			label = 1
		}
		if err := d.Add([]float64{float64(i)}, label); err != nil {
			t.Fatal(err)
		}
	}
	folds, err := ml.StratifiedFolds(d, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d, want 5", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		pos := 0
		for _, r := range f {
			if seen[r] {
				t.Fatalf("row %d in two folds", r)
			}
			seen[r] = true
			if d.Y[r] == 1 {
				pos++
			}
		}
		if pos != 2 {
			t.Errorf("fold has %d positives, want 2 (stratified)", pos)
		}
	}
	if len(seen) != 30 {
		t.Errorf("folds cover %d rows, want 30", len(seen))
	}
}

func TestStratifiedFoldsErrors(t *testing.T) {
	d := mltest.LinearlySeparable(10, 0.1, 1)
	if _, err := ml.StratifiedFolds(d, 1, 0); err == nil {
		t.Error("k=1 not rejected")
	}
	if _, err := ml.StratifiedFolds(d, 11, 0); err == nil {
		t.Error("k>n not rejected")
	}
}

// majorityLearner predicts the training majority class, for CV plumbing
// tests.
type majorityClassifier struct{ class int }

func (m *majorityClassifier) Fit(d *ml.Dataset) error {
	n0, n1 := d.ClassCounts()
	if n0 == 0 || n1 == 0 {
		return ml.ErrOneClass
	}
	if n1 > n0 {
		m.class = 1
	}
	return nil
}

func (m *majorityClassifier) Predict([]float64) int { return m.class }

func TestCrossValidateMajorityIsHalf(t *testing.T) {
	d := mltest.LinearlySeparable(60, 0.2, 3)
	learner := ml.Learner{Name: "maj", New: func() ml.Classifier { return &majorityClassifier{} }}
	ba, err := ml.CrossValidate(learner, d, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A constant predictor has balanced accuracy 1/2 by construction.
	if ba < 0.45 || ba > 0.55 {
		t.Errorf("majority CV BA = %v, want ≈0.5", ba)
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := mltest.LinearlySeparable(40, 0.2, 3)
	learner := ml.Learner{Name: "maj", New: func() ml.Classifier { return &majorityClassifier{} }}
	a, err := ml.CrossValidate(learner, d, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ml.CrossValidate(learner, d, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("CV not deterministic: %v vs %v", a, b)
	}
}

func TestEvaluate(t *testing.T) {
	d := mltest.LinearlySeparable(20, 0.3, 5)
	m := &majorityClassifier{class: 1}
	conf := ml.Evaluate(m, d)
	if conf.TP+conf.FP != 20 {
		t.Errorf("all predictions should be positive: %+v", conf)
	}
}

func TestScaler(t *testing.T) {
	d := ml.NewDataset([]string{"a", "b"})
	if err := d.Add([]float64{0, 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Add([]float64{10, 5}, 1); err != nil {
		t.Fatal(err)
	}
	s := ml.FitScaler(d)
	z := s.Apply([]float64{5, 5})
	if z[0] != 0 {
		t.Errorf("centered value = %v, want 0", z[0])
	}
	// Constant attribute: std floor of 1, so centered passthrough.
	if z[1] != 0 {
		t.Errorf("constant attribute scaled to %v, want 0", z[1])
	}
	all := s.ApplyAll(d)
	if len(all) != 2 {
		t.Fatalf("ApplyAll rows = %d", len(all))
	}
	if all[0][0] >= 0 || all[1][0] <= 0 {
		t.Errorf("standardized column wrong: %v, %v", all[0][0], all[1][0])
	}
}
