package ml

import "hpcap/internal/stats"

// Scaler standardizes attributes to zero mean and unit variance using
// statistics learned from a training set. Linear regression and the SVM use
// it so that metrics spanning ten orders of magnitude (cycle rates vs.
// ratios) contribute comparably.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler learns per-attribute standardization from the dataset.
func FitScaler(d *Dataset) *Scaler {
	n := d.NumAttrs()
	s := &Scaler{Mean: make([]float64, n), Std: make([]float64, n)}
	col := make([]float64, d.Len())
	for j := 0; j < n; j++ {
		col = d.ColumnTo(col, j)
		s.Mean[j] = stats.Mean(col)
		s.Std[j] = stats.StdDev(col)
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1 // constant attribute: pass through centered
		}
	}
	return s
}

// Apply standardizes one instance into a new slice.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		if j >= len(s.Mean) {
			break
		}
		out[j] = (x[j] - s.Mean[j]) / s.Std[j]
	}
	return out
}

// ApplyAll standardizes every row of the dataset into a new matrix.
func (s *Scaler) ApplyAll(d *Dataset) [][]float64 {
	out := make([][]float64, d.Len())
	buf := make([]float64, d.NumAttrs())
	for i := range out {
		out[i] = s.Apply(d.RowTo(buf, i))
	}
	return out
}
