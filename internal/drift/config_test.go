package drift

import (
	"errors"
	"testing"

	"hpcap/internal/core"
)

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
	// Negative thresholds are documented disables, not errors.
	off := Config{PHLambda: -1, MixThreshold: -1}
	if errs := off.Validate(); len(errs) > 0 {
		t.Fatalf("disabled detectors rejected: %v", errs)
	}
}

func TestConfigValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative PH delta", func(c *Config) { c.PHDelta = -0.1 }},
		{"negative min windows", func(c *Config) { c.MinWindows = -1 }},
		{"correlation window of one", func(c *Config) { c.CorrWindow = 1 }},
		{"negative correlation cadence", func(c *Config) { c.CorrEvery = -1 }},
		{"negative correlation margin", func(c *Config) { c.CorrMargin = -0.5 }},
		{"correlation floor above one", func(c *Config) { c.CorrMinBest = 1.5 }},
		{"negative correlation floor", func(c *Config) { c.CorrMinBest = -0.5 }},
		{"negative correlation patience", func(c *Config) { c.CorrPatience = -1 }},
		{"negative mix reference", func(c *Config) { c.MixRefWindows = -1 }},
		{"negative mix window", func(c *Config) { c.MixWindow = -1 }},
		{"negative mix patience", func(c *Config) { c.MixPatience = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			errs := cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
		})
	}
}
