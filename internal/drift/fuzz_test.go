package drift

import (
	"math"
	"math/rand"
	"testing"

	"hpcap/internal/server"
)

// fuzzLayout covers every default PI candidate's yield and cost metric, so
// the correlation detector is fully armed during fuzzing.
var fuzzLayout = []string{
	"hpc_ipc", "hpc_l2_miss_ratio", "hpc_stall_frac",
	"hpc_l2_mpki", "hpc_instr_rate", "hpc_stall_rate",
}

func fuzzDetector(t *testing.T) *Detector {
	t.Helper()
	cfg := Config{Names: fuzzLayout}
	cfg.Reference[server.TierApp] = "ipc_per_l2miss"
	cfg.Reference[server.TierDB] = "ipc_per_stall"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// FuzzDetectorNoPanic feeds arbitrary byte-derived streams — including
// NaN/Inf components, constant columns, negative counts, and short vectors —
// and requires only that the detector never panics and that any signal it
// does emit is well-formed.
func FuzzDetectorNoPanic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 250, 251, 252, 253, 254, 255})
	f.Add([]byte("constant columns and weird values"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := fuzzDetector(t)
		val := func(b byte) float64 {
			switch b % 8 {
			case 0:
				return math.NaN()
			case 1:
				return math.Inf(1)
			case 2:
				return math.Inf(-1)
			case 3:
				return -float64(b)
			case 4:
				return 0
			case 5:
				return 1 // constant column fodder
			default:
				return float64(b) / 16
			}
		}
		for i := 0; i < len(data); i++ {
			b := data[i]
			var o Observation
			o.Seq = int64(i)
			o.Predicted = b&1 != 0
			o.Truth = b&2 != 0
			o.Throughput = val(b >> 2)
			if b%3 != 0 {
				vec := make([]float64, int(b%9)) // often shorter than the layout
				for j := range vec {
					vec[j] = val(b + byte(j))
				}
				o.Vectors[server.TierApp] = vec
				o.Vectors[server.TierDB] = vec
			}
			if b%5 != 0 {
				counts := make([]float64, int(b%6))
				for j := range counts {
					counts[j] = val(b + byte(3*j))
				}
				o.ClassCounts = counts
			}
			for _, s := range d.Observe(o) {
				if s.Seq != o.Seq {
					t.Fatalf("signal %+v carries wrong Seq, want %d", s, o.Seq)
				}
				if math.IsNaN(s.Score) || math.IsInf(s.Score, 0) {
					t.Fatalf("signal %+v has non-finite score", s)
				}
			}
			if b == 77 {
				d.Reset()
			}
		}
	})
}

// FuzzDetectorIIDQuiet streams i.i.d. observations — stationary Bernoulli
// errors, white-noise metric vectors, and a stable class mix — and requires
// that no detector signals at the default thresholds. The fuzzer searches
// the seed space adversarially, so the stream is sized to keep every false
// positive beyond ~6σ: 100 windows with error rate ≤ 0.2 puts the default
// Page–Hinkley λ of 25 at more than six standard deviations of the error
// walk, and thin-tailed PI inputs keep the best i.i.d. |correlation| far
// below CorrMinBest at CorrWindow 64.
func FuzzDetectorIIDQuiet(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(2))
	f.Add(uint64(12345))
	f.Add(uint64(987654321))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := rand.New(rand.NewSource(int64(seed)))
		d := fuzzDetector(t)
		errRate := 0.2 * rng.Float64()
		mix := []float64{0.5, 0.3, 0.15, 0.05}
		for i := 0; i < 100; i++ {
			var o Observation
			o.Seq = int64(i)
			o.Truth = rng.Float64() < 0.3
			o.Predicted = o.Truth
			if rng.Float64() < errRate {
				o.Predicted = !o.Predicted
			}
			o.Throughput = 5 + 2*rng.Float64()
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				vec := make([]float64, len(fuzzLayout))
				for j := range vec {
					// Bounded away from zero so PI ratios stay thin-tailed.
					vec[j] = 1 + rng.Float64()
				}
				o.Vectors[tier] = vec
			}
			counts := make([]float64, len(mix))
			for j, p := range mix {
				counts[j] = p * 200 * (0.9 + 0.2*rng.Float64())
			}
			o.ClassCounts = counts
			if sigs := d.Observe(o); len(sigs) != 0 {
				t.Fatalf("seed %d: signal on i.i.d. stream at window %d: %v", seed, i, sigs)
			}
		}
	})
}
