package drift

import (
	"fmt"
	"math"

	"hpcap/internal/pi"
	"hpcap/internal/stats"
)

// PageHinkley is the sequential test for an upward shift of a stream's
// mean: it accumulates m_t = Σ (x_i − mean_i − δ) and signals when m_t
// rises more than λ above its running minimum. On the 0/1 prediction-error
// stream, the statistic reads as "errors in excess of the baseline rate":
// random fluctuation cancels against the adapting mean while a genuine
// accuracy collapse accumulates roughly (new rate − old rate) per window.
type PageHinkley struct {
	delta      float64
	lambda     float64
	minSamples int

	n    int
	mean float64
	cum  float64
	min  float64
}

// NewPageHinkley builds the test; see Config.PHDelta/PHLambda/MinWindows
// for the parameter semantics.
func NewPageHinkley(delta, lambda float64, minSamples int) *PageHinkley {
	return &PageHinkley{delta: delta, lambda: lambda, minSamples: minSamples}
}

// Add folds one value into the test and reports whether the statistic
// crossed the threshold. Non-finite values are ignored.
func (ph *PageHinkley) Add(x float64) bool {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return false
	}
	ph.n++
	ph.mean += (x - ph.mean) / float64(ph.n)
	ph.cum += x - ph.mean - ph.delta
	if ph.cum < ph.min {
		ph.min = ph.cum
	}
	return ph.n >= ph.minSamples && ph.Stat() > ph.lambda
}

// Stat returns the current test statistic m_t − min m.
func (ph *PageHinkley) Stat() float64 { return ph.cum - ph.min }

// N returns how many values the test has absorbed since the last reset.
func (ph *PageHinkley) N() int { return ph.n }

// Reset clears the test to its initial state.
func (ph *PageHinkley) Reset() {
	ph.n, ph.mean, ph.cum, ph.min = 0, 0, 0, 0
}

// corrTracker re-runs the paper's PI reference selection (Eq. 2) for one
// tier over a sliding window of decided windows and watches for the
// trained choice to lose the rank competition.
type corrTracker struct {
	defs     []pi.Definition
	yi, ci   []int // metric indices per candidate
	ref      int   // index of the trained reference in defs
	win      int
	every    int
	margin   float64
	minBest  float64
	patience int

	series [][]float64 // ring of PI values per candidate
	thr    []float64   // ring of throughput
	head   int
	n      int64 // windows observed (ring fills at win)
	losing int
}

func newCorrTracker(cfg Config, reference string) (*corrTracker, error) {
	ct := &corrTracker{
		defs:     cfg.Candidates,
		ref:      -1,
		win:      cfg.CorrWindow,
		every:    cfg.CorrEvery,
		margin:   cfg.CorrMargin,
		minBest:  cfg.CorrMinBest,
		patience: cfg.CorrPatience,
		thr:      make([]float64, cfg.CorrWindow),
	}
	for i, def := range ct.defs {
		yi, ci := indexOf(cfg.Names, def.Yield), indexOf(cfg.Names, def.Cost)
		if yi < 0 || ci < 0 {
			return nil, fmt.Errorf("candidate %s: metrics %q/%q not in layout", def.Name, def.Yield, def.Cost)
		}
		ct.yi = append(ct.yi, yi)
		ct.ci = append(ct.ci, ci)
		if def.Name == reference {
			ct.ref = i
		}
		ct.series = append(ct.series, make([]float64, cfg.CorrWindow))
	}
	if ct.ref < 0 {
		return nil, fmt.Errorf("reference candidate %q unknown", reference)
	}
	return ct, nil
}

// observe pushes one window and reports whether the trained reference has
// persistently lost the rank competition, along with the losing gap.
func (ct *corrTracker) observe(vec []float64, throughput float64) (bool, float64) {
	for i := range ct.defs {
		v := 0.0
		if ct.yi[i] < len(vec) && ct.ci[i] < len(vec) {
			y, c := vec[ct.yi[i]], vec[ct.ci[i]]
			if c > 0 && !math.IsNaN(y) && !math.IsInf(y, 0) && !math.IsInf(c, 0) {
				v = y / c
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
		}
		ct.series[i][ct.head] = v
	}
	if math.IsNaN(throughput) || math.IsInf(throughput, 0) {
		throughput = 0
	}
	ct.thr[ct.head] = throughput
	ct.head = (ct.head + 1) % ct.win
	ct.n++
	if ct.n < int64(ct.win) || ct.n%int64(ct.every) != 0 {
		return false, 0
	}

	best, refCorr := 0.0, 0.0
	for i := range ct.defs {
		// Ring order does not matter: correlation is permutation-invariant,
		// and all rings share the same permutation.
		r, err := stats.Correlation(ct.series[i], ct.thr)
		if err != nil {
			continue
		}
		a := math.Abs(r)
		if a > best {
			best = a
		}
		if i == ct.ref {
			refCorr = a
		}
	}
	gap := best - refCorr
	if best >= ct.minBest && gap > ct.margin {
		ct.losing++
		if ct.losing >= ct.patience {
			ct.losing = 0
			return true, gap
		}
	} else {
		ct.losing = 0
	}
	return false, 0
}

func (ct *corrTracker) reset() {
	ct.head, ct.n, ct.losing = 0, 0, 0
	for i := range ct.series {
		for j := range ct.series[i] {
			ct.series[i][j] = 0
		}
	}
	for j := range ct.thr {
		ct.thr[j] = 0
	}
}

// mixShift compares a reference request-class histogram against a sliding
// recent histogram with the Jensen–Shannon divergence.
type mixShift struct {
	threshold  float64
	patience   int
	refWindows int
	learned    bool // reference is learned from the stream (vs configured)

	ref  []float64 // accumulated reference counts
	refN int
	ring [][]float64 // recent windows' sanitized counts
	head int
	n    int64
	over int
}

func newMixShift(cfg Config) *mixShift {
	m := &mixShift{
		threshold:  cfg.MixThreshold,
		patience:   cfg.MixPatience,
		refWindows: cfg.MixRefWindows,
		learned:    cfg.MixRef == nil,
		ring:       make([][]float64, cfg.MixWindow),
	}
	if cfg.MixRef != nil {
		m.ref = sanitizeCounts(nil, cfg.MixRef)
		m.refN = m.refWindows // configured reference is complete
	}
	return m
}

// observe pushes one window's class counts and reports a sustained
// divergence, along with the JSD at the firing point.
func (m *mixShift) observe(counts []float64) (bool, float64) {
	clean := sanitizeCounts(nil, counts)
	if m.refN < m.refWindows {
		m.ref = accumulate(m.ref, clean)
		m.refN++
		return false, 0
	}
	m.ring[m.head] = clean
	m.head = (m.head + 1) % len(m.ring)
	m.n++
	if m.n < int64(len(m.ring)) {
		return false, 0
	}
	var recent []float64
	for _, c := range m.ring {
		recent = accumulate(recent, c)
	}
	jsd := jensenShannon(m.ref, recent)
	if jsd > m.threshold {
		m.over++
		if m.over >= m.patience {
			m.over = 0
			return true, jsd
		}
	} else {
		m.over = 0
	}
	return false, 0
}

func (m *mixShift) reset() {
	m.head, m.n, m.over = 0, 0, 0
	for i := range m.ring {
		m.ring[i] = nil
	}
	if m.learned {
		m.ref, m.refN = nil, 0
	}
}

// sanitizeCounts copies counts with NaN/Inf/negative entries clipped to 0.
func sanitizeCounts(dst, counts []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(counts))
	}
	for i, v := range counts {
		if i >= len(dst) {
			break
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return dst
}

// accumulate adds src into dst element-wise, growing dst as needed.
func accumulate(dst, src []float64) []float64 {
	if len(src) > len(dst) {
		grown := make([]float64, len(src))
		copy(grown, dst)
		dst = grown
	}
	for i, v := range src {
		dst[i] += v
	}
	return dst
}

// jensenShannon returns the Jensen–Shannon divergence (natural log) of two
// count vectors after normalization. Degenerate inputs (empty, all-zero)
// return 0 — never a signal.
func jensenShannon(a, b []float64) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	at := func(xs []float64, i int) float64 {
		if i < len(xs) {
			return xs[i]
		}
		return 0
	}
	var sa, sb float64
	for i := 0; i < n; i++ {
		sa += at(a, i)
		sb += at(b, i)
	}
	if sa <= 0 || sb <= 0 {
		return 0
	}
	var jsd float64
	for i := 0; i < n; i++ {
		p, q := at(a, i)/sa, at(b, i)/sb
		m := (p + q) / 2
		if p > 0 {
			jsd += p / 2 * math.Log(p/m)
		}
		if q > 0 {
			jsd += q / 2 * math.Log(q/m)
		}
	}
	if jsd < 0 || math.IsNaN(jsd) || math.IsInf(jsd, 0) {
		return 0
	}
	return jsd
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}
