// Package drift implements online drift detection over the serving
// pipeline's decision stream, closing the gap between the paper's offline
// training and its online premise: synopses are trained per (workload,
// tier), so when the live traffic mix moves away from the training mixes,
// synopsis accuracy and the PI–throughput correlation (paper Eq. 2) decay
// silently. A Detector watches three independent symptoms of that decay:
//
//   - Accuracy: a Page–Hinkley test over the 0/1 error stream of the
//     model's overload verdicts against delayed ground-truth labels. The
//     test accumulates error in excess of the running mean and signals
//     when the excess exceeds a threshold — the standard sequential test
//     for an upward mean shift in a noisy stream.
//   - Correlation: per tier, Corr(PI, throughput) is re-evaluated over a
//     sliding window for every PI candidate; when the candidate chosen at
//     training time persistently loses the rank competition of Eq. 2, the
//     trained PI reference no longer measures the tier's capacity.
//   - Mix shift: a Jensen–Shannon divergence test between a reference
//     histogram of request-class frequencies (frozen shortly after
//     start-up or the last model swap) and a sliding recent histogram.
//
// Every detector is pure arithmetic over the observation sequence — no
// clocks, no randomness — so replaying a stream reproduces the signal
// sequence bit-for-bit, which the drift-replay determinism golden
// enforces. Malformed inputs (NaN/Inf components, negative counts,
// missing vectors) are sanitized rather than propagated: a detector never
// panics and never signals because of a corrupt sample, a property the
// fuzz tests pin down.
package drift

import (
	"errors"
	"fmt"

	"hpcap/internal/core"
	"hpcap/internal/pi"
	"hpcap/internal/server"
)

// Kind names a drift symptom.
type Kind int

// The drift symptoms a Detector watches.
const (
	// KindAccuracy is synopsis-accuracy decay against delayed labels.
	KindAccuracy Kind = iota + 1
	// KindCorrelation is per-tier loss of the trained PI reference's rank.
	KindCorrelation
	// KindMixShift is divergence of the request-class frequency histogram.
	KindMixShift
)

// String names the kind as rendered in events and metrics.
func (k Kind) String() string {
	switch k {
	case KindAccuracy:
		return "accuracy"
	case KindCorrelation:
		return "pi-correlation"
	case KindMixShift:
		return "mix-shift"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Observation is one decided window paired with its delayed ground truth —
// what the lifecycle manager can assemble once the application-level
// labels for a window become available.
type Observation struct {
	// Seq is the absolute window index of the decision.
	Seq int64
	// Predicted is the serving model's overload verdict for the window.
	Predicted bool
	// Truth is the delayed application-level ground truth.
	Truth bool
	// Throughput is completed requests per second over the window.
	Throughput float64
	// Vectors holds the per-tier window-mean metric vectors in the full
	// collector layout (nil tiers disable the correlation detector for
	// the window).
	Vectors [server.NumTiers][]float64
	// ClassCounts is the window's request arrivals by class (any fixed
	// class order; nil disables the mix-shift detector for the window).
	ClassCounts []float64
}

// Signal is one drift detection.
type Signal struct {
	Kind Kind
	// Seq is the window at which the detector fired.
	Seq int64
	// Tier is the affected tier for KindCorrelation, -1 otherwise.
	Tier server.TierID
	// Score is the detector's test statistic at the firing point and
	// Threshold the configured bound it exceeded.
	Score     float64
	Threshold float64
}

// String renders the signal for logs and replay goldens.
func (s Signal) String() string {
	if s.Kind == KindCorrelation {
		return fmt.Sprintf("%s tier=%s score=%.4f threshold=%.4f", s.Kind, s.Tier, s.Score, s.Threshold)
	}
	return fmt.Sprintf("%s score=%.4f threshold=%.4f", s.Kind, s.Score, s.Threshold)
}

// Config tunes a Detector. The zero value enables only the accuracy test
// at daemon-conservative thresholds; the correlation and mix-shift tests
// switch on when their inputs (Names, reference mix) are provided.
type Config struct {
	// PHDelta is the Page–Hinkley drift tolerance: per-window error in
	// excess of the running mean below this magnitude never accumulates.
	// Zero selects 0.01.
	PHDelta float64
	// PHLambda is the Page–Hinkley threshold in cumulative excess errors.
	// Zero selects 25 — about 25 more mistakes than the baseline rate
	// predicts, conservative enough that an i.i.d. error stream stays
	// quiet (the fuzz test's invariant). Negative disables the test.
	PHLambda float64
	// MinWindows is the accuracy test's warm-up: no signal before this
	// many labeled windows. Zero selects 20.
	MinWindows int

	// Names is the metric-name layout of Observation.Vectors; empty
	// disables the correlation detector.
	Names []string
	// Candidates are the PI definitions re-ranked online; nil selects
	// pi.DefaultCandidates.
	Candidates []pi.Definition
	// Reference names the PI candidate chosen at training time per tier
	// (pi.Selection.Definition.Name); an empty name disables the tier.
	Reference [server.NumTiers]string
	// CorrWindow is the sliding window (in decided windows) over which
	// correlations are re-evaluated. Zero selects 64 — wide enough that a
	// candidate reaching |corr| ≥ CorrMinBest on an uncorrelated stream is
	// a many-σ event, so i.i.d. noise stays quiet (the fuzz invariant).
	CorrWindow int
	// CorrEvery evaluates the rank competition every n-th window once the
	// sliding window is full. Zero selects 4.
	CorrEvery int
	// CorrMargin is how far (in |correlation|) the trained reference may
	// trail the best candidate before an evaluation counts as lost. Zero
	// selects 0.2.
	CorrMargin float64
	// CorrMinBest is the least |correlation| the winning candidate must
	// reach for a rank loss to count: when nothing correlates with
	// throughput, the Eq. 2 competition is noise, not evidence. Zero
	// selects 0.7 — the paper's chosen references correlate at 0.85+, so a
	// winner below this is not a usable reference, and at CorrWindow 64 an
	// i.i.d. stream reaching it is a >6σ event.
	CorrMinBest float64
	// CorrPatience is how many consecutive lost evaluations fire the
	// signal. Zero selects 3.
	CorrPatience int

	// MixRef is the reference request-class distribution (same order as
	// Observation.ClassCounts). Nil learns the reference from the first
	// MixRefWindows observed windows.
	MixRef []float64
	// MixRefWindows is how many initial windows build the learned
	// reference histogram. Zero selects 8.
	MixRefWindows int
	// MixWindow is the sliding recent-histogram width. Zero selects 12.
	MixWindow int
	// MixThreshold is the Jensen–Shannon divergence (natural log, so in
	// [0, ln 2]) above which a window counts as shifted. Zero selects
	// 0.08; negative disables the test.
	MixThreshold float64
	// MixPatience is how many consecutive shifted windows fire the
	// signal. Zero selects 4.
	MixPatience int
}

// DefaultConfig returns the detector's conservative defaults — each
// chosen so an i.i.d. decision stream stays quiet (the fuzz invariant).
// Candidates stays nil (New resolves it to pi.DefaultCandidates) so the
// default value carries no shared slice.
func DefaultConfig() Config {
	return Config{
		PHDelta:       0.01,
		PHLambda:      25,
		MinWindows:    20,
		CorrWindow:    64,
		CorrEvery:     4,
		CorrMargin:    0.2,
		CorrMinBest:   0.7,
		CorrPatience:  3,
		MixRefWindows: 8,
		MixWindow:     12,
		MixThreshold:  0.08,
		MixPatience:   4,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.PHDelta == 0 {
		c.PHDelta = def.PHDelta
	}
	if c.PHLambda == 0 {
		c.PHLambda = def.PHLambda
	}
	if c.MinWindows == 0 {
		c.MinWindows = def.MinWindows
	}
	if c.Candidates == nil {
		c.Candidates = pi.DefaultCandidates()
	}
	if c.CorrWindow == 0 {
		c.CorrWindow = def.CorrWindow
	}
	if c.CorrEvery == 0 {
		c.CorrEvery = def.CorrEvery
	}
	if c.CorrMargin == 0 {
		c.CorrMargin = def.CorrMargin
	}
	if c.CorrMinBest == 0 {
		c.CorrMinBest = def.CorrMinBest
	}
	if c.CorrPatience == 0 {
		c.CorrPatience = def.CorrPatience
	}
	if c.MixRefWindows == 0 {
		c.MixRefWindows = def.MixRefWindows
	}
	if c.MixWindow == 0 {
		c.MixWindow = def.MixWindow
	}
	if c.MixThreshold == 0 {
		c.MixThreshold = def.MixThreshold
	}
	if c.MixPatience == 0 {
		c.MixPatience = def.MixPatience
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping core.ErrBadConfig. Negative PHLambda and
// MixThreshold are legal (they disable their tests), so they are never
// reported.
func (c Config) Validate() []error {
	c = c.withDefaults()
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("drift: %w: "+format, append([]any{core.ErrBadConfig}, args...)...))
	}
	if c.PHDelta < 0 {
		bad("PH delta %g, need >= 0", c.PHDelta)
	}
	if c.MinWindows < 0 {
		bad("min windows %d, need >= 0", c.MinWindows)
	}
	if c.CorrWindow < 2 {
		bad("correlation window %d, need >= 2", c.CorrWindow)
	}
	if c.CorrEvery < 1 {
		bad("correlation cadence %d, need >= 1", c.CorrEvery)
	}
	if c.CorrMargin < 0 {
		bad("correlation margin %g, need >= 0", c.CorrMargin)
	}
	if c.CorrMinBest < 0 || c.CorrMinBest > 1 {
		bad("correlation floor %g outside [0,1]", c.CorrMinBest)
	}
	if c.CorrPatience < 1 {
		bad("correlation patience %d, need >= 1", c.CorrPatience)
	}
	if c.MixRefWindows < 1 {
		bad("mix reference windows %d, need >= 1", c.MixRefWindows)
	}
	if c.MixWindow < 1 {
		bad("mix window %d, need >= 1", c.MixWindow)
	}
	if c.MixPatience < 1 {
		bad("mix patience %d, need >= 1", c.MixPatience)
	}
	return errs
}

// Detector aggregates the three drift tests over one decision stream. It
// is not safe for concurrent use; the lifecycle manager serializes each
// site's observations.
type Detector struct {
	cfg  Config
	acc  *PageHinkley
	corr [server.NumTiers]*corrTracker
	mix  *mixShift
}

// New builds a detector. The correlation test is armed per tier when
// Names resolve the tier's Reference candidate; the mix-shift test is
// armed on the first observation carrying class counts.
func New(cfg Config) (*Detector, error) {
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	cfg = cfg.withDefaults()
	d := &Detector{cfg: cfg}
	if cfg.PHLambda >= 0 {
		d.acc = NewPageHinkley(cfg.PHDelta, cfg.PHLambda, cfg.MinWindows)
	}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if cfg.Reference[tier] == "" || len(cfg.Names) == 0 {
			continue
		}
		ct, err := newCorrTracker(cfg, cfg.Reference[tier])
		if err != nil {
			return nil, fmt.Errorf("drift: %s tier: %w", tier, err)
		}
		d.corr[tier] = ct
	}
	if cfg.MixThreshold >= 0 {
		d.mix = newMixShift(cfg)
	}
	return d, nil
}

// Observe folds one labeled window into every armed test and returns the
// signals that fired on it (usually none). Signals appear in a fixed
// order: accuracy, correlation by tier, mix shift.
func (d *Detector) Observe(o Observation) []Signal {
	var out []Signal
	if d.acc != nil {
		e := 0.0
		if o.Predicted != o.Truth {
			e = 1.0
		}
		if d.acc.Add(e) {
			out = append(out, Signal{Kind: KindAccuracy, Seq: o.Seq, Tier: -1,
				Score: d.acc.Stat(), Threshold: d.cfg.PHLambda})
			d.acc.Reset()
		}
	}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		ct := d.corr[tier]
		if ct == nil || o.Vectors[tier] == nil {
			continue
		}
		if fired, gap := ct.observe(o.Vectors[tier], o.Throughput); fired {
			out = append(out, Signal{Kind: KindCorrelation, Seq: o.Seq, Tier: tier,
				Score: gap, Threshold: d.cfg.CorrMargin})
		}
	}
	if d.mix != nil && len(o.ClassCounts) > 0 {
		if fired, jsd := d.mix.observe(o.ClassCounts); fired {
			out = append(out, Signal{Kind: KindMixShift, Seq: o.Seq, Tier: -1,
				Score: jsd, Threshold: d.cfg.MixThreshold})
		}
	}
	return out
}

// Reset clears every test's accumulated state — called after a model
// swap, so the new model is judged against a fresh baseline. A learned
// mix reference is relearned from the post-swap stream.
func (d *Detector) Reset() {
	if d.acc != nil {
		d.acc.Reset()
	}
	for _, ct := range d.corr {
		if ct != nil {
			ct.reset()
		}
	}
	if d.mix != nil {
		d.mix.reset()
	}
}
