package drift

import (
	"math"
	"strings"
	"testing"

	"hpcap/internal/pi"
	"hpcap/internal/server"
)

// corrLayout is a minimal metric layout with two synthetic PI candidates:
// "tracking" follows throughput when its yield column does, "rival" is the
// competing candidate. Tests steer which one correlates.
var corrLayout = []string{"y_track", "c_track", "y_rival", "c_rival"}

func corrCandidates() []pi.Definition {
	return []pi.Definition{
		{Name: "tracking", Yield: "y_track", Cost: "c_track"},
		{Name: "rival", Yield: "y_rival", Cost: "c_rival"},
	}
}

func TestPageHinkleyQuietOnStationary(t *testing.T) {
	ph := NewPageHinkley(0.01, 25, 20)
	for i := 0; i < 500; i++ {
		// Deterministic 10% error rate: one error every ten windows.
		x := 0.0
		if i%10 == 0 {
			x = 1.0
		}
		if ph.Add(x) {
			t.Fatalf("signal on stationary stream at window %d (stat %.3f)", i, ph.Stat())
		}
	}
	if ph.N() != 500 {
		t.Fatalf("N = %d, want 500", ph.N())
	}
}

func TestPageHinkleyFiresOnShift(t *testing.T) {
	ph := NewPageHinkley(0.01, 25, 20)
	for i := 0; i < 100; i++ {
		if ph.Add(0) {
			t.Fatalf("signal during clean baseline at window %d", i)
		}
	}
	fired := -1
	for i := 0; i < 120; i++ {
		if ph.Add(1) {
			fired = i
			break
		}
	}
	if fired < 0 {
		t.Fatalf("no signal after 120 windows of constant errors (stat %.3f)", ph.Stat())
	}
	// λ=25 cumulative excess errors: the adapting mean absorbs some of the
	// shift, so the crossing lands a little past 25 error windows.
	if fired < 25 || fired > 80 {
		t.Errorf("fired after %d error windows, want within [25, 80]", fired)
	}
	ph.Reset()
	if ph.N() != 0 || ph.Stat() != 0 {
		t.Errorf("reset left N=%d stat=%.3f", ph.N(), ph.Stat())
	}
}

func TestPageHinkleyIgnoresNonFinite(t *testing.T) {
	ph := NewPageHinkley(0.01, 25, 20)
	for _, x := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if ph.Add(x) {
			t.Fatalf("signal on non-finite input %v", x)
		}
	}
	if ph.N() != 0 {
		t.Fatalf("non-finite inputs were counted: N=%d", ph.N())
	}
}

func TestDetectorAccuracySignal(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	seq := int64(0)
	obs := func(errs bool) []Signal {
		o := Observation{Seq: seq, Predicted: errs, Truth: false}
		seq++
		return d.Observe(o)
	}
	for i := 0; i < 50; i++ {
		if sigs := obs(false); len(sigs) != 0 {
			t.Fatalf("signal on clean stream: %v", sigs)
		}
	}
	var got []Signal
	for i := 0; i < 200 && len(got) == 0; i++ {
		got = obs(true)
	}
	if len(got) != 1 {
		t.Fatalf("want exactly one signal, got %v", got)
	}
	s := got[0]
	if s.Kind != KindAccuracy || s.Tier != -1 || s.Score <= s.Threshold {
		t.Fatalf("unexpected signal %+v", s)
	}
	if s.Seq != seq-1 {
		t.Errorf("signal Seq = %d, want %d", s.Seq, seq-1)
	}
	// The test resets itself after firing and re-baselines on the new
	// (all-error) regime: the same regime continued must not re-fire
	// immediately.
	for i := 0; i < 10; i++ {
		if sigs := obs(true); len(sigs) != 0 {
			t.Fatalf("re-fired %v right after reset", sigs)
		}
	}
}

// corrObservation builds a window where the tracking candidate's PI equals
// trackPI and the rival's equals rivalPI, with the given throughput.
func corrObservation(seq int64, trackPI, rivalPI, thr float64) Observation {
	var o Observation
	o.Seq = seq
	o.Predicted, o.Truth = false, false
	o.Throughput = thr
	o.Vectors[server.TierApp] = []float64{trackPI, 1, rivalPI, 1}
	return o
}

func TestCorrelationRankLoss(t *testing.T) {
	cfg := Config{
		Names:      corrLayout,
		Candidates: corrCandidates(),
	}
	cfg.Reference[server.TierApp] = "tracking"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	thr := func(i int64) float64 { return 10 + float64(i%7) }
	// Phase 1: the trained reference tracks throughput, the rival is flat.
	for i := int64(0); i < 48; i++ {
		o := corrObservation(i, thr(i), 1.0, thr(i))
		if sigs := d.Observe(o); len(sigs) != 0 {
			t.Fatalf("signal while reference still wins at window %d: %v", i, sigs)
		}
	}
	// Phase 2: the reference goes flat and the rival takes over.
	var got []Signal
	var at int64
	for i := int64(48); i < 160 && len(got) == 0; i++ {
		o := corrObservation(i, 1.0, thr(i), thr(i))
		got = d.Observe(o)
		at = i
	}
	if len(got) != 1 {
		t.Fatalf("want one correlation signal, got %v", got)
	}
	s := got[0]
	if s.Kind != KindCorrelation || s.Tier != server.TierApp {
		t.Fatalf("unexpected signal %+v", s)
	}
	if s.Seq != at || s.Score <= s.Threshold {
		t.Fatalf("signal %+v at window %d: score must exceed threshold", s, at)
	}
	if !strings.Contains(s.String(), "tier=app") {
		t.Errorf("String() = %q, want tier rendered", s.String())
	}
}

func TestCorrelationWeakFieldStaysQuiet(t *testing.T) {
	// Neither candidate correlates: the rank competition is noise and must
	// not fire even if the reference trails, because best < CorrMinBest.
	cfg := Config{
		Names:      corrLayout,
		Candidates: corrCandidates(),
	}
	cfg.Reference[server.TierApp] = "tracking"
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 160; i++ {
		// Both PI columns constant, throughput varies: every correlation is 0.
		o := corrObservation(i, 1.0, 2.0, 10+float64(i%7))
		if sigs := d.Observe(o); len(sigs) != 0 {
			t.Fatalf("signal on uncorrelated field at window %d: %v", i, sigs)
		}
	}
}

func TestMixShiftLearnedReference(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	browse := []float64{90, 10}
	order := []float64{10, 90}
	seq := int64(0)
	obs := func(counts []float64) []Signal {
		o := Observation{Seq: seq, ClassCounts: counts}
		seq++
		return d.Observe(o)
	}
	// Reference learning (8 windows) + ring fill (12) + stable stream.
	for i := 0; i < 40; i++ {
		if sigs := obs(browse); len(sigs) != 0 {
			t.Fatalf("signal on stable mix at window %d: %v", i, sigs)
		}
	}
	var got []Signal
	for i := 0; i < 40 && len(got) == 0; i++ {
		got = obs(order)
	}
	if len(got) != 1 || got[0].Kind != KindMixShift {
		t.Fatalf("want one mix-shift signal, got %v", got)
	}
	if got[0].Score <= got[0].Threshold {
		t.Fatalf("score %.4f must exceed threshold %.4f", got[0].Score, got[0].Threshold)
	}

	// Reset relearns the reference from the post-swap stream: the ordering
	// mix is now the baseline and must not re-fire.
	d.Reset()
	for i := 0; i < 60; i++ {
		if sigs := obs(order); len(sigs) != 0 {
			t.Fatalf("signal after reset re-baselined at window %d: %v", i, sigs)
		}
	}
}

func TestMixShiftConfiguredReference(t *testing.T) {
	cfg := Config{MixRef: []float64{0.9, 0.1}}
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// No learning phase: a shifted stream fires as soon as the recent ring
	// fills (12th window, index 11) and patience is exhausted 3 windows
	// later, at index 14.
	var got []Signal
	fired := -1
	for i := 0; i < 40 && len(got) == 0; i++ {
		got = d.Observe(Observation{Seq: int64(i), ClassCounts: []float64{10, 90}})
		fired = i
	}
	if len(got) != 1 || got[0].Kind != KindMixShift {
		t.Fatalf("want one mix-shift signal, got %v", got)
	}
	if fired != 14 {
		t.Errorf("fired at window %d, want 14 (ring fill + patience)", fired)
	}
}

func TestMixShiftDisabled(t *testing.T) {
	d, err := New(Config{MixThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		counts := []float64{90, 10}
		if i > 20 {
			counts = []float64{10, 90}
		}
		if sigs := d.Observe(Observation{Seq: int64(i), ClassCounts: counts}); len(sigs) != 0 {
			t.Fatalf("disabled mix test signalled: %v", sigs)
		}
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := Config{Names: corrLayout, Candidates: corrCandidates()}
	cfg.Reference[server.TierDB] = "no_such_candidate"
	if _, err := New(cfg); err == nil {
		t.Fatal("unknown reference candidate accepted")
	}

	cfg = Config{Names: []string{"unrelated"}, Candidates: corrCandidates()}
	cfg.Reference[server.TierApp] = "tracking"
	if _, err := New(cfg); err == nil {
		t.Fatal("layout missing candidate metrics accepted")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindAccuracy:    "accuracy",
		KindCorrelation: "pi-correlation",
		KindMixShift:    "mix-shift",
		Kind(9):         "Kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestJensenShannon(t *testing.T) {
	if v := jensenShannon(nil, nil); v != 0 {
		t.Errorf("empty = %v, want 0", v)
	}
	if v := jensenShannon([]float64{0, 0}, []float64{1, 1}); v != 0 {
		t.Errorf("zero-mass side = %v, want 0", v)
	}
	if v := jensenShannon([]float64{3, 7}, []float64{30, 70}); math.Abs(v) > 1e-12 {
		t.Errorf("identical distributions = %v, want 0", v)
	}
	// Disjoint support attains the maximum, ln 2.
	if v := jensenShannon([]float64{1, 0}, []float64{0, 1}); math.Abs(v-math.Ln2) > 1e-12 {
		t.Errorf("disjoint = %v, want ln2 = %v", v, math.Ln2)
	}
	// Different lengths: missing classes count as zero.
	if v := jensenShannon([]float64{1}, []float64{0, 1}); math.Abs(v-math.Ln2) > 1e-12 {
		t.Errorf("length mismatch disjoint = %v, want ln2", v)
	}
}
