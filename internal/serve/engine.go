package serve

import (
	"math"
	"sync/atomic"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/server"
)

// engine is one shard's serving state, owned by that shard's goroutine
// (cross-goroutine access goes through shard.emu). Unlike Pipeline, which
// keeps each site behind its own mutex in a pointer-heavy map, the engine
// lays the fleet out densely: fixed-size site records, one flat window-sum
// arena indexed [site][tier][dim], and sessions touched only at decision
// time. A fleet iterated in registration order then streams through the
// hardware prefetcher instead of chasing pointers through a 100k-entry
// map, which is where the sharded path's single-core speedup comes from.
//
// The transition logic is a line-for-line port of Pipeline.ingestLocked /
// closeCurrent / decide: per-site decision and health-event streams are
// byte-identical to the unsharded pipeline (pinned by the chaos-replay
// determinism golden and the differential property tests).
type engine struct {
	// compiled is the base monitor's lowered decision plane; sessions
	// decide through it (or through a hot-swapped monitor's plane from
	// cache), byte-identical to the interpreted path the unsharded
	// Pipeline keeps — which makes every sharded-vs-unsharded
	// differential test a compiled-vs-interpreted gate.
	compiled  *core.CompiledMonitor
	cache     map[*core.Monitor]*core.CompiledMonitor // hot-swap compile cache
	dim       int
	window    int
	staleness int
	recover   int

	idx   map[string]int32 // site name -> dense index
	recs  []siteRec
	stats []SiteStats
	sess  []*core.CompiledSession
	flags []*siteFlags // pointer-stable: admission valves hold them across slice growth
	sums  []float64    // window accumulation arena, [site][tier][dim]

	// Counter fusion (nil/empty unless Config.Fuse was set): per-tier
	// fusers laid out [site][tier], the resolved confidence floor, and
	// the open window's confidence accumulators, consumed at decision
	// time exactly as Pipeline.decide does.
	fuseCfg   *fuse.Config
	fuseFloor float64
	fusers    []*fuse.Fuser
	confSum   []float64
	confN     []int32

	// due holds the batch's deferred clean-window decisions; pubs the
	// decisions and health events awaiting publication outside all locks.
	due  []dueWin
	pubs []pub

	// Decision-path scratch, reused across batches: the single-decision
	// prediction, and the batched DecideAll's parallel slices (positions
	// into due, sessions, observations, predictions). All owned by the
	// shard goroutine, so engine-level reuse is race-free.
	pred  core.Prediction
	batch core.DecideBatch
	bpos  []int
	bsess []*core.CompiledSession
	bobs  []core.Observation
	bout  []core.Prediction
}

// siteRec is the dense hot state of one site: everything the per-sample
// path touches, in two cache lines.
type siteRec struct {
	started     bool
	pendSet     [server.NumTiers]bool
	cleanStreak int
	cur         int64 // current window index
	lastTime    [server.NumTiers]float64
	count       [server.NumTiers]int32 // samples in the open window, per tier
	pendTime    [server.NumTiers]float64
	pendVals    [server.NumTiers][]float64 // emitted tier means awaiting the full window
}

// siteFlags is the lock-free face of one site (admission valve reads).
// Allocated once per site so valves survive dense-slice growth.
type siteFlags struct {
	overloaded atomic.Bool
	health     atomic.Int32
}

// dueWin is one clean window awaiting its deferred decision.
type dueWin struct {
	idx  int32
	seq  int64
	vecs [server.NumTiers]metrics.Sample
}

// pub is one decision or health event queued for publication after the
// shard lock is released, in generation order.
type pub struct {
	idx     int32
	isEvent bool
	d       *Decision
	ev      HealthEvent
}

// nonFinite reports math.IsNaN(v) || math.IsInf(v, 0) with one integer
// test: a float64 is NaN or ±Inf exactly when its exponent bits are all
// ones. The per-sample value scan is the hottest loop in the engine, and
// the single mask-and-compare replaces three float compares per element.
func nonFinite(v float64) bool {
	const expMask = 0x7FF0000000000000
	return math.Float64bits(v)&expMask == expMask
}

func newEngine(cm *core.CompiledMonitor, cfg Config, dim int) *engine {
	e := &engine{
		compiled:  cm,
		dim:       dim,
		window:    cfg.Window,
		staleness: cfg.StalenessBudget,
		recover:   cfg.RecoverWindows,
		idx:       make(map[string]int32),
		fuseCfg:   cfg.Fuse,
	}
	if cfg.Fuse != nil {
		// Resolve the config's zero fields through one prototype fuser;
		// NewShardedPipeline validated the config before building engines.
		proto, err := fuse.New(*cfg.Fuse, dim)
		if err != nil {
			panic(err)
		}
		e.fuseFloor = proto.Config().ConfidenceFloor
	}
	return e
}

// swapSession rebinds site i to monitor m's compiled plane, compiling it
// on first use and caching it so repeated swaps to the same model reuse
// one plane. Callers hold shard.emu.
func (e *engine) swapSession(i int32, m *core.Monitor) error {
	cm := e.compiled
	if m != e.compiled.Source() {
		var ok bool
		if cm, ok = e.cache[m]; !ok {
			var err error
			if cm, err = m.Compile(); err != nil {
				return err
			}
			if e.cache == nil {
				e.cache = make(map[*core.Monitor]*core.CompiledMonitor)
			}
			e.cache[m] = cm
		}
	}
	e.sess[i] = cm.NewSession()
	return nil
}

// site returns the dense index for a site name, creating the site on
// first use. Callers hold shard.emu or run on the shard goroutine.
func (e *engine) site(name string) int32 {
	if i, ok := e.idx[name]; ok {
		return i
	}
	i := int32(len(e.recs))
	e.idx[name] = i
	e.recs = append(e.recs, siteRec{})
	e.sess = append(e.sess, e.compiled.NewSession())
	e.flags = append(e.flags, &siteFlags{})
	e.sums = append(e.sums, make([]float64, int(server.NumTiers)*e.dim)...)
	if e.fuseCfg != nil {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			f, err := fuse.New(*e.fuseCfg, e.dim)
			if err != nil {
				// Validated when the pipeline was built; this cannot happen.
				panic(err)
			}
			e.fusers = append(e.fusers, f)
		}
		e.confSum = append(e.confSum, 0)
		e.confN = append(e.confN, 0)
	}
	var ss SiteStats
	ss.Site = name
	ss.LastSwapSeq = -1
	ss.LastDecisionSeq = -1
	e.stats = append(e.stats, ss)
	return i
}

// takePubs drains the queued publications.
func (e *engine) takePubs() []pub {
	out := e.pubs
	e.pubs = nil
	return out
}

// processBatch applies one drained batch and flushes its due windows.
// Unresolvable refs are counted on the shard; everything else lands on
// site counters, mirroring Pipeline.Ingest's never-reject contract.
func (e *engine) processBatch(batch []qsample, sh *shard) []pub {
	for k := range batch {
		q := &batch[k]
		var i int32
		if q.idx > 0 {
			if int(q.idx) > len(e.recs) {
				sh.badRefs.Add(1)
				continue
			}
			i = q.idx - 1
		} else {
			i = e.site(q.site)
		}
		if q.fused {
			e.ingestSite(i, q)
		} else {
			e.ingestOne(i, q)
		}
	}
	e.decideAll()
	return e.takePubs()
}

// ingestSite applies one fused site scrape — one sample per tier, all
// sharing a timestamp — exactly as NumTiers sequential ingestOne calls in
// tier order, with the per-sample prolog (time check, window index)
// computed once. Equivalence with the sequential path is pinned by
// TestBatcherAddSite.
func (e *engine) ingestSite(i int32, q *qsample) {
	timeBad := nonFinite(q.time)
	var wi int64
	if !timeBad {
		wi = windowIndex(q.time, e.window)
	}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if len(e.due) != 0 {
			e.flushDueFor(i)
		}
		e.ingestVec(i, tier, q.time, wi, timeBad, q.vecs[tier])
	}
}

// ingestOne is the engine's port of Pipeline.ingestLocked. The one
// structural difference: a clean window completion is deferred to the due
// list instead of decided inline — flushed by the site's next sample (the
// per-site barrier that keeps decision order identical) or by decideAll
// at batch end, whichever comes first.
func (e *engine) ingestOne(i int32, q *qsample) {
	if len(e.due) != 0 {
		e.flushDueFor(i)
	}
	if q.tier < 0 || q.tier >= server.NumTiers {
		ss := &e.stats[i]
		ss.SamplesIngested++
		ss.SamplesBadShape++
		return
	}
	timeBad := nonFinite(q.time)
	var wi int64
	if !timeBad {
		wi = windowIndex(q.time, e.window)
	}
	e.ingestVec(i, q.tier, q.time, wi, timeBad, q.values)
}

// ingestVec is the per-tier core of ingestOne with the sample prolog
// hoisted: the caller has already run the due-window barrier, validated
// the tier, and computed the time check and window index (wi is only
// meaningful when timeBad is false; windowIndex of a non-finite time is
// never taken). Both entry points — single samples and fused site
// scrapes — funnel here so the windowing arithmetic exists once.
func (e *engine) ingestVec(i int32, tier server.TierID, t float64, wi int64, timeBad bool, values []float64) {
	st, ss := &e.recs[i], &e.stats[i]
	ss.SamplesIngested++
	if len(values) != e.dim {
		ss.SamplesBadShape++
		return
	}
	if timeBad {
		ss.SamplesBadValue++
		return
	}
	if e.fuseCfg == nil {
		// Without fusion a NaN/Inf component voids the sample; the fusion
		// stage instead accepts it and imputes the bad components (see
		// Pipeline.ingestLocked).
		for _, v := range values {
			if nonFinite(v) {
				ss.SamplesBadValue++
				return
			}
		}
	}

	if !st.started {
		st.started = true
		st.cur = wi
	}
	if wi > st.cur {
		e.closeCurrent(i)
		// Windows the stream skipped entirely are dropped unseen.
		if gap := wi - st.cur - 1; gap > 0 {
			ss.WindowsDropped += uint64(gap)
			e.resetSession(i)
		}
		st.cur = wi
	} else if wi < st.cur {
		ss.SamplesLate++
		return
	}
	if t <= st.lastTime[tier] || st.pendSet[tier] {
		// Duplicate or rewound timestamp, or a tier sending more than
		// Window samples into one window.
		ss.SamplesLate++
		return
	}
	st.lastTime[tier] = t
	if e.fuseCfg != nil {
		// Fuse after the late/dup checks so rejected samples never mutate
		// filter state — same hook point as Pipeline.ingestLocked, so the
		// fused streams (and every downstream decision) stay identical.
		r := e.fusers[int(i)*int(server.NumTiers)+int(tier)].Fuse(values)
		ss.SamplesFused++
		ss.FuseImputed += uint64(r.Imputed)
		ss.FuseGated += uint64(r.Gated)
		e.confSum[i] += r.Confidence
		e.confN[i]++
		values = r.Values
	}
	base := (int(i)*int(server.NumTiers) + int(tier)) * e.dim
	sum := e.sums[base : base+e.dim : base+e.dim]
	for k, v := range values {
		sum[k] += v
	}
	st.count[tier]++
	if int(st.count[tier]) < e.window {
		return
	}
	// Tier window complete: emit the mean into fresh storage (decisions
	// own their vectors), the same arithmetic as metrics.Aggregator.emit.
	vals := make([]float64, e.dim)
	n := float64(st.count[tier])
	for k := range sum {
		vals[k] = sum[k] / n
		sum[k] = 0
	}
	st.count[tier] = 0
	st.pendVals[tier] = vals
	st.pendTime[tier] = t
	st.pendSet[tier] = true
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if !st.pendSet[tier] {
			return
		}
	}
	// Clean window: every tier delivered all its samples.
	var vecs [server.NumTiers]metrics.Sample
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = metrics.Sample{Time: st.pendTime[tier], Values: st.pendVals[tier]}
		st.pendVals[tier] = nil
		st.pendTime[tier] = 0
		st.pendSet[tier] = false
	}
	seq := st.cur
	st.cur++
	e.due = append(e.due, dueWin{idx: i, seq: seq, vecs: vecs})
}

// flushDueFor decides a queued due window for one site before its next
// sample mutates the site — the barrier that keeps per-site decision and
// session-history order identical to the sequential pipeline. The due
// list only ever holds sites that completed a window in the current batch,
// so the scan is short and allocation-free.
func (e *engine) flushDueFor(i int32) {
	for k := range e.due {
		if e.due[k].idx == i {
			d := e.due[k]
			e.due[k] = dueWin{idx: -1}
			e.decide(i, d.vecs, 0, d.seq)
			return
		}
	}
}

// decideAll flushes the batch's remaining due windows in completion
// order — the batched per-shard decision path. Two or more live entries
// decide through core.DecideAll's single synopsis-major pass over the
// compiled tables, amortizing table walks across the whole shard; results
// are then published in due order, with any site hot-swapped onto a
// different monitor decided inline at its position. Per-site outputs are
// identical either way; only the predictor-latency attribution changes
// (the batch's wall time divided evenly across its decisions).
func (e *engine) decideAll() {
	e.bpos = e.bpos[:0]
	nb := 0
	for k := range e.due {
		d := &e.due[k]
		if d.idx >= 0 && e.sess[d.idx].Monitor() == e.compiled {
			e.bpos = append(e.bpos, nb)
			nb++
		} else {
			e.bpos = append(e.bpos, -1)
		}
	}
	if nb < 2 {
		for k := range e.due {
			d := e.due[k]
			if d.idx >= 0 {
				e.decide(d.idx, d.vecs, 0, d.seq)
			}
		}
	} else {
		if cap(e.bsess) < nb {
			e.bsess = make([]*core.CompiledSession, nb)
			e.bobs = make([]core.Observation, nb)
			e.bout = make([]core.Prediction, nb)
		}
		bsess, bobs, bout := e.bsess[:nb], e.bobs[:nb], e.bout[:nb]
		for k, pos := range e.bpos {
			if pos < 0 {
				continue
			}
			d := &e.due[k]
			bsess[pos] = e.sess[d.idx]
			bobs[pos] = assembleObs(&d.vecs)
		}
		start := time.Now()
		e.compiled.DecideAll(&e.batch, bsess, bobs, bout)
		share := uint64(time.Since(start)) / uint64(nb)
		for k, pos := range e.bpos {
			d := e.due[k]
			if d.idx < 0 {
				continue
			}
			if pos < 0 {
				e.decide(d.idx, d.vecs, 0, d.seq)
				continue
			}
			e.finishDecide(d.idx, bobs[pos], 0, d.seq, e.batch.Err(pos), &bout[pos], share)
		}
		for i := range bobs {
			bsess[i] = nil
			bobs[i] = core.Observation{}
		}
	}
	for k := range e.due {
		e.due[k] = dueWin{}
	}
	e.due = e.due[:0]
}

// closeCurrent is the engine's port of Pipeline.closeCurrent: force-close
// the in-progress window, decide degraded inside the staleness budget,
// drop and reset beyond it. Decides inline (never deferred) because the
// caller mutates the site immediately after.
func (e *engine) closeCurrent(i int32) {
	st, ss := &e.recs[i], &e.stats[i]
	missing, worst, held := 0, 0, 0
	var vecs [server.NumTiers]metrics.Sample
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if st.pendSet[tier] {
			vecs[tier] = metrics.Sample{Time: st.pendTime[tier], Values: st.pendVals[tier]}
			st.pendVals[tier] = nil
			st.pendTime[tier] = 0
			st.pendSet[tier] = false
			held += e.window
			continue
		}
		n := int(st.count[tier])
		if n > 0 {
			base := (int(i)*int(server.NumTiers) + int(tier)) * e.dim
			sum := e.sums[base : base+e.dim : base+e.dim]
			vals := make([]float64, e.dim)
			for k := range sum {
				vals[k] = sum[k] / float64(n)
				sum[k] = 0
			}
			vecs[tier] = metrics.Sample{Time: st.lastTime[tier], Values: vals}
			st.count[tier] = 0
		}
		held += n
		miss := e.window - n
		missing += miss
		if miss > worst {
			worst = miss
		}
	}
	if worst == 0 {
		// All tiers complete; the closing sample arrived exactly at the
		// next boundary.
		e.decide(i, vecs, 0, st.cur)
		return
	}
	if worst > e.staleness {
		ss.WindowsDropped++
		ss.SamplesGapReset += uint64(held)
		e.resetSession(i)
		return
	}
	e.decide(i, vecs, missing, st.cur)
}

// resetSession mirrors Pipeline.resetSession.
func (e *engine) resetSession(i int32) {
	st, ss := &e.recs[i], &e.stats[i]
	e.sess[i].ResetHistory()
	ss.SessionResets++
	e.flags[i].overloaded.Store(false)
	st.cleanStreak = 0
	if e.fuseCfg != nil {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			e.fusers[int(i)*int(server.NumTiers)+int(tier)].Reset()
		}
		e.confSum[i], e.confN[i] = 0, 0
	}
	e.setHealth(i, HealthStale, st.cur)
}

// setHealth mirrors site.setHealth, queueing the event for publication
// outside the shard lock.
func (e *engine) setHealth(i int32, to Health, seq int64) {
	ss := &e.stats[i]
	from := ss.Health
	if from == to {
		return
	}
	ss.HealthTransitions[from][to]++
	ss.Health = to
	e.flags[i].health.Store(int32(to))
	e.pubs = append(e.pubs, pub{idx: i, isEvent: true,
		ev: HealthEvent{Site: ss.Site, From: from, To: to, Seq: seq}})
}

// assembleObs builds one observation from a due window's tier samples:
// the tier vectors plus the latest tier timestamp.
func assembleObs(vecs *[server.NumTiers]metrics.Sample) core.Observation {
	obs := core.Observation{}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		obs.Vectors[tier] = vecs[tier].Values
		if vecs[tier].Time > obs.Time {
			obs.Time = vecs[tier].Time
		}
	}
	return obs
}

// decide mirrors Pipeline.decide for a single site, predicting through
// the session's compiled plane into the engine's reused prediction
// scratch.
func (e *engine) decide(i int32, vecs [server.NumTiers]metrics.Sample, missing int, seq int64) {
	obs := assembleObs(&vecs)
	start := time.Now()
	err := e.sess[i].PredictInto(obs, &e.pred)
	lat := uint64(time.Since(start))
	e.finishDecide(i, obs, missing, seq, err, &e.pred, lat)
}

// finishDecide is the decision epilog shared by the single and batched
// paths: latency and health accounting, then queueing the decision for
// publication. pred is caller scratch — the published Decision gets its
// own GPV copy. The decision pub is inserted ahead of the health events
// its own outcome generated, matching the unsharded publication order
// (decision first, then the transitions it caused).
func (e *engine) finishDecide(i int32, obs core.Observation, missing int, seq int64, err error, pred *core.Prediction, lat uint64) {
	st, ss := &e.recs[i], &e.stats[i]
	// Consume the window's fusion-confidence accumulator up front, as
	// Pipeline.decide does: the due-window barrier (flushDueFor before
	// every ingest) guarantees no later sample has touched it.
	conf, lowConf := 1.0, false
	if e.fuseCfg != nil {
		if e.confN[i] > 0 {
			conf = e.confSum[i] / float64(e.confN[i])
		}
		e.confSum[i], e.confN[i] = 0, 0
		lowConf = conf < e.fuseFloor
	}
	ss.PredictNanos += lat
	if lat > ss.PredictMaxNanos {
		ss.PredictMaxNanos = lat
	}
	if err != nil {
		ss.PredictErrors++
		return
	}
	ss.WindowsDecided++
	if e.fuseCfg != nil {
		ss.FuseConfidence = conf
	}
	if lowConf {
		ss.WindowsLowConfidence++
	}
	mark := len(e.pubs)
	if missing > 0 || lowConf {
		if missing > 0 {
			ss.WindowsDegraded++
		}
		st.cleanStreak = 0
		e.setHealth(i, HealthDegraded, seq)
	} else {
		st.cleanStreak++
		if ss.Health != HealthHealthy && st.cleanStreak >= e.recover {
			e.setHealth(i, HealthHealthy, seq)
		}
	}
	if pred.Overload {
		ss.Overloads++
	}
	for _, bit := range pred.GPV {
		if bit != pred.GPV[0] {
			ss.GPVDisagreements++
			break
		}
	}
	e.flags[i].overloaded.Store(pred.Overload)
	ss.LastDecisionSeq = seq
	ss.LastDecisionTime = obs.Time
	d := &Decision{
		Site: ss.Site,
		Seq:  seq,
		Time: obs.Time,
		Prediction: core.Prediction{
			Overload:   pred.Overload,
			Bottleneck: pred.Bottleneck,
			GPV:        append([]int(nil), pred.GPV...),
		},
		Degraded:      missing > 0,
		Missing:       missing,
		Vectors:       obs.Vectors,
		ModelVersion:  ss.ModelVersion,
		Confidence:    conf,
		LowConfidence: lowConf,
	}
	e.pubs = append(e.pubs, pub{})
	copy(e.pubs[mark+1:], e.pubs[mark:])
	e.pubs[mark] = pub{idx: i, d: d}
}

// flushAll force-closes every open window (end of stream), in site
// creation order. Due windows never persist past a batch, so only the
// half-aggregated state needs closing.
func (e *engine) flushAll() []pub {
	for i := range e.recs {
		st := &e.recs[i]
		open := false
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			if st.count[tier] > 0 || st.pendSet[tier] {
				open = true
			}
		}
		if st.started && open {
			e.closeCurrent(int32(i))
			st.cur++
		}
	}
	return e.takePubs()
}
