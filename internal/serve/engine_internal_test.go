package serve

import (
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/server"
)

// trainTestMonitor builds a small trained monitor for engine-level tests.
func trainTestMonitor(t *testing.T, seed int64) *core.Monitor {
	t.Helper()
	names := []string{"m_load", "m_noise"}
	mk := func(workload string, hot server.TierID) core.TrainingSet {
		set := core.TrainingSet{Workload: workload}
		for i := 0; i < 48; i++ {
			overload := 0
			if (i/8)%2 == 1 {
				overload = 1
			}
			var vecs [server.NumTiers][]float64
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				load := 0.2 + 0.01*float64((i*7+int(tier)*3+int(seed))%10)
				if overload == 1 && tier == hot {
					load += 0.6
				}
				vecs[tier] = []float64{load, float64((i + int(tier)) % 5)}
			}
			set.Windows = append(set.Windows, core.LabeledWindow{
				Observation: core.Observation{Time: float64(i * 30), Vectors: vecs},
				Overload:    overload,
				Bottleneck:  hot,
			})
		}
		return set
	}
	m, err := core.Train(metrics.LevelHPC, names,
		[]core.TrainingSet{mk("a", 0), mk("b", 1)}, core.Config{
			Learner:  bayes.NaiveLearner(),
			Synopsis: core.DefaultSynopsisConfig(seed),
		})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSwapSessionCompiledCache pins the hot-swap compile semantics: a swap
// to a new monitor lowers it exactly once per engine (later swaps to the
// same model reuse the cached plane), a swap back to the base monitor
// reuses the engine's own plane, and an uncompilable monitor is rejected
// without touching the site's session.
func TestSwapSessionCompiledCache(t *testing.T) {
	base := trainTestMonitor(t, 1)
	next := trainTestMonitor(t, 2)
	cm, err := base.Compile()
	if err != nil {
		t.Fatal(err)
	}
	e := newEngine(cm, Config{Window: 3, StalenessBudget: 1, RecoverWindows: 2}, base.InputDim())
	a, b := e.site("a"), e.site("b")

	tests := []struct {
		name string
		site int32
		to   *core.Monitor
	}{
		{"swap a to next", a, next},
		{"swap b to next reuses cache", b, next},
		{"swap a back to base", a, base},
		{"swap a to next again", a, next},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := e.swapSession(tt.site, tt.to); err != nil {
				t.Fatal(err)
			}
			got := e.sess[tt.site].Monitor()
			if got.Source() != tt.to {
				t.Fatalf("session source = %p, want %p", got.Source(), tt.to)
			}
			if tt.to == base && got != e.compiled {
				t.Fatal("swap back to base did not reuse the engine's plane")
			}
			if tt.to != base {
				if cached, ok := e.cache[tt.to]; !ok || got != cached {
					t.Fatal("swapped plane not served from the compile cache")
				}
			}
		})
	}
	if len(e.cache) != 1 {
		t.Fatalf("cache holds %d planes, want 1 (one per swapped monitor)", len(e.cache))
	}

	// A monitor whose synopses cannot compile is rejected atomically: the
	// error surfaces and the site keeps its current session.
	before := e.sess[a]
	bad := &core.Monitor{Synopses: trainTestMonitor(t, 3).Synopses}
	if err := e.swapSession(a, bad); err == nil {
		t.Fatal("uncompilable monitor accepted")
	}
	if e.sess[a] != before {
		t.Fatal("failed swap replaced the session")
	}
}
