// Package serve is the online serving layer: the path from a live stream
// of per-tier 1-second metric samples to a realtime overload/bottleneck
// decision, for any number of monitored sites at once.
//
// A Pipeline wraps one trained core.Monitor. Each monitored site gets an
// independent prediction stream (a core.Session) plus a per-tier
// metrics.Aggregator that folds the raw 1-second vectors into the paper's
// 30-second analysis windows. When a site's window completes across all
// tiers, the pipeline predicts and publishes a Decision to subscribers;
// an AdmissionValve adapter turns the latest decision into a
// server.AdmissionFunc, closing the control loop against the simulated
// testbed.
//
// Deployed counter streams are noisy and lossy (samples arrive late, go
// missing, or carry NaN after a counter wraps), so the pipeline degrades
// rather than crashes: malformed samples are skipped and counted, windows
// missing no more than Config.StalenessBudget samples per tier are still
// decided from the partial mean (flagged Degraded), and windows missing
// more are dropped with the site's temporal history reset, as the paper
// prescribes after long gaps. On a clean stream the pipeline's decisions
// are bit-identical to replaying the same windows through the batch
// core.Session API — the serving layer adds resilience, not drift.
//
// Every site is instrumented: counters for samples ingested/skipped,
// windows decided/degraded/dropped, overloads, GPV disagreement, and
// prediction latency, exported in Prometheus text format by
// WriteMetrics (cmd/capserved serves them over HTTP).
package serve

import (
	"errors"
	"fmt"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/server"
)

// Config tunes a Pipeline.
type Config struct {
	// Window is the aggregation window in seconds; zero selects
	// metrics.DefaultWindow (the paper's 30).
	Window int
	// StalenessBudget is the most samples a window may be missing per
	// tier and still be decided (flagged Degraded) from the partial
	// mean; a window missing more in any tier is dropped undecided and
	// the site's temporal history is reset. Zero selects 5; negative
	// selects 0 (strict: any missing sample drops the window). Budgets
	// of a full window or more are clamped to Window-1.
	StalenessBudget int
	// OnDecision, when set, is invoked synchronously for every decision
	// before channel subscribers see it. It runs outside the pipeline's
	// locks, so it may call back into the Pipeline.
	OnDecision func(Decision)
	// OnSwap, when set, is invoked synchronously after every model
	// hot-swap (SwapMonitor). Like OnDecision it runs outside the
	// pipeline's locks.
	OnSwap func(SwapEvent)
	// OnHealth, when set, is invoked synchronously for every
	// degradation-state transition, after the decision (if any) that
	// caused it. Like OnDecision it runs outside the pipeline's locks.
	OnHealth func(HealthEvent)
	// RecoverWindows is how many consecutive clean (non-degraded) decided
	// windows move a degraded or stale site back to healthy. Zero selects
	// 3; negative selects 1 (the first clean window recovers).
	RecoverWindows int
	// Fuse, when non-nil, inserts a per-site, per-tier counter-fusion
	// stage (internal/fuse) between ingest and window aggregation: each
	// 1-second vector is de-noised through the counter factor graph
	// before it reaches the aggregator, NaN/Inf and gated readings are
	// imputed from coupled counters instead of dropping the sample, and
	// every decision carries the window's mean per-counter confidence.
	// Windows whose confidence falls below the fuse config's
	// ConfidenceFloor are flagged LowConfidence and walk the degradation
	// ladder like partial windows. Nil (the default) disables fusion;
	// the nil path is bit-identical to a pipeline built before fusion
	// existed. The zero fuse.Config selects fuse.DefaultConfig.
	Fuse *fuse.Config
	// PoolLabels names the replica pool occupying each tier slot, for the
	// autoscaling Prometheus families (capserved_pool_replicas and
	// capserved_autoscale_total). An empty entry falls back to the slot's
	// TierID name ("app", "db"), so a legacy two-tier deployment needs no
	// configuration. Purely cosmetic: the labels never affect decisions.
	PoolLabels [server.NumTiers]string
}

// Health is a site's position on the degradation ladder. The serving
// pipeline walks it from window outcomes alone: a partial (degraded)
// window moves the site to HealthDegraded, a dropped window or stream gap
// to HealthStale, and Config.RecoverWindows consecutive clean decisions
// from either state back to HealthHealthy. Every transition increments a
// per-edge counter (SiteStats.HealthTransitions, exported as the
// capserved_health_transitions_total Prometheus family) and fires
// Config.OnHealth.
type Health int32

// The degradation ladder, in order of decreasing trust.
const (
	// HealthHealthy: the latest decisions came from complete windows.
	HealthHealthy Health = iota
	// HealthDegraded: deciding, but from partial windows (samples lost
	// within the staleness budget).
	HealthDegraded
	// HealthStale: the stream went bad enough to drop a window and reset
	// the temporal history; there is no trustworthy recent decision, so
	// the admission valve fails open.
	HealthStale
	// NumHealthStates sizes per-state arrays.
	NumHealthStates = 3
)

// String names the state as exported in metrics and transcripts.
func (h Health) String() string {
	switch h {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthStale:
		return "stale"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

// HealthEvent announces one degradation-state transition on a site.
type HealthEvent struct {
	Site     string
	From, To Health
	// Seq is the window whose outcome caused the transition.
	Seq int64
}

// Sample is one 1-second metric vector from one tier of a monitored site,
// in the full collector layout the monitor was trained on.
type Sample struct {
	// Site names the monitored site; sites are created on first sample.
	Site string
	Tier server.TierID
	// Time is the sample timestamp in seconds. Samples must be
	// per-tier monotonic; a repeated or rewound timestamp is late.
	Time   float64
	Values []float64
}

// Decision is the pipeline's output for one completed window of one site.
type Decision struct {
	Site string
	// Seq is the absolute window index (Time ∈ (Seq·W, (Seq+1)·W]);
	// gaps in Seq mark dropped windows.
	Seq int64
	// Time is the timestamp of the last sample folded into the window.
	Time       float64
	Prediction core.Prediction
	// Degraded marks a window decided from a partial mean.
	Degraded bool
	// Missing is how many expected samples the window lacked, summed
	// over tiers (0 unless Degraded).
	Missing int
	// Vectors holds the per-tier window-mean metric vectors the decision
	// was predicted from. The slices are owned by the decision (the
	// aggregator emits fresh storage per window); treat them as
	// read-only, as they are shared across all subscribers.
	Vectors [server.NumTiers][]float64
	// ModelVersion is the site's active model version at decision time
	// (0 until the first hot-swap).
	ModelVersion int64
	// Confidence is the window's mean per-counter fusion confidence in
	// [0, 1]: 1 when every reading was accepted raw, lower as readings
	// were imputed from coupled counters or filter priors. Always 1 when
	// fusion is disabled.
	Confidence float64
	// LowConfidence marks a window whose Confidence fell below the fuse
	// config's ConfidenceFloor: the decision stands but came mostly from
	// imputed readings, so downstream consumers (the registry's retrain
	// guard, the degradation ladder) treat it like a degraded window.
	// Always false when fusion is disabled.
	LowConfidence bool
}

// SwapEvent announces a model hot-swap on one site.
type SwapEvent struct {
	Site string
	// Version is the newly active model version, PrevVersion the one it
	// replaced (0 is the initial model the pipeline was built with).
	Version, PrevVersion int64
	// Seq is the first window index the new model will decide: every
	// decision with Seq below this came from the previous model.
	Seq int64
}

// SiteStats is a snapshot of one site's serving counters.
type SiteStats struct {
	Site string

	// Ingestion. The four skip counters surface as one Prometheus family,
	// capserved_samples_skipped_total, with a reason label.
	SamplesIngested uint64 // samples offered, good or bad
	SamplesLate     uint64 // non-monotonic, duplicate, or closed-window
	SamplesBadValue uint64 // NaN or Inf component
	SamplesBadShape uint64 // wrong vector length or tier out of range
	SamplesGapReset uint64 // accepted but discarded when their window was dropped

	// Windowing and prediction.
	WindowsDecided   uint64 // decisions emitted (clean + degraded)
	WindowsDegraded  uint64 // decided from a partial window
	WindowsDropped   uint64 // skipped: over staleness budget or empty gap
	Overloads        uint64 // decisions that predicted overload
	GPVDisagreements uint64 // decided windows whose synopses disagreed
	PredictErrors    uint64 // monitor rejections (should stay 0)

	// Prediction latency.
	PredictNanos    uint64 // cumulative
	PredictMaxNanos uint64

	// Delivery.
	DecisionsDropped uint64 // subscriber buffer overflows

	// Model lifecycle.
	SessionResets uint64 // temporal-history resets after stream gaps
	ModelSwaps    uint64 // hot-swaps applied (SwapMonitor)
	DriftSignals  uint64 // drift detections reported via NoteDrift
	ModelVersion  int64  // active model version (0 = initial)
	LastSwapSeq   int64  // first window decided by the active model; -1 before any swap

	// Autoscaling (all zero until a NoteScale call; the pool families are
	// rendered only when some site has a nonzero PoolReplicas entry).
	ScaleUps     uint64               // replica additions reported via NoteScale
	ScaleDowns   uint64               // replica removals reported via NoteScale
	PoolReplicas [server.NumTiers]int // active replicas per tier slot (0 = unreported)

	// Freshness (for readiness probes).
	LastDecisionSeq  int64   // most recent decided window; -1 before the first
	LastDecisionTime float64 // its stream timestamp in seconds

	// Counter fusion (all zero unless Config.Fuse is set).
	SamplesFused         uint64  // samples run through the fusion stage
	FuseImputed          uint64  // counter readings replaced by the factor graph or filter prior
	FuseGated            uint64  // readings rejected by the innovation gate (subset of FuseImputed)
	WindowsLowConfidence uint64  // decided windows flagged LowConfidence
	FuseConfidence       float64 // mean confidence of the most recent decided window

	// Degradation ladder.
	Health Health // current state (healthy until a fault says otherwise)
	// HealthTransitions counts state changes by edge, [from][to]; the
	// diagonal stays zero. Exported as capserved_health_transitions_total.
	HealthTransitions [NumHealthStates][NumHealthStates]uint64
}

// HealthChanges sums every degradation-state transition the site has made.
func (s SiteStats) HealthChanges() uint64 {
	var n uint64
	for _, row := range s.HealthTransitions {
		for _, v := range row {
			n += v
		}
	}
	return n
}

// DisagreementRate is the fraction of decided windows whose Global
// Pattern Vector was not unanimous — the serving-time analogue of the
// paper's observation that individual synopses err independently.
func (s SiteStats) DisagreementRate() float64 {
	if s.WindowsDecided == 0 {
		return 0
	}
	return float64(s.GPVDisagreements) / float64(s.WindowsDecided)
}

// MeanPredictLatency is the average per-window prediction cost.
func (s SiteStats) MeanPredictLatency() time.Duration {
	if s.WindowsDecided == 0 {
		return 0
	}
	return time.Duration(s.PredictNanos / s.WindowsDecided)
}

// DefaultConfig returns the canonical serving settings: the paper's
// window, a budget of five missing samples, three clean windows to
// recover. Callbacks default to nil.
func DefaultConfig() Config {
	return Config{
		Window:          metrics.DefaultWindow,
		StalenessBudget: 5,
		RecoverWindows:  3,
	}
}

// normalize fills zero fields from DefaultConfig and applies the
// documented clamps (negative budgets mean strict, budgets of a full
// window clamp to Window-1, negative RecoverWindows means 1).
func (c Config) normalize() Config {
	def := DefaultConfig()
	if c.Window == 0 {
		c.Window = def.Window
	}
	switch {
	case c.StalenessBudget == 0:
		c.StalenessBudget = def.StalenessBudget
	case c.StalenessBudget < 0:
		c.StalenessBudget = 0
	}
	if c.Window > 0 && c.StalenessBudget >= c.Window {
		c.StalenessBudget = c.Window - 1
	}
	switch {
	case c.RecoverWindows == 0:
		c.RecoverWindows = def.RecoverWindows
	case c.RecoverWindows < 0:
		c.RecoverWindows = 1
	}
	return c
}

// Validate applies defaults and clamps first, then returns one error
// per remaining violation, each wrapping core.ErrBadConfig. A nil (or
// empty) result means the configuration is servable as resolved.
func (c Config) Validate() []error {
	c = c.normalize()
	var errs []error
	if c.Window < 0 {
		errs = append(errs, fmt.Errorf("serve: %w: window %d must be positive", core.ErrBadConfig, c.Window))
	}
	if c.Fuse != nil {
		errs = append(errs, c.Fuse.Validate()...)
	}
	return errs
}

// PoolLabel resolves the label for a tier slot's replica pool, falling
// back to the slot's TierID name when PoolLabels leaves it empty.
func (c Config) PoolLabel(slot server.TierID) string {
	if slot >= 0 && slot < server.NumTiers && c.PoolLabels[slot] != "" {
		return c.PoolLabels[slot]
	}
	return slot.String()
}

// withDefaults resolves the config against a pipeline window.
func (c Config) withDefaults() (Config, error) {
	if errs := c.Validate(); len(errs) > 0 {
		return c, errors.Join(errs...)
	}
	return c.normalize(), nil
}
