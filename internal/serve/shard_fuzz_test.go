package serve_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// FuzzShardConfig throws arbitrary shard geometries at Validate and the
// constructor: Validate must never panic, it must agree with
// NewShardedPipeline about what is buildable, and every buildable
// geometry must round-trip a sample per shard without losing it.
func FuzzShardConfig(f *testing.F) {
	_, mon, tr := fixture(f)
	vecs := secondVectors(tr)
	f.Add(0, 0, 0)
	f.Add(1, 1, 1)
	f.Add(serve.MaxShards, 64, 4096)
	f.Add(serve.MaxShards+1, 64, 4096)
	f.Add(-1, -1, -1)
	f.Add(8, 64, 63)
	f.Add(8, 1, serve.MaxQueueCapacity+1)
	f.Add(3, 1<<30, 1<<30)
	f.Fuzz(func(t *testing.T, shards, batch, queue int) {
		cfg := serve.ShardConfig{Shards: shards, BatchSize: batch, QueueCapacity: queue}
		verrs := cfg.Validate()
		sp, perr := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, cfg)
		if (len(verrs) == 0) != (perr == nil) {
			t.Fatalf("Validate says %v, constructor says %v", verrs, perr)
		}
		if len(verrs) > 0 {
			for _, verr := range verrs {
				if !errors.Is(verr, core.ErrBadConfig) {
					t.Fatalf("invalid config rejected with %v, want ErrBadConfig", verr)
				}
			}
			return
		}
		defer sp.Close()
		var offered uint64
		for i := 0; i < sp.Shards(); i++ {
			site := fmt.Sprintf("rt-%03d", i)
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				sp.Ingest(serve.Sample{Site: site, Tier: tier, Time: 1, Values: vecs[tier][0]})
				offered++
			}
		}
		sp.Sync()
		tot := sp.Totals()
		if tot.Enqueued != offered || tot.Processed != offered {
			t.Fatalf("offered %d, enqueued %d, processed %d", offered, tot.Enqueued, tot.Processed)
		}
		var ingested uint64
		for _, s := range sp.Stats() {
			ingested += s.SamplesIngested
		}
		if ingested != offered {
			t.Fatalf("site counters absorb %d of %d offered samples", ingested, offered)
		}
	})
}

// FuzzShardQueue hammers the batch queue itself: arbitrary batch sizes
// and queue capacities, concurrent producers mixing named samples, valid
// refs, zero refs, and refs stolen from a foreign pipeline, with Close
// racing the producers (close-while-full). The pipeline must never
// panic, and afterwards every offered sample must be accounted for:
// accepted ones all processed, and each processed sample either counted
// on a site or counted as a bad ref — nothing dropped without a reason.
func FuzzShardQueue(f *testing.F) {
	_, mon, tr := fixture(f)
	vecs := secondVectors(tr)
	f.Add(uint16(1), uint16(1), uint16(64), uint16(0))
	f.Add(uint16(3), uint16(6), uint16(500), uint16(100))
	f.Add(uint16(64), uint16(64), uint16(1000), uint16(1))
	f.Add(uint16(100), uint16(400), uint16(2000), uint16(1999))
	f.Fuzz(func(t *testing.T, batchRaw, queueRaw, nRaw, closeRaw uint16) {
		cfg := serve.ShardConfig{
			Shards:        3,
			BatchSize:     1 + int(batchRaw%128),
			QueueCapacity: 1 + int(queueRaw%512),
		}
		if len(cfg.Validate()) > 0 {
			cfg.QueueCapacity = cfg.BatchSize
		}
		perProducer := int(nRaw % 2048)
		closeAfter := int(closeRaw) % (perProducer + 1)

		sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// A foreign pipeline with a larger site table: its refs aimed at sp
		// either resolve to the wrong site (counted as ingested there) or
		// overrun the shard's table (counted as bad refs) — never panic.
		foreign, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer foreign.Close()
		foreignRefs := make([]serve.SiteRef, 40)
		for i := range foreignRefs {
			foreignRefs[i] = foreign.Register(fmt.Sprintf("foreign-%03d", i))
		}

		var offered, zeroRefs atomic.Uint64
		const nProducers = 2
		var wg sync.WaitGroup
		closed := make(chan struct{})
		for pr := 0; pr < nProducers; pr++ {
			pr := pr
			wg.Add(1)
			go func() {
				defer wg.Done()
				ref := sp.Register(fmt.Sprintf("own-%d", pr))
				for i := 0; i < perProducer; i++ {
					tier := server.TierID(i % int(server.NumTiers))
					ts := float64(i + 1)
					switch i % 4 {
					case 0:
						sp.Ingest(serve.Sample{Site: fmt.Sprintf("own-%d", pr), Tier: tier, Time: ts, Values: vecs[tier][0]})
						offered.Add(1)
					case 1:
						sp.IngestRef(ref, tier, ts, vecs[tier][0])
						offered.Add(1)
					case 2:
						sp.IngestRef(serve.SiteRef{}, tier, ts, vecs[tier][0])
						zeroRefs.Add(1)
					case 3:
						sp.IngestRef(foreignRefs[i%len(foreignRefs)], tier, ts, vecs[tier][0])
						offered.Add(1)
					}
				}
			}()
		}
		go func() {
			// Close races the producers at a fuzzed point in their stream;
			// with closeAfter 0 it may beat the very first sample.
			for int(sp.Totals().Enqueued) < closeAfter {
			}
			sp.Close()
			close(closed)
		}()
		wg.Wait()
		<-closed
		sp.Flush() // must be safe after Close (drains nothing)

		tot := sp.Totals()
		if got := tot.Enqueued + tot.RejectedClosed + zeroRefs.Load(); got != offered.Load()+zeroRefs.Load() {
			t.Fatalf("offered %d + %d zero refs; enqueued %d + rejected-closed %d + zero refs %d",
				offered.Load(), zeroRefs.Load(), tot.Enqueued, tot.RejectedClosed, zeroRefs.Load())
		}
		if tot.Processed != tot.Enqueued {
			t.Fatalf("Close returned with %d of %d accepted samples unprocessed", tot.Processed, tot.Enqueued)
		}
		var ingested uint64
		for _, s := range sp.Stats() {
			ingested += s.SamplesIngested
		}
		engineBadRefs := tot.RejectedRef - zeroRefs.Load()
		if ingested+engineBadRefs != tot.Processed {
			t.Fatalf("processed %d != ingested %d + unresolvable refs %d — samples vanished without a counted reason",
				tot.Processed, ingested, engineBadRefs)
		}
	})
}
