package serve_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/wal"
	"hpcap/internal/wire"
)

// traceFrames slices the recorded trace into fused wire frames for one
// site, perFrame scrapes per frame, sequenced from 0.
func traceFrames(tr [server.NumTiers][][]float64, times []float64, site string, perFrame int) []wire.Frame {
	var frames []wire.Frame
	cur := wire.Frame{Site: site}
	for i, ts := range times {
		var s wire.Sample
		s.Time = ts
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			s.Vecs[tier] = tr[tier][i]
		}
		cur.Samples = append(cur.Samples, s)
		if len(cur.Samples) == perFrame {
			frames = append(frames, cur)
			cur = wire.Frame{Site: site, Seq: cur.Seq + 1}
		}
	}
	if len(cur.Samples) > 0 {
		frames = append(frames, cur)
	}
	return frames
}

// TestIngestSeqAccounting pins the sequence semantics frame by frame:
// mid-stream joins are legal but counted, duplicates and late frames are
// dropped and counted, gaps are counted and crossed. Nothing is silent.
func TestIngestSeqAccounting(t *testing.T) {
	_, mon, _ := fixture(t)
	sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, serve.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	ing := serve.NewIngest(sp)
	wall := time.Unix(1000, 0)
	ing.SetNow(func() time.Time { return wall })
	lane := ing.Conn()
	defer lane.Close()

	check := func(step string, accepted, wantAccepted bool, want serve.SiteTransport) {
		t.Helper()
		if accepted != wantAccepted {
			t.Fatalf("%s: accepted=%t, want %t", step, accepted, wantAccepted)
		}
		got, ok := ing.Transport("a")
		if !ok {
			t.Fatalf("%s: site unknown to transport table", step)
		}
		want.Site = "a"
		want.LastFrameAt = got.LastFrameAt // checked separately
		if got != want {
			t.Fatalf("%s: transport %+v, want %+v", step, got, want)
		}
	}

	// A first frame with seq>0 is a mid-stream join: accepted, the gap
	// and implied losses counted.
	ok := lane.Accept(&wire.Frame{Site: "a", Seq: 3})
	check("mid-stream join", ok, true, serve.SiteTransport{
		Frames: 1, SeqGaps: 1, LostFrames: 3, LastSeq: 3})

	// In-order successor with samples: counters advance, freshness stamps.
	ok = lane.Accept(&wire.Frame{Site: "a", Seq: 4, Samples: []wire.Sample{{Time: 30}, {Time: 31}}})
	check("in-order", ok, true, serve.SiteTransport{
		Frames: 2, Samples: 2, SeqGaps: 1, LostFrames: 3, LastSeq: 4, LastFrameTime: 31})
	if got, _ := ing.Transport("a"); !got.LastFrameAt.Equal(wall) {
		t.Fatalf("LastFrameAt = %v, want injected clock %v", got.LastFrameAt, wall)
	}

	// Redelivery of the current frame: dropped, counted, nothing else moves.
	ok = lane.Accept(&wire.Frame{Site: "a", Seq: 4, Samples: []wire.Sample{{Time: 30}}})
	check("duplicate", ok, false, serve.SiteTransport{
		Frames: 2, Samples: 2, DupFrames: 1, SeqGaps: 1, LostFrames: 3, LastSeq: 4, LastFrameTime: 31})

	// A frame below the high-water mark: a late reordering, dropped.
	ok = lane.Accept(&wire.Frame{Site: "a", Seq: 2})
	check("out-of-order", ok, false, serve.SiteTransport{
		Frames: 2, Samples: 2, DupFrames: 1, OutOfOrder: 1, SeqGaps: 1, LostFrames: 3, LastSeq: 4, LastFrameTime: 31})

	// A skip ahead: accepted, the two missing frames counted as lost.
	ok = lane.Accept(&wire.Frame{Site: "a", Seq: 7})
	check("gap", ok, true, serve.SiteTransport{
		Frames: 3, Samples: 2, DupFrames: 1, OutOfOrder: 1, SeqGaps: 2, LostFrames: 5, LastSeq: 7, LastFrameTime: 31})

	// Unknown sites stay unknown; known ones list sorted.
	if _, ok := ing.Transport("nope"); ok {
		t.Error("unknown site reported as known")
	}
	lane.Accept(&wire.Frame{Site: "0-first", Seq: 0})
	stats := ing.TransportStats()
	if len(stats) != 2 || stats[0].Site != "0-first" || stats[1].Site != "a" {
		t.Errorf("TransportStats order: %+v", stats)
	}

	var buf bytes.Buffer
	if err := ing.WriteTransportMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`capserved_transport_frames_total{site="a"} 3`,
		`capserved_transport_lost_frames_total{site="a"} 5`,
		`capserved_transport_last_seq{site="a"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestFrameServerLoopback is the distributed-collection golden: the same
// recorded streams ingested directly (plain ShardedPipeline.Ingest, no
// network) and shipped as wire frames through a real Sender → TCP →
// FrameServer → Ingest chain must produce byte-identical per-site
// decision transcripts. The transport may batch, frame, and buffer, but
// it may not change a single decision.
func TestFrameServerLoopback(t *testing.T) {
	lab, mon, tr := fixture(t)
	window := lab.Scale.Window
	vecs := secondVectors(tr)
	sites := []string{"site-a", "site-b"}

	// Direct run: per-sample ingest, no wire anywhere.
	ref := newRecorder()
	sp1, err := serve.NewShardedPipeline(mon, ref.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range sites {
		for i, ts := range tr.SecTimes {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				sp1.Ingest(serve.Sample{Site: site, Tier: tier, Time: ts, Values: vecs[tier][i]})
			}
		}
	}
	sp1.Flush()
	sp1.Close()

	// Network run: one Sender (one TCP connection) per site.
	rec := newRecorder()
	sp2, err := serve.NewShardedPipeline(mon, rec.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sp2.Close()
	ing := serve.NewIngest(sp2)
	fsrv, err := serve.NewFrameServer(serve.ListenConfig{}, ing, nil)
	if err != nil {
		t.Fatal(err)
	}
	addr := fsrv.Addr().String()
	wantFrames := make(map[string]uint64)
	for _, site := range sites {
		// The queue must hold the whole burst: the test enqueues far
		// faster than a real sampling loop, and eviction is load-shedding,
		// not an error — but here every frame must arrive.
		snd, err := wire.NewSender(addr, wire.AgentConfig{FrameSamples: 5, QueueFrames: 4096})
		if err != nil {
			t.Fatal(err)
		}
		frames := traceFrames(vecs, tr.SecTimes, site, 5)
		wantFrames[site] = uint64(len(frames))
		for i := range frames {
			snd.Send(&frames[i])
		}
		snd.Close()
		st := snd.Stats()
		if st.Dropped() != 0 || st.Sent != uint64(len(frames)) {
			t.Fatalf("%s sender lost frames on a clean loopback: %+v", site, st)
		}
	}
	fsrv.WaitConns(uint64(len(sites)))
	if err := fsrv.Close(); err != nil {
		t.Fatal(err)
	}
	sp2.Flush()

	for _, site := range sites {
		want, got := ref.transcript(site), rec.transcript(site)
		if want == "" {
			t.Fatalf("%s: empty reference transcript", site)
		}
		if got != want {
			t.Errorf("%s transcript diverged\n--- direct ---\n%s--- network ---\n%s", site, want, got)
		}
		tp, ok := ing.Transport(site)
		if !ok {
			t.Fatalf("%s missing from transport table", site)
		}
		if tp.Frames != wantFrames[site] || tp.DupFrames != 0 || tp.SeqGaps != 0 || tp.OutOfOrder != 0 {
			t.Errorf("%s transport not clean: %+v", site, tp)
		}
	}
	if st := fsrv.Stats(); st.ReadErrors != 0 || st.DecodeErrors != 0 || st.LogErrors != 0 {
		t.Errorf("server counted errors on a clean loopback: %+v", st)
	}
}

// TestWALCrashReplay is the durability golden: a daemon killed mid-storm
// — WAL holding half the stream plus a torn record — must, after
// recovery (truncate the tear, replay the log, resume the live feed),
// finish with decision transcripts byte-identical to a daemon that never
// crashed. The WAL is appended strictly before ingest, so the log can
// only run ahead of the pipeline, never behind; replay therefore
// reconstructs at least everything the pre-crash pipeline decided.
func TestWALCrashReplay(t *testing.T) {
	lab, mon, tr := fixture(t)
	window := lab.Scale.Window
	vecs := secondVectors(tr)
	sites := []string{"site-a", "site-b"}

	// Interleave the two sites' frames round-robin, the arrival order two
	// concurrent agents would produce.
	var lists [][]wire.Frame
	maxLen := 0
	for _, site := range sites {
		l := traceFrames(vecs, tr.SecTimes, site, 4)
		lists = append(lists, l)
		if len(l) > maxLen {
			maxLen = len(l)
		}
	}
	var order []wire.Frame
	for i := 0; i < maxLen; i++ {
		for _, l := range lists {
			if i < len(l) {
				order = append(order, l[i])
			}
		}
	}

	// Reference: every frame through an uninterrupted daemon.
	ref := newRecorder()
	spRef, err := serve.NewShardedPipeline(mon, ref.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	laneRef := serve.NewIngest(spRef).Conn()
	for i := range order {
		laneRef.Accept(&order[i])
	}
	laneRef.Close()
	spRef.Flush()
	spRef.Close()

	// Crashing daemon: WAL-append then ingest for the first half…
	walPath := filepath.Join(t.TempDir(), "crash.wal")
	log, recovered, err := wal.Open(walPath, wal.Config{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 {
		t.Fatalf("fresh WAL recovered %d frames", recovered)
	}
	crash := newRecorder()
	spCrash, err := serve.NewShardedPipeline(mon, crash.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	laneCrash := serve.NewIngest(spCrash).Conn()
	half := len(order) / 2
	for i := 0; i < half; i++ {
		if err := log.Append(wire.AppendFrame(nil, &order[i])); err != nil {
			t.Fatal(err)
		}
		laneCrash.Accept(&order[i])
	}
	// …then dies mid-Append of the next frame: a torn record on disk, the
	// in-memory pipeline state gone. (Close only reclaims the goroutines;
	// its decisions are discarded like a crashed process's would be.)
	next := wire.AppendFrame(nil, &order[half])
	torn := binary.AppendUvarint(nil, uint64(len(next)))
	torn = append(torn, next[:len(next)/2]...)
	fh, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.Write(torn); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	spCrash.Close()

	// Recovery: reopen (truncates the tear), replay into a fresh
	// pipeline, then resume the live stream from the first unlogged frame.
	log2, recovered, err := wal.Open(walPath, wal.Config{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if recovered != half {
		t.Fatalf("recovered %d frames, want %d", recovered, half)
	}
	rec := newRecorder()
	spRec, err := serve.NewShardedPipeline(mon, rec.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	lane := serve.NewIngest(spRec).Conn()
	n, err := wal.Replay(walPath, wal.Config{}, func(payload []byte) error {
		f, err := wire.DecodeFrame(payload)
		if err != nil {
			return fmt.Errorf("logged frame does not decode: %w", err)
		}
		lane.Accept(&f)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != half {
		t.Fatalf("replayed %d frames, want %d", n, half)
	}
	for i := half; i < len(order); i++ {
		if err := log2.Append(wire.AppendFrame(nil, &order[i])); err != nil {
			t.Fatal(err)
		}
		lane.Accept(&order[i])
	}
	lane.Close()
	spRec.Flush()
	spRec.Close()
	if err := log2.Close(); err != nil {
		t.Fatal(err)
	}

	for _, site := range sites {
		want, got := ref.transcript(site), rec.transcript(site)
		if want == "" {
			t.Fatalf("%s: empty reference transcript", site)
		}
		if got != want {
			t.Errorf("%s recovered transcript diverged\n--- uninterrupted ---\n%s--- recovered ---\n%s",
				site, want, got)
		}
	}

	// The healed WAL now holds the complete storm: replaying it alone
	// reproduces the full transcripts — the WAL doubles as a capture.
	cap2 := newRecorder()
	spCap, err := serve.NewShardedPipeline(mon, cap2.config(window), serve.ShardConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	laneCap := serve.NewIngest(spCap).Conn()
	if n, err := wal.Replay(walPath, wal.Config{}, func(payload []byte) error {
		f, err := wire.DecodeFrame(payload)
		if err != nil {
			return err
		}
		laneCap.Accept(&f)
		return nil
	}); err != nil || n != len(order) {
		t.Fatalf("capture replay: n=%d err=%v, want %d frames", n, err, len(order))
	}
	laneCap.Close()
	spCap.Flush()
	spCap.Close()
	for _, site := range sites {
		if got := cap2.transcript(site); got != ref.transcript(site) {
			t.Errorf("%s capture-replay transcript diverged", site)
		}
	}
}
