package serve_test

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/cpu"
	"hpcap/internal/experiment"
	"hpcap/internal/metrics"
	"hpcap/internal/predictor"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureLevel is the metric level every serving test monitors at.
const fixtureLevel = metrics.LevelHPC

// fx holds the shared (expensive) fixture: a quick-scale lab, a trained
// HPC monitor, and the interleaved bottleneck-shifting test trace with its
// per-second recordings.
var fx struct {
	once sync.Once
	err  error
	lab  *experiment.Lab
	mon  *core.Monitor
	tr   *experiment.Trace
}

func fixture(t testing.TB) (*experiment.Lab, *core.Monitor, *experiment.Trace) {
	t.Helper()
	fx.once.Do(func() {
		lab := experiment.NewLab(experiment.QuickScale())
		mon, err := lab.TrainMonitor(fixtureLevel, predictor.Config{})
		if err != nil {
			fx.err = fmt.Errorf("train monitor: %w", err)
			return
		}
		wb, err := lab.Workload(tpcw.Browsing())
		if err != nil {
			fx.err = err
			return
		}
		wo, err := lab.Workload(tpcw.Ordering())
		if err != nil {
			fx.err = err
			return
		}
		// The lab's own interleaved test trace (same seed), regenerated
		// with per-second recording switched on.
		tr, err := experiment.Generate(experiment.TraceConfig{
			Server:        lab.Server,
			Schedule:      experiment.InterleavedSchedule(wb, wo, lab.Scale),
			Window:        lab.Scale.Window,
			Warmup:        lab.Scale.WarmupWindows,
			Seed:          lab.Seed + 104,
			Labeler:       lab.Labeler,
			RecordSeconds: true,
		})
		if err != nil {
			fx.err = fmt.Errorf("generate trace: %w", err)
			return
		}
		if len(tr.SecTimes) != len(tr.Windows)*lab.Scale.Window {
			fx.err = fmt.Errorf("recorded %d seconds for %d windows of %d",
				len(tr.SecTimes), len(tr.Windows), lab.Scale.Window)
			return
		}
		fx.lab, fx.mon, fx.tr = lab, mon, tr
	})
	if fx.err != nil {
		t.Fatalf("fixture: %v", fx.err)
	}
	return fx.lab, fx.mon, fx.tr
}

// secondVectors pulls the recorded per-second vectors for every tier.
func secondVectors(tr *experiment.Trace) [server.NumTiers][][]float64 {
	var vecs [server.NumTiers][][]float64
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = tr.SecondVectors(fixtureLevel, tier)
	}
	return vecs
}

// replay streams the whole recorded trace through the pipeline as one site.
func replay(p *serve.Pipeline, site string, tr *experiment.Trace) {
	vecs := secondVectors(tr)
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			p.Ingest(serve.Sample{Site: site, Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
	}
	p.Flush()
}

// formatDecisions renders decisions in the golden-file layout.
func formatDecisions(ds []serve.Decision) string {
	var b strings.Builder
	for _, d := range ds {
		bott := "-"
		if d.Prediction.Overload {
			bott = d.Prediction.Bottleneck.String()
		}
		gpv := make([]byte, len(d.Prediction.GPV))
		for i, v := range d.Prediction.GPV {
			gpv[i] = '0' + byte(v)
		}
		fmt.Fprintf(&b, "seq=%d t=%g overload=%t bottleneck=%s gpv=%s degraded=%t missing=%d\n",
			d.Seq, d.Time, d.Prediction.Overload, bott, gpv, d.Degraded, d.Missing)
	}
	return b.String()
}

// TestStreamingMatchesBatch is the serving layer's core guarantee: replaying
// a recorded trace sample-by-sample yields exactly the decisions the batch
// session API computes from the aggregated windows — same prediction, same
// GPV, same timestamps — with the sequence golden-pinned.
func TestStreamingMatchesBatch(t *testing.T) {
	_, mon, tr := fixture(t)
	var decisions []serve.Decision
	p, err := serve.NewPipeline(mon, serve.Config{
		Window:     30,
		OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	replay(p, "replay", tr)

	if len(decisions) != len(tr.Windows) {
		t.Fatalf("streamed %d decisions, batch has %d windows", len(decisions), len(tr.Windows))
	}
	sess := mon.NewSession()
	for i, w := range tr.Windows {
		want, err := sess.Predict(core.Observation{Time: w.Time, Vectors: w.Vectors(fixtureLevel)})
		if err != nil {
			t.Fatalf("batch predict window %d: %v", i, err)
		}
		d := decisions[i]
		if d.Degraded || d.Missing != 0 {
			t.Errorf("window %d: clean stream marked degraded (missing %d)", i, d.Missing)
		}
		if d.Time != w.Time {
			t.Errorf("window %d: time %g, batch %g", i, d.Time, w.Time)
		}
		if !reflect.DeepEqual(d.Prediction, want) {
			t.Errorf("window %d: streamed %+v, batch %+v", i, d.Prediction, want)
		}
	}

	st, ok := p.SiteStats("replay")
	if !ok {
		t.Fatal("site stats missing")
	}
	if got, want := st.WindowsDecided, uint64(len(tr.Windows)); got != want {
		t.Errorf("WindowsDecided = %d, want %d", got, want)
	}
	if st.WindowsDegraded != 0 || st.WindowsDropped != 0 || st.SamplesLate != 0 ||
		st.SamplesBadValue != 0 || st.SamplesBadShape != 0 || st.PredictErrors != 0 {
		t.Errorf("clean stream tripped degradation counters: %+v", st)
	}
	if got, want := st.SamplesIngested, uint64(len(tr.SecTimes)*int(server.NumTiers)); got != want {
		t.Errorf("SamplesIngested = %d, want %d", got, want)
	}

	got := formatDecisions(decisions)
	golden := filepath.Join("testdata", "interleaved_decisions.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (re-run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("decision sequence drifted from golden %s;\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestMalformedStreamDegradesGracefully drops, corrupts, and duplicates
// samples mid-stream and asserts the pipeline neither panics nor stalls:
// windows inside the staleness budget are decided degraded, the window
// beyond it is dropped, and every skip lands on a counter.
func TestMalformedStreamDegradesGracefully(t *testing.T) {
	lab, mon, tr := fixture(t)
	W := lab.Scale.Window
	var decisions []serve.Decision
	p, err := serve.NewPipeline(mon, serve.Config{
		Window:     W,
		OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	vecs := secondVectors(tr)
	nWin := len(tr.Windows)
	if nWin < 10 {
		t.Fatalf("trace too short for the fault schedule: %d windows", nWin)
	}

	offered := 0
	ingest := func(s serve.Sample) {
		offered++
		p.Ingest(s)
	}
	for i, ts := range tr.SecTimes {
		k, off := i/W, i%W // window ordinal and offset within it
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			v := vecs[tier][i]
			switch {
			case k == 2 && tier == server.TierApp && off < 3:
				continue // silently lost: within the budget of 5
			case k == 4 && tier == server.TierApp && off == 0:
				bad := append([]float64(nil), v...)
				bad[0] = math.NaN()
				ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: bad})
				continue // counter wrapped: sample skipped, window degraded
			case k == 6 && off < 10:
				continue // outage: 10 lost per tier, over budget, window dropped
			}
			ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: v})
			if k == 8 && tier == server.TierDB && off == 5 {
				// Duplicate delivery of the sample just sent.
				ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: v})
			}
		}
	}
	// Garbage that must bounce off shape validation.
	ingest(serve.Sample{Site: "s", Tier: server.TierID(9), Time: 1e9, Values: vecs[0][0]})
	ingest(serve.Sample{Site: "s", Tier: server.TierApp, Time: 1e9, Values: []float64{1, 2}})
	p.Flush()

	if got, want := len(decisions), nWin-1; got != want {
		t.Fatalf("decided %d windows, want %d (one dropped)", got, want)
	}
	first := decisions[0].Seq
	seqs := make(map[int64]serve.Decision, len(decisions))
	for _, d := range decisions {
		seqs[d.Seq] = d
	}
	if _, ok := seqs[first+6]; ok {
		t.Errorf("window %d was over the staleness budget but got decided", first+6)
	}
	var degraded []serve.Decision
	for _, d := range decisions {
		if d.Degraded {
			degraded = append(degraded, d)
		}
	}
	if len(degraded) != 2 {
		t.Fatalf("degraded %d windows, want 2: %+v", len(degraded), degraded)
	}
	if d := seqs[first+2]; !d.Degraded || d.Missing != 3 {
		t.Errorf("window %d: degraded=%t missing=%d, want degraded with 3 missing", first+2, d.Degraded, d.Missing)
	}
	if d := seqs[first+4]; !d.Degraded || d.Missing != 1 {
		t.Errorf("window %d: degraded=%t missing=%d, want degraded with 1 missing", first+4, d.Degraded, d.Missing)
	}

	st, ok := p.SiteStats("s")
	if !ok {
		t.Fatal("site stats missing")
	}
	if got, want := st.SamplesIngested, uint64(offered); got != want {
		t.Errorf("SamplesIngested = %d, want %d", got, want)
	}
	if st.WindowsDecided != uint64(nWin-1) || st.WindowsDegraded != 2 || st.WindowsDropped != 1 {
		t.Errorf("window counters decided=%d degraded=%d dropped=%d, want %d/2/1",
			st.WindowsDecided, st.WindowsDegraded, st.WindowsDropped, nWin-1)
	}
	if st.SamplesBadValue != 1 {
		t.Errorf("SamplesBadValue = %d, want 1", st.SamplesBadValue)
	}
	if st.SamplesLate != 1 {
		t.Errorf("SamplesLate = %d, want 1", st.SamplesLate)
	}
	if st.SamplesBadShape != 2 {
		t.Errorf("SamplesBadShape = %d, want 2", st.SamplesBadShape)
	}
	last := decisions[len(decisions)-1]
	if p.Overloaded("s") != last.Prediction.Overload {
		t.Errorf("Overloaded = %t, last decision said %t", p.Overloaded("s"), last.Prediction.Overload)
	}
}

// TestFlushPartialWindow closes a half-filled window at end of stream: a
// partial mean inside the budget is decided degraded; under a strict
// (negative) budget the same tail is dropped instead.
func TestFlushPartialWindow(t *testing.T) {
	lab, mon, tr := fixture(t)
	W := lab.Scale.Window
	vecs := secondVectors(tr)
	feed := func(p *serve.Pipeline, seconds int) {
		for i := 0; i < seconds; i++ {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				p.Ingest(serve.Sample{Site: "s", Tier: tier, Time: tr.SecTimes[i], Values: vecs[tier][i]})
			}
		}
	}

	var decisions []serve.Decision
	p, err := serve.NewPipeline(mon, serve.Config{
		OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	feed(p, W+27) // one clean window plus 27 seconds of the next
	p.Flush()
	if len(decisions) != 2 {
		t.Fatalf("decided %d windows, want 2", len(decisions))
	}
	if decisions[0].Degraded {
		t.Error("full window flagged degraded")
	}
	if d := decisions[1]; !d.Degraded || d.Missing != 2*3 {
		t.Errorf("partial window: degraded=%t missing=%d, want degraded with 6 missing", d.Degraded, d.Missing)
	}
	decisions = decisions[:0]
	p.Flush() // idempotent: nothing left open
	if len(decisions) != 0 {
		t.Errorf("second Flush decided %d windows, want 0", len(decisions))
	}

	// Strict budget: any missing sample drops the window.
	decisions = nil
	strict, err := serve.NewPipeline(mon, serve.Config{
		StalenessBudget: -1,
		OnDecision:      func(d serve.Decision) { decisions = append(decisions, d) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	feed(strict, W+27)
	strict.Flush()
	if len(decisions) != 1 {
		t.Fatalf("strict budget decided %d windows, want 1", len(decisions))
	}
	st, _ := strict.SiteStats("s")
	if st.WindowsDropped != 1 {
		t.Errorf("strict budget WindowsDropped = %d, want 1", st.WindowsDropped)
	}
}

// TestAdmissionValveClosesLoop runs the full control loop on the live
// testbed: collectors feed the pipeline, the pipeline's valve gates
// admission, and a sustained burst past the knee is detected and shed.
func TestAdmissionValveClosesLoop(t *testing.T) {
	lab, mon, _ := fixture(t)
	wb, err := lab.Workload(tpcw.Browsing())
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	sched := tpcw.Concat(
		tpcw.Steady(wb.Mix, wb.Knee/2, 120),
		tpcw.Steady(wb.Mix, wb.Knee*2, 480),
		tpcw.Steady(wb.Mix, wb.Knee/2, 120),
	)
	srvCfg := lab.Server
	srvCfg.Seed = 777
	tb, err := server.NewTestbed(srvCfg, sched)
	if err != nil {
		t.Fatalf("testbed: %v", err)
	}
	p, err := serve.NewPipeline(mon, serve.Config{Window: lab.Scale.Window})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	tb.SetAdmission(p.AdmissionValve("site", 8))

	machines := [server.NumTiers]server.MachineConfig{srvCfg.App.Machine, srvCfg.DB.Machine}
	var colls [server.NumTiers]metrics.Collector
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		colls[tier] = cpu.NewCollector(tier, machines[tier], 0.02, srvCfg.Seed*10+int64(tier))
	}
	if err := tb.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	total := sched.Duration()
	for elapsed := 0.0; elapsed < total; elapsed++ {
		snap := tb.RunInterval(1)
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			v := colls[tier].Collect(snap, 1)
			p.Ingest(serve.Sample{
				Site: "site", Tier: tier, Time: snap.Time,
				Values: append([]float64(nil), v...),
			})
		}
	}

	st, ok := p.SiteStats("site")
	if !ok {
		t.Fatal("site stats missing")
	}
	if st.Overloads == 0 {
		t.Error("burst at twice the knee never predicted overload")
	}
	arrivals, completions, rejections, inFlight := tb.Conservation()
	if rejections == 0 {
		t.Error("admission valve never shed load under predicted overload")
	}
	if arrivals != completions+rejections+inFlight {
		t.Errorf("conservation broken: %d arrivals vs %d+%d+%d", arrivals, completions, rejections, inFlight)
	}
}

// TestPipelineValidation pins the constructor's sentinel errors.
func TestPipelineValidation(t *testing.T) {
	_, mon, _ := fixture(t)
	if _, err := serve.NewPipeline(nil, serve.Config{}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("nil monitor: got %v, want ErrBadConfig", err)
	}
	if _, err := serve.NewPipeline(&core.Monitor{}, serve.Config{}); !errors.Is(err, core.ErrUntrained) {
		t.Errorf("untrained monitor: got %v, want ErrUntrained", err)
	}
	if _, err := serve.NewPipeline(mon, serve.Config{Window: -1}); !errors.Is(err, core.ErrBadConfig) {
		t.Errorf("negative window: got %v, want ErrBadConfig", err)
	}
}

// TestSubscribeDelivery checks channel fan-out: a roomy subscriber sees
// every decision, an undersized one loses the overflow (counted), and a
// cancelled subscription stops receiving.
func TestSubscribeDelivery(t *testing.T) {
	_, mon, tr := fixture(t)
	p, err := serve.NewPipeline(mon, serve.Config{})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	roomy, cancelRoomy := p.Subscribe(len(tr.Windows) + 1)
	tiny, cancelTiny := p.Subscribe(1)
	defer cancelTiny()
	replay(p, "a", tr)

	if got, want := len(roomy), len(tr.Windows); got != want {
		t.Errorf("roomy subscriber holds %d decisions, want %d", got, want)
	}
	if len(tiny) != 1 {
		t.Errorf("tiny subscriber holds %d decisions, want 1", len(tiny))
	}
	st, _ := p.SiteStats("a")
	if got, want := st.DecisionsDropped, uint64(len(tr.Windows)-1); got != want {
		t.Errorf("DecisionsDropped = %d, want %d", got, want)
	}
	first := <-roomy
	if first.Site != "a" || first.Seq != 1 {
		t.Errorf("first decision = site %q seq %d, want site a seq 1", first.Site, first.Seq)
	}

	cancelRoomy()
	drained := len(roomy)
	replay(p, "b", tr)
	if len(roomy) != drained {
		t.Errorf("cancelled subscriber still receiving (%d → %d buffered)", drained, len(roomy))
	}
}

// TestWriteMetrics spot-checks the Prometheus text rendering.
func TestWriteMetrics(t *testing.T) {
	lab, mon, tr := fixture(t)
	W := lab.Scale.Window
	p, err := serve.NewPipeline(mon, serve.Config{})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	vecs := secondVectors(tr)
	for i := 0; i < W; i++ {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			p.Ingest(serve.Sample{Site: "shop", Tier: tier, Time: tr.SecTimes[i], Values: vecs[tier][i]})
		}
	}
	var buf bytes.Buffer
	if err := p.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE capserved_samples_ingested_total counter",
		fmt.Sprintf(`capserved_samples_ingested_total{site="shop"} %d`, W*int(server.NumTiers)),
		`capserved_windows_decided_total{site="shop"} 1`,
		"# TYPE capserved_prediction_max_seconds gauge",
		"# TYPE capserved_samples_skipped_total counter",
		`capserved_samples_skipped_total{site="shop",reason="nan"} 0`,
		`capserved_samples_skipped_total{site="shop",reason="late"} 0`,
		`capserved_samples_skipped_total{site="shop",reason="misshapen"} 0`,
		`capserved_samples_skipped_total{site="shop",reason="gap-reset"} 0`,
		`capserved_model_swaps_total{site="shop"} 0`,
		`capserved_model_version{site="shop"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q in:\n%s", want, out)
		}
	}
	// The autoscaling families are gated: absent until NoteScale reports a
	// replica count, then rendered with the configured pool labels.
	if strings.Contains(out, "capserved_pool_replicas") || strings.Contains(out, "capserved_autoscale_total") {
		t.Errorf("pool families rendered before any NoteScale:\n%s", out)
	}
	p.NoteScale("shop", server.TierApp, 3, true)
	p.NoteScale("shop", server.TierDB, 2, false)
	p.NoteScale("shop", server.TierID(99), 9, true) // out of range: ignored
	buf.Reset()
	if err := p.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	out = buf.String()
	for _, want := range []string{
		"# TYPE capserved_pool_replicas gauge",
		`capserved_pool_replicas{site="shop",pool="app"} 3`,
		`capserved_pool_replicas{site="shop",pool="db"} 2`,
		"# TYPE capserved_autoscale_total counter",
		`capserved_autoscale_total{site="shop",direction="up"} 1`,
		`capserved_autoscale_total{site="shop",direction="down"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q in:\n%s", want, out)
		}
	}
}

// TestSwapMonitorLossFree hot-swaps the model mid-window and asserts the
// swap drops nothing: the half-aggregated window survives the re-bind and
// is decided by the new model, the decision count matches a frozen replay,
// and decisions carry the model version active when they were made.
func TestSwapMonitorLossFree(t *testing.T) {
	_, mon, tr := fixture(t)
	var frozen []serve.Decision
	pf, err := serve.NewPipeline(mon, serve.Config{
		Window:     30,
		OnDecision: func(d serve.Decision) { frozen = append(frozen, d) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	replay(pf, "s", tr)

	var swapped []serve.Decision
	var events []serve.SwapEvent
	p, err := serve.NewPipeline(mon, serve.Config{
		Window:     30,
		OnDecision: func(d serve.Decision) { swapped = append(swapped, d) },
		OnSwap:     func(ev serve.SwapEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	// Stream with a swap in the middle of window 2 (15 seconds in), so the
	// new session inherits a half-aggregated window.
	W := 30
	swapAt := W + W/2
	vecs := secondVectors(tr)
	for i, ts := range tr.SecTimes {
		if i == swapAt {
			if _, err := p.SwapMonitor("s", mon, 1); err != nil {
				t.Fatalf("SwapMonitor: %v", err)
			}
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			p.Ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
	}
	p.Flush()

	if len(swapped) != len(frozen) {
		t.Fatalf("swap replay decided %d windows, frozen %d — swap lost decisions", len(swapped), len(frozen))
	}
	if len(events) != 1 {
		t.Fatalf("OnSwap fired %d times, want 1: %+v", len(events), events)
	}
	ev := events[0]
	if ev.Site != "s" || ev.Version != 1 || ev.PrevVersion != 0 {
		t.Errorf("unexpected swap event %+v", ev)
	}
	for _, d := range swapped {
		want := int64(0)
		if d.Seq >= ev.Seq {
			want = 1
		}
		if d.ModelVersion != want {
			t.Errorf("window %d: ModelVersion %d, want %d (swap at %d)", d.Seq, d.ModelVersion, want, ev.Seq)
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			if len(d.Vectors[tier]) != len(vecs[tier][0]) {
				t.Fatalf("window %d tier %s: Vectors has %d metrics, want %d",
					d.Seq, tier, len(d.Vectors[tier]), len(vecs[tier][0]))
			}
		}
	}
	// Same model on both sides of the swap: every decision before the swap
	// window and after the temporal history re-converges matches frozen.
	for i, d := range swapped {
		if d.Seq < ev.Seq && !reflect.DeepEqual(d.Prediction, frozen[i].Prediction) {
			t.Errorf("pre-swap window %d diverged from frozen replay", d.Seq)
		}
	}
	st, _ := p.SiteStats("s")
	if st.ModelSwaps != 1 || st.ModelVersion != 1 || st.LastSwapSeq != ev.Seq {
		t.Errorf("swap counters: %+v", st)
	}
	if st.WindowsDecided != uint64(len(frozen)) || st.WindowsDropped != 0 {
		t.Errorf("swap replay decided=%d dropped=%d, want %d/0", st.WindowsDecided, st.WindowsDropped, len(frozen))
	}
}

// TestSwapMonitorRejectsUntrained pins the swap validation errors.
func TestSwapMonitorRejectsUntrained(t *testing.T) {
	_, mon, _ := fixture(t)
	p, err := serve.NewPipeline(mon, serve.Config{})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	if _, err := p.SwapMonitor("s", nil, 1); !errors.Is(err, core.ErrUntrained) {
		t.Errorf("nil monitor: got %v, want ErrUntrained", err)
	}
	if _, err := p.SwapMonitor("s", &core.Monitor{}, 1); !errors.Is(err, core.ErrUntrained) {
		t.Errorf("untrained monitor: got %v, want ErrUntrained", err)
	}
	st, _ := p.SiteStats("s")
	if st.ModelSwaps != 0 || st.ModelVersion != 0 {
		t.Errorf("rejected swaps mutated counters: %+v", st)
	}
}

// TestValveReopensAfterSessionReset drives a site into predicted overload,
// then starves the stream past the staleness budget: the session reset must
// fail the admission valve open (a stale overload verdict must not keep
// shedding load) and the gap's absorbed samples must land on the gap-reset
// counter.
func TestValveReopensAfterSessionReset(t *testing.T) {
	lab, mon, tr := fixture(t)
	W := lab.Scale.Window
	p, err := serve.NewPipeline(mon, serve.Config{Window: W})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	valve := p.AdmissionValve("s", 8)
	busy := server.AdmissionState{WaitQueue: 3, BoundWorkers: 12}
	if !valve(busy) {
		t.Fatal("valve closed before any decision")
	}

	// Replay until the first overload verdict.
	vecs := secondVectors(tr)
	fed := 0
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			p.Ingest(serve.Sample{Site: "s", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
		fed = i + 1
		if p.Overloaded("s") {
			break
		}
	}
	if !p.Overloaded("s") {
		t.Fatal("trace never predicted overload; fixture unusable for this test")
	}
	if valve(busy) {
		t.Fatal("valve open under predicted overload with a busy pipeline")
	}

	// Feed part of the next window, then jump far past the staleness
	// budget: the partial window is dropped, the session reset, and the
	// valve must reopen even though no fresh decision has been made.
	partial := 5
	before, _ := p.SiteStats("s")
	for i := fed; i < fed+partial; i++ {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			p.Ingest(serve.Sample{Site: "s", Tier: tier, Time: tr.SecTimes[i], Values: vecs[tier][i]})
		}
	}
	skip := float64(10 * W)
	p.Ingest(serve.Sample{
		Site: "s", Tier: server.TierApp,
		Time:   tr.SecTimes[fed+partial-1] + skip,
		Values: vecs[server.TierApp][fed+partial],
	})

	if p.Overloaded("s") {
		t.Error("overload verdict survived the session reset")
	}
	if !valve(busy) {
		t.Error("valve still closed after the session reset")
	}
	st, _ := p.SiteStats("s")
	// The jump both drops the partial window (one reset) and skips whole
	// windows (a second reset on the same gap).
	if st.SessionResets != before.SessionResets+2 {
		t.Errorf("SessionResets = %d, want %d", st.SessionResets, before.SessionResets+2)
	}
	if got, want := st.SamplesGapReset-before.SamplesGapReset, uint64(partial*int(server.NumTiers)); got != want {
		t.Errorf("SamplesGapReset accounted %d samples, want %d (the dropped partial window)", got, want)
	}
	if st.WindowsDropped <= before.WindowsDropped {
		t.Error("gap did not count dropped windows")
	}
}

// TestConcurrentSitesIndependent streams the same trace into several sites
// from concurrent goroutines (with stats scraped throughout) and asserts
// every site independently reproduces the identical decision counters —
// the pipeline's per-site isolation under the race detector.
func TestConcurrentSitesIndependent(t *testing.T) {
	_, mon, tr := fixture(t)
	p, err := serve.NewPipeline(mon, serve.Config{})
	if err != nil {
		t.Fatalf("NewPipeline: %v", err)
	}
	ch, cancel := p.Subscribe(16)
	defer cancel()
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-ch:
			case <-done:
				return
			}
		}
	}()
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				p.Stats()
				_ = p.Overloaded("a")
			}
		}
	}()

	sites := []string{"a", "b", "c"}
	var wg sync.WaitGroup
	for _, site := range sites {
		wg.Add(1)
		go func(site string) {
			defer wg.Done()
			replay(p, site, tr)
		}(site)
	}
	wg.Wait()
	close(done)

	all := p.Stats()
	if len(all) != len(sites) {
		t.Fatalf("Stats has %d sites, want %d", len(all), len(sites))
	}
	for i, st := range all {
		if st.Site != sites[i] {
			t.Errorf("Stats[%d].Site = %q, want %q (sorted)", i, st.Site, sites[i])
		}
		if got, want := st.WindowsDecided, uint64(len(tr.Windows)); got != want {
			t.Errorf("site %s decided %d windows, want %d", st.Site, got, want)
		}
		if st.Overloads != all[0].Overloads || st.GPVDisagreements != all[0].GPVDisagreements {
			t.Errorf("site %s diverged: %d overloads / %d disagreements vs %d / %d",
				st.Site, st.Overloads, st.GPVDisagreements, all[0].Overloads, all[0].GPVDisagreements)
		}
	}
}
