package serve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/wire"
)

// ListenConfig shapes a FrameServer.
type ListenConfig struct {
	// Addr is the TCP listen address. Port 0 picks a free port; read it
	// back with Addr() — that is how tests wire agent to server.
	Addr string

	// MaxFrameBytes bounds one frame's encoded payload. Oversized
	// length prefixes fail before allocating, so a corrupt or hostile
	// peer cannot balloon memory.
	MaxFrameBytes int

	// ReadTimeout bounds the wait for each frame; 0 means wait forever.
	// Deterministic tests leave it 0 and close connections explicitly.
	ReadTimeout time.Duration
}

// DefaultListenConfig returns the canonical FrameServer settings.
func DefaultListenConfig() ListenConfig {
	return ListenConfig{
		Addr:          "127.0.0.1:0",
		MaxFrameBytes: wire.MaxFrameBytes,
	}
}

// Validate applies defaults for zero fields and returns one error per
// violated constraint, each wrapping core.ErrBadConfig.
func (c ListenConfig) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.Addr == "" {
		errs = append(errs, fmt.Errorf("%w: listen: empty address", core.ErrBadConfig))
	}
	if c.MaxFrameBytes <= 0 {
		errs = append(errs, fmt.Errorf("%w: listen: max frame bytes %d, need > 0", core.ErrBadConfig, c.MaxFrameBytes))
	}
	if c.ReadTimeout < 0 {
		errs = append(errs, fmt.Errorf("%w: listen: read timeout %v, need >= 0", core.ErrBadConfig, c.ReadTimeout))
	}
	return errs
}

// withDefaults fills zero fields from DefaultListenConfig.
func (c ListenConfig) withDefaults() ListenConfig {
	def := DefaultListenConfig()
	if c.Addr == "" {
		c.Addr = def.Addr
	}
	if c.MaxFrameBytes == 0 {
		c.MaxFrameBytes = def.MaxFrameBytes
	}
	return c
}

// ServerStats counts a FrameServer's connection and frame traffic.
type ServerStats struct {
	ConnsOpened  uint64 // connections accepted
	ConnsClosed  uint64 // connections fully drained and closed
	Frames       uint64 // well-formed frames handed to ingest
	DecodeErrors uint64 // frames rejected by wire.DecodeFrame
	ReadErrors   uint64 // connections torn down mid-frame
	LogErrors    uint64 // OnFrame (write-ahead log) failures
}

// FrameServer accepts agent connections and pumps their frames into a
// shared Ingest. Each accepted frame passes through an optional OnFrame
// hook — the write-ahead log append — strictly before its samples reach
// the pipeline, and hook plus sequence-accounting run under one lock,
// so the log's frame order is exactly the order ingest observed. Replay
// the log through a fresh Ingest and the pipeline lands in the same
// state, byte for byte.
type FrameServer struct {
	cfg    ListenConfig
	ingest *Ingest
	ln     net.Listener

	// OnFrame, when set, sees every well-formed frame payload before
	// ingest. An error drops the connection: a server that cannot
	// persist must not keep consuming, or a crash would strand frames
	// the agent believes delivered.
	onFrame func(payload []byte) error

	frameMu sync.Mutex // serializes OnFrame + Accept across connections

	mu     sync.Mutex
	cond   *sync.Cond
	conns  map[net.Conn]struct{}
	stats  ServerStats
	closed bool

	wg sync.WaitGroup
}

// NewFrameServer starts listening and serving. onFrame may be nil.
func NewFrameServer(cfg ListenConfig, ing *Ingest, onFrame func(payload []byte) error) (*FrameServer, error) {
	cfg = cfg.withDefaults()
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("serve: listen %s: %w", cfg.Addr, err)
	}
	fs := &FrameServer{
		cfg:     cfg,
		ingest:  ing,
		ln:      ln,
		onFrame: onFrame,
		conns:   make(map[net.Conn]struct{}),
	}
	fs.cond = sync.NewCond(&fs.mu)
	fs.wg.Add(1)
	go fs.acceptLoop()
	return fs, nil
}

// Addr returns the bound listen address.
func (fs *FrameServer) Addr() net.Addr { return fs.ln.Addr() }

// Stats returns a snapshot of the traffic counters.
func (fs *FrameServer) Stats() ServerStats {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.stats
}

// WaitConns blocks until n connections have opened and fully closed —
// how a bounded run knows every agent finished its stream.
func (fs *FrameServer) WaitConns(n uint64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for fs.stats.ConnsClosed < n && !fs.closed {
		fs.cond.Wait()
	}
}

// Close stops accepting, tears down live connections, and waits for
// every connection goroutine to drain its batcher.
func (fs *FrameServer) Close() error {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		return nil
	}
	fs.closed = true
	err := fs.ln.Close()
	for c := range fs.conns {
		c.Close()
	}
	fs.cond.Broadcast()
	fs.mu.Unlock()
	fs.wg.Wait()
	return err
}

// acceptLoop admits connections until the listener closes.
func (fs *FrameServer) acceptLoop() {
	defer fs.wg.Done()
	for {
		conn, err := fs.ln.Accept()
		if err != nil {
			return
		}
		fs.mu.Lock()
		if fs.closed {
			fs.mu.Unlock()
			conn.Close()
			return
		}
		fs.conns[conn] = struct{}{}
		fs.stats.ConnsOpened++
		fs.wg.Add(1)
		fs.mu.Unlock()
		go fs.serveConn(conn)
	}
}

// serveConn pumps one connection's frames into the shared ingest.
func (fs *FrameServer) serveConn(conn net.Conn) {
	defer fs.wg.Done()
	lane := fs.ingest.Conn()
	r := bufio.NewReader(conn)
	var buf []byte
	for {
		if fs.cfg.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(fs.cfg.ReadTimeout))
		}
		payload, err := wire.ReadFrame(r, fs.cfg.MaxFrameBytes, buf)
		if err != nil {
			fs.connDone(conn, err)
			break
		}
		buf = payload[:0]
		f, derr := wire.DecodeFrame(payload)
		if derr != nil {
			// Framing survived, the payload did not: skip the frame but
			// keep the stream — the next length prefix is still aligned.
			fs.count(func(s *ServerStats) { s.DecodeErrors++ })
			continue
		}
		fs.frameMu.Lock()
		if fs.onFrame != nil {
			if werr := fs.onFrame(payload); werr != nil {
				fs.frameMu.Unlock()
				fs.count(func(s *ServerStats) { s.LogErrors++ })
				fs.connDone(conn, werr)
				break
			}
		}
		lane.Accept(&f)
		fs.frameMu.Unlock()
		fs.count(func(s *ServerStats) { s.Frames++ })
	}
	lane.Close()
}

// connDone retires a connection: clean EOF is a normal end of stream,
// anything else counts as a read error.
func (fs *FrameServer) connDone(conn net.Conn, err error) {
	conn.Close()
	fs.mu.Lock()
	delete(fs.conns, conn)
	if err != nil && !errors.Is(err, io.EOF) && !fs.closed {
		fs.stats.ReadErrors++
	}
	fs.stats.ConnsClosed++
	fs.cond.Broadcast()
	fs.mu.Unlock()
}

// count applies a stats mutation under the lock.
func (fs *FrameServer) count(mut func(*ServerStats)) {
	fs.mu.Lock()
	mut(&fs.stats)
	fs.mu.Unlock()
}
