package serve_test

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"hpcap/internal/chaos"
	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// TestChaosRaceStress replays the recorded trace into a chaos-wrapped
// pipeline for eight sites at once — each site hot-swapping its model
// mid-storm — and requires the per-site decision streams to be
// byte-identical to a sequential replay of the same program. Run under
// -race (the CI race leg does) this is the tentpole's concurrency proof:
// fault injection, degradation tracking, and hot-swaps never race, and
// goroutine interleaving never changes an outcome.
func TestChaosRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the trace 16 times; skipped in -short")
	}
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	const nSites = 8
	sched, err := chaos.Parse(
		"nan tier=app at=100 for=60 p=0.3; stuck tier=db at=160 for=30; " +
			"drop at=220 for=60 p=0.15; outage tier=db at=300 for=35; " +
			"dup tier=app at=350 for=40 p=0.5; skew at=400 for=30 p=0.25; " +
			"stall tier=db at=450 for=30 n=4")
	if err != nil {
		t.Fatal(err)
	}

	// run replays every site through one injector and one pipeline; when
	// concurrent, each site feeds from its own goroutine. Each site swaps
	// its model (same monitor, new version) at a fixed point mid-storm, so
	// swaps race the fault window under the concurrent schedule while
	// remaining at a deterministic stream position.
	run := func(concurrent bool) map[string]string {
		in := chaos.NewInjector(sched, 7)
		var mu sync.Mutex
		decisions := make(map[string][]serve.Decision)
		p, err := serve.NewPipeline(mon, serve.Config{
			Window: window,
			OnDecision: func(d serve.Decision) {
				mu.Lock()
				decisions[d.Site] = append(decisions[d.Site], d)
				mu.Unlock()
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		swapAt := len(tr.SecTimes) / 2
		feed := func(site string) {
			for i, ts := range tr.SecTimes {
				if i == swapAt {
					if _, err := p.SwapMonitor(site, mon, 1); err != nil {
						t.Errorf("%s: swap: %v", site, err)
						return
					}
				}
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					for _, out := range in.Apply(serve.Sample{Site: site, Tier: tier, Time: ts, Values: vecs[tier][i]}) {
						p.Ingest(out)
					}
				}
			}
		}
		if concurrent {
			var wg sync.WaitGroup
			for i := 0; i < nSites; i++ {
				site := fmt.Sprintf("site-%d", i)
				wg.Add(1)
				go func() {
					defer wg.Done()
					feed(site)
				}()
			}
			wg.Wait()
		} else {
			for i := 0; i < nSites; i++ {
				feed(fmt.Sprintf("site-%d", i))
			}
		}
		for _, s := range in.Drain() {
			p.Ingest(s)
		}
		p.Flush()

		out := make(map[string]string, nSites)
		for i := 0; i < nSites; i++ {
			site := fmt.Sprintf("site-%d", i)
			var b strings.Builder
			for _, d := range decisions[site] {
				fmt.Fprintf(&b, "v%d %s", d.ModelVersion, formatDecisions([]serve.Decision{d}))
			}
			st, ok := p.SiteStats(site)
			if !ok {
				t.Fatalf("%s: no stats", site)
			}
			if st.ModelSwaps != 1 {
				t.Errorf("%s: %d swaps, want 1", site, st.ModelSwaps)
			}
			if st.WindowsDecided == 0 {
				t.Errorf("%s: no decisions under chaos", site)
			}
			if st.HealthChanges() == 0 {
				t.Errorf("%s: the storm never moved the degradation ladder", site)
			}
			fmt.Fprintf(&b, "health=%s transitions=%d degraded=%d dropped=%d resets=%d\n",
				st.Health, st.HealthChanges(), st.WindowsDegraded, st.WindowsDropped, st.SessionResets)
			out[site] = b.String()
		}
		return out
	}

	seq := run(false)
	par := run(true)
	for site, want := range seq {
		if got := par[site]; got != want {
			t.Errorf("%s diverged under concurrency\n--- sequential ---\n%s--- concurrent ---\n%s", site, want, got)
		}
	}
}

// FuzzPipelineIngestFaulty throws arbitrary sample shapes, values, and
// timestamps at a live pipeline: it must never panic, and every offered
// sample must either reach the aggregator or be counted under exactly one
// skip reason — the fuzz-hardened form of the skip-accounting contract.
func FuzzPipelineIngestFaulty(f *testing.F) {
	lab, mon, tr := fixture(f)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	dim := mon.InputDim()
	f.Add(0, 31.0, []byte{})
	f.Add(1, math.NaN(), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(9, math.Inf(1), bytes8(math.NaN()))
	f.Add(-1, 60.0, bytes8(math.Inf(-1)))
	f.Add(0, 1e300, bytes8(12.5))
	f.Fuzz(func(t *testing.T, tier int, ts float64, raw []byte) {
		p, err := serve.NewPipeline(mon, serve.Config{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		// A short clean prefix so the fuzzed sample can also be "late".
		for i := 0; i < 2*window; i++ {
			for tr2 := server.TierID(0); tr2 < server.NumTiers; tr2++ {
				p.Ingest(serve.Sample{Site: "s", Tier: tr2, Time: tr.SecTimes[i], Values: vecs[tr2][i]})
			}
		}
		before, _ := p.SiteStats("s")

		values := make([]float64, 0, len(raw)/8)
		for i := 0; i+8 <= len(raw); i += 8 {
			values = append(values, math.Float64frombits(binary.LittleEndian.Uint64(raw[i:])))
		}
		p.Ingest(serve.Sample{Site: "s", Tier: server.TierID(tier), Time: ts, Values: values})

		after, _ := p.SiteStats("s")
		if after.SamplesIngested != before.SamplesIngested+1 {
			t.Fatalf("ingested moved %d -> %d, want +1", before.SamplesIngested, after.SamplesIngested)
		}
		skips := func(s serve.SiteStats) uint64 {
			return s.SamplesLate + s.SamplesBadValue + s.SamplesBadShape
		}
		dSkip := skips(after) - skips(before)
		if dSkip > 1 {
			t.Fatalf("one sample counted under %d skip reasons", dSkip)
		}
		malformed := tier < 0 || tier >= int(server.NumTiers) || len(values) != dim ||
			math.IsNaN(ts) || math.IsInf(ts, 0)
		for _, v := range values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				malformed = true
			}
		}
		if malformed && dSkip != 1 {
			t.Fatalf("malformed sample (tier=%d t=%v dim=%d) skipped %d times, want exactly 1",
				tier, ts, len(values), dSkip)
		}
		// Whatever happened, the stream must still be decidable: the
		// remaining windows replay without panics or counter corruption.
		for i := 2 * window; i < 4*window && i < len(tr.SecTimes); i++ {
			for tr2 := server.TierID(0); tr2 < server.NumTiers; tr2++ {
				p.Ingest(serve.Sample{Site: "s", Tier: tr2, Time: tr.SecTimes[i], Values: vecs[tr2][i]})
			}
		}
		p.Flush()
		final, _ := p.SiteStats("s")
		if final.SamplesIngested < skips(final)+final.SamplesGapReset {
			t.Fatalf("skip counters (%d+%d) exceed ingested %d",
				skips(final), final.SamplesGapReset, final.SamplesIngested)
		}
	})
}

// bytes8 little-endian-encodes one float64 for fuzz seeds.
func bytes8(v float64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, math.Float64bits(v))
	return b
}

// TestSkipReasonExclusive pins the skipped-sample accounting: a sample
// failing several checks at once is counted under exactly one reason,
// with precedence misshapen > nan > late.
func TestSkipReasonExclusive(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	good := func() []float64 { return append([]float64(nil), vecs[0][0]...) }
	nanVec := func() []float64 {
		v := good()
		v[0] = math.NaN()
		return v
	}
	lateTime := tr.SecTimes[0] // already ingested by the prefix below

	cases := []struct {
		name   string
		sample serve.Sample
		reason string // "misshapen", "nan", "late"
	}{
		{"bad tier", serve.Sample{Tier: server.TierID(9), Time: 1e6, Values: good()}, "misshapen"},
		{"short vector", serve.Sample{Tier: server.TierApp, Time: 1e6, Values: good()[:1]}, "misshapen"},
		{"nil vector", serve.Sample{Tier: server.TierApp, Time: 1e6}, "misshapen"},
		{"nan value", serve.Sample{Tier: server.TierApp, Time: 1e6, Values: nanVec()}, "nan"},
		{"inf time", serve.Sample{Tier: server.TierApp, Time: math.Inf(1), Values: good()}, "nan"},
		{"nan time", serve.Sample{Tier: server.TierApp, Time: math.NaN(), Values: good()}, "nan"},
		{"late", serve.Sample{Tier: server.TierApp, Time: lateTime, Values: good()}, "late"},
		{"bad tier + nan value + late", serve.Sample{Tier: server.TierID(-1), Time: lateTime, Values: nanVec()}, "misshapen"},
		{"wrong dim + late", serve.Sample{Tier: server.TierDB, Time: lateTime, Values: good()[:2]}, "misshapen"},
		{"nan value + late", serve.Sample{Tier: server.TierDB, Time: lateTime, Values: nanVec()}, "nan"},
		{"nan time + late-ish", serve.Sample{Tier: server.TierDB, Time: math.NaN(), Values: nanVec()}, "nan"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := serve.NewPipeline(mon, serve.Config{Window: window})
			if err != nil {
				t.Fatal(err)
			}
			// Clean prefix: one full window plus one sample, so lateTime
			// is genuinely behind the stream.
			for i := 0; i <= window; i++ {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					p.Ingest(serve.Sample{Site: "s", Tier: tier, Time: tr.SecTimes[i], Values: vecs[tier][i]})
				}
			}
			before, _ := p.SiteStats("s")
			s := tc.sample
			s.Site = "s"
			p.Ingest(s)
			after, _ := p.SiteStats("s")

			deltas := map[string]uint64{
				"misshapen": after.SamplesBadShape - before.SamplesBadShape,
				"nan":       after.SamplesBadValue - before.SamplesBadValue,
				"late":      after.SamplesLate - before.SamplesLate,
			}
			var total uint64
			for _, d := range deltas {
				total += d
			}
			if total != 1 {
				t.Fatalf("sample counted %d times across reasons %v, want exactly once", total, deltas)
			}
			if deltas[tc.reason] != 1 {
				t.Errorf("counted under the wrong reason: deltas %v, want %s", deltas, tc.reason)
			}
		})
	}
}

// TestHealthLadderProperty drives randomized window-outcome scripts
// through the pipeline and checks the degradation ladder against a model
// state machine: degraded windows move the site to degraded, dropped
// windows and gaps to stale, RecoverWindows consecutive clean decisions
// back to healthy — and every transition the model predicts shows up both
// as an OnHealth event and as exactly one increment of the matching
// HealthTransitions cell (the Prometheus counter's source).
func TestHealthLadderProperty(t *testing.T) {
	_, mon, _ := fixture(t)
	dim := mon.InputDim()
	const (
		window   = 30
		recoverN = 3
		budget   = 5
		nSeeds   = 12
		nWin     = 36
	)
	outcomes := []string{"clean", "degraded", "dropped", "gap"}

	for seedIdx := 0; seedIdx < nSeeds; seedIdx++ {
		seed := int64(seedIdx)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			script := make([]string, nWin)
			for i := range script {
				script[i] = outcomes[rng.Intn(len(outcomes))]
			}
			// The last window must be deliverable: closing it via Flush
			// with samples missing is a degraded/dropped outcome of its
			// own, so pin it clean for a crisp end state.
			script[nWin-1] = "clean"

			var events []serve.HealthEvent
			p, err := serve.NewPipeline(mon, serve.Config{
				Window:          window,
				StalenessBudget: budget,
				RecoverWindows:  recoverN,
				OnHealth:        func(ev serve.HealthEvent) { events = append(events, ev) },
			})
			if err != nil {
				t.Fatal(err)
			}
			vals := make([]float64, dim)
			feedWindow := func(w int, missApp int) {
				base := float64(w * window)
				for i := 1; i <= window; i++ {
					ts := base + float64(i)
					if i > window-missApp {
						// Tail samples of the app tier go missing.
					} else {
						p.Ingest(serve.Sample{Site: "s", Tier: server.TierApp, Time: ts, Values: vals})
					}
					p.Ingest(serve.Sample{Site: "s", Tier: server.TierDB, Time: ts, Values: vals})
				}
			}

			// Model state machine.
			model := serve.HealthHealthy
			streak := 0
			var wantTrans [serve.NumHealthStates][serve.NumHealthStates]uint64
			var wantEdges [][2]serve.Health
			moveTo := func(to serve.Health) {
				if model == to {
					return
				}
				wantTrans[model][to]++
				wantEdges = append(wantEdges, [2]serve.Health{model, to})
				model = to
			}
			for w, outcome := range script {
				switch outcome {
				case "clean":
					feedWindow(w, 0)
					streak++
					if model != serve.HealthHealthy && streak >= recoverN {
						moveTo(serve.HealthHealthy)
					}
				case "degraded":
					miss := 1 + rng.Intn(budget)
					feedWindow(w, miss)
					streak = 0
					moveTo(serve.HealthDegraded)
				case "dropped":
					miss := budget + 1 + rng.Intn(window-budget-1)
					feedWindow(w, miss)
					streak = 0
					moveTo(serve.HealthStale)
				case "gap":
					streak = 0
					moveTo(serve.HealthStale)
				}
			}
			p.Flush()

			st, ok := p.SiteStats("s")
			if !ok {
				t.Fatal("no site stats")
			}
			if st.Health != model {
				t.Errorf("final health %s, model says %s (script %v)", st.Health, model, script)
			}
			if st.HealthTransitions != wantTrans {
				t.Errorf("transition counters %v, model says %v (script %v)",
					st.HealthTransitions, wantTrans, script)
			}
			if len(events) != len(wantEdges) {
				t.Fatalf("observed %d OnHealth events, model says %d (script %v)",
					len(events), len(wantEdges), script)
			}
			for i, ev := range events {
				if ev.From != wantEdges[i][0] || ev.To != wantEdges[i][1] {
					t.Errorf("event %d is %s->%s, model says %s->%s",
						i, ev.From, ev.To, wantEdges[i][0], wantEdges[i][1])
				}
				if ev.Site != "s" {
					t.Errorf("event %d on site %q", i, ev.Site)
				}
			}
			// Every event corresponds to exactly one counter increment.
			if got, want := st.HealthChanges(), uint64(len(events)); got != want {
				t.Errorf("counter increments %d != events %d — a transition skipped its counter", got, want)
			}
		})
	}
}
