package serve_test

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// shardConfigs is the matrix the differential tests sweep: degenerate
// single-shard single-sample batches, awkward non-dividing counts, and
// the defaults.
var shardConfigs = []serve.ShardConfig{
	{Shards: 1, BatchSize: 1, QueueCapacity: 1},
	{Shards: 3, BatchSize: 7, QueueCapacity: 21},
	{Shards: 8, BatchSize: 64, QueueCapacity: 4096},
}

// faultEvent is one step of a generated stream program: feed a (possibly
// corrupted) sample, or swap a site's model.
type faultEvent struct {
	swap    bool
	site    int
	version int64
	sample  serve.Sample
}

// faultProgram generates a deterministic stream over nSites sites with
// seeded faults of every malformed-input class the pipeline counts:
// drops (gaps), duplicates, late and skewed timestamps, NaN/Inf values,
// short and nil vectors, bad tiers — plus mid-stream model swaps. The
// same program replays into any pipeline implementation.
func faultProgram(seed int64, nSites, seconds int, vecs [server.NumTiers][][]float64) []faultEvent {
	rng := rand.New(rand.NewSource(seed))
	n := len(vecs[0])
	var prog []faultEvent
	names := make([]string, nSites)
	for i := range names {
		names[i] = fmt.Sprintf("site-%02d", i)
	}
	swapAt := seconds / 2
	dim := len(vecs[0][0])
	for sec := 1; sec <= seconds; sec++ {
		for s := 0; s < nSites; s++ {
			if sec == swapAt {
				prog = append(prog, faultEvent{swap: true, site: s, version: 1})
			}
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				base := serve.Sample{
					Site:   names[s],
					Tier:   tier,
					Time:   float64(sec),
					Values: vecs[tier][sec%n],
				}
				switch roll := rng.Float64(); {
				case roll < 0.04: // drop: the window goes degraded or stale
				case roll < 0.06: // burst gap: drop plus a late echo of an old second
					late := base
					late.Time = float64(rng.Intn(sec) + 1)
					prog = append(prog, faultEvent{site: s, sample: late})
				case roll < 0.08: // duplicate
					prog = append(prog, faultEvent{site: s, sample: base}, faultEvent{site: s, sample: base})
				case roll < 0.10: // NaN component
					v := append([]float64(nil), base.Values...)
					v[rng.Intn(dim)] = math.NaN()
					corrupted := base
					corrupted.Values = v
					prog = append(prog, faultEvent{site: s, sample: corrupted})
				case roll < 0.11: // Inf component
					v := append([]float64(nil), base.Values...)
					v[rng.Intn(dim)] = math.Inf(1 - 2*rng.Intn(2))
					corrupted := base
					corrupted.Values = v
					prog = append(prog, faultEvent{site: s, sample: corrupted})
				case roll < 0.12: // short vector
					short := base
					short.Values = base.Values[:rng.Intn(dim)]
					prog = append(prog, faultEvent{site: s, sample: short})
				case roll < 0.13: // nil vector
					empty := base
					empty.Values = nil
					prog = append(prog, faultEvent{site: s, sample: empty})
				case roll < 0.14: // bad tier
					bad := base
					bad.Tier = server.TierID(rng.Intn(2)*11 - 1)
					prog = append(prog, faultEvent{site: s, sample: bad})
				case roll < 0.15: // NaN/Inf timestamp
					bad := base
					if rng.Intn(2) == 0 {
						bad.Time = math.NaN()
					} else {
						bad.Time = math.Inf(1)
					}
					prog = append(prog, faultEvent{site: s, sample: bad})
				default:
					prog = append(prog, faultEvent{site: s, sample: base})
				}
			}
		}
	}
	return prog
}

// transcriptRecorder accumulates per-site decision and health streams
// from pipeline callbacks (which the sharded pipeline fires from shard
// goroutines, so everything locks).
type transcriptRecorder struct {
	mu        sync.Mutex
	decisions map[string][]serve.Decision
	health    map[string][]serve.HealthEvent
	swaps     []serve.SwapEvent
}

func newRecorder() *transcriptRecorder {
	return &transcriptRecorder{
		decisions: make(map[string][]serve.Decision),
		health:    make(map[string][]serve.HealthEvent),
	}
}

func (r *transcriptRecorder) config(window int) serve.Config {
	return serve.Config{
		Window:          window,
		StalenessBudget: 2,
		RecoverWindows:  2,
		OnDecision: func(d serve.Decision) {
			r.mu.Lock()
			r.decisions[d.Site] = append(r.decisions[d.Site], d)
			r.mu.Unlock()
		},
		OnHealth: func(ev serve.HealthEvent) {
			r.mu.Lock()
			r.health[ev.Site] = append(r.health[ev.Site], ev)
			r.mu.Unlock()
		},
		OnSwap: func(ev serve.SwapEvent) {
			r.mu.Lock()
			r.swaps = append(r.swaps, ev)
			r.mu.Unlock()
		},
	}
}

// transcript renders one site's full observable stream: versioned
// decisions interleaved against the health ladder.
func (r *transcriptRecorder) transcript(site string) string {
	var b strings.Builder
	for _, d := range r.decisions[site] {
		fmt.Fprintf(&b, "v%d %s", d.ModelVersion, formatDecisions([]serve.Decision{d}))
	}
	for _, ev := range r.health[site] {
		fmt.Fprintf(&b, "health %s->%s seq=%d\n", ev.From, ev.To, ev.Seq)
	}
	return b.String()
}

// scrubLatency zeroes the wall-clock prediction-latency counters, the
// only SiteStats fields allowed to differ between implementations.
func scrubLatency(stats []serve.SiteStats) []serve.SiteStats {
	for i := range stats {
		stats[i].PredictNanos = 0
		stats[i].PredictMaxNanos = 0
	}
	return stats
}

// TestShardedMatchesPipeline is the sharded path's core guarantee,
// checked differentially: seeded fault-storm programs (drops, dups,
// late/NaN/Inf/misshapen samples, gaps, mid-stream hot-swaps) replay
// through the unsharded Pipeline and through ShardedPipeline at several
// shard/batch geometries, and every site's decision stream, health
// ladder, swap events, and full counter snapshot must be identical —
// batching, deferral, and shard routing may never change an outcome.
func TestShardedMatchesPipeline(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	const nSites = 6
	seconds := 8 * window

	for seed := int64(1); seed <= 3; seed++ {
		prog := faultProgram(seed, nSites, seconds, vecs)

		ref := newRecorder()
		p, err := serve.NewPipeline(mon, ref.config(window))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range prog {
			if ev.swap {
				if _, err := p.SwapMonitor(fmt.Sprintf("site-%02d", ev.site), mon, ev.version); err != nil {
					t.Fatal(err)
				}
				continue
			}
			p.Ingest(ev.sample)
		}
		p.Flush()
		refStats := scrubLatency(p.Stats())

		for _, sc := range shardConfigs {
			t.Run(fmt.Sprintf("seed=%d/shards=%d/batch=%d", seed, sc.Shards, sc.BatchSize), func(t *testing.T) {
				rec := newRecorder()
				sp, err := serve.NewShardedPipeline(mon, rec.config(window), sc)
				if err != nil {
					t.Fatal(err)
				}
				defer sp.Close()
				for _, ev := range prog {
					if ev.swap {
						if _, err := sp.SwapMonitor(fmt.Sprintf("site-%02d", ev.site), mon, ev.version); err != nil {
							t.Fatal(err)
						}
						continue
					}
					sp.Ingest(ev.sample)
				}
				sp.Flush()

				for s := 0; s < nSites; s++ {
					site := fmt.Sprintf("site-%02d", s)
					want, got := ref.transcript(site), rec.transcript(site)
					if got != want {
						t.Errorf("%s transcript diverged\n--- unsharded ---\n%s--- sharded ---\n%s", site, want, got)
					}
				}
				if got := scrubLatency(sp.Stats()); !reflect.DeepEqual(got, refStats) {
					t.Errorf("stats diverged\nunsharded: %+v\nsharded:   %+v", refStats, got)
				}
				if !reflect.DeepEqual(rec.swaps, ref.swaps) {
					t.Errorf("swap events diverged\nunsharded: %+v\nsharded:   %+v", ref.swaps, rec.swaps)
				}
				// Nothing vanished in the queues: every accepted sample was
				// applied, and the per-site tallies absorb all of them.
				tot := sp.Totals()
				if tot.Enqueued != tot.Processed {
					t.Errorf("after Flush: enqueued %d != processed %d", tot.Enqueued, tot.Processed)
				}
				var ingested uint64
				for _, s := range sp.Stats() {
					ingested += s.SamplesIngested
				}
				if ingested != tot.Processed {
					t.Errorf("site counters absorb %d samples, shards processed %d", ingested, tot.Processed)
				}
			})
		}
	}
}

// TestShardRoutingProperty is the quick-style routing law: for seeded
// arbitrary site names and shard counts across 1..256, every site lands
// on exactly one shard, the route is a pure function of the name (stable
// across re-registration and equal to the exported SiteShard), and the
// merged snapshot equals the sum of the per-shard parts.
func TestShardRoutingProperty(t *testing.T) {
	_, mon, tr := fixture(t)
	vecs := secondVectors(tr)

	randomName := func(rng *rand.Rand) string {
		n := 1 + rng.Intn(24)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(rng.Intn(256))
		}
		return string(b)
	}

	for trial := 0; trial < 6; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			shards := []int{1, 2, 256}[trial%3]
			if trial >= 3 {
				shards = 1 + rng.Intn(serve.MaxShards)
			}
			nSites := 20 + rng.Intn(40)
			sites := make(map[string]bool, nSites)
			for len(sites) < nSites {
				sites[randomName(rng)] = true
			}

			sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30},
				serve.ShardConfig{Shards: shards, BatchSize: 1 + rng.Intn(16), QueueCapacity: 64})
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Close()

			wantPerShard := make([]int, shards)
			refs := make(map[string]serve.SiteRef, nSites)
			for name := range sites {
				home := serve.SiteShard(name, shards)
				if home < 0 || home >= shards {
					t.Fatalf("SiteShard(%q, %d) = %d, outside range", name, shards, home)
				}
				if again := serve.SiteShard(name, shards); again != home {
					t.Fatalf("SiteShard(%q) unstable: %d then %d", name, home, again)
				}
				wantPerShard[home]++
				refs[name] = sp.Register(name)
				if !refs[name].Valid() {
					t.Fatalf("Register(%q) returned invalid ref", name)
				}
				if again := sp.Register(name); again != refs[name] {
					t.Fatalf("re-registering %q moved the ref: %v then %v", name, refs[name], again)
				}
			}

			perSite := 1 + rng.Intn(5)
			var offered uint64
			for name := range sites {
				for k := 0; k < perSite; k++ {
					for tier := server.TierID(0); tier < server.NumTiers; tier++ {
						if rng.Intn(2) == 0 {
							sp.Ingest(serve.Sample{Site: name, Tier: tier, Time: float64(k + 1), Values: vecs[tier][k]})
						} else {
							sp.IngestRef(refs[name], tier, float64(k+1), vecs[tier][k])
						}
						offered++
					}
				}
			}
			sp.Sync()

			// Each site on exactly one shard, where SiteShard says.
			per := sp.ShardStats()
			if len(per) != shards {
				t.Fatalf("%d shard snapshots, want %d", len(per), shards)
			}
			for k, s := range per {
				if s.Shard != k {
					t.Errorf("snapshot %d labeled shard %d", k, s.Shard)
				}
				if s.Sites != wantPerShard[k] {
					t.Errorf("shard %d holds %d sites, routing law says %d", k, s.Sites, wantPerShard[k])
				}
			}

			// Merged snapshot == sum of parts, with nothing lost or counted
			// twice across shard boundaries.
			tot := sp.Totals()
			var sumSites int
			var sumProcessed, sumEnqueued uint64
			for _, s := range per {
				sumSites += s.Sites
				sumProcessed += s.Processed
				sumEnqueued += s.Enqueued
			}
			if sumSites != nSites || tot.Sites != nSites {
				t.Errorf("sites: per-shard sum %d, totals %d, want %d", sumSites, tot.Sites, nSites)
			}
			if sumEnqueued != offered || sumProcessed != offered {
				t.Errorf("offered %d samples: enqueued %d, processed %d", offered, sumEnqueued, sumProcessed)
			}
			if tot.Enqueued != sumEnqueued || tot.Processed != sumProcessed {
				t.Errorf("totals (%d/%d) disagree with per-shard sums (%d/%d)",
					tot.Enqueued, tot.Processed, sumEnqueued, sumProcessed)
			}
			var ingested uint64
			stats := sp.Stats()
			if len(stats) != nSites {
				t.Fatalf("merged snapshot has %d sites, want %d", len(stats), nSites)
			}
			for _, s := range stats {
				ingested += s.SamplesIngested
			}
			if ingested != offered {
				t.Errorf("merged site counters absorb %d samples, offered %d", ingested, offered)
			}
		})
	}
}

// TestShardedRaceStress is the sharded twin of TestChaosRaceStress: eight
// sites fed from eight goroutines across five shards (so shards are both
// shared and crossed), each hot-swapping mid-storm, with a snapshot
// scraper running throughout. Run under -race by the CI race leg. The
// per-site streams must match a sequential unsharded replay exactly.
func TestShardedRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("replays the trace 16 times; skipped in -short")
	}
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	const nSites = 8
	swapAt := len(tr.SecTimes) / 2

	feed := func(ingest func(serve.Sample), swap func(string), site string) {
		for i, ts := range tr.SecTimes {
			if i == swapAt {
				swap(site)
			}
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				ingest(serve.Sample{Site: site, Tier: tier, Time: ts, Values: vecs[tier][i]})
			}
		}
	}

	// Sequential reference through the unsharded pipeline.
	ref := newRecorder()
	p, err := serve.NewPipeline(mon, ref.config(window))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSites; i++ {
		feed(p.Ingest, func(site string) {
			if _, err := p.SwapMonitor(site, mon, 1); err != nil {
				t.Fatalf("%s: swap: %v", site, err)
			}
		}, fmt.Sprintf("site-%d", i))
	}
	p.Flush()
	refStats := scrubLatency(p.Stats())

	// Concurrent run through the sharded pipeline.
	rec := newRecorder()
	sp, err := serve.NewShardedPipeline(mon, rec.config(window),
		serve.ShardConfig{Shards: 5, BatchSize: 16, QueueCapacity: 64})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sp.Stats()
				sp.ShardStats()
				sp.Overloaded("site-0")
				var sb strings.Builder
				if err := sp.WriteMetrics(&sb); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for i := 0; i < nSites; i++ {
		site := fmt.Sprintf("site-%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			feed(sp.Ingest, func(s string) {
				if _, err := sp.SwapMonitor(s, mon, 1); err != nil {
					t.Errorf("%s: swap: %v", s, err)
				}
			}, site)
		}()
	}
	wg.Wait()
	sp.Flush()
	close(stop)
	scraper.Wait()
	sp.Close()

	for i := 0; i < nSites; i++ {
		site := fmt.Sprintf("site-%d", i)
		if want, got := ref.transcript(site), rec.transcript(site); got != want {
			t.Errorf("%s diverged under sharding\n--- sequential ---\n%s--- sharded ---\n%s", site, want, got)
		}
	}
	if got := scrubLatency(sp.Stats()); !reflect.DeepEqual(got, refStats) {
		t.Errorf("stats diverged under sharding\nunsharded: %+v\nsharded:   %+v", refStats, got)
	}
}

// TestShardedSwapQuiesce pins SwapMonitor's stream position: whatever the
// batch and queue geometry, a swap issued after k windows of samples
// takes effect at exactly window k — every earlier decision carries the
// old version, every later one the new — because the swap quiesces the
// owning shard before rebinding the session.
func TestShardedSwapQuiesce(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	n := len(tr.SecTimes)
	for _, sc := range shardConfigs {
		t.Run(fmt.Sprintf("shards=%d/batch=%d", sc.Shards, sc.BatchSize), func(t *testing.T) {
			rec := newRecorder()
			sp, err := serve.NewShardedPipeline(mon, rec.config(window), sc)
			if err != nil {
				t.Fatal(err)
			}
			defer sp.Close()
			const site = "quiesce"
			const preWindows, postWindows = 2, 2
			sec := 0
			feedWindows := func(k int) {
				for w := 0; w < k; w++ {
					for i := 0; i < window; i++ {
						sec++
						for tier := server.TierID(0); tier < server.NumTiers; tier++ {
							sp.Ingest(serve.Sample{Site: site, Tier: tier, Time: float64(sec), Values: vecs[tier][sec%n]})
						}
					}
				}
			}
			feedWindows(preWindows)
			// No Sync first: the swap itself must drain the queued windows.
			ev, err := sp.SwapMonitor(site, mon, 7)
			if err != nil {
				t.Fatal(err)
			}
			if ev.Seq != preWindows {
				t.Errorf("swap landed at window %d, want %d", ev.Seq, preWindows)
			}
			if ev.PrevVersion != 0 || ev.Version != 7 {
				t.Errorf("swap versions %d->%d, want 0->7", ev.PrevVersion, ev.Version)
			}
			feedWindows(postWindows)
			sp.Flush()
			ds := rec.decisions[site]
			if len(ds) != preWindows+postWindows {
				t.Fatalf("%d decisions, want %d", len(ds), preWindows+postWindows)
			}
			for _, d := range ds {
				want := int64(0)
				if d.Seq >= int64(preWindows) {
					want = 7
				}
				if d.ModelVersion != want {
					t.Errorf("window %d decided by version %d, want %d", d.Seq, d.ModelVersion, want)
				}
			}
			st, ok := sp.SiteStats(site)
			if !ok || st.LastSwapSeq != int64(preWindows) || st.ModelSwaps != 1 {
				t.Errorf("stats after swap: %+v", st)
			}
		})
	}
}

// TestShardedCallbackReentrancy is the deadlock regression for the
// publish-outside-locks convention: OnDecision, OnHealth, and a channel
// subscriber all call back into the pipeline (snapshots, flag reads,
// drift notes, even further ingest) while their shard goroutine is
// mid-dispatch. A watchdog converts any deadlock into a crisp failure.
func TestShardedCallbackReentrancy(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	n := len(tr.SecTimes)

	done := make(chan struct{})
	go func() {
		defer close(done)
		var decided, healthEvents int
		var sp *serve.ShardedPipeline
		cfg := serve.Config{
			Window:          window,
			StalenessBudget: 2,
			OnDecision: func(d serve.Decision) {
				decided++
				// Re-enter from inside dispatch: snapshots, flag reads,
				// counters, and one more (non-flushing) sample.
				sp.Stats()
				if _, ok := sp.SiteStats(d.Site); !ok {
					t.Errorf("SiteStats(%s) missing from its own decision callback", d.Site)
				}
				sp.Overloaded(d.Site)
				sp.NoteDrift(d.Site, 1)
				sp.IngestRef(serve.SiteRef{}, 0, 0, nil) // counted, not routed
			},
			OnHealth: func(ev serve.HealthEvent) {
				healthEvents++
				sp.ShardStats()
				sp.Totals()
			},
		}
		var err error
		sp, err = serve.NewShardedPipeline(mon, cfg, serve.ShardConfig{Shards: 2, BatchSize: 4, QueueCapacity: 8})
		if err != nil {
			t.Error(err)
			return
		}
		sub, cancel := sp.Subscribe(1)
		quit := make(chan struct{})
		var subWG sync.WaitGroup
		subWG.Add(1)
		go func() {
			defer subWG.Done()
			for {
				select {
				case d := <-sub:
					sp.SiteStats(d.Site) // subscriber re-enters too
				case <-quit:
					return
				}
			}
		}()

		// Drive enough windows that decisions, degraded windows, and
		// health transitions all fire (site B drops a tier periodically).
		for sec := 1; sec <= 6*window; sec++ {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				sp.Ingest(serve.Sample{Site: "a", Tier: tier, Time: float64(sec), Values: vecs[tier][sec%n]})
				if tier == 0 && sec%(2*window) < window/2 {
					continue // b's app tier goes missing half a window at a time
				}
				sp.Ingest(serve.Sample{Site: "b", Tier: tier, Time: float64(sec), Values: vecs[tier][sec%n]})
			}
		}
		sp.Flush()
		sp.Close()
		cancel()
		close(quit)
		subWG.Wait()
		if decided == 0 {
			t.Error("no decisions fired; the regression exercised nothing")
		}
		if healthEvents == 0 {
			t.Error("no health events fired; the regression exercised nothing")
		}
	}()

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("callback re-entrancy deadlocked the pipeline")
	}
}

// TestShardedValveAndOverload mirrors the unsharded valve semantics on
// the sharded path: the valve reads survive site-table growth (refs are
// pointer-stable), fail open while stale, and track the latest verdict.
func TestShardedValveAndOverload(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	n := len(tr.SecTimes)
	rec := newRecorder()
	sp, err := serve.NewShardedPipeline(mon, rec.config(window), serve.ShardConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sp.Close()
	valve := sp.AdmissionValve("v", 2)
	if !valve(server.AdmissionState{WaitQueue: 9, BoundWorkers: 9}) {
		t.Error("valve not fail-open before any decision")
	}
	// Grow the site table past the valve's site, then drive windows: the
	// valve must keep reading v's flags across the dense-slice growth.
	for i := 0; i < 500; i++ {
		sp.Register(fmt.Sprintf("filler-%03d", i))
	}
	for sec := 1; sec <= 2*window; sec++ {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			sp.Ingest(serve.Sample{Site: "v", Tier: tier, Time: float64(sec), Values: vecs[tier][sec%n]})
		}
	}
	sp.Sync()
	ds := rec.decisions["v"]
	if len(ds) == 0 {
		t.Fatal("no decisions for the valve's site")
	}
	last := ds[len(ds)-1]
	if got := sp.Overloaded("v"); got != last.Prediction.Overload {
		t.Errorf("Overloaded(v) = %t, last decision says %t", got, last.Prediction.Overload)
	}
	if !last.Prediction.Overload && !valve(server.AdmissionState{WaitQueue: 9, BoundWorkers: 9}) {
		t.Error("valve closed while the monitor predicts underload")
	}
	if !valve(server.AdmissionState{}) {
		t.Error("valve closed with an empty server")
	}
}

// TestBatcherAddSite pins the producer-side batching API differentially:
// a seeded scrape program — every tier's vector for one site and second,
// with per-tier corruption (NaN/Inf components, short and nil vectors)
// and shared timestamp faults (non-finite, rewound, duplicated) — replays
// through the unsharded Pipeline as sequential per-tier Ingest calls,
// through Batcher.Add per tier, and through the fused Batcher.AddSite.
// All three must produce identical per-site transcripts and counters:
// fusing a scrape into one queue slot may never change an outcome.
func TestBatcherAddSite(t *testing.T) {
	lab, mon, tr := fixture(t)
	vecs := secondVectors(tr)
	window := lab.Scale.Window
	n := len(vecs[0])
	dim := len(vecs[0][0])
	const nSites = 5
	seconds := 8 * window

	type scrape struct {
		site int
		time float64
		vecs [server.NumTiers][]float64
		sync bool
	}
	names := make([]string, nSites)
	for i := range names {
		names[i] = fmt.Sprintf("site-%02d", i)
	}

	for seed := int64(1); seed <= 3; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var prog []scrape
		for sec := 1; sec <= seconds; sec++ {
			for s := 0; s < nSites; s++ {
				ev := scrape{site: s, time: float64(sec)}
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					v := vecs[tier][sec%n]
					switch roll := rng.Float64(); {
					case roll < 0.03: // NaN component
						v = append([]float64(nil), v...)
						v[rng.Intn(dim)] = math.NaN()
					case roll < 0.05: // Inf component
						v = append([]float64(nil), v...)
						v[rng.Intn(dim)] = math.Inf(1 - 2*rng.Intn(2))
					case roll < 0.07: // short vector
						v = v[:rng.Intn(dim)]
					case roll < 0.09: // nil vector
						v = nil
					}
					ev.vecs[tier] = v
				}
				switch roll := rng.Float64(); {
				case roll < 0.02: // non-finite scrape timestamp
					if rng.Intn(2) == 0 {
						ev.time = math.NaN()
					} else {
						ev.time = math.Inf(1)
					}
				case roll < 0.04: // rewound scrape
					ev.time = float64(rng.Intn(sec) + 1)
				case roll < 0.06: // duplicated scrape
					prog = append(prog, ev)
				}
				prog = append(prog, ev)
			}
			if rng.Float64() < 0.1 { // mid-stream barrier
				prog = append(prog, scrape{sync: true})
			}
		}

		// Reference: the unsharded pipeline fed tier by tier.
		ref := newRecorder()
		p, err := serve.NewPipeline(mon, ref.config(window))
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range prog {
			if ev.sync {
				continue
			}
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				p.Ingest(serve.Sample{Site: names[ev.site], Tier: tier, Time: ev.time, Values: ev.vecs[tier]})
			}
		}
		p.Flush()
		refStats := scrubLatency(p.Stats())

		for _, sc := range shardConfigs {
			for _, fusedPath := range []bool{false, true} {
				name := fmt.Sprintf("seed=%d/shards=%d/batch=%d/fused=%t", seed, sc.Shards, sc.BatchSize, fusedPath)
				t.Run(name, func(t *testing.T) {
					rec := newRecorder()
					sp, err := serve.NewShardedPipeline(mon, rec.config(window), sc)
					if err != nil {
						t.Fatal(err)
					}
					defer sp.Close()
					refs := make([]serve.SiteRef, nSites)
					for i, nm := range names {
						refs[i] = sp.Register(nm)
					}
					bt := sp.NewBatcher()
					for _, ev := range prog {
						if ev.sync {
							bt.Flush()
							sp.Sync()
							continue
						}
						if fusedPath {
							bt.AddSite(refs[ev.site], ev.time, ev.vecs)
							continue
						}
						for tier := server.TierID(0); tier < server.NumTiers; tier++ {
							bt.Add(refs[ev.site], tier, ev.time, ev.vecs[tier])
						}
					}
					bt.Flush()
					sp.Flush()

					for s := 0; s < nSites; s++ {
						want, got := ref.transcript(names[s]), rec.transcript(names[s])
						if got != want {
							t.Errorf("%s transcript diverged\n--- ingest ---\n%s--- batcher ---\n%s", names[s], want, got)
						}
					}
					if got := scrubLatency(sp.Stats()); !reflect.DeepEqual(got, refStats) {
						t.Errorf("stats diverged\ningest:  %+v\nbatcher: %+v", refStats, got)
					}
					tot := sp.Totals()
					if tot.Enqueued == 0 || tot.Enqueued != tot.Processed {
						t.Errorf("queue slots lost: enqueued %d != processed %d", tot.Enqueued, tot.Processed)
					}
					if tot.RejectedClosed != 0 || tot.RejectedRef != 0 {
						t.Errorf("unexpected rejections: %+v", tot)
					}
					// Slot accounting: a fused slot carries NumTiers samples.
					var ingested uint64
					for _, st := range sp.Stats() {
						ingested += st.SamplesIngested
					}
					want := tot.Processed
					if fusedPath {
						want *= uint64(server.NumTiers)
					}
					if ingested != want {
						t.Errorf("site counters absorb %d samples from %d slots (fused=%t)", ingested, tot.Processed, fusedPath)
					}
				})
			}
		}
	}
}
