package serve_test

import (
	"errors"
	"testing"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/serve"
)

// checkRejected asserts every error wraps core.ErrBadConfig.
func checkRejected(t *testing.T, name string, errs []error) {
	t.Helper()
	if len(errs) == 0 {
		t.Fatalf("%s not rejected", name)
	}
	for _, err := range errs {
		if !errors.Is(err, core.ErrBadConfig) {
			t.Errorf("%s: error %v does not wrap ErrBadConfig", name, err)
		}
	}
}

func TestServeConfigValidate(t *testing.T) {
	if errs := serve.DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (serve.Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
	// Clamped fields validate: negatives are documented shorthands.
	ok := serve.Config{Window: 30, StalenessBudget: -1, RecoverWindows: -1}
	if errs := ok.Validate(); len(errs) > 0 {
		t.Fatalf("clamped config rejected: %v", errs)
	}
	checkRejected(t, "negative window", serve.Config{Window: -30}.Validate())
}

func TestShardConfigValidate(t *testing.T) {
	if errs := serve.DefaultShardConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultShardConfig invalid: %v", errs)
	}
	if errs := (serve.ShardConfig{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero ShardConfig invalid after defaults: %v", errs)
	}
	tests := []struct {
		name string
		cfg  serve.ShardConfig
	}{
		{"negative shards", serve.ShardConfig{Shards: -1}},
		{"too many shards", serve.ShardConfig{Shards: serve.MaxShards + 1}},
		{"negative batch", serve.ShardConfig{BatchSize: -1}},
		{"negative queue", serve.ShardConfig{QueueCapacity: -1}},
		{"queue over cap", serve.ShardConfig{QueueCapacity: serve.MaxQueueCapacity + 1}},
		{"queue below batch", serve.ShardConfig{BatchSize: 128, QueueCapacity: 64}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkRejected(t, tt.name, tt.cfg.Validate())
		})
	}
}

func TestListenConfigValidate(t *testing.T) {
	if errs := serve.DefaultListenConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultListenConfig invalid: %v", errs)
	}
	if errs := (serve.ListenConfig{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero ListenConfig invalid after defaults: %v", errs)
	}
	tests := []struct {
		name string
		cfg  serve.ListenConfig
	}{
		{"negative frame bytes", serve.ListenConfig{MaxFrameBytes: -1}},
		{"negative read timeout", serve.ListenConfig{ReadTimeout: -time.Second}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			checkRejected(t, tt.name, tt.cfg.Validate())
		})
	}
}
