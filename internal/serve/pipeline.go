package serve

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"hpcap/internal/core"
	"hpcap/internal/fuse"
	"hpcap/internal/metrics"
	"hpcap/internal/server"
)

// Pipeline fans a stream of per-tier 1-second samples out across per-site
// monitor sessions and publishes per-window decisions. All methods are
// safe for concurrent use; samples for different sites proceed in
// parallel, samples for one site serialize on that site's state.
type Pipeline struct {
	monitor *core.Monitor
	cfg     Config
	dim     int
	// fuseFloor is the resolved confidence floor when cfg.Fuse is set
	// (the raw config may carry zero meaning "default").
	fuseFloor float64

	mu    sync.RWMutex
	sites map[string]*site
	subs  []chan Decision
}

// site is the serving state of one monitored site.
type site struct {
	name string

	mu   sync.Mutex
	sess *core.Session
	agg  [server.NumTiers]*metrics.Aggregator
	// pending holds, by value, the tiers whose current window already
	// completed; pendingSet marks which entries are live.
	pending    [server.NumTiers]metrics.Sample
	pendingSet [server.NumTiers]bool
	lastTime   [server.NumTiers]float64
	started    bool
	cur        int64 // current window index
	stats      SiteStats
	// cleanStreak counts consecutive clean decided windows, the recovery
	// clock of the degradation ladder; events holds transitions awaiting
	// publication outside the lock.
	cleanStreak int
	events      []HealthEvent
	// fusers de-noise each tier's stream when Config.Fuse is set (nil
	// entries otherwise); confSum/confN accumulate the open window's
	// per-sample confidence, consumed by decide.
	fusers  [server.NumTiers]*fuse.Fuser
	confSum float64
	confN   int

	overloaded atomic.Bool
	// health mirrors stats.Health for lock-free reads (admission valve).
	health atomic.Int32
}

// NewPipeline builds a serving pipeline over a trained monitor.
func NewPipeline(m *core.Monitor, cfg Config) (*Pipeline, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: %w: nil monitor", core.ErrBadConfig)
	}
	if m.Coordinator() == nil {
		return nil, fmt.Errorf("serve: %w", core.ErrUntrained)
	}
	if m.InputDim() <= 0 {
		return nil, fmt.Errorf("serve: %w: monitor has no metric layout", core.ErrBadConfig)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	p := &Pipeline{
		monitor: m,
		cfg:     cfg,
		dim:     m.InputDim(),
		sites:   make(map[string]*site),
	}
	if cfg.Fuse != nil {
		// Build one prototype to resolve the config's zero fields (the
		// floor in particular); Validate already accepted it above.
		proto, err := fuse.New(*cfg.Fuse, p.dim)
		if err != nil {
			return nil, err
		}
		p.fuseFloor = proto.Config().ConfidenceFloor
	}
	return p, nil
}

// Window returns the effective aggregation window in seconds.
func (p *Pipeline) Window() int { return p.cfg.Window }

// site returns the state for a site name, creating it on first use.
func (p *Pipeline) getSite(name string) *site {
	p.mu.RLock()
	st, ok := p.sites[name]
	p.mu.RUnlock()
	if ok {
		return st
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok = p.sites[name]; ok {
		return st
	}
	st = &site{name: name, sess: p.monitor.NewSession()}
	st.stats.LastSwapSeq = -1
	st.stats.LastDecisionSeq = -1
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		agg, err := metrics.NewValuesAggregator(p.dim, p.cfg.Window)
		if err != nil {
			// Window and dim were validated in NewPipeline; this cannot happen.
			panic(err)
		}
		st.agg[tier] = agg
		if p.cfg.Fuse != nil {
			f, err := fuse.New(*p.cfg.Fuse, p.dim)
			if err != nil {
				// The fuse config was validated in NewPipeline; this cannot happen.
				panic(err)
			}
			st.fusers[tier] = f
		}
	}
	st.stats.Site = name
	p.sites[name] = st
	return st
}

// maxWindowIndex caps the absolute window index: beyond it the int64
// conversion of the float quotient would overflow into
// implementation-defined territory. A stream can only reach it with an
// absurd (but finite) timestamp, which then just reads as a gigantic gap.
const maxWindowIndex = int64(1) << 60

// windowIndex maps a sample time to its absolute window: index w covers
// times in (w·W, (w+1)·W], matching the batch aggregation, whose windows
// end on multiples of W. Callers have already rejected non-finite times.
// Shared with the sharded engine so both paths window identically.
func windowIndex(t float64, window int) int64 {
	w := math.Ceil(t / float64(window))
	if !(w > 1) {
		return 0
	}
	if w >= float64(maxWindowIndex) {
		return maxWindowIndex
	}
	return int64(w) - 1
}

func (p *Pipeline) windowIndex(t float64) int64 { return windowIndex(t, p.cfg.Window) }

// Ingest feeds one sample. It never panics and never rejects the stream:
// malformed input (unknown tier, wrong dimension, NaN/Inf values or
// timestamps, late or duplicate timestamps) is skipped and counted on the
// site's stats, and a sample that opens a new window first closes the
// previous one under the staleness budget.
func (p *Pipeline) Ingest(s Sample) {
	st := p.getSite(s.Site)
	st.mu.Lock()
	d := p.ingestLocked(st, s)
	evs := st.takeEvents()
	st.mu.Unlock()
	if d != nil {
		p.publish(st, *d)
	}
	p.publishHealth(evs)
}

// setHealth moves the site to a new degradation state, counting the edge
// and queueing the event for publication after the lock is released. A
// same-state call is a no-op. Callers hold st.mu.
func (st *site) setHealth(to Health, seq int64) {
	from := st.stats.Health
	if from == to {
		return
	}
	st.stats.HealthTransitions[from][to]++
	st.stats.Health = to
	st.health.Store(int32(to))
	st.events = append(st.events, HealthEvent{Site: st.name, From: from, To: to, Seq: seq})
}

// takeEvents drains the queued health transitions. Callers hold st.mu.
func (st *site) takeEvents() []HealthEvent {
	evs := st.events
	st.events = nil
	return evs
}

// publishHealth fires the health callback for each drained transition, in
// order, outside all locks.
func (p *Pipeline) publishHealth(evs []HealthEvent) {
	if p.cfg.OnHealth == nil {
		return
	}
	for _, ev := range evs {
		p.cfg.OnHealth(ev)
	}
}

// ingestLocked is Ingest under st.mu; it returns the decision the sample
// triggered, if any, for publication outside the lock.
func (p *Pipeline) ingestLocked(st *site, s Sample) *Decision {
	st.stats.SamplesIngested++
	if s.Tier < 0 || s.Tier >= server.NumTiers || len(s.Values) != p.dim {
		st.stats.SamplesBadShape++
		return nil
	}
	if math.IsNaN(s.Time) || math.IsInf(s.Time, 0) {
		// A non-finite timestamp cannot be windowed (the float→int64
		// conversion is implementation-defined); treat it like a NaN value.
		st.stats.SamplesBadValue++
		return nil
	}
	if st.fusers[0] == nil {
		// Without fusion a NaN/Inf component voids the sample. The fusion
		// stage instead accepts it and imputes the bad components, so the
		// scan is skipped: losing a whole vector to one wrapped counter is
		// exactly the noise the fuser exists to absorb.
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				st.stats.SamplesBadValue++
				return nil
			}
		}
	}

	wi := p.windowIndex(s.Time)
	if !st.started {
		st.started = true
		st.cur = wi
	}
	var out *Decision
	if wi > st.cur {
		out = p.closeCurrent(st)
		// Windows the stream skipped entirely are dropped unseen.
		if gap := wi - st.cur - 1; gap > 0 {
			st.stats.WindowsDropped += uint64(gap)
			p.resetSession(st)
		}
		st.cur = wi
	} else if wi < st.cur {
		st.stats.SamplesLate++
		return out
	}
	if s.Time <= st.lastTime[s.Tier] || st.pendingSet[s.Tier] {
		// Duplicate or rewound timestamp, or a tier sending more than
		// Window samples into one window.
		st.stats.SamplesLate++
		return out
	}
	st.lastTime[s.Tier] = s.Time
	values := s.Values
	if f := st.fusers[s.Tier]; f != nil {
		// Fuse after the late/dup checks so rejected samples never mutate
		// filter state; the aggregator reads the fuser-owned buffer before
		// the next Fuse call overwrites it.
		r := f.Fuse(s.Values)
		st.stats.SamplesFused++
		st.stats.FuseImputed += uint64(r.Imputed)
		st.stats.FuseGated += uint64(r.Gated)
		st.confSum += r.Confidence
		st.confN++
		values = r.Values
	}
	sample, done := st.agg[s.Tier].PushValues(s.Time, values)
	if !done {
		return out
	}
	st.pending[s.Tier] = sample
	st.pendingSet[s.Tier] = true
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if !st.pendingSet[tier] {
			return out
		}
	}
	// Clean window: every tier delivered all its samples.
	var vecs [server.NumTiers]metrics.Sample
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = st.pending[tier]
		st.pending[tier] = metrics.Sample{}
		st.pendingSet[tier] = false
	}
	seq := st.cur
	st.cur++
	return p.decide(st, vecs, 0, seq)
}

// closeCurrent force-closes the site's in-progress window: tiers that
// completed contribute their full mean, the rest are flushed to a partial
// mean. Inside the staleness budget the window is decided degraded;
// beyond it the window is dropped and the temporal history reset.
func (p *Pipeline) closeCurrent(st *site) *Decision {
	missing, worst, held := 0, 0, 0
	var vecs [server.NumTiers]metrics.Sample
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if st.pendingSet[tier] {
			vecs[tier] = st.pending[tier]
			st.pending[tier] = metrics.Sample{}
			st.pendingSet[tier] = false
			held += p.cfg.Window
			continue
		}
		sample, n := st.agg[tier].Flush()
		vecs[tier] = sample
		held += n
		miss := p.cfg.Window - n
		missing += miss
		if miss > worst {
			worst = miss
		}
	}
	if worst == 0 {
		// All tiers complete; the closing sample arrived exactly at the
		// next boundary.
		return p.decide(st, vecs, 0, st.cur)
	}
	if worst > p.cfg.StalenessBudget {
		st.stats.WindowsDropped++
		// The samples the dropped window had absorbed never reach a
		// decision; account for them so ingested = decided + skipped.
		st.stats.SamplesGapReset += uint64(held)
		// The stream went stale: clear the temporal history as the
		// paper prescribes after long gaps.
		p.resetSession(st)
		return nil
	}
	return p.decide(st, vecs, missing, st.cur)
}

// resetSession clears a site's temporal history after a stream gap and
// fails the admission valve open: with no fresh decision, the site must
// not keep shedding load on a stale overload verdict. The site drops to
// the bottom of the degradation ladder.
func (p *Pipeline) resetSession(st *site) {
	st.sess.ResetHistory()
	st.stats.SessionResets++
	st.overloaded.Store(false)
	st.cleanStreak = 0
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		if st.fusers[tier] != nil {
			st.fusers[tier].Reset()
		}
	}
	st.confSum, st.confN = 0, 0
	st.setHealth(HealthStale, st.cur)
}

// decide predicts on one assembled window (absolute index seq) and builds
// the Decision.
func (p *Pipeline) decide(st *site, vecs [server.NumTiers]metrics.Sample, missing int, seq int64) *Decision {
	// Consume the window's fusion-confidence accumulator up front so even
	// a prediction error leaves the next window a clean slate.
	conf, lowConf := 1.0, false
	if st.fusers[0] != nil {
		if st.confN > 0 {
			conf = st.confSum / float64(st.confN)
		}
		st.confSum, st.confN = 0, 0
		lowConf = conf < p.fuseFloor
	}
	obs := core.Observation{}
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		obs.Vectors[tier] = vecs[tier].Values
		if vecs[tier].Time > obs.Time {
			obs.Time = vecs[tier].Time
		}
	}
	start := time.Now()
	pred, err := st.sess.Predict(obs)
	lat := uint64(time.Since(start))
	st.stats.PredictNanos += lat
	if lat > st.stats.PredictMaxNanos {
		st.stats.PredictMaxNanos = lat
	}
	if err != nil {
		st.stats.PredictErrors++
		return nil
	}
	st.stats.WindowsDecided++
	if st.fusers[0] != nil {
		st.stats.FuseConfidence = conf
	}
	if lowConf {
		st.stats.WindowsLowConfidence++
	}
	if missing > 0 || lowConf {
		if missing > 0 {
			st.stats.WindowsDegraded++
		}
		st.cleanStreak = 0
		st.setHealth(HealthDegraded, seq)
	} else {
		st.cleanStreak++
		if st.stats.Health != HealthHealthy && st.cleanStreak >= p.cfg.RecoverWindows {
			st.setHealth(HealthHealthy, seq)
		}
	}
	if pred.Overload {
		st.stats.Overloads++
	}
	for _, bit := range pred.GPV {
		if bit != pred.GPV[0] {
			st.stats.GPVDisagreements++
			break
		}
	}
	st.overloaded.Store(pred.Overload)
	st.stats.LastDecisionSeq = seq
	st.stats.LastDecisionTime = obs.Time
	return &Decision{
		Site:          st.name,
		Seq:           seq,
		Time:          obs.Time,
		Prediction:    pred,
		Degraded:      missing > 0,
		Missing:       missing,
		Vectors:       obs.Vectors,
		ModelVersion:  st.stats.ModelVersion,
		Confidence:    conf,
		LowConfidence: lowConf,
	}
}

// SwapMonitor atomically replaces the model serving one site: the site's
// session is re-bound to a fresh session of m under the site lock, so the
// in-progress window and its half-aggregated samples are preserved and
// every pending window is decided by the new model — the swap drops
// nothing. The new session starts with empty temporal history (the h-bit
// window of the old model's verdicts does not transfer). Sites created
// after the swap still serve the pipeline's original monitor.
func (p *Pipeline) SwapMonitor(siteName string, m *core.Monitor, version int64) (SwapEvent, error) {
	if m == nil || m.Coordinator() == nil {
		return SwapEvent{}, fmt.Errorf("serve: swap %s: %w", siteName, core.ErrUntrained)
	}
	if m.InputDim() != p.dim {
		return SwapEvent{}, fmt.Errorf("serve: swap %s: %w: model dim %d, pipeline dim %d",
			siteName, core.ErrDimensionMismatch, m.InputDim(), p.dim)
	}
	st := p.getSite(siteName)
	st.mu.Lock()
	st.sess = m.NewSession()
	ev := SwapEvent{
		Site:        siteName,
		Version:     version,
		PrevVersion: st.stats.ModelVersion,
		Seq:         st.cur,
	}
	st.stats.ModelVersion = version
	st.stats.ModelSwaps++
	st.stats.LastSwapSeq = st.cur
	st.mu.Unlock()
	if p.cfg.OnSwap != nil {
		p.cfg.OnSwap(ev)
	}
	return ev, nil
}

// NoteDrift records n drift detections against a site's counters — the
// lifecycle manager reports signals here so they surface alongside the
// serving metrics.
func (p *Pipeline) NoteDrift(siteName string, n int) {
	if n <= 0 {
		return
	}
	st := p.getSite(siteName)
	st.mu.Lock()
	st.stats.DriftSignals += uint64(n)
	st.mu.Unlock()
}

// NoteScale records one autoscaling action against a site's counters: the
// pool at tier slot now runs replicas replicas, after a scale-up (up) or
// scale-down. The registry's Autoscaler reports its actions here so
// capacity changes surface alongside the serving metrics. Out-of-range
// slots are ignored.
func (p *Pipeline) NoteScale(siteName string, slot server.TierID, replicas int, up bool) {
	if slot < 0 || slot >= server.NumTiers {
		return
	}
	st := p.getSite(siteName)
	st.mu.Lock()
	if up {
		st.stats.ScaleUps++
	} else {
		st.stats.ScaleDowns++
	}
	st.stats.PoolReplicas[slot] = replicas
	st.mu.Unlock()
}

// Flush force-closes every site's in-progress window (end of stream),
// emitting whatever decisions the staleness budget allows.
func (p *Pipeline) Flush() {
	p.mu.RLock()
	sites := make([]*site, 0, len(p.sites))
	for _, st := range p.sites {
		sites = append(sites, st)
	}
	p.mu.RUnlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	for _, st := range sites {
		st.mu.Lock()
		var d *Decision
		open := false
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			if st.agg[tier].Count() > 0 || st.pendingSet[tier] {
				open = true
			}
		}
		if st.started && open {
			d = p.closeCurrent(st)
			st.cur++
		}
		evs := st.takeEvents()
		st.mu.Unlock()
		if d != nil {
			p.publish(st, *d)
		}
		p.publishHealth(evs)
	}
}

// publish hands one decision to the synchronous callback and every
// channel subscriber. Slow subscribers lose decisions (counted) rather
// than stalling ingestion.
func (p *Pipeline) publish(st *site, d Decision) {
	if p.cfg.OnDecision != nil {
		p.cfg.OnDecision(d)
	}
	p.mu.RLock()
	subs := p.subs
	p.mu.RUnlock()
	dropped := 0
	for _, ch := range subs {
		select {
		case ch <- d:
		default:
			dropped++
		}
	}
	if dropped > 0 {
		st.mu.Lock()
		st.stats.DecisionsDropped += uint64(dropped)
		st.mu.Unlock()
	}
}

// Subscribe registers a decision channel with the given buffer depth and
// returns it with a cancel function. Decisions that would block a full
// subscriber are dropped and counted on the emitting site.
func (p *Pipeline) Subscribe(buffer int) (<-chan Decision, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Decision, buffer)
	p.mu.Lock()
	p.subs = append(p.subs, ch)
	p.mu.Unlock()
	cancel := func() {
		p.mu.Lock()
		for i, c := range p.subs {
			if c == ch {
				p.subs = append(p.subs[:i], p.subs[i+1:]...)
				break
			}
		}
		p.mu.Unlock()
	}
	return ch, cancel
}

// Overloaded reports the most recent decision's overload verdict for a
// site (false before the first decision).
func (p *Pipeline) Overloaded(siteName string) bool {
	return p.getSite(siteName).overloaded.Load()
}

// AdmissionValve returns a server.AdmissionFunc driven by the site's
// latest decision: everything is admitted while the monitor predicts
// underload; under predicted overload only a short pipeline is kept —
// requests are admitted while the wait queue is empty and fewer than
// maxBound workers are busy. While the site is stale (a tier outage or
// stream gap dropped a window), the valve fails open regardless of the
// last verdict: shedding load on a decision the fault already invalidated
// would amplify the outage. Install it with Testbed.SetAdmission to close
// the measurement→control loop.
func (p *Pipeline) AdmissionValve(siteName string, maxBound int) server.AdmissionFunc {
	st := p.getSite(siteName)
	return func(as server.AdmissionState) bool {
		if Health(st.health.Load()) == HealthStale {
			return true
		}
		if !st.overloaded.Load() {
			return true
		}
		return as.WaitQueue == 0 && as.BoundWorkers < maxBound
	}
}

// SiteStats returns a snapshot of one site's counters.
func (p *Pipeline) SiteStats(siteName string) (SiteStats, bool) {
	p.mu.RLock()
	st, ok := p.sites[siteName]
	p.mu.RUnlock()
	if !ok {
		return SiteStats{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.stats, true
}

// Stats snapshots every site's counters, ordered by site name.
func (p *Pipeline) Stats() []SiteStats {
	p.mu.RLock()
	sites := make([]*site, 0, len(p.sites))
	for _, st := range p.sites {
		sites = append(sites, st)
	}
	p.mu.RUnlock()
	sort.Slice(sites, func(i, j int) bool { return sites[i].name < sites[j].name })
	out := make([]SiteStats, len(sites))
	for i, st := range sites {
		st.mu.Lock()
		out[i] = st.stats
		st.mu.Unlock()
	}
	return out
}
