package serve

import (
	"fmt"
	"io"
)

// promMetric describes one exported counter/gauge over all sites.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(SiteStats) float64
}

var promMetrics = []promMetric{
	{"capserved_samples_ingested_total", "counter", "Samples offered to the pipeline, good or bad.",
		func(s SiteStats) float64 { return float64(s.SamplesIngested) }},
	{"capserved_samples_late_total", "counter", "Samples skipped as late, duplicate, or out of order.",
		func(s SiteStats) float64 { return float64(s.SamplesLate) }},
	{"capserved_samples_bad_value_total", "counter", "Samples skipped for NaN/Inf components.",
		func(s SiteStats) float64 { return float64(s.SamplesBadValue) }},
	{"capserved_samples_bad_shape_total", "counter", "Samples skipped for wrong dimension or tier.",
		func(s SiteStats) float64 { return float64(s.SamplesBadShape) }},
	{"capserved_windows_decided_total", "counter", "Windows that produced a decision.",
		func(s SiteStats) float64 { return float64(s.WindowsDecided) }},
	{"capserved_windows_degraded_total", "counter", "Windows decided from a partial mean.",
		func(s SiteStats) float64 { return float64(s.WindowsDegraded) }},
	{"capserved_windows_dropped_total", "counter", "Windows dropped over the staleness budget.",
		func(s SiteStats) float64 { return float64(s.WindowsDropped) }},
	{"capserved_overloads_total", "counter", "Decisions that predicted overload.",
		func(s SiteStats) float64 { return float64(s.Overloads) }},
	{"capserved_gpv_disagreements_total", "counter", "Decided windows whose synopses disagreed.",
		func(s SiteStats) float64 { return float64(s.GPVDisagreements) }},
	{"capserved_predict_errors_total", "counter", "Monitor rejections of an assembled window.",
		func(s SiteStats) float64 { return float64(s.PredictErrors) }},
	{"capserved_decisions_dropped_total", "counter", "Decisions lost to full subscriber buffers.",
		func(s SiteStats) float64 { return float64(s.DecisionsDropped) }},
	{"capserved_prediction_seconds_total", "counter", "Cumulative prediction latency.",
		func(s SiteStats) float64 { return float64(s.PredictNanos) / 1e9 }},
	{"capserved_prediction_max_seconds", "gauge", "Largest single prediction latency.",
		func(s SiteStats) float64 { return float64(s.PredictMaxNanos) / 1e9 }},
	{"capserved_gpv_disagreement_rate", "gauge", "Fraction of decided windows with a split synopsis vote.",
		func(s SiteStats) float64 { return s.DisagreementRate() }},
}

// WriteMetrics renders every site's serving counters in Prometheus text
// exposition format. Sites appear as a label, ordered by name; scraping
// is allowed at any time and sees a consistent per-site snapshot.
func (p *Pipeline) WriteMetrics(w io.Writer) error {
	stats := p.Stats()
	for _, m := range promMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		for _, s := range stats {
			// %q escapes exactly what the exposition format requires
			// of a label value (backslash, quote, newline).
			if _, err := fmt.Fprintf(w, "%s{site=%q} %g\n", m.name, s.Site, m.value(s)); err != nil {
				return err
			}
		}
	}
	return nil
}
