package serve

import (
	"fmt"
	"io"

	"hpcap/internal/server"
)

// promMetric describes one exported counter/gauge over all sites.
type promMetric struct {
	name  string
	kind  string // "counter" or "gauge"
	help  string
	value func(SiteStats) float64
}

var promMetrics = []promMetric{
	{"capserved_samples_ingested_total", "counter", "Samples offered to the pipeline, good or bad.",
		func(s SiteStats) float64 { return float64(s.SamplesIngested) }},
	{"capserved_windows_decided_total", "counter", "Windows that produced a decision.",
		func(s SiteStats) float64 { return float64(s.WindowsDecided) }},
	{"capserved_windows_degraded_total", "counter", "Windows decided from a partial mean.",
		func(s SiteStats) float64 { return float64(s.WindowsDegraded) }},
	{"capserved_windows_dropped_total", "counter", "Windows dropped over the staleness budget.",
		func(s SiteStats) float64 { return float64(s.WindowsDropped) }},
	{"capserved_overloads_total", "counter", "Decisions that predicted overload.",
		func(s SiteStats) float64 { return float64(s.Overloads) }},
	{"capserved_gpv_disagreements_total", "counter", "Decided windows whose synopses disagreed.",
		func(s SiteStats) float64 { return float64(s.GPVDisagreements) }},
	{"capserved_predict_errors_total", "counter", "Monitor rejections of an assembled window.",
		func(s SiteStats) float64 { return float64(s.PredictErrors) }},
	{"capserved_decisions_dropped_total", "counter", "Decisions lost to full subscriber buffers.",
		func(s SiteStats) float64 { return float64(s.DecisionsDropped) }},
	{"capserved_prediction_seconds_total", "counter", "Cumulative prediction latency.",
		func(s SiteStats) float64 { return float64(s.PredictNanos) / 1e9 }},
	{"capserved_prediction_max_seconds", "gauge", "Largest single prediction latency.",
		func(s SiteStats) float64 { return float64(s.PredictMaxNanos) / 1e9 }},
	{"capserved_gpv_disagreement_rate", "gauge", "Fraction of decided windows with a split synopsis vote.",
		func(s SiteStats) float64 { return s.DisagreementRate() }},
	{"capserved_session_resets_total", "counter", "Temporal-history resets after stream gaps.",
		func(s SiteStats) float64 { return float64(s.SessionResets) }},
	{"capserved_model_swaps_total", "counter", "Model hot-swaps applied.",
		func(s SiteStats) float64 { return float64(s.ModelSwaps) }},
	{"capserved_drift_signals_total", "counter", "Drift detections reported against the site.",
		func(s SiteStats) float64 { return float64(s.DriftSignals) }},
	{"capserved_model_version", "gauge", "Active model version (0 = initial).",
		func(s SiteStats) float64 { return float64(s.ModelVersion) }},
	{"capserved_last_swap_window", "gauge", "First window decided by the active model (-1 before any swap).",
		func(s SiteStats) float64 { return float64(s.LastSwapSeq) }},
	{"capserved_health_state", "gauge", "Degradation-ladder position: 0 healthy, 1 degraded, 2 stale.",
		func(s SiteStats) float64 { return float64(s.Health) }},
}

// fuseMetrics are the counter-fusion families, rendered only when the
// pipeline was built with Config.Fuse (their values are structurally
// zero otherwise, and a scrape should not suggest a fusion stage that
// is not there).
var fuseMetrics = []promMetric{
	{"capserved_fuse_samples_total", "counter", "Samples run through the counter-fusion stage.",
		func(s SiteStats) float64 { return float64(s.SamplesFused) }},
	{"capserved_fuse_imputed_total", "counter", "Counter readings replaced by the factor graph or filter prior.",
		func(s SiteStats) float64 { return float64(s.FuseImputed) }},
	{"capserved_fuse_gated_total", "counter", "Readings rejected by the innovation gate.",
		func(s SiteStats) float64 { return float64(s.FuseGated) }},
	{"capserved_fuse_low_confidence_windows_total", "counter", "Decided windows flagged low-confidence.",
		func(s SiteStats) float64 { return float64(s.WindowsLowConfidence) }},
	{"capserved_fuse_confidence", "gauge", "Mean fusion confidence of the most recent decided window.",
		func(s SiteStats) float64 { return s.FuseConfidence }},
}

// skipReasons breaks the skipped-sample count out by cause under one
// metric family with a reason label.
var skipReasons = []struct {
	reason string
	value  func(SiteStats) uint64
}{
	{"nan", func(s SiteStats) uint64 { return s.SamplesBadValue }},
	{"late", func(s SiteStats) uint64 { return s.SamplesLate }},
	{"misshapen", func(s SiteStats) uint64 { return s.SamplesBadShape }},
	{"gap-reset", func(s SiteStats) uint64 { return s.SamplesGapReset }},
}

// WriteMetrics renders every site's serving counters in Prometheus text
// exposition format. Sites appear as a label, ordered by name; scraping
// is allowed at any time and sees a consistent per-site snapshot.
func (p *Pipeline) WriteMetrics(w io.Writer) error {
	return writeSiteMetrics(w, p.Stats(), p.cfg.Fuse != nil, p.cfg)
}

// writeSiteMetrics renders a per-site stats snapshot — shared by the
// single-lock and sharded pipelines. fusing adds the counter-fusion
// families; cfg resolves the pool labels for the autoscaling families,
// which render only when some site has reported a replica count via
// NoteScale (a scrape should not suggest an autoscaler that is not there).
func writeSiteMetrics(w io.Writer, stats []SiteStats, fusing bool, cfg Config) error {
	families := promMetrics
	if fusing {
		families = append(append([]promMetric(nil), promMetrics...), fuseMetrics...)
	}
	for _, m := range families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		for _, s := range stats {
			// %q escapes exactly what the exposition format requires
			// of a label value (backslash, quote, newline).
			if _, err := fmt.Fprintf(w, "%s{site=%q} %g\n", m.name, s.Site, m.value(s)); err != nil {
				return err
			}
		}
	}
	const skipped = "capserved_samples_skipped_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Samples that never reached a decision, by reason.\n# TYPE %s counter\n",
		skipped, skipped); err != nil {
		return err
	}
	for _, s := range stats {
		for _, r := range skipReasons {
			if _, err := fmt.Fprintf(w, "%s{site=%q,reason=%q} %g\n",
				skipped, s.Site, r.reason, float64(r.value(s))); err != nil {
				return err
			}
		}
	}
	scaling := false
	for _, s := range stats {
		for _, n := range s.PoolReplicas {
			if n != 0 {
				scaling = true
			}
		}
	}
	if scaling {
		const replicas = "capserved_pool_replicas"
		if _, err := fmt.Fprintf(w, "# HELP %s Active replicas per pool, as last reported by NoteScale.\n# TYPE %s gauge\n",
			replicas, replicas); err != nil {
			return err
		}
		for _, s := range stats {
			for slot := server.TierID(0); slot < server.NumTiers; slot++ {
				if s.PoolReplicas[slot] == 0 {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{site=%q,pool=%q} %g\n",
					replicas, s.Site, cfg.PoolLabel(slot), float64(s.PoolReplicas[slot])); err != nil {
					return err
				}
			}
		}
		const autoscale = "capserved_autoscale_total"
		if _, err := fmt.Fprintf(w, "# HELP %s Autoscaling actions applied, by direction.\n# TYPE %s counter\n",
			autoscale, autoscale); err != nil {
			return err
		}
		for _, s := range stats {
			if _, err := fmt.Fprintf(w, "%s{site=%q,direction=\"up\"} %g\n%s{site=%q,direction=\"down\"} %g\n",
				autoscale, s.Site, float64(s.ScaleUps),
				autoscale, s.Site, float64(s.ScaleDowns)); err != nil {
				return err
			}
		}
	}
	const transitions = "capserved_health_transitions_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Degradation-state transitions, by edge.\n# TYPE %s counter\n",
		transitions, transitions); err != nil {
		return err
	}
	for _, s := range stats {
		for from := Health(0); from < NumHealthStates; from++ {
			for to := Health(0); to < NumHealthStates; to++ {
				if from == to {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{site=%q,from=%q,to=%q} %g\n",
					transitions, s.Site, from.String(), to.String(),
					float64(s.HealthTransitions[from][to])); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// shardMetric describes one exported counter/gauge over all shards.
type shardMetric struct {
	name  string
	kind  string
	help  string
	value func(ShardStats) float64
}

var shardMetrics = []shardMetric{
	{"capserved_shard_sites", "gauge", "Sites resident on the shard.",
		func(s ShardStats) float64 { return float64(s.Sites) }},
	{"capserved_shard_samples_enqueued_total", "counter", "Samples accepted into the shard's batch queue.",
		func(s ShardStats) float64 { return float64(s.Enqueued) }},
	{"capserved_shard_samples_processed_total", "counter", "Samples applied by the shard goroutine.",
		func(s ShardStats) float64 { return float64(s.Processed) }},
	{"capserved_shard_batches_total", "counter", "Batches drained from the shard queue.",
		func(s ShardStats) float64 { return float64(s.Batches) }},
	{"capserved_shard_queue_stalls_total", "counter", "Full-queue waits producers blocked through.",
		func(s ShardStats) float64 { return float64(s.Stalls) }},
	{"capserved_shard_queue_depth", "gauge", "Samples accepted but not yet applied.",
		func(s ShardStats) float64 { return float64(s.QueueDepth) }},
}

// writeShardMetrics renders the sharded pipeline's queue counters, one
// series per shard.
func writeShardMetrics(w io.Writer, stats []ShardStats) error {
	for _, m := range shardMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		for _, s := range stats {
			if _, err := fmt.Fprintf(w, "%s{shard=\"%d\"} %g\n", m.name, s.Shard, m.value(s)); err != nil {
				return err
			}
		}
	}
	const rejected = "capserved_shard_rejected_total"
	if _, err := fmt.Fprintf(w, "# HELP %s Samples rejected before reaching a shard engine, by reason.\n# TYPE %s counter\n",
		rejected, rejected); err != nil {
		return err
	}
	for _, s := range stats {
		if _, err := fmt.Fprintf(w, "%s{shard=\"%d\",reason=\"closed\"} %g\n%s{shard=\"%d\",reason=\"bad-ref\"} %g\n",
			rejected, s.Shard, float64(s.RejectedClosed),
			rejected, s.Shard, float64(s.RejectedRef)); err != nil {
			return err
		}
	}
	return nil
}
