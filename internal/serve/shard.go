package serve

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"hpcap/internal/core"
	"hpcap/internal/server"
)

// MaxShards bounds the shard fan-out; MaxQueueCapacity bounds the
// samples a single shard may buffer (a queue beyond it only hides
// backpressure the producer should be feeling).
const (
	MaxShards        = 256
	MaxQueueCapacity = 1 << 20
)

// ShardConfig tunes the sharded ingest fan-out.
type ShardConfig struct {
	// Shards is how many independent ingest shards (each with its own
	// goroutine, batch queue, and site table) the pipeline runs. Sites
	// hash to shards by name (SiteShard). Zero selects 8; the maximum is
	// MaxShards.
	Shards int
	// BatchSize is how many samples a producer accumulates per shard
	// before handing the batch to the shard goroutine. Larger batches
	// amortize the queue handoff; smaller ones cut decision latency.
	// Zero selects 64.
	BatchSize int
	// QueueCapacity bounds the samples buffered in a shard's queue
	// (rounded down to whole batches, at least one). A producer hitting
	// a full queue blocks — backpressure, counted as a stall — rather
	// than dropping samples. Zero selects 4096; it must not be smaller
	// than BatchSize.
	QueueCapacity int
}

// DefaultShardConfig returns the defaults Validate and the pipeline
// resolve zero fields to.
func DefaultShardConfig() ShardConfig {
	return ShardConfig{Shards: 8, BatchSize: 64, QueueCapacity: 4096}
}

// normalize resolves zero fields to DefaultShardConfig.
func (c ShardConfig) normalize() ShardConfig {
	d := DefaultShardConfig()
	if c.Shards == 0 {
		c.Shards = d.Shards
	}
	if c.BatchSize == 0 {
		c.BatchSize = d.BatchSize
	}
	if c.QueueCapacity == 0 {
		c.QueueCapacity = d.QueueCapacity
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping core.ErrBadConfig. It never panics.
func (c ShardConfig) Validate() []error {
	c = c.normalize()
	var errs []error
	if c.Shards < 0 || c.Shards > MaxShards {
		errs = append(errs, fmt.Errorf("serve: %w: shards %d outside 1..%d", core.ErrBadConfig, c.Shards, MaxShards))
	}
	if c.BatchSize < 0 {
		errs = append(errs, fmt.Errorf("serve: %w: batch size %d must be positive", core.ErrBadConfig, c.BatchSize))
	}
	if c.QueueCapacity < 0 || c.QueueCapacity > MaxQueueCapacity {
		errs = append(errs, fmt.Errorf("serve: %w: queue capacity %d outside 1..%d",
			core.ErrBadConfig, c.QueueCapacity, MaxQueueCapacity))
	}
	if c.QueueCapacity >= 0 && c.BatchSize >= 0 && c.QueueCapacity < c.BatchSize {
		errs = append(errs, fmt.Errorf("serve: %w: queue capacity %d below batch size %d",
			core.ErrBadConfig, c.QueueCapacity, c.BatchSize))
	}
	return errs
}

// withDefaults resolves zero fields and bounds-checks the rest.
func (c ShardConfig) withDefaults() (ShardConfig, error) {
	if errs := c.Validate(); len(errs) > 0 {
		return c, errors.Join(errs...)
	}
	return c.normalize(), nil
}

// SiteShard routes a site name to its shard: FNV-1a over the name, mod
// the shard count. The routing is a pure function of the name, so it is
// stable across registrations, restarts, and pipelines (the lifecycle
// manager stripes its own site table with the same function).
func SiteShard(site string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// SiteRef is a pre-routed handle to one site of a ShardedPipeline,
// resolved once by Register: the ref-based ingest path skips the
// per-sample hash and site-table lookup entirely. The zero SiteRef is
// invalid; feeding one to IngestRef is counted as a rejected ref.
type SiteRef struct {
	shard int32
	index int32 // dense index + 1; 0 marks the invalid zero value
}

// Valid reports whether the ref came from Register.
func (r SiteRef) Valid() bool { return r.index > 0 }

// qsample is one queued sample: a Sample with its site either still a
// name (resolved by the shard goroutine) or a pre-resolved dense index.
type qsample struct {
	site   string
	idx    int32 // dense index + 1 when pre-resolved; 0 = resolve by name
	tier   server.TierID
	fused  bool // one scrape carrying every tier's vector in vecs
	time   float64
	values []float64
	vecs   [server.NumTiers][]float64
}

// shard is one ingest lane: a producer-side pending batch, a bounded
// queue of batches, and the dense engine its goroutine applies them to.
type shard struct {
	id int

	mu      sync.Mutex // producer side: pending batch + closed flag
	pending []qsample
	closed  bool

	ch   chan []qsample
	free chan []qsample // recycled batch buffers (zero-alloc steady state)

	emu sync.Mutex // engine state: held while a batch or snapshot is applied
	eng *engine

	enqueued  atomic.Uint64 // samples accepted into the queue
	processed atomic.Uint64 // samples applied by the shard goroutine
	batches   atomic.Uint64
	stalls    atomic.Uint64 // full-queue waits producers blocked through
	rejected  atomic.Uint64 // samples offered after Close
	badRefs   atomic.Uint64 // unresolvable SiteRefs

	syncMu   sync.Mutex
	syncCond *sync.Cond
}

// ShardedPipeline is the fleet-scale serving pipeline: sites hash to
// shards, each shard runs its own goroutine over a bounded batch queue
// and a dense engine, and per-shard counters merge only at snapshot
// time — steady-state ingest never takes a global lock.
//
// Per-site decision and health-event streams are byte-identical to
// Pipeline's for the same per-site sample stream; only cross-site
// interleaving differs. Ingestion is asynchronous: a sample's decision
// appears after its batch is drained. Sync flushes partial batches and
// waits for everything accepted so far to be applied; Flush additionally
// force-closes open windows. Values slices passed to Ingest/IngestRef
// must not be mutated until the sample has been applied (Sync/Flush).
//
// Callbacks (OnDecision, OnHealth, OnSwap) run on shard goroutines,
// outside all pipeline locks, and may call back into the pipeline —
// except Sync, Flush, Close, and SwapMonitor, which wait on the very
// shard goroutine the callback is running on and would self-deadlock.
type ShardedPipeline struct {
	monitor *core.Monitor
	cfg     Config
	scfg    ShardConfig
	dim     int
	shards  []*shard

	subMu sync.RWMutex
	subs  []chan Decision

	badRefs atomic.Uint64 // refs rejected producer-side (bad shard or zero ref)
	wg      sync.WaitGroup
	closed  atomic.Bool
}

// NewShardedPipeline builds a sharded serving pipeline over a trained
// monitor. cfg carries the window/staleness/callback configuration shared
// with NewPipeline; scfg the shard fan-out.
func NewShardedPipeline(m *core.Monitor, cfg Config, scfg ShardConfig) (*ShardedPipeline, error) {
	if m == nil {
		return nil, fmt.Errorf("serve: %w: nil monitor", core.ErrBadConfig)
	}
	if m.Coordinator() == nil {
		return nil, fmt.Errorf("serve: %w", core.ErrUntrained)
	}
	if m.InputDim() <= 0 {
		return nil, fmt.Errorf("serve: %w: monitor has no metric layout", core.ErrBadConfig)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	scfg, err = scfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Lower the monitor once; every shard's engine decides through the
	// same compiled plane (immutable, safe to share).
	cm, err := m.Compile()
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	sp := &ShardedPipeline{
		monitor: m,
		cfg:     cfg,
		scfg:    scfg,
		dim:     m.InputDim(),
		shards:  make([]*shard, scfg.Shards),
	}
	chanCap := scfg.QueueCapacity / scfg.BatchSize
	if chanCap < 1 {
		chanCap = 1
	}
	for i := range sp.shards {
		sh := &shard{
			id:      i,
			pending: make([]qsample, 0, scfg.BatchSize),
			ch:      make(chan []qsample, chanCap),
			free:    make(chan []qsample, chanCap+2),
			eng:     newEngine(cm, cfg, sp.dim),
		}
		sh.syncCond = sync.NewCond(&sh.syncMu)
		sp.shards[i] = sh
		sp.wg.Add(1)
		go sp.drain(sh)
	}
	return sp, nil
}

// Window returns the effective aggregation window in seconds.
func (sp *ShardedPipeline) Window() int { return sp.cfg.Window }

// Shards returns the shard count.
func (sp *ShardedPipeline) Shards() int { return len(sp.shards) }

// drain is one shard's goroutine: apply batches under the shard lock,
// publish the resulting decisions and events outside it, then advance
// the processed watermark (so Sync returns only after publication).
func (sp *ShardedPipeline) drain(sh *shard) {
	defer sp.wg.Done()
	for batch := range sh.ch {
		sh.emu.Lock()
		pubs := sh.eng.processBatch(batch, sh)
		sh.emu.Unlock()
		sp.dispatch(sh, pubs)
		n := uint64(len(batch))
		select {
		case sh.free <- batch[:0]:
		default:
		}
		sh.batches.Add(1)
		sh.processed.Add(n)
		sh.syncMu.Lock()
		sh.syncCond.Broadcast()
		sh.syncMu.Unlock()
	}
}

// dispatch publishes a batch's decisions and health events in generation
// order, outside all pipeline locks. Subscriber overflows are counted
// back onto the emitting sites afterwards.
func (sp *ShardedPipeline) dispatch(sh *shard, pubs []pub) {
	if len(pubs) == 0 {
		return
	}
	var dropCounts map[int32]uint64
	for k := range pubs {
		pb := &pubs[k]
		if pb.isEvent {
			if sp.cfg.OnHealth != nil {
				sp.cfg.OnHealth(pb.ev)
			}
			continue
		}
		if sp.cfg.OnDecision != nil {
			sp.cfg.OnDecision(*pb.d)
		}
		sp.subMu.RLock()
		subs := sp.subs
		sp.subMu.RUnlock()
		dropped := 0
		for _, ch := range subs {
			select {
			case ch <- *pb.d:
			default:
				dropped++
			}
		}
		if dropped > 0 {
			if dropCounts == nil {
				dropCounts = make(map[int32]uint64)
			}
			dropCounts[pb.idx] += uint64(dropped)
		}
	}
	if dropCounts != nil {
		sh.emu.Lock()
		for i, n := range dropCounts {
			sh.eng.stats[i].DecisionsDropped += n
		}
		sh.emu.Unlock()
	}
}

// enqueue appends one sample to the shard's pending batch, flushing it to
// the queue when full. Samples offered after Close are rejected (counted).
func (sp *ShardedPipeline) enqueue(sh *shard, q qsample) {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		sh.rejected.Add(1)
		return
	}
	sh.pending = append(sh.pending, q)
	sh.enqueued.Add(1)
	if len(sh.pending) >= sp.scfg.BatchSize {
		sh.flushLocked()
	}
	sh.mu.Unlock()
}

// flushLocked hands the pending batch to the shard goroutine. A full
// queue blocks the producer (counted as a stall) instead of dropping.
// Callers hold sh.mu; the consumer never takes it, so the send always
// completes.
func (sh *shard) flushLocked() {
	if len(sh.pending) == 0 {
		return
	}
	batch := sh.pending
	select {
	case sh.ch <- batch:
	default:
		sh.stalls.Add(1)
		sh.ch <- batch
	}
	select {
	case buf := <-sh.free:
		sh.pending = buf
	default:
		sh.pending = make([]qsample, 0, cap(batch))
	}
}

// Ingest feeds one sample by site name. Like Pipeline.Ingest it never
// panics and never rejects the stream; the sample is applied when its
// batch drains. The Values slice must not be mutated until then
// (Sync/Flush guarantee it).
func (sp *ShardedPipeline) Ingest(s Sample) {
	sh := sp.shards[SiteShard(s.Site, len(sp.shards))]
	sp.enqueue(sh, qsample{site: s.Site, tier: s.Tier, time: s.Time, values: s.Values})
}

// Register resolves a site to its shard once and returns the handle the
// fast path ingests through, creating the site if needed. Registering
// the same name again returns the same ref.
func (sp *ShardedPipeline) Register(site string) SiteRef {
	shardID := SiteShard(site, len(sp.shards))
	sh := sp.shards[shardID]
	sh.emu.Lock()
	i := sh.eng.site(site)
	sh.emu.Unlock()
	return SiteRef{shard: int32(shardID), index: i + 1}
}

// IngestRef feeds one sample through a registered handle, skipping the
// per-sample hash and site lookup. Invalid refs are counted and dropped.
func (sp *ShardedPipeline) IngestRef(ref SiteRef, tier server.TierID, time float64, values []float64) {
	if ref.index <= 0 || ref.shard < 0 || int(ref.shard) >= len(sp.shards) {
		sp.badRefs.Add(1)
		return
	}
	sp.enqueue(sp.shards[ref.shard], qsample{idx: ref.index, tier: tier, time: time, values: values})
}

// submitBatch hands a producer-built batch straight to the shard queue and
// returns a recycled buffer for the producer to refill. The shard's
// per-sample pending batch is flushed first, so one producer mixing the
// two paths keeps its stream ordered. A full queue blocks (counted as a
// stall); a closed shard counts the whole batch as rejected.
func (sp *ShardedPipeline) submitBatch(sh *shard, batch []qsample) []qsample {
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		sh.rejected.Add(uint64(len(batch)))
		return batch[:0]
	}
	sh.flushLocked()
	sh.enqueued.Add(uint64(len(batch)))
	select {
	case sh.ch <- batch:
	default:
		sh.stalls.Add(1)
		sh.ch <- batch
	}
	sh.mu.Unlock()
	select {
	case buf := <-sh.free:
		return buf[:0]
	default:
		return make([]qsample, 0, sp.scfg.BatchSize)
	}
}

// Batcher accumulates ref-ingested samples into producer-local per-shard
// batches, taking each shard's lock once per BatchSize samples instead of
// once per sample — the fleet-scale hot path. A Batcher serves exactly one
// producer goroutine and its stream is ordered with respect to itself;
// samples stay invisible to the pipeline (and to Sync) until the batch
// fills or Flush is called, so call Flush before ShardedPipeline.Sync,
// Flush, or Close. Do not interleave Batcher.Add with direct
// Ingest/IngestRef calls for the same site: the two paths buffer
// independently and their relative order is fixed only at submit time.
type Batcher struct {
	sp  *ShardedPipeline
	buf [][]qsample
}

// NewBatcher returns an empty Batcher for one producer goroutine.
func (sp *ShardedPipeline) NewBatcher() *Batcher {
	return &Batcher{sp: sp, buf: make([][]qsample, len(sp.shards))}
}

// Add buffers one sample for a registered site. Invalid refs are counted
// and dropped, as IngestRef. The values slice must not be mutated until
// the sample has been applied (Flush + ShardedPipeline.Sync guarantee it).
func (b *Batcher) Add(ref SiteRef, tier server.TierID, time float64, values []float64) {
	s := int(ref.shard)
	if ref.index <= 0 || s < 0 || s >= len(b.buf) {
		b.sp.badRefs.Add(1)
		return
	}
	buf := b.buf[s]
	if buf == nil {
		buf = make([]qsample, 0, b.sp.scfg.BatchSize)
	}
	buf = append(buf, qsample{idx: ref.index, tier: tier, time: time, values: values})
	if len(buf) >= b.sp.scfg.BatchSize {
		buf = b.sp.submitBatch(b.sp.shards[s], buf)
	}
	b.buf[s] = buf
}

// AddSite enqueues one fused site scrape: every tier's vector for one
// timestamp in a single queue slot. The shard applies it exactly as
// NumTiers sequential Add calls in tier order — same counters, same
// windows, same decisions — but the per-sample prolog (queue slot,
// time validation, window index) is paid once per site instead of once
// per tier, which is what makes the 100k-site scale leg go. Values
// ownership follows Add: the engine reads each vector exactly once,
// before the next Sync returns.
func (b *Batcher) AddSite(ref SiteRef, time float64, vecs [server.NumTiers][]float64) {
	s := int(ref.shard)
	if ref.index <= 0 || s < 0 || s >= len(b.buf) {
		b.sp.badRefs.Add(1)
		return
	}
	buf := b.buf[s]
	if buf == nil {
		buf = make([]qsample, 0, b.sp.scfg.BatchSize)
	}
	buf = append(buf, qsample{idx: ref.index, fused: true, time: time, vecs: vecs})
	if len(buf) >= b.sp.scfg.BatchSize {
		buf = b.sp.submitBatch(b.sp.shards[s], buf)
	}
	b.buf[s] = buf
}

// Flush submits every partial batch the Batcher holds.
func (b *Batcher) Flush() {
	for s, buf := range b.buf {
		if len(buf) > 0 {
			b.buf[s] = b.sp.submitBatch(b.sp.shards[s], buf)
		}
	}
}

// waitProcessed blocks until the shard has applied (and published) at
// least target samples.
func (sh *shard) waitProcessed(target uint64) {
	if sh.processed.Load() >= target {
		return
	}
	sh.syncMu.Lock()
	for sh.processed.Load() < target {
		sh.syncCond.Wait()
	}
	sh.syncMu.Unlock()
}

// Sync flushes every shard's partial batch and waits until every sample
// accepted before the call has been applied and its decisions published.
// Do not call it from a pipeline callback (it would wait on the shard
// goroutine running the callback).
func (sp *ShardedPipeline) Sync() {
	targets := make([]uint64, len(sp.shards))
	for i, sh := range sp.shards {
		sh.mu.Lock()
		sh.flushLocked()
		targets[i] = sh.enqueued.Load()
		sh.mu.Unlock()
	}
	for i, sh := range sp.shards {
		sh.waitProcessed(targets[i])
	}
}

// Flush syncs, then force-closes every site's in-progress window (end of
// stream), emitting whatever decisions the staleness budget allows —
// Pipeline.Flush for the sharded path. Not callable from callbacks.
func (sp *ShardedPipeline) Flush() {
	sp.Sync()
	for _, sh := range sp.shards {
		sh.emu.Lock()
		pubs := sh.eng.flushAll()
		sh.emu.Unlock()
		sp.dispatch(sh, pubs)
	}
}

// Close drains every queued sample, then stops the shard goroutines.
// Samples offered afterwards are rejected and counted. Close does not
// force-close open windows — call Flush first for end-of-stream
// decisions. Not callable from callbacks.
func (sp *ShardedPipeline) Close() {
	if !sp.closed.CompareAndSwap(false, true) {
		return
	}
	for _, sh := range sp.shards {
		sh.mu.Lock()
		sh.closed = true
		sh.flushLocked()
		sh.mu.Unlock()
		close(sh.ch)
	}
	sp.wg.Wait()
}

// SwapMonitor atomically replaces the model serving one site, with
// Pipeline.SwapMonitor's semantics. The owning shard is quiesced first,
// so the swap takes effect after every sample accepted for the site
// before the call — the swap's stream position is deterministic. Not
// callable from callbacks.
func (sp *ShardedPipeline) SwapMonitor(siteName string, m *core.Monitor, version int64) (SwapEvent, error) {
	if m == nil || m.Coordinator() == nil {
		return SwapEvent{}, fmt.Errorf("serve: swap %s: %w", siteName, core.ErrUntrained)
	}
	if m.InputDim() != sp.dim {
		return SwapEvent{}, fmt.Errorf("serve: swap %s: %w: model dim %d, pipeline dim %d",
			siteName, core.ErrDimensionMismatch, m.InputDim(), sp.dim)
	}
	sh := sp.shards[SiteShard(siteName, len(sp.shards))]
	sh.mu.Lock()
	sh.flushLocked()
	target := sh.enqueued.Load()
	sh.mu.Unlock()
	sh.waitProcessed(target)

	sh.emu.Lock()
	eng := sh.eng
	i := eng.site(siteName)
	if err := eng.swapSession(i, m); err != nil {
		sh.emu.Unlock()
		return SwapEvent{}, fmt.Errorf("serve: swap %s: %w", siteName, err)
	}
	ss := &eng.stats[i]
	ev := SwapEvent{
		Site:        siteName,
		Version:     version,
		PrevVersion: ss.ModelVersion,
		Seq:         eng.recs[i].cur,
	}
	ss.ModelVersion = version
	ss.ModelSwaps++
	ss.LastSwapSeq = eng.recs[i].cur
	sh.emu.Unlock()
	if sp.cfg.OnSwap != nil {
		sp.cfg.OnSwap(ev)
	}
	return ev, nil
}

// NoteDrift records n drift detections against a site's counters.
func (sp *ShardedPipeline) NoteDrift(siteName string, n int) {
	if n <= 0 {
		return
	}
	sh := sp.shards[SiteShard(siteName, len(sp.shards))]
	sh.emu.Lock()
	sh.eng.stats[sh.eng.site(siteName)].DriftSignals += uint64(n)
	sh.emu.Unlock()
}

// NoteScale records one autoscaling action against a site's counters, as
// Pipeline.NoteScale.
func (sp *ShardedPipeline) NoteScale(siteName string, slot server.TierID, replicas int, up bool) {
	if slot < 0 || slot >= server.NumTiers {
		return
	}
	sh := sp.shards[SiteShard(siteName, len(sp.shards))]
	sh.emu.Lock()
	st := &sh.eng.stats[sh.eng.site(siteName)]
	if up {
		st.ScaleUps++
	} else {
		st.ScaleDowns++
	}
	st.PoolReplicas[slot] = replicas
	sh.emu.Unlock()
}

// flagsOf returns a site's lock-free flag block, creating the site on
// first use (mirroring Pipeline.getSite's create-on-read).
func (sp *ShardedPipeline) flagsOf(siteName string) *siteFlags {
	sh := sp.shards[SiteShard(siteName, len(sp.shards))]
	sh.emu.Lock()
	f := sh.eng.flags[sh.eng.site(siteName)]
	sh.emu.Unlock()
	return f
}

// Overloaded reports the most recent decision's overload verdict for a
// site (false before the first decision).
func (sp *ShardedPipeline) Overloaded(siteName string) bool {
	return sp.flagsOf(siteName).overloaded.Load()
}

// AdmissionValve returns a server.AdmissionFunc driven by the site's
// latest decision, with Pipeline.AdmissionValve's fail-open semantics.
// The valve reads pointer-stable atomics, so it stays lock-free no
// matter how large the shard's site table grows.
func (sp *ShardedPipeline) AdmissionValve(siteName string, maxBound int) server.AdmissionFunc {
	f := sp.flagsOf(siteName)
	return func(as server.AdmissionState) bool {
		if Health(f.health.Load()) == HealthStale {
			return true
		}
		if !f.overloaded.Load() {
			return true
		}
		return as.WaitQueue == 0 && as.BoundWorkers < maxBound
	}
}

// Subscribe registers a decision channel, as Pipeline.Subscribe.
func (sp *ShardedPipeline) Subscribe(buffer int) (<-chan Decision, func()) {
	if buffer < 1 {
		buffer = 1
	}
	ch := make(chan Decision, buffer)
	sp.subMu.Lock()
	sp.subs = append(sp.subs, ch)
	sp.subMu.Unlock()
	cancel := func() {
		sp.subMu.Lock()
		for i, c := range sp.subs {
			if c == ch {
				sp.subs = append(sp.subs[:i], sp.subs[i+1:]...)
				break
			}
		}
		sp.subMu.Unlock()
	}
	return ch, cancel
}

// SiteStats returns a snapshot of one site's counters.
func (sp *ShardedPipeline) SiteStats(siteName string) (SiteStats, bool) {
	sh := sp.shards[SiteShard(siteName, len(sp.shards))]
	sh.emu.Lock()
	defer sh.emu.Unlock()
	i, ok := sh.eng.idx[siteName]
	if !ok {
		return SiteStats{}, false
	}
	return sh.eng.stats[i], true
}

// Stats snapshots every site's counters, merged across shards and
// ordered by site name — the only point where per-shard state meets.
func (sp *ShardedPipeline) Stats() []SiteStats {
	var out []SiteStats
	for _, sh := range sp.shards {
		sh.emu.Lock()
		out = append(out, sh.eng.stats...)
		sh.emu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// ShardStats is a snapshot of one shard's queue and batch counters.
type ShardStats struct {
	Shard            int
	Sites            int
	Enqueued         uint64 // samples accepted into the batch queue
	Processed        uint64 // samples applied by the shard goroutine
	Batches          uint64 // batches drained
	Stalls           uint64 // full-queue waits producers blocked through
	RejectedClosed   uint64 // samples offered after Close
	RejectedRef      uint64 // invalid or unresolvable SiteRefs
	QueueDepth       uint64 // Enqueued - Processed at snapshot time
	DecisionsDropped uint64 // subscriber overflows on the shard's sites
}

// ShardStats snapshots every shard's counters, in shard order.
func (sp *ShardedPipeline) ShardStats() []ShardStats {
	out := make([]ShardStats, len(sp.shards))
	for k, sh := range sp.shards {
		s := ShardStats{
			Shard:          k,
			Processed:      sh.processed.Load(),
			Enqueued:       sh.enqueued.Load(),
			Batches:        sh.batches.Load(),
			Stalls:         sh.stalls.Load(),
			RejectedClosed: sh.rejected.Load(),
			RejectedRef:    sh.badRefs.Load(),
		}
		if s.Enqueued > s.Processed {
			s.QueueDepth = s.Enqueued - s.Processed
		}
		sh.emu.Lock()
		s.Sites = len(sh.eng.recs)
		for i := range sh.eng.stats {
			s.DecisionsDropped += sh.eng.stats[i].DecisionsDropped
		}
		sh.emu.Unlock()
		out[k] = s
	}
	return out
}

// Totals merges the per-shard counters into one snapshot (Shard = -1).
// Producer-side ref rejections, which have no shard, are folded into
// RejectedRef here.
func (sp *ShardedPipeline) Totals() ShardStats {
	t := ShardStats{Shard: -1, RejectedRef: sp.badRefs.Load()}
	for _, s := range sp.ShardStats() {
		t.Sites += s.Sites
		t.Enqueued += s.Enqueued
		t.Processed += s.Processed
		t.Batches += s.Batches
		t.Stalls += s.Stalls
		t.RejectedClosed += s.RejectedClosed
		t.RejectedRef += s.RejectedRef
		t.QueueDepth += s.QueueDepth
		t.DecisionsDropped += s.DecisionsDropped
	}
	return t
}

// WriteMetrics renders the per-site serving counters (as Pipeline) plus
// the per-shard queue families in Prometheus text exposition format.
func (sp *ShardedPipeline) WriteMetrics(w io.Writer) error {
	if err := writeSiteMetrics(w, sp.Stats(), sp.cfg.Fuse != nil, sp.cfg); err != nil {
		return err
	}
	return writeShardMetrics(w, sp.ShardStats())
}
