package serve_test

import (
	"fmt"
	"testing"

	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// BenchmarkPipelineIngest measures the steady-state per-sample cost of the
// online serving path: one recorded 1-second vector through validation,
// windowing, and (every Window samples per tier) a coordinated decision.
func BenchmarkPipelineIngest(b *testing.B) {
	_, mon, tr := fixture(b)
	p, err := serve.NewPipeline(mon, serve.Config{Window: 30})
	if err != nil {
		b.Fatal(err)
	}
	vecs := secondVectors(tr)
	n := len(tr.SecTimes)
	if n == 0 {
		b.Fatal("trace recorded no seconds")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Strictly increasing synthetic clock, recorded vectors cycled.
		sec := i / int(server.NumTiers)
		tier := server.TierID(i % int(server.NumTiers))
		p.Ingest(serve.Sample{
			Site:   "bench",
			Tier:   tier,
			Time:   float64(sec + 1),
			Values: vecs[tier][sec%n],
		})
	}
}

// BenchmarkFleetIngest measures steady-state ingest across a fleet,
// round-robin over the sites second by second — the access pattern a
// lockstep fleet produces. Three legs per fleet size: the unsharded
// pipeline keyed by site name, the sharded pipeline keyed by site name
// (hash + per-site map lookup per sample), and the sharded pipeline's
// ref-based fast path (Register once, IngestRef per sample).
func BenchmarkFleetIngest(b *testing.B) {
	_, mon, tr := fixture(b)
	vecs := secondVectors(tr)
	n := len(tr.SecTimes)
	for _, nSites := range []int{1000, 10000, 100000} {
		names := make([]string, nSites)
		for i := range names {
			names[i] = fmt.Sprintf("site-%06d", i)
		}
		runLeg := func(b *testing.B, ingest func(i int, tier server.TierID, ts float64, v []float64), sync func()) {
			// Warm: create every site so steady state is measured.
			for i := range names {
				for tier := server.TierID(0); tier < server.NumTiers; tier++ {
					ingest(i, tier, 1, vecs[tier][0])
				}
			}
			sync()
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for sec := 2; done < b.N; sec++ {
				ts := float64(sec)
				vi := sec % n
				for i := 0; i < nSites && done < b.N; i++ {
					for tier := server.TierID(0); tier < server.NumTiers; tier++ {
						ingest(i, tier, ts, vecs[tier][vi])
						done++
					}
				}
			}
			sync()
		}
		b.Run(fmt.Sprintf("unsharded/sites=%d", nSites), func(b *testing.B) {
			p, err := serve.NewPipeline(mon, serve.Config{Window: 30})
			if err != nil {
				b.Fatal(err)
			}
			runLeg(b, func(i int, tier server.TierID, ts float64, v []float64) {
				p.Ingest(serve.Sample{Site: names[i], Tier: tier, Time: ts, Values: v})
			}, func() {})
		})
		b.Run(fmt.Sprintf("sharded/sites=%d", nSites), func(b *testing.B) {
			sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, serve.DefaultShardConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			runLeg(b, func(i int, tier server.TierID, ts float64, v []float64) {
				sp.Ingest(serve.Sample{Site: names[i], Tier: tier, Time: ts, Values: v})
			}, sp.Sync)
		})
		b.Run(fmt.Sprintf("sharded-ref/sites=%d", nSites), func(b *testing.B) {
			sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, serve.DefaultShardConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			refs := make([]serve.SiteRef, nSites)
			for i, name := range names {
				refs[i] = sp.Register(name)
			}
			runLeg(b, func(i int, tier server.TierID, ts float64, v []float64) {
				sp.IngestRef(refs[i], tier, ts, v)
			}, sp.Sync)
		})
		b.Run(fmt.Sprintf("sharded-site/sites=%d", nSites), func(b *testing.B) {
			sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, serve.DefaultShardConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			refs := make([]serve.SiteRef, nSites)
			for i, name := range names {
				refs[i] = sp.Register(name)
			}
			bt := sp.NewBatcher()
			// Fused scrapes: b.N still counts per-tier samples so ns/op is
			// comparable across legs.
			var scrape [server.NumTiers][]float64
			for i := range names {
				for tier := range scrape {
					scrape[tier] = vecs[tier][0]
				}
				bt.AddSite(refs[i], 1, scrape)
			}
			bt.Flush()
			sp.Sync()
			b.ReportAllocs()
			b.ResetTimer()
			done := 0
			for sec := 2; done < b.N; sec++ {
				ts := float64(sec)
				vi := sec % n
				for tier := range scrape {
					scrape[tier] = vecs[tier][vi]
				}
				for i := 0; i < nSites && done < b.N; i++ {
					bt.AddSite(refs[i], ts, scrape)
					done += int(server.NumTiers)
				}
			}
			bt.Flush()
			sp.Sync()
		})
		b.Run(fmt.Sprintf("sharded-batch/sites=%d", nSites), func(b *testing.B) {
			sp, err := serve.NewShardedPipeline(mon, serve.Config{Window: 30}, serve.DefaultShardConfig())
			if err != nil {
				b.Fatal(err)
			}
			defer sp.Close()
			refs := make([]serve.SiteRef, nSites)
			for i, name := range names {
				refs[i] = sp.Register(name)
			}
			bt := sp.NewBatcher()
			runLeg(b, func(i int, tier server.TierID, ts float64, v []float64) {
				bt.Add(refs[i], tier, ts, v)
			}, func() { bt.Flush(); sp.Sync() })
		})
	}
}
