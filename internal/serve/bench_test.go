package serve_test

import (
	"testing"

	"hpcap/internal/serve"
	"hpcap/internal/server"
)

// BenchmarkPipelineIngest measures the steady-state per-sample cost of the
// online serving path: one recorded 1-second vector through validation,
// windowing, and (every Window samples per tier) a coordinated decision.
func BenchmarkPipelineIngest(b *testing.B) {
	_, mon, tr := fixture(b)
	p, err := serve.NewPipeline(mon, serve.Config{Window: 30})
	if err != nil {
		b.Fatal(err)
	}
	vecs := secondVectors(tr)
	n := len(tr.SecTimes)
	if n == 0 {
		b.Fatal("trace recorded no seconds")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Strictly increasing synthetic clock, recorded vectors cycled.
		sec := i / int(server.NumTiers)
		tier := server.TierID(i % int(server.NumTiers))
		p.Ingest(serve.Sample{
			Site:   "bench",
			Tier:   tier,
			Time:   float64(sec + 1),
			Values: vecs[tier][sec%n],
		})
	}
}
