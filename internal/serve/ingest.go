package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"hpcap/internal/wire"
)

// SiteTransport is the frame-level view of one site's feed: what the
// network delivered, as opposed to what the serving pipeline decided.
// The split matters operationally — a site can be transport-fresh but
// sample-stale (agent up, collectors wedged) or transport-stale but
// decision-healthy (link down, decisions coasting on the last window) —
// and the two call for different pages.
type SiteTransport struct {
	Site string

	Frames  uint64 // frames accepted for ingest
	Samples uint64 // fused scrapes unpacked from accepted frames

	DupFrames  uint64 // frames re-delivering the current sequence number
	OutOfOrder uint64 // frames arriving below the sequence high-water mark
	SeqGaps    uint64 // accepted frames that skipped ahead of the expected seq
	LostFrames uint64 // frames the gaps imply were never delivered

	LastSeq       uint64    // sequence high-water mark
	LastFrameTime float64   // stream time of the newest sample in the last accepted frame
	LastFrameAt   time.Time // wall clock of the last accepted frame (reporting only)
}

// siteTransport is the mutable table entry behind SiteTransport.
type siteTransport struct {
	stats SiteTransport
	ref   SiteRef
}

// Ingest is the network ingest entry point of a ShardedPipeline: it
// turns decoded wire frames into fused Batcher.AddSite calls, keeping
// per-site sequence accounting so duplicated and reordered frames from
// a lossy link are counted and dropped instead of corrupting the
// per-site stream order the pipeline's determinism depends on.
//
// One Ingest is shared by every connection of a FrameServer; sequence
// state survives agent reconnects, so a redelivered frame after a
// flap is still recognised as a duplicate. Accounting is keyed by the
// frame's site name — agents, not connections, own sites.
type Ingest struct {
	pipe *ShardedPipeline
	now  func() time.Time

	mu    sync.Mutex
	sites map[string]*siteTransport
}

// NewIngest builds the shared ingest front-end for a pipeline.
func NewIngest(pipe *ShardedPipeline) *Ingest {
	return &Ingest{pipe: pipe, now: time.Now, sites: make(map[string]*siteTransport)}
}

// SetNow replaces the wall clock used to stamp LastFrameAt. Reporting
// only — nothing on the decision path reads it. Call before serving.
func (in *Ingest) SetNow(now func() time.Time) { in.now = now }

// site returns the transport entry, creating (and registering the site
// with the pipeline) on first use. Callers hold in.mu.
func (in *Ingest) site(name string) *siteTransport {
	st, ok := in.sites[name]
	if !ok {
		st = &siteTransport{stats: SiteTransport{Site: name}, ref: in.pipe.Register(name)}
		in.sites[name] = st
	}
	return st
}

// Conn opens a per-connection ingest lane with its own Batcher. Frames
// from one connection must be delivered to Accept in arrival order; the
// connection's goroutine owns the lane (no internal locking on the
// batching path beyond the shared sequence table).
func (in *Ingest) Conn() *ConnIngest {
	return &ConnIngest{ingest: in, batch: in.pipe.NewBatcher()}
}

// Transport returns one site's transport counters.
func (in *Ingest) Transport(site string) (SiteTransport, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st, ok := in.sites[site]
	if !ok {
		return SiteTransport{}, false
	}
	return st.stats, true
}

// TransportStats snapshots every site's transport counters, ordered by
// site name.
func (in *Ingest) TransportStats() []SiteTransport {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]SiteTransport, 0, len(in.sites))
	for _, st := range in.sites {
		out = append(out, st.stats)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Site < out[j].Site })
	return out
}

// ConnIngest is one connection's ingest lane: sequence-checks each
// frame against the shared transport table, then unpacks accepted
// frames into fused scrapes on its private Batcher.
type ConnIngest struct {
	ingest *Ingest
	batch  *Batcher
}

// Accept runs one decoded frame through sequence accounting and, if it
// advances the site's stream, enqueues its samples. Returns false for
// frames dropped as duplicates or late reorderings — dropped frames are
// always counted, never silent.
func (ci *ConnIngest) Accept(f *wire.Frame) bool {
	in := ci.ingest
	in.mu.Lock()
	st := in.site(f.Site)
	s := &st.stats
	switch {
	case s.Frames == 0:
		// First frame fixes the stream origin; the agent numbers from 0
		// but a mid-stream join (server restart without WAL) is legal.
		if f.Seq > 0 {
			s.SeqGaps++
			s.LostFrames += f.Seq
		}
	case f.Seq == s.LastSeq:
		s.DupFrames++
		in.mu.Unlock()
		return false
	case f.Seq < s.LastSeq:
		s.OutOfOrder++
		in.mu.Unlock()
		return false
	case f.Seq > s.LastSeq+1:
		s.SeqGaps++
		s.LostFrames += f.Seq - s.LastSeq - 1
	}
	s.LastSeq = f.Seq
	s.Frames++
	s.Samples += uint64(len(f.Samples))
	if n := len(f.Samples); n > 0 {
		s.LastFrameTime = f.Samples[n-1].Time
	}
	s.LastFrameAt = in.now()
	ref := st.ref
	in.mu.Unlock()

	for i := range f.Samples {
		ci.batch.AddSite(ref, f.Samples[i].Time, f.Samples[i].Vecs)
	}
	return true
}

// Flush pushes the lane's pending batch into the shard queues.
func (ci *ConnIngest) Flush() { ci.batch.Flush() }

// Close flushes the lane; the ConnIngest must not be used afterwards.
func (ci *ConnIngest) Close() { ci.batch.Flush() }

// transportMetric describes one exported transport counter/gauge.
type transportMetric struct {
	name  string
	kind  string
	help  string
	value func(SiteTransport) float64
}

var transportMetrics = []transportMetric{
	{"capserved_transport_frames_total", "counter", "Frames accepted for ingest.",
		func(s SiteTransport) float64 { return float64(s.Frames) }},
	{"capserved_transport_samples_total", "counter", "Fused scrapes unpacked from accepted frames.",
		func(s SiteTransport) float64 { return float64(s.Samples) }},
	{"capserved_transport_dup_frames_total", "counter", "Duplicate frames dropped.",
		func(s SiteTransport) float64 { return float64(s.DupFrames) }},
	{"capserved_transport_reordered_frames_total", "counter", "Late out-of-order frames dropped.",
		func(s SiteTransport) float64 { return float64(s.OutOfOrder) }},
	{"capserved_transport_seq_gaps_total", "counter", "Accepted frames that skipped ahead of the expected sequence.",
		func(s SiteTransport) float64 { return float64(s.SeqGaps) }},
	{"capserved_transport_lost_frames_total", "counter", "Frames sequence gaps imply were never delivered.",
		func(s SiteTransport) float64 { return float64(s.LostFrames) }},
	{"capserved_transport_last_seq", "gauge", "Sequence high-water mark.",
		func(s SiteTransport) float64 { return float64(s.LastSeq) }},
	{"capserved_transport_last_frame_time", "gauge", "Stream time of the newest ingested sample.",
		func(s SiteTransport) float64 { return s.LastFrameTime }},
}

// WriteTransportMetrics renders the per-site transport counters in
// Prometheus text exposition format, alongside WriteMetrics' families.
func (in *Ingest) WriteTransportMetrics(w io.Writer) error {
	stats := in.TransportStats()
	for _, m := range transportMetrics {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind); err != nil {
			return err
		}
		for _, s := range stats {
			if _, err := fmt.Fprintf(w, "%s{site=%q} %g\n", m.name, s.Site, m.value(s)); err != nil {
				return err
			}
		}
	}
	return nil
}
