package baseline

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCalibratePIThresholdSeparable(t *testing.T) {
	// Healthy windows have high PI, overloaded low.
	var series []float64
	var labels []int
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			series = append(series, 10+rng.Float64())
			labels = append(labels, 0)
		} else {
			series = append(series, 2+rng.Float64())
			labels = append(labels, 1)
		}
	}
	p, err := CalibratePIThreshold(series, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p.Threshold < 3 || p.Threshold > 10 {
		t.Errorf("threshold = %v, want between the clusters", p.Threshold)
	}
	correct := 0
	for i, v := range series {
		if p.Predict(v) == labels[i] {
			correct++
		}
	}
	if correct < 100 {
		t.Errorf("separable calibration got %d/100", correct)
	}
}

func TestCalibratePIThresholdErrors(t *testing.T) {
	if _, err := CalibratePIThreshold(nil, nil); err == nil {
		t.Error("empty series not rejected")
	}
	if _, err := CalibratePIThreshold([]float64{1}, []int{1, 0}); err == nil {
		t.Error("length mismatch not rejected")
	}
	if _, err := CalibratePIThreshold([]float64{1, 2}, []int{0, 0}); err == nil {
		t.Error("single-class series not rejected")
	}
}

func TestRTDetectorLagsByOneWindow(t *testing.T) {
	d := &RTDetector{Threshold: 1.0}
	d.Reset()
	// Window 0: healthy. Window 1: overloaded (RT 5s). Window 2: still
	// overloaded. The detector cannot fire at window 1 — it has only seen
	// window 0's response times.
	if got := d.Predict(0.1); got != 0 {
		t.Errorf("window 0 = %d", got)
	}
	if got := d.Predict(5.0); got != 0 {
		t.Errorf("window 1 = %d, the RT trigger must not see its own window", got)
	}
	if got := d.Predict(5.0); got != 1 {
		t.Errorf("window 2 = %d, want detection one window late", got)
	}
	d.Reset()
	if got := d.Predict(9.9); got != 0 {
		t.Errorf("after Reset, first window = %d, want 0", got)
	}
}

func TestRTDetectorDefaultThreshold(t *testing.T) {
	d := &RTDetector{}
	d.Predict(0.6) // above the default 0.5
	if got := d.Predict(0.6); got != 1 {
		t.Error("default conservative threshold (0.5 s) not applied")
	}
}

func TestUtilDetector(t *testing.T) {
	d := &UtilDetector{}
	if d.Predict(0.95) != 1 {
		t.Error("pegged CPU not flagged with default threshold")
	}
	if d.Predict(0.7) != 0 {
		t.Error("moderate CPU flagged")
	}
	custom := &UtilDetector{Threshold: 0.5}
	if custom.Predict(0.6) != 1 {
		t.Error("custom threshold not applied")
	}
}

func TestDetectionLag(t *testing.T) {
	truth := []int{0, 0, 1, 1, 1, 0, 0, 1, 1, 0}
	// Detector A fires immediately at both onsets.
	immediate := []int{0, 0, 1, 1, 1, 0, 0, 1, 1, 0}
	lag, onsets := DetectionLag(truth, immediate)
	if onsets != 2 {
		t.Fatalf("onsets = %d, want 2", onsets)
	}
	if lag != 0 {
		t.Errorf("immediate detector lag = %v, want 0", lag)
	}
	// Detector B fires one window late each time.
	late := []int{0, 0, 0, 1, 1, 0, 0, 0, 1, 0}
	lag, _ = DetectionLag(truth, late)
	if lag != 1 {
		t.Errorf("late detector lag = %v, want 1", lag)
	}
	// Detector C misses the second episode entirely: lag counts its
	// full length.
	missing := []int{0, 0, 1, 1, 1, 0, 0, 0, 0, 0}
	lag, _ = DetectionLag(truth, missing)
	if lag != 1 { // (0 + 2)/2
		t.Errorf("missing detector lag = %v, want 1", lag)
	}
}

func TestDetectionLagDegenerate(t *testing.T) {
	if lag, onsets := DetectionLag(nil, nil); lag != 0 || onsets != 0 {
		t.Error("empty input should yield zeros")
	}
	// No sustained onset (single-window blip).
	truth := []int{0, 1, 0, 0}
	preds := []int{0, 0, 0, 0}
	if _, onsets := DetectionLag(truth, preds); onsets != 0 {
		t.Error("single-window blip counted as onset")
	}
	if lag, onsets := DetectionLag([]int{0, 1}, []int{0}); lag != 0 || onsets != 0 {
		t.Error("mismatched lengths should yield zeros")
	}
}

// Property: the calibrated threshold never performs worse than always
// predicting one class (BA 0.5) on its own training data.
func TestCalibrationDominatesConstantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60
		series := make([]float64, n)
		labels := make([]int, n)
		for i := range series {
			series[i] = rng.Float64() * 100
			labels[i] = rng.Intn(2)
		}
		p, err := CalibratePIThreshold(series, labels)
		if err != nil {
			return true // single-class draws are legitimately rejected
		}
		var tp, tn, pos, neg int
		for i, v := range series {
			if labels[i] == 1 {
				pos++
				if p.Predict(v) == 1 {
					tp++
				}
			} else {
				neg++
				if p.Predict(v) == 0 {
					tn++
				}
			}
		}
		ba := (float64(tp)/float64(pos) + float64(tn)/float64(neg)) / 2
		return ba >= 0.5-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
