// Package baseline implements the conventional overload detectors the
// paper argues against (§I, §II.A), as comparators for the evaluation:
//
//   - A single-PI threshold rule: the paper notes that thresholds for the
//     productivity index can be calibrated in offline stress testing, but
//     that "for online identification, the single PI metric is not enough
//     to identify system state because any change of PI can be either due
//     to the system capacity or the input load change."
//   - A response-time threshold rule, the classic admission-control
//     trigger ([12], [18] in the paper). It observes only *completed*
//     requests, so it inherits the request dead time the paper describes —
//     it fires late — and conservative thresholds (Blanquer et al. used
//     half the most restrictive guarantee) overestimate overload.
//   - A CPU-utilization threshold rule ([7]), which background
//     housekeeping and healthy saturation both fool.
package baseline

import (
	"errors"
	"sort"
)

// Detector is a per-window binary overload detector. Implementations are
// stateful where the underlying signal is (the RT detector observes the
// previous window), so windows must be fed in trace order.
type Detector interface {
	Name() string
	// Predict classifies one window given the signal value the detector
	// consumes (PI value, mean response time, or utilization).
	Predict(signal float64) int
	// Reset clears temporal state between traces.
	Reset()
}

// PIThreshold flags overload when the productivity index falls below a
// calibrated threshold (low yield per cost = unhealthy).
type PIThreshold struct {
	Threshold float64
}

// CalibratePIThreshold chooses the PI cut that maximizes balanced accuracy
// on a labeled training series — the "empirically in offline
// stress-testing" calibration of §II.A.
func CalibratePIThreshold(piSeries []float64, labels []int) (*PIThreshold, error) {
	if len(piSeries) != len(labels) {
		return nil, errors.New("baseline: series and labels differ in length")
	}
	if len(piSeries) == 0 {
		return nil, errors.New("baseline: empty training series")
	}
	var pos, neg int
	for _, l := range labels {
		if l == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil, errors.New("baseline: training series has a single class")
	}

	// Candidate cuts: midpoints between consecutive sorted PI values.
	sorted := make([]float64, len(piSeries))
	copy(sorted, piSeries)
	sort.Float64s(sorted)

	best := &PIThreshold{Threshold: sorted[0]}
	bestBA := -1.0
	try := func(cut float64) {
		var tp, tn int
		for i, v := range piSeries {
			pred := 0
			if v < cut {
				pred = 1
			}
			if pred == 1 && labels[i] == 1 {
				tp++
			}
			if pred == 0 && labels[i] == 0 {
				tn++
			}
		}
		ba := (float64(tp)/float64(pos) + float64(tn)/float64(neg)) / 2
		if ba > bestBA {
			bestBA = ba
			best.Threshold = cut
		}
	}
	// Boundary cuts are candidates too, so the rule never scores below a
	// constant predictor on its own training data.
	try(sorted[0] - 1)
	try(sorted[len(sorted)-1] + 1)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] > sorted[i-1] {
			try((sorted[i] + sorted[i-1]) / 2)
		}
	}
	return best, nil
}

// Name identifies the detector.
func (p *PIThreshold) Name() string { return "pi-threshold" }

// Predict flags overload when PI is below the calibrated threshold.
func (p *PIThreshold) Predict(piValue float64) int {
	if piValue < p.Threshold {
		return 1
	}
	return 0
}

// Reset is a no-op: the rule is stateless.
func (p *PIThreshold) Reset() {}

// RTDetector is the conventional response-time trigger. It classifies the
// CURRENT window using the PREVIOUS window's observed mean response time:
// response times are only known once requests complete, which is exactly
// the dead-time problem the paper describes — by the time slow responses
// are observed, the overload has been underway for at least a window.
type RTDetector struct {
	// Threshold is the trigger in seconds. The conventional conservative
	// setting is half of the SLA (Blanquer et al.); zero selects 0.5.
	Threshold float64

	prevRT   float64
	havePrev bool
}

// Name identifies the detector.
func (d *RTDetector) Name() string { return "rt-threshold" }

// Predict consumes the current window's mean response time but classifies
// on the previous window's (observability delay).
func (d *RTDetector) Predict(meanRT float64) int {
	th := d.Threshold
	if th <= 0 {
		th = 0.5
	}
	pred := 0
	if d.havePrev && d.prevRT > th {
		pred = 1
	}
	d.prevRT = meanRT
	d.havePrev = true
	return pred
}

// Reset clears the previous-window state.
func (d *RTDetector) Reset() {
	d.prevRT = 0
	d.havePrev = false
}

// UtilDetector is the CPU-utilization trigger used by utilization-driven
// resource managers.
type UtilDetector struct {
	// Threshold is the busy fraction above which the tier is declared
	// overloaded; zero selects 0.9.
	Threshold float64
}

// Name identifies the detector.
func (d *UtilDetector) Name() string { return "util-threshold" }

// Predict flags overload when utilization exceeds the threshold.
func (d *UtilDetector) Predict(util float64) int {
	th := d.Threshold
	if th <= 0 {
		th = 0.9
	}
	if util > th {
		return 1
	}
	return 0
}

// Reset is a no-op: the rule is stateless.
func (d *UtilDetector) Reset() {}

// DetectionLag measures how late a detector fires: for every sustained
// overload onset in truth (a 0→1 transition that holds for at least two
// windows), it finds the first window at or after the onset where preds is
// 1 and averages the distance in windows. Onsets the detector misses
// entirely (no detection before the episode ends) count as the episode
// length. The second return is the number of onsets.
func DetectionLag(truth, preds []int) (float64, int) {
	if len(truth) != len(preds) || len(truth) == 0 {
		return 0, 0
	}
	var lagSum float64
	onsets := 0
	for i := 1; i < len(truth); i++ {
		if truth[i] != 1 || truth[i-1] != 0 {
			continue
		}
		// Sustained onset?
		if i+1 < len(truth) && truth[i+1] != 1 {
			continue
		}
		// Episode end.
		end := i
		for end < len(truth) && truth[end] == 1 {
			end++
		}
		onsets++
		detected := end - i // default: missed entirely
		for j := i; j < end; j++ {
			if preds[j] == 1 {
				detected = j - i
				break
			}
		}
		lagSum += float64(detected)
	}
	if onsets == 0 {
		return 0, 0
	}
	return lagSum / float64(onsets), onsets
}
