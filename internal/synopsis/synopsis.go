// Package synopsis implements the paper's performance synopsis (§II.B): a
// model SYN({A1..An}, C) built for one (workload, tier, metric level)
// combination, pairing the attributes chosen by information-gain selection
// with a trained classifier that maps a low-level metric snapshot to the
// binary high-level system state.
package synopsis

import (
	"encoding/json"
	"fmt"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/ml"
	"hpcap/internal/server"
)

// Synopsis correlates a tier's low-level metrics with the high-level
// overload state for one workload pattern.
type Synopsis struct {
	Workload string
	Tier     server.TierID
	Level    metrics.Level
	Learner  string

	// Attrs indexes the selected attributes in the collector's full
	// metric vector; AttrNames are their names.
	Attrs     []int
	AttrNames []string
	// CV is the 10-fold cross-validated balanced accuracy on the
	// training set.
	CV float64

	classifier ml.Classifier
}

// Config tunes synopsis construction.
type Config struct {
	// Selection tunes attribute selection; the zero value uses the
	// paper's defaults (information-gain ranking, 10-fold CV wrapper).
	Selection featsel.Config
	// SkipSelection trains on all attributes (used by ablations and the
	// learner-timing experiment).
	SkipSelection bool
}

// DefaultConfig returns the paper's synopsis settings: full attribute
// selection at featsel's defaults.
func DefaultConfig() Config {
	return Config{Selection: featsel.DefaultConfig()}
}

// Validate applies defaults first, then returns one error per violated
// constraint — all delegated to the selection config, which is the only
// part with constraints to violate.
func (c Config) Validate() []error {
	if c.SkipSelection {
		return nil
	}
	return c.Selection.Validate()
}

// Build selects attributes and trains a synopsis on the labeled dataset,
// whose columns must correspond to the collector vector for (tier, level).
func Build(workload string, tier server.TierID, level metrics.Level,
	learner ml.Learner, d *ml.Dataset, cfg Config) (*Synopsis, error) {

	s := &Synopsis{
		Workload: workload,
		Tier:     tier,
		Level:    level,
		Learner:  learner.Name,
	}
	var train *ml.Dataset
	if cfg.SkipSelection {
		s.Attrs = make([]int, d.NumAttrs())
		for i := range s.Attrs {
			s.Attrs[i] = i
		}
		train = d
		cv, err := ml.CrossValidate(learner, d, selFolds(cfg.Selection), cfg.Selection.Seed)
		if err != nil {
			return nil, fmt.Errorf("synopsis: cross-validate: %w", err)
		}
		s.CV = cv
	} else {
		res, err := featsel.Select(learner, d, cfg.Selection)
		if err != nil {
			return nil, fmt.Errorf("synopsis: attribute selection: %w", err)
		}
		s.Attrs = res.Attrs
		s.CV = res.CV
		train, err = d.Project(res.Attrs)
		if err != nil {
			return nil, err
		}
	}
	s.AttrNames = make([]string, len(s.Attrs))
	for i, a := range s.Attrs {
		s.AttrNames[i] = d.AttrNames[a]
	}

	clf := learner.New()
	if err := clf.Fit(train); err != nil {
		return nil, fmt.Errorf("synopsis: fit %s on %s/%s/%s: %w",
			learner.Name, workload, tier, level, err)
	}
	s.classifier = clf
	return s, nil
}

func selFolds(cfg featsel.Config) int {
	if cfg.Folds > 0 {
		return cfg.Folds
	}
	return 10
}

// Predict maps a full metric vector (same layout as the training collector)
// to the predicted system state, projecting to the synopsis's selected
// attributes internally.
func (s *Synopsis) Predict(values []float64) int {
	return s.PredictInto(nil, values)
}

// PredictInto is Predict projecting through dst, a caller-owned scratch
// buffer reused across calls (grown — or allocated, when nil — only when
// its capacity is short of len(Attrs)). Hot decision loops hold one buffer
// per prediction stream so steady-state projection never allocates.
func (s *Synopsis) PredictInto(dst []float64, values []float64) int {
	if cap(dst) < len(s.Attrs) {
		dst = make([]float64, len(s.Attrs))
	}
	dst = dst[:len(s.Attrs)]
	for i, a := range s.Attrs {
		if a < len(values) {
			dst[i] = values[a]
		} else {
			dst[i] = 0
		}
	}
	return s.classifier.Predict(dst)
}

// Key identifies the synopsis in reports, e.g. "browsing/db/HPC/TAN".
func (s *Synopsis) Key() string {
	return fmt.Sprintf("%s/%s/%s/%s", s.Workload, s.Tier, s.Level, s.Learner)
}

// Summary is the serializable description of a synopsis (model weights are
// rebuilt from traces rather than persisted).
type Summary struct {
	Workload  string   `json:"workload"`
	Tier      string   `json:"tier"`
	Level     string   `json:"level"`
	Learner   string   `json:"learner"`
	AttrNames []string `json:"attrs"`
	CV        float64  `json:"cv_balanced_accuracy"`
}

// MarshalJSON serializes the synopsis metadata.
func (s *Synopsis) MarshalJSON() ([]byte, error) {
	return json.Marshal(Summary{
		Workload:  s.Workload,
		Tier:      s.Tier.String(),
		Level:     s.Level.String(),
		Learner:   s.Learner,
		AttrNames: s.AttrNames,
		CV:        s.CV,
	})
}
