package synopsis

import (
	"encoding/json"
	"strings"
	"testing"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/ml/mltest"
	"hpcap/internal/server"
)

func TestBuildAndPredict(t *testing.T) {
	d := mltest.NoisyGaussians(300, 10, 2, 3, 1)
	s, err := Build("ordering", server.TierApp, metrics.LevelHPC,
		bayes.TANLearner(), d, Config{Selection: featsel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.CV < 0.85 {
		t.Errorf("CV = %v, want ≥0.85", s.CV)
	}
	if len(s.Attrs) == 0 || len(s.Attrs) != len(s.AttrNames) {
		t.Fatalf("attrs %v / names %v misaligned", s.Attrs, s.AttrNames)
	}
	// Predict takes the FULL vector and projects internally.
	correct := 0
	for i := 0; i < d.Len(); i++ {
		if s.Predict(d.Row(i)) == d.Y[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(d.Len()); frac < 0.85 {
		t.Errorf("full-vector prediction accuracy = %v, want ≥0.85", frac)
	}
}

func TestBuildSkipSelection(t *testing.T) {
	d := mltest.NoisyGaussians(200, 5, 2, 3, 2)
	s, err := Build("browsing", server.TierDB, metrics.LevelOS,
		bayes.NaiveLearner(), d, Config{SkipSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Attrs) != 5 {
		t.Errorf("SkipSelection kept %d attrs, want all 5", len(s.Attrs))
	}
	if s.CV <= 0.5 {
		t.Errorf("CV = %v, want informative", s.CV)
	}
}

func TestBuildFailsOnOneClass(t *testing.T) {
	d := mltest.OneClass(40, 0)
	if _, err := Build("x", server.TierApp, metrics.LevelHPC,
		bayes.NaiveLearner(), d, Config{SkipSelection: true}); err == nil {
		t.Error("one-class training set not rejected")
	}
}

func TestKey(t *testing.T) {
	d := mltest.NoisyGaussians(120, 4, 2, 3, 3)
	s, err := Build("browsing", server.TierDB, metrics.LevelHPC,
		bayes.TANLearner(), d, Config{Selection: featsel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Key() != "browsing/db/HPC/TAN" {
		t.Errorf("Key = %q", s.Key())
	}
}

func TestMarshalJSON(t *testing.T) {
	d := mltest.NoisyGaussians(120, 4, 2, 3, 3)
	s, err := Build("ordering", server.TierApp, metrics.LevelOS,
		bayes.NaiveLearner(), d, Config{Selection: featsel.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Summary
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Workload != "ordering" || got.Tier != "app" || got.Level != "OS" || got.Learner != "Naive" {
		t.Errorf("round-tripped summary = %+v", got)
	}
	if !strings.Contains(string(raw), "cv_balanced_accuracy") {
		t.Error("summary JSON missing accuracy field")
	}
}

func TestPredictToleratesShortVector(t *testing.T) {
	d := mltest.NoisyGaussians(150, 6, 2, 3, 5)
	s, err := Build("w", server.TierApp, metrics.LevelHPC,
		bayes.NaiveLearner(), d, Config{SkipSelection: true})
	if err != nil {
		t.Fatal(err)
	}
	// A truncated vector must not panic; missing attributes read as zero.
	_ = s.Predict([]float64{1, 2})
}
