package synopsis

import (
	"testing"

	"hpcap/internal/featsel"
)

func TestDefaultConfigValid(t *testing.T) {
	if errs := DefaultConfig().Validate(); len(errs) > 0 {
		t.Fatalf("DefaultConfig invalid: %v", errs)
	}
	if errs := (Config{}).Validate(); len(errs) > 0 {
		t.Fatalf("zero Config invalid after defaults: %v", errs)
	}
}

func TestConfigValidateDelegatesToSelection(t *testing.T) {
	bad := Config{Selection: featsel.Config{Folds: 1}}
	if errs := bad.Validate(); len(errs) == 0 {
		t.Fatal("invalid selection config not rejected")
	}
	// SkipSelection makes the selection knobs irrelevant.
	bad.SkipSelection = true
	if errs := bad.Validate(); len(errs) > 0 {
		t.Fatalf("skipped selection still validated: %v", errs)
	}
}
