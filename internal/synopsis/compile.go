package synopsis

import (
	"fmt"

	"hpcap/internal/ml"
	"hpcap/internal/server"
)

// Compiled is a synopsis lowered for the steady-state decision path: the
// attribute projection plus the classifier's flat evaluation plan, with
// every per-call temporary supplied by the caller's ml.Scratch. A Compiled
// synopsis is immutable and shared across prediction streams; its Predict
// returns bit-identically what Synopsis.Predict returns.
type Compiled struct {
	// Tier mirrors Synopsis.Tier so decision loops can route the right
	// metric vector without touching the source synopsis.
	Tier server.TierID
	// Attrs indexes the selected attributes in the collector layout.
	Attrs []int

	clf ml.Compiled
}

// Compile lowers the trained synopsis. Classifiers without a compiled form
// (ml.Compilable) fall back to their interpreted Predict behind the same
// interface, so compilation never changes an output — it only removes
// per-call allocation where the learner supports it.
func (s *Synopsis) Compile() (*Compiled, error) {
	if s.classifier == nil {
		return nil, fmt.Errorf("synopsis: compile %s: no trained classifier", s.Key())
	}
	c := &Compiled{Tier: s.Tier, Attrs: s.Attrs}
	if cc, ok := s.classifier.(ml.Compilable); ok {
		lowered, err := cc.Compile()
		if err != nil {
			return nil, fmt.Errorf("synopsis: compile %s: %w", s.Key(), err)
		}
		c.clf = lowered
	} else {
		c.clf = ml.CompileFallback(s.classifier)
	}
	return c, nil
}

// Predict maps a full metric vector to the predicted system state through
// the compiled plan, using scr for every temporary. Concurrent callers
// must hold distinct scratches.
func (c *Compiled) Predict(values []float64, scr *ml.Scratch) int {
	x := scr.EnsureX(len(c.Attrs))
	for i, a := range c.Attrs {
		if a < len(values) {
			x[i] = values[a]
		} else {
			x[i] = 0
		}
	}
	return c.clf.PredictScratch(x, scr)
}
