package metrics

import (
	"hpcap/internal/server"
)

// FallibleCollector is a Collector whose reads can fail transiently — a
// PMU driver returning EAGAIN, a /proc scrape racing a reboot, a metrics
// transport timing out. TryCollect returns the vector or an error;
// Collect (from the embedded Collector contract) must still succeed by
// whatever fallback the implementation chooses.
type FallibleCollector interface {
	Collector
	TryCollect(s server.Snapshot, dt float64) ([]float64, error)
}

// RetryCollector hardens a FallibleCollector into a plain Collector with
// bounded retry: each Collect tries the source up to 1+MaxRetries times,
// invoking Backoff between attempts, and falls back to the last good
// vector (initially zeros) when every attempt fails. The serving layer's
// staleness budget then decides whether the stale vector still supports a
// degraded decision — the collector never blocks the sampling loop and
// never emits NaN.
type RetryCollector struct {
	src FallibleCollector
	// MaxRetries bounds extra attempts per read (total attempts are
	// 1+MaxRetries).
	MaxRetries int
	// Backoff, when set, runs between attempts with the 1-based retry
	// number. Deployments install a capped sleep here; the simulator
	// leaves it nil because virtual time does not pass during a read.
	Backoff func(retry int)

	last     []float64
	retries  uint64
	failures uint64
}

// NewRetryCollector wraps src with up to maxRetries retries per read.
// Negative maxRetries selects 0 (a single attempt, fallback on failure).
func NewRetryCollector(src FallibleCollector, maxRetries int) *RetryCollector {
	if maxRetries < 0 {
		maxRetries = 0
	}
	return &RetryCollector{src: src, MaxRetries: maxRetries}
}

// Tier returns the wrapped collector's tier.
func (r *RetryCollector) Tier() server.TierID { return r.src.Tier() }

// Names returns the wrapped collector's metric names.
func (r *RetryCollector) Names() []string { return r.src.Names() }

// Collect reads the source with bounded retry. On total failure it
// returns the last good vector (zeros before the first success), so the
// aggregation window closes on a stale-but-finite mean instead of
// stalling or going NaN.
func (r *RetryCollector) Collect(s server.Snapshot, dt float64) []float64 {
	for attempt := 0; attempt <= r.MaxRetries; attempt++ {
		if attempt > 0 {
			r.retries++
			if r.Backoff != nil {
				r.Backoff(attempt)
			}
		}
		v, err := r.src.TryCollect(s, dt)
		if err == nil {
			r.last = append(r.last[:0], v...)
			return v
		}
	}
	r.failures++
	if r.last == nil {
		r.last = make([]float64, len(r.src.Names()))
	}
	return r.last
}

// Retries returns how many extra attempts were made; Failures how many
// reads exhausted every attempt and fell back to the stale vector.
func (r *RetryCollector) Retries() uint64  { return r.retries }
func (r *RetryCollector) Failures() uint64 { return r.failures }
