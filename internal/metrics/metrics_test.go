package metrics

import (
	"testing"

	"hpcap/internal/cpu"
	"hpcap/internal/osstat"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func TestLevelString(t *testing.T) {
	if LevelOS.String() != "OS" || LevelHPC.String() != "HPC" {
		t.Error("level names wrong")
	}
	if Level(0).String() != "Level(0)" {
		t.Error("unknown level name wrong")
	}
}

func TestCollectorInterfaceCompliance(t *testing.T) {
	cfg := server.DefaultConfig()
	var _ Collector = cpu.NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	var _ Collector = osstat.NewCollector(server.TierDB, 1024, 0, 1)
	// Both real collectors support the zero-allocation aggregation path.
	var _ AppendCollector = cpu.NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	var _ AppendCollector = osstat.NewCollector(server.TierDB, 1024, 0, 1)
}

// TestCollectToMatchesCollect pins the scratch path to the allocating path:
// same seed, same telemetry, bit-identical vectors.
func TestCollectToMatchesCollect(t *testing.T) {
	cfg := server.DefaultConfig()
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), 60, 300))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	s := tb.RunInterval(30)
	a := cpu.NewCollector(server.TierApp, cfg.App.Machine, 0.02, 7)
	b := cpu.NewCollector(server.TierApp, cfg.App.Machine, 0.02, 7)
	buf := make([]float64, 1)
	va := a.Collect(s, 1)
	vb := b.CollectTo(buf, s, 1)
	if len(va) != len(vb) {
		t.Fatalf("lengths differ: %d vs %d", len(va), len(vb))
	}
	for i := range va {
		if va[i] != vb[i] {
			t.Errorf("metric %d: Collect=%v CollectTo=%v", i, va[i], vb[i])
		}
	}
	oa := osstat.NewCollector(server.TierDB, 1024, 0.02, 7)
	ob := osstat.NewCollector(server.TierDB, 1024, 0.02, 7)
	wide := make([]float64, 128)
	wa := oa.Collect(s, 1)
	wb := ob.CollectTo(wide, s, 1)
	if len(wb) != len(wa) {
		t.Fatalf("CollectTo did not truncate to NumMetrics: %d", len(wb))
	}
	for i := range wa {
		if wa[i] != wb[i] {
			t.Errorf("os metric %d: Collect=%v CollectTo=%v", i, wa[i], wb[i])
		}
	}
}

func TestNewAggregatorRejectsBadWindow(t *testing.T) {
	cfg := server.DefaultConfig()
	c := cpu.NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	if _, err := NewAggregator(c, 0); err == nil {
		t.Error("zero window not rejected")
	}
	if _, err := NewAggregator(c, -5); err == nil {
		t.Error("negative window not rejected")
	}
}

func TestAggregatorWindowing(t *testing.T) {
	cfg := server.DefaultConfig()
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), 60, 400))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	tb.RunInterval(60)

	c := cpu.NewCollector(server.TierApp, cfg.App.Machine, 0, 1)
	agg, err := NewAggregator(c, DefaultWindow)
	if err != nil {
		t.Fatal(err)
	}

	var samples []Sample
	for i := 0; i < 90; i++ {
		if s, ok := agg.Push(tb.RunInterval(1), 1); ok {
			samples = append(samples, s)
		}
	}
	if len(samples) != 3 {
		t.Fatalf("90 pushes with window 30 produced %d samples, want 3", len(samples))
	}
	for _, s := range samples {
		if len(s.Values) != cpu.NumMetrics {
			t.Errorf("sample vector length %d, want %d", len(s.Values), cpu.NumMetrics)
		}
		// 60 EBs at ~7 s think → ≈8.5/s completed.
		if s.Throughput < 5 || s.Throughput > 12 {
			t.Errorf("window throughput = %v, want ≈8.5", s.Throughput)
		}
		if s.MeanRT <= 0 || s.MeanRT > 0.5 {
			t.Errorf("window MeanRT = %v, want small positive", s.MeanRT)
		}
		if s.ActiveEBs != 60 {
			t.Errorf("ActiveEBs = %d, want 60", s.ActiveEBs)
		}
	}
	// Windows are means, not sums: consecutive window values must be
	// commensurate.
	if samples[1].Values[0] > samples[0].Values[0]*3+1 {
		t.Errorf("window values look cumulative: %v then %v",
			samples[0].Values[0], samples[1].Values[0])
	}
}

func TestAggregatorResetsBetweenWindows(t *testing.T) {
	cfg := server.DefaultConfig()
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Shopping(), 40, 200))
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.Start(); err != nil {
		t.Fatal(err)
	}
	c := osstat.NewCollector(server.TierApp, 512, 0, 1)
	agg, err := NewAggregator(c, 5)
	if err != nil {
		t.Fatal(err)
	}
	var first, second Sample
	n := 0
	for i := 0; i < 10; i++ {
		if s, ok := agg.Push(tb.RunInterval(1), 1); ok {
			if n == 0 {
				first = s
			} else {
				second = s
			}
			n++
		}
	}
	if n != 2 {
		t.Fatalf("got %d windows, want 2", n)
	}
	if second.Time-first.Time != 5 {
		t.Errorf("window spacing = %v, want 5", second.Time-first.Time)
	}
}

func TestCollectionCostsMatchPaperShape(t *testing.T) {
	// HPC collection must be roughly an order of magnitude cheaper than
	// OS collection (<0.5% vs ≈4% of one CPU per 1-second sample).
	if HPCSampleCost >= OSSampleCost/5 {
		t.Errorf("HPC cost %v not ≪ OS cost %v", HPCSampleCost, OSSampleCost)
	}
	if HPCSampleCost > 0.005 {
		t.Errorf("HPC per-sample cost %v exceeds 0.5%% of a second", HPCSampleCost)
	}
	if OSSampleCost < 0.01 || OSSampleCost > 0.06 {
		t.Errorf("OS per-sample cost %v out of the sysstat band", OSSampleCost)
	}
}

// staticCollector returns a fixed vector every second, so window means are
// exactly predictable.
type staticCollector struct{ v []float64 }

func (c staticCollector) Tier() server.TierID { return server.TierApp }
func (c staticCollector) Names() []string     { return []string{"a", "b"} }
func (c staticCollector) Collect(server.Snapshot, float64) []float64 {
	return c.v
}

func TestAggregatorFlushPartialWindow(t *testing.T) {
	agg, err := NewAggregator(staticCollector{v: []float64{2, 4}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if s, n := agg.Flush(); n != 0 || len(s.Values) != 0 {
		t.Errorf("empty flush returned %d samples (%+v)", n, s)
	}
	for i := 1; i <= 3; i++ {
		if _, done := agg.Push(server.Snapshot{Time: float64(i), Completions: 10}, 1); done {
			t.Fatalf("window closed after %d of 10 pushes", i)
		}
	}
	if agg.Count() != 3 {
		t.Errorf("Count = %d, want 3", agg.Count())
	}
	s, n := agg.Flush()
	if n != 3 {
		t.Fatalf("Flush count = %d, want 3", n)
	}
	// Metric means divide by the samples actually pushed...
	if s.Values[0] != 2 || s.Values[1] != 4 {
		t.Errorf("partial means = %v, want [2 4]", s.Values)
	}
	// ...while rates keep the nominal window as denominator.
	if s.Throughput != 3.0 {
		t.Errorf("Throughput = %v, want 30 completions / 10 s window", s.Throughput)
	}
	if s.Time != 3 {
		t.Errorf("Time = %v, want last pushed second", s.Time)
	}
	// Flush resets: a following full window is unaffected.
	if agg.Count() != 0 {
		t.Errorf("Count after Flush = %d, want 0", agg.Count())
	}
	var full Sample
	got := 0
	for i := 4; i <= 13; i++ {
		if w, done := agg.Push(server.Snapshot{Time: float64(i)}, 1); done {
			full, got = w, got+1
		}
	}
	if got != 1 || full.Time != 13 || full.Values[0] != 2 {
		t.Errorf("post-flush window: n=%d %+v", got, full)
	}
}
