package metrics

import (
	"errors"
	"reflect"
	"testing"

	"hpcap/internal/server"
)

// scriptedCollector fails its first failN reads, then succeeds forever.
type scriptedCollector struct {
	failN int
	reads int
	v     []float64
}

func (c *scriptedCollector) Tier() server.TierID { return server.TierApp }
func (c *scriptedCollector) Names() []string     { return []string{"a", "b"} }
func (c *scriptedCollector) Collect(s server.Snapshot, dt float64) []float64 {
	v, err := c.TryCollect(s, dt)
	if err != nil {
		return make([]float64, 2)
	}
	return v
}
func (c *scriptedCollector) TryCollect(server.Snapshot, float64) ([]float64, error) {
	c.reads++
	if c.reads <= c.failN {
		return nil, errors.New("scripted failure")
	}
	return c.v, nil
}

func TestRetryCollectorRecoversWithinBudget(t *testing.T) {
	src := &scriptedCollector{failN: 2, v: []float64{1, 2}}
	r := NewRetryCollector(src, 3)
	var backoffs []int
	r.Backoff = func(retry int) { backoffs = append(backoffs, retry) }

	got := r.Collect(server.Snapshot{}, 1)
	if !reflect.DeepEqual(got, []float64{1, 2}) {
		t.Fatalf("Collect = %v, want the source vector after retries", got)
	}
	if !reflect.DeepEqual(backoffs, []int{1, 2}) {
		t.Errorf("backoff calls %v, want [1 2]", backoffs)
	}
	if r.Retries() != 2 || r.Failures() != 0 {
		t.Errorf("retries=%d failures=%d, want 2 and 0", r.Retries(), r.Failures())
	}
}

func TestRetryCollectorFallsBackToLastGood(t *testing.T) {
	src := &scriptedCollector{v: []float64{3, 4}}
	r := NewRetryCollector(src, 1)
	if got := r.Collect(server.Snapshot{}, 1); !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Fatalf("first Collect = %v", got)
	}
	// Fail every remaining attempt: the stale-but-finite vector comes back.
	src.failN = 1 << 30
	src.reads = 0
	got := r.Collect(server.Snapshot{}, 1)
	if !reflect.DeepEqual(got, []float64{3, 4}) {
		t.Fatalf("fallback Collect = %v, want last good [3 4]", got)
	}
	if r.Failures() != 1 || r.Retries() != 1 {
		t.Errorf("failures=%d retries=%d, want 1 and 1", r.Failures(), r.Retries())
	}
}

func TestRetryCollectorZerosBeforeFirstSuccess(t *testing.T) {
	src := &scriptedCollector{failN: 1 << 30, v: []float64{9, 9}}
	r := NewRetryCollector(src, -5) // negative clamps to a single attempt
	got := r.Collect(server.Snapshot{}, 1)
	if !reflect.DeepEqual(got, []float64{0, 0}) {
		t.Fatalf("pre-success fallback = %v, want zeros sized to Names()", got)
	}
	if r.MaxRetries != 0 {
		t.Errorf("negative maxRetries kept %d, want 0", r.MaxRetries)
	}
	if r.Tier() != server.TierApp || len(r.Names()) != 2 {
		t.Error("Tier/Names not delegated to the source")
	}
}
