// Package metrics connects the testbed to the learning pipeline: it defines
// the collector interface shared by the OS-level and hardware-counter-level
// collectors, the per-sample collection costs used by the overhead
// experiment (§V.D), and the aggregation of 1-second samples into the
// 30-second windows from which the paper builds training instances (§IV.A).
package metrics

import (
	"fmt"

	"hpcap/internal/server"
)

// Level distinguishes the two metric sources compared throughout the paper.
type Level int

// Metric levels. LevelCombined concatenates the OS and hardware counter
// vectors — the extension the paper's conclusion proposes for capturing
// I/O-related problems alongside CPU-level ones. The concatenation order
// is fixed: the 64 OS metrics first, then the 19 hardware counters —
// every consumer of a combined vector (training layouts, the serving
// pipeline, the fusion stage's factor graph) indexes against this order,
// and internal/fuse pins it with a layout test.
const (
	LevelOS Level = iota + 1
	LevelHPC
	LevelCombined
)

// String returns the level's name as used in the paper's tables.
func (l Level) String() string {
	switch l {
	case LevelOS:
		return "OS"
	case LevelHPC:
		return "HPC"
	case LevelCombined:
		return "OS+HPC"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Levels returns the metric levels in presentation order.
func Levels() []Level { return []Level{LevelOS, LevelHPC, LevelCombined} }

// Collector converts one interval of testbed telemetry into a metric
// vector. Both osstat.Collector and cpu.Collector satisfy it.
type Collector interface {
	Tier() server.TierID
	Names() []string
	Collect(s server.Snapshot, dt float64) []float64
}

// AppendCollector is an optional Collector extension for the per-second hot
// path: CollectTo writes the metric vector into dst (reallocating only when
// dst is too small) and returns it. The aggregator feeds the same scratch
// buffer back every push, so a window costs zero vector allocations instead
// of one per second. The returned slice is only valid until the next call.
type AppendCollector interface {
	Collector
	CollectTo(dst []float64, s server.Snapshot, dt float64) []float64
}

// Per-sample CPU cost (normalized demand seconds) of reading each metric
// source once. Hardware counters only require reading a handful of MSRs;
// Sysstat walks and parses large swaths of /proc. These reproduce the
// paper's measured collection overheads: under 0.5% for counters versus
// about 4% for OS metrics.
const (
	HPCSampleCost = 0.002
	OSSampleCost  = 0.018
)

// DefaultWindow is the paper's aggregation window: average statistics over
// a 30-second interval form one instance.
const DefaultWindow = 30

// Sample is one aggregated window: the mean metric vector plus the
// application-level health observed over the same window (used for offline
// labeling, never shown to the classifiers).
type Sample struct {
	Time float64 // window end, virtual seconds
	// Pool names the replica pool the vector was measured on (empty for a
	// legacy two-tier testbed, where the tier slot already identifies it).
	// Set via Aggregator.SetPool; carried through untouched otherwise.
	Pool        string
	Values      []float64
	Throughput  float64 // completed requests per second
	ArrivalRate float64
	MeanRT      float64 // mean response time over the window, seconds
	MaxRT       float64
	ActiveEBs   int
}

// Aggregator folds per-second collector vectors into window Samples.
type Aggregator struct {
	collector Collector
	appender  AppendCollector // non-nil when collector supports scratch reuse
	scratch   []float64
	window    int
	pool      string // stamped onto every emitted Sample

	count       int
	sum         []float64
	completions int
	arrivals    int
	rtWeighted  float64
	maxRT       float64
	ebs         int
	lastTime    float64
}

// NewAggregator returns an aggregator emitting one Sample every window
// pushes. window must be positive.
func NewAggregator(c Collector, window int) (*Aggregator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %d", window)
	}
	ac, _ := c.(AppendCollector)
	return &Aggregator{
		collector: c,
		appender:  ac,
		window:    window,
		sum:       make([]float64, len(c.Names())),
	}, nil
}

// NewValuesAggregator returns an aggregator for pre-collected vectors of a
// fixed dimension, fed through PushValues — the serving layer's samples
// arrive as raw values, so it needs no Collector behind the window
// arithmetic. dim and window must be positive.
func NewValuesAggregator(dim, window int) (*Aggregator, error) {
	if window <= 0 {
		return nil, fmt.Errorf("metrics: window must be positive, got %d", window)
	}
	if dim <= 0 {
		return nil, fmt.Errorf("metrics: dim must be positive, got %d", dim)
	}
	return &Aggregator{
		window: window,
		sum:    make([]float64, dim),
	}, nil
}

// Names returns the metric names of the underlying collector (nil for a
// values-only aggregator).
func (a *Aggregator) Names() []string {
	if a.collector == nil {
		return nil
	}
	return a.collector.Names()
}

// Push feeds one interval of telemetry (of length dt seconds). When the
// window fills, it returns the aggregated Sample and true, and resets.
func (a *Aggregator) Push(s server.Snapshot, dt float64) (Sample, bool) {
	var vec []float64
	if a.appender != nil {
		a.scratch = a.appender.CollectTo(a.scratch, s, dt)
		vec = a.scratch
	} else {
		vec = a.collector.Collect(s, dt)
	}
	return a.push(vec, s, dt)
}

// PushValues folds one pre-collected 1-second vector into the window,
// bypassing the collector: identical arithmetic to Push with a telemetry
// snapshot carrying only the timestamp. values must have the aggregator's
// dimension; the slice is read during the call and not retained.
func (a *Aggregator) PushValues(time float64, values []float64) (Sample, bool) {
	return a.push(values, server.Snapshot{Time: time}, 1)
}

// push is the shared accumulate-and-maybe-emit tail of Push/PushValues.
func (a *Aggregator) push(vec []float64, s server.Snapshot, dt float64) (Sample, bool) {
	for i, v := range vec {
		a.sum[i] += v
	}
	a.count++
	a.completions += s.Completions
	a.arrivals += s.Arrivals
	a.rtWeighted += s.MeanRT * float64(s.Completions)
	if s.MaxRT > a.maxRT {
		a.maxRT = s.MaxRT
	}
	a.ebs = s.ActiveEBs
	a.lastTime = s.Time

	if a.count < a.window {
		return Sample{}, false
	}
	return a.emit(dt), true
}

// SetPool sets the replica-pool label stamped onto every Sample the
// aggregator emits from now on (including the currently open window).
// The empty default leaves samples unlabeled, exactly as before pools
// existed.
func (a *Aggregator) SetPool(name string) { a.pool = name }

// Count returns how many samples the current (partial) window holds.
func (a *Aggregator) Count() int { return a.count }

// Flush closes the current window early, returning the mean over however
// many samples have been pushed so far and that sample count. The serving
// layer uses it to decide a window whose tail went missing instead of
// stalling on it. An empty window returns a zero Sample and count 0. The
// aggregator resets either way.
func (a *Aggregator) Flush() (Sample, int) {
	n := a.count
	if n == 0 {
		return Sample{}, 0
	}
	return a.emit(1), n
}

// emit assembles the window Sample from the accumulated state and resets.
// The denominator for rates is the nominal window span; the metric means
// divide by the samples actually pushed.
func (a *Aggregator) emit(dt float64) Sample {
	out := Sample{
		Time:        a.lastTime,
		Pool:        a.pool,
		Values:      make([]float64, len(a.sum)),
		Throughput:  float64(a.completions) / (float64(a.window) * dt),
		ArrivalRate: float64(a.arrivals) / (float64(a.window) * dt),
		MaxRT:       a.maxRT,
		ActiveEBs:   a.ebs,
	}
	for i, v := range a.sum {
		out.Values[i] = v / float64(a.count)
		a.sum[i] = 0
	}
	if a.completions > 0 {
		out.MeanRT = a.rtWeighted / float64(a.completions)
	}
	a.count, a.completions, a.arrivals = 0, 0, 0
	a.rtWeighted, a.maxRT = 0, 0
	return out
}
