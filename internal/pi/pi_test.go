package pi

import (
	"math"
	"testing"

	"hpcap/internal/metrics"
)

var testNames = []string{"hpc_ipc", "hpc_l2_miss_ratio", "hpc_stall_frac", "hpc_instr_rate", "hpc_stall_rate", "hpc_l2_mpki"}

func sample(ipc, miss, stall, thr float64) metrics.Sample {
	return metrics.Sample{
		Values:      []float64{ipc, miss, stall, ipc * 1e9, stall * 1e9, miss * 10},
		Throughput:  thr,
		ArrivalRate: thr,
	}
}

func TestSeries(t *testing.T) {
	samples := []metrics.Sample{
		sample(0.8, 0.02, 0.1, 50),
		sample(0.4, 0.08, 0.5, 25),
	}
	def := Definition{Name: "x", Yield: "hpc_ipc", Cost: "hpc_l2_miss_ratio"}
	s, err := Series(def, testNames, samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s[0]-40) > 1e-9 || math.Abs(s[1]-5) > 1e-9 {
		t.Errorf("Series = %v, want [40 5]", s)
	}
}

func TestSeriesZeroCost(t *testing.T) {
	samples := []metrics.Sample{sample(0.8, 0, 0, 10)}
	def := Definition{Name: "x", Yield: "hpc_ipc", Cost: "hpc_l2_miss_ratio"}
	s, err := Series(def, testNames, samples)
	if err != nil {
		t.Fatal(err)
	}
	if s[0] != 0 {
		t.Errorf("zero-cost PI = %v, want 0", s[0])
	}
}

func TestSeriesUnknownMetric(t *testing.T) {
	if _, err := Series(Definition{Yield: "nope", Cost: "hpc_ipc"}, testNames, nil); err == nil {
		t.Error("unknown yield not rejected")
	}
	if _, err := Series(Definition{Yield: "hpc_ipc", Cost: "nope"}, testNames, nil); err == nil {
		t.Error("unknown cost not rejected")
	}
}

func TestSelectPicksMostCorrelated(t *testing.T) {
	// Build a trace where IPC/L2miss tracks throughput tightly while
	// IPC/stall is noise.
	var samples []metrics.Sample
	for i := 0; i < 40; i++ {
		thr := 10 + float64(i)
		ipc := 0.9
		miss := ipc / (thr * 2) // PI(ipc/miss) = 2·thr exactly
		stall := 0.5            // PI(ipc/stall) constant
		if i%2 == 0 {
			stall = 0.1
		}
		samples = append(samples, sample(ipc, miss, stall, thr))
	}
	cands := []Definition{
		{Name: "good", Yield: "hpc_ipc", Cost: "hpc_l2_miss_ratio"},
		{Name: "noisy", Yield: "hpc_ipc", Cost: "hpc_stall_frac"},
	}
	sel, err := Select(cands, testNames, samples)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Definition.Name != "good" {
		t.Errorf("selected %q, want \"good\"", sel.Definition.Name)
	}
	if sel.Corr < 0.99 {
		t.Errorf("Corr = %v, want ≈1", sel.Corr)
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(nil, testNames, make([]metrics.Sample, 5)); err == nil {
		t.Error("no candidates not rejected")
	}
	if _, err := Select(DefaultCandidates(), testNames, make([]metrics.Sample, 2)); err == nil {
		t.Error("too few samples not rejected")
	}
}

func TestDefaultCandidatesResolve(t *testing.T) {
	// Every default candidate must resolve against the HPC metric names.
	var samples []metrics.Sample
	for i := 0; i < 5; i++ {
		samples = append(samples, sample(0.5, 0.05, 0.3, float64(10+i)))
	}
	for _, cand := range DefaultCandidates() {
		if _, err := Series(cand, testNames, samples); err != nil {
			t.Errorf("candidate %s: %v", cand.Name, err)
		}
	}
}

func TestLabelerRTThreshold(t *testing.T) {
	var l Labeler // defaults: 1.0 s SLA
	healthy := metrics.Sample{MeanRT: 0.08, Throughput: 40, ArrivalRate: 41}
	overloaded := metrics.Sample{MeanRT: 4.2, Throughput: 25, ArrivalRate: 26}
	if l.Label(healthy) != 0 {
		t.Error("healthy window labeled overloaded")
	}
	if l.Label(overloaded) != 1 {
		t.Error("slow window labeled underloaded")
	}
}

func TestLabelerDeficit(t *testing.T) {
	var l Labeler
	// Fast responses for the few that complete, but arrivals far exceed
	// completions: backlog building.
	starved := metrics.Sample{MeanRT: 0.1, Throughput: 5, ArrivalRate: 30}
	if l.Label(starved) != 1 {
		t.Error("starved window labeled underloaded")
	}
	// Idle site: trivial arrivals, no deficit.
	idle := metrics.Sample{MeanRT: 0, Throughput: 0, ArrivalRate: 0.5}
	if l.Label(idle) != 0 {
		t.Error("idle window labeled overloaded")
	}
}

func TestLabelerCustomThreshold(t *testing.T) {
	l := Labeler{RTThreshold: 0.05}
	s := metrics.Sample{MeanRT: 0.08, Throughput: 40, ArrivalRate: 40}
	if l.Label(s) != 1 {
		t.Error("custom SLA not applied")
	}
}

func TestLabelAll(t *testing.T) {
	var l Labeler
	samples := []metrics.Sample{
		{MeanRT: 0.1, Throughput: 10, ArrivalRate: 10},
		{MeanRT: 5, Throughput: 10, ArrivalRate: 10},
	}
	got := l.LabelAll(samples)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("LabelAll = %v, want [0 1]", got)
	}
}
