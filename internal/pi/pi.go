// Package pi implements the paper's Productivity Index (§II.A): the ratio
// of yield to cost, PI = Yield/Cost, used as the quantitative indicator of
// a tier's healthiness. Yield and cost are hardware counter metrics (e.g.
// IPC as yield, L2 miss rate or stall cycles as cost); the PI reference for
// a tier is chosen by the correlation measure of Eq. 2 — the candidate
// whose PI series correlates most strongly with application-level
// throughput is taken as the measure of the tier's capacity.
//
// The package also provides the offline overload labeling used to build
// training sets: a window is labeled overloaded from application-level
// health alone (response time against the SLA and completion deficit), so
// low-level metrics never participate in their own ground truth.
package pi

import (
	"errors"
	"fmt"
	"math"

	"hpcap/internal/metrics"
	"hpcap/internal/stats"
)

// Definition names one productivity-index candidate: yield and cost are
// metric names resolved against a collector's vector.
type Definition struct {
	Name  string
	Yield string
	Cost  string
}

// DefaultCandidates returns the PI candidates the paper considers for
// hardware counter metrics: IPC against the L2 miss rate (the app-tier
// reference under the ordering mix) and IPC against stall cycles (the
// DB-tier reference under the browsing mix), plus close variants.
func DefaultCandidates() []Definition {
	return []Definition{
		{Name: "ipc_per_l2miss", Yield: "hpc_ipc", Cost: "hpc_l2_miss_ratio"},
		{Name: "ipc_per_stall", Yield: "hpc_ipc", Cost: "hpc_stall_frac"},
		{Name: "ipc_per_l2missrate", Yield: "hpc_ipc", Cost: "hpc_l2_mpki"},
		{Name: "instr_per_stall", Yield: "hpc_instr_rate", Cost: "hpc_stall_rate"},
	}
}

// Series computes the PI time series for one definition over a sequence of
// metric samples. A zero cost yields PI 0 for that point (idle window).
func Series(def Definition, names []string, samples []metrics.Sample) ([]float64, error) {
	yi, ci := indexOf(names, def.Yield), indexOf(names, def.Cost)
	if yi < 0 {
		return nil, fmt.Errorf("pi: yield metric %q not found", def.Yield)
	}
	if ci < 0 {
		return nil, fmt.Errorf("pi: cost metric %q not found", def.Cost)
	}
	out := make([]float64, len(samples))
	for i, s := range samples {
		cost := s.Values[ci]
		if cost <= 0 {
			out[i] = 0
			continue
		}
		out[i] = s.Values[yi] / cost
	}
	return out, nil
}

// Selection is the outcome of PI reference selection for one tier.
type Selection struct {
	Definition Definition
	Corr       float64 // |Pearson correlation| with throughput
}

// Select evaluates every candidate's correlation with application
// throughput over the sample window series (Eq. 2) and returns the
// candidate with the strongest absolute correlation.
func Select(candidates []Definition, names []string, samples []metrics.Sample) (Selection, error) {
	if len(candidates) == 0 {
		return Selection{}, errors.New("pi: no candidates")
	}
	if len(samples) < 3 {
		return Selection{}, errors.New("pi: need at least 3 samples to correlate")
	}
	thr := make([]float64, len(samples))
	for i, s := range samples {
		thr[i] = s.Throughput
	}
	best := Selection{Corr: -1}
	for _, cand := range candidates {
		series, err := Series(cand, names, samples)
		if err != nil {
			return Selection{}, err
		}
		r, err := stats.Correlation(series, thr)
		if err != nil {
			return Selection{}, err
		}
		if a := math.Abs(r); a > best.Corr {
			best = Selection{Definition: cand, Corr: a}
		}
	}
	return best, nil
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// Labeler produces the offline overload ground truth from application-level
// health, as in the paper's stress-testing classification.
type Labeler struct {
	// RTThreshold is the SLA bound on the window's mean response time in
	// seconds; zero selects 1.0 s (TPC-W interactions answer in tens of
	// milliseconds on a healthy site).
	RTThreshold float64
	// DeficitRatio flags a window whose arrival rate exceeds completed
	// throughput by this factor while the site is non-idle; zero selects
	// 1.3.
	DeficitRatio float64
}

// Label returns 1 (overload) or 0 (underload) for one aggregated window.
func (l Labeler) Label(s metrics.Sample) int {
	rt := l.RTThreshold
	if rt <= 0 {
		rt = 1.0
	}
	deficit := l.DeficitRatio
	if deficit <= 0 {
		deficit = 1.3
	}
	if s.MeanRT > rt {
		return 1
	}
	// Completions starved while traffic arrives: the backlog is growing
	// even though finished requests (if any) were fast.
	if s.ArrivalRate > 1 && s.ArrivalRate > deficit*math.Max(s.Throughput, 0.1) {
		return 1
	}
	return 0
}

// LabelAll labels a window series.
func (l Labeler) LabelAll(samples []metrics.Sample) []int {
	out := make([]int, len(samples))
	for i, s := range samples {
		out[i] = l.Label(s)
	}
	return out
}
