package tpcw

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestDiurnalShape(t *testing.T) {
	s := Diurnal(Browsing(), 100, 1000, 3600, 24)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); math.Abs(got-3600) > 1e-9 {
		t.Errorf("duration = %v, want 3600", got)
	}
	// Trough at the edges, crest in the middle.
	first, mid := s.Phases[0].EBs, s.Phases[12].EBs
	if first >= mid {
		t.Errorf("diurnal not cresting: first %d, mid %d", first, mid)
	}
	if mid < 990 || mid > 1000 {
		t.Errorf("crest %d not near peak 1000", mid)
	}
	for _, p := range s.Phases {
		if p.EBs < 100 || p.EBs > 1000 {
			t.Errorf("phase EBs %d outside [base,peak]", p.EBs)
		}
	}
}

func TestFlashCrowdRampsToMillions(t *testing.T) {
	s := FlashCrowd(Browsing(), 200, 2_000_000, 60, 30, 30, 12)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); math.Abs(got-120) > 1e-9 {
		t.Errorf("duration = %v, want 120", got)
	}
	// The geometric ramp reaches the peak and holds it.
	var peak int
	for _, p := range s.Phases {
		if p.EBs > peak {
			peak = p.EBs
		}
	}
	if peak != 2_000_000 {
		t.Errorf("peak = %d, want 2000000", peak)
	}
	// Geometric, not linear: the first step is a small multiple of base,
	// far below peak/steps.
	if first := s.Phases[0].EBs; first > 100_000 {
		t.Errorf("first ramp step %d looks linear, want geometric", first)
	}
	// Decay returns to base.
	if last := s.Phases[len(s.Phases)-1].EBs; last != 200 {
		t.Errorf("decay ends at %d, want 200", last)
	}
}

func TestSlowLeak(t *testing.T) {
	s := SlowLeak(Ordering(), 100, 2.5, 600, 60)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Duration(); math.Abs(got-600) > 1e-9 {
		t.Errorf("duration = %v, want 600", got)
	}
	if s.Phases[0].EBs != 100 {
		t.Errorf("leak starts at %d, want 100", s.Phases[0].EBs)
	}
	last := s.Phases[len(s.Phases)-1].EBs
	if want := 100 + int(math.Round(2.5*540)); last != want {
		t.Errorf("leak ends at %d, want %d", last, want)
	}
	for i := 1; i < len(s.Phases); i++ {
		if s.Phases[i].EBs < s.Phases[i-1].EBs {
			t.Errorf("leak not monotone at phase %d", i)
		}
	}
}

func TestMixByName(t *testing.T) {
	for _, name := range []string{"browsing", "shopping", "ordering", "unknown"} {
		m, ok := MixByName(name)
		if !ok || m.Name != name {
			t.Errorf("MixByName(%q) = (%q,%v)", name, m.Name, ok)
		}
		fm, ok := MixByName(name + "-flash")
		if !ok || fm.Name != name+"-flash" {
			t.Errorf("MixByName(%q) = (%q,%v)", name+"-flash", fm.Name, ok)
		}
	}
	if _, ok := MixByName("nope"); ok {
		t.Error("unknown mix accepted")
	}
	if _, ok := MixByName("-flash"); ok {
		t.Error("bare -flash accepted")
	}
}

func TestParseTrafficProgram(t *testing.T) {
	text := `steady mix=browsing base=400 for=300
flash mix=browsing-flash base=200 peak=2000000 for=120 hold=30 decay=30
diurnal mix=shopping base=100 peak=900 for=3600 period=600 steps=24
leak mix=ordering base=100 rate=2.5 for=600`
	tr, err := ParseTraffic(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Shapes) != 4 {
		t.Fatalf("parsed %d shapes, want 4", len(tr.Shapes))
	}
	kinds := []ShapeKind{ShapeSteady, ShapeFlash, ShapeDiurnal, ShapeLeak}
	for i, k := range kinds {
		if tr.Shapes[i].Kind != k {
			t.Errorf("shape %d kind = %v, want %v", i, tr.Shapes[i].Kind, k)
		}
	}
	s := tr.Schedule()
	if err := s.Validate(); err != nil {
		t.Fatalf("expanded schedule invalid: %v", err)
	}
	if got, want := s.Duration(), 300+120+3600+600.0; math.Abs(got-want) > 1e-6 {
		t.Errorf("expanded duration = %v, want %v", got, want)
	}
	// Clause order is preserved through the canonical text (shapes are
	// sequential, unlike chaos faults).
	rt, err := ParseTraffic(tr.String())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, rt) {
		t.Errorf("round trip diverged:\n%v\n%v", tr, rt)
	}
}

func TestParseTrafficErrors(t *testing.T) {
	tests := []struct{ name, text, want string }{
		{"unknown kind", "surge base=1 for=10", "unknown traffic shape"},
		{"missing for", "steady base=1", "missing for="},
		{"bad field", "steady base for=10", "bad field"},
		{"unknown field", "steady zap=1 for=10", "unknown field"},
		{"bad number", "steady base=x for=10", "bad base"},
		{"unknown mix", "steady mix=nope for=10", "unknown mix"},
		{"negative base", "steady base=-5 for=10", "base -5 outside"},
		{"zero duration", "steady for=0", "bad duration"},
		{"no ramp left", "flash for=60 hold=40 decay=30", "no ramp"},
		{"empty program", "  ;  \n ", "no shapes"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := ParseTraffic(tt.text)
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Errorf("ParseTraffic(%q) err = %v, want mention of %q", tt.text, err, tt.want)
			}
		})
	}
}

func TestTrafficValidateNeverPanicsOnGarbage(t *testing.T) {
	tr := Traffic{Shapes: []Shape{
		{Kind: ShapeKind(99)},
		{Kind: ShapeFlash, Mix: "??", Base: -1, Peak: -2, Dur: math.NaN(),
			Period: math.Inf(1), Rate: math.NaN(), Hold: -1, Decay: math.Inf(-1), Think: math.NaN()},
	}}
	errs := tr.Validate()
	if len(errs) < 2 {
		t.Errorf("garbage program produced %d errors: %v", len(errs), errs)
	}
	// Expansion of an unvalidated program must not panic either.
	_ = tr.Schedule()
}

// FuzzTrafficShapeParse mirrors FuzzFaultScheduleParse for the traffic
// grammar: parsing never panics, and any program that parses round-trips
// through its canonical String exactly and expands to a schedule that
// validates.
func FuzzTrafficShapeParse(f *testing.F) {
	f.Add("steady mix=browsing base=400 for=300")
	f.Add("flash mix=browsing-flash base=200 peak=2000000 for=120 hold=30 decay=30 steps=12")
	f.Add("diurnal mix=shopping base=100 peak=900 for=3600 period=600 steps=24; leak mix=ordering rate=2.5 for=600")
	f.Add("ramp base=10 peak=1e5 for=60")
	f.Add("leak rate=-3 for=10 think=0.5")
	f.Fuzz(func(t *testing.T, text string) {
		tr, err := ParseTraffic(text)
		if err != nil {
			return
		}
		if errs := tr.Validate(); len(errs) > 0 {
			t.Fatalf("ParseTraffic returned an invalid program: %v", errs)
		}
		canon := tr.String()
		rt, err := ParseTraffic(canon)
		if err != nil {
			t.Fatalf("canonical text %q does not re-parse: %v", canon, err)
		}
		if !reflect.DeepEqual(tr, rt) {
			t.Fatalf("round trip diverged for %q:\n%#v\n%#v", text, tr, rt)
		}
		if canon != rt.String() {
			t.Fatalf("canonical form unstable: %q vs %q", canon, rt.String())
		}
		s := tr.Schedule()
		if err := s.Validate(); err != nil {
			t.Fatalf("program %q expanded to invalid schedule: %v", canon, err)
		}
	})
}
