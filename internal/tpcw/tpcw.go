// Package tpcw models the TPC-W transactional web e-commerce benchmark used
// by the paper's evaluation (§IV.A): the 14 interaction types of the online
// bookstore, the Browsing/Shopping/Ordering traffic mixes, and the Remote
// Browser Emulator (RBE) with emulated browsers (EBs) issuing sessions of
// requests separated by exponential think times.
//
// Each interaction carries a resource profile — CPU demand at the
// application and database tiers and the memory working set the database
// portion touches — calibrated so that, as on the paper's testbed, the
// browsing mix pressures the database tier while the ordering mix pressures
// the application tier.
package tpcw

import "fmt"

// Interaction enumerates the 14 TPC-W web interactions.
type Interaction int

// The 14 TPC-W interaction types.
const (
	Home Interaction = iota + 1
	NewProducts
	BestSellers
	ProductDetail
	SearchRequest
	SearchResults
	ShoppingCart
	CustomerRegistration
	BuyRequest
	BuyConfirm
	OrderInquiry
	OrderDisplay
	AdminRequest
	AdminConfirm
)

// NumInteractions is the count of TPC-W interaction types.
const NumInteractions = 14

var interactionNames = map[Interaction]string{
	Home:                 "Home",
	NewProducts:          "NewProducts",
	BestSellers:          "BestSellers",
	ProductDetail:        "ProductDetail",
	SearchRequest:        "SearchRequest",
	SearchResults:        "SearchResults",
	ShoppingCart:         "ShoppingCart",
	CustomerRegistration: "CustomerRegistration",
	BuyRequest:           "BuyRequest",
	BuyConfirm:           "BuyConfirm",
	OrderInquiry:         "OrderInquiry",
	OrderDisplay:         "OrderDisplay",
	AdminRequest:         "AdminRequest",
	AdminConfirm:         "AdminConfirm",
}

// String returns the interaction's TPC-W name.
func (i Interaction) String() string {
	if n, ok := interactionNames[i]; ok {
		return n
	}
	return fmt.Sprintf("Interaction(%d)", int(i))
}

// Valid reports whether i is one of the 14 TPC-W interactions.
func (i Interaction) Valid() bool {
	return i >= Home && i <= AdminConfirm
}

// IsOrder reports whether the interaction plays an explicit role in the
// ordering process per the TPC-W classification; the rest are Browse
// interactions (browsing and searching the site).
func (i Interaction) IsOrder() bool {
	switch i {
	case ShoppingCart, CustomerRegistration, BuyRequest, BuyConfirm,
		OrderInquiry, OrderDisplay, AdminRequest, AdminConfirm:
		return true
	default:
		return false
	}
}

// Interactions returns all 14 interaction types in canonical order.
func Interactions() []Interaction {
	out := make([]Interaction, 0, NumInteractions)
	for i := Home; i <= AdminConfirm; i++ {
		out = append(out, i)
	}
	return out
}

// Profile describes the per-tier resource demand of one interaction:
// the mean CPU seconds consumed on the application and database tiers, the
// coefficient of variation of those demands, and the memory working set (in
// MB) the database portion touches. Demands are calibrated relative to a
// normalized 1.0-speed CPU; the server model scales them by machine speed.
type Profile struct {
	AppDemand float64 // mean app-tier CPU seconds
	DBDemand  float64 // mean DB-tier CPU seconds
	CV        float64 // coefficient of variation of both demands
	DBWorkMB  float64 // DB working set touched, in MB
	AppWorkMB float64 // app-tier working set (session state, buffers), in MB
}

// DefaultProfiles returns the per-interaction resource profiles. Browse
// interactions that search or rank the catalog (BestSellers, SearchResults,
// NewProducts) are database-heavy with large working sets — the "small
// percentage of heavy requests" that overload the database under the
// browsing mix (§V.B). Ordering interactions carry heavier application-tier
// logic (session state, form handling, payment authorization) with light,
// index-backed database access.
func DefaultProfiles() map[Interaction]Profile {
	return map[Interaction]Profile{
		Home:                 {AppDemand: 0.004, DBDemand: 0.003, CV: 0.4, DBWorkMB: 1.0, AppWorkMB: 0.5},
		NewProducts:          {AppDemand: 0.005, DBDemand: 0.030, CV: 0.6, DBWorkMB: 14, AppWorkMB: 0.6},
		BestSellers:          {AppDemand: 0.005, DBDemand: 0.065, CV: 0.7, DBWorkMB: 30, AppWorkMB: 0.6},
		ProductDetail:        {AppDemand: 0.004, DBDemand: 0.004, CV: 0.4, DBWorkMB: 1.2, AppWorkMB: 0.4},
		SearchRequest:        {AppDemand: 0.003, DBDemand: 0.001, CV: 0.3, DBWorkMB: 0.2, AppWorkMB: 0.3},
		SearchResults:        {AppDemand: 0.006, DBDemand: 0.050, CV: 0.7, DBWorkMB: 24, AppWorkMB: 0.7},
		ShoppingCart:         {AppDemand: 0.022, DBDemand: 0.004, CV: 0.4, DBWorkMB: 1.0, AppWorkMB: 1.6},
		CustomerRegistration: {AppDemand: 0.018, DBDemand: 0.002, CV: 0.4, DBWorkMB: 0.5, AppWorkMB: 1.4},
		BuyRequest:           {AppDemand: 0.028, DBDemand: 0.005, CV: 0.4, DBWorkMB: 1.2, AppWorkMB: 1.8},
		BuyConfirm:           {AppDemand: 0.038, DBDemand: 0.007, CV: 0.5, DBWorkMB: 1.6, AppWorkMB: 2.2},
		OrderInquiry:         {AppDemand: 0.012, DBDemand: 0.003, CV: 0.4, DBWorkMB: 0.8, AppWorkMB: 0.9},
		OrderDisplay:         {AppDemand: 0.018, DBDemand: 0.006, CV: 0.4, DBWorkMB: 1.4, AppWorkMB: 1.2},
		AdminRequest:         {AppDemand: 0.014, DBDemand: 0.003, CV: 0.4, DBWorkMB: 0.6, AppWorkMB: 1.0},
		AdminConfirm:         {AppDemand: 0.026, DBDemand: 0.008, CV: 0.5, DBWorkMB: 1.8, AppWorkMB: 1.6},
	}
}
