package tpcw

import (
	"math"
	"testing"
	"testing/quick"

	"hpcap/internal/sim"
)

func TestInteractionCount(t *testing.T) {
	all := Interactions()
	if len(all) != NumInteractions {
		t.Fatalf("Interactions() returned %d types, want %d", len(all), NumInteractions)
	}
	seen := map[Interaction]bool{}
	for _, i := range all {
		if !i.Valid() {
			t.Errorf("%v not valid", i)
		}
		if seen[i] {
			t.Errorf("%v duplicated", i)
		}
		seen[i] = true
	}
}

func TestInteractionClassification(t *testing.T) {
	// TPC-W classifies 6 interactions as Browse and 8 as Order.
	var browse, order int
	for _, i := range Interactions() {
		if i.IsOrder() {
			order++
		} else {
			browse++
		}
	}
	if browse != 6 || order != 8 {
		t.Errorf("browse=%d order=%d, want 6 and 8", browse, order)
	}
}

func TestInteractionString(t *testing.T) {
	if Home.String() != "Home" {
		t.Errorf("Home.String() = %q", Home.String())
	}
	if got := Interaction(99).String(); got != "Interaction(99)" {
		t.Errorf("invalid String() = %q", got)
	}
	if Interaction(0).Valid() || Interaction(15).Valid() {
		t.Error("out-of-range interactions reported valid")
	}
}

func TestDefaultProfilesCoverAllInteractions(t *testing.T) {
	profiles := DefaultProfiles()
	for _, i := range Interactions() {
		p, ok := profiles[i]
		if !ok {
			t.Fatalf("no profile for %v", i)
		}
		if p.AppDemand <= 0 || p.DBDemand <= 0 {
			t.Errorf("%v has non-positive demand: %+v", i, p)
		}
		if p.DBWorkMB <= 0 || p.AppWorkMB <= 0 {
			t.Errorf("%v has non-positive working set: %+v", i, p)
		}
	}
}

func TestProfilesTierAffinity(t *testing.T) {
	// The weighted per-request demand under browsing must be DB-dominated
	// and under ordering app-dominated — this is what makes the bottleneck
	// land on different tiers for the two mixes.
	profiles := DefaultProfiles()
	demand := func(m Mix) (app, db float64) {
		for i, w := range m.Weights {
			app += w * profiles[i].AppDemand
			db += w * profiles[i].DBDemand
		}
		return app, db
	}
	appB, dbB := demand(Browsing())
	if dbB <= appB*1.5 {
		t.Errorf("browsing mix not DB-dominated: app=%v db=%v", appB, dbB)
	}
	appO, dbO := demand(Ordering())
	if appO <= dbO {
		t.Errorf("ordering mix not app-dominated: app=%v db=%v", appO, dbO)
	}
}

func TestMixOrderFractions(t *testing.T) {
	tests := []struct {
		mix  Mix
		want float64
	}{
		{Browsing(), 0.05},
		{Shopping(), 0.20},
		{Ordering(), 0.50},
	}
	for _, tt := range tests {
		if got := tt.mix.OrderFraction(); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("%s OrderFraction = %v, want %v", tt.mix.Name, got, tt.want)
		}
		if err := tt.mix.Validate(); err != nil {
			t.Errorf("%s Validate: %v", tt.mix.Name, err)
		}
	}
}

func TestUnknownMixValidAndDistinct(t *testing.T) {
	u := Unknown()
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	f := u.OrderFraction()
	if f <= 0.05 || f >= 0.50 {
		t.Errorf("unknown mix order fraction = %v, want strictly between the training extremes", f)
	}
	// The within-class shape must differ from a plain interpolation.
	plain := NewMix("plain", f)
	diff := 0.0
	for i := range u.Weights {
		diff += math.Abs(u.Weights[i] - plain.Weights[i])
	}
	if diff < 0.01 {
		t.Errorf("unknown mix too close to plain interpolation (L1 diff %v)", diff)
	}
}

func TestNewMixClamping(t *testing.T) {
	if f := NewMix("x", -0.5).OrderFraction(); f != 0 {
		t.Errorf("orderFraction clamped low = %v, want 0", f)
	}
	if f := NewMix("x", 1.5).OrderFraction(); math.Abs(f-1) > 1e-9 {
		t.Errorf("orderFraction clamped high = %v, want 1", f)
	}
}

func TestMixValidateRejectsBadMixes(t *testing.T) {
	bad := Mix{Name: "bad", Weights: map[Interaction]float64{Home: 0.5}}
	if err := bad.Validate(); err == nil {
		t.Error("sum != 1 not rejected")
	}
	bad2 := Mix{Name: "bad2", Weights: map[Interaction]float64{Interaction(99): 1.0}}
	if err := bad2.Validate(); err == nil {
		t.Error("invalid interaction not rejected")
	}
	bad3 := Mix{Name: "bad3", Weights: map[Interaction]float64{Home: 1.5, ProductDetail: -0.5}}
	if err := bad3.Validate(); err == nil {
		t.Error("negative weight not rejected")
	}
}

func TestSampleMatchesMix(t *testing.T) {
	rng := sim.NewSource(99)
	mix := Ordering()
	sampler := mix.Sampler()
	const n = 200000
	var orders int
	for i := 0; i < n; i++ {
		if sampler.Sample(rng).IsOrder() {
			orders++
		}
	}
	got := float64(orders) / n
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("sampled order fraction = %v, want ≈0.5", got)
	}
}

// Property: NewMix always yields a valid distribution.
func TestNewMixValidProperty(t *testing.T) {
	f := func(frac float64) bool {
		m := NewMix("p", math.Mod(math.Abs(frac), 1))
		return m.Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
