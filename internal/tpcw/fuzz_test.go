package tpcw

import (
	"math"
	"testing"
)

// FuzzMixNormalize feeds NewMix arbitrary order fractions — including NaN
// and the infinities — and arbitrary per-interaction skews through the
// normalize path. The mix must always come out a valid distribution:
// weights non-negative, free of NaN, summing to 1. NaN previously slipped
// through the range clamps (NaN compares false to everything) and produced
// all-NaN weights.
func FuzzMixNormalize(f *testing.F) {
	f.Add(0.05, 1.0, 1.0, uint8(0))
	f.Add(0.5, 1.8, 0.6, uint8(3))
	f.Add(math.NaN(), 1.0, 1.0, uint8(1))
	f.Add(math.Inf(1), 0.0, 2.5, uint8(7))
	f.Add(-3.0, 1e308, 1e-308, uint8(14))
	f.Fuzz(func(t *testing.T, orderFraction, skewA, skewB float64, which uint8) {
		m := NewMix("fuzz", orderFraction)
		if err := m.Validate(); err != nil {
			t.Fatalf("NewMix(%v) invalid: %v", orderFraction, err)
		}
		of := m.OrderFraction()
		if math.IsNaN(of) || of < -1e-9 || of > 1+1e-9 {
			t.Fatalf("NewMix(%v).OrderFraction() = %v", orderFraction, of)
		}

		// Skew two interactions and renormalize, as Unknown() does. Keep
		// the skews to non-negative finite factors — negative weights are
		// rejected by Validate by design — but allow extreme magnitudes.
		if math.IsNaN(skewA) || math.IsInf(skewA, 0) || skewA < 0 {
			skewA = 1
		}
		if math.IsNaN(skewB) || math.IsInf(skewB, 0) || skewB < 0 {
			skewB = 1
		}
		ints := Interactions()
		a := ints[int(which)%len(ints)]
		b := ints[int(which/2)%len(ints)]
		m.Weights[a] *= skewA
		m.Weights[b] *= skewB
		normalize(m.Weights)
		if err := m.Validate(); err != nil {
			// A zero/overflowed total leaves the weights unnormalized but
			// must never produce NaN or negative weights.
			var total float64
			for _, i := range Interactions() {
				w := m.Weights[i]
				if math.IsNaN(w) || w < 0 {
					t.Fatalf("skewed mix has bad weight %v for %v: %v", w, i, err)
				}
				total += w
			}
			if total >= 0.999 && total <= 1.001 {
				t.Fatalf("normalized mix still invalid: %v", err)
			}
			return
		}

		// A valid mix must drive the sampler without panicking.
		s := m.Sampler()
		_ = s
	})
}
