package tpcw

import (
	"errors"
	"fmt"
)

// Phase is one segment of a load schedule: for Duration seconds the RBE
// keeps EBs emulated browsers active, all drawing interactions from Mix.
// ThinkScale multiplies the browsers' mean think time for the phase (zero
// means 1): real client populations vary in engagement, so the offered
// request rate is not a fixed function of the session count.
type Phase struct {
	Mix        Mix
	EBs        int
	Duration   float64
	ThinkScale float64
}

// Schedule is a piecewise-constant load program for the RBE, mirroring the
// paper's workload construction (§IV.A): ramp-up workloads that gradually
// increase concurrent client sessions until overload, spike workloads with
// occasional extreme bursts, interleaved mixes that alternate between
// browsing and ordering, and unknown mixes.
type Schedule struct {
	Phases []Phase
}

// Validate checks that every phase is well formed.
func (s Schedule) Validate() error {
	if len(s.Phases) == 0 {
		return errors.New("tpcw: schedule has no phases")
	}
	for i, p := range s.Phases {
		if p.Duration <= 0 {
			return fmt.Errorf("tpcw: phase %d has non-positive duration %v", i, p.Duration)
		}
		if p.EBs < 0 {
			return fmt.Errorf("tpcw: phase %d has negative EBs %d", i, p.EBs)
		}
		if err := p.Mix.Validate(); err != nil {
			return fmt.Errorf("tpcw: phase %d: %w", i, err)
		}
	}
	return nil
}

// Duration returns the schedule's total duration in seconds.
func (s Schedule) Duration() float64 {
	var d float64
	for _, p := range s.Phases {
		d += p.Duration
	}
	return d
}

// At returns the phase in effect at virtual time t. Times beyond the end of
// the schedule return the final phase.
func (s Schedule) At(t float64) Phase {
	var elapsed float64
	for _, p := range s.Phases {
		elapsed += p.Duration
		if t < elapsed {
			return p
		}
	}
	if len(s.Phases) == 0 {
		return Phase{}
	}
	return s.Phases[len(s.Phases)-1]
}

// Steady returns a single-phase schedule holding ebs browsers on mix for
// duration seconds.
func Steady(mix Mix, ebs int, duration float64) Schedule {
	return Schedule{Phases: []Phase{{Mix: mix, EBs: ebs, Duration: duration}}}
}

// Ramp returns a schedule that steps the number of EBs from start to end in
// steps equal increments, holding each level for stepDuration seconds —
// the paper's ramp-up training workload that gradually increases concurrent
// client sessions until the site is overloaded.
func Ramp(mix Mix, start, end, steps int, stepDuration float64) Schedule {
	if steps < 1 {
		steps = 1
	}
	phases := make([]Phase, 0, steps)
	for i := 0; i < steps; i++ {
		ebs := start
		if steps > 1 {
			ebs = start + (end-start)*i/(steps-1)
		}
		phases = append(phases, Phase{Mix: mix, EBs: ebs, Duration: stepDuration})
	}
	return Schedule{Phases: phases}
}

// Spike returns a schedule alternating between base load and an occasional
// extreme burst — the paper's spike training workload. Each cycle holds
// baseEBs for basePeriod seconds then spikeEBs for spikePeriod seconds,
// repeated cycles times.
func Spike(mix Mix, baseEBs, spikeEBs int, basePeriod, spikePeriod float64, cycles int) Schedule {
	if cycles < 1 {
		cycles = 1
	}
	phases := make([]Phase, 0, 2*cycles)
	for i := 0; i < cycles; i++ {
		phases = append(phases,
			Phase{Mix: mix, EBs: baseEBs, Duration: basePeriod},
			Phase{Mix: mix, EBs: spikeEBs, Duration: spikePeriod},
		)
	}
	return Schedule{Phases: phases}
}

// Interleaved returns a schedule that switches between two mixes every
// period seconds for the given number of switches, holding ebs browsers
// throughout — the paper's interleaved test workload that forces the
// bottleneck to shift between tiers.
func Interleaved(a, b Mix, ebs int, period float64, switches int) Schedule {
	if switches < 1 {
		switches = 1
	}
	phases := make([]Phase, 0, switches)
	for i := 0; i < switches; i++ {
		mix := a
		if i%2 == 1 {
			mix = b
		}
		phases = append(phases, Phase{Mix: mix, EBs: ebs, Duration: period})
	}
	return Schedule{Phases: phases}
}

// Truncate returns a copy of the schedule cut to its first at seconds. A
// phase straddling the cut is shortened to end exactly at it; at values
// beyond the schedule's duration return it unchanged and non-positive
// values return an empty (invalid) schedule.
func (s Schedule) Truncate(at float64) Schedule {
	var out Schedule
	var elapsed float64
	for _, p := range s.Phases {
		if elapsed >= at {
			break
		}
		if remain := at - elapsed; p.Duration > remain {
			p.Duration = remain
		}
		elapsed += p.Duration
		out.Phases = append(out.Phases, p)
	}
	return out
}

// ShiftAt returns a copy of the schedule whose traffic switches to mix at
// virtual time at, keeping every phase's EB population and think scale —
// a scripted mid-run mix shift, the workload-drift scenario where the
// request population changes character while the session count does not.
// A phase straddling the shift is split in two; non-positive at shifts the
// whole schedule and values beyond its duration return it unchanged.
func (s Schedule) ShiftAt(at float64, mix Mix) Schedule {
	var out Schedule
	var elapsed float64
	for _, p := range s.Phases {
		end := elapsed + p.Duration
		switch {
		case end <= at: // entirely before the shift
			out.Phases = append(out.Phases, p)
		case elapsed >= at: // entirely after
			p.Mix = mix
			out.Phases = append(out.Phases, p)
		default: // straddles: split at the shift point
			head, tail := p, p
			head.Duration = at - elapsed
			tail.Duration = end - at
			tail.Mix = mix
			out.Phases = append(out.Phases, head, tail)
		}
		elapsed = end
	}
	return out
}

// Concat joins schedules end to end.
func Concat(schedules ...Schedule) Schedule {
	var out Schedule
	for _, s := range schedules {
		out.Phases = append(out.Phases, s.Phases...)
	}
	return out
}
