package tpcw

import (
	"math"
	"testing"

	"hpcap/internal/sim"
)

func TestSteadySchedule(t *testing.T) {
	s := Steady(Browsing(), 50, 300)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Duration() != 300 {
		t.Errorf("Duration = %v, want 300", s.Duration())
	}
	p := s.At(150)
	if p.EBs != 50 || p.Mix.Name != "browsing" {
		t.Errorf("At(150) = %+v", p)
	}
}

func TestRampSchedule(t *testing.T) {
	s := Ramp(Ordering(), 10, 100, 10, 60)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 10 {
		t.Fatalf("phases = %d, want 10", len(s.Phases))
	}
	if s.Phases[0].EBs != 10 {
		t.Errorf("first phase EBs = %d, want 10", s.Phases[0].EBs)
	}
	if s.Phases[9].EBs != 100 {
		t.Errorf("last phase EBs = %d, want 100", s.Phases[9].EBs)
	}
	// Monotone non-decreasing.
	for i := 1; i < len(s.Phases); i++ {
		if s.Phases[i].EBs < s.Phases[i-1].EBs {
			t.Errorf("ramp not monotone at %d: %d < %d", i, s.Phases[i].EBs, s.Phases[i-1].EBs)
		}
	}
}

func TestRampSingleStep(t *testing.T) {
	s := Ramp(Ordering(), 10, 100, 0, 60)
	if len(s.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(s.Phases))
	}
	if s.Phases[0].EBs != 10 {
		t.Errorf("single-step ramp EBs = %d, want start", s.Phases[0].EBs)
	}
}

func TestSpikeSchedule(t *testing.T) {
	s := Spike(Browsing(), 40, 200, 300, 60, 3)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 6 {
		t.Fatalf("phases = %d, want 6", len(s.Phases))
	}
	if s.Phases[0].EBs != 40 || s.Phases[1].EBs != 200 {
		t.Errorf("spike pattern wrong: %d, %d", s.Phases[0].EBs, s.Phases[1].EBs)
	}
	if s.Duration() != 3*(300+60) {
		t.Errorf("Duration = %v, want %v", s.Duration(), 3*(300+60))
	}
}

func TestInterleavedSchedule(t *testing.T) {
	s := Interleaved(Browsing(), Ordering(), 80, 600, 4)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 4 {
		t.Fatalf("phases = %d, want 4", len(s.Phases))
	}
	wantNames := []string{"browsing", "ordering", "browsing", "ordering"}
	for i, p := range s.Phases {
		if p.Mix.Name != wantNames[i] {
			t.Errorf("phase %d mix = %s, want %s", i, p.Mix.Name, wantNames[i])
		}
	}
}

func TestScheduleAtBoundaries(t *testing.T) {
	s := Concat(Steady(Browsing(), 10, 100), Steady(Ordering(), 20, 100))
	if got := s.At(0).EBs; got != 10 {
		t.Errorf("At(0).EBs = %d, want 10", got)
	}
	if got := s.At(99.9).EBs; got != 10 {
		t.Errorf("At(99.9).EBs = %d, want 10", got)
	}
	if got := s.At(100).EBs; got != 20 {
		t.Errorf("At(100).EBs = %d, want 20", got)
	}
	// Beyond the end: final phase persists.
	if got := s.At(1e9).EBs; got != 20 {
		t.Errorf("At(inf).EBs = %d, want 20", got)
	}
}

func TestScheduleValidateErrors(t *testing.T) {
	if err := (Schedule{}).Validate(); err == nil {
		t.Error("empty schedule not rejected")
	}
	bad := Schedule{Phases: []Phase{{Mix: Browsing(), EBs: 10, Duration: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero duration not rejected")
	}
	bad2 := Schedule{Phases: []Phase{{Mix: Browsing(), EBs: -1, Duration: 10}}}
	if err := bad2.Validate(); err == nil {
		t.Error("negative EBs not rejected")
	}
}

func TestEmptyScheduleAt(t *testing.T) {
	var s Schedule
	p := s.At(10)
	if p.EBs != 0 {
		t.Errorf("empty schedule At = %+v, want zero phase", p)
	}
}

func TestBrowserThinkTime(t *testing.T) {
	rng := sim.NewSource(5)
	b := NewBrowser(1, Browsing(), rng)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		th := b.Think()
		if th < 0 {
			t.Fatalf("negative think time %v", th)
		}
		sum += th
	}
	mean := sum / n
	if math.Abs(mean-DefaultThinkTime) > 0.3 {
		t.Errorf("mean think = %v, want ≈%v", mean, DefaultThinkTime)
	}
}

func TestBrowserMixRoughlyPreserved(t *testing.T) {
	// Even with checkout chaining, the long-run order fraction should stay
	// in the neighborhood of the configured mix.
	rng := sim.NewSource(5)
	b := NewBrowser(1, Ordering(), rng)
	const n = 100000
	var orders int
	for i := 0; i < n; i++ {
		if b.Next().IsOrder() {
			orders++
		}
	}
	got := float64(orders) / n
	if got < 0.45 || got > 0.75 {
		t.Errorf("long-run order fraction = %v, want in [0.45, 0.75]", got)
	}
}

func TestBrowserSetMix(t *testing.T) {
	rng := sim.NewSource(5)
	b := NewBrowser(1, Browsing(), rng)
	b.SetMix(Ordering())
	const n = 50000
	var orders int
	for i := 0; i < n; i++ {
		if b.Next().IsOrder() {
			orders++
		}
	}
	if float64(orders)/n < 0.4 {
		t.Errorf("after SetMix(ordering), order fraction = %v, want > 0.4", float64(orders)/n)
	}
}

func TestBrowserCheckoutChains(t *testing.T) {
	// A ShoppingCart interaction should sometimes be followed by
	// CustomerRegistration (the checkout chain).
	rng := sim.NewSource(77)
	b := NewBrowser(1, Ordering(), rng)
	chained := 0
	carts := 0
	prev := Interaction(0)
	for i := 0; i < 50000; i++ {
		cur := b.Next()
		if prev == ShoppingCart {
			carts++
			if cur == CustomerRegistration {
				chained++
			}
		}
		prev = cur
	}
	if carts == 0 {
		t.Fatal("no shopping cart interactions generated")
	}
	frac := float64(chained) / float64(carts)
	if frac < 0.4 {
		t.Errorf("checkout chain rate = %v, want ≥0.4", frac)
	}
}

func TestTruncate(t *testing.T) {
	s := Concat(
		Steady(Browsing(), 50, 300),
		Steady(Ordering(), 80, 300),
	)
	cut := s.Truncate(450)
	if err := cut.Validate(); err != nil {
		t.Fatal(err)
	}
	if cut.Duration() != 450 {
		t.Errorf("Duration = %v, want 450", cut.Duration())
	}
	if len(cut.Phases) != 2 || cut.Phases[1].Duration != 150 {
		t.Errorf("Truncate split = %+v", cut.Phases)
	}
	if got := s.Truncate(1000); got.Duration() != 600 {
		t.Errorf("over-long cut changed duration to %v", got.Duration())
	}
	if got := s.Truncate(0); len(got.Phases) != 0 {
		t.Errorf("zero cut kept %d phases", len(got.Phases))
	}
	// Exact boundary: the straddling phase is dropped entirely.
	if got := s.Truncate(300); len(got.Phases) != 1 || got.Duration() != 300 {
		t.Errorf("boundary cut = %+v", got.Phases)
	}
	if s.Duration() != 600 {
		t.Error("Truncate mutated the original schedule")
	}
}

func TestShiftAt(t *testing.T) {
	s := Schedule{Phases: []Phase{
		{Mix: Browsing(), EBs: 50, Duration: 300, ThinkScale: 1.5},
		{Mix: Browsing(), EBs: 80, Duration: 300},
	}}
	shift := s.ShiftAt(450, Ordering())
	if err := shift.Validate(); err != nil {
		t.Fatal(err)
	}
	if shift.Duration() != 600 {
		t.Errorf("Duration = %v, want 600", shift.Duration())
	}
	if len(shift.Phases) != 3 {
		t.Fatalf("phases = %d, want 3 (straddler split)", len(shift.Phases))
	}
	for i, want := range []struct {
		mix string
		ebs int
		dur float64
	}{
		{"browsing", 50, 300},
		{"browsing", 80, 150},
		{"ordering", 80, 150},
	} {
		p := shift.Phases[i]
		if p.Mix.Name != want.mix || p.EBs != want.ebs || p.Duration != want.dur {
			t.Errorf("phase %d = {%s %d %v}, want %+v", i, p.Mix.Name, p.EBs, p.Duration, want)
		}
	}
	// EB programme and think scaling survive the shift untouched.
	if before, after := s.At(100), shift.At(100); after.ThinkScale != before.ThinkScale {
		t.Errorf("ThinkScale changed: %v -> %v", before.ThinkScale, after.ThinkScale)
	}
	if got := shift.At(500); got.Mix.Name != "ordering" || got.EBs != 80 {
		t.Errorf("At(500) = %+v, want ordering at 80 EBs", got)
	}

	whole := s.ShiftAt(0, Ordering())
	for i, p := range whole.Phases {
		if p.Mix.Name != "ordering" {
			t.Errorf("ShiftAt(0) phase %d still %s", i, p.Mix.Name)
		}
	}
	if got := s.ShiftAt(600, Ordering()); len(got.Phases) != 2 || got.Phases[1].Mix.Name != "browsing" {
		t.Errorf("shift beyond the end altered the schedule: %+v", got.Phases)
	}
	// Shift on an exact phase boundary must not mint a zero-length phase.
	exact := s.ShiftAt(300, Ordering())
	if err := exact.Validate(); err != nil {
		t.Fatalf("boundary shift invalid: %v", err)
	}
	if len(exact.Phases) != 2 || exact.Phases[1].Mix.Name != "ordering" {
		t.Errorf("boundary shift = %+v", exact.Phases)
	}
}
