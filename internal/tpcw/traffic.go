// Traffic shapes: deterministic load programs beyond the paper's ramps
// and spikes — diurnal curves, flash crowds ramping to very large EB
// populations, and slow-leak overloads — expressed in the existing
// Schedule grammar (piecewise-constant phases), plus a text grammar for
// scripting them from a flag, the traffic-domain mirror of the chaos
// fault-schedule grammar.
package tpcw

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Diurnal returns one day-like cycle: the EB population follows a
// raised-cosine curve from base (midnight) up to peak (midday) and back,
// quantized into steps equal-duration phases over period seconds.
func Diurnal(mix Mix, base, peak int, period float64, steps int) Schedule {
	if steps < 1 {
		steps = 1
	}
	phases := make([]Phase, 0, steps)
	for i := 0; i < steps; i++ {
		// Sample the curve at the step's midpoint.
		frac := (1 - math.Cos(2*math.Pi*(float64(i)+0.5)/float64(steps))) / 2
		ebs := base + int(math.Round(float64(peak-base)*frac))
		phases = append(phases, Phase{Mix: mix, EBs: ebs, Duration: period / float64(steps)})
	}
	return Schedule{Phases: phases}
}

// FlashCrowd returns a flash-crowd program: a geometric ramp from base to
// peak over ramp seconds in steps steps (geometric, so a promotion
// exploding to millions of browsers is a handful of doublings, not a
// linear crawl), a hold at peak, and a geometric decay back over decay
// seconds. Zero hold or decay skips that segment.
func FlashCrowd(mix Mix, base, peak int, ramp, hold, decay float64, steps int) Schedule {
	if steps < 1 {
		steps = 1
	}
	if base < 1 {
		base = 1 // geometric interpolation needs a positive floor
	}
	level := func(frac float64) int {
		return int(math.Round(float64(base) * math.Pow(float64(peak)/float64(base), frac)))
	}
	var phases []Phase
	if ramp > 0 {
		for i := 0; i < steps; i++ {
			frac := float64(i+1) / float64(steps)
			phases = append(phases, Phase{Mix: mix, EBs: level(frac), Duration: ramp / float64(steps)})
		}
	}
	if hold > 0 {
		phases = append(phases, Phase{Mix: mix, EBs: peak, Duration: hold})
	}
	if decay > 0 {
		for i := 0; i < steps; i++ {
			frac := 1 - float64(i+1)/float64(steps)
			phases = append(phases, Phase{Mix: mix, EBs: level(frac), Duration: decay / float64(steps)})
		}
	}
	return Schedule{Phases: phases}
}

// SlowLeak returns a slow-leak overload: the EB population creeps up from
// base at rate browsers per second for duration seconds, re-quantized
// every step seconds — the gradual fleet-side regression that never
// announces itself with a spike.
func SlowLeak(mix Mix, base int, rate, duration, step float64) Schedule {
	if step <= 0 || step > duration {
		step = duration
	}
	var phases []Phase
	for elapsed := 0.0; elapsed < duration; elapsed += step {
		d := step
		if remain := duration - elapsed; d > remain {
			d = remain
		}
		ebs := base + int(math.Round(rate*elapsed))
		if ebs < 0 {
			ebs = 0
		}
		phases = append(phases, Phase{Mix: mix, EBs: ebs, Duration: d})
	}
	return Schedule{Phases: phases}
}

// MixByName resolves a schedule-text mix name: the four canonical mixes,
// each optionally with a "-flash" suffix selecting its flash-crowd
// variant (FlashVariant).
func MixByName(name string) (Mix, bool) {
	base, flash := name, false
	if s, ok := strings.CutSuffix(name, "-flash"); ok {
		base, flash = s, true
	}
	var m Mix
	switch base {
	case "browsing":
		m = Browsing()
	case "shopping":
		m = Shopping()
	case "ordering":
		m = Ordering()
	case "unknown":
		m = Unknown()
	default:
		return Mix{}, false
	}
	if flash {
		m = FlashVariant(m)
	}
	return m, true
}

// ShapeKind names a traffic-shape clause type.
type ShapeKind int

// The traffic shapes of the clause grammar.
const (
	// ShapeSteady holds base browsers flat.
	ShapeSteady ShapeKind = iota + 1
	// ShapeRamp steps linearly from base to peak.
	ShapeRamp
	// ShapeDiurnal cycles base→peak→base on a raised cosine, repeating
	// every period seconds.
	ShapeDiurnal
	// ShapeFlash ramps geometrically from base to peak, holds, decays.
	ShapeFlash
	// ShapeLeak creeps up from base at rate browsers per second.
	ShapeLeak
)

// shapeNames maps kinds to their schedule-text spelling, in declaration
// order (index ShapeKind-1).
var shapeNames = [...]string{"steady", "ramp", "diurnal", "flash", "leak"}

// String returns the kind's schedule-text spelling.
func (k ShapeKind) String() string {
	if k >= 1 && int(k) <= len(shapeNames) {
		return shapeNames[k-1]
	}
	return fmt.Sprintf("ShapeKind(%d)", int(k))
}

// parseShapeKind resolves a schedule-text shape name.
func parseShapeKind(s string) (ShapeKind, error) {
	for i, name := range shapeNames {
		if s == name {
			return ShapeKind(i + 1), nil
		}
	}
	return 0, fmt.Errorf("tpcw: unknown traffic shape %q", s)
}

// Shape is one clause of a traffic program: a load shape run for Dur
// seconds on the named mix. Kinds ignore the parameters they do not use
// (see the ShapeKind docs); String prints every field so a clause
// round-trips through Parse exactly.
type Shape struct {
	Kind ShapeKind
	Mix  string  // canonical mix name (MixByName)
	Base int     // starting/floor EB population
	Peak int     // target population (ramp, diurnal, flash)
	Dur  float64 // clause duration, seconds
	// Period is the diurnal cycle length; zero means one cycle spanning
	// the whole clause.
	Period float64
	Steps  int     // quantization steps per ramp/cycle
	Rate   float64 // leak: browsers per second
	Hold   float64 // flash: seconds held at peak
	Decay  float64 // flash: seconds of geometric decay
	Think  float64 // think-time scale for the clause (zero means 1)
}

// String renders the shape in canonical schedule text. ParseTraffic of
// the result reproduces the shape exactly; the fuzz round-trip pins this.
func (sh Shape) String() string {
	return fmt.Sprintf("%s mix=%s base=%d peak=%d for=%s period=%s steps=%d rate=%s hold=%s decay=%s think=%s",
		sh.Kind, sh.Mix, sh.Base, sh.Peak, fmtSecs(sh.Dur), fmtSecs(sh.Period), sh.Steps,
		fmtSecs(sh.Rate), fmtSecs(sh.Hold), fmtSecs(sh.Decay), fmtSecs(sh.Think))
}

// fmtSecs renders a float in the shortest form that parses back to the
// identical value.
func fmtSecs(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// DefaultShape returns the canonical starting point for a clause of the
// given kind: the browsing mix, a modest base population, and the
// kind-specific parameter defaults. Dur stays zero — a program author
// always supplies for=. ParseTraffic builds every clause from this.
func DefaultShape(kind ShapeKind) Shape {
	sh := Shape{Kind: kind, Mix: "browsing", Base: 100, Steps: 8}
	switch kind {
	case ShapeRamp, ShapeDiurnal:
		sh.Peak = 1000
	case ShapeFlash:
		sh.Peak = 1000
		sh.Steps = 12
	case ShapeLeak:
		sh.Rate = 1
	}
	return sh
}

// Traffic is a scripted load program: shapes run consecutively, in
// clause order (unlike chaos faults, phases of load cannot overlap).
type Traffic struct {
	Shapes []Shape
}

// Validate checks every shape for well-formedness, returning one error
// per violation. It never panics, whatever the program holds.
func (tr Traffic) Validate() []error {
	var errs []error
	bad := func(i int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("tpcw: traffic shape %d: %s", i, fmt.Sprintf(format, args...)))
	}
	if len(tr.Shapes) == 0 {
		return []error{errors.New("tpcw: traffic program has no shapes")}
	}
	for i, sh := range tr.Shapes {
		if sh.Kind < 1 || int(sh.Kind) > len(shapeNames) {
			bad(i, "unknown kind %d", int(sh.Kind))
			continue
		}
		if _, ok := MixByName(sh.Mix); !ok {
			bad(i, "unknown mix %q", sh.Mix)
		}
		// maxEBs keeps integer phase arithmetic far from overflow while
		// still allowing flash crowds of many millions of browsers.
		const maxEBs = 100_000_000
		durOK := !math.IsNaN(sh.Dur) && !math.IsInf(sh.Dur, 0) && sh.Dur > 0
		stepsOK := sh.Steps >= 1 && sh.Steps <= 10000
		if sh.Base < 0 || sh.Base > maxEBs {
			bad(i, "base %d outside [0,%d]", sh.Base, maxEBs)
		}
		if sh.Peak < 0 || sh.Peak > maxEBs {
			bad(i, "peak %d outside [0,%d]", sh.Peak, maxEBs)
		}
		if !durOK {
			bad(i, "bad duration %v", sh.Dur)
		}
		if math.IsNaN(sh.Period) || math.IsInf(sh.Period, 0) || sh.Period < 0 {
			bad(i, "bad period %v", sh.Period)
		}
		if !stepsOK {
			bad(i, "steps %d outside [1,10000]", sh.Steps)
		}
		if math.IsNaN(sh.Rate) || math.IsInf(sh.Rate, 0) || math.Abs(sh.Rate) > 1e6 {
			bad(i, "bad rate %v", sh.Rate)
		}
		if math.IsNaN(sh.Hold) || math.IsInf(sh.Hold, 0) || sh.Hold < 0 {
			bad(i, "bad hold %v", sh.Hold)
		}
		if math.IsNaN(sh.Decay) || math.IsInf(sh.Decay, 0) || sh.Decay < 0 {
			bad(i, "bad decay %v", sh.Decay)
		}
		if math.IsNaN(sh.Think) || math.IsInf(sh.Think, 0) || sh.Think < 0 {
			bad(i, "bad think scale %v", sh.Think)
		}
		// Kind-specific quantization: the per-phase quantum must stay a
		// positive float (a subnormal duration divided by the step count
		// underflows to zero-length phases) and a diurnal clause must not
		// expand to an unbounded number of cycles.
		if durOK && stepsOK {
			switch sh.Kind {
			case ShapeRamp:
				if sh.Dur/float64(sh.Steps) <= 0 {
					bad(i, "duration %v too small for %d steps", sh.Dur, sh.Steps)
				}
			case ShapeDiurnal:
				period := sh.Period
				if period <= 0 || period > sh.Dur {
					period = sh.Dur
				}
				if sh.Period > 0 && sh.Dur/sh.Period > 10000 {
					bad(i, "period %v packs over 10000 cycles into duration %v", sh.Period, sh.Dur)
				}
				if period/float64(sh.Steps) <= 0 {
					bad(i, "period %v too small for %d steps", period, sh.Steps)
				}
			case ShapeFlash:
				ramp := sh.Dur - sh.Hold - sh.Decay
				if ramp <= 0 {
					bad(i, "hold %v + decay %v leave no ramp inside duration %v", sh.Hold, sh.Decay, sh.Dur)
				} else if ramp/float64(sh.Steps) <= 0 {
					bad(i, "ramp %v too small for %d steps", ramp, sh.Steps)
				}
			}
		}
	}
	return errs
}

// Schedule expands a validated program into the piecewise-constant phase
// schedule the testbeds consume. Calling it on an unvalidated program
// may produce an invalid schedule but never panics.
func (tr Traffic) Schedule() Schedule {
	var out Schedule
	for _, sh := range tr.Shapes {
		mix, ok := MixByName(sh.Mix)
		if !ok {
			continue
		}
		var s Schedule
		switch sh.Kind {
		case ShapeSteady:
			s = Steady(mix, sh.Base, sh.Dur)
		case ShapeRamp:
			s = Ramp(mix, sh.Base, sh.Peak, sh.Steps, sh.Dur/float64(sh.Steps))
		case ShapeDiurnal:
			period := sh.Period
			if period <= 0 || period > sh.Dur {
				period = sh.Dur
			}
			for elapsed := 0.0; elapsed < sh.Dur; elapsed += period {
				s = Concat(s, Diurnal(mix, sh.Base, sh.Peak, period, sh.Steps))
			}
			s = s.Truncate(sh.Dur)
		case ShapeFlash:
			ramp := sh.Dur - sh.Hold - sh.Decay
			s = FlashCrowd(mix, sh.Base, sh.Peak, ramp, sh.Hold, sh.Decay, sh.Steps)
		case ShapeLeak:
			s = SlowLeak(mix, sh.Base, sh.Rate, sh.Dur, sh.Dur/float64(sh.Steps))
		default:
			continue
		}
		if sh.Think != 0 {
			for i := range s.Phases {
				s.Phases[i].ThinkScale = sh.Think
			}
		}
		out = Concat(out, s)
	}
	return out
}

// String renders the program in canonical text: one shape per clause, in
// program order, joined by "; ". ParseTraffic round-trips it.
func (tr Traffic) String() string {
	parts := make([]string, len(tr.Shapes))
	for i, sh := range tr.Shapes {
		parts[i] = sh.String()
	}
	return strings.Join(parts, "; ")
}

// ParseTraffic reads a traffic program from text. Clauses are separated
// by ";" or newlines; each clause is a shape kind followed by key=value
// fields:
//
//	steady mix=browsing base=400 for=300
//	flash mix=browsing-flash base=200 peak=2000000 for=120 hold=30 decay=30
//	diurnal mix=shopping base=100 peak=900 for=3600 period=600 steps=24
//	leak mix=ordering base=100 rate=2.5 for=600
//
// Fields: mix (canonical name, "-flash" suffix allowed; default
// browsing), base, peak, for (duration, seconds, required), period,
// steps, rate, hold, decay, think — each defaulting per DefaultShape.
// The result is Validated; ParseTraffic never panics on garbage (the
// traffic fuzz test pins this).
func ParseTraffic(text string) (Traffic, error) {
	var tr Traffic
	for _, clause := range strings.FieldsFunc(text, func(r rune) bool { return r == ';' || r == '\n' }) {
		fields := strings.Fields(clause)
		if len(fields) == 0 {
			continue
		}
		kind, err := parseShapeKind(fields[0])
		if err != nil {
			return Traffic{}, err
		}
		sh := DefaultShape(kind)
		sh.Dur = math.NaN() // required field: a clause must set for=

		for _, field := range fields[1:] {
			key, val, ok := strings.Cut(field, "=")
			if !ok {
				return Traffic{}, fmt.Errorf("tpcw: bad field %q in %q", field, clause)
			}
			switch key {
			case "mix":
				sh.Mix = val
			case "base":
				if sh.Base, err = strconv.Atoi(val); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad base=%q: %v", val, err)
				}
			case "peak":
				if sh.Peak, err = strconv.Atoi(val); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad peak=%q: %v", val, err)
				}
			case "for":
				if sh.Dur, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad for=%q: %v", val, err)
				}
			case "period":
				if sh.Period, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad period=%q: %v", val, err)
				}
			case "steps":
				if sh.Steps, err = strconv.Atoi(val); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad steps=%q: %v", val, err)
				}
			case "rate":
				if sh.Rate, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad rate=%q: %v", val, err)
				}
			case "hold":
				if sh.Hold, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad hold=%q: %v", val, err)
				}
			case "decay":
				if sh.Decay, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad decay=%q: %v", val, err)
				}
			case "think":
				if sh.Think, err = strconv.ParseFloat(val, 64); err != nil {
					return Traffic{}, fmt.Errorf("tpcw: bad think=%q: %v", val, err)
				}
			default:
				return Traffic{}, fmt.Errorf("tpcw: unknown field %q in %q", key, clause)
			}
		}
		if math.IsNaN(sh.Dur) {
			return Traffic{}, fmt.Errorf("tpcw: clause %q missing for=<seconds>", strings.TrimSpace(clause))
		}
		tr.Shapes = append(tr.Shapes, sh)
	}
	if errs := tr.Validate(); len(errs) > 0 {
		return Traffic{}, errors.Join(errs...)
	}
	return tr, nil
}
