package tpcw

import "hpcap/internal/sim"

// DefaultThinkTime is the mean think time between web interactions of an
// emulated browser, per the TPC-W remote browser emulator specification
// (negative-exponentially distributed, mean 7 seconds).
const DefaultThinkTime = 7.0

// Browser is one emulated browser (EB) of the RBE. It draws its next
// interaction from the active mix and sleeps an exponential think time
// between interactions. The session flow keeps a small amount of state so
// that order-process interactions follow browse interactions more naturally
// than i.i.d. sampling: after adding to the cart, an EB is biased toward
// continuing the checkout chain.
type Browser struct {
	ID        int
	MeanThink float64

	rng     *sim.Source
	sampler *Sampler
	// lastOrder tracks whether the previous interaction was part of the
	// ordering process, to emit short checkout chains.
	lastOrder Interaction
}

// NewBrowser returns an EB with its own deterministic random sub-stream.
func NewBrowser(id int, mix Mix, rng *sim.Source) *Browser {
	return &Browser{
		ID:        id,
		MeanThink: DefaultThinkTime,
		rng:       rng,
		sampler:   mix.Sampler(),
	}
}

// SetMix switches the browser to a new traffic mix (used by interleaved
// schedules).
func (b *Browser) SetMix(mix Mix) {
	b.sampler = mix.Sampler()
}

// SetThinkScale adjusts the mean think time to scale × the TPC-W default
// (scale ≤ 0 restores the default).
func (b *Browser) SetThinkScale(scale float64) {
	if scale <= 0 {
		scale = 1
	}
	b.MeanThink = DefaultThinkTime * scale
}

// checkoutSuccessor maps an order-process interaction to its natural
// follow-up in the TPC-W purchase flow.
var checkoutSuccessor = map[Interaction]Interaction{
	ShoppingCart:         CustomerRegistration,
	CustomerRegistration: BuyRequest,
	BuyRequest:           BuyConfirm,
}

// Next returns the browser's next interaction type.
func (b *Browser) Next() Interaction {
	// With 60% probability continue an in-progress checkout chain; this
	// produces the bursty order sequences real sessions exhibit without
	// changing the long-run mix much (chains are short).
	if succ, ok := checkoutSuccessor[b.lastOrder]; ok && b.rng.Float64() < 0.6 {
		b.lastOrder = succ
		return succ
	}
	next := b.sampler.Sample(b.rng)
	b.lastOrder = next
	return next
}

// Think returns the next think-time duration in seconds.
func (b *Browser) Think() float64 {
	return b.rng.Exp(b.MeanThink)
}
