package experiment

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the determinism golden fixture")

// quickResults renders Table I(a), Table I(b), and Figure 4 on one fresh
// QuickScale lab — the surface the determinism guarantee covers.
func quickResults(t *testing.T, workers int, prewarm bool) string {
	t.Helper()
	l := NewLab(QuickScale())
	l.Workers = workers
	if prewarm {
		if err := l.Prewarm(context.Background()); err != nil {
			t.Fatalf("Prewarm: %v", err)
		}
	}
	t1a, err := l.RunTable1(TestBrowsing)
	if err != nil {
		t.Fatalf("RunTable1(browsing): %v", err)
	}
	t1b, err := l.RunTable1(TestOrdering)
	if err != nil {
		t.Fatalf("RunTable1(ordering): %v", err)
	}
	f4, err := l.RunFig4()
	if err != nil {
		t.Fatalf("RunFig4: %v", err)
	}
	return t1a.String() + "\n" + t1b.String() + "\n" + f4.String()
}

// TestDeterminismParallelMatchesSequential is the tentpole guarantee: a
// Workers=8 run (with Prewarm racing the cache fills) produces output
// byte-identical to the strictly sequential Workers=1 run, and both match
// the committed golden fixture. Regenerate the fixture with
//
//	go test ./internal/experiment -run TestDeterminism -update
func TestDeterminismParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("two full QuickScale evaluations; skipped in -short")
	}
	seq := quickResults(t, 1, false)
	par := quickResults(t, 8, true)
	if seq != par {
		t.Fatalf("parallel output diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}

	golden := filepath.Join("testdata", "determinism_quickscale.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(seq), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if seq != string(want) {
		t.Fatalf("results diverged from the golden fixture (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", seq, want)
	}
}
