package experiment

import (
	"errors"
	"testing"

	"hpcap/internal/core"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

func TestDefaultTraceConfigValid(t *testing.T) {
	cfg := DefaultTraceConfig()
	cfg.Schedule = tpcw.Steady(tpcw.Browsing(), 20, 60)
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("DefaultTraceConfig + schedule invalid: %v", errs)
	}
	// Zero window resolves to the default rather than failing.
	cfg.Window = 0
	if errs := cfg.Validate(); len(errs) > 0 {
		t.Fatalf("zero window invalid after defaults: %v", errs)
	}
}

func TestTraceConfigValidateErrors(t *testing.T) {
	base := func() TraceConfig {
		cfg := DefaultTraceConfig()
		cfg.Schedule = tpcw.Steady(tpcw.Browsing(), 20, 60)
		return cfg
	}
	tests := []struct {
		name   string
		mutate func(*TraceConfig)
	}{
		{"missing schedule", func(c *TraceConfig) { c.Schedule = tpcw.Schedule{} }},
		{"negative warmup", func(c *TraceConfig) { c.Warmup = -1 }},
		{"bad server config", func(c *TraceConfig) { c.Server.App.MaxWorkers = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			errs := cfg.Validate()
			if len(errs) == 0 {
				t.Fatalf("%s not rejected", tt.name)
			}
			for _, err := range errs {
				if !errors.Is(err, core.ErrBadConfig) {
					t.Errorf("error %v does not wrap ErrBadConfig", err)
				}
			}
			if _, err := Generate(cfg); !errors.Is(err, core.ErrBadConfig) {
				t.Errorf("Generate error %v does not wrap ErrBadConfig", err)
			}
		})
	}
	// The server config is still validated structurally, not just passed
	// through: a tier shape NewTestbed would reject fails here too.
	var sc server.Config
	cfg := base()
	cfg.Server = sc
	if errs := cfg.Validate(); len(errs) == 0 {
		t.Fatal("zero server config not rejected")
	}
}
