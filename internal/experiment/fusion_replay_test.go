package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismFusionReplay pins the counter-fusion storm replay end to
// end: the same browsing stream is served clean (baseline), corrupted raw
// (fusion off), and corrupted fused (fusion on). Fusion must strictly beat
// the raw run on both headline metrics — windowed decision error against
// the clean baseline, and drift false fires out of the lifecycle — while
// the low-confidence flag routes the stuck stretch into the retrain guard
// instead of the detectors. The whole transcript must be byte-identical
// between a sequential and a Workers=8 run and match the committed golden.
// Regenerate the fixture with
//
//	go test ./internal/experiment -run TestDeterminismFusionReplay -update
func TestDeterminismFusionReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("six full serving replays; skipped in -short")
	}
	seq, err := NewLab(QuickScale()).RunFusionReplay(1)
	if err != nil {
		t.Fatalf("RunFusionReplay(1): %v", err)
	}
	par, err := NewLab(QuickScale()).RunFusionReplay(8)
	if err != nil {
		t.Fatalf("RunFusionReplay(8): %v", err)
	}
	if seq.Log != par.Log {
		t.Fatalf("parallel transcript diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.Log, par.Log)
	}

	if seq.BaselineDrift != 0 {
		t.Errorf("clean baseline fired %d drift signals, want 0", seq.BaselineDrift)
	}
	if seq.RawDrift == 0 {
		t.Error("the raw (fusion-off) storm run fired no drift signal — the storm is not severe enough to measure fusion against")
	}
	if seq.FusedDrift >= seq.RawDrift {
		t.Errorf("fusion did not reduce drift false fires: raw %d, fused %d", seq.RawDrift, seq.FusedDrift)
	}
	if seq.FusedErr >= seq.RawErr {
		t.Errorf("fusion did not reduce windowed decision error: raw %.6f, fused %.6f", seq.RawErr, seq.FusedErr)
	}
	if seq.LowConfidence == 0 {
		t.Error("no window was flagged low-confidence — the stuck stretch should have been")
	}
	if seq.FusedWindows < seq.RawWindows {
		t.Errorf("fusion decided fewer windows (%d) than the raw run (%d)", seq.FusedWindows, seq.RawWindows)
	}
	if seq.FusedGuarded == 0 {
		t.Error("the lifecycle guard admitted every fused window — low confidence never propagated")
	}
	if strings.Contains(seq.Log, "retrain site=") {
		t.Error("a storm run retrained — the lifecycle guard failed")
	}

	golden := filepath.Join("testdata", "fusion_replay.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(seq.Log), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if seq.Log != string(want) {
		t.Fatalf("transcript diverged from the golden fixture (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", seq.Log, want)
	}
}

// TestFusionReplayShardedDeterminism replays the fusion storm through the
// sharded pipeline — per-tier fuser state now lives inside the shard
// engines — and requires the transcript byte-identical to the unsharded
// golden at several shard counts.
func TestFusionReplayShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full fusion replays per shard count; skipped in -short")
	}
	golden := filepath.Join("testdata", "fusion_replay.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run TestDeterminismFusionReplay -update to regenerate): %v", err)
	}
	for _, shards := range []int{1, 4} {
		res, err := NewLab(QuickScale()).RunFusionReplaySharded(8, shards)
		if err != nil {
			t.Fatalf("RunFusionReplaySharded(8, %d): %v", shards, err)
		}
		if res.Log != string(want) {
			t.Errorf("shards=%d transcript diverged from the unsharded golden\n--- got ---\n%s\n--- want ---\n%s",
				shards, res.Log, want)
		}
		if res.FusedErr >= res.RawErr || res.FusedDrift >= res.RawDrift {
			t.Errorf("shards=%d summary diverged: %+v", shards, res)
		}
	}
}

// TestFusionReplayLoopbackDeterminism replays the fusion storm through the
// network ingest path — capagent wire frames over a loopback TCP conn into
// a FrameServer feeding the sharded pipeline — and requires the transcript
// byte-identical to the direct-ingest golden. Counter values (NaNs
// included) survive the wire bit-exactly, so fusion sees the same stream.
func TestFusionReplayLoopbackDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full fusion replays over loopback; skipped in -short")
	}
	golden := filepath.Join("testdata", "fusion_replay.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run TestDeterminismFusionReplay -update to regenerate): %v", err)
	}
	res, err := NewLab(QuickScale()).RunFusionReplayLoopback(8)
	if err != nil {
		t.Fatalf("RunFusionReplayLoopback(8): %v", err)
	}
	if res.Log != string(want) {
		t.Errorf("loopback transcript diverged from the direct-ingest golden\n--- got ---\n%s\n--- want ---\n%s",
			res.Log, want)
	}
}
