package experiment

import (
	"context"
	"fmt"
	"strings"

	"hpcap/internal/metrics"
	"hpcap/internal/parallel"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// OverheadRow is the testbed's performance under one collection regime,
// normalized to the no-collection baseline (§V.D).
type OverheadRow struct {
	Regime        string
	Throughput    float64 // requests/s
	MeanRT        float64 // seconds
	RelThroughput float64 // vs baseline (1.0 = no loss)
	RelLatency    float64 // vs baseline (1.0 = no inflation)
}

// OverheadResult reproduces the runtime-overhead experiment: the paper
// measures under 0.5% performance loss for hardware counter collection
// versus about 4% for OS-level collection.
type OverheadResult struct {
	EBs  int
	Rows []OverheadRow
}

// RunOverhead drives the testbed near the ordering-mix saturation knee —
// where collection cost is most visible — under three regimes: no
// collection, hardware counter collection, and Sysstat collection, sampling
// once per second on both machines as the paper's tools do.
func (l *Lab) RunOverhead() (*OverheadResult, error) {
	w, err := l.Workload(tpcw.Ordering())
	if err != nil {
		return nil, err
	}
	// Well past the knee the CPU is firmly the binding constraint (no
	// bistable tipping), so stolen cycles translate directly into lost
	// throughput.
	ebs := frac(w.Knee, 1.35)
	duration := 14 * l.Scale.StepSec

	regimes := []struct {
		name string
		cost float64
	}{
		{"none", 0},
		{"hpc", metrics.HPCSampleCost},
		{"os", metrics.OSSampleCost},
	}
	// The paper averages five executions; run-to-run variation at deep
	// saturation would otherwise swamp sub-percent effects. Each of the
	// regime×run executions is an independent seeded simulation, so all of
	// them fan out across the Lab's workers; the per-regime means are then
	// accumulated in run order, keeping the floating-point sums — and thus
	// the result — identical to a sequential run.
	const runs = 5
	type measurement struct{ thr, rt float64 }
	samples, err := parallel.Map(context.Background(), len(regimes)*runs, l.workers(), func(i int) (measurement, error) {
		regime := regimes[i/runs]
		r := i % runs
		thr, rt, err := l.overheadRun(ebs, duration, regime.cost, int64(r))
		if err != nil {
			return measurement{}, fmt.Errorf("experiment: overhead regime %s: %w", regime.name, err)
		}
		return measurement{thr, rt}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &OverheadResult{EBs: ebs}
	for ri, regime := range regimes {
		var thrSum, rtSum float64
		for r := 0; r < runs; r++ {
			thrSum += samples[ri*runs+r].thr
			rtSum += samples[ri*runs+r].rt
		}
		res.Rows = append(res.Rows, OverheadRow{
			Regime:     regime.name,
			Throughput: thrSum / runs,
			MeanRT:     rtSum / runs,
		})
	}
	base := res.Rows[0]
	for i := range res.Rows {
		res.Rows[i].RelThroughput = res.Rows[i].Throughput / base.Throughput
		if base.MeanRT > 0 {
			res.Rows[i].RelLatency = res.Rows[i].MeanRT / base.MeanRT
		}
	}
	return res, nil
}

// overheadRun runs one steady workload with a per-second collection cost on
// both tiers and returns settled throughput and mean response time.
func (l *Lab) overheadRun(ebs int, duration, sampleCost float64, run int64) (thr, meanRT float64, err error) {
	cfg := l.Server
	cfg.Seed = l.Seed + 7 + run*13
	tb, err := server.NewTestbed(cfg, tpcw.Steady(tpcw.Ordering(), ebs, duration+240))
	if err != nil {
		return 0, 0, err
	}
	if sampleCost > 0 {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			tb.AddPeriodicLoad(tier, 1.0, sampleCost)
		}
	}
	if err := tb.Start(); err != nil {
		return 0, 0, err
	}
	tb.RunInterval(180) // settle
	var completions int
	var rtWeighted float64
	seconds := int(duration)
	for i := 0; i < seconds; i++ {
		s := tb.RunInterval(1)
		completions += s.Completions
		rtWeighted += s.MeanRT * float64(s.Completions)
	}
	thr = float64(completions) / float64(seconds)
	if completions > 0 {
		meanRT = rtWeighted / float64(completions)
	}
	return thr, meanRT, nil
}

// Row returns the row for a regime, or nil.
func (r *OverheadResult) Row(regime string) *OverheadRow {
	for i := range r.Rows {
		if r.Rows[i].Regime == regime {
			return &r.Rows[i]
		}
	}
	return nil
}

// String renders the overhead table.
func (r *OverheadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Metric collection overhead (§V.D) — ordering mix at %d EBs\n", r.EBs)
	fmt.Fprintf(&b, "%-8s %12s %12s %14s %12s\n", "regime", "thr (req/s)", "mean RT", "thr loss %", "RT inflation")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s %12.2f %12.4f %14.2f %12.3f\n",
			row.Regime, row.Throughput, row.MeanRT, (1-row.RelThroughput)*100, row.RelLatency)
	}
	return b.String()
}
