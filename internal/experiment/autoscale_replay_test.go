package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismAutoscaleReplay pins the closed-loop capacity experiment
// end to end: the same seeded flash crowd slams the DAG testbed twice,
// once shed by the admission valve alone and once with the registry's
// Autoscaler additionally growing the bottleneck pool, and the scaling
// arm must serve strictly more requests. The whole transcript — window
// verdicts, averaged pool ratios, scale events, served totals — must be
// byte-identical between a sequential and a Workers=8 run and match the
// committed golden. Regenerate the fixture with
//
//	go test ./internal/experiment -run TestDeterminismAutoscaleReplay -update
func TestDeterminismAutoscaleReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("four full flash-crowd replays; skipped in -short")
	}
	seq, err := NewLab(QuickScale()).RunAutoscaleReplay(1)
	if err != nil {
		t.Fatalf("RunAutoscaleReplay(1): %v", err)
	}
	par, err := NewLab(QuickScale()).RunAutoscaleReplay(8)
	if err != nil {
		t.Fatalf("RunAutoscaleReplay(8): %v", err)
	}
	if seq.Log != par.Log {
		t.Fatalf("parallel transcript diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.Log, par.Log)
	}

	if seq.Ups == 0 {
		t.Error("the flash crowd triggered no scale-up")
	}
	if seq.Downs == 0 {
		t.Error("the recovery tail triggered no scale-down")
	}
	if seq.AutoscaleServed <= seq.AdmissionServed {
		t.Errorf("autoscaling served %d requests, admission-only %d — scaling must win strictly",
			seq.AutoscaleServed, seq.AdmissionServed)
	}
	if !strings.Contains(seq.Log, "dir=up") || !strings.Contains(seq.Log, "dir=down") {
		t.Error("transcript records no scale events in both directions")
	}

	golden := filepath.Join("testdata", "autoscale_replay.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(seq.Log), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if seq.Log != string(want) {
		t.Fatalf("transcript diverged from the golden fixture (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", seq.Log, want)
	}
}

// TestShardedAutoscaleDeterminism replays the same flash crowd through
// the sharded serving pipeline — hash routing, batch queues, per-second
// Sync, NoteScale through the shard lock — and requires the transcript
// byte-identical to the unsharded golden at several shard counts.
func TestShardedAutoscaleDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full flash-crowd replays per shard count; skipped in -short")
	}
	golden := filepath.Join("testdata", "autoscale_replay.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run TestDeterminismAutoscaleReplay -update to regenerate): %v", err)
	}
	for _, shards := range []int{1, 4} {
		res, err := NewLab(QuickScale()).RunAutoscaleReplaySharded(8, shards)
		if err != nil {
			t.Fatalf("RunAutoscaleReplaySharded(8, %d): %v", shards, err)
		}
		if res.Log != string(want) {
			t.Errorf("shards=%d transcript diverged from the unsharded golden\n--- got ---\n%s\n--- want ---\n%s",
				shards, res.Log, want)
		}
		if res.Ups == 0 || res.AutoscaleServed <= res.AdmissionServed {
			t.Errorf("shards=%d summary diverged: %+v", shards, res)
		}
	}
}
