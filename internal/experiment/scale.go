// Package experiment reproduces every table and figure of the paper's
// evaluation (§V) on the simulated testbed: trace generation with the
// paper's training and testing workloads, synopsis accuracy grids (Table
// I), the PI-vs-throughput time series (Figure 3), coordinated prediction
// and bottleneck identification accuracy (Figure 4), learner build/decision
// timing (§V.B), metric-collection overhead (§V.D), and the history-length
// and tie-break ablation (§V.C).
//
// Workload schedules are expressed relative to each mix's measured
// saturation knee (found by offline stress testing, as the paper calibrates
// its thresholds), so traces are dense in the ambiguous region around
// saturation where classification is genuinely hard.
package experiment

// Scale sets the size of generated traces. Full approximates the paper's
// multi-hour runs; Quick keeps unit tests and benchmarks fast while
// preserving every qualitative feature (both overload regimes, gray-zone
// windows near the knee, transitions in both directions).
type Scale struct {
	Name string
	// StepSec is the base phase duration; schedules are small multiples
	// of it.
	StepSec float64
	// Window is the aggregation window in seconds (the paper uses 30).
	Window int
	// WarmupWindows dropped from the head of each trace.
	WarmupWindows int
	// InterleavePhases is the number of mix alternations in the
	// bottleneck-shifting test workload.
	InterleavePhases int
	// KneeBracket bounds the saturation-knee search in EBs.
	KneeLo, KneeHi int
}

// FullScale approximates the paper's trace sizes (tens of minutes of
// simulated time per trace; a few seconds of wall time each).
func FullScale() Scale {
	return Scale{
		Name:             "full",
		StepSec:          120,
		Window:           30,
		WarmupWindows:    2,
		InterleavePhases: 8,
		KneeLo:           40,
		KneeHi:           1400,
	}
}

// QuickScale is for tests and benchmarks: the same shapes at half the
// dwell time.
func QuickScale() Scale {
	return Scale{
		Name:             "quick",
		StepSec:          60,
		Window:           30,
		WarmupWindows:    1,
		InterleavePhases: 6,
		KneeLo:           40,
		KneeHi:           1400,
	}
}
