package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismDriftReplay pins the adaptive model lifecycle end to end:
// the scripted browsing→ordering mix shift must trigger drift detection, a
// retrain, and exactly one loss-free hot-swap, with the whole transcript
// byte-identical between a sequential and a Workers=8 run and matching the
// committed golden. Regenerate the fixture with
//
//	go test ./internal/experiment -run TestDeterminismDriftReplay -update
func TestDeterminismDriftReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("two full lifecycle replays; skipped in -short")
	}
	seq, err := NewLab(QuickScale()).RunDriftReplay(1)
	if err != nil {
		t.Fatalf("RunDriftReplay(1): %v", err)
	}
	par, err := NewLab(QuickScale()).RunDriftReplay(8)
	if err != nil {
		t.Fatalf("RunDriftReplay(8): %v", err)
	}
	if seq.Log != par.Log {
		t.Fatalf("parallel transcript diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.Log, par.Log)
	}

	if seq.Swaps != 1 {
		t.Errorf("replay hot-swapped %d times, want exactly 1", seq.Swaps)
	}
	if seq.Windows != seq.FrozenWindows {
		t.Errorf("adaptive replay decided %d windows, frozen %d — the swap lost decisions",
			seq.Windows, seq.FrozenWindows)
	}
	if seq.PostSwapWindows == 0 || seq.AdaptiveHits <= seq.FrozenHits {
		t.Errorf("post-swap accuracy %d/%d did not beat the frozen incumbent's %d/%d",
			seq.AdaptiveHits, seq.PostSwapWindows, seq.FrozenHits, seq.PostSwapWindows)
	}
	if !strings.Contains(seq.Log, "swapped=true") {
		t.Error("transcript has no swapped retrain event")
	}
	if !strings.Contains(seq.Log, "drift site=") {
		t.Error("transcript has no drift event")
	}

	golden := filepath.Join("testdata", "drift_replay.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(seq.Log), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if seq.Log != string(want) {
		t.Fatalf("transcript diverged from the golden fixture (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", seq.Log, want)
	}
}
