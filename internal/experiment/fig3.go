package experiment

import (
	"fmt"
	"strings"

	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/stats"
	"hpcap/internal/tpcw"
)

// Fig3Point is one 30-second window of the PI-vs-throughput time series.
type Fig3Point struct {
	Time           float64
	PI             float64 // normalized to the series geometric mean
	Throughput     float64 // normalized likewise
	RawPI          float64
	RawThroughput  float64
	Overloaded     int
	BottleneckTier server.TierID
}

// Fig3Result reproduces the paper's Figure 3: the productivity index of the
// bottleneck tier tracking application-level throughput under an
// ordering-mix drive into overload, both normalized to their geometric
// means.
type Fig3Result struct {
	Workload    string
	Tier        server.TierID
	PIName      string  // selected yield/cost definition
	Corr        float64 // |correlation| of the selected PI with throughput
	Agreement   float64 // correlation of the two normalized series
	LeadWindows int     // windows by which PI leads throughput (cross-correlation argmax)
	Points      []Fig3Point
}

// RunFig3 drives the testbed with the ordering mix (as plotted in the
// paper; the browsing variant works symmetrically on the DB tier), selects
// the PI reference for the bottleneck tier by the Corr measure of Eq. 2,
// and emits the normalized series.
func (l *Lab) RunFig3() (*Fig3Result, error) {
	mix := tpcw.Ordering()
	tier := server.TierApp // ordering saturates the front end
	// The paper drives the testbed into an overloaded state with a
	// monotone load increase; a plain ramp across the knee reproduces
	// that drive.
	w, err := l.Workload(mix)
	if err != nil {
		return nil, err
	}
	// Start near saturation, as the paper's plotted run does: the figure
	// shows the saturated/overloaded regime where both series sag
	// together when contention bites.
	sched := tpcw.Ramp(mix, frac(w.Knee, 0.85), frac(w.Knee, 1.70), 14, l.Scale.StepSec)
	tr, err := l.generate("fig3/"+mix.Name, sched, l.Seed+55, false)
	if err != nil {
		return nil, err
	}
	samples := tr.HPCSamples[tier]
	sel, err := pi.Select(pi.DefaultCandidates(), tr.HPCNames, samples)
	if err != nil {
		return nil, err
	}
	series, err := pi.Series(sel.Definition, tr.HPCNames, samples)
	if err != nil {
		return nil, err
	}

	thr := make([]float64, len(samples))
	for i, s := range samples {
		thr[i] = s.Throughput
	}
	normPI := stats.Normalize(series)
	normThr := stats.Normalize(thr)

	res := &Fig3Result{
		Workload: mix.Name,
		Tier:     tier,
		PIName:   sel.Definition.Name,
		Corr:     sel.Corr,
	}
	agreement, err := stats.Correlation(normPI, normThr)
	if err != nil {
		return nil, err
	}
	res.Agreement = agreement
	res.LeadWindows = leadOf(normPI, normThr, 4)

	for i := range samples {
		res.Points = append(res.Points, Fig3Point{
			Time:           samples[i].Time,
			PI:             normPI[i],
			Throughput:     normThr[i],
			RawPI:          series[i],
			RawThroughput:  thr[i],
			Overloaded:     tr.Windows[i].Overload,
			BottleneckTier: tr.Windows[i].Bottleneck,
		})
	}
	return res, nil
}

// leadOf returns the lag (in windows) at which the cross-correlation of a
// against b is maximal, searching lags in [0, maxLag]: a positive value
// means a leads b — the PI responding before the throughput metric, as the
// paper's dotted arrows highlight.
func leadOf(a, b []float64, maxLag int) int {
	best, bestLag := -2.0, 0
	for lag := 0; lag <= maxLag && lag < len(a)-2; lag++ {
		r, err := stats.Correlation(a[:len(a)-lag], b[lag:])
		if err != nil {
			return 0
		}
		if r > best {
			best = r
			bestLag = lag
		}
	}
	return bestLag
}

// String renders the series compactly, one row per window.
func (r *Fig3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3 — PI vs throughput (%s mix, %s tier)\n", r.Workload, r.Tier)
	fmt.Fprintf(&b, "PI = %s selected with Corr = %.3f; series agreement r = %.3f; PI leads by %d window(s)\n",
		r.PIName, r.Corr, r.Agreement, r.LeadWindows)
	fmt.Fprintf(&b, "%8s %10s %12s %5s\n", "time(s)", "PI(norm)", "thr(norm)", "over")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%8.0f %10.3f %12.3f %5d\n", p.Time, p.PI, p.Throughput, p.Overloaded)
	}
	return b.String()
}
