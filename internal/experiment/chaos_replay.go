package experiment

import (
	"errors"
	"fmt"
	"strings"

	"hpcap/internal/chaos"
	"hpcap/internal/core"
	"hpcap/internal/drift"
	"hpcap/internal/metrics"
	"hpcap/internal/ml/bayes"
	"hpcap/internal/registry"
	"hpcap/internal/serve"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// ChaosReplay is the result of one end-to-end fault-storm replay: a
// browsing-trained monitor serves a clean browsing trace whose telemetry
// is corrupted mid-run by a scripted chaos.Schedule — NaN bursts, stuck
// counters, clock skew, a whole-tier outage, duplicates, dropouts, and a
// bounded collector stall — then recovers. The transcript freezes every
// decision, every degradation-ladder transition, and the lifecycle
// guard's work; it is a pure function of the lab's seed, bit-identical
// for any training worker count.
type ChaosReplay struct {
	// Log is the golden-pinned transcript.
	Log string
	// Windows and BaselineWindows are the decision counts of the chaos
	// and the fault-free replay of the same recorded trace; the storm
	// drops windows, so Windows < BaselineWindows.
	Windows, BaselineWindows int
	// Injected is how many times the injector touched the stream.
	Injected uint64
	// Transitions counts degradation-ladder moves; the storm must walk
	// the site off healthy and the recovery must walk it back.
	Transitions uint64
	// Guarded is how many degraded decisions the lifecycle refused to
	// learn from.
	Guarded uint64
	// ReconvergeSeq is the first window after which every chaos decision
	// matches the fault-free baseline again (-1 if the runs never
	// re-converge).
	ReconvergeSeq int64
}

// chaosReplaySeed offsets the chaos trace away from every other seed the
// lab derives (training 0/1, test 100s, interleave 104, drift replay 300).
const chaosReplaySeed = 400

// chaosSchedule cycles browsing traffic below and above its knee — long
// enough to cover a lead-in, an eight-window fault storm, and a recovery
// tail.
func chaosSchedule(w Workload, s Scale) tpcw.Schedule {
	fracs := []float64{0.85, 1.25, 0.7, 1.15}
	var phases []tpcw.Phase
	for i := 0; i < 12; i++ {
		phases = append(phases, tpcw.Phase{
			Mix:      w.Mix,
			EBs:      frac(w.Knee, fracs[i%len(fracs)]),
			Duration: s.StepSec,
		})
	}
	return tpcw.Schedule{Phases: phases}
}

// chaosStorm scripts the fault storm against the recorded trace: window
// seq covers sample times [at(seq), at(seq)+W), so each fault lands on
// exactly the windows named here. The storm spans seqs 8–15; everything
// after is recovery.
func chaosStorm(base, w float64) chaos.Schedule {
	at := func(seq int64) float64 { return base + w*float64(seq-1) }
	return chaos.Schedule{Faults: []chaos.Fault{
		{Kind: chaos.KindNaN, Tier: server.TierApp, Start: at(8), Duration: w, P: 0.3},
		{Kind: chaos.KindStuck, Tier: server.TierDB, Start: at(9), Duration: w},
		{Kind: chaos.KindSkew, Tier: chaos.AllTiers, Start: at(10), Duration: w, P: 0.25},
		{Kind: chaos.KindOutage, Tier: chaos.AllTiers, Start: at(11), Duration: w},
		{Kind: chaos.KindDup, Tier: server.TierApp, Start: at(13), Duration: w, P: 0.5},
		{Kind: chaos.KindDrop, Tier: chaos.AllTiers, Start: at(14), Duration: w, P: 0.12},
		{Kind: chaos.KindStall, Tier: server.TierDB, Start: at(15), Duration: w, N: 5},
	}}
}

// RunChaosReplay replays a scripted fault storm end to end at the HPC
// level and returns its transcript. workers bounds the synopsis-build
// fan-out during training only; the transcript is bit-identical for any
// value — the chaos determinism golden pins a Workers=1 vs Workers=8
// comparison.
func (l *Lab) RunChaosReplay(workers int) (*ChaosReplay, error) {
	return l.runChaosReplay(workers, 0)
}

// RunChaosReplaySharded runs the same fault-storm replay through the
// sharded serving pipeline (shards ingest lanes, batched decisions, a
// per-second Sync standing in for the daemon's cadence). The transcript
// is byte-identical to RunChaosReplay's: batching and deferral may never
// change a decision, a ladder transition, or the lifecycle guard's work.
func (l *Lab) RunChaosReplaySharded(workers, shards int) (*ChaosReplay, error) {
	if shards < 1 {
		shards = 1
	}
	return l.runChaosReplay(workers, shards)
}

// chaosServePipeline is the serving surface the replay drives, satisfied
// by both the unsharded and the sharded pipeline (and by registry.Pipeline).
type chaosServePipeline interface {
	Ingest(serve.Sample)
	Flush()
	SiteStats(string) (serve.SiteStats, bool)
	SwapMonitor(string, *core.Monitor, int64) (serve.SwapEvent, error)
	NoteDrift(string, int)
}

// runChaosReplay is the shared replay body; shards == 0 selects the
// unsharded pipeline, anything else the sharded one.
func (l *Lab) runChaosReplay(workers, shards int) (*ChaosReplay, error) {
	const level = metrics.LevelHPC
	wb, err := l.Workload(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	btr, err := l.TrainingTrace(tpcw.Browsing())
	if err != nil {
		return nil, err
	}
	names := btr.Names(level)
	mon, err := core.Train(level, names, []core.TrainingSet{trainingSetOf("browsing", btr, level)}, core.Config{
		Learner:  bayes.TANLearner(),
		Synopsis: core.DefaultSynopsisConfig(l.Seed),
		Workers:  workers,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: train chaos monitor: %w", err)
	}

	tr, err := Generate(TraceConfig{
		Server:        l.Server,
		Schedule:      chaosSchedule(wb, l.Scale),
		Window:        l.Scale.Window,
		Warmup:        l.Scale.WarmupWindows,
		Seed:          l.Seed + chaosReplaySeed,
		Labeler:       l.Labeler,
		RecordSeconds: true,
		Topology:      l.Topology,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: generate chaos trace: %w", err)
	}
	var vecs [server.NumTiers][][]float64
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		vecs[tier] = tr.SecondVectors(level, tier)
	}

	// Fault-free baseline: the same trace, no injector.
	var baseline []serve.Decision
	pb, err := serve.NewPipeline(mon, serve.Config{
		Window:     l.Scale.Window,
		OnDecision: func(d serve.Decision) { baseline = append(baseline, d) },
	})
	if err != nil {
		return nil, err
	}
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			pb.Ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
	}
	pb.Flush()
	baseBySeq := make(map[int64]bool, len(baseline))
	for _, d := range baseline {
		baseBySeq[d.Seq] = d.Prediction.Overload
	}

	// Chaos replay: the same trace through the scripted storm, with the
	// hardened pipeline and the guarded lifecycle behind it.
	storm := chaosStorm(tr.SecTimes[0], float64(l.Scale.Window))
	if errs := storm.Validate(); len(errs) > 0 {
		return nil, fmt.Errorf("experiment: chaos storm: %w", errors.Join(errs...))
	}
	inj := chaos.NewInjector(storm, l.Seed+chaosReplaySeed)

	var log strings.Builder
	fmt.Fprintf(&log, "storm %s\n", storm)
	var decisions []serve.Decision
	// The sharded run touches decisions and log from shard goroutines; the
	// per-second Sync below establishes the ordering that makes the plain
	// slice and builder safe (nothing publishes outside ingest..Sync).
	scfg := serve.Config{
		Window:     l.Scale.Window,
		OnDecision: func(d serve.Decision) { decisions = append(decisions, d) },
		OnHealth: func(ev serve.HealthEvent) {
			fmt.Fprintf(&log, "  health %s->%s seq=%d\n", ev.From, ev.To, ev.Seq)
		},
	}
	var pc chaosServePipeline
	sync := func() {}
	if shards > 0 {
		sp, err := serve.NewShardedPipeline(mon, scfg, serve.ShardConfig{Shards: shards})
		if err != nil {
			return nil, err
		}
		defer sp.Close()
		pc, sync = sp, sp.Sync
	} else {
		p, err := serve.NewPipeline(mon, scfg)
		if err != nil {
			return nil, err
		}
		pc = p
	}
	mgr, err := registry.NewManager(registry.Config{
		Pipeline: pc,
		Initial:  mon,
		Names:    names,
		Train: core.Config{
			Learner:  bayes.TANLearner(),
			Synopsis: core.DefaultSynopsisConfig(l.Seed + 1),
			Workers:  workers,
		},
		// The same replay-tight detector thresholds the drift replay uses:
		// with the lifecycle guard on, even a storm this violent must not
		// push fault-corrupted windows into them.
		Drift: drift.Config{
			PHDelta:       0.02,
			PHLambda:      4,
			MinWindows:    6,
			MixRefWindows: 6,
			MixWindow:     8,
			MixThreshold:  0.08,
			MixPatience:   3,
		},
		// More history than the trace has windows: any retrain would be a
		// guard failure, and the transcript would record it.
		HistoryWindows:  64,
		MinTrainWindows: 48,
		ShadowWindows:   8,
		CooldownWindows: 10 * len(tr.Windows),
		OnEvent: func(e registry.Event) {
			fmt.Fprintf(&log, "  %s\n", e)
		},
	})
	if err != nil {
		return nil, err
	}

	fed := 0
	deliver := func(upto int) {
		for ; fed < upto; fed++ {
			d := decisions[fed]
			w := tr.Windows[d.Seq-1]
			fmt.Fprintf(&log, "window seq=%d predicted=%t truth=%t degraded=%t missing=%d\n",
				d.Seq, d.Prediction.Overload, w.Overload == 1, d.Degraded, d.Missing)
			mgr.HandleDecision(d)
			mgr.ObserveTruth(d.Site, d.Seq, registry.Truth{
				Overload:    w.Overload == 1,
				Bottleneck:  w.Bottleneck,
				Throughput:  w.Throughput,
				ClassCounts: w.Classes,
			})
		}
	}
	ingest := func(s serve.Sample) {
		for _, out := range inj.Apply(s) {
			pc.Ingest(out)
		}
	}
	for i, ts := range tr.SecTimes {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			ingest(serve.Sample{Site: "site", Tier: tier, Time: ts, Values: vecs[tier][i]})
		}
		sync()
		deliver(len(decisions) - 1)
	}
	for _, s := range inj.Drain() {
		pc.Ingest(s)
	}
	pc.Flush()
	deliver(len(decisions))

	// Re-convergence: the longest decision suffix that matches the
	// fault-free baseline window for window.
	reconv := int64(-1)
	for i := len(decisions) - 1; i >= 0; i-- {
		d := decisions[i]
		b, ok := baseBySeq[d.Seq]
		if !ok || b != d.Prediction.Overload {
			break
		}
		reconv = d.Seq
	}

	stats, _ := pc.SiteStats("site")
	fs := inj.Stats()
	res := &ChaosReplay{
		Windows:         len(decisions),
		BaselineWindows: len(baseline),
		Injected:        fs.Injected(),
		Transitions:     stats.HealthChanges(),
		Guarded:         mgr.Guarded(),
		ReconvergeSeq:   reconv,
	}
	fmt.Fprintf(&log, "faults offered=%d emitted=%d dropped=%d nan=%d stuck=%d stalled=%d dup=%d skew=%d outage=%d\n",
		fs.Offered, fs.Emitted, fs.Dropped, fs.Corrupted, fs.Frozen, fs.Stalled, fs.Duplicated, fs.Skewed, fs.Outaged)
	fmt.Fprintf(&log, "pipeline decided=%d degraded=%d dropped=%d skipped_nan=%d skipped_late=%d skipped_gap=%d resets=%d health=%s transitions=%d\n",
		stats.WindowsDecided, stats.WindowsDegraded, stats.WindowsDropped,
		stats.SamplesBadValue, stats.SamplesLate, stats.SamplesGapReset,
		stats.SessionResets, stats.Health, res.Transitions)
	fmt.Fprintf(&log, "replay windows=%d baseline=%d guarded=%d reconverge_seq=%d\n",
		res.Windows, res.BaselineWindows, res.Guarded, res.ReconvergeSeq)
	res.Log = log.String()
	return res, nil
}
