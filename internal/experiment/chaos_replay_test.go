package experiment

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestDeterminismChaosReplay pins the fault-storm replay end to end: a
// browsing run suffers the scripted storm mid-stream, the degradation
// ladder walks off healthy and back, the lifecycle guard keeps every
// corrupted window out of the detectors, and the decision stream
// re-converges with the fault-free baseline — with the whole transcript
// byte-identical between a sequential and a Workers=8 run and matching
// the committed golden. Regenerate the fixture with
//
//	go test ./internal/experiment -run TestDeterminismChaosReplay -update
func TestDeterminismChaosReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("two full chaos replays; skipped in -short")
	}
	seq, err := NewLab(QuickScale()).RunChaosReplay(1)
	if err != nil {
		t.Fatalf("RunChaosReplay(1): %v", err)
	}
	par, err := NewLab(QuickScale()).RunChaosReplay(8)
	if err != nil {
		t.Fatalf("RunChaosReplay(8): %v", err)
	}
	if seq.Log != par.Log {
		t.Fatalf("parallel transcript diverged from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s", seq.Log, par.Log)
	}

	if seq.Injected == 0 {
		t.Error("the storm injected no faults")
	}
	if seq.Windows >= seq.BaselineWindows {
		t.Errorf("chaos replay decided %d windows, baseline %d — the outage dropped none",
			seq.Windows, seq.BaselineWindows)
	}
	if seq.Transitions < 2 {
		t.Errorf("degradation ladder moved %d times, want at least off-healthy and back", seq.Transitions)
	}
	if seq.Guarded == 0 {
		t.Error("lifecycle guard caught no degraded decisions")
	}
	if seq.ReconvergeSeq < 0 {
		t.Error("chaos decisions never re-converged with the fault-free baseline")
	}
	if !strings.Contains(seq.Log, "health healthy->") {
		t.Error("transcript has no off-healthy transition")
	}
	if !strings.Contains(seq.Log, "->healthy") {
		t.Error("transcript has no recovery transition")
	}
	if strings.Contains(seq.Log, "retrain site=") {
		t.Error("a fault-corrupted run retrained — the lifecycle guard failed")
	}

	golden := filepath.Join("testdata", "chaos_replay.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(seq.Log), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if seq.Log != string(want) {
		t.Fatalf("transcript diverged from the golden fixture (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s", seq.Log, want)
	}
}

// TestShardedDeterminism replays the same fault storm through the sharded
// serving pipeline — hash routing, batch queues, deferred batched
// decisions, per-second Sync — and requires the transcript byte-identical
// to the unsharded pipeline's committed golden, at several shard counts.
// Together with TestDeterminismChaosReplay this pins Workers=1 vs
// Workers=8 vs sharded to one byte stream.
func TestShardedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full chaos replays per shard count; skipped in -short")
	}
	golden := filepath.Join("testdata", "chaos_replay.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run TestDeterminismChaosReplay -update to regenerate): %v", err)
	}
	for _, shards := range []int{1, 4} {
		res, err := NewLab(QuickScale()).RunChaosReplaySharded(8, shards)
		if err != nil {
			t.Fatalf("RunChaosReplaySharded(8, %d): %v", shards, err)
		}
		if res.Log != string(want) {
			t.Errorf("shards=%d transcript diverged from the unsharded golden\n--- got ---\n%s\n--- want ---\n%s",
				shards, res.Log, want)
		}
		if res.Guarded == 0 || res.Transitions < 2 || res.ReconvergeSeq < 0 {
			t.Errorf("shards=%d summary diverged: %+v", shards, res)
		}
	}
}
