package experiment

import (
	"errors"
	"fmt"

	"hpcap/internal/core"
	"hpcap/internal/cpu"
	"hpcap/internal/metrics"
	"hpcap/internal/osstat"
	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// Collector noise levels: hardware counters sample precisely; /proc
// scraping is coarser.
const (
	hpcNoise = 0.02
	osNoise  = 0.05
)

// Window is one aggregated 30-second observation of the whole testbed at
// both metric levels, with its offline ground truth.
type Window struct {
	Time float64
	// OS and HPC hold the full metric vector per tier.
	OS  [server.NumTiers][]float64
	HPC [server.NumTiers][]float64

	Overload   int
	Bottleneck server.TierID

	Throughput  float64
	ArrivalRate float64
	MeanRT      float64
	Util        [server.NumTiers]float64
	// FgUtil excludes idle-priority housekeeping; it is the ground-truth
	// basis for bottleneck attribution.
	FgUtil [server.NumTiers]float64
	EBs    int
	Mix    string
	// Classes is the window's request arrivals by TPC-W interaction type
	// (length tpcw.NumInteractions) — the observable the workload-mix
	// drift detector compares across windows.
	Classes []float64
}

// Trace is a generated run of the testbed.
type Trace struct {
	Windows  []Window
	OSNames  []string
	HPCNames []string
	// Samples per tier of the HPC aggregation, for PI computations.
	HPCSamples [server.NumTiers][]metrics.Sample

	// Per-second recordings, populated when TraceConfig.RecordSeconds is
	// set: the raw 1-second collector vectors per tier and their
	// timestamps, aligned index-for-index. Replaying them through the
	// online serving layer reproduces Windows bit-for-bit.
	SecTimes []float64
	SecOS    [server.NumTiers][][]float64
	SecHPC   [server.NumTiers][][]float64
}

// Vectors returns the per-tier vectors of the window at the given level.
// LevelCombined concatenates OS and HPC vectors (OS first), the combined
// monitor proposed by the paper's conclusion.
func (w *Window) Vectors(level metrics.Level) [server.NumTiers][]float64 {
	switch level {
	case metrics.LevelOS:
		return w.OS
	case metrics.LevelCombined:
		var out [server.NumTiers][]float64
		for tier := range out {
			v := make([]float64, 0, len(w.OS[tier])+len(w.HPC[tier]))
			v = append(v, w.OS[tier]...)
			v = append(v, w.HPC[tier]...)
			out[tier] = v
		}
		return out
	default:
		return w.HPC
	}
}

// SecondVectors returns the recorded per-second vectors of one tier at the
// given level (nil unless the trace was generated with RecordSeconds).
// LevelCombined concatenates OS and HPC vectors (OS first), matching
// Window.Vectors.
func (t *Trace) SecondVectors(level metrics.Level, tier server.TierID) [][]float64 {
	switch level {
	case metrics.LevelOS:
		return t.SecOS[tier]
	case metrics.LevelCombined:
		out := make([][]float64, len(t.SecOS[tier]))
		for i := range out {
			v := make([]float64, 0, len(t.SecOS[tier][i])+len(t.SecHPC[tier][i]))
			v = append(v, t.SecOS[tier][i]...)
			v = append(v, t.SecHPC[tier][i]...)
			out[i] = v
		}
		return out
	default:
		return t.SecHPC[tier]
	}
}

// Names returns the metric names for a level.
func (t *Trace) Names(level metrics.Level) []string {
	switch level {
	case metrics.LevelOS:
		return t.OSNames
	case metrics.LevelCombined:
		names := make([]string, 0, len(t.OSNames)+len(t.HPCNames))
		names = append(names, t.OSNames...)
		names = append(names, t.HPCNames...)
		return names
	default:
		return t.HPCNames
	}
}

// TraceConfig describes one trace generation run.
type TraceConfig struct {
	Server   server.Config
	Schedule tpcw.Schedule
	Window   int
	Warmup   int // windows dropped from the head
	Seed     int64
	Labeler  pi.Labeler
	// CollectOverhead charges the testbed the CPU cost of metric
	// collection itself (both levels), as a deployed monitor would.
	CollectOverhead bool
	// RecordSeconds keeps every raw 1-second collector vector in the
	// trace (SecTimes/SecOS/SecHPC) so the run can be replayed
	// sample-by-sample through the online serving layer.
	RecordSeconds bool
	// Topology, when non-nil, runs the schedule on a tier-DAG testbed
	// (server.NewDAGTestbed) instead of the fixed two-tier one; Server is
	// then ignored except as the source of the collector machine models
	// for slots no pool occupies. The DAG's per-pool snapshots are folded
	// to the legacy tier slots, so the rest of the pipeline (collectors,
	// windows, labeling) is topology-blind. Seed still comes from Seed.
	// server.TwoTierTopology(cfg.Server) reproduces the nil path
	// byte-for-byte.
	Topology *server.TopologyConfig
}

// DefaultTraceConfig returns trace generation at the paper's settings:
// the calibrated two-tier testbed and the 30-second window. Schedule
// stays zero — there is no default workload; callers supply one.
func DefaultTraceConfig() TraceConfig {
	return TraceConfig{Server: server.DefaultConfig(), Window: metrics.DefaultWindow}
}

// withDefaults resolves zero fields to DefaultTraceConfig.
func (c TraceConfig) withDefaults() TraceConfig {
	if c.Window <= 0 {
		c.Window = metrics.DefaultWindow
	}
	return c
}

// Validate applies defaults first, then returns one error per violated
// constraint, each wrapping core.ErrBadConfig. The nested server and
// schedule configurations are validated too, their violations re-wrapped
// so one errors.Is check covers the whole generation configuration.
func (c TraceConfig) Validate() []error {
	c = c.withDefaults()
	var errs []error
	if c.Warmup < 0 {
		errs = append(errs, fmt.Errorf("experiment: %w: Warmup %d is negative", core.ErrBadConfig, c.Warmup))
	}
	if err := c.Schedule.Validate(); err != nil {
		errs = append(errs, fmt.Errorf("experiment: %w: %v", core.ErrBadConfig, err))
	}
	for _, err := range c.Server.Validate() {
		errs = append(errs, fmt.Errorf("experiment: %w: %v", core.ErrBadConfig, err))
	}
	if c.Topology != nil {
		for _, err := range c.Topology.Validate() {
			errs = append(errs, fmt.Errorf("experiment: %w: %v", core.ErrBadConfig, err))
		}
	}
	return errs
}

// recordingCollector wraps a collector and keeps a copy of every vector it
// produces, so a generated trace can later be replayed one second at a
// time.
type recordingCollector struct {
	metrics.Collector
	rec [][]float64
}

func (r *recordingCollector) Collect(s server.Snapshot, dt float64) []float64 {
	v := r.Collector.Collect(s, dt)
	r.rec = append(r.rec, append([]float64(nil), v...))
	return v
}

// Generate runs the testbed under the schedule and collects the labeled
// window trace at both metric levels.
func Generate(cfg TraceConfig) (*Trace, error) {
	cfg = cfg.withDefaults()
	if errs := cfg.Validate(); len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	srvCfg := cfg.Server
	srvCfg.Seed = cfg.Seed
	machines := [server.NumTiers]server.MachineConfig{srvCfg.App.Machine, srvCfg.DB.Machine}
	// step advances whichever testbed is behind the trace by one interval
	// and reports it in the legacy per-slot snapshot shape.
	var step func(dt float64) server.Snapshot
	if cfg.Topology != nil {
		topo := *cfg.Topology
		topo.Seed = cfg.Seed
		dtb, err := server.NewDAGTestbed(topo, cfg.Schedule)
		if err != nil {
			return nil, err
		}
		if cfg.CollectOverhead {
			// Every replica machine runs the collectors, so every pool is
			// charged (in declaration order, keeping the event sequence
			// deterministic).
			for _, pc := range topo.Pools {
				dtb.AddPeriodicLoad(pc.Name, 1.0, metrics.HPCSampleCost+metrics.OSSampleCost)
			}
		}
		if err := dtb.Start(); err != nil {
			return nil, err
		}
		step = dtb.RunIntervalLegacy
		// The collectors model the machine of the first pool occupying
		// each slot; slots no pool occupies keep the legacy machines.
		seen := [server.NumTiers]bool{}
		for _, pc := range topo.Pools {
			if pc.Slot >= 0 && pc.Slot < server.NumTiers && !seen[pc.Slot] {
				machines[pc.Slot] = pc.Tier.Machine
				seen[pc.Slot] = true
			}
		}
	} else {
		tb, err := server.NewTestbed(srvCfg, cfg.Schedule)
		if err != nil {
			return nil, err
		}
		if cfg.CollectOverhead {
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				tb.AddPeriodicLoad(tier, 1.0, metrics.HPCSampleCost+metrics.OSSampleCost)
			}
		}
		if err := tb.Start(); err != nil {
			return nil, err
		}
		step = func(dt float64) server.Snapshot { return tb.RunInterval(dt) }
	}

	type tierCollectors struct {
		os  *metrics.Aggregator
		hpc *metrics.Aggregator
	}
	memMB := [server.NumTiers]float64{512, 1024}
	var coll [server.NumTiers]tierCollectors
	var recOS, recHPC [server.NumTiers]*recordingCollector
	for tier := server.TierID(0); tier < server.NumTiers; tier++ {
		var osColl metrics.Collector = osstat.NewCollector(tier, memMB[tier], osNoise, cfg.Seed*10+int64(tier))
		var hpcColl metrics.Collector = cpu.NewCollector(tier, machines[tier], hpcNoise, cfg.Seed*10+int64(tier)+100)
		if cfg.RecordSeconds {
			recOS[tier] = &recordingCollector{Collector: osColl}
			recHPC[tier] = &recordingCollector{Collector: hpcColl}
			osColl, hpcColl = recOS[tier], recHPC[tier]
		}
		osAgg, err := metrics.NewAggregator(osColl, cfg.Window)
		if err != nil {
			return nil, err
		}
		hpcAgg, err := metrics.NewAggregator(hpcColl, cfg.Window)
		if err != nil {
			return nil, err
		}
		coll[tier] = tierCollectors{os: osAgg, hpc: hpcAgg}
	}

	trace := &Trace{
		OSNames:  osstat.MetricNames,
		HPCNames: cpu.MetricNames,
	}

	total := cfg.Schedule.Duration()
	var busyAccum [server.NumTiers]float64
	var fgBusyAccum [server.NumTiers]float64
	var classAccum [tpcw.NumInteractions]int
	secInWindow := 0
	var elapsed float64
	for elapsed < total {
		snap := step(1)
		elapsed++
		secInWindow++
		if cfg.RecordSeconds {
			trace.SecTimes = append(trace.SecTimes, snap.Time)
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			busyAccum[tier] += snap.Tiers[tier].BusySeconds
			fgBusyAccum[tier] += snap.Tiers[tier].FgBusySeconds
		}
		for c, n := range snap.ClassArrivals {
			classAccum[c] += n
		}

		var w Window
		complete := false
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			osSample, osDone := coll[tier].os.Push(snap, 1)
			hpcSample, hpcDone := coll[tier].hpc.Push(snap, 1)
			if osDone != hpcDone {
				return nil, fmt.Errorf("experiment: aggregators out of lockstep")
			}
			if !osDone {
				continue
			}
			complete = true
			w.OS[tier] = osSample.Values
			w.HPC[tier] = hpcSample.Values
			trace.HPCSamples[tier] = append(trace.HPCSamples[tier], hpcSample)
			// App-level health is identical across aggregators; take it
			// from the last one.
			w.Time = hpcSample.Time
			w.Throughput = hpcSample.Throughput
			w.ArrivalRate = hpcSample.ArrivalRate
			w.MeanRT = hpcSample.MeanRT
			w.EBs = hpcSample.ActiveEBs
		}
		if !complete {
			continue
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			w.Util[tier] = busyAccum[tier] / float64(secInWindow)
			w.FgUtil[tier] = fgBusyAccum[tier] / float64(secInWindow)
			busyAccum[tier] = 0
			fgBusyAccum[tier] = 0
		}
		w.Classes = make([]float64, tpcw.NumInteractions)
		for c, n := range classAccum {
			w.Classes[c] = float64(n)
		}
		classAccum = [tpcw.NumInteractions]int{}
		secInWindow = 0
		w.Mix = cfg.Schedule.At(w.Time - float64(cfg.Window)/2).Mix.Name
		w.Overload = cfg.Labeler.Label(metrics.Sample{
			MeanRT:      w.MeanRT,
			Throughput:  w.Throughput,
			ArrivalRate: w.ArrivalRate,
		})
		w.Bottleneck = busierTier(w.FgUtil)
		trace.Windows = append(trace.Windows, w)
	}

	if cfg.RecordSeconds {
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			trace.SecOS[tier] = recOS[tier].rec
			trace.SecHPC[tier] = recHPC[tier].rec
		}
	}
	if cfg.Warmup > 0 && cfg.Warmup < len(trace.Windows) {
		trace.Windows = trace.Windows[cfg.Warmup:]
		for tier := range trace.HPCSamples {
			trace.HPCSamples[tier] = trace.HPCSamples[tier][cfg.Warmup:]
		}
		// Drop the matching head of the per-second recordings so a replay
		// sees exactly the windows the trace kept.
		if skip := cfg.Warmup * cfg.Window; skip < len(trace.SecTimes) {
			trace.SecTimes = trace.SecTimes[skip:]
			for tier := server.TierID(0); tier < server.NumTiers; tier++ {
				trace.SecOS[tier] = trace.SecOS[tier][skip:]
				trace.SecHPC[tier] = trace.SecHPC[tier][skip:]
			}
		}
	}
	return trace, nil
}

// busierTier returns the tier with the highest request-processing
// utilization — the offline ground truth for bottleneck identification.
func busierTier(util [server.NumTiers]float64) server.TierID {
	best := server.TierID(0)
	for t := server.TierID(1); t < server.NumTiers; t++ {
		if util[t] > util[best] {
			best = t
		}
	}
	return best
}

// frac scales a knee by a fraction, never below 1 EB.
func frac(knee int, f float64) int {
	v := int(float64(knee)*f + 0.5)
	if v < 1 {
		v = 1
	}
	return v
}

// Workload bundles a traffic mix with its measured saturation knees: the EB
// population at which the mix itself saturates the site, and the (higher)
// population at which its flash-crowd variant — the same traffic class with
// catalog-heavy queries damped — saturates it. Knees come from offline
// stress testing (FindKnee), mirroring how the paper calibrates thresholds
// empirically.
type Workload struct {
	Mix       tpcw.Mix
	Knee      int
	Flash     tpcw.Mix
	FlashKnee int
}

// DefineWorkload measures both knees of a mix on the given server
// configuration.
func DefineWorkload(cfg server.Config, mix tpcw.Mix, labeler pi.Labeler, s Scale) (Workload, error) {
	knee, err := FindKnee(cfg, mix, labeler, s.KneeLo, s.KneeHi)
	if err != nil {
		return Workload{}, fmt.Errorf("experiment: knee of %s: %w", mix.Name, err)
	}
	flash := tpcw.FlashVariant(mix)
	flashKnee, err := FindKnee(cfg, flash, labeler, s.KneeLo, s.KneeHi*3)
	if err != nil {
		return Workload{}, fmt.Errorf("experiment: knee of %s: %w", flash.Name, err)
	}
	return Workload{Mix: mix, Knee: knee, Flash: flash, FlashKnee: flashKnee}, nil
}

// TrainingSchedule composes the paper's training workload for one mix
// around its measured saturation knee: a coarse ramp-up, a fine ramp
// through the gray zone, plateaus just below and just above saturation,
// flash-crowd phases of light-query volume, a recovery, spike cycles of
// occasional extreme bursts, and a deep-overload dwell (§IV.A).
func TrainingSchedule(w Workload, s Scale) tpcw.Schedule {
	phase := func(f float64, units float64) tpcw.Schedule {
		return tpcw.Steady(w.Mix, frac(w.Knee, f), units*s.StepSec)
	}
	return tpcw.Concat(
		tpcw.Ramp(w.Mix, frac(w.Knee, 0.30), frac(w.Knee, 0.75), 4, s.StepSec),
		tpcw.Ramp(w.Mix, frac(w.Knee, 0.80), frac(w.Knee, 1.25), 10, s.StepSec),
		phase(0.92, 3),
		phase(1.08, 3),
		// Flash crowd: heavy volume of light requests, busy but healthy.
		tpcw.Steady(w.Flash, frac(w.FlashKnee, 0.90), 3*s.StepSec),
		// Think-time variation decouples offered load from the session
		// count: a large disengaged population stays healthy, a small
		// eager one overloads.
		tpcw.Schedule{Phases: []tpcw.Phase{
			{Mix: w.Mix, EBs: frac(w.Knee, 1.8), Duration: 2 * s.StepSec, ThinkScale: 2.2},
			{Mix: w.Mix, EBs: frac(w.Knee, 0.62), Duration: 2 * s.StepSec, ThinkScale: 0.48},
		}},
		phase(0.60, 2),
		tpcw.Spike(w.Mix, frac(w.Knee, 0.50), frac(w.Knee, 1.50), 2*s.StepSec, s.StepSec, 2),
		phase(1.60, 2),
	)
}

// TestSchedule composes a test workload for one mix: ramps, near-knee
// plateaus, flash-crowd phases (including one just past the flash knee — a
// genuinely hard "excessive load" overload), a recovery, and a spike, with
// a different composition from the training runs.
func TestSchedule(w Workload, s Scale) tpcw.Schedule {
	phase := func(f float64, units float64) tpcw.Schedule {
		return tpcw.Steady(w.Mix, frac(w.Knee, f), units*s.StepSec)
	}
	return tpcw.Concat(
		tpcw.Ramp(w.Mix, frac(w.Knee, 0.40), frac(w.Knee, 1.20), 6, s.StepSec),
		phase(0.88, 3),
		phase(1.35, 2),
		tpcw.Steady(w.Flash, frac(w.FlashKnee, 0.92), 2*s.StepSec),
		tpcw.Steady(w.Flash, frac(w.FlashKnee, 1.06), s.StepSec),
		tpcw.Schedule{Phases: []tpcw.Phase{
			{Mix: w.Mix, EBs: frac(w.Knee, 1.6), Duration: s.StepSec, ThinkScale: 2.0},
			{Mix: w.Mix, EBs: frac(w.Knee, 0.7), Duration: s.StepSec, ThinkScale: 0.52},
		}},
		phase(0.55, 2),
		tpcw.Spike(w.Mix, frac(w.Knee, 0.60), frac(w.Knee, 1.45), 2*s.StepSec, s.StepSec, 1),
		phase(1.15, 2),
	)
}

// InterleavedSchedule alternates browsing and ordering below and above
// their respective knees — the paper's bottleneck-shifting test, in which
// any interval carries either mix and the bottleneck moves between tiers.
func InterleavedSchedule(browsing, ordering Workload, s Scale) tpcw.Schedule {
	period := 4 * s.StepSec
	var phases []tpcw.Phase
	fracs := []float64{0.85, 1.25, 0.7, 1.15}
	for i := 0; i < s.InterleavePhases; i++ {
		f := fracs[(i/2)%len(fracs)]
		w := browsing
		if i%2 == 1 {
			w = ordering
		}
		phases = append(phases, tpcw.Phase{Mix: w.Mix, EBs: frac(w.Knee, f), Duration: period})
	}
	return tpcw.Schedule{Phases: phases}
}

// MixShiftSchedule is the workload-drift scenario: browsing traffic cycling
// below and above its knee for the first half of the run, after which the
// live population's mix is scripted over to ordering (via ShiftAt, sessions
// surviving the switch) while the same cycle repeats at the ordering knee.
// A monitor trained on browsing alone sees its accuracy decay in the second
// half — the trigger for the adaptive retrain-and-swap lifecycle.
func MixShiftSchedule(browsing, ordering Workload, s Scale) tpcw.Schedule {
	period := 2 * s.StepSec
	fracs := []float64{0.8, 1.25, 0.7, 1.2, 0.9, 1.3}
	// The shifted regime runs twice as long as the browsing lead-in: the
	// lifecycle needs shifted windows both to retrain on and to serve
	// afterwards.
	var phases []tpcw.Phase
	for i := 0; i < 3*len(fracs); i++ {
		w := browsing
		if i >= len(fracs) {
			w = ordering
		}
		phases = append(phases, tpcw.Phase{
			Mix:      browsing.Mix,
			EBs:      frac(w.Knee, fracs[i%len(fracs)]),
			Duration: period,
		})
	}
	shiftAt := float64(len(fracs)) * period
	return tpcw.Schedule{Phases: phases}.ShiftAt(shiftAt, ordering.Mix)
}

// sampleFor packages window health for the labeler.
func sampleFor(meanRT float64, completions, arrivals, seconds int) metrics.Sample {
	return metrics.Sample{
		MeanRT:      meanRT,
		Throughput:  float64(completions) / float64(seconds),
		ArrivalRate: float64(arrivals) / float64(seconds),
	}
}
