package experiment

import (
	"context"
	"sync"
	"testing"

	"hpcap/internal/metrics"
	"hpcap/internal/predictor"
	"hpcap/internal/tpcw"
)

// stressScale is a deliberately tiny trace scale: the stress tests care
// about cache contention, not statistical quality, and must stay cheap
// under -race.
func stressScale() Scale {
	return Scale{
		Name:             "stress",
		StepSec:          30,
		Window:           30,
		WarmupWindows:    1,
		InterleavePhases: 4,
		KneeLo:           40,
		KneeHi:           1400,
	}
}

// TestLabConcurrentCacheStampede hammers one fresh Lab from many goroutines
// that all demand the same workloads, traces, and monitors at once. Before
// the once-cell caches, this was a data race on the Lab's plain maps and a
// source of duplicated computation; now every goroutine must observe the
// exact same cached pointers.
func TestLabConcurrentCacheStampede(t *testing.T) {
	l := NewLab(stressScale())
	l.Workers = 8

	const goroutines = 16
	type got struct {
		train, test *Trace
		knee        int
	}
	results := make([]got, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			w, err := l.Workload(tpcw.Ordering())
			if err != nil {
				t.Error(err)
				return
			}
			train, err := l.TrainingTrace(tpcw.Ordering())
			if err != nil {
				t.Error(err)
				return
			}
			test, err := l.TestTrace(TestInterleaved)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = got{train: train, test: test, knee: w.Knee}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatalf("stampede errored")
	}
	for g := 1; g < goroutines; g++ {
		if results[g].train != results[0].train {
			t.Errorf("goroutine %d got a different cached training trace pointer", g)
		}
		if results[g].test != results[0].test {
			t.Errorf("goroutine %d got a different cached test trace pointer", g)
		}
		if results[g].knee != results[0].knee {
			t.Errorf("goroutine %d: knee %d, want %d", g, results[g].knee, results[0].knee)
		}
	}
}

// TestLabConcurrentMonitorSharing checks the monitor cache under the same
// stampede: all goroutines asking for the same (level, config, learner) get
// one shared trained monitor, trained exactly once.
func TestLabConcurrentMonitorSharing(t *testing.T) {
	l := NewLab(stressScale())
	l.Workers = 8
	cfg := predictor.Config{HistoryBits: 3, Delta: 5, Scheme: predictor.Optimistic}

	const goroutines = 8
	monitors := make([]interface{}, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := l.TrainMonitor(metrics.LevelHPC, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			monitors[g] = m
			// Exercise the shared monitor concurrently while others are
			// still fetching it.
			test, err := l.TestTrace(TestOrdering)
			if err != nil {
				t.Error(err)
				return
			}
			if _, _, err := EvaluateMonitor(m, test); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		t.Fatal("monitor stampede errored")
	}
	for g := 1; g < goroutines; g++ {
		if monitors[g] != monitors[0] {
			t.Errorf("goroutine %d got a different monitor instance", g)
		}
	}
}

// TestPrewarmConcurrentWithExperiments overlaps two Prewarms with direct
// trace fetches racing them for the same cache cells.
func TestPrewarmConcurrentWithExperiments(t *testing.T) {
	l := NewLab(stressScale())
	l.Workers = 8

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := l.Prewarm(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	for _, kind := range TestKinds() {
		kind := kind
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := l.TestTrace(kind); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
