package experiment

import (
	"fmt"

	"hpcap/internal/pi"
	"hpcap/internal/server"
	"hpcap/internal/tpcw"
)

// FindKnee locates a mix's saturation knee — the smallest emulated-browser
// population whose steady state is overloaded by the application-level
// labeler — by bisection over steady-state runs. It is the offline
// stress-testing step the paper uses to calibrate thresholds, and it also
// powers the capacity-planning example.
func FindKnee(cfg server.Config, mix tpcw.Mix, labeler pi.Labeler, lo, hi int) (int, error) {
	if lo < 1 || hi <= lo {
		return 0, fmt.Errorf("experiment: bad knee bracket [%d, %d]", lo, hi)
	}
	overAt := func(ebs int) (bool, error) {
		over, err := steadyOverloaded(cfg, mix, labeler, ebs)
		if err != nil {
			return false, err
		}
		return over, nil
	}
	// Ensure the bracket actually straddles the knee.
	if over, err := overAt(hi); err != nil {
		return 0, err
	} else if !over {
		return hi, nil // capacity beyond the bracket; report the bound
	}
	if over, err := overAt(lo); err != nil {
		return 0, err
	} else if over {
		return lo, nil
	}
	for hi-lo > maxInt(2, lo/50) {
		mid := (lo + hi) / 2
		over, err := overAt(mid)
		if err != nil {
			return 0, err
		}
		if over {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

// steadyOverloaded runs a steady workload and labels its settled state.
func steadyOverloaded(cfg server.Config, mix tpcw.Mix, labeler pi.Labeler, ebs int) (bool, error) {
	const warmup, measure = 240, 180
	tb, err := server.NewTestbed(cfg, tpcw.Steady(mix, ebs, warmup+measure+10))
	if err != nil {
		return false, err
	}
	if err := tb.Start(); err != nil {
		return false, err
	}
	tb.RunInterval(warmup)
	var completions, arrivals int
	var rtWeighted float64
	for i := 0; i < measure; i++ {
		s := tb.RunInterval(1)
		completions += s.Completions
		arrivals += s.Arrivals
		rtWeighted += s.MeanRT * float64(s.Completions)
	}
	meanRT := 0.0
	if completions > 0 {
		meanRT = rtWeighted / float64(completions)
	}
	label := labeler.Label(sampleFor(meanRT, completions, arrivals, measure))
	return label == 1, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
