package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"hpcap/internal/featsel"
	"hpcap/internal/metrics"
	"hpcap/internal/server"
)

// selectionResults runs the paper's attribute selection for every
// (training mix × tier × level × learner) combination at QuickScale and
// renders the chosen attribute sets and CV scores at full float precision.
func selectionResults(t *testing.T) string {
	t.Helper()
	l := NewLab(QuickScale())
	var b strings.Builder
	for _, mix := range TrainingMixes() {
		tr, err := l.TrainingTrace(mix)
		if err != nil {
			t.Fatalf("TrainingTrace(%s): %v", mix.Name, err)
		}
		for tier := server.TierID(0); tier < server.NumTiers; tier++ {
			for _, level := range []metrics.Level{metrics.LevelOS, metrics.LevelHPC} {
				d, err := Dataset(tr, tier, level)
				if err != nil {
					t.Fatalf("Dataset(%s/%s/%s): %v", mix.Name, tier, level, err)
				}
				for _, learner := range Learners() {
					res, err := featsel.Select(learner, d, selection(l.Seed))
					if err != nil {
						t.Fatalf("Select(%s/%s/%s/%s): %v",
							mix.Name, tier, level, learner.Name, err)
					}
					names := make([]string, len(res.Attrs))
					for i, a := range res.Attrs {
						names[i] = d.AttrNames[a]
					}
					fmt.Fprintf(&b, "%s/%s/%s/%s attrs=[%s] cv=%.17g\n",
						mix.Name, tier, level, learner.Name,
						strings.Join(names, " "), res.CV)
				}
			}
		}
	}
	return b.String()
}

// TestAttributeSelectionGolden pins the selected attribute sets and their
// cross-validated balanced accuracies for all four learners, both training
// mixes, both tiers, and both metric levels. Any optimization of the
// training path must leave every line byte-identical: the fast path is
// required to change no decisions. Regenerate (only for intended
// behavioral changes) with
//
//	go test ./internal/experiment -run TestAttributeSelectionGolden -update
func TestAttributeSelectionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("32 full wrapper selections at QuickScale; skipped in -short")
	}
	got := selectionResults(t)
	golden := filepath.Join("testdata", "featsel_quickscale.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("attribute selection diverged from the golden fixture\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
