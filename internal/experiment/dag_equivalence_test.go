package experiment

import (
	"os"
	"path/filepath"
	"testing"

	"hpcap/internal/server"
)

// TestTwoTierDAGEquivalence pins the degenerate DAG against the legacy
// testbed at full system scope: a lab whose traces run on the tier-DAG
// testbed over server.TwoTierTopology must reproduce the committed chaos
// and fusion storm goldens byte for byte. Any hidden divergence between
// the two dispatch paths — an extra random draw, a reordered event, a
// float folded differently — lands in the collector vectors and breaks
// the transcript, so this one test transitively covers the whole
// trace → train → serve → lifecycle stack.
func TestTwoTierDAGEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two full storm replays on the DAG testbed; skipped in -short")
	}
	dagLab := func() *Lab {
		l := NewLab(QuickScale())
		topo := server.TwoTierTopology(l.Server)
		l.Topology = &topo
		return l
	}

	chaosGolden, err := os.ReadFile(filepath.Join("testdata", "chaos_replay.golden"))
	if err != nil {
		t.Fatalf("read chaos golden (run TestDeterminismChaosReplay -update to regenerate): %v", err)
	}
	chaos, err := dagLab().RunChaosReplay(1)
	if err != nil {
		t.Fatalf("RunChaosReplay on the degenerate DAG: %v", err)
	}
	if chaos.Log != string(chaosGolden) {
		t.Errorf("degenerate-DAG chaos transcript diverged from the legacy golden\n--- got ---\n%s\n--- want ---\n%s",
			chaos.Log, chaosGolden)
	}

	fusionGolden, err := os.ReadFile(filepath.Join("testdata", "fusion_replay.golden"))
	if err != nil {
		t.Fatalf("read fusion golden (run TestDeterminismFusionReplay -update to regenerate): %v", err)
	}
	fusion, err := dagLab().RunFusionReplay(1)
	if err != nil {
		t.Fatalf("RunFusionReplay on the degenerate DAG: %v", err)
	}
	if fusion.Log != string(fusionGolden) {
		t.Errorf("degenerate-DAG fusion transcript diverged from the legacy golden\n--- got ---\n%s\n--- want ---\n%s",
			fusion.Log, fusionGolden)
	}
}
