package experiment

import (
	"context"
	"fmt"
	"strings"

	"hpcap/internal/metrics"
	"hpcap/internal/parallel"
	"hpcap/internal/predictor"
)

// AblationRow is the coordinated accuracy for one (history length, scheme)
// configuration on one test workload, at the HPC level.
type AblationRow struct {
	HistoryBits int
	Scheme      predictor.Scheme
	Workload    TestKind
	Overload    float64
}

// AblationResult reproduces the paper's §V.C sensitivity study: the
// tie-break schemes barely matter, short histories behave differently from
// the 3-bit default, and histories beyond a few bits yield only marginal
// movement.
type AblationResult struct {
	Rows []AblationRow
}

// RunAblation sweeps history length h ∈ {1..5} and both schemes on the
// interleaved and ordering test workloads with HPC metrics. All
// (scheme × h × workload) cells fan out across the Lab's workers; the two
// cells sharing a configuration share its once-trained monitor, and rows
// assemble in the sequential sweep order.
func (l *Lab) RunAblation() (*AblationResult, error) {
	type spec struct {
		scheme predictor.Scheme
		h      int
		kind   TestKind
	}
	var specs []spec
	for _, scheme := range []predictor.Scheme{predictor.Optimistic, predictor.Pessimistic} {
		for h := 1; h <= 5; h++ {
			for _, kind := range []TestKind{TestOrdering, TestInterleaved} {
				specs = append(specs, spec{scheme, h, kind})
			}
		}
	}
	rows, err := parallel.Map(context.Background(), len(specs), l.workers(), func(i int) (AblationRow, error) {
		sp := specs[i]
		cfg := predictor.Config{HistoryBits: sp.h, Delta: 5, Scheme: sp.scheme}
		monitor, err := l.TrainMonitor(metrics.LevelHPC, cfg)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiment: ablation h=%d %s: %w", sp.h, sp.scheme, err)
		}
		test, err := l.TestTrace(sp.kind)
		if err != nil {
			return AblationRow{}, err
		}
		over, _, err := EvaluateMonitor(monitor, test)
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			HistoryBits: sp.h,
			Scheme:      sp.scheme,
			Workload:    sp.kind,
			Overload:    over,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationResult{Rows: rows}, nil
}

// Row returns the row for (h, scheme, workload), or nil.
func (r *AblationResult) Row(h int, scheme predictor.Scheme, kind TestKind) *AblationRow {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.HistoryBits == h && row.Scheme == scheme && row.Workload == kind {
			return row
		}
	}
	return nil
}

// String renders the ablation grid.
func (r *AblationResult) String() string {
	var b strings.Builder
	b.WriteString("History-length and tie-break ablation (§V.C) — HPC metrics, overload BA %\n")
	fmt.Fprintf(&b, "%-12s %-12s", "scheme", "workload")
	for h := 1; h <= 5; h++ {
		fmt.Fprintf(&b, " %6s", fmt.Sprintf("h=%d", h))
	}
	b.WriteString("\n")
	for _, scheme := range []predictor.Scheme{predictor.Optimistic, predictor.Pessimistic} {
		for _, kind := range []TestKind{TestOrdering, TestInterleaved} {
			fmt.Fprintf(&b, "%-12s %-12s", scheme, kind)
			for h := 1; h <= 5; h++ {
				if row := r.Row(h, scheme, kind); row != nil {
					fmt.Fprintf(&b, " %6.1f", row.Overload*100)
				} else {
					fmt.Fprintf(&b, " %6s", "-")
				}
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
